package ficus

import "testing"

// TestReplicaSetChanges exercises §3.1: "A client may change the location
// and quantity of file replicas whenever a file replica is available" —
// replicas of a volume are added and removed while the data stays served.
func TestReplicaSetChanges(t *testing.T) {
	c := newTestCluster(t, 3)
	// A project volume born on host 0, replicated to hosts 1 and 2.
	proj, err := c.NewVolume(0)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := c.MountVolume(0, proj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.WriteFile("/data", []byte("travels with the replicas")); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateVolume(proj, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateVolume(proj, 2); err != nil {
		t.Fatal(err)
	}

	// Drop the ORIGINAL replica; the data must keep being served from the
	// two newer replicas.
	if err := c.DropReplica(proj, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m, err := c.MountVolume(i, proj)
		if err != nil {
			t.Fatal(err)
		}
		data, err := m.ReadFile("/data")
		if err != nil || string(data) != "travels with the replicas" {
			t.Fatalf("host %d after drop: %q %v", i, data, err)
		}
	}
	// Updates still work (one-copy availability on the remaining set)...
	m2, _ := c.MountVolume(2, proj)
	if err := m2.WriteFile("/data", []byte("still writable")); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	// ... and tombstone GC still has a complete replica set to work with.
	if err := m2.Remove("/data"); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CollectGarbage(); err != nil {
		t.Fatal(err)
	}
}

func TestDropReplicaGuards(t *testing.T) {
	c := newTestCluster(t, 2)
	proj, _ := c.NewVolume(0)
	if err := c.DropReplica(proj, 0); err == nil {
		t.Fatal("dropped the last replica")
	}
	if err := c.DropReplica(proj, 1); err == nil {
		t.Fatal("dropped a replica from a host that stores none")
	}
	if err := c.DropReplica(Volume{}, 0); err == nil {
		t.Fatal("dropped a replica of an unknown volume")
	}
}
