package ficus

// Slow-peer chaos: heavy-tailed latency on every link, a deterministically
// slow link to force hedging, and one peer that hangs — accepts RPCs, runs
// the handlers, never replies.  Under RPC deadlines, latency-aware health,
// hedged pulls, and the propagation tick budget, the cluster must keep
// making bounded-cost progress through the chaos and converge exactly once
// the hung peer answers again.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ufs"
)

func TestChaosSlowPeerConvergence(t *testing.T) {
	const hosts = 4
	const budget = 600
	const deadline = 60
	c, err := NewCluster(hosts, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	c.ConfigureSlowPeers(SlowPeerConfig{
		RPCDeadline:  deadline,
		SlowAfter:    25,
		HedgeAfter:   30,
		TickBudget:   budget,
		PeerInflight: 2,
	})
	// Heavy tail everywhere; host 1's link to host 0 is persistently slow,
	// so host 1's pulls from origin replicas on host 0 always cross the
	// hedging threshold.
	c.InjectLatency(LatencyConfig{BaseTicks: 8, JitterTicks: 6, SpikeRate: 0.15, SpikeTicks: 150})
	c.InjectLinkLatency(1, 0, LatencyConfig{BaseTicks: 40, JitterTicks: 10})

	mounts := make([]*Mount, hosts)
	for i := range mounts {
		if mounts[i], err = c.Mount(i); err != nil {
			t.Fatal(err)
		}
	}
	// Distinct paths per host: chaos about timing, not about conflicts.
	write := func(h, step int) {
		if err := mounts[h].WriteFile(fmt.Sprintf("/h%d-s%d", h, step), []byte(fmt.Sprintf("payload %d.%d", h, step))); err != nil {
			t.Fatalf("host %d write: %v", h, err)
		}
	}
	for step := 0; step < 3; step++ {
		for h := 0; h < hosts; h++ {
			write(h, step)
		}
		if _, err := c.Propagate(); err != nil {
			t.Fatalf("propagate step %d: %v", step, err)
		}
	}

	// Host 3 hangs: writes made on it beforehand leave the other hosts with
	// pending pulls that can only deadline-miss until it answers again.
	// While a most-recent replica is dark, writes may surface availability
	// errors (the logical layer ships close through the freshest reachable
	// parent, which can lack a just-created file) — those are legitimate
	// outcomes, the same class the other chaos tests tolerate.  Anything
	// else is a real failure.
	writeLoose := func(h, step int) {
		err := mounts[h].WriteFile(fmt.Sprintf("/h%d-s%d", h, step), []byte(fmt.Sprintf("payload %d.%d", h, step)))
		if err == nil || errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotExist) ||
			errors.Is(err, ErrConflict) {
			return
		}
		t.Fatalf("host %d write under hang: unexpected error class: %v", h, err)
	}
	write(3, 100)
	c.HangHost(3)
	for h := 0; h < 3; h++ {
		writeLoose(h, 101)
	}
	for pass := 0; pass < 4; pass++ {
		for h := 0; h < hosts; h++ {
			stats, err := c.Host(h).PropagateOnce()
			if err != nil {
				t.Fatalf("host %d pass %d: %v", h, pass, err)
			}
			// The budget check runs between waves, so a pass may overshoot
			// by at most the final wave it admitted; with the client's three
			// in-call attempts a hedged, deadline-missing wave costs a few
			// deadlines at worst.
			if max := uint64(budget + 8*deadline); stats.PassTicks > max {
				t.Fatalf("host %d pass %d: PassTicks %d exceeds budget bound %d", h, pass, stats.PassTicks, max)
			}
		}
	}
	// Reconciliation — never health-gated — is what keeps RPCing the hung
	// peer, paying the deadline each time instead of waiting forever.
	if _, err := c.Reconcile(); err != nil {
		t.Fatalf("reconcile while hung: %v", err)
	}

	ns := c.NetworkStats()
	if ns.RPCHangs == 0 {
		t.Fatal("no hung RPCs recorded while a host was hung")
	}
	if ns.RPCDeadlineMisses == 0 {
		t.Fatal("no deadline misses recorded: hung RPCs must cost exactly the deadline")
	}
	if ns.RPCLatencySpikes == 0 {
		t.Fatal("no latency spikes drawn under a heavy-tail profile")
	}
	var hedges, misses int
	for h := 0; h < hosts; h++ {
		ss := c.SlowStatsFor(h)
		hedges += ss.Hedges
		misses += int(ss.DeadlineMisses)
	}
	if hedges == 0 {
		t.Fatal("no hedged pulls despite a persistently slow link")
	}
	if misses == 0 {
		t.Fatal("no tracked per-peer deadline misses")
	}

	// The hung peer answers again: everything converges, still under the
	// latency plane.
	c.UnhangHost(3)
	if err := c.Settle(40); err != nil {
		t.Fatal(err)
	}
	want := treeOf(t, c, 0, true)
	for h := 1; h < hosts; h++ {
		if got := treeOf(t, c, h, true); got != want {
			t.Fatalf("host %d diverged after unhang+settle:\n--- host 0\n%s\n--- host %d\n%s", h, want, h, got)
		}
	}
	probs, err := c.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("fsck problems after slow-peer chaos: %v", probs)
	}
}

// TestPropagationDiskFullRecovers is the ENOSPC regression: a receiving
// replica with a full disk must treat the failed install as transient —
// entry kept under backoff, no permanent error — and converge on its own
// once space frees up.
func TestPropagationDiskFullRecovers(t *testing.T) {
	c, err := NewCluster(2, WithSeed(3), WithStorage(512, 256))
	if err != nil {
		t.Fatal(err)
	}
	m0, err := c.Mount(0)
	if err != nil {
		t.Fatal(err)
	}

	// Fill host 1's disk underneath Ficus: raw UFS files that never enter
	// the replicated namespace.  "spare" is freed again right away so the
	// daemons' own bookkeeping (journal appends) still fits, while the
	// incoming file payload does not.
	vr := c.Host(1).LocalReplicas()[0].VolumeReplica()
	fs := c.Host(1).UFS(vr)
	spare, err := fs.Create(fs.Root(), "zz-spare")
	if err != nil {
		t.Fatal(err)
	}
	block := make([]byte, ufs.BlockSize)
	for i := 0; i < 4; i++ {
		if _, err := fs.WriteAt(spare, block, int64(i)*int64(ufs.BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	filler, err := fs.Create(fs.Root(), "zz-filler")
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	for {
		if _, err := fs.WriteAt(filler, block, off); err != nil {
			if !errors.Is(err, ufs.ErrNoSpace) {
				t.Fatal(err)
			}
			break
		}
		off += int64(ufs.BlockSize)
	}
	if err := fs.Remove(fs.Root(), "zz-spare"); err != nil {
		t.Fatal(err)
	}

	// A payload larger than the freed headroom: the announcement arrives,
	// the pull runs, the install dies on ENOSPC.
	payload := make([]byte, 8*ufs.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := m0.WriteFile("/big", payload); err != nil {
		t.Fatal(err)
	}
	s, err := c.Propagate()
	if err != nil {
		t.Fatalf("disk-full install must stay transient, got pass error: %v", err)
	}
	if s.FilesPulled != 0 {
		t.Fatalf("pulled %d files into a full disk", s.FilesPulled)
	}
	// Both the file and its containing directory stay pending; every entry
	// must have been attempted (ENOSPC classified transient, not dropped).
	pend := c.PendingVersionsFor(1)
	if len(pend) == 0 {
		t.Fatal("no pending entries after disk-full install")
	}
	for _, p := range pend {
		if p.Attempts == 0 {
			t.Fatalf("entry never attempted, must stay pending under backoff: %+v", pend)
		}
	}

	// Space frees up (a user deletes files); the daemons converge with no
	// outside help beyond their normal passes.
	if err := fs.Remove(fs.Root(), "zz-filler"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12 && len(c.PendingVersionsFor(1)) > 0; i++ {
		if _, err := c.Propagate(); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := c.Mount(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m1.ReadFile("/big")
	if err != nil {
		t.Fatalf("read after space freed: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatal("payload mismatch after ENOSPC recovery")
	}
	probs, err := c.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("fsck problems after ENOSPC recovery: %v", probs)
	}
}
