// Partition: the paper's headline scenario (§1).  The network partitions;
// both sides keep updating — "update during network partition if any copy
// of a file is accessible" — and after the partition heals, reconciliation
// (§3.3) merges the histories:
//
//   - independent directory updates merge silently;
//   - conflicting directory updates (the same name created on both sides)
//     are detected and automatically repaired;
//   - conflicting updates to one regular file are detected and reported to
//     the owner, who resolves them.
//
// Run with: go run ./examples/partition
package main

import (
	"fmt"
	"log"

	ficus "repro"
)

func main() {
	cluster, err := ficus.NewCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	m0, _ := cluster.Mount(0)
	m1, _ := cluster.Mount(1)

	// Shared starting state on both replicas.
	if err := m0.WriteFile("/paper.tex", []byte("\\title{Ficus}")); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Settle(10); err != nil {
		log.Fatal(err)
	}
	fmt.Println("base state replicated: /paper.tex on both hosts")

	// The network partitions — hosts [0, 1) on one side, the rest on the
	// other.  Both hosts keep working.
	cluster.PartitionSplit(1)
	fmt.Println("\n-- network partitioned --")

	// Conflicting file update: both sides edit paper.tex.
	must(m0.WriteFile("/paper.tex", []byte("\\title{Ficus} % edited at UCLA")))
	must(m1.WriteFile("/paper.tex", []byte("\\title{Ficus} % edited on the road")))
	fmt.Println("host 0 and host 1 both edited /paper.tex (one-copy availability)")

	// Conflicting directory update: both sides create the same name.
	must(m0.WriteFile("/notes", []byte("notes kept at UCLA")))
	must(m1.WriteFile("/notes", []byte("notes kept on the road")))
	fmt.Println("host 0 and host 1 both created /notes")

	// Independent updates: no conflict at all.
	must(m0.WriteFile("/only-at-ucla", []byte("a")))
	must(m1.WriteFile("/only-on-road", []byte("b")))

	// Heal; the periodic reconciliation protocol converges the replicas.
	cluster.HealAll()
	fmt.Println("\n-- partition healed; reconciling --")
	if err := cluster.Settle(10); err != nil {
		log.Fatal(err)
	}

	// Directory conflicts were repaired automatically: both /notes survive
	// under deterministically disambiguated names.
	entries, err := m0.ReadDir("/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("directory after reconciliation:")
	for _, e := range entries {
		fmt.Printf(" %s", e.Name)
	}
	fmt.Println()

	// The file conflict was reported to the owner.
	conflicts := cluster.Conflicts()
	fmt.Printf("file conflicts reported: %d\n", len(conflicts))
	for _, c := range conflicts {
		fmt.Printf("  host %d: file %s has concurrent histories %s vs %s\n",
			c.Host, c.FileID, c.LocalVV, c.RemoteVV)
	}
	if len(conflicts) == 0 {
		log.Fatal("expected a conflict on /paper.tex")
	}

	// The owner resolves; the resolution dominates both histories and
	// propagates like any other update.
	must(cluster.Resolve(conflicts[0], []byte("\\title{Ficus} % merged edits")))
	if err := cluster.Settle(10); err != nil {
		log.Fatal(err)
	}
	for i, m := range []*ficus.Mount{m0, m1} {
		data, err := m.ReadFile("/paper.tex")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host %d /paper.tex after resolution: %q\n", i, data)
	}
	if n := len(cluster.Conflicts()); n != 0 {
		log.Fatalf("%d conflicts remain", n)
	}
	fmt.Println("no conflicts remain; replicas converged — ok")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
