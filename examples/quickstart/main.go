// Quickstart: a three-host Ficus cluster sharing one replicated volume.
//
// Demonstrates the basic promise of the system (paper §1): any host can
// access any file with the ease of local files, updates land on whichever
// replica is accessible, and the update notification + propagation
// machinery (§3.2) brings the other replicas up to date.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ficus "repro"
)

func main() {
	cluster, err := ficus.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three hosts, one volume, one replica per host")

	// Host 0 builds a small tree.
	m0, err := cluster.Mount(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := m0.MkdirAll("/projects/ficus"); err != nil {
		log.Fatal(err)
	}
	if err := m0.WriteFile("/projects/ficus/README",
		[]byte("an optimistically replicated file system")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("host 0: wrote /projects/ficus/README")

	// Host 2 reads it immediately: the logical layer's default policy
	// selects the most recent copy available, which is host 0's replica
	// reached through NFS.
	m2, err := cluster.Mount(2)
	if err != nil {
		log.Fatal(err)
	}
	data, err := m2.ReadFile("/projects/ficus/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host 2: read  /projects/ficus/README = %q\n", data)

	// The write also multicast update notifications; each host's
	// propagation daemon pulls the new version into its own replica.
	stats, err := cluster.Propagate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagation daemons pulled %d file versions, adopted %d directory entries\n",
		stats.FilesPulled, stats.EntriesAdopted)

	// Now even a fully partitioned host serves the file from its own copy.
	cluster.Partition([]int{1})
	m1, err := cluster.Mount(1)
	if err != nil {
		log.Fatal(err)
	}
	data, err = m1.ReadFile("/projects/ficus/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host 1 (isolated): read from its own replica = %q\n", data)
	cluster.Heal()

	// os.File-style handles work too.
	f, err := m0.Open("/projects/ficus/log", ficus.ReadWrite|ficus.Create)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "entry %d: system online\n", 1)
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	entries, err := m0.ReadDir("/projects/ficus")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("host 0: ls /projects/ficus:")
	for _, e := range entries {
		fmt.Printf(" %s", e.Name)
	}
	fmt.Println()
	fmt.Println("ok")
}
