// Grafting: volumes and autografting (paper §4).  The name space is a
// graph of volumes; a graft point is a special directory naming a volume
// plus a table of (replica, storage site) rows — kept as ordinary directory
// entries so the replicated graft table is maintained by the same
// reconciliation machinery as everything else (§4.3).  Pathname translation
// grafts volumes on demand and prunes idle grafts (§4.4).
//
// Run with: go run ./examples/grafting
package main

import (
	"fmt"
	"log"

	ficus "repro"
)

func main() {
	cluster, err := ficus.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}

	// A project volume is born on host 2 with a couple of files.
	proj, err := cluster.NewVolume(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created volume %s on host 2\n", proj)
	pm, err := cluster.MountVolume(2, proj)
	if err != nil {
		log.Fatal(err)
	}
	must(pm.MkdirAll("/src"))
	must(pm.WriteFile("/src/main.go", []byte("package main")))
	must(pm.WriteFile("/README", []byte("the project volume")))

	// Give it a second replica on host 1 for availability.
	must(cluster.ReplicateVolume(proj, 1))
	fmt.Println("replicated the volume to host 1")

	// Graft it into the shared root namespace at /proj.  The graft point
	// is created at host 0; its table rows list both volume replicas.
	must(cluster.Graft(0, "/", "proj", proj))
	fmt.Println("graft point /proj created in the root volume (host 0)")

	// Reconciliation carries the graft point (and its table) to the other
	// root-volume replicas like any directory contents.
	must(cluster.Settle(10))

	// Every host now walks into the project volume transparently; the
	// first walk autografts (locates a reachable volume replica from the
	// graft table), later walks hit the graft table.
	for i := 0; i < 3; i++ {
		m, err := cluster.Mount(i)
		if err != nil {
			log.Fatal(err)
		}
		data, err := m.ReadFile("/proj/src/main.go")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host %d: /proj/src/main.go = %q (autografted)\n", i, data)
	}

	// Host 2 (holding a replica of proj) goes down; the graft table's
	// second row still locates the replica on host 1.
	cluster.SetHostDown(2, true)
	m0, _ := cluster.Mount(0)
	data, err := m0.ReadFile("/proj/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host 2 down: /proj/README still readable via host 1's replica = %q\n", data)
	cluster.SetHostDown(2, false)

	// Idle grafts are quietly pruned, and the next walk regrafts.
	for i := 0; i < 30; i++ {
		cluster.Tick()
	}
	pruned := cluster.PruneGrafts(10)
	fmt.Printf("pruned %d idle grafts\n", pruned)
	if _, err := m0.ReadFile("/proj/README"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("walk after pruning regrafted transparently — ok")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
