// Mobile: disconnected operation — the scenario the paper's large-scale
// motivation implies (§1: "partial operation is the normal, not
// exceptional, status of this environment").  A laptop carries a replica of
// the shared volume, leaves the network, keeps reading AND writing its
// local copy (one-copy availability), and reconciles on return; the
// concurrent edit made back at the office surfaces as a conflict for the
// owner to resolve.
//
// Run with: go run ./examples/mobile
package main

import (
	"fmt"
	"log"

	ficus "repro"
)

const (
	office = 0 // the well-connected workstation
	server = 1 // the department server
	laptop = 2 // the machine that travels
)

func main() {
	cluster, err := ficus.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	officeM, _ := cluster.Mount(office)
	laptopM, _ := cluster.Mount(laptop)

	// Shared state before the trip.
	must(officeM.MkdirAll("/talk"))
	must(officeM.WriteFile("/talk/slides.tex", []byte("\\section{Intro}")))
	must(officeM.WriteFile("/talk/notes", []byte("remember the demo")))
	must(cluster.Settle(10))
	fmt.Println("before the trip: /talk replicated on office, server, laptop")

	// The laptop leaves the network.
	cluster.Partition([]int{office, server}, []int{laptop})
	fmt.Println("\n-- laptop disconnected --")

	// On the road: full read AND write access against the local replica.
	data, err := laptopM.ReadFile("/talk/slides.tex")
	must(err)
	fmt.Printf("laptop reads its local copy: %q\n", data)
	must(laptopM.WriteFile("/talk/slides.tex", []byte("\\section{Intro} % polished on the plane")))
	must(laptopM.WriteFile("/talk/new-ideas", []byte("scribbled offline")))
	fmt.Println("laptop edits slides.tex and creates new-ideas (one-copy availability)")

	// Meanwhile at the office, a colleague edits the same file.
	must(officeM.WriteFile("/talk/slides.tex", []byte("\\section{Intro} % edited at the office")))
	fmt.Println("office edits slides.tex concurrently")

	// Home again: reconnect and let the reconciliation daemons converge.
	cluster.Heal()
	fmt.Println("\n-- laptop reconnected; reconciling --")
	must(cluster.Settle(10))

	// The independent creation merged silently...
	data, err = officeM.ReadFile("/talk/new-ideas")
	must(err)
	fmt.Printf("office now sees the road work: /talk/new-ideas = %q\n", data)

	// ... and the concurrent edit was detected, not clobbered.
	conflicts := cluster.Conflicts()
	if len(conflicts) == 0 {
		log.Fatal("expected a conflict on slides.tex")
	}
	fmt.Printf("conflict reported on slides.tex: local history %s vs remote %s\n",
		conflicts[0].LocalVV, conflicts[0].RemoteVV)
	must(cluster.Resolve(conflicts[0], []byte("\\section{Intro} % merged plane+office edits")))
	must(cluster.Settle(10))
	for name, m := range map[string]*ficus.Mount{"office": officeM, "laptop": laptopM} {
		data, err := m.ReadFile("/talk/slides.tex")
		must(err)
		fmt.Printf("%s after resolution: %q\n", name, data)
	}

	// With everyone reachable again, completed deletes can be collected.
	must(laptopM.Remove("/talk/notes"))
	must(cluster.Settle(10))
	n, err := cluster.CollectGarbage()
	must(err)
	fmt.Printf("removed /talk/notes everywhere; %d tombstones collected\n", n)
	fmt.Println("ok")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
