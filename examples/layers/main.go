// Layers: the stackable-layers architecture itself (paper §2, Figures 1-2).
// Layers export and consume the same vnode interface, so new services can
// be "slipped in" without modifying their neighbours.  This example builds
// the paper's stack by hand — UFS at the bottom, the Ficus physical layer,
// an NFS transport hop, the Ficus logical layer on top — and then slips a
// monitoring layer (the kind of service the paper's §1 anticipates) between
// the client and the stack without touching anything below it.
//
// Run with: go run ./examples/layers
package main

import (
	"fmt"
	"log"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/nfs"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

func main() {
	vol := ids.VolumeHandle{Allocator: 1, Volume: 1}

	// Bottom of the stack: a UFS on a simulated disk.
	dev := disk.New(8192)
	fs, err := ufs.Mkfs(dev, 2048, nil)
	if err != nil {
		log.Fatal(err)
	}
	store := ufsvn.New(fs)
	fmt.Println("layer 1: UFS (storage substrate)")

	// Ficus physical layer: file replicas, version vectors, aux attributes.
	phys, err := physical.Format(store, vol, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layer 2: Ficus physical (replica storage, version vectors)")

	// NFS transport between hosts: the server exports the physical layer,
	// the client re-exports it as a vnode layer.
	net := simnet.New(1)
	server := net.Host("server")
	client := net.Host("client")
	nfs.Serve(server, phys, phys)
	nfsClient := nfs.Dial(client, "server", nil)
	fmt.Println("layer 3: NFS transport (stateless; drops open/close)")

	// Ficus logical layer: the one-copy abstraction.
	lay := logical.New(vol, []logical.Replica{{ID: 1, FS: nfsClient}}, logical.Options{})
	fmt.Println("layer 4: Ficus logical (one-copy abstraction)")

	// Slip in a monitoring layer ABOVE the whole stack: it counts every
	// vnode operation that crosses it, with no changes to the layers below.
	var opLog []string
	monitored := vnode.NewHook(lay, func(op string) { opLog = append(opLog, op) })
	fmt.Println("layer 5: monitoring (transparently interposed)")

	root, err := monitored.Root()
	if err != nil {
		log.Fatal(err)
	}
	d, err := root.Mkdir("demo")
	if err != nil {
		log.Fatal(err)
	}
	f, err := d.Create("file", true)
	if err != nil {
		log.Fatal(err)
	}
	// The open travels the whole stack: the logical layer encodes it as a
	// lookup string because NFS would otherwise swallow it (§2.3)...
	if err := f.Open(vnode.OpenRead | vnode.OpenWrite); err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("stack of five layers"), 0); err != nil {
		log.Fatal(err)
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(vnode.OpenRead | vnode.OpenWrite); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote and read back through all five layers: %q\n", data)

	// ... and the physical layer, three layers down and across the "wire",
	// really did see the open/close bookkeeping.
	fmt.Printf("physical layer registered %d open(s) end to end\n", phys.TotalOpens())

	// The monitoring layer saw every operation the client issued.
	fmt.Printf("monitoring layer observed %d operations: %v\n", monitored.Ops(), opLog)

	// The disk underneath did real block I/O for all of it.
	fmt.Printf("disk traffic: %v\n", dev.Stats())
	fmt.Println("ok")
}
