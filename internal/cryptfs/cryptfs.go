// Package cryptfs is a stackable encryption layer — one of the services the
// paper expects to "slip in" to a vnode stack ("we expect to use it for
// performance monitoring, user authentication and encryption", §1).  It
// demonstrates the architectural claim: a layer that transforms file data
// transparently, added above any existing stack without modifying it.
//
// Data is encrypted with AES-CTR keyed per file: the counter stream is
// derived from the file's stable identity and the byte offset, so ReadAt
// and WriteAt at arbitrary offsets encrypt/decrypt independently — exactly
// the property a block-granular file system layer needs.  Names, directory
// structure and attributes pass through in the clear (sizes are preserved);
// only regular-file contents and symlink targets are protected.
package cryptfs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"

	"repro/internal/vnode"
)

// VFS wraps a lower file system with transparent data encryption.
type VFS struct {
	lower vnode.VFS
	key   [32]byte
}

// New derives a file-system key from secret and wraps lower.
func New(lower vnode.VFS, secret []byte) *VFS {
	return &VFS{lower: lower, key: sha256.Sum256(secret)}
}

// Root returns the wrapped root.
func (c *VFS) Root() (vnode.Vnode, error) {
	v, err := c.lower.Root()
	if err != nil {
		return nil, err
	}
	return &cnode{fs: c, lower: v}, nil
}

// Sync forwards to the lower layer.
func (c *VFS) Sync() error { return c.lower.Sync() }

// fileKey derives the per-file AES key from the layer key and the file's
// stable identity, so renames do not re-key and distinct files never share
// a counter stream.
func (c *VFS) fileKey(fileID string) []byte {
	h := sha256.New()
	h.Write(c.key[:])
	h.Write([]byte(fileID))
	return h.Sum(nil)[:32]
}

// xorKeyStreamAt applies the CTR keystream for absolute byte offset off.
func (c *VFS) xorKeyStreamAt(fileID string, p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	block, err := aes.NewCipher(c.fileKey(fileID))
	if err != nil {
		return err
	}
	bs := int64(block.BlockSize())
	// Initial counter for the AES block containing off.
	var iv [16]byte
	ctr := uint64(off / bs)
	for i := 0; i < 8; i++ {
		iv[15-i] = byte(ctr >> (8 * i))
	}
	stream := cipher.NewCTR(block, iv[:])
	// Discard the keystream prefix inside the first block.
	if skip := off % bs; skip != 0 {
		var sink [16]byte
		stream.XORKeyStream(sink[:skip], sink[:skip])
	}
	stream.XORKeyStream(p, p)
	return nil
}

type cnode struct {
	fs    *VFS
	lower vnode.Vnode
	// id caches the file's stable identity used for key derivation.
	id string
}

func (v *cnode) wrap(lower vnode.Vnode) vnode.Vnode { return &cnode{fs: v.fs, lower: lower} }

func (v *cnode) fileID() (string, error) {
	if v.id != "" {
		return v.id, nil
	}
	a, err := v.lower.Getattr()
	if err != nil {
		return "", err
	}
	v.id = a.FileID
	return v.id, nil
}

func (v *cnode) Handle() string { return v.lower.Handle() }

func (v *cnode) Lookup(name string) (vnode.Vnode, error) {
	c, err := v.lower.Lookup(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *cnode) Create(name string, excl bool) (vnode.Vnode, error) {
	c, err := v.lower.Create(name, excl)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

func (v *cnode) Mkdir(name string) (vnode.Vnode, error) {
	c, err := v.lower.Mkdir(name)
	if err != nil {
		return nil, err
	}
	return v.wrap(c), nil
}

// symlinkKeyID is the stable key-derivation identity for symlink targets.
// Symlinks are created in one operation, before any file identity exists,
// so targets are encrypted under a layer-wide stream rather than a per-file
// one (equal targets therefore produce equal ciphertexts — an accepted
// leak for this demonstration layer).
const symlinkKeyID = "\x00symlink-target\x00"

// Symlink stores the target encrypted and hex-armored (so it remains a
// valid string on any substrate); Readlink reverses it.
func (v *cnode) Symlink(name, target string) error {
	buf := []byte(target)
	if err := v.fs.xorKeyStreamAt(symlinkKeyID, buf, 0); err != nil {
		return err
	}
	return v.lower.Symlink(name, fmt.Sprintf("%x", buf))
}

func (v *cnode) Readlink() (string, error) {
	armored, err := v.lower.Readlink()
	if err != nil {
		return "", err
	}
	buf := make([]byte, len(armored)/2)
	if _, err := fmt.Sscanf(armored, "%x", &buf); err != nil {
		return "", vnode.EIO
	}
	if err := v.fs.xorKeyStreamAt(symlinkKeyID, buf, 0); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (v *cnode) Open(f vnode.OpenFlags) error  { return v.lower.Open(f) }
func (v *cnode) Close(f vnode.OpenFlags) error { return v.lower.Close(f) }

func (v *cnode) ReadAt(p []byte, off int64) (int, error) {
	id, err := v.fileID()
	if err != nil {
		return 0, err
	}
	n, rerr := v.lower.ReadAt(p, off)
	if n > 0 {
		if err := v.fs.xorKeyStreamAt(id, p[:n], off); err != nil {
			return 0, err
		}
	}
	return n, rerr
}

func (v *cnode) WriteAt(p []byte, off int64) (int, error) {
	id, err := v.fileID()
	if err != nil {
		return 0, err
	}
	enc := make([]byte, len(p))
	copy(enc, p)
	if err := v.fs.xorKeyStreamAt(id, enc, off); err != nil {
		return 0, err
	}
	return v.lower.WriteAt(enc, off)
}

// Truncate shrinks directly; growth is performed by writing encrypted
// zeros over the extension, because a substrate hole reads as plaintext
// zeros — which would decrypt to keystream garbage.
func (v *cnode) Truncate(size uint64) error {
	a, err := v.lower.Getattr()
	if err != nil {
		return err
	}
	if size <= a.Size {
		return v.lower.Truncate(size)
	}
	const chunk = 64 << 10
	zeros := make([]byte, chunk)
	for off := a.Size; off < size; {
		n := size - off
		if n > chunk {
			n = chunk
		}
		if _, err := v.WriteAt(zeros[:n], int64(off)); err != nil {
			return err
		}
		off += n
	}
	return nil
}

func (v *cnode) Fsync() error { return v.lower.Fsync() }

func (v *cnode) Getattr() (vnode.Attr, error) {
	a, err := v.lower.Getattr()
	if err == nil && v.id == "" {
		v.id = a.FileID
	}
	return a, err
}

func (v *cnode) Setattr(sa vnode.SetAttr) error {
	if sa.Size != nil {
		if err := v.Truncate(*sa.Size); err != nil {
			return err
		}
		sa.Size = nil
		if sa.Mode == nil {
			return nil
		}
	}
	return v.lower.Setattr(sa)
}
func (v *cnode) Access(mode uint16) error { return v.lower.Access(mode) }
func (v *cnode) Remove(name string) error { return v.lower.Remove(name) }
func (v *cnode) Rmdir(name string) error  { return v.lower.Rmdir(name) }

func (v *cnode) Link(name string, target vnode.Vnode) error {
	t, ok := target.(*cnode)
	if !ok || t.fs != v.fs {
		return vnode.EXDEV
	}
	return v.lower.Link(name, t.lower)
}

func (v *cnode) Rename(oldName string, dstDir vnode.Vnode, newName string) error {
	d, ok := dstDir.(*cnode)
	if !ok || d.fs != v.fs {
		return vnode.EXDEV
	}
	return v.lower.Rename(oldName, d.lower, newName)
}

func (v *cnode) Readdir() ([]vnode.Dirent, error) { return v.lower.Readdir() }
