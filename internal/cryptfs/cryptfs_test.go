package cryptfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

func newUFS(t *testing.T) vnode.VFS {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(4096), 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ufsvn.New(fs)
}

// TestConformance: the encryption layer is just another layer — the full
// suite must pass through it unchanged.
func TestConformance(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: ufs.MaxNameLen},
		func(t *testing.T) vnode.VFS { return New(newUFS(t), []byte("secret")) })
}

// TestConformanceOverFicus stacks the crypt layer ABOVE a complete Ficus
// logical layer: the §1 "slip in a layer" claim end to end.
func TestConformanceOverFicus(t *testing.T) {
	vol := ids.VolumeHandle{Allocator: 8, Volume: 8}
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: logical.MaxName},
		func(t *testing.T) vnode.VFS {
			fs, err := ufs.Mkfs(disk.New(8192), 2048, nil)
			if err != nil {
				t.Fatal(err)
			}
			phys, err := physical.Format(ufsvn.New(fs), vol, 1)
			if err != nil {
				t.Fatal(err)
			}
			lay := logical.New(vol, []logical.Replica{{ID: 1, FS: phys}}, logical.Options{})
			return New(lay, []byte("layered secret"))
		})
}

func TestCiphertextOnSubstrate(t *testing.T) {
	lower := newUFS(t)
	cfs := New(lower, []byte("key"))
	root, _ := cfs.Root()
	f, err := root.Create("secret.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("attack at dawn, repeatedly: attack at dawn attack at dawn")
	if err := vnode.WriteFile(f, plain); err != nil {
		t.Fatal(err)
	}
	// Through the layer: plaintext.
	got, err := vnode.ReadFile(f)
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("through layer: %q %v", got, err)
	}
	// On the substrate: ciphertext of the same length.
	lroot, _ := lower.Root()
	lf, err := lroot.Lookup("secret.txt")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := vnode.ReadFile(lf)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(plain) {
		t.Fatalf("size changed: %d vs %d", len(raw), len(plain))
	}
	if bytes.Equal(raw, plain) {
		t.Fatal("plaintext leaked to the substrate")
	}
	if bytes.Contains(raw, []byte("attack")) {
		t.Fatal("plaintext fragment leaked")
	}
}

func TestRandomOffsetReadWriteRoundTrip(t *testing.T) {
	cfs := New(newUFS(t), []byte("key"))
	root, _ := cfs.Root()
	f, _ := root.Create("f", true)
	// Property: any (data, offset) write reads back identically.
	check := func(data []byte, off16 uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(off16 % 5000)
		if _, err := f.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, off); err != nil && len(got) > 0 && !bytes.Equal(got, data) {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUnalignedOffsetsConsistent(t *testing.T) {
	cfs := New(newUFS(t), []byte("key"))
	root, _ := cfs.Root()
	f, _ := root.Create("f", true)
	full := make([]byte, 100)
	for i := range full {
		full[i] = byte(i)
	}
	if err := vnode.WriteFile(f, full); err != nil {
		t.Fatal(err)
	}
	// Reading any sub-range must match, regardless of CTR block alignment.
	for _, off := range []int64{0, 1, 15, 16, 17, 31, 33, 63, 99} {
		p := make([]byte, 1)
		if _, err := f.ReadAt(p, off); err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		if p[0] != byte(off) {
			t.Fatalf("off %d: got %d", off, p[0])
		}
	}
}

func TestDistinctFilesDistinctStreams(t *testing.T) {
	lower := newUFS(t)
	cfs := New(lower, []byte("key"))
	root, _ := cfs.Root()
	a, _ := root.Create("a", true)
	b, _ := root.Create("b", true)
	plain := []byte("identical plaintext")
	vnode.WriteFile(a, plain)
	vnode.WriteFile(b, plain)
	lroot, _ := lower.Root()
	la, _ := lroot.Lookup("a")
	lb, _ := lroot.Lookup("b")
	ra, _ := vnode.ReadFile(la)
	rb, _ := vnode.ReadFile(lb)
	if bytes.Equal(ra, rb) {
		t.Fatal("two files share a keystream")
	}
}

func TestWrongKeyReadsGarbage(t *testing.T) {
	lower := newUFS(t)
	good := New(lower, []byte("right key"))
	root, _ := good.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("sensitive"))

	bad := New(lower, []byte("wrong key"))
	broot, _ := bad.Root()
	bf, _ := broot.Lookup("f")
	got, err := vnode.ReadFile(bf)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("sensitive")) {
		t.Fatal("wrong key decrypted the data")
	}
}

func TestSymlinkTargetEncrypted(t *testing.T) {
	lower := newUFS(t)
	cfs := New(lower, []byte("key"))
	root, _ := cfs.Root()
	if err := root.Symlink("ln", "/very/secret/path"); err != nil {
		t.Fatal(err)
	}
	l, _ := root.Lookup("ln")
	got, err := l.Readlink()
	if err != nil || got != "/very/secret/path" {
		t.Fatalf("%q %v", got, err)
	}
	lroot, _ := lower.Root()
	ll, _ := lroot.Lookup("ln")
	raw, _ := ll.Readlink()
	if raw == "/very/secret/path" {
		t.Fatal("symlink target leaked to substrate")
	}
}

func TestRenameKeepsKey(t *testing.T) {
	cfs := New(newUFS(t), []byte("key"))
	root, _ := cfs.Root()
	f, _ := root.Create("a", true)
	vnode.WriteFile(f, []byte("stable across rename"))
	if err := root.Rename("a", root, "b"); err != nil {
		t.Fatal(err)
	}
	g, err := root.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(g)
	if err != nil || string(got) != "stable across rename" {
		t.Fatalf("%q %v (key derivation must follow identity, not name)", got, err)
	}
}
