package repl

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

func localVVOf(t *testing.T, l *physical.Layer, fid ids.FileID) physical.PullRequest {
	t.Helper()
	st, err := l.FileInfo(physical.RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	return physical.PullRequest{Dir: physical.RootPath(), File: fid, LocalVV: st.Aux.VV, HasLocal: true}
}

// TestPullBatchConditionalSemantics drives one batch covering every
// conditional-pull outcome and checks the whole batch costs a single RPC.
func TestPullBatchConditionalSemantics(t *testing.T) {
	r := newRig(t)

	// dominated: B wrote again after A last synced — bytes must ship.
	domFID := writeFile(t, r.lB, "dom", "v1")
	// stale: A's copy will exactly equal B's — no bytes.
	staleFID := writeFile(t, r.lB, "stale", "same")
	// concurrent: both sides will update independently after syncing.
	concFID := writeFile(t, r.lB, "conc", "base")
	if _, err := recon.ReconcileVolume(r.lA, r.client); err != nil {
		t.Fatal(err)
	}
	writeFile(t, r.lB, "dom", "v2")
	writeFile(t, r.lB, "conc", "b-side")
	writeFile(t, r.lA, "conc", "a-side")
	// directory: propagates by operation replay, never as file data.
	rootB, _ := r.lB.Root()
	d, err := rootB.Mkdir("subdir")
	if err != nil {
		t.Fatal(err)
	}
	da, _ := d.Getattr()
	dirFID, _ := ids.ParseFileID(da.FileID)
	// fresh: only B has it; A pulls unconditionally (HasLocal=false).
	freshFID := writeFile(t, r.lB, "fresh", "new file")

	reqs := []physical.PullRequest{
		localVVOf(t, r.lA, domFID),
		localVVOf(t, r.lA, staleFID),
		localVVOf(t, r.lA, concFID),
		{Dir: physical.RootPath(), File: ids.FileID{Issuer: 9, Seq: 999}, HasLocal: false}, // ghost
		{Dir: physical.RootPath(), File: dirFID, HasLocal: false},
		{Dir: physical.RootPath(), File: freshFID, HasLocal: false},
	}
	r.net.ResetStats()
	results, err := r.client.PullBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.net.Stats(); s.RPCs != 1 {
		t.Fatalf("batch of %d cost %d RPCs, want 1", len(reqs), s.RPCs)
	}
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	want := []physical.PullStatus{
		physical.PullData, physical.PullStale, physical.PullConcurrent,
		physical.PullNotStored, physical.PullIsDir, physical.PullData,
	}
	for i, w := range want {
		if results[i].Status != w {
			t.Fatalf("entry %d: status %v, want %v", i, results[i].Status, w)
		}
	}
	if string(results[0].Data) != "v2" || results[0].Aux.Type != physical.KFile {
		t.Fatalf("dominated entry: %q %+v", results[0].Data, results[0].Aux)
	}
	if results[1].Data != nil {
		t.Fatal("stale entry shipped bytes")
	}
	bi, _ := r.lB.FileInfo(physical.RootPath(), concFID)
	if !results[2].RemoteVV.Equal(bi.Aux.VV) {
		t.Fatalf("concurrent entry remote vv %v, want %v", results[2].RemoteVV, bi.Aux.VV)
	}
	if string(results[5].Data) != "new file" {
		t.Fatalf("fresh entry: %q", results[5].Data)
	}
}

// TestPullBatchReplayIdempotent: a lost reply makes the server execute the
// batch twice; the client's retry must still converge to a single install,
// and re-announcing the already-pulled version must drop as stale without
// pulling again.
func TestPullBatchReplayIdempotent(t *testing.T) {
	r := newRig(t)
	fid := writeFile(t, r.lB, "f", "v1")
	if _, err := recon.ReconcileVolume(r.lA, r.client); err != nil {
		t.Fatal(err)
	}
	writeFile(t, r.lB, "f", "v2")
	r.lA.NoteNewVersion(physical.RootPath(), fid, 2)
	find := func(rep ids.ReplicaID) recon.Peer {
		if rep == 2 {
			return r.client
		}
		return nil
	}
	r.net.ScriptFaults("a", "b", simnet.FaultReplyLost)
	stats, err := recon.PropagateOnce(r.lA, find)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("%v %v", stats, err)
	}
	if s := r.net.Stats(); s.RPCRepliesLost != 1 {
		t.Fatalf("scripted fault not consumed: %+v", s)
	}
	rootA, _ := r.lA.Root()
	f, _ := rootA.Lookup("f")
	data, _ := vnode.ReadFile(f)
	if string(data) != "v2" {
		t.Fatalf("%q", data)
	}
	// Replay of the same announcement: now stale, zero bytes pulled.
	r.lA.NoteNewVersion(physical.RootPath(), fid, 2)
	stats, err = recon.PropagateOnce(r.lA, find)
	if err != nil || stats.FilesPulled != 0 || stats.Failures != 0 {
		t.Fatalf("replay pass: %v %v", stats, err)
	}
	if n := len(r.lA.PendingVersions()); n != 0 {
		t.Fatalf("%d entries still pending after stale drop", n)
	}
}

// TestWithRetryReturnsCopy: deriving a client with a different policy must
// not mutate the shared original.
func TestWithRetryReturnsCopy(t *testing.T) {
	r := newRig(t)
	before := r.client.policy.MaxAttempts
	c2 := r.client.WithRetry(retry.Policy{MaxAttempts: 1})
	if c2 == r.client {
		t.Fatal("WithRetry returned the receiver, not a copy")
	}
	if r.client.policy.MaxAttempts != before {
		t.Fatalf("receiver policy mutated: MaxAttempts %d -> %d",
			before, r.client.policy.MaxAttempts)
	}
	if c2.policy.MaxAttempts != 1 {
		t.Fatalf("derived policy not applied: %d", c2.policy.MaxAttempts)
	}
}

// TestErrorClassesCrossWire: remote errors reconstruct with their sentinel
// identity and transience intact, so retry classification keeps working on
// the far side of an RPC.
func TestErrorClassesCrossWire(t *testing.T) {
	r := newRig(t)

	// No such replica at the peer: sentinel survives, and it classifies as
	// transient (replica sets change; the pass defers rather than aborts).
	bogus := NewClient(r.net.Host("a"), "b", ids.VolumeReplicaHandle{Vol: testVol, Replica: 42})
	err := bogus.Ping()
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	if !retry.Transient(err) {
		t.Fatalf("ErrNoReplica off the wire must classify transient: %v", err)
	}

	// NotStored keeps its sentinel (already covered end-to-end above, but
	// pin the class mapping both ways).
	ghost := ids.FileID{Issuer: 9, Seq: 999}
	err = func() error { _, e := r.client.FileInfo(physical.RootPath(), ghost); return e }()
	if !errors.Is(err, physical.ErrNotStored) || retry.Transient(err) {
		t.Fatalf("NotStored off the wire: %v", err)
	}

	// An unknown op is a permanent peer error: message crosses, transience
	// does not appear.
	_, err = r.client.call(&request{Op: 99, Vol: testVol, Replica: 2})
	if err == nil || retry.Transient(err) {
		t.Fatalf("unknown op: %v", err)
	}

	// The class mapping itself round-trips for every class.
	cases := []error{
		nil,
		errors.New("boom"),
		&peerError{msg: "flaky", transient: true},
		physical.ErrNotStored,
		ErrNoReplica,
	}
	wantClass := []byte{classOK, classPermanent, classTransient, classNotStored, classNoReplica}
	for i, e := range cases {
		c := classOf(e)
		if c != wantClass[i] {
			t.Fatalf("classOf(%v) = %d, want %d", e, c, wantClass[i])
		}
		back := errFromClass(c, "msg")
		switch c {
		case classOK:
			if back != nil {
				t.Fatalf("classOK rebuilt as %v", back)
			}
		case classTransient:
			if !retry.Transient(back) {
				t.Fatalf("transient class rebuilt non-transient: %v", back)
			}
		case classPermanent:
			if retry.Transient(back) {
				t.Fatalf("permanent class rebuilt transient: %v", back)
			}
		case classNotStored:
			if !errors.Is(back, physical.ErrNotStored) {
				t.Fatalf("notStored class lost sentinel: %v", back)
			}
		case classNoReplica:
			if !errors.Is(back, ErrNoReplica) || !retry.Transient(back) {
				t.Fatalf("noReplica class: %v", back)
			}
		}
	}
}
