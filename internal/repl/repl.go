// Package repl carries the replication-control traffic between Ficus
// physical layers on different hosts: the pulls issued by the update
// propagation daemon and the reconciliation protocol (paper §3.2–§3.3),
// plus the volume-replica probes autografting needs (§4.4).
//
// It is deliberately separate from the NFS transport: NFS carries the
// client data path between logical and physical layers, while repl is the
// physical-to-physical back channel reconciliation runs over.  (In the real
// Ficus this traffic ran through customized user-level daemons; the
// separation of data path and reconciliation path is faithful.)
//
// Messages use the compact hand-rolled codec in codec.go.  Peer-side
// failures travel with a class tag (transient / permanent / not-stored /
// no-replica) and are rebuilt as errors of the matching kind client-side,
// so retry classification works identically for local and remote failures.
package repl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/vv"
)

// Service is the simnet RPC service name.
const Service = "ficus-repl"

// Errors returned by clients.
var (
	// ErrUnreachable reports that the peer host cannot be contacted.
	ErrUnreachable = errors.New("repl: peer unreachable")
	// ErrNoReplica reports that the peer host stores no such volume replica.
	ErrNoReplica = errors.New("repl: no such volume replica at peer")
	// ErrDeadline reports a call abandoned at the client's per-RPC deadline:
	// the peer was reachable but too slow (or its reply hung).  Deadline
	// errors are transient — and they also match ErrUnreachable, because to
	// health tracking a peer that cannot answer in time is failing.
	ErrDeadline = errors.New("repl: rpc deadline exceeded")
)

// unreachableError marks a transport failure: it matches ErrUnreachable
// via Is and keeps the transport cause on the Unwrap chain, so callers
// (and retry.Transient) can still see simnet.ErrUnreachable underneath.
type unreachableError struct{ cause error }

func (e *unreachableError) Error() string { return ErrUnreachable.Error() + ": " + e.cause.Error() }

// In an Is implementation the sentinel identity test is the idiom —
// errors.Is itself supplies the unwrapping.
func (e *unreachableError) Is(target error) bool { return target == ErrUnreachable } //ficusvet:ignore errclass

func (e *unreachableError) Unwrap() error { return e.cause }

// deadlineError marks a call that ran out its deadline.  It matches both
// ErrDeadline (so callers can tell slowness from absence) and
// ErrUnreachable (so every existing failure path treats it as a failed
// exchange); the transport cause stays on the Unwrap chain, where
// retry.Transient finds simnet.ErrDeadline.
type deadlineError struct{ cause error }

func (e *deadlineError) Error() string { return ErrDeadline.Error() + ": " + e.cause.Error() }

func (e *deadlineError) Is(target error) bool { //ficusvet:ignore errclass
	return target == ErrDeadline || target == ErrUnreachable
}

func (e *deadlineError) Unwrap() error { return e.cause }

// peerError is a failure that happened at the peer, rebuilt from the wire:
// the class tag decides transience, so retry.Policy.IsTransient classifies
// a remote transient failure exactly as it would a local one.
type peerError struct {
	msg       string
	transient bool
}

func (e *peerError) Error() string { return "repl: peer error: " + e.msg }

// Transient implements the retry package's classification interface.
func (e *peerError) Transient() bool { return e.transient }

// noReplicaError matches ErrNoReplica and classifies as transient: a
// replica the peer does not (currently) serve — mid-autograft, or just
// unregistered — should defer the work item, not poison the daemon pass.
type noReplicaError struct{}

func (noReplicaError) Error() string { return ErrNoReplica.Error() }

func (noReplicaError) Is(target error) bool { return target == ErrNoReplica } //ficusvet:ignore errclass

func (noReplicaError) Transient() bool { return true }

// classOf maps a peer-side error onto its wire class.
func classOf(err error) byte {
	switch {
	case err == nil:
		return classOK
	case errors.Is(err, physical.ErrNotStored):
		return classNotStored
	case errors.Is(err, ErrNoReplica):
		return classNoReplica
	case retry.Transient(err):
		return classTransient
	default:
		return classPermanent
	}
}

// errFromClass rebuilds the client-side error for a wire class.
func errFromClass(class byte, msg string) error {
	switch class {
	case classOK:
		return nil
	case classNotStored:
		return physical.ErrNotStored
	case classNoReplica:
		return noReplicaError{}
	case classTransient:
		return &peerError{msg: msg, transient: true}
	default:
		return &peerError{msg: msg}
	}
}

type opCode byte

const (
	opPing opCode = iota
	opDirEntries
	opFileInfo
	opFileData
	opListReplicas
	opPullBatch
	opPullBatchDelta // v3: pull with held-block advertisement, delta answers
)

type request struct {
	ver     byte // wire version to encode at; 0 means wireV2 (see wireVer)
	Op      opCode
	Vol     ids.VolumeHandle
	Replica ids.ReplicaID
	Dir     []ids.FileID
	File    ids.FileID
	Pulls   []physical.PullRequest // opPullBatch / opPullBatchDelta
	Have    []physical.BlockAddr   // opPullBatchDelta only (v3): blocks the puller holds
}

type response struct {
	ver      byte   // wire version to encode at; a server echoes the request's
	Class    byte   // classOK = success; otherwise the error class
	Err      string // message for classTransient/classPermanent
	Entries  []physical.Entry
	VV       vv.Vector
	Aux      physical.Aux
	Size     uint64
	Data     []byte
	Replicas []ids.ReplicaID
	Pulls    []wirePull // opPullBatch only; one per request entry
}

// wirePull is one batched-pull answer on the wire: physical.PullResult
// with the error flattened to (class, message).
type wirePull struct {
	Status   byte
	Class    byte
	Err      string
	Data     []byte
	Aux      physical.Aux
	Size     uint64
	RemoteVV vv.Vector
	Sum      *physical.Checksums // serving replica's sealed checksums, if any

	// Delta answers (v3, opPullBatchDelta): the version's block manifest
	// plus only the blocks the puller's advertisement lacked.  Data is nil
	// when Manifest is set.
	Manifest *physical.BlockManifest
	Missing  []physical.Block
}

// Server exports the volume replicas registered on one host.
type Server struct {
	mu     sync.Mutex
	layers map[ids.VolumeReplicaHandle]*physical.Layer
	maxVer byte // 0 = wireVersion; lowered in tests to emulate an old peer
}

// NewServer installs a repl server on the host.
func NewServer(host *simnet.Host) *Server {
	s := &Server{layers: make(map[ids.VolumeReplicaHandle]*physical.Layer)}
	host.HandleRPC(Service, s.handle)
	return s
}

// Register exports a volume replica.
func (s *Server) Register(l *physical.Layer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.layers[l.VolumeReplica()] = l
}

// Unregister withdraws a volume replica.
func (s *Server) Unregister(vr ids.VolumeReplicaHandle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.layers, vr)
}

func (s *Server) layerFor(vol ids.VolumeHandle, r ids.ReplicaID) *physical.Layer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.layers[ids.VolumeReplicaHandle{Vol: vol, Replica: r}]
}

// SetMaxWireVersion caps the wire version this server accepts (testing the
// mixed-version cluster path: a capped server behaves like an old build,
// failing v3 requests at decode just as a genuine v2 peer would).
func (s *Server) SetMaxWireVersion(v byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxVer = v
}

func (s *Server) handle(reqBytes []byte) ([]byte, error) {
	req, err := decodeRequest(reqBytes)
	if err != nil {
		bad := response{Class: classPermanent, Err: "bad request"}
		return bad.encode(nil), nil
	}
	s.mu.Lock()
	maxVer := s.maxVer
	s.mu.Unlock()
	if maxVer != 0 && wireVer(req.ver) > maxVer {
		// An old build's decoder rejects the version byte outright; its
		// answer is the same permanent "bad request" the decode path gives.
		bad := response{Class: classPermanent, Err: "bad request"}
		return bad.encode(nil), nil
	}
	resp := s.dispatch(req)
	resp.ver = req.ver // answer at the version the request arrived with
	return resp.encode(nil), nil
}

func (s *Server) dispatch(req *request) response {
	if req.Op == opListReplicas {
		s.mu.Lock()
		var reps []ids.ReplicaID
		for vr := range s.layers {
			if vr.Vol == req.Vol {
				reps = append(reps, vr.Replica)
			}
		}
		s.mu.Unlock()
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		return response{Replicas: reps}
	}
	l := s.layerFor(req.Vol, req.Replica)
	if l == nil {
		return response{Class: classNoReplica}
	}
	switch req.Op {
	case opPing:
		return response{}
	case opDirEntries:
		ds, err := l.DirEntries(req.Dir)
		if err != nil {
			return errResponse(err)
		}
		return response{Entries: ds.Entries, VV: ds.VV, Aux: ds.Aux}
	case opFileInfo:
		st, err := l.FileInfo(req.Dir, req.File)
		if err != nil {
			return errResponse(err)
		}
		return response{Aux: st.Aux, Size: st.Size}
	case opFileData:
		data, st, err := l.FileData(req.Dir, req.File)
		if err != nil {
			return errResponse(err)
		}
		return response{Data: data, Aux: st.Aux, Size: st.Size}
	case opPullBatch:
		// The layer answers per entry and never fails the whole batch.
		results, _ := l.PullBatch(req.Pulls)
		return response{Pulls: pullsToWire(results)}
	case opPullBatchDelta:
		results, _ := l.PullBatchDelta(req.Pulls, req.Have)
		return response{Pulls: pullsToWire(results)}
	default:
		return response{Class: classPermanent, Err: "unknown op"}
	}
}

// pullsToWire flattens a batch of pull results for the wire (shared by the
// whole-file and delta pull ops; Manifest/Missing only travel on v3).
func pullsToWire(results []physical.PullResult) []wirePull {
	wps := make([]wirePull, len(results))
	for i := range results {
		r := &results[i]
		wps[i] = wirePull{Status: byte(r.Status), Data: r.Data, Aux: r.Aux, Size: r.Size, RemoteVV: r.RemoteVV, Sum: r.Sum, Manifest: r.Manifest, Missing: r.Missing}
		if r.Err != nil {
			wps[i].Class = classOf(r.Err)
			wps[i].Err = r.Err.Error()
		}
	}
	return wps
}

// pullsFromWire rebuilds the per-entry results of a batched pull, with each
// entry's error reconstructed from its wire class.
func pullsFromWire(nreq int, resp *response) ([]physical.PullResult, error) {
	if len(resp.Pulls) != nreq {
		return nil, fmt.Errorf("repl: pull batch: sent %d entries, got %d answers", nreq, len(resp.Pulls))
	}
	out := make([]physical.PullResult, len(resp.Pulls))
	for i := range resp.Pulls {
		w := &resp.Pulls[i]
		out[i] = physical.PullResult{
			Status:   physical.PullStatus(w.Status),
			Data:     w.Data,
			Aux:      w.Aux,
			Size:     w.Size,
			RemoteVV: w.RemoteVV,
			Sum:      w.Sum,
			Manifest: w.Manifest,
			Missing:  w.Missing,
		}
		if out[i].Status == physical.PullError {
			out[i].Err = errFromClass(w.Class, w.Err)
			if out[i].Err == nil {
				out[i].Err = &peerError{msg: "unspecified pull error"}
			}
		}
	}
	return out, nil
}

func errResponse(err error) response {
	class := classOf(err)
	resp := response{Class: class}
	if class == classTransient || class == classPermanent {
		resp.Err = err.Error()
	}
	return resp
}

// Client is a recon.Peer (and recon.BatchPuller) backed by RPC to a remote
// host's repl server.
//
// Every repl operation is an idempotent pull (reads of remote replica
// state), so the client transparently retries transport failures under its
// retry policy: a link whose requests or replies are occasionally lost —
// including the at-most-once ambiguity of a reply lost after the handler
// ran — degrades to extra traffic instead of a failed daemon pass.
type Client struct {
	host   *simnet.Host
	addr   simnet.Addr
	vr     ids.VolumeReplicaHandle
	policy retry.Policy

	// deadline bounds each RPC attempt in virtual ticks (0 = none): a slow
	// or hung peer costs at most deadline ticks per attempt instead of an
	// unbounded wait, surfacing as a transient ErrDeadline.
	deadline uint64

	// noDelta caches a peer's refusal of the v3 delta op, so a mixed-version
	// cluster pays the downgrade probe once per peer, not once per batch.  A
	// pointer: WithRetry copies the struct, and every copy must share the
	// verdict.
	noDelta *atomic.Bool

	// lastElapsed records the summed virtual ticks of the most recent
	// operation's attempts — the latency sample the caller's health EWMA
	// feeds on.  Shared across copies, like noDelta.
	lastElapsed *atomic.Uint64
}

var (
	_ recon.Peer        = (*Client)(nil)
	_ recon.BatchPuller = (*Client)(nil)
)

// NewClient builds a peer for the volume replica vr served at addr,
// issuing calls from host, retrying under retry.Default().
func NewClient(host *simnet.Host, addr simnet.Addr, vr ids.VolumeReplicaHandle) *Client {
	return &Client{host: host, addr: addr, vr: vr, policy: retry.Default(), noDelta: new(atomic.Bool), lastElapsed: new(atomic.Uint64)}
}

// WithRetry returns a copy of the client configured with a different retry
// policy (MaxAttempts: 1 disables in-call retries).  The receiver is left
// untouched, so a shared client never changes policy under other callers.
func (c *Client) WithRetry(p retry.Policy) *Client {
	cp := *c
	cp.policy = p
	return &cp
}

// WithDeadline returns a copy of the client whose every RPC attempt is
// bounded by d virtual ticks (0 disables the bound).  The receiver is left
// untouched.
func (c *Client) WithDeadline(d uint64) *Client {
	cp := *c
	cp.deadline = d
	return &cp
}

// LastElapsed returns the virtual ticks the most recent operation spent on
// the wire, summed over its in-call retries.
func (c *Client) LastElapsed() uint64 { return c.lastElapsed.Load() }

// Addr returns the peer host address.
func (c *Client) Addr() simnet.Addr { return c.addr }

// Replica implements recon.Peer.
func (c *Client) Replica() ids.ReplicaID { return c.vr.Replica }

func (c *Client) call(req *request) (*response, error) {
	req.Vol = c.vr.Vol
	req.Replica = c.vr.Replica
	buf := getBuf()
	*buf = req.encode((*buf)[:0])
	var respBytes []byte
	var elapsed uint64
	err := c.policy.Do(func() error {
		var err error
		var ticks uint64
		respBytes, ticks, err = c.host.CallT(c.addr, Service, *buf, c.deadline)
		elapsed += ticks
		if err != nil {
			if errors.Is(err, simnet.ErrDeadline) {
				return &deadlineError{cause: err}
			}
			return &unreachableError{cause: err}
		}
		return nil
	})
	putBuf(buf)
	c.lastElapsed.Store(elapsed)
	if err != nil {
		return nil, err
	}
	resp, err := decodeResponse(respBytes)
	if err != nil {
		return nil, err
	}
	if resp.Class != classOK {
		return nil, errFromClass(resp.Class, resp.Err)
	}
	return resp, nil
}

// Ping verifies the peer host serves this volume replica.
func (c *Client) Ping() error {
	_, err := c.call(&request{Op: opPing})
	return err
}

// DirEntries implements recon.Peer.
func (c *Client) DirEntries(dirPath []ids.FileID) (physical.DirState, error) {
	resp, err := c.call(&request{Op: opDirEntries, Dir: dirPath})
	if err != nil {
		return physical.DirState{}, err
	}
	return physical.DirState{Entries: resp.Entries, VV: resp.VV, Aux: resp.Aux}, nil
}

// FileInfo implements recon.Peer.
func (c *Client) FileInfo(dirPath []ids.FileID, fid ids.FileID) (physical.FileState, error) {
	resp, err := c.call(&request{Op: opFileInfo, Dir: dirPath, File: fid})
	if err != nil {
		return physical.FileState{}, err
	}
	return physical.FileState{Aux: resp.Aux, Size: resp.Size}, nil
}

// FileData implements recon.Peer.
func (c *Client) FileData(dirPath []ids.FileID, fid ids.FileID) ([]byte, physical.FileState, error) {
	resp, err := c.call(&request{Op: opFileData, Dir: dirPath, File: fid})
	if err != nil {
		return nil, physical.FileState{}, err
	}
	return resp.Data, physical.FileState{Aux: resp.Aux, Size: resp.Size}, nil
}

// PullBatch implements recon.BatchPuller: one RPC answers the whole batch
// of conditional pulls, with per-entry errors rebuilt from their wire
// class.  A transport failure (after retries) fails the whole call.
func (c *Client) PullBatch(reqs []physical.PullRequest) ([]physical.PullResult, error) {
	resp, err := c.call(&request{Op: opPullBatch, Pulls: reqs})
	if err != nil {
		return nil, err
	}
	return pullsFromWire(len(reqs), resp)
}

// PullBatchDelta implements recon.DeltaPuller: like PullBatch, but the
// request advertises the block addresses this replica already holds, and
// answers for checksummed files come back as (manifest, missing blocks)
// instead of full data.  A peer that predates the delta op answers it with
// a permanent error; the client notes that once and degrades this and every
// later batch to plain PullBatch, so mixed-version clusters converge at v2.
func (c *Client) PullBatchDelta(reqs []physical.PullRequest, have []physical.BlockAddr) ([]physical.PullResult, error) {
	if c.noDelta.Load() {
		return c.PullBatch(reqs)
	}
	resp, err := c.call(&request{ver: wireV3, Op: opPullBatchDelta, Pulls: reqs, Have: have})
	if err != nil {
		var pe *peerError
		if errors.As(err, &pe) && !pe.transient {
			// "bad request" / "unknown op": the peer speaks no v3.
			c.noDelta.Store(true)
			return c.PullBatch(reqs)
		}
		return nil, err
	}
	return pullsFromWire(len(reqs), resp)
}

// ListReplicas asks which replicas of vol the host at addr serves (an
// idempotent probe, retried under the default policy).
func ListReplicas(host *simnet.Host, addr simnet.Addr, vol ids.VolumeHandle) ([]ids.ReplicaID, error) {
	req := request{Op: opListReplicas, Vol: vol}
	buf := getBuf()
	*buf = req.encode((*buf)[:0])
	var respBytes []byte
	err := retry.Default().Do(func() error {
		var err error
		respBytes, err = host.Call(addr, Service, *buf)
		if err != nil {
			return &unreachableError{cause: err}
		}
		return nil
	})
	putBuf(buf)
	if err != nil {
		return nil, err
	}
	resp, err := decodeResponse(respBytes)
	if err != nil {
		return nil, err
	}
	if resp.Class != classOK {
		return nil, errFromClass(resp.Class, resp.Err)
	}
	return resp.Replicas, nil
}
