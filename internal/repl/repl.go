// Package repl carries the replication-control traffic between Ficus
// physical layers on different hosts: the pulls issued by the update
// propagation daemon and the reconciliation protocol (paper §3.2–§3.3),
// plus the volume-replica probes autografting needs (§4.4).
//
// It is deliberately separate from the NFS transport: NFS carries the
// client data path between logical and physical layers, while repl is the
// physical-to-physical back channel reconciliation runs over.  (In the real
// Ficus this traffic ran through customized user-level daemons; the
// separation of data path and reconciliation path is faithful.)
package repl

import (
	"bytes"
	"encoding/gob"
	"errors"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/vv"
)

// Service is the simnet RPC service name.
const Service = "ficus-repl"

// Errors returned by clients.
var (
	// ErrUnreachable reports that the peer host cannot be contacted.
	ErrUnreachable = errors.New("repl: peer unreachable")
	// ErrNoReplica reports that the peer host stores no such volume replica.
	ErrNoReplica = errors.New("repl: no such volume replica at peer")
)

// unreachableError marks a transport failure: it matches ErrUnreachable
// via Is and keeps the transport cause on the Unwrap chain, so callers
// (and retry.Transient) can still see simnet.ErrUnreachable underneath.
type unreachableError struct{ cause error }

func (e *unreachableError) Error() string { return ErrUnreachable.Error() + ": " + e.cause.Error() }

// In an Is implementation the sentinel identity test is the idiom —
// errors.Is itself supplies the unwrapping.
func (e *unreachableError) Is(target error) bool { return target == ErrUnreachable } //ficusvet:ignore errclass

func (e *unreachableError) Unwrap() error { return e.cause }

type opCode int

const (
	opPing opCode = iota
	opDirEntries
	opFileInfo
	opFileData
	opListReplicas
)

type request struct {
	Op      opCode
	Vol     ids.VolumeHandle
	Replica ids.ReplicaID
	Dir     []ids.FileID
	File    ids.FileID
}

type wireEntry struct {
	EID     ids.FileID
	Name    string
	Child   ids.FileID
	Kind    byte
	Deleted bool
	Value   string
}

type response struct {
	Err       string // "" = ok
	NotStored bool
	NoReplica bool
	Entries   []wireEntry
	VV        vv.Vector
	Aux       wireAux
	Size      uint64
	Data      []byte
	Replicas  []ids.ReplicaID
}

type wireAux struct {
	Type     byte
	Nlink    uint32
	VV       vv.Vector
	GraftVol ids.VolumeHandle
}

func toWireAux(a physical.Aux) wireAux {
	return wireAux{Type: byte(a.Type), Nlink: a.Nlink, VV: a.VV.Clone(), GraftVol: a.GraftVol}
}

func fromWireAux(w wireAux) physical.Aux {
	return physical.Aux{Type: physical.Kind(w.Type), Nlink: w.Nlink, VV: w.VV.Clone(), GraftVol: w.GraftVol}
}

// Server exports the volume replicas registered on one host.
type Server struct {
	mu     sync.Mutex
	layers map[ids.VolumeReplicaHandle]*physical.Layer
}

// NewServer installs a repl server on the host.
func NewServer(host *simnet.Host) *Server {
	s := &Server{layers: make(map[ids.VolumeReplicaHandle]*physical.Layer)}
	host.HandleRPC(Service, s.handle)
	return s
}

// Register exports a volume replica.
func (s *Server) Register(l *physical.Layer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.layers[l.VolumeReplica()] = l
}

// Unregister withdraws a volume replica.
func (s *Server) Unregister(vr ids.VolumeReplicaHandle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.layers, vr)
}

func (s *Server) layerFor(vol ids.VolumeHandle, r ids.ReplicaID) *physical.Layer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.layers[ids.VolumeReplicaHandle{Vol: vol, Replica: r}]
}

func (s *Server) handle(reqBytes []byte) ([]byte, error) {
	var req request
	if err := gob.NewDecoder(bytes.NewReader(reqBytes)).Decode(&req); err != nil {
		return marshal(response{Err: "bad request"})
	}
	return marshal(s.dispatch(&req))
}

func marshal(resp response) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *Server) dispatch(req *request) response {
	if req.Op == opListReplicas {
		s.mu.Lock()
		var reps []ids.ReplicaID
		for vr := range s.layers {
			if vr.Vol == req.Vol {
				reps = append(reps, vr.Replica)
			}
		}
		s.mu.Unlock()
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		return response{Replicas: reps}
	}
	l := s.layerFor(req.Vol, req.Replica)
	if l == nil {
		return response{NoReplica: true}
	}
	switch req.Op {
	case opPing:
		return response{}
	case opDirEntries:
		ds, err := l.DirEntries(req.Dir)
		if err != nil {
			return errResponse(err)
		}
		wes := make([]wireEntry, len(ds.Entries))
		for i, e := range ds.Entries {
			wes[i] = wireEntry{EID: e.EID, Name: e.Name, Child: e.Child, Kind: byte(e.Kind), Deleted: e.Deleted, Value: e.Value}
		}
		return response{Entries: wes, VV: ds.VV, Aux: toWireAux(ds.Aux)}
	case opFileInfo:
		st, err := l.FileInfo(req.Dir, req.File)
		if err != nil {
			return errResponse(err)
		}
		return response{Aux: toWireAux(st.Aux), Size: st.Size}
	case opFileData:
		data, st, err := l.FileData(req.Dir, req.File)
		if err != nil {
			return errResponse(err)
		}
		return response{Data: data, Aux: toWireAux(st.Aux), Size: st.Size}
	default:
		return response{Err: "unknown op"}
	}
}

func errResponse(err error) response {
	if errors.Is(err, physical.ErrNotStored) {
		return response{NotStored: true}
	}
	return response{Err: err.Error()}
}

// Client is a recon.Peer backed by RPC to a remote host's repl server.
//
// Every repl operation is an idempotent pull (reads of remote replica
// state), so the client transparently retries transport failures under its
// retry policy: a link whose requests or replies are occasionally lost —
// including the at-most-once ambiguity of a reply lost after the handler
// ran — degrades to extra traffic instead of a failed daemon pass.
type Client struct {
	host   *simnet.Host
	addr   simnet.Addr
	vr     ids.VolumeReplicaHandle
	policy retry.Policy
}

var _ recon.Peer = (*Client)(nil)

// NewClient builds a peer for the volume replica vr served at addr,
// issuing calls from host, retrying under retry.Default().
func NewClient(host *simnet.Host, addr simnet.Addr, vr ids.VolumeReplicaHandle) *Client {
	return &Client{host: host, addr: addr, vr: vr, policy: retry.Default()}
}

// WithRetry returns the client configured with a different retry policy
// (MaxAttempts: 1 disables in-call retries).
func (c *Client) WithRetry(p retry.Policy) *Client {
	c.policy = p
	return c
}

// Addr returns the peer host address.
func (c *Client) Addr() simnet.Addr { return c.addr }

// Replica implements recon.Peer.
func (c *Client) Replica() ids.ReplicaID { return c.vr.Replica }

func (c *Client) call(req request) (*response, error) {
	req.Vol = c.vr.Vol
	req.Replica = c.vr.Replica
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, err
	}
	var respBytes []byte
	err := c.policy.Do(func() error {
		var err error
		respBytes, err = c.host.Call(c.addr, Service, buf.Bytes())
		if err != nil {
			return &unreachableError{cause: err}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var resp response
	if err := gob.NewDecoder(bytes.NewReader(respBytes)).Decode(&resp); err != nil {
		return nil, err
	}
	switch {
	case resp.NotStored:
		return nil, physical.ErrNotStored
	case resp.NoReplica:
		return nil, ErrNoReplica
	case resp.Err != "":
		return nil, errors.New("repl: peer error: " + resp.Err)
	}
	return &resp, nil
}

// Ping verifies the peer host serves this volume replica.
func (c *Client) Ping() error {
	_, err := c.call(request{Op: opPing})
	return err
}

// DirEntries implements recon.Peer.
func (c *Client) DirEntries(dirPath []ids.FileID) (physical.DirState, error) {
	resp, err := c.call(request{Op: opDirEntries, Dir: dirPath})
	if err != nil {
		return physical.DirState{}, err
	}
	entries := make([]physical.Entry, len(resp.Entries))
	for i, w := range resp.Entries {
		entries[i] = physical.Entry{EID: w.EID, Name: w.Name, Child: w.Child, Kind: physical.Kind(w.Kind), Deleted: w.Deleted, Value: w.Value}
	}
	return physical.DirState{Entries: entries, VV: resp.VV, Aux: fromWireAux(resp.Aux)}, nil
}

// FileInfo implements recon.Peer.
func (c *Client) FileInfo(dirPath []ids.FileID, fid ids.FileID) (physical.FileState, error) {
	resp, err := c.call(request{Op: opFileInfo, Dir: dirPath, File: fid})
	if err != nil {
		return physical.FileState{}, err
	}
	return physical.FileState{Aux: fromWireAux(resp.Aux), Size: resp.Size}, nil
}

// FileData implements recon.Peer.
func (c *Client) FileData(dirPath []ids.FileID, fid ids.FileID) ([]byte, physical.FileState, error) {
	resp, err := c.call(request{Op: opFileData, Dir: dirPath, File: fid})
	if err != nil {
		return nil, physical.FileState{}, err
	}
	return resp.Data, physical.FileState{Aux: fromWireAux(resp.Aux), Size: resp.Size}, nil
}

// ListReplicas asks which replicas of vol the host at addr serves (an
// idempotent probe, retried under the default policy).
func ListReplicas(host *simnet.Host, addr simnet.Addr, vol ids.VolumeHandle) ([]ids.ReplicaID, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&request{Op: opListReplicas, Vol: vol}); err != nil {
		return nil, err
	}
	var respBytes []byte
	err := retry.Default().Do(func() error {
		var err error
		respBytes, err = host.Call(addr, Service, buf.Bytes())
		if err != nil {
			return &unreachableError{cause: err}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var resp response
	if err := gob.NewDecoder(bytes.NewReader(respBytes)).Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New("repl: peer error: " + resp.Err)
	}
	return resp.Replicas, nil
}
