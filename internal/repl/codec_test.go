package repl

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/vv"
)

func sampleRequest() *request {
	return &request{
		Op:      opPullBatch,
		Vol:     ids.VolumeHandle{Allocator: 3, Volume: 9},
		Replica: 2,
		Dir:     []ids.FileID{ids.RootFileID, {Issuer: 1, Seq: 5}},
		File:    ids.FileID{Issuer: 2, Seq: 77},
		Pulls: []physical.PullRequest{
			{Dir: []ids.FileID{ids.RootFileID}, File: ids.FileID{Issuer: 1, Seq: 2},
				LocalVV: vv.Vector{1: 4, 2: 1}, HasLocal: true},
			{Dir: nil, File: ids.FileID{Issuer: 3, Seq: 8}},
		},
	}
}

func sampleResponse() *response {
	return &response{
		Class: classOK,
		Entries: []physical.Entry{
			{EID: ids.FileID{Issuer: 1, Seq: 2}, Name: "hello", Child: ids.FileID{Issuer: 1, Seq: 3},
				Kind: physical.KDir, Deleted: false, Value: "v"},
			{EID: ids.FileID{Issuer: 2, Seq: 9}, Name: "gone", Child: ids.FileID{Issuer: 2, Seq: 10},
				Kind: physical.KFile, Deleted: true},
		},
		VV:       vv.Vector{1: 7},
		Aux:      physical.Aux{Type: physical.KGraft, Nlink: 2, VV: vv.Vector{2: 3}, GraftVol: ids.VolumeHandle{Allocator: 8, Volume: 1}},
		Size:     4096,
		Data:     []byte("payload bytes"),
		Replicas: []ids.ReplicaID{1, 2, 5},
		Pulls: []wirePull{
			{Status: byte(physical.PullData), Data: []byte("file contents"),
				Aux: physical.Aux{Type: physical.KFile, Nlink: 1, VV: vv.Vector{1: 2, 3: 4}}, Size: 13,
				Sum: &physical.Checksums{Length: 13, Sums: []uint32{0xdeadbeef}}},
			{Status: byte(physical.PullStale)},
			{Status: byte(physical.PullConcurrent), RemoteVV: vv.Vector{4: 4}},
			{Status: byte(physical.PullError), Class: classPermanent, Err: "disk exploded"},
		},
	}
}

// TestCodecRequestRoundTrip: decode(encode(x)) re-encodes byte-identically
// (the encoding is canonical), and the fields survive.
func TestCodecRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	enc := req.encode(nil)
	dec, err := decodeRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Op != req.Op || dec.Vol != req.Vol || dec.Replica != req.Replica || dec.File != req.File {
		t.Fatalf("scalar fields: %+v vs %+v", dec, req)
	}
	if len(dec.Dir) != 2 || dec.Dir[1] != req.Dir[1] {
		t.Fatalf("dir path: %v", dec.Dir)
	}
	if len(dec.Pulls) != 2 || !dec.Pulls[0].LocalVV.Equal(req.Pulls[0].LocalVV) ||
		!dec.Pulls[0].HasLocal || dec.Pulls[1].HasLocal {
		t.Fatalf("pulls: %+v", dec.Pulls)
	}
	if enc2 := dec.encode(nil); !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding differs:\n%x\n%x", enc, enc2)
	}
	// The zero request round-trips too.
	zero := &request{}
	dz, err := decodeRequest(zero.encode(nil))
	if err != nil || dz.Op != 0 || len(dz.Pulls) != 0 {
		t.Fatalf("zero request: %+v %v", dz, err)
	}
}

func TestCodecResponseRoundTrip(t *testing.T) {
	resp := sampleResponse()
	enc := resp.encode(nil)
	dec, err := decodeResponse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Size != resp.Size || string(dec.Data) != string(resp.Data) || len(dec.Replicas) != 3 {
		t.Fatalf("fields: %+v", dec)
	}
	if len(dec.Entries) != 2 || dec.Entries[0].Name != "hello" || !dec.Entries[1].Deleted ||
		dec.Entries[0].Kind != physical.KDir {
		t.Fatalf("entries: %+v", dec.Entries)
	}
	if !dec.Aux.VV.Equal(resp.Aux.VV) || dec.Aux.GraftVol != resp.Aux.GraftVol {
		t.Fatalf("aux: %+v", dec.Aux)
	}
	if len(dec.Pulls) != 4 || string(dec.Pulls[0].Data) != "file contents" ||
		dec.Pulls[3].Err != "disk exploded" || !dec.Pulls[2].RemoteVV.Equal(vv.Vector{4: 4}) {
		t.Fatalf("pulls: %+v", dec.Pulls)
	}
	if s := dec.Pulls[0].Sum; s == nil || s.Length != 13 || len(s.Sums) != 1 || s.Sums[0] != 0xdeadbeef {
		t.Fatalf("pull checksum summary: %+v", dec.Pulls[0].Sum)
	}
	if dec.Pulls[1].Sum != nil {
		t.Fatalf("absent checksum summary decoded as %+v", dec.Pulls[1].Sum)
	}
	if enc2 := dec.encode(nil); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding differs")
	}
}

// TestCodecRejectsCorruption: every truncation of a valid message and a few
// corruptions fail with an error, never a panic or a hang.
func TestCodecRejectsCorruption(t *testing.T) {
	reqEnc := sampleRequest().encode(nil)
	for n := 0; n < len(reqEnc); n++ {
		if _, err := decodeRequest(reqEnc[:n]); err == nil {
			t.Fatalf("request truncated to %d bytes decoded successfully", n)
		}
	}
	respEnc := sampleResponse().encode(nil)
	for n := 0; n < len(respEnc); n++ {
		if _, err := decodeResponse(respEnc[:n]); err == nil {
			t.Fatalf("response truncated to %d bytes decoded successfully", n)
		}
	}
	// Wrong wire version.
	bad := append([]byte{wireVersion + 1}, reqEnc[1:]...)
	if _, err := decodeRequest(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Trailing garbage.
	if _, err := decodeResponse(append(respEnc[:len(respEnc):len(respEnc)], 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A count field inflated far past the message must fail before any
	// huge allocation (the count/remaining cap).
	huge := []byte{wireVersion, byte(opPullBatch)}
	huge = appendVol(huge, ids.VolumeHandle{})
	huge = appendU32(huge, 0)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // dir count ~ 34 billion
	if _, err := decodeRequest(huge); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func FuzzDecodeRequest(f *testing.F) {
	f.Add(sampleRequest().encode(nil))
	f.Add((&request{}).encode(nil))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := decodeRequest(b)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode again cleanly.
		if _, err := decodeRequest(req.encode(nil)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(sampleResponse().encode(nil))
	f.Add((&response{}).encode(nil))
	f.Add([]byte{wireVersion})
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := decodeResponse(b)
		if err != nil {
			return
		}
		if _, err := decodeResponse(resp.encode(nil)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// gobResponse mirrors the pre-codec wire struct so the microbench can
// compare against what the per-call gob encoder used to cost.
type gobResponse struct {
	Err       string
	NotStored bool
	Entries   []physical.Entry
	VV        vv.Vector
	Aux       physical.Aux
	Size      uint64
	Data      []byte
}

func BenchmarkCodecResponse(b *testing.B) {
	resp := sampleResponse()
	enc := resp.encode(nil)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = resp.encode(buf[:0])
		}
		b.ReportMetric(float64(len(buf)), "wireBytes")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeResponse(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The old transport: a fresh gob encoder per message re-ships type
	// metadata every call.
	g := &gobResponse{Err: "", Entries: resp.Entries, VV: resp.VV, Aux: resp.Aux, Size: resp.Size, Data: resp.Data}
	b.Run("gob-encode-baseline", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(g); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
		}
		b.ReportMetric(float64(n), "wireBytes")
	})
}

func BenchmarkCodecRequest(b *testing.B) {
	req := sampleRequest()
	enc := req.encode(nil)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = req.encode(buf[:0])
		}
		b.ReportMetric(float64(len(buf)), "wireBytes")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeRequest(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
