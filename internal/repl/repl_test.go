package repl

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

var testVol = ids.VolumeHandle{Allocator: 1, Volume: 7}

func newLayer(t *testing.T, r ids.ReplicaID) *physical.Layer {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(8192), 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := physical.Format(ufsvn.New(fs), testVol, r)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

type rig struct {
	net    *simnet.Network
	server *Server
	lA, lB *physical.Layer // A local, B remote (served)
	client *Client         // A's view of B
}

func newRig(t *testing.T) *rig {
	t.Helper()
	net := simnet.New(1)
	hostA := net.Host("a")
	hostB := net.Host("b")
	lA := newLayer(t, 1)
	lB := newLayer(t, 2)
	srv := NewServer(hostB)
	srv.Register(lB)
	return &rig{
		net:    net,
		server: srv,
		lA:     lA,
		lB:     lB,
		client: NewClient(hostA, "b", lB.VolumeReplica()),
	}
}

func writeFile(t *testing.T, l *physical.Layer, name, data string) ids.FileID {
	t.Helper()
	root, _ := l.Root()
	f, err := root.Create(name, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte(data)); err != nil {
		t.Fatal(err)
	}
	a, _ := f.Getattr()
	fid, _ := ids.ParseFileID(a.FileID)
	return fid
}

func TestPingAndIdentity(t *testing.T) {
	r := newRig(t)
	if err := r.client.Ping(); err != nil {
		t.Fatal(err)
	}
	if r.client.Replica() != 2 || r.client.Addr() != "b" {
		t.Fatal("identity wrong")
	}
}

func TestRemotePeerMatchesLocalView(t *testing.T) {
	r := newRig(t)
	fid := writeFile(t, r.lB, "f", "remote data")

	// DirEntries over the wire equals direct access.
	remote, err := r.client.DirEntries(physical.RootPath())
	if err != nil {
		t.Fatal(err)
	}
	local, err := r.lB.DirEntries(physical.RootPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Entries) != len(local.Entries) || !remote.VV.Equal(local.VV) {
		t.Fatalf("views differ: %+v vs %+v", remote, local)
	}

	// FileInfo and FileData round-trip.
	ri, err := r.client.FileInfo(physical.RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	li, _ := r.lB.FileInfo(physical.RootPath(), fid)
	if !ri.Aux.VV.Equal(li.Aux.VV) || ri.Size != li.Size || ri.Aux.Type != li.Aux.Type {
		t.Fatalf("%+v vs %+v", ri, li)
	}
	data, st, err := r.client.FileData(physical.RootPath(), fid)
	if err != nil || string(data) != "remote data" {
		t.Fatalf("%q %v", data, err)
	}
	if st.Size != uint64(len(data)) {
		t.Fatalf("size %d", st.Size)
	}
}

func TestNotStoredCrossesWire(t *testing.T) {
	r := newRig(t)
	ghost := ids.FileID{Issuer: 9, Seq: 999}
	if _, err := r.client.FileInfo(physical.RootPath(), ghost); !errors.Is(err, physical.ErrNotStored) {
		t.Fatalf("err = %v, want ErrNotStored", err)
	}
	if _, err := r.client.DirEntries([]ids.FileID{ids.RootFileID, ghost}); !errors.Is(err, physical.ErrNotStored) {
		t.Fatalf("dir: %v", err)
	}
}

func TestNoReplicaAndUnreachable(t *testing.T) {
	r := newRig(t)
	bogus := NewClient(r.net.Host("a"), "b", ids.VolumeReplicaHandle{Vol: testVol, Replica: 42})
	if err := bogus.Ping(); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	r.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	if err := r.client.Ping(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	r.net.Heal()
	if err := r.client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestReconciliationOverWire(t *testing.T) {
	r := newRig(t)
	writeFile(t, r.lB, "from-b", "payload")
	rootB, _ := r.lB.Root()
	if _, err := rootB.Mkdir("subdir"); err != nil {
		t.Fatal(err)
	}
	stats, err := recon.ReconcileVolume(r.lA, r.client)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 1 || stats.DirsCreated != 1 {
		t.Fatalf("stats %v", stats)
	}
	rootA, _ := r.lA.Root()
	f, err := rootA.Lookup("from-b")
	if err != nil {
		t.Fatal(err)
	}
	data, err := vnode.ReadFile(f)
	if err != nil || string(data) != "payload" {
		t.Fatalf("%q %v", data, err)
	}
}

func TestReconciliationAcrossPartitionFails(t *testing.T) {
	r := newRig(t)
	writeFile(t, r.lB, "f", "x")
	r.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	if _, err := recon.ReconcileVolume(r.lA, r.client); err == nil {
		t.Fatal("reconciliation across partition succeeded")
	}
}

func TestListReplicas(t *testing.T) {
	r := newRig(t)
	l3 := newLayer(t, 3)
	r.server.Register(l3)
	reps, err := ListReplicas(r.net.Host("a"), "b", testVol)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("replicas %v", reps)
	}
	other := ids.VolumeHandle{Allocator: 2, Volume: 2}
	reps, err = ListReplicas(r.net.Host("a"), "b", other)
	if err != nil || len(reps) != 0 {
		t.Fatalf("%v %v", reps, err)
	}
	r.server.Unregister(l3.VolumeReplica())
	reps, _ = ListReplicas(r.net.Host("a"), "b", testVol)
	if len(reps) != 1 {
		t.Fatalf("after unregister: %v", reps)
	}
}

func TestPropagationDaemonOverWire(t *testing.T) {
	r := newRig(t)
	// Shared file, then B updates it and A is notified.
	fid := writeFile(t, r.lB, "f", "v1")
	if _, err := recon.ReconcileVolume(r.lA, r.client); err != nil {
		t.Fatal(err)
	}
	writeFile(t, r.lB, "f", "v2")
	r.lA.NoteNewVersion(physical.RootPath(), fid, 2)
	find := func(rep ids.ReplicaID) recon.Peer {
		if rep == 2 {
			return r.client
		}
		return nil
	}
	stats, err := recon.PropagateOnce(r.lA, find)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("%v %v", stats, err)
	}
	rootA, _ := r.lA.Root()
	f, _ := rootA.Lookup("f")
	data, _ := vnode.ReadFile(f)
	if string(data) != "v2" {
		t.Fatalf("%q", data)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	r := newRig(t)
	respBytes, err := r.net.Host("a").Call("b", Service, []byte("junk"))
	if err != nil {
		t.Fatal(err)
	}
	_ = respBytes // any non-panicking response is fine; decode check below
	c := NewClient(r.net.Host("a"), "b", r.lB.VolumeReplica())
	_ = c
}

func TestClientRetriesThroughInjectedFaults(t *testing.T) {
	r := newRig(t)
	writeFile(t, r.lB, "f", "x")
	// Two scripted request losses: the default policy's three attempts
	// ride through them.
	r.net.ScriptFaults("a", "b", simnet.FaultRequestLost, simnet.FaultRequestLost)
	if err := r.client.Ping(); err != nil {
		t.Fatalf("retry did not mask two scripted faults: %v", err)
	}
	// Reply loss: the server executed the op, the reply vanished — a
	// retried idempotent pull still succeeds.
	r.net.ScriptFaults("a", "b", simnet.FaultReplyLost)
	ds, err := r.client.DirEntries(physical.RootPath())
	if err != nil {
		t.Fatalf("reply-loss not masked: %v", err)
	}
	if len(ds.Entries) != 1 {
		t.Fatalf("entries %v", ds.Entries)
	}
	if s := r.net.Stats(); s.RPCFaultsInjected != 2 || s.RPCRepliesLost != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClientRetryExhaustionStaysUnreachable(t *testing.T) {
	r := newRig(t)
	// More scripted faults than attempts: the call fails, and the error
	// still matches both repl.ErrUnreachable and simnet.ErrUnreachable.
	r.net.ScriptFaults("a", "b",
		simnet.FaultRequestLost, simnet.FaultRequestLost, simnet.FaultRequestLost)
	err := r.client.Ping()
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want repl.ErrUnreachable", err)
	}
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v must keep the transport cause on the chain", err)
	}
}

func TestClientNoRetryAcrossPartition(t *testing.T) {
	r := newRig(t)
	r.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	r.net.ResetStats()
	if err := r.client.WithRetry(retry.Policy{MaxAttempts: 1}).Ping(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if s := r.net.Stats(); s.RPCs != 1 {
		t.Fatalf("MaxAttempts=1 made %d calls", s.RPCs)
	}
}
