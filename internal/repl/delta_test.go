package repl

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// TestCodecV3RoundTrip: the delta extensions (request Have, pull Manifest +
// Missing) survive encode/decode canonically, and messages that never opt
// into v3 still encode the exact v2 layout.
func TestCodecV3RoundTrip(t *testing.T) {
	a1 := physical.HashBlock([]byte("block one"))
	a2 := physical.HashBlock([]byte("block two"))
	req := &request{
		ver:     wireV3,
		Op:      opPullBatchDelta,
		Vol:     ids.VolumeHandle{Allocator: 3, Volume: 9},
		Replica: 2,
		Pulls: []physical.PullRequest{
			{Dir: []ids.FileID{ids.RootFileID}, File: ids.FileID{Issuer: 1, Seq: 2},
				LocalVV: vv.Vector{1: 4}, HasLocal: true},
		},
		Have: []physical.BlockAddr{a1, a2},
	}
	enc := req.encode(nil)
	dec, err := decodeRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Op != opPullBatchDelta || len(dec.Have) != 2 || dec.Have[0] != a1 || dec.Have[1] != a2 {
		t.Fatalf("decoded: %+v", dec)
	}
	if enc2 := dec.encode(nil); !bytes.Equal(enc, enc2) {
		t.Fatal("v3 request re-encoding differs")
	}
	for n := 0; n < len(enc); n++ {
		if _, err := decodeRequest(enc[:n]); err == nil {
			t.Fatalf("v3 request truncated to %d bytes decoded successfully", n)
		}
	}

	// A message that never sets ver encodes the v2 layout: Have does not
	// travel, so old peers parse it exactly as before.
	v2 := *req
	v2.ver = 0
	v2enc := v2.encode(nil)
	noHave := v2
	noHave.Have = nil
	if !bytes.Equal(v2enc, noHave.encode(nil)) {
		t.Fatal("v2-encoded request leaks the Have section")
	}
	d2, err := decodeRequest(v2enc)
	if err != nil || len(d2.Have) != 0 {
		t.Fatalf("v2 request: %+v %v", d2, err)
	}

	resp := &response{
		ver: wireV3,
		Pulls: []wirePull{
			{Status: byte(physical.PullData),
				Aux:  physical.Aux{Type: physical.KFile, Nlink: 1, VV: vv.Vector{1: 2}},
				Size: 9, Sum: &physical.Checksums{Length: 9, Sums: []uint32{7}},
				Manifest: &physical.BlockManifest{Length: 9, Blocks: []physical.BlockAddr{a1}},
				Missing:  []physical.Block{{Addr: a1, Data: []byte("block one")}}},
			{Status: byte(physical.PullStale)},
		},
	}
	renc := resp.encode(nil)
	rdec, err := decodeResponse(renc)
	if err != nil {
		t.Fatal(err)
	}
	m := rdec.Pulls[0].Manifest
	if m == nil || m.Length != 9 || len(m.Blocks) != 1 || m.Blocks[0] != a1 {
		t.Fatalf("manifest: %+v", m)
	}
	if len(rdec.Pulls[0].Missing) != 1 || rdec.Pulls[0].Missing[0].Addr != a1 ||
		string(rdec.Pulls[0].Missing[0].Data) != "block one" {
		t.Fatalf("missing: %+v", rdec.Pulls[0].Missing)
	}
	if rdec.Pulls[1].Manifest != nil || rdec.Pulls[1].Missing != nil {
		t.Fatalf("stale entry grew delta fields: %+v", rdec.Pulls[1])
	}
	if renc2 := rdec.encode(nil); !bytes.Equal(renc, renc2) {
		t.Fatal("v3 response re-encoding differs")
	}
	for n := 0; n < len(renc); n++ {
		if _, err := decodeResponse(renc[:n]); err == nil {
			t.Fatalf("v3 response truncated to %d bytes decoded successfully", n)
		}
	}
}

// TestPullBatchDeltaOverWire: an append-one-block update ships only the new
// block across the wire, and the delta install reassembles the exact bytes.
func TestPullBatchDeltaOverWire(t *testing.T) {
	r := newRig(t)
	base := strings.Repeat("a", physical.ChecksumBlockSize) + strings.Repeat("b", physical.ChecksumBlockSize)
	fid := writeFile(t, r.lB, "big", base)
	if _, err := recon.ReconcileVolume(r.lA, r.client); err != nil {
		t.Fatal(err)
	}
	// A chunks what it holds into the pool and advertises it.
	if err := r.lA.EnsureBlocks(physical.RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	have := r.lA.PoolAddrs()
	if len(have) != 2 {
		t.Fatalf("advertisement: %d blocks, want 2", len(have))
	}

	// B appends one block; A pulls the new version as a delta.
	tail := strings.Repeat("c", 100)
	writeFile(t, r.lB, "big", base+tail)
	reqs := []physical.PullRequest{localVVOf(t, r.lA, fid)}
	r.net.ResetStats()
	results, err := r.client.PullBatchDelta(reqs, have)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.net.Stats(); s.RPCs != 1 {
		t.Fatalf("delta batch cost %d RPCs, want 1", s.RPCs)
	}
	res := &results[0]
	if res.Status != physical.PullData || res.Manifest == nil || res.Data != nil {
		t.Fatalf("delta answer: %+v", res)
	}
	if len(res.Manifest.Blocks) != 3 {
		t.Fatalf("manifest has %d blocks, want 3", len(res.Manifest.Blocks))
	}
	if len(res.Missing) != 1 || string(res.Missing[0].Data) != tail {
		t.Fatalf("missing blocks: %d, want exactly the appended tail", len(res.Missing))
	}
	if err := r.lA.InstallFileVersionDelta(physical.RootPath(), fid, res.Aux.Type,
		res.Manifest, res.Missing, res.Aux.VV, res.Aux.Nlink, res.Sum); err != nil {
		t.Fatal(err)
	}
	rootA, _ := r.lA.Root()
	f, _ := rootA.Lookup("big")
	data, _ := vnode.ReadFile(f)
	if string(data) != base+tail {
		t.Fatalf("delta install assembled %d bytes, want %d", len(data), len(base)+len(tail))
	}
	// The installed version's blocks are now advertised for the next pull.
	if n := len(r.lA.PoolAddrs()); n != 3 {
		t.Fatalf("pool after install: %d blocks, want 3", n)
	}
	if problems, err := r.lA.Check(); err != nil || len(problems) != 0 {
		t.Fatalf("fsck after delta install: %v %v", problems, err)
	}
}

// TestDeltaFallbackToV2Peer: a peer that speaks only wire v2 refuses the
// delta op once; the client falls back to whole-file pulls, remembers, and
// every copy sharing the client (WithRetry) sees the cached verdict.
func TestDeltaFallbackToV2Peer(t *testing.T) {
	r := newRig(t)
	fid := writeFile(t, r.lB, "f", "payload")
	r.server.SetMaxWireVersion(wireV2)

	reqs := []physical.PullRequest{{Dir: physical.RootPath(), File: fid, HasLocal: false}}
	r.net.ResetStats()
	results, err := r.client.PullBatchDelta(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.net.Stats(); s.RPCs != 2 {
		t.Fatalf("first delta call against v2 peer cost %d RPCs, want 2 (probe + fallback)", s.RPCs)
	}
	if results[0].Status != physical.PullData || string(results[0].Data) != "payload" || results[0].Manifest != nil {
		t.Fatalf("fallback answer: %+v", results[0])
	}
	if !r.client.noDelta.Load() {
		t.Fatal("v2 verdict not cached")
	}

	// Cached: the next batch goes straight to v2, one RPC.
	r.net.ResetStats()
	if _, err := r.client.PullBatchDelta(reqs, nil); err != nil {
		t.Fatal(err)
	}
	if s := r.net.Stats(); s.RPCs != 1 {
		t.Fatalf("cached fallback cost %d RPCs, want 1", s.RPCs)
	}

	// Policy copies share the verdict.
	if c2 := r.client.WithRetry(r.client.policy); !c2.noDelta.Load() {
		t.Fatal("WithRetry copy lost the cached verdict")
	}

	// A v3-capable peer answers the delta op directly again.
	r.server.SetMaxWireVersion(0)
	c3 := NewClient(r.net.Host("a"), "b", r.lB.VolumeReplica())
	r.net.ResetStats()
	res3, err := c3.PullBatchDelta(reqs, nil)
	if err != nil || res3[0].Manifest == nil {
		t.Fatalf("v3 peer: %+v %v", res3, err)
	}
	if s := r.net.Stats(); s.RPCs != 1 {
		t.Fatalf("v3 delta call cost %d RPCs, want 1", s.RPCs)
	}
}
