// Hand-rolled wire codec for the repl protocol.
//
// The original transport gob-encoded every message with a fresh encoder,
// which re-transmits full type metadata on each call — a large fixed tax on
// the many small messages anti-entropy generates.  This codec writes a
// compact fixed layout instead: big-endian fixed-width integers for ids and
// sizes, uvarints for element counts, and the canonical vv encoding for
// version vectors.  Requests are encoded into pooled buffers (the bytes are
// fully consumed by the transport before Call returns, so the buffer is
// safe to recycle); responses are encoded into fresh buffers because
// ownership transfers to the simnet delivery path.
//
// The decoder is sticky-error and bounds-checked: every element count is
// capped against the bytes actually remaining before any allocation, so a
// corrupt or adversarial message fails cleanly instead of panicking or
// allocating unbounded memory (fuzzed in codec_test.go).
package repl

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/vv"
)

// A wire version byte leads every message; an out-of-range version fails
// loudly instead of misparsing.  Version 2 added the checksum summary to
// pull results.  Version 3 adds block-delta pulls: requests may advertise
// held block addresses, and pull answers may carry a manifest plus missing
// blocks instead of full data.  Both ends accept the full range, and a
// server answers at the version the request arrived with, so v3-only
// traffic (the delta op) degrades cleanly against v2 peers.
const (
	wireV2         = 2
	wireV3         = 3
	wireVersion    = wireV3 // newest version this build speaks
	wireMinVersion = wireV2 // oldest version this build accepts
)

// wireVer normalizes a message's encode version: messages that never set
// one (every pre-delta op) stay at the v2 layout, byte-identical to what
// older builds emit.
func wireVer(v byte) byte {
	if v == 0 {
		return wireV2
	}
	return v
}

// Error classes carried in responses so the client can rebuild an error of
// the right kind (sentinel identity and transience survive the wire).
const (
	classOK        = 0 // no error
	classPermanent = 1 // remote permanent failure; Err carries the message
	classTransient = 2 // remote transient failure; worth backing off and retrying
	classNotStored = 3 // physical.ErrNotStored at the peer
	classNoReplica = 4 // peer serves no such volume replica
)

// ---- encoding ----------------------------------------------------------

func appendU8(dst []byte, v byte) []byte    { return append(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendCount(dst []byte, n int) []byte { return binary.AppendUvarint(dst, uint64(n)) }

func appendBytes(dst, b []byte) []byte {
	dst = appendCount(dst, len(b))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendCount(dst, len(s))
	return append(dst, s...)
}

func appendFID(dst []byte, f ids.FileID) []byte {
	dst = appendU32(dst, uint32(f.Issuer))
	return appendU64(dst, f.Seq)
}

func appendPath(dst []byte, p []ids.FileID) []byte {
	dst = appendCount(dst, len(p))
	for _, f := range p {
		dst = appendFID(dst, f)
	}
	return dst
}

func appendVol(dst []byte, v ids.VolumeHandle) []byte {
	dst = appendU32(dst, uint32(v.Allocator))
	return appendU32(dst, uint32(v.Volume))
}

func appendAux(dst []byte, a physical.Aux) []byte {
	dst = appendU8(dst, byte(a.Type))
	dst = appendU32(dst, a.Nlink)
	dst = appendVol(dst, a.GraftVol)
	return a.VV.AppendBinary(dst)
}

func (r *request) encode(dst []byte) []byte {
	ver := wireVer(r.ver)
	dst = appendU8(dst, ver)
	dst = appendU8(dst, byte(r.Op))
	dst = appendVol(dst, r.Vol)
	dst = appendU32(dst, uint32(r.Replica))
	dst = appendPath(dst, r.Dir)
	dst = appendFID(dst, r.File)
	dst = appendCount(dst, len(r.Pulls))
	for i := range r.Pulls {
		p := &r.Pulls[i]
		dst = appendPath(dst, p.Dir)
		dst = appendFID(dst, p.File)
		dst = appendBool(dst, p.HasLocal)
		dst = p.LocalVV.AppendBinary(dst)
	}
	if ver >= wireV3 {
		dst = appendCount(dst, len(r.Have))
		for i := range r.Have {
			dst = append(dst, r.Have[i][:]...)
		}
	}
	return dst
}

func (r *response) encode(dst []byte) []byte {
	ver := wireVer(r.ver)
	dst = appendU8(dst, ver)
	dst = appendU8(dst, r.Class)
	dst = appendString(dst, r.Err)
	dst = appendCount(dst, len(r.Entries))
	for i := range r.Entries {
		e := &r.Entries[i]
		dst = appendFID(dst, e.EID)
		dst = appendString(dst, e.Name)
		dst = appendFID(dst, e.Child)
		dst = appendU8(dst, byte(e.Kind))
		dst = appendBool(dst, e.Deleted)
		dst = appendString(dst, e.Value)
	}
	dst = r.VV.AppendBinary(dst)
	dst = appendAux(dst, r.Aux)
	dst = appendU64(dst, r.Size)
	dst = appendBytes(dst, r.Data)
	dst = appendCount(dst, len(r.Replicas))
	for _, rep := range r.Replicas {
		dst = appendU32(dst, uint32(rep))
	}
	dst = appendCount(dst, len(r.Pulls))
	for i := range r.Pulls {
		p := &r.Pulls[i]
		dst = appendU8(dst, p.Status)
		dst = appendU8(dst, p.Class)
		dst = appendString(dst, p.Err)
		dst = appendBytes(dst, p.Data)
		dst = appendAux(dst, p.Aux)
		dst = appendU64(dst, p.Size)
		dst = p.RemoteVV.AppendBinary(dst)
		dst = appendBool(dst, p.Sum != nil)
		if p.Sum != nil {
			dst = appendU64(dst, p.Sum.Length)
			dst = appendCount(dst, len(p.Sum.Sums))
			for _, s := range p.Sum.Sums {
				dst = appendU32(dst, s)
			}
		}
		if ver >= wireV3 {
			dst = appendBool(dst, p.Manifest != nil)
			if p.Manifest != nil {
				dst = appendU64(dst, p.Manifest.Length)
				dst = appendCount(dst, len(p.Manifest.Blocks))
				for j := range p.Manifest.Blocks {
					dst = append(dst, p.Manifest.Blocks[j][:]...)
				}
			}
			dst = appendCount(dst, len(p.Missing))
			for j := range p.Missing {
				dst = append(dst, p.Missing[j].Addr[:]...)
				dst = appendBytes(dst, p.Missing[j].Data)
			}
		}
	}
	return dst
}

// ---- decoding ----------------------------------------------------------

// decoder consumes one message front to back.  The first failure sticks:
// every later read returns zero values, so decode functions can run the
// full field sequence and check err once at the end.
type decoder struct {
	b   []byte
	ver byte // wire version of the message being decoded
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("repl: bad message: "+format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("want %d bytes, have %d", n, len(d.b))
		return nil
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// count reads an element count and caps it against the bytes remaining
// (each element occupies at least minSize bytes), so a corrupt length
// cannot drive an allocation the message could never back.
func (d *decoder) count(minSize int) int {
	if d.err != nil {
		return 0
	}
	n, used := binary.Uvarint(d.b)
	if used <= 0 {
		d.fail("bad uvarint count")
		return 0
	}
	d.b = d.b[used:]
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(len(d.b)/minSize) {
		d.fail("count %d exceeds %d remaining bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *decoder) bytes() []byte {
	n := d.count(1)
	if n == 0 {
		return nil // canonical: empty payloads decode to nil, not []byte{}
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *decoder) str() string {
	n := d.count(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) fid() ids.FileID {
	return ids.FileID{Issuer: ids.ReplicaID(d.u32()), Seq: d.u64()}
}

func (d *decoder) path() []ids.FileID {
	n := d.count(12)
	if n == 0 {
		return nil
	}
	p := make([]ids.FileID, n)
	for i := range p {
		p[i] = d.fid()
	}
	return p
}

func (d *decoder) vol() ids.VolumeHandle {
	return ids.VolumeHandle{Allocator: ids.AllocatorID(d.u32()), Volume: ids.VolumeID(d.u32())}
}

func (d *decoder) vvec() vv.Vector {
	if d.err != nil {
		return nil
	}
	v, used, err := vv.DecodeFrom(d.b)
	if err != nil {
		d.fail("%v", err)
		return nil
	}
	d.b = d.b[used:]
	return v
}

func (d *decoder) aux() physical.Aux {
	return physical.Aux{
		Type:     physical.Kind(d.u8()),
		Nlink:    d.u32(),
		GraftVol: d.vol(),
		VV:       d.vvec(),
	}
}

func (d *decoder) version() {
	v := d.u8()
	if d.err == nil && (v < wireMinVersion || v > wireVersion) {
		d.fail("wire version %d, want %d..%d", v, wireMinVersion, wireVersion)
		return
	}
	d.ver = v
}

func decodeRequest(b []byte) (*request, error) {
	d := &decoder{b: b}
	d.version()
	var req request
	req.ver = d.ver
	req.Op = opCode(d.u8())
	req.Vol = d.vol()
	req.Replica = ids.ReplicaID(d.u32())
	req.Dir = d.path()
	req.File = d.fid()
	// A pull entry is at least fid(12) + hasLocal(1) + empty vv(4).
	n := d.count(17)
	if n > 0 {
		req.Pulls = make([]physical.PullRequest, n)
		for i := range req.Pulls {
			p := &req.Pulls[i]
			p.Dir = d.path()
			p.File = d.fid()
			p.HasLocal = d.bool()
			p.LocalVV = d.vvec()
		}
	}
	if d.ver >= wireV3 {
		n = d.count(physical.BlockAddrSize)
		if n > 0 {
			req.Have = make([]physical.BlockAddr, n)
			for i := range req.Have {
				copy(req.Have[i][:], d.take(physical.BlockAddrSize))
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("repl: bad message: %d trailing bytes", len(d.b))
	}
	return &req, nil
}

func decodeResponse(b []byte) (*response, error) {
	d := &decoder{b: b}
	d.version()
	var resp response
	resp.ver = d.ver
	resp.Class = d.u8()
	resp.Err = d.str()
	// A directory entry is at least two fids(24) + kind(1) + deleted(1)
	// + two empty strings(2).
	n := d.count(28)
	if n > 0 {
		resp.Entries = make([]physical.Entry, n)
		for i := range resp.Entries {
			e := &resp.Entries[i]
			e.EID = d.fid()
			e.Name = d.str()
			e.Child = d.fid()
			e.Kind = physical.Kind(d.u8())
			e.Deleted = d.bool()
			e.Value = d.str()
		}
	}
	resp.VV = d.vvec()
	resp.Aux = d.aux()
	resp.Size = d.u64()
	resp.Data = d.bytes()
	n = d.count(4)
	if n > 0 {
		resp.Replicas = make([]ids.ReplicaID, n)
		for i := range resp.Replicas {
			resp.Replicas[i] = ids.ReplicaID(d.u32())
		}
	}
	// A pull result is at least status(1) + class(1) + empty err(1) +
	// empty data(1) + aux(13+4) + size(8) + empty vv(4) + sum flag(1).
	n = d.count(34)
	if n > 0 {
		resp.Pulls = make([]wirePull, n)
		for i := range resp.Pulls {
			p := &resp.Pulls[i]
			p.Status = d.u8()
			p.Class = d.u8()
			p.Err = d.str()
			p.Data = d.bytes()
			p.Aux = d.aux()
			p.Size = d.u64()
			p.RemoteVV = d.vvec()
			if d.bool() {
				cs := &physical.Checksums{Length: d.u64()}
				if m := d.count(4); m > 0 {
					cs.Sums = make([]uint32, m)
					for j := range cs.Sums {
						cs.Sums[j] = d.u32()
					}
				}
				p.Sum = cs
			}
			if d.ver >= wireV3 {
				if d.bool() {
					man := &physical.BlockManifest{Length: d.u64()}
					if m := d.count(physical.BlockAddrSize); m > 0 {
						man.Blocks = make([]physical.BlockAddr, m)
						for j := range man.Blocks {
							copy(man.Blocks[j][:], d.take(physical.BlockAddrSize))
						}
					}
					p.Manifest = man
				}
				if m := d.count(physical.BlockAddrSize + 1); m > 0 {
					p.Missing = make([]physical.Block, m)
					for j := range p.Missing {
						copy(p.Missing[j].Addr[:], d.take(physical.BlockAddrSize))
						p.Missing[j].Data = d.bytes()
					}
				}
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("repl: bad message: %d trailing bytes", len(d.b))
	}
	return &resp, nil
}

// ---- request buffer pool ----------------------------------------------

// bufPool recycles request-encoding buffers.  Only the client request path
// uses it: simnet copies the request bytes into the delivery before Call
// returns, so the buffer can be recycled immediately after.  Response
// buffers are NOT pooled — their bytes are handed to the transport and
// owned by the receiving side.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	const maxPooled = 1 << 16 // don't let one huge batch pin memory
	if cap(*b) > maxPooled {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
