// Package simnet is the simulated internetwork that stands in for the
// paper's campus/continental network.  Large-scale Ficus assumes "partial
// operation is the normal, not exceptional, status" (paper §1): hosts and
// links fail independently and communication outages partition the replica
// set.  The simulator makes partitions a first-class, scriptable object so
// the availability and reconciliation experiments (E4, E6) can create and
// heal them deterministically.
//
// Two communication primitives match what Ficus uses:
//
//   - synchronous RPC, which carries the NFS vnode traffic between logical
//     and physical layers on different hosts (paper §2.2), and
//   - best-effort multicast datagrams, which carry update notifications
//     ("an asynchronous multicast datagram is sent to all available
//     replicas", §2.5); these are silently dropped across partitions and
//     may additionally be dropped at a configurable rate.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Addr names a host on the network.
type Addr string

// Errors returned by network operations.
var (
	// ErrUnreachable reports that the destination is partitioned away or
	// down; to a caller this is indistinguishable from a timeout.
	ErrUnreachable = errors.New("simnet: host unreachable")
	// ErrNoHost reports a destination that was never attached.
	ErrNoHost = errors.New("simnet: no such host")
	// ErrNoService reports an RPC to a service the host does not export.
	ErrNoService = errors.New("simnet: no such service")
)

// RPCHandler serves one synchronous request.
type RPCHandler func(req []byte) ([]byte, error)

// DatagramHandler receives one best-effort datagram.  It must not block.
type DatagramHandler func(from Addr, payload []byte)

// Stats counts network traffic.
type Stats struct {
	RPCs               uint64 // calls attempted
	RPCFailures        uint64 // calls that failed with ErrUnreachable et al.
	RPCBytes           uint64 // request+response payload bytes of successful calls
	Datagrams          uint64 // datagram deliveries attempted (per destination)
	DatagramsDropped   uint64 // dropped by partition, down host, or loss rate
	DatagramsDelivered uint64
}

// Network connects hosts.  All methods are safe for concurrent use.
type Network struct {
	mu       sync.Mutex
	hosts    map[Addr]*Host
	group    map[Addr]int // partition group; hosts communicate iff equal
	rng      *rand.Rand
	lossRate float64 // additional datagram loss probability
	stats    Stats
}

// New creates an empty, fully connected network.  The seed drives datagram
// loss decisions only, so runs are reproducible.
func New(seed int64) *Network {
	return &Network{
		hosts: make(map[Addr]*Host),
		group: make(map[Addr]int),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetDatagramLossRate makes every datagram delivery fail independently with
// probability p, in addition to partition/down losses.
func (n *Network) SetDatagramLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = p
}

// Host attaches (or returns) the host at addr.
func (n *Network) Host(addr Addr) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[addr]; ok {
		return h
	}
	h := &Host{
		net:      n,
		addr:     addr,
		rpc:      make(map[string]RPCHandler),
		datagram: make(map[string]DatagramHandler),
	}
	n.hosts[addr] = h
	n.group[addr] = 0
	return h
}

// Addrs lists attached hosts in no particular order.
func (n *Network) Addrs() []Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Addr, 0, len(n.hosts))
	for a := range n.hosts {
		out = append(out, a)
	}
	return out
}

// Partition splits the network into the given groups; a host in no listed
// group lands in its own singleton.  Hosts communicate iff they share a
// group.  Calling with no arguments is equivalent to Heal.
func (n *Network) Partition(groups ...[]Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := 1
	assigned := make(map[Addr]int)
	for _, g := range groups {
		for _, a := range g {
			assigned[a] = next
		}
		next++
	}
	for a := range n.hosts {
		if g, ok := assigned[a]; ok {
			n.group[a] = g
		} else {
			n.group[a] = next
			next++
		}
	}
}

// Heal reconnects every host.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for a := range n.hosts {
		n.group[a] = 0
	}
}

// Connected reports whether a and b can currently communicate.
func (n *Network) Connected(a, b Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.connectedLocked(a, b)
}

func (n *Network) connectedLocked(a, b Addr) bool {
	ha, ok := n.hosts[a]
	if !ok {
		return false
	}
	hb, ok := n.hosts[b]
	if !ok {
		return false
	}
	if ha.down || hb.down {
		return false
	}
	return n.group[a] == n.group[b]
}

// Stats returns a traffic snapshot.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// Host is one attached machine.
type Host struct {
	net      *Network
	addr     Addr
	down     bool
	rpc      map[string]RPCHandler
	datagram map[string]DatagramHandler
}

// Addr returns the host's address.
func (h *Host) Addr() Addr { return h.addr }

// SetDown crashes or revives the host.  A down host neither sends nor
// receives; its state is untouched (storage survives, as with a real crash).
func (h *Host) SetDown(down bool) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.down = down
}

// Down reports whether the host is crashed.
func (h *Host) Down() bool {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	return h.down
}

// HandleRPC registers the handler for a named service.
func (h *Host) HandleRPC(service string, fn RPCHandler) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.rpc[service] = fn
}

// RemoveRPC withdraws a service; later calls fail with ErrNoService.
func (h *Host) RemoveRPC(service string) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	delete(h.rpc, service)
}

// HandleDatagram registers the handler for a named datagram port.
func (h *Host) HandleDatagram(port string, fn DatagramHandler) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.datagram[port] = fn
}

// Call performs a synchronous RPC to service on dst.  It fails with
// ErrUnreachable when the hosts cannot currently communicate.  A host can
// always call itself, even while partitioned from everyone else.
func (h *Host) Call(dst Addr, service string, req []byte) ([]byte, error) {
	h.net.mu.Lock()
	h.net.stats.RPCs++
	target, ok := h.net.hosts[dst]
	if !ok {
		h.net.stats.RPCFailures++
		h.net.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoHost, dst)
	}
	if h.down || (dst != h.addr && !h.net.connectedLocked(h.addr, dst)) {
		h.net.stats.RPCFailures++
		h.net.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, h.addr, dst)
	}
	fn, ok := target.rpc[service]
	if !ok {
		h.net.stats.RPCFailures++
		h.net.mu.Unlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrNoService, service, dst)
	}
	h.net.mu.Unlock()

	resp, err := fn(req)

	h.net.mu.Lock()
	if err == nil {
		h.net.stats.RPCBytes += uint64(len(req) + len(resp))
	}
	h.net.mu.Unlock()
	return resp, err
}

// Multicast delivers a best-effort datagram to port on each destination.
// Unreachable destinations are silently skipped — exactly the fire-and-
// forget semantics of the paper's update notification (§2.5).  Delivery is
// synchronous in the caller's goroutine to keep simulations deterministic;
// handlers must be fast and must not call back into the sender.
func (h *Host) Multicast(port string, payload []byte, dsts []Addr) {
	for _, dst := range dsts {
		h.net.mu.Lock()
		h.net.stats.Datagrams++
		target, ok := h.net.hosts[dst]
		deliverable := ok && !h.down && (dst == h.addr || h.net.connectedLocked(h.addr, dst))
		if deliverable && h.net.lossRate > 0 && h.net.rng.Float64() < h.net.lossRate {
			deliverable = false
		}
		var fn DatagramHandler
		if deliverable {
			fn = target.datagram[port]
		}
		if fn == nil {
			h.net.stats.DatagramsDropped++
			h.net.mu.Unlock()
			continue
		}
		h.net.stats.DatagramsDelivered++
		h.net.mu.Unlock()
		fn(h.addr, payload)
	}
}
