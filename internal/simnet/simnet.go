// Package simnet is the simulated internetwork that stands in for the
// paper's campus/continental network.  Large-scale Ficus assumes "partial
// operation is the normal, not exceptional, status" (paper §1): hosts and
// links fail independently and communication outages partition the replica
// set.  The simulator makes partitions a first-class, scriptable object so
// the availability and reconciliation experiments (E4, E6) can create and
// heal them deterministically.
//
// Two communication primitives match what Ficus uses:
//
//   - synchronous RPC, which carries the NFS vnode traffic between logical
//     and physical layers on different hosts (paper §2.2), and
//   - best-effort multicast datagrams, which carry update notifications
//     ("an asynchronous multicast datagram is sent to all available
//     replicas", §2.5); these are silently dropped across partitions and
//     may additionally be dropped at a configurable rate.
//
// Beyond binary partitions the network carries a scriptable fault plane:
// probabilistic RPC failure, per-link one-shot fault schedules, a
// reply-loss mode in which the handler executes but the caller still sees
// ErrUnreachable (the classic at-most-once ambiguity), and datagram
// duplication and reordering.  Probabilistic RPC fault decisions draw from
// a per-link RNG seeded from (network seed, link); datagram decisions draw
// from the single network RNG.  A run with faults enabled is therefore
// exactly as reproducible as one without — per link even under concurrent
// callers on other links.
//
// The fault plane also has a time dimension, measured in *virtual ticks*
// (the same clock the daemons' backoff schedules use — no wall time):
// per-link latency distributions (base + seeded jitter), probabilistic
// latency spikes, scripted one-shot delays, and hung RPCs whose handler
// runs but whose reply never arrives.  CallT attaches a deadline to one
// call: a call whose virtual latency would exceed the deadline fails with
// ErrDeadline after exactly deadline ticks, so a slow or hung peer costs a
// bounded, accountable amount of virtual time instead of a stalled pass.
// Because latency is virtual, nothing ever blocks the simulation itself.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Addr names a host on the network.
type Addr string

// Errors returned by network operations.
var (
	// ErrUnreachable reports that the destination is partitioned away or
	// down; to a caller this is indistinguishable from a timeout.
	ErrUnreachable = errors.New("simnet: host unreachable")
	// ErrNoHost reports a destination that was never attached.
	ErrNoHost = errors.New("simnet: no such host")
	// ErrNoService reports an RPC to a service the host does not export.
	ErrNoService = errors.New("simnet: no such service")
	// ErrDeadline reports a call abandoned because its virtual latency
	// reached the caller's deadline.  The handler may or may not have run —
	// the same at-most-once ambiguity as a lost reply — so retrying is only
	// safe for idempotent operations.
	ErrDeadline = errors.New("simnet: rpc deadline exceeded")
)

// HangTicks is the virtual cost charged to a deadline-less caller whose
// reply was hung by the fault plane: effectively "waited forever".  Callers
// that attach deadlines never pay it.
const HangTicks uint64 = 1 << 32

// RPCHandler serves one synchronous request.
type RPCHandler func(req []byte) ([]byte, error)

// DatagramHandler receives one best-effort datagram.  It must not block.
type DatagramHandler func(from Addr, payload []byte)

// Stats counts network traffic.
type Stats struct {
	RPCs               uint64 // calls attempted
	RPCFailures        uint64 // calls that failed with ErrUnreachable et al.
	RPCBytes           uint64 // request+response payload bytes of successful calls
	Datagrams          uint64 // datagram deliveries attempted (per destination)
	DatagramsDropped   uint64 // dropped by partition, down host, or loss rate
	DatagramsDelivered uint64
	DatagramBytes      uint64 // payload bytes of delivered datagrams

	// Fault-plane activity.
	RPCFaultsInjected   uint64 // calls failed by the fault plane before the handler ran
	RPCRepliesLost      uint64 // calls whose handler ran but whose reply was dropped
	DatagramsDuplicated uint64 // extra deliveries created by duplication
	MulticastsReordered uint64 // multicast calls delivered in permuted order

	// Time-dimension activity (all in virtual ticks).
	RPCHangs          uint64 // calls whose reply was hung (handler ran, reply never arrived)
	RPCDeadlineMisses uint64 // calls abandoned at their deadline
	RPCLatencySpikes  uint64 // latency spikes injected into call legs
	RPCVirtualTicks   uint64 // summed virtual latency of all completed calls
}

// FaultKind selects what one scripted fault does to an RPC.
type FaultKind int

const (
	// FaultRequestLost drops the call before the handler runs; the caller
	// sees ErrUnreachable and the server never learns of the request.
	FaultRequestLost FaultKind = iota
	// FaultReplyLost runs the handler to completion but drops the reply;
	// the caller sees ErrUnreachable even though the operation executed —
	// the at-most-once ambiguity a client must tolerate (retry is only
	// safe for idempotent operations).
	FaultReplyLost
	// FaultHang runs the handler to completion but hangs the reply: with a
	// deadline the caller waits exactly deadline ticks and sees ErrDeadline;
	// without one it is charged HangTicks and sees ErrUnreachable.  This is
	// the stuck-peer case the paper's portable-machine scenario (§7) makes
	// routine — the peer is alive and did the work, but the caller must not
	// wait forever for the answer.
	FaultHang
)

// link identifies one directed sender->receiver pair.
type link struct{ from, to Addr }

// latencyProfile is one latency distribution: every call leg on the link
// costs base + seeded-uniform jitter ticks, plus spikeTicks with probability
// spikeRate (the heavy tail).  The zero value means instantaneous.
type latencyProfile struct {
	base       uint64
	jitter     uint64
	spikeRate  float64
	spikeTicks uint64
}

func (p latencyProfile) active() bool {
	return p.base > 0 || p.jitter > 0 || p.spikeRate > 0
}

// linkFaults is the per-link fault script and rates; zero value = no faults.
type linkFaults struct {
	failRate      float64     // probabilistic request loss
	replyLossRate float64     // probabilistic reply loss
	hangRate      float64     // probabilistic hung reply
	dgramLossRate float64     // probabilistic datagram loss on this link
	script        []FaultKind // one-shot faults, consumed FIFO by matching calls

	lat       latencyProfile // overrides the network profile when latSet
	latSet    bool
	latScript []uint64 // one-shot extra request-leg delays, consumed FIFO

	// rng drives every probabilistic RPC fault decision on this link.  It
	// is seeded deterministically from (network seed, from, to), so the
	// fault sequence a link suffers depends only on that link's own call
	// order — concurrent callers on *distinct* links (the propagation
	// pipeline's per-origin workers) cannot perturb each other's draws.
	rng *rand.Rand
}

// Network connects hosts.  All methods are safe for concurrent use.
type Network struct {
	mu       sync.Mutex
	hosts    map[Addr]*Host
	group    map[Addr]int // partition group; hosts communicate iff equal
	seed     int64
	rng      *rand.Rand
	lossRate float64 // additional datagram loss probability
	stats    Stats

	// Fault plane (see SetRPCFaultRate etc.).
	rpcFailRate   float64
	replyLossRate float64
	hangRate      float64
	dupRate       float64
	reorderRate   float64
	lat           latencyProfile // network-wide latency; links may override
	links         map[link]*linkFaults
}

// New creates an empty, fully connected network.  The seed drives datagram
// loss decisions only, so runs are reproducible.
func New(seed int64) *Network {
	return &Network{
		hosts: make(map[Addr]*Host),
		group: make(map[Addr]int),
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[link]*linkFaults),
	}
}

// SetDatagramLossRate makes every datagram delivery fail independently with
// probability p, in addition to partition/down losses.
func (n *Network) SetDatagramLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = p
}

// SetRPCFaultRate makes every RPC fail independently with probability p
// before its handler runs (request lost in transit), on every link.
func (n *Network) SetRPCFaultRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rpcFailRate = p
}

// SetReplyLossRate makes every RPC whose handler ran lose its reply with
// probability p: the server state changes, the caller sees ErrUnreachable.
func (n *Network) SetReplyLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replyLossRate = p
}

// SetDatagramDuplicateRate makes each delivered datagram arrive twice with
// probability p (duplicate delivery, as UDP permits).
func (n *Network) SetDatagramDuplicateRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dupRate = p
}

// SetDatagramReorderRate makes each multicast deliver to its destinations
// in a random permutation with probability p (per multicast call).
func (n *Network) SetDatagramReorderRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reorderRate = p
}

// SetHangRate makes every RPC whose handler ran hang its reply with
// probability p: with a deadline the caller sees ErrDeadline at the
// deadline, without one it is charged HangTicks.
func (n *Network) SetHangRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hangRate = p
}

// SetLatency gives every call leg on every link a latency of base plus a
// seeded-uniform jitter in [0, jitter] virtual ticks (per-link RNG, so
// concurrent traffic on other links never shifts a link's draws).
func (n *Network) SetLatency(base, jitter uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lat.base, n.lat.jitter = base, jitter
}

// SetLatencySpikes adds ticks of extra delay to each call leg independently
// with probability rate — the heavy tail of a degraded link.
func (n *Network) SetLatencySpikes(rate float64, ticks uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lat.spikeRate, n.lat.spikeTicks = rate, ticks
}

// SetLinkLatency overrides the network latency profile on the directed link
// from -> to (the override replaces the whole profile for that link).
func (n *Network) SetLinkLatency(from, to Addr, base, jitter uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lf := n.linkFor(from, to)
	lf.lat.base, lf.lat.jitter = base, jitter
	lf.latSet = true
}

// SetLinkLatencySpikes sets the spike half of a per-link latency override.
func (n *Network) SetLinkLatencySpikes(from, to Addr, rate float64, ticks uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lf := n.linkFor(from, to)
	lf.lat.spikeRate, lf.lat.spikeTicks = rate, ticks
	lf.latSet = true
}

// SetLinkHangRate sets a hung-reply probability for the directed link
// from -> to, in addition to the global rate.  Rate 1 models a stuck peer:
// every request is accepted and executed, no reply ever returns.
func (n *Network) SetLinkHangRate(from, to Addr, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFor(from, to).hangRate = p
}

// ScriptLatency appends one-shot extra delays to the directed link
// from -> to: each subsequent matching RPC consumes the next delay, added
// to its request leg.  Deterministic by construction.
func (n *Network) ScriptLatency(from, to Addr, ticks ...uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lf := n.linkFor(from, to)
	lf.latScript = append(lf.latScript, ticks...)
}

// SetLinkRPCFaultRate sets a request-loss probability for the directed
// link from -> to, in addition to the global rate.
func (n *Network) SetLinkRPCFaultRate(from, to Addr, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFor(from, to).failRate = p
}

// SetLinkReplyLossRate sets a reply-loss probability for the directed link
// from -> to, in addition to the global rate.
func (n *Network) SetLinkReplyLossRate(from, to Addr, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFor(from, to).replyLossRate = p
}

// ScriptFaults appends one-shot faults to the directed link from -> to:
// each subsequent matching RPC consumes (and suffers) the next scheduled
// fault until the script is exhausted.  Deterministic by construction —
// no RNG involved.
func (n *Network) ScriptFaults(from, to Addr, kinds ...FaultKind) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lf := n.linkFor(from, to)
	lf.script = append(lf.script, kinds...)
}

// ClearFaults removes every scripted and probabilistic fault (global and
// per-link); partitions and host crashes are untouched.
func (n *Network) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rpcFailRate, n.replyLossRate, n.dupRate, n.reorderRate = 0, 0, 0, 0
	n.lossRate, n.hangRate = 0, 0
	n.lat = latencyProfile{}
	n.links = make(map[link]*linkFaults)
}

func (n *Network) linkFor(from, to Addr) *linkFaults {
	lf, ok := n.links[link{from, to}]
	if !ok {
		lf = &linkFaults{}
		n.links[link{from, to}] = lf
	}
	return lf
}

// linkRNGLocked returns the directed link's private fault RNG, creating it
// on first use.  The seed hashes (network seed, from, to) through a
// splitmix64 finalizer, so each link replays its own independent,
// reproducible stream.
func (n *Network) linkRNGLocked(from, to Addr) *rand.Rand {
	lf := n.linkFor(from, to)
	if lf.rng == nil {
		h := uint64(n.seed)
		for _, b := range []byte(from) {
			h = h*1099511628211 ^ uint64(b)
		}
		h ^= 0x9e3779b97f4a7c15
		for _, b := range []byte(to) {
			h = h*1099511628211 ^ uint64(b)
		}
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		lf.rng = rand.New(rand.NewSource(int64(h)))
	}
	return lf.rng
}

// SetLinkDatagramLossRate makes datagram deliveries on the directed link
// from -> to fail independently with probability p, in addition to any
// network-wide loss rate.  Loss draws come from the link's own seeded RNG,
// so one lossy link's rumor fate never perturbs another link's stream —
// the property the gossip chaos runs rely on for per-seed reproducibility.
func (n *Network) SetLinkDatagramLossRate(from, to Addr, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFor(from, to).dgramLossRate = p
}

// rpcFaultLocked decides the fate of one RPC about to be dispatched on
// from -> to: scripted faults fire first (FIFO), then probabilistic ones.
// Probabilistic draws — including the global rates — come from the link's
// own seeded RNG, so concurrent traffic on other links never shifts this
// link's fault sequence.  Returns (faulted, kind).
func (n *Network) rpcFaultLocked(from, to Addr) (bool, FaultKind) {
	if lf, ok := n.links[link{from, to}]; ok && len(lf.script) > 0 {
		k := lf.script[0]
		lf.script = lf.script[1:]
		return true, k
	}
	anyRate := n.rpcFailRate > 0 || n.replyLossRate > 0 || n.hangRate > 0
	if lf, ok := n.links[link{from, to}]; ok {
		anyRate = anyRate || lf.failRate > 0 || lf.replyLossRate > 0 || lf.hangRate > 0
	}
	if !anyRate {
		return false, 0
	}
	rng := n.linkRNGLocked(from, to)
	lf := n.links[link{from, to}]
	if lf.failRate > 0 && rng.Float64() < lf.failRate {
		return true, FaultRequestLost
	}
	if lf.replyLossRate > 0 && rng.Float64() < lf.replyLossRate {
		return true, FaultReplyLost
	}
	if n.rpcFailRate > 0 && rng.Float64() < n.rpcFailRate {
		return true, FaultRequestLost
	}
	if n.replyLossRate > 0 && rng.Float64() < n.replyLossRate {
		return true, FaultReplyLost
	}
	if lf.hangRate > 0 && rng.Float64() < lf.hangRate {
		return true, FaultHang
	}
	if n.hangRate > 0 && rng.Float64() < n.hangRate {
		return true, FaultHang
	}
	return false, 0
}

// latencyLocked draws the virtual latency of one call's request and reply
// legs on from -> to.  The link's profile overrides the network's; scripted
// one-shot delays land on the request leg.  Draws come from the link's own
// seeded RNG — and only when a latency is actually configured, so latency-
// free runs consume no draws and replay historical fault sequences exactly.
func (n *Network) latencyLocked(from, to Addr) (reqLat, replyLat uint64) {
	prof := n.lat
	lf, haveLink := n.links[link{from, to}]
	if haveLink && lf.latSet {
		prof = lf.lat
	}
	if haveLink && len(lf.latScript) > 0 {
		reqLat += lf.latScript[0]
		lf.latScript = lf.latScript[1:]
	}
	if !prof.active() {
		return reqLat, 0
	}
	rng := n.linkRNGLocked(from, to)
	leg := func() uint64 {
		d := prof.base
		if prof.jitter > 0 {
			d += uint64(rng.Int63n(int64(prof.jitter) + 1))
		}
		if prof.spikeRate > 0 && rng.Float64() < prof.spikeRate {
			d += prof.spikeTicks
			n.stats.RPCLatencySpikes++
		}
		return d
	}
	reqLat += leg()
	replyLat = leg()
	return reqLat, replyLat
}

// Host attaches (or returns) the host at addr.
func (n *Network) Host(addr Addr) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[addr]; ok {
		return h
	}
	h := &Host{
		net:      n,
		addr:     addr,
		rpc:      make(map[string]RPCHandler),
		datagram: make(map[string]DatagramHandler),
	}
	n.hosts[addr] = h
	n.group[addr] = 0
	return h
}

// Addrs lists attached hosts in deterministic (sorted) order.
func (n *Network) Addrs() []Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Addr, 0, len(n.hosts))
	for a := range n.hosts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partition splits the network into the given groups; a host in no listed
// group lands in its own singleton.  Hosts communicate iff they share a
// group.  Calling with no arguments is equivalent to Heal.
func (n *Network) Partition(groups ...[]Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := 1
	assigned := make(map[Addr]int)
	for _, g := range groups {
		for _, a := range g {
			assigned[a] = next
		}
		next++
	}
	for a := range n.hosts {
		if g, ok := assigned[a]; ok {
			n.group[a] = g
		} else {
			n.group[a] = next
			next++
		}
	}
}

// Heal reconnects every host.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for a := range n.hosts {
		n.group[a] = 0
	}
}

// Connected reports whether a and b can currently communicate.
func (n *Network) Connected(a, b Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.connectedLocked(a, b)
}

func (n *Network) connectedLocked(a, b Addr) bool {
	ha, ok := n.hosts[a]
	if !ok {
		return false
	}
	hb, ok := n.hosts[b]
	if !ok {
		return false
	}
	if ha.down || hb.down {
		return false
	}
	return n.group[a] == n.group[b]
}

// Stats returns a traffic snapshot.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// Host is one attached machine.
type Host struct {
	net      *Network
	addr     Addr
	down     bool
	rpc      map[string]RPCHandler
	datagram map[string]DatagramHandler
}

// Addr returns the host's address.
func (h *Host) Addr() Addr { return h.addr }

// SetDown crashes or revives the host.  A down host neither sends nor
// receives; its state is untouched (storage survives, as with a real crash).
func (h *Host) SetDown(down bool) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.down = down
}

// Down reports whether the host is crashed.
func (h *Host) Down() bool {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	return h.down
}

// HandleRPC registers the handler for a named service.
func (h *Host) HandleRPC(service string, fn RPCHandler) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.rpc[service] = fn
}

// RemoveRPC withdraws a service; later calls fail with ErrNoService.
func (h *Host) RemoveRPC(service string) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	delete(h.rpc, service)
}

// HandleDatagram registers the handler for a named datagram port.
func (h *Host) HandleDatagram(port string, fn DatagramHandler) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.datagram[port] = fn
}

// Call performs a synchronous RPC to service on dst.  It fails with
// ErrUnreachable when the hosts cannot currently communicate.  A host can
// always call itself, even while partitioned from everyone else; loopback
// calls are exempt from the fault plane.
func (h *Host) Call(dst Addr, service string, req []byte) ([]byte, error) {
	resp, _, err := h.CallT(dst, service, req, 0)
	return resp, err
}

// CallT is Call with a deadline, both measured in virtual ticks: it returns
// the call's virtual elapsed time alongside the result.  deadline 0 means
// wait forever (a hung reply then costs HangTicks).  With deadline > 0, any
// call whose virtual latency reaches the deadline — slow legs, a lost
// request or reply, a hung reply — fails with ErrDeadline after exactly
// deadline ticks: from the caller's clock a timeout is a timeout, whatever
// the cause.  The handler may still have run (at-most-once ambiguity).
// Latency is virtual, so CallT never blocks real time.
func (h *Host) CallT(dst Addr, service string, req []byte, deadline uint64) ([]byte, uint64, error) {
	h.net.mu.Lock()
	h.net.stats.RPCs++
	target, ok := h.net.hosts[dst]
	if !ok {
		h.net.stats.RPCFailures++
		h.net.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %s", ErrNoHost, dst)
	}
	if h.down || (dst != h.addr && !h.net.connectedLocked(h.addr, dst)) {
		h.net.stats.RPCFailures++
		h.net.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %s -> %s", ErrUnreachable, h.addr, dst)
	}
	fn, ok := target.rpc[service]
	if !ok {
		h.net.stats.RPCFailures++
		h.net.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %s on %s", ErrNoService, service, dst)
	}
	var faulted bool
	var kind FaultKind
	var reqLat, replyLat uint64
	if dst != h.addr {
		faulted, kind = h.net.rpcFaultLocked(h.addr, dst)
		reqLat, replyLat = h.net.latencyLocked(h.addr, dst)
	}
	if faulted && kind == FaultRequestLost {
		h.net.stats.RPCFailures++
		h.net.stats.RPCFaultsInjected++
		if deadline > 0 {
			// The caller cannot see the loss; it waits out the deadline.
			h.net.stats.RPCDeadlineMisses++
			h.net.stats.RPCVirtualTicks += deadline
			h.net.mu.Unlock()
			return nil, deadline, fmt.Errorf("%w: %s -> %s (request lost)", ErrDeadline, h.addr, dst)
		}
		h.net.stats.RPCVirtualTicks += reqLat
		h.net.mu.Unlock()
		return nil, reqLat, fmt.Errorf("%w: %s -> %s (injected request loss)", ErrUnreachable, h.addr, dst)
	}
	if deadline > 0 && reqLat >= deadline {
		// The request is still in flight when the caller gives up; the
		// handler never runs from this call's perspective.
		h.net.stats.RPCFailures++
		h.net.stats.RPCDeadlineMisses++
		h.net.stats.RPCVirtualTicks += deadline
		h.net.mu.Unlock()
		return nil, deadline, fmt.Errorf("%w: %s -> %s (request leg %d >= deadline %d)", ErrDeadline, h.addr, dst, reqLat, deadline)
	}
	h.net.mu.Unlock()

	resp, err := fn(req)

	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	switch {
	case faulted && kind == FaultHang: // handler ran, reply never arrives
		h.net.stats.RPCFailures++
		h.net.stats.RPCHangs++
		if deadline > 0 {
			h.net.stats.RPCDeadlineMisses++
			h.net.stats.RPCVirtualTicks += deadline
			return nil, deadline, fmt.Errorf("%w: %s -> %s (reply hung)", ErrDeadline, h.addr, dst)
		}
		h.net.stats.RPCVirtualTicks += HangTicks
		return nil, HangTicks, fmt.Errorf("%w: %s -> %s (reply hung)", ErrUnreachable, h.addr, dst)
	case faulted: // FaultReplyLost: the handler ran, the caller learns nothing
		h.net.stats.RPCFailures++
		h.net.stats.RPCRepliesLost++
		if deadline > 0 {
			h.net.stats.RPCDeadlineMisses++
			h.net.stats.RPCVirtualTicks += deadline
			return nil, deadline, fmt.Errorf("%w: %s -> %s (reply lost)", ErrDeadline, h.addr, dst)
		}
		h.net.stats.RPCVirtualTicks += reqLat + replyLat
		return nil, reqLat + replyLat, fmt.Errorf("%w: %s -> %s (injected reply loss)", ErrUnreachable, h.addr, dst)
	case deadline > 0 && reqLat+replyLat >= deadline:
		// The reply is still in flight at the deadline; it is discarded.
		h.net.stats.RPCFailures++
		h.net.stats.RPCDeadlineMisses++
		h.net.stats.RPCVirtualTicks += deadline
		return nil, deadline, fmt.Errorf("%w: %s -> %s (latency %d >= deadline %d)", ErrDeadline, h.addr, dst, reqLat+replyLat, deadline)
	}
	if err == nil {
		h.net.stats.RPCBytes += uint64(len(req) + len(resp))
	}
	h.net.stats.RPCVirtualTicks += reqLat + replyLat
	return resp, reqLat + replyLat, err
}

// Multicast delivers a best-effort datagram to port on each destination.
// Unreachable destinations are silently skipped — exactly the fire-and-
// forget semantics of the paper's update notification (§2.5).  Delivery is
// synchronous in the caller's goroutine to keep simulations deterministic;
// handlers must be fast and must not call back into the sender.
//
// Under the fault plane a delivery may additionally be duplicated (the
// handler fires twice) and the destination order of one multicast may be
// permuted — receivers must treat notifications as idempotent, unordered
// hints, which is exactly the contract of the paper's new-version cache.
func (h *Host) Multicast(port string, payload []byte, dsts []Addr) {
	h.net.mu.Lock()
	if h.net.reorderRate > 0 && len(dsts) > 1 && h.net.rng.Float64() < h.net.reorderRate {
		shuffled := append([]Addr(nil), dsts...)
		h.net.rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		dsts = shuffled
		h.net.stats.MulticastsReordered++
	}
	h.net.mu.Unlock()
	for _, dst := range dsts {
		h.net.mu.Lock()
		h.net.stats.Datagrams++
		target, ok := h.net.hosts[dst]
		deliverable := ok && !h.down && (dst == h.addr || h.net.connectedLocked(h.addr, dst))
		if deliverable && h.net.lossRate > 0 && h.net.rng.Float64() < h.net.lossRate {
			deliverable = false
		}
		// Per-link loss draws from the link's own RNG, and only when that
		// link is configured lossy — links without it replay their historical
		// sequences untouched.
		if deliverable {
			if lf, ok := h.net.links[link{h.addr, dst}]; ok && lf.dgramLossRate > 0 &&
				h.net.linkRNGLocked(h.addr, dst).Float64() < lf.dgramLossRate {
				deliverable = false
			}
		}
		var fn DatagramHandler
		if deliverable {
			fn = target.datagram[port]
		}
		if fn == nil {
			h.net.stats.DatagramsDropped++
			h.net.mu.Unlock()
			continue
		}
		copies := 1
		if h.net.dupRate > 0 && h.net.rng.Float64() < h.net.dupRate {
			copies = 2
			h.net.stats.DatagramsDuplicated++
		}
		h.net.stats.DatagramsDelivered++
		h.net.stats.DatagramBytes += uint64(len(payload))
		h.net.mu.Unlock()
		for i := 0; i < copies; i++ {
			fn(h.addr, payload)
		}
	}
}
