package simnet

import (
	"errors"
	"sync"
	"testing"
)

func echoNet(t *testing.T) (*Network, *Host, *Host, *Host) {
	t.Helper()
	n := New(1)
	a := n.Host("a")
	b := n.Host("b")
	c := n.Host("c")
	for _, h := range []*Host{a, b, c} {
		h.HandleRPC("echo", func(req []byte) ([]byte, error) { return req, nil })
	}
	return n, a, b, c
}

func TestRPCRoundTrip(t *testing.T) {
	_, a, _, _ := echoNet(t)
	resp, err := a.Call("b", "echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Fatalf("resp %q", resp)
	}
}

func TestRPCToSelf(t *testing.T) {
	_, a, _, _ := echoNet(t)
	if _, err := a.Call("a", "echo", []byte("x")); err != nil {
		t.Fatalf("self call: %v", err)
	}
}

func TestRPCErrors(t *testing.T) {
	_, a, b, _ := echoNet(t)
	if _, err := a.Call("zz", "echo", nil); !errors.Is(err, ErrNoHost) {
		t.Fatalf("no host: %v", err)
	}
	if _, err := a.Call("b", "nope", nil); !errors.Is(err, ErrNoService) {
		t.Fatalf("no service: %v", err)
	}
	_ = b
}

func TestPartitionBlocksRPC(t *testing.T) {
	n, a, b, c := echoNet(t)
	n.Partition([]Addr{"a", "b"}, []Addr{"c"})
	if _, err := a.Call("b", "echo", nil); err != nil {
		t.Fatalf("same group: %v", err)
	}
	if _, err := a.Call("c", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-partition: %v", err)
	}
	if !n.Connected("a", "b") || n.Connected("b", "c") {
		t.Fatal("Connected disagrees with partition")
	}
	n.Heal()
	if _, err := a.Call("c", "echo", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	_, _ = b, c
}

func TestUnlistedHostIsolatedByPartition(t *testing.T) {
	n, a, _, c := echoNet(t)
	n.Partition([]Addr{"a", "b"}) // c unlisted -> singleton
	if _, err := a.Call("c", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unlisted host reachable: %v", err)
	}
	// c can still talk to itself.
	if _, err := c.Call("c", "echo", nil); err != nil {
		t.Fatalf("self call while isolated: %v", err)
	}
}

func TestEmptyPartitionHeals(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.Partition([]Addr{"a"}, []Addr{"b"}, []Addr{"c"})
	n.Partition()
	if _, err := a.Call("b", "echo", nil); err == nil {
		t.Fatal("Partition() with no groups should isolate everyone (each unlisted host is a singleton)")
	}
	n.Heal()
	if _, err := a.Call("b", "echo", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestDownHost(t *testing.T) {
	_, a, b, _ := echoNet(t)
	b.SetDown(true)
	if !b.Down() {
		t.Fatal("Down() = false")
	}
	if _, err := a.Call("b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to down host: %v", err)
	}
	// A down host cannot originate calls either.
	if _, err := b.Call("a", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call from down host: %v", err)
	}
	b.SetDown(false)
	if _, err := a.Call("b", "echo", nil); err != nil {
		t.Fatalf("after revive: %v", err)
	}
}

func TestMulticastDelivery(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	var mu sync.Mutex
	got := map[Addr][]string{}
	for _, name := range []Addr{"b", "c", "d"} {
		name := name
		n.Host(name).HandleDatagram("notify", func(from Addr, p []byte) {
			mu.Lock()
			got[name] = append(got[name], string(p))
			mu.Unlock()
		})
	}
	a.Multicast("notify", []byte("v2"), []Addr{"b", "c", "d"})
	for _, name := range []Addr{"b", "c", "d"} {
		if len(got[name]) != 1 || got[name][0] != "v2" {
			t.Fatalf("%s got %v", name, got[name])
		}
	}
	s := n.Stats()
	if s.DatagramsDelivered != 3 || s.DatagramsDropped != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMulticastDropsAcrossPartition(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	seen := 0
	n.Host("b").HandleDatagram("notify", func(Addr, []byte) { seen++ })
	n.Host("c").HandleDatagram("notify", func(Addr, []byte) { seen++ })
	n.Partition([]Addr{"a", "b"}, []Addr{"c"})
	a.Multicast("notify", []byte("x"), []Addr{"b", "c"})
	if seen != 1 {
		t.Fatalf("deliveries %d, want 1", seen)
	}
	s := n.Stats()
	if s.DatagramsDropped != 1 || s.DatagramsDelivered != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMulticastToUnregisteredPortDropped(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	n.Host("b")
	a.Multicast("notify", nil, []Addr{"b"})
	if s := n.Stats(); s.DatagramsDropped != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDatagramLossRate(t *testing.T) {
	n := New(42)
	a := n.Host("a")
	delivered := 0
	n.Host("b").HandleDatagram("p", func(Addr, []byte) { delivered++ })
	n.SetDatagramLossRate(0.5)
	for i := 0; i < 1000; i++ {
		a.Multicast("p", nil, []Addr{"b"})
	}
	if delivered < 350 || delivered > 650 {
		t.Fatalf("delivered %d of 1000 at 50%% loss", delivered)
	}
	// Determinism: same seed, same outcome.
	n2 := New(42)
	a2 := n2.Host("a")
	delivered2 := 0
	n2.Host("b").HandleDatagram("p", func(Addr, []byte) { delivered2++ })
	n2.SetDatagramLossRate(0.5)
	for i := 0; i < 1000; i++ {
		a2.Multicast("p", nil, []Addr{"b"})
	}
	if delivered2 != delivered {
		t.Fatalf("non-deterministic: %d vs %d", delivered, delivered2)
	}
}

func TestRPCStats(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.ResetStats()
	a.Call("b", "echo", []byte("1234"))
	a.Call("zz", "echo", nil)
	s := n.Stats()
	if s.RPCs != 2 || s.RPCFailures != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.RPCBytes != 8 { // 4 request + 4 echoed response
		t.Fatalf("bytes %d", s.RPCBytes)
	}
}

func TestHostIdempotentAttach(t *testing.T) {
	n := New(1)
	if n.Host("a") != n.Host("a") {
		t.Fatal("Host not idempotent")
	}
	if len(n.Addrs()) != 1 {
		t.Fatalf("addrs %v", n.Addrs())
	}
}

// --- Fault plane --------------------------------------------------------

func TestRPCFaultRateAndDeterminism(t *testing.T) {
	run := func(seed int64) (ok, failed int) {
		n := New(seed)
		a := n.Host("a")
		n.Host("b").HandleRPC("echo", func(req []byte) ([]byte, error) { return req, nil })
		n.SetRPCFaultRate(0.3)
		for i := 0; i < 1000; i++ {
			if _, err := a.Call("b", "echo", nil); err != nil {
				if !errors.Is(err, ErrUnreachable) {
					t.Fatalf("fault surfaced as %v, want ErrUnreachable", err)
				}
				failed++
			} else {
				ok++
			}
		}
		return
	}
	ok, failed := run(7)
	if failed < 200 || failed > 400 {
		t.Fatalf("failed %d of 1000 at 30%% fault rate", failed)
	}
	ok2, failed2 := run(7)
	if ok != ok2 || failed != failed2 {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", ok, failed, ok2, failed2)
	}
}

func TestReplyLossRunsHandler(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	executed := 0
	n.Host("b").HandleRPC("op", func(req []byte) ([]byte, error) { executed++; return []byte("done"), nil })
	n.ScriptFaults("a", "b", FaultReplyLost)
	if _, err := a.Call("b", "op", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("reply loss surfaced as %v", err)
	}
	if executed != 1 {
		t.Fatalf("handler ran %d times, want 1 (reply-loss executes the op)", executed)
	}
	// The script is exhausted: the next call goes through.
	if _, err := a.Call("b", "op", nil); err != nil {
		t.Fatalf("after script drained: %v", err)
	}
	if executed != 2 {
		t.Fatalf("executed %d", executed)
	}
	s := n.Stats()
	if s.RPCRepliesLost != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestScriptedRequestLossSkipsHandler(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	executed := 0
	n.Host("b").HandleRPC("op", func(req []byte) ([]byte, error) { executed++; return nil, nil })
	n.ScriptFaults("a", "b", FaultRequestLost, FaultRequestLost)
	for i := 0; i < 2; i++ {
		if _, err := a.Call("b", "op", nil); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if executed != 0 {
		t.Fatalf("handler ran %d times during request loss", executed)
	}
	// Scripted faults are directional: b -> a is unaffected.
	a.HandleRPC("op", func(req []byte) ([]byte, error) { return nil, nil })
	if _, err := n.Host("b").Call("a", "op", nil); err != nil {
		t.Fatalf("reverse direction faulted: %v", err)
	}
	if s := n.Stats(); s.RPCFaultsInjected != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLinkFaultRateIsPerLink(t *testing.T) {
	n := New(3)
	a := n.Host("a")
	for _, name := range []Addr{"b", "c"} {
		n.Host(name).HandleRPC("echo", func(req []byte) ([]byte, error) { return req, nil })
	}
	n.SetLinkRPCFaultRate("a", "b", 1.0)
	if _, err := a.Call("b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("faulted link: %v", err)
	}
	if _, err := a.Call("c", "echo", nil); err != nil {
		t.Fatalf("clean link: %v", err)
	}
	n.ClearFaults()
	if _, err := a.Call("b", "echo", nil); err != nil {
		t.Fatalf("after ClearFaults: %v", err)
	}
}

func TestSelfCallExemptFromFaults(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	a.HandleRPC("echo", func(req []byte) ([]byte, error) { return req, nil })
	n.SetRPCFaultRate(1.0)
	n.SetReplyLossRate(1.0)
	if _, err := a.Call("a", "echo", nil); err != nil {
		t.Fatalf("loopback faulted: %v", err)
	}
}

func TestDatagramDuplication(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	got := 0
	n.Host("b").HandleDatagram("p", func(Addr, []byte) { got++ })
	n.SetDatagramDuplicateRate(1.0)
	a.Multicast("p", nil, []Addr{"b"})
	if got != 2 {
		t.Fatalf("deliveries %d, want 2 (duplicated)", got)
	}
	if s := n.Stats(); s.DatagramsDuplicated != 1 || s.DatagramsDelivered != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDatagramReordering(t *testing.T) {
	n := New(5)
	a := n.Host("a")
	var order []Addr
	for _, name := range []Addr{"b", "c", "d", "e"} {
		name := name
		n.Host(name).HandleDatagram("p", func(Addr, []byte) { order = append(order, name) })
	}
	n.SetDatagramReorderRate(1.0)
	permuted := false
	for i := 0; i < 20 && !permuted; i++ {
		order = order[:0]
		a.Multicast("p", nil, []Addr{"b", "c", "d", "e"})
		if len(order) != 4 {
			t.Fatalf("deliveries %v", order)
		}
		for j, name := range []Addr{"b", "c", "d", "e"} {
			if order[j] != name {
				permuted = true
			}
		}
	}
	if !permuted {
		t.Fatal("20 multicasts at reorder rate 1.0, never permuted")
	}
	if s := n.Stats(); s.MulticastsReordered == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLatencyBaseAndJitter(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.SetLatency(10, 5)
	var min, max uint64 = 1 << 62, 0
	for i := 0; i < 200; i++ {
		_, el, err := a.CallT("b", "echo", []byte("x"), 0)
		if err != nil {
			t.Fatal(err)
		}
		// Two legs: each in [10, 15], so the round trip is in [20, 30].
		if el < 20 || el > 30 {
			t.Fatalf("elapsed %d outside [20,30]", el)
		}
		if el < min {
			min = el
		}
		if el > max {
			max = el
		}
	}
	if min == max {
		t.Fatalf("jitter produced no spread (always %d)", min)
	}
	if got := n.Stats().RPCVirtualTicks; got < 200*20 {
		t.Fatalf("RPCVirtualTicks %d, want >= %d", got, 200*20)
	}
}

func TestLatencyDeterministicPerLink(t *testing.T) {
	sample := func() []uint64 {
		n := New(7)
		a := n.Host("a")
		b := n.Host("b")
		b.HandleRPC("echo", func(req []byte) ([]byte, error) { return req, nil })
		n.SetLatency(3, 9)
		var out []uint64
		for i := 0; i < 50; i++ {
			_, el, err := a.CallT("b", "echo", nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, el)
		}
		return out
	}
	x, y := sample(), sample()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("call %d: %d vs %d — latency draws not reproducible", i, x[i], y[i])
		}
	}
}

func TestLatencySpikes(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.SetLatency(1, 0)
	n.SetLatencySpikes(0.2, 100)
	spiked := 0
	for i := 0; i < 300; i++ {
		_, el, err := a.CallT("b", "echo", nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if el >= 100 {
			spiked++
		}
	}
	if spiked == 0 || spiked == 300 {
		t.Fatalf("spiked %d/300, want some but not all", spiked)
	}
	if n.Stats().RPCLatencySpikes == 0 {
		t.Fatal("RPCLatencySpikes not counted")
	}
}

func TestScriptLatencyOneShot(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.ScriptLatency("a", "b", 40)
	_, el, err := a.CallT("b", "echo", nil, 0)
	if err != nil || el != 40 {
		t.Fatalf("scripted call: elapsed %d err %v, want 40 nil", el, err)
	}
	_, el, err = a.CallT("b", "echo", nil, 0)
	if err != nil || el != 0 {
		t.Fatalf("post-script call: elapsed %d err %v, want 0 nil", el, err)
	}
}

func TestDeadlineExceededBySlowLink(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.SetLinkLatency("a", "b", 30, 0)
	_, el, err := a.CallT("b", "echo", nil, 25)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if el != 25 {
		t.Fatalf("elapsed %d, want exactly the deadline 25", el)
	}
	s := n.Stats()
	if s.RPCDeadlineMisses != 1 {
		t.Fatalf("RPCDeadlineMisses %d", s.RPCDeadlineMisses)
	}
	// A generous deadline succeeds.
	if _, el, err := a.CallT("b", "echo", nil, 100); err != nil || el != 60 {
		t.Fatalf("generous deadline: elapsed %d err %v", el, err)
	}
}

func TestHangRunsHandlerButNeverReplies(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	b := n.Host("b")
	ran := 0
	b.HandleRPC("echo", func(req []byte) ([]byte, error) { ran++; return req, nil })
	n.ScriptFaults("a", "b", FaultHang)
	_, el, err := a.CallT("b", "echo", nil, 50)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("hang under deadline: want ErrDeadline, got %v", err)
	}
	if el != 50 {
		t.Fatalf("elapsed %d, want deadline 50", el)
	}
	if ran != 1 {
		t.Fatalf("handler ran %d times, want 1 (request accepted, reply hung)", ran)
	}
	// Without a deadline a hang costs HangTicks and looks unreachable.
	n.ScriptFaults("a", "b", FaultHang)
	_, el, err = a.CallT("b", "echo", nil, 0)
	if !errors.Is(err, ErrUnreachable) || el != HangTicks {
		t.Fatalf("deadline-less hang: elapsed %d err %v", el, err)
	}
	s := n.Stats()
	if s.RPCHangs != 2 || s.RPCDeadlineMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestHangRateStuckPeer(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.SetLinkHangRate("a", "b", 1.0)
	for i := 0; i < 5; i++ {
		if _, _, err := a.CallT("b", "echo", nil, 10); !errors.Is(err, ErrDeadline) {
			t.Fatalf("call %d: want ErrDeadline, got %v", i, err)
		}
	}
	// Other links are unaffected.
	if _, _, err := a.CallT("c", "echo", nil, 10); err != nil {
		t.Fatalf("a->c: %v", err)
	}
	if got := n.Stats().RPCHangs; got != 5 {
		t.Fatalf("RPCHangs %d", got)
	}
}

func TestLostRequestUnderDeadlineIsDeadline(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.ScriptFaults("a", "b", FaultRequestLost, FaultReplyLost)
	for i := 0; i < 2; i++ {
		_, el, err := a.CallT("b", "echo", nil, 7)
		if !errors.Is(err, ErrDeadline) || el != 7 {
			t.Fatalf("loss %d under deadline: elapsed %d err %v", i, el, err)
		}
	}
}

func TestClearFaultsClearsLatency(t *testing.T) {
	n, a, _, _ := echoNet(t)
	n.SetLatency(10, 0)
	n.SetHangRate(1.0)
	n.ClearFaults()
	_, el, err := a.CallT("b", "echo", nil, 5)
	if err != nil || el != 0 {
		t.Fatalf("after ClearFaults: elapsed %d err %v", el, err)
	}
}

func TestLinkDatagramLossRate(t *testing.T) {
	n := New(7)
	a := n.Host("a")
	deliveredB, deliveredC := 0, 0
	n.Host("b").HandleDatagram("p", func(Addr, []byte) { deliveredB++ })
	n.Host("c").HandleDatagram("p", func(Addr, []byte) { deliveredC++ })
	n.SetLinkDatagramLossRate("a", "b", 0.5)
	for i := 0; i < 1000; i++ {
		a.Multicast("p", nil, []Addr{"b", "c"})
	}
	// The lossy link drops roughly half; the untouched link drops nothing.
	if deliveredB < 350 || deliveredB > 650 {
		t.Fatalf("delivered %d of 1000 over a 50%% lossy link", deliveredB)
	}
	if deliveredC != 1000 {
		t.Fatalf("clean link delivered %d of 1000", deliveredC)
	}
	s := n.Stats()
	if s.DatagramsDelivered != uint64(deliveredB+deliveredC) {
		t.Fatalf("stats %+v vs delivered %d+%d", s, deliveredB, deliveredC)
	}
	if s.DatagramsDropped != uint64(2000-deliveredB-deliveredC) {
		t.Fatalf("dropped %d, want %d", s.DatagramsDropped, 2000-deliveredB-deliveredC)
	}
	if s.DatagramBytes != 0 {
		t.Fatalf("DatagramBytes = %d for empty payloads, want 0", s.DatagramBytes)
	}

	// Per-link loss is directional and seeded: same seed, same outcome.
	n2 := New(7)
	a2 := n2.Host("a")
	delivered2 := 0
	n2.Host("b").HandleDatagram("p", func(Addr, []byte) { delivered2++ })
	n2.Host("c").HandleDatagram("p", func(Addr, []byte) {})
	n2.SetLinkDatagramLossRate("a", "b", 0.5)
	for i := 0; i < 1000; i++ {
		a2.Multicast("p", nil, []Addr{"b", "c"})
	}
	if delivered2 != deliveredB {
		t.Fatalf("non-deterministic link loss: %d vs %d", delivered2, deliveredB)
	}
}

func TestDatagramBytesAccounted(t *testing.T) {
	n := New(1)
	a := n.Host("a")
	n.Host("b").HandleDatagram("p", func(Addr, []byte) {})
	a.Multicast("p", []byte("12345"), []Addr{"b"})
	a.Multicast("p", []byte("123"), []Addr{"b"})
	if s := n.Stats(); s.DatagramBytes != 8 {
		t.Fatalf("DatagramBytes = %d, want 8", s.DatagramBytes)
	}
}
