// Package workload generates the synthetic reference streams the
// experiments replay.  Two generators cover the behaviours the paper's
// design leans on:
//
//   - Locality-weighted file references (Floyd's UNIX studies, cited in
//     §1/§2.6): a small hot set absorbs most references, which is what lets
//     the UFS caches amortize the Ficus dual-mapping overhead.
//   - Bursty update streams (§3.2): updates to a file arrive in bursts, so
//     delayed propagation coalesces several notifications into one pull.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Ref is one file reference.
type Ref struct {
	File  int  // file index in [0, Files)
	Write bool // write (update) vs read
}

// LocalityConfig parameterizes a hot/cold reference stream.
type LocalityConfig struct {
	Files      int     // population size
	HotFiles   int     // size of the hot set (first HotFiles indices)
	HotProb    float64 // probability a reference lands in the hot set
	WriteRatio float64 // fraction of references that are writes
	Seed       int64
}

// Locality is a deterministic reference generator with a hot set.
type Locality struct {
	cfg LocalityConfig
	rng *rand.Rand
}

// NewLocality validates the configuration and builds a generator.
func NewLocality(cfg LocalityConfig) (*Locality, error) {
	if cfg.Files <= 0 {
		return nil, fmt.Errorf("workload: Files must be positive, got %d", cfg.Files)
	}
	if cfg.HotFiles < 0 || cfg.HotFiles > cfg.Files {
		return nil, fmt.Errorf("workload: HotFiles %d out of range [0,%d]", cfg.HotFiles, cfg.Files)
	}
	if cfg.HotProb < 0 || cfg.HotProb > 1 {
		return nil, fmt.Errorf("workload: HotProb %f out of range", cfg.HotProb)
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return nil, fmt.Errorf("workload: WriteRatio %f out of range", cfg.WriteRatio)
	}
	return &Locality{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Next draws one reference.
func (l *Locality) Next() Ref {
	var file int
	if l.cfg.HotFiles > 0 && l.rng.Float64() < l.cfg.HotProb {
		file = l.rng.Intn(l.cfg.HotFiles)
	} else if l.cfg.Files > l.cfg.HotFiles {
		file = l.cfg.HotFiles + l.rng.Intn(l.cfg.Files-l.cfg.HotFiles)
	} else {
		file = l.rng.Intn(l.cfg.Files)
	}
	return Ref{File: file, Write: l.rng.Float64() < l.cfg.WriteRatio}
}

// Stream draws n references.
func (l *Locality) Stream(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = l.Next()
	}
	return out
}

// Update is one timestamped update event.
type Update struct {
	Step int // logical time step
	File int
}

// BurstConfig parameterizes a bursty update stream: bursts of BurstLen
// consecutive updates to one file, separated by idle gaps.
type BurstConfig struct {
	Files    int
	BurstLen int // updates per burst (>= 1)
	GapSteps int // idle steps between bursts
	Bursts   int // number of bursts to emit
	Seed     int64
}

// Bursts generates the update schedule.
func Bursts(cfg BurstConfig) ([]Update, error) {
	if cfg.Files <= 0 || cfg.BurstLen <= 0 || cfg.Bursts < 0 || cfg.GapSteps < 0 {
		return nil, fmt.Errorf("workload: invalid burst config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Update
	step := 0
	for b := 0; b < cfg.Bursts; b++ {
		file := rng.Intn(cfg.Files)
		for i := 0; i < cfg.BurstLen; i++ {
			out = append(out, Update{Step: step, File: file})
			step++
		}
		step += cfg.GapSteps
	}
	return out, nil
}

// NameFor renders a stable file name for index i (shared by experiments so
// streams address the same namespace).
func NameFor(i int) string { return fmt.Sprintf("wf-%05d", i) }

// ---- delta-propagation workloads ---------------------------------------
//
// The block-delta experiments (E13) need update streams whose EDIT shape is
// controlled: an append-one-block pass changes exactly one block of each
// file, and a touch-metadata pass changes none — the two ends of the
// "update a big file" spectrum the content-addressed transfer path exists
// for.  Block contents are deterministic functions of (seed, file, block),
// so every host generates identical bytes and two blocks share an address
// only when they genuinely are the same block.

// DeltaBlock returns the deterministic contents of block bi of file fi:
// size pseudo-random bytes unique to (seed, fi, bi).  Uniqueness is
// structural — the identifying triple is stamped into the leading bytes —
// because math/rand reduces seeds mod 2^31-1, which collapses distinct
// (fi, bi) pairs onto one stream and would silently make different blocks
// byte-identical (the dedup layer then "saves" traffic that a real
// workload would have to ship).
func DeltaBlock(seed int64, fi, bi, size int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(fi)<<32 ^ int64(bi)))
	out := make([]byte, size)
	rng.Read(out)
	if size >= 24 {
		binary.LittleEndian.PutUint64(out[0:], uint64(seed))
		binary.LittleEndian.PutUint64(out[8:], uint64(fi))
		binary.LittleEndian.PutUint64(out[16:], uint64(bi))
	}
	return out
}

// AppendOneBlock returns file fi's full contents after `appends` passes of
// an append-one-block workload over a base of baseBlocks blocks: the first
// baseBlocks+appends deterministic blocks, concatenated.  Successive passes
// therefore differ in exactly one trailing block.
func AppendOneBlock(seed int64, fi, baseBlocks, appends, blockSize int) []byte {
	n := baseBlocks + appends
	out := make([]byte, 0, n*blockSize)
	for bi := 0; bi < n; bi++ {
		out = append(out, DeltaBlock(seed, fi, bi, blockSize)...)
	}
	return out
}

// TouchMetadata returns the contents of a metadata-only touch: byte-for-byte
// identical to AppendOneBlock with the same arguments.  Writing it issues a
// new version (the vector bumps, propagation runs) whose every block dedups
// against the previous one — the delta path should ship no data at all.
func TouchMetadata(seed int64, fi, baseBlocks, appends, blockSize int) []byte {
	return AppendOneBlock(seed, fi, baseBlocks, appends, blockSize)
}
