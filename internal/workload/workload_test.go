package workload

import (
	"testing"
)

func TestLocalityValidation(t *testing.T) {
	bad := []LocalityConfig{
		{Files: 0},
		{Files: 10, HotFiles: 11},
		{Files: 10, HotFiles: -1},
		{Files: 10, HotProb: 1.5},
		{Files: 10, WriteRatio: -0.1},
	}
	for _, cfg := range bad {
		if _, err := NewLocality(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestLocalitySkew(t *testing.T) {
	l, err := NewLocality(LocalityConfig{Files: 1000, HotFiles: 50, HotProb: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r := l.Next()
		if r.File < 0 || r.File >= 1000 {
			t.Fatalf("file %d out of range", r.File)
		}
		if r.File < 50 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("hot fraction %.3f, want ~0.90", frac)
	}
}

func TestLocalityWriteRatio(t *testing.T) {
	l, _ := NewLocality(LocalityConfig{Files: 10, HotFiles: 2, HotProb: 0.5, WriteRatio: 0.25, Seed: 2})
	writes := 0
	refs := l.Stream(20000)
	if len(refs) != 20000 {
		t.Fatal("stream length")
	}
	for _, r := range refs {
		if r.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(refs))
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("write fraction %.3f, want ~0.25", frac)
	}
}

func TestLocalityDeterministic(t *testing.T) {
	mk := func() []Ref {
		l, _ := NewLocality(LocalityConfig{Files: 100, HotFiles: 10, HotProb: 0.8, Seed: 42})
		return l.Stream(100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic stream")
		}
	}
}

func TestLocalityAllHot(t *testing.T) {
	// HotFiles == Files: every draw must stay in range.
	l, err := NewLocality(LocalityConfig{Files: 5, HotFiles: 5, HotProb: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r := l.Next(); r.File < 0 || r.File >= 5 {
			t.Fatalf("file %d", r.File)
		}
	}
}

func TestBurstsShape(t *testing.T) {
	ups, err := Bursts(BurstConfig{Files: 4, BurstLen: 5, GapSteps: 10, Bursts: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 15 {
		t.Fatalf("%d updates, want 15", len(ups))
	}
	// Within a burst: same file, consecutive steps.
	for b := 0; b < 3; b++ {
		burst := ups[b*5 : (b+1)*5]
		for i := 1; i < 5; i++ {
			if burst[i].File != burst[0].File {
				t.Fatal("burst spans files")
			}
			if burst[i].Step != burst[i-1].Step+1 {
				t.Fatal("burst not consecutive")
			}
		}
	}
	// Gap between bursts.
	if ups[5].Step-ups[4].Step != 11 {
		t.Fatalf("gap %d, want 11", ups[5].Step-ups[4].Step)
	}
}

func TestBurstsValidation(t *testing.T) {
	for _, cfg := range []BurstConfig{
		{Files: 0, BurstLen: 1, Bursts: 1},
		{Files: 1, BurstLen: 0, Bursts: 1},
		{Files: 1, BurstLen: 1, Bursts: -1},
		{Files: 1, BurstLen: 1, Bursts: 1, GapSteps: -1},
	} {
		if _, err := Bursts(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if ups, err := Bursts(BurstConfig{Files: 1, BurstLen: 1, Bursts: 0}); err != nil || len(ups) != 0 {
		t.Fatalf("zero bursts: %v %v", ups, err)
	}
}

func TestNameFor(t *testing.T) {
	if NameFor(3) != "wf-00003" || NameFor(0) == NameFor(1) {
		t.Fatal("names")
	}
}

func TestDeltaWorkloadShape(t *testing.T) {
	const bs = 64
	// Deterministic and unique per (seed, file, block).
	if string(DeltaBlock(1, 2, 3, bs)) != string(DeltaBlock(1, 2, 3, bs)) {
		t.Fatal("DeltaBlock not deterministic")
	}
	if string(DeltaBlock(1, 2, 3, bs)) == string(DeltaBlock(1, 2, 4, bs)) ||
		string(DeltaBlock(1, 2, 3, bs)) == string(DeltaBlock(1, 3, 3, bs)) {
		t.Fatal("DeltaBlock collides across files/blocks")
	}
	// Exhaustive distinctness over a realistic (file, block) grid.  math/rand
	// folds seeds mod 2^31-1, so a seed-only scheme collides (e.g. file fi+1
	// block 0 with file fi block 2); the stamped header must keep every block
	// unique regardless.
	seen := map[string][2]int{}
	for fi := 0; fi < 16; fi++ {
		for bi := 0; bi < 24; bi++ {
			k := string(DeltaBlock(1313, fi, bi, bs))
			if prev, dup := seen[k]; dup {
				t.Fatalf("DeltaBlock(1313,%d,%d) == DeltaBlock(1313,%d,%d)", fi, bi, prev[0], prev[1])
			}
			seen[k] = [2]int{fi, bi}
		}
	}

	// Append-one-block: pass p+1 = pass p + exactly one fresh block.
	prev := AppendOneBlock(7, 0, 4, 0, bs)
	if len(prev) != 4*bs {
		t.Fatalf("base length %d, want %d", len(prev), 4*bs)
	}
	next := AppendOneBlock(7, 0, 4, 1, bs)
	if len(next) != 5*bs || string(next[:len(prev)]) != string(prev) {
		t.Fatal("append pass rewrote existing blocks")
	}
	if string(next[len(prev):]) != string(DeltaBlock(7, 0, 4, bs)) {
		t.Fatal("appended block is not block 4")
	}

	// Touch-metadata: byte-for-byte the previous contents.
	if string(TouchMetadata(7, 0, 4, 1, bs)) != string(next) {
		t.Fatal("touch changed the bytes")
	}
}
