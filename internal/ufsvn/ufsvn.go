// Package ufsvn adapts the UFS substrate (internal/ufs) to the vnode layer
// interface (internal/vnode), making UFS the bottom layer of Ficus stacks
// exactly as in paper Figure 1.  It also maps UFS errors onto the canonical
// vnode error vocabulary so upper layers and the NFS transport see a uniform
// error surface.
package ufsvn

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/ufs"
	"repro/internal/vnode"
)

// VFS wraps a mounted ufs.FS as a vnode.VFS.
type VFS struct {
	fs *ufs.FS
}

// New wraps fs.
func New(fs *ufs.FS) *VFS { return &VFS{fs: fs} }

// FS exposes the underlying UFS (used by experiments that need I/O
// accounting or cache control).
func (v *VFS) FS() *ufs.FS { return v.fs }

// Root returns the root vnode.
func (v *VFS) Root() (vnode.Vnode, error) {
	return &vn{fs: v.fs, ino: v.fs.Root()}, nil
}

// Sync flushes the (write-through) substrate.
func (v *VFS) Sync() error { return v.fs.Sync() }

// Resolve recovers a vnode from a handle previously returned by
// Vnode.Handle; unknown or freed handles yield ESTALE.
func (v *VFS) Resolve(handle string) (vnode.Vnode, error) {
	n, err := strconv.ParseUint(handle, 10, 32)
	if err != nil {
		return nil, vnode.ESTALE
	}
	ino := ufs.Ino(n)
	if _, err := v.fs.Stat(ino); err != nil {
		return nil, vnode.ESTALE
	}
	return &vn{fs: v.fs, ino: ino}, nil
}

type vn struct {
	fs  *ufs.FS
	ino ufs.Ino
}

func (v *vn) child(ino ufs.Ino) vnode.Vnode { return &vn{fs: v.fs, ino: ino} }

func (v *vn) Handle() string { return strconv.FormatUint(uint64(v.ino), 10) }

func (v *vn) Lookup(name string) (vnode.Vnode, error) {
	ino, err := v.fs.Lookup(v.ino, name)
	if err != nil {
		return nil, mapErr(err)
	}
	return v.child(ino), nil
}

func (v *vn) Create(name string, excl bool) (vnode.Vnode, error) {
	ino, err := v.fs.Create(v.ino, name)
	if err != nil {
		if errors.Is(err, ufs.ErrExist) && !excl {
			return v.Lookup(name)
		}
		return nil, mapErr(err)
	}
	return v.child(ino), nil
}

func (v *vn) Mkdir(name string) (vnode.Vnode, error) {
	ino, err := v.fs.Mkdir(v.ino, name)
	if err != nil {
		return nil, mapErr(err)
	}
	return v.child(ino), nil
}

func (v *vn) Symlink(name, target string) error {
	_, err := v.fs.Symlink(v.ino, name, target)
	return mapErr(err)
}

func (v *vn) Readlink() (string, error) {
	s, err := v.fs.Readlink(v.ino)
	return s, mapErr(err)
}

// Open and Close are accepted and ignored: plain UFS keeps no per-open
// state the upper layers care about.
func (v *vn) Open(vnode.OpenFlags) error  { return nil }
func (v *vn) Close(vnode.OpenFlags) error { return nil }

func (v *vn) ReadAt(p []byte, off int64) (int, error) {
	n, err := v.fs.ReadAt(v.ino, p, off)
	if err == io.EOF {
		return n, io.EOF
	}
	return n, mapErr(err)
}

func (v *vn) WriteAt(p []byte, off int64) (int, error) {
	n, err := v.fs.WriteAt(v.ino, p, off)
	return n, mapErr(err)
}

func (v *vn) Truncate(size uint64) error { return mapErr(v.fs.Truncate(v.ino, size)) }
func (v *vn) Fsync() error               { return mapErr(v.fs.Sync()) }

func (v *vn) Getattr() (vnode.Attr, error) {
	st, err := v.fs.Stat(v.ino)
	if err != nil {
		return vnode.Attr{}, mapErr(err)
	}
	return vnode.Attr{
		Type:   mapType(st.Type),
		Mode:   st.Mode,
		Nlink:  uint32(st.Nlink),
		Size:   st.Size,
		Mtime:  st.Mtime,
		Ctime:  st.Ctime,
		FileID: strconv.FormatUint(uint64(st.Ino), 10),
	}, nil
}

func (v *vn) Setattr(sa vnode.SetAttr) error {
	if sa.Mode != nil {
		if err := v.fs.SetMode(v.ino, *sa.Mode); err != nil {
			return mapErr(err)
		}
	}
	if sa.Size != nil {
		if err := v.fs.Truncate(v.ino, *sa.Size); err != nil {
			return mapErr(err)
		}
	}
	return nil
}

// Access always succeeds: permission enforcement is out of scope for the
// reproduction (the paper defers authentication to a future layer, §1).
func (v *vn) Access(uint16) error { return nil }

func (v *vn) Remove(name string) error { return mapErr(v.fs.Remove(v.ino, name)) }
func (v *vn) Rmdir(name string) error  { return mapErr(v.fs.Rmdir(v.ino, name)) }

func (v *vn) Link(name string, target vnode.Vnode) error {
	t, ok := target.(*vn)
	if !ok || t.fs != v.fs {
		return vnode.EXDEV
	}
	return mapErr(v.fs.Link(v.ino, name, t.ino))
}

func (v *vn) Rename(oldName string, dstDir vnode.Vnode, newName string) error {
	d, ok := dstDir.(*vn)
	if !ok || d.fs != v.fs {
		return vnode.EXDEV
	}
	return mapErr(v.fs.Rename(v.ino, oldName, d.ino, newName))
}

func (v *vn) Readdir() ([]vnode.Dirent, error) {
	ents, err := v.fs.Readdir(v.ino)
	if err != nil {
		return nil, mapErr(err)
	}
	out := make([]vnode.Dirent, 0, len(ents))
	for _, e := range ents {
		st, err := v.fs.Stat(e.Ino)
		if err != nil {
			return nil, mapErr(err)
		}
		out = append(out, vnode.Dirent{
			Name:   e.Name,
			FileID: strconv.FormatUint(uint64(e.Ino), 10),
			Type:   mapType(st.Type),
		})
	}
	return out, nil
}

func mapType(t ufs.FileType) vnode.VType {
	switch t {
	case ufs.TypeFile:
		return vnode.VReg
	case ufs.TypeDir:
		return vnode.VDir
	case ufs.TypeSymlink:
		return vnode.VLnk
	default:
		return vnode.VNon
	}
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ufs.ErrNotExist):
		return vnode.ENOENT
	case errors.Is(err, ufs.ErrExist):
		return vnode.EEXIST
	case errors.Is(err, ufs.ErrNotDir):
		return vnode.ENOTDIR
	case errors.Is(err, ufs.ErrIsDir):
		return vnode.EISDIR
	case errors.Is(err, ufs.ErrNotEmpty):
		return vnode.ENOTEMPTY
	case errors.Is(err, ufs.ErrNameTooLong):
		return vnode.ENAMETOOLONG
	case errors.Is(err, ufs.ErrInvalidName), errors.Is(err, ufs.ErrInvalidWhere):
		return vnode.EINVAL
	case errors.Is(err, ufs.ErrNoSpace), errors.Is(err, ufs.ErrNoInodes), errors.Is(err, ufs.ErrFileTooBig):
		return vnode.ENOSPC
	case errors.Is(err, ufs.ErrBadInode):
		return vnode.ESTALE
	case errors.Is(err, ufs.ErrLinkedDir), errors.Is(err, ufs.ErrDirLoop):
		return vnode.EPERM
	case errors.Is(err, ufs.ErrNotSymlink):
		return vnode.EINVAL
	default:
		// Keep the cause in the chain (not just its text): an injected
		// transient disk error must stay errors.As-reachable so the retry
		// machinery can classify a flaky platter like a flaky link.
		return fmt.Errorf("%w: %w", vnode.EIO, err)
	}
}
