package ufsvn

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/retry"
	"repro/internal/ufs"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

func newVFS(t *testing.T) *VFS {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(2048), 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(fs)
}

func TestConformance(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: ufs.MaxNameLen},
		func(t *testing.T) vnode.VFS { return newVFS(t) })
}

func TestResolveHandle(t *testing.T) {
	fs := newVFS(t)
	root, _ := fs.Root()
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Resolve(f.Handle())
	if err != nil {
		t.Fatal(err)
	}
	if got.Handle() != f.Handle() {
		t.Fatalf("resolved %q, want %q", got.Handle(), f.Handle())
	}
	// Stale handle after remove.
	if err := root.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(f.Handle()); vnode.AsErrno(err) != vnode.ESTALE {
		t.Fatalf("stale resolve: %v", err)
	}
	if _, err := fs.Resolve("not-a-number"); vnode.AsErrno(err) != vnode.ESTALE {
		t.Fatalf("garbage resolve: %v", err)
	}
}

func TestErrorMapping(t *testing.T) {
	fs := newVFS(t)
	root, _ := fs.Root()
	d, _ := root.Mkdir("d")
	if err := root.Link("dl", d); vnode.AsErrno(err) != vnode.EPERM {
		t.Fatalf("link to dir: %v", err)
	}
	f, _ := root.Create("f", true)
	if _, err := f.Readlink(); vnode.AsErrno(err) != vnode.EINVAL {
		t.Fatalf("readlink of file: %v", err)
	}
}

func TestCrossFSOpsRejected(t *testing.T) {
	a := newVFS(t)
	b := newVFS(t)
	ra, _ := a.Root()
	rb, _ := b.Root()
	f, _ := ra.Create("f", true)
	if err := rb.Link("x", f); vnode.AsErrno(err) != vnode.EXDEV {
		t.Fatalf("cross-fs link: %v", err)
	}
	if err := ra.Rename("f", rb, "g"); vnode.AsErrno(err) != vnode.EXDEV {
		t.Fatalf("cross-fs rename: %v", err)
	}
}

// TestTransientDiskFaultStaysTransient injects a one-shot transient read
// error under a vnode operation and checks the classification survives the
// ufs -> ufsvn error mapping: the retry machinery must see a flaky platter
// exactly like a flaky link.
func TestTransientDiskFaultStaysTransient(t *testing.T) {
	dev := disk.New(2048)
	fs, err := ufs.Mkfs(dev, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	vfs := New(fs)
	root, _ := vfs.Root()
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Evict cached blocks so the next read really hits the platter.
	fs2, err := ufs.Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	vfs2 := New(fs2)
	root2, _ := vfs2.Root()

	f2, err := root2.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	// Data blocks are not touched by mount-time recovery, so this read
	// must hit the platter and trip the scripted fault.
	dev.ScriptFault(disk.FaultReadError)
	_, readErr := vnode.ReadFile(f2)
	if readErr == nil {
		t.Fatal("scripted read fault produced no error")
	}
	if !errors.Is(readErr, vnode.EIO) {
		t.Fatalf("fault not mapped to EIO: %v", readErr)
	}
	if !retry.Transient(readErr) {
		t.Fatalf("injected disk fault lost its transience through ufsvn: %v", readErr)
	}
	// One-shot: the retry succeeds.
	if data, err := vnode.ReadFile(f2); err != nil || string(data) != "data" {
		t.Fatalf("retry after transient fault: %q %v", data, err)
	}
}
