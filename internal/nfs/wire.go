// Package nfs implements the stateless NFS-like transport layer that Ficus
// uses between remotely located layers (paper §2.2): "NFS is essentially a
// host-to-host transport service with a vnode interface."
//
// The reproduction deliberately preserves the quirks the paper fights:
//
//   - The protocol has no open or close operations.  A client's Open/Close
//     return success without forwarding anything, so "a layer intending to
//     receive an open will never get it if NFS is in between."  The Ficus
//     logical layer works around this by encoding open/close requests as
//     specially formatted names passed through Lookup (§2.3); the NFS layer
//     forwards those strings "without interpretation or interference."
//
//   - The client caches attributes and name lookups.  The caches are on by
//     default and can serve stale results, reproducing the "unexpected
//     behavior for layers which are not able to adopt the assumptions
//     inherent in the NFS cache management policies."
//
//   - The server is stateless: every request carries a file handle that is
//     re-resolved per operation, and handles can go stale (ESTALE).
package nfs

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/vnode"
)

// Op is a wire operation code.  Note the absence of open and close.
type Op int

// Wire operations.
const (
	OpRoot Op = iota
	OpLookup
	OpCreate
	OpMkdir
	OpSymlink
	OpReadlink
	OpRead
	OpWrite
	OpTruncate
	OpFsync
	OpGetattr
	OpSetattr
	OpAccess
	OpRemove
	OpRmdir
	OpLink
	OpRename
	OpReaddir
)

var opNames = map[Op]string{
	OpRoot: "root", OpLookup: "lookup", OpCreate: "create", OpMkdir: "mkdir",
	OpSymlink: "symlink", OpReadlink: "readlink", OpRead: "read",
	OpWrite: "write", OpTruncate: "truncate", OpFsync: "fsync",
	OpGetattr: "getattr", OpSetattr: "setattr", OpAccess: "access",
	OpRemove: "remove", OpRmdir: "rmdir", OpLink: "link",
	OpRename: "rename", OpReaddir: "readdir",
}

// String names the op.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Request is one wire request.  Fields are used according to Op.
type Request struct {
	Op      Op
	Handle  string // subject vnode
	Name    string // Lookup/Create/Mkdir/Symlink/Remove/Rmdir/Link/Rename source name
	Name2   string // Rename destination name
	Handle2 string // Link target / Rename destination directory
	Target  string // Symlink target
	Excl    bool   // Create exclusivity
	Off     int64  // Read/Write offset
	Len     int    // Read length
	Data    []byte // Write payload
	Size    uint64 // Truncate size
	HasMode bool   // Setattr
	Mode    uint16 // Setattr/Access
	HasSize bool   // Setattr
}

// Response is one wire response.
type Response struct {
	Errno  int // vnode.Errno code; 0 means success
	Handle string
	Attr   vnode.Attr
	N      int
	EOF    bool
	Data   []byte
	Str    string
	Ents   []vnode.Dirent
}

// Service is the simnet RPC service name NFS traffic travels on.
const Service = "nfs"

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(p []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(p)).Decode(v)
}

// errnoOf converts a response code back into a Go error (nil on success).
func errnoOf(code int) error {
	if code == 0 {
		return nil
	}
	return vnode.ErrnoFromCode(code)
}

// respErr builds an error response from any error, collapsing it to the
// canonical vocabulary first.  io.EOF on reads is carried in Response.EOF,
// not here.
func respErr(err error) Response {
	return Response{Errno: vnode.AsErrno(err).Code()}
}
