package nfs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

// rig wires client -> simnet -> server -> ufs.
type rig struct {
	net    *simnet.Network
	server *ufsvn.VFS
	client *Client
	hook   *vnode.HookVFS // interposed below the server, sees forwarded ops
}

func newRig(t testing.TB, copts *ClientOptions) *rig {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(4096), 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := ufsvn.New(fs)
	hook := vnode.NewHook(base, nil)
	net := simnet.New(1)
	srvHost := net.Host("server")
	Serve(srvHost, hook, base) // hook for the vnode path, base for handle resolution
	cliHost := net.Host("client")
	return &rig{
		net:    net,
		server: base,
		client: Dial(cliHost, "server", copts),
		hook:   hook,
	}
}

// TestConformance runs the shared vnode suite across the wire.  Caches are
// disabled here: with them on, NFS intentionally violates strict coherence
// (that is the point of the paper's §2.2 complaints), which the suite's
// single-client workload would not notice anyway — but disabling makes the
// pass unambiguous.
func TestConformance(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: ufs.MaxNameLen},
		func(t *testing.T) vnode.VFS {
			return newRig(t, &ClientOptions{DisableCaches: true}).client
		})
}

func TestConformanceWithCaches(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: ufs.MaxNameLen},
		func(t *testing.T) vnode.VFS { return newRig(t, nil).client })
}

// TestOpenCloseNeverReachServer reproduces the paper's central NFS
// complaint (§2.2): "the vnode services open and close are not supported by
// the NFS definition, and so are ignored: a layer intending to receive an
// open will never get it if NFS is in between."
func TestOpenCloseNeverReachServer(t *testing.T) {
	r := newRig(t, nil)
	root, err := r.client.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	r2 := newRig(t, nil)
	_ = r2
	before := r.hook.Ops()
	if err := f.Open(vnode.OpenRead); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(vnode.OpenRead); err != nil {
		t.Fatal(err)
	}
	if got := r.hook.Ops(); got != before {
		t.Fatalf("open/close leaked to the server: %d extra ops %v", got-before, seen)
	}
}

// TestAttributeCacheServesStale reproduces the "not fully controllable"
// cache behaviour: after a server-side change, a client with a warm
// attribute cache keeps reporting the old size until the entry ages out.
func TestAttributeCacheServesStale(t *testing.T) {
	r := newRig(t, &ClientOptions{AttrTTLOps: 1000})
	root, _ := r.client.Root()
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("12345"), 0); err != nil {
		t.Fatal(err)
	}
	a, err := f.Getattr()
	if err != nil || a.Size != 5 {
		t.Fatalf("initial attr: %+v, %v", a, err)
	}
	// Server-side change the client doesn't see.
	srvRoot, _ := r.server.Root()
	sf, err := srvRoot.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Truncate(0); err != nil {
		t.Fatal(err)
	}
	a, err = f.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 5 {
		t.Fatalf("expected stale size 5 from cache, got %d", a.Size)
	}
	// Flushing reveals the truth.
	r.client.FlushCaches()
	a, err = f.Getattr()
	if err != nil || a.Size != 0 {
		t.Fatalf("after flush: %+v, %v", a, err)
	}
}

func TestAttrCacheExpiryByOps(t *testing.T) {
	r := newRig(t, &ClientOptions{AttrTTLOps: 3})
	root, _ := r.client.Root()
	f, _ := root.Create("f", true)
	f.WriteAt([]byte("12345"), 0)
	if a, _ := f.Getattr(); a.Size != 5 {
		t.Fatalf("size %d", a.Size)
	}
	srvRoot, _ := r.server.Root()
	sf, _ := srvRoot.Lookup("f")
	sf.Truncate(0)
	// Burn through the TTL with unrelated ops.
	for i := 0; i < 5; i++ {
		root.Readdir()
	}
	if a, _ := f.Getattr(); a.Size != 0 {
		t.Fatalf("cache did not expire: size %d", a.Size)
	}
}

// TestLookupCacheServesStaleName shows the DNLC-style client cache
// resolving a name that no longer exists server-side.
func TestLookupCacheServesStaleName(t *testing.T) {
	r := newRig(t, &ClientOptions{AttrTTLOps: 1000})
	root, _ := r.client.Root()
	if _, err := root.Create("f", true); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("f"); err != nil {
		t.Fatal(err)
	}
	// Remove server-side, bypassing this client.
	srvRoot, _ := r.server.Root()
	if err := srvRoot.Remove("f"); err != nil {
		t.Fatal(err)
	}
	// The stale cache entry still resolves the name.
	v, err := root.Lookup("f")
	if err != nil {
		t.Fatalf("expected stale hit, got %v", err)
	}
	// Getattr is served from the (equally stale) attribute cache...
	if _, err := v.Getattr(); err != nil {
		t.Fatalf("cached getattr: %v", err)
	}
	// ... but an operation that must hit the wire reveals the staleness.
	if _, err := v.WriteAt([]byte("x"), 0); vnode.AsErrno(err) != vnode.ESTALE {
		t.Fatalf("stale handle use: %v", err)
	}
}

func TestStaleHandle(t *testing.T) {
	r := newRig(t, &ClientOptions{DisableCaches: true})
	root, _ := r.client.Root()
	f, _ := root.Create("f", true)
	if err := root.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Getattr(); vnode.AsErrno(err) != vnode.ESTALE {
		t.Fatalf("err = %v, want ESTALE", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); vnode.AsErrno(err) != vnode.ESTALE {
		t.Fatalf("write: %v, want ESTALE", err)
	}
}

func TestPartitionMapsToUnavailable(t *testing.T) {
	r := newRig(t, &ClientOptions{DisableCaches: true})
	root, err := r.client.Root()
	if err != nil {
		t.Fatal(err)
	}
	r.net.Partition([]simnet.Addr{"client"}, []simnet.Addr{"server"})
	if _, err := root.Readdir(); vnode.AsErrno(err) != vnode.EUNAVAIL {
		t.Fatalf("err = %v, want EUNAVAIL", err)
	}
	r.net.Heal()
	if _, err := root.Readdir(); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestLookupStringsPassUninterpreted verifies the property the Ficus
// open/close encoding depends on (§2.3): the NFS layer forwards arbitrary
// name strings without interpretation.
func TestLookupStringsPassUninterpreted(t *testing.T) {
	r := newRig(t, nil)
	var lastLookup string
	hookFS := vnode.NewHook(r.server, nil)
	_ = hookFS
	// Re-serve with a recording hook below the server.
	weird := ".f:open:rw:00000001.00000002.0000000100000000000000000001"
	root, _ := r.client.Root()
	_, err := root.Lookup(weird)
	if vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("weird name lookup: %v (want ENOENT from the substrate, proving it arrived)", err)
	}
	_ = lastLookup
}

func TestCachedLookupSkipsWire(t *testing.T) {
	r := newRig(t, nil)
	root, _ := r.client.Root()
	if _, err := root.Create("f", true); err != nil {
		t.Fatal(err)
	}
	r.net.ResetStats()
	if _, err := root.Lookup("f"); err != nil {
		t.Fatal(err)
	}
	afterFirst := r.net.Stats().RPCs
	if _, err := root.Lookup("f"); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().RPCs; got != afterFirst {
		t.Fatalf("second lookup went to the wire: %d -> %d RPCs", afterFirst, got)
	}
}

func TestWireOpString(t *testing.T) {
	if OpLookup.String() != "lookup" || Op(99).String() == "" {
		t.Fatal("op names broken")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	r := newRig(t, nil)
	respBytes, err := r.net.Host("client").Call("server", Service, []byte("not gob"))
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := decode(respBytes, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errno == 0 {
		t.Fatal("garbage request succeeded")
	}
}
