package nfs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

// TestConformanceOverPhysicalLayer runs the shared vnode suite through the
// exact remote stack of paper Figure 2: NFS client -> NFS server -> Ficus
// physical layer -> UFS.  The physical layer's fid-path handles are
// re-resolved statelessly per request, so this also exercises
// physical.Resolve under every operation.
func TestConformanceOverPhysicalLayer(t *testing.T) {
	vol := ids.VolumeHandle{Allocator: 5, Volume: 5}
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: physical.SubstrateMaxName - 1},
		func(t *testing.T) vnode.VFS {
			fs, err := ufs.Mkfs(disk.New(8192), 2048, nil)
			if err != nil {
				t.Fatal(err)
			}
			phys, err := physical.Format(ufsvn.New(fs), vol, 1)
			if err != nil {
				t.Fatal(err)
			}
			net := simnet.New(1)
			Serve(net.Host("srv"), phys, phys)
			return Dial(net.Host("cli"), "srv", &ClientOptions{DisableCaches: true})
		})
}
