package nfs

import "testing"

func BenchmarkLookupOverWire(b *testing.B) {
	root, err := newRig(b, &ClientOptions{DisableCaches: true}).client.Root()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := root.Create("f", true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Lookup("f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupCachedClientSide(b *testing.B) {
	root, err := newRig(b, &ClientOptions{AttrTTLOps: 1 << 40}).client.Root()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := root.Create("f", true); err != nil {
		b.Fatal(err)
	}
	if _, err := root.Lookup("f"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Lookup("f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite4KOverWire(b *testing.B) {
	root, err := newRig(b, &ClientOptions{DisableCaches: true}).client.Root()
	if err != nil {
		b.Fatal(err)
	}
	f, err := root.Create("f", true)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
