package nfs

import (
	"io"

	"repro/internal/simnet"
	"repro/internal/vnode"
)

// Resolver recovers a vnode from a handle with no per-client state — the
// property that makes the server stateless.  The UFS adapter and the Ficus
// physical layer both implement it.
type Resolver interface {
	Resolve(handle string) (vnode.Vnode, error)
}

// Server exports a vnode.VFS over a simnet host.  Like the SunOS NFS
// server, it keeps no record of which clients exist or which files they
// have open; every request is self-contained.
type Server struct {
	fs  vnode.VFS
	res Resolver
}

// Serve registers a server for fs on host's default Service port.  res must
// be able to resolve every handle fs's vnodes produce.
func Serve(host *simnet.Host, fs vnode.VFS, res Resolver) *Server {
	return ServeOn(host, Service, fs, res)
}

// ServeOn registers a server on a named service port, letting one host
// export several file systems (one per volume replica it stores).
func ServeOn(host *simnet.Host, service string, fs vnode.VFS, res Resolver) *Server {
	s := &Server{fs: fs, res: res}
	host.HandleRPC(service, s.handle)
	return s
}

func (s *Server) handle(reqBytes []byte) ([]byte, error) {
	var req Request
	if err := decode(reqBytes, &req); err != nil {
		return encode(respErr(vnode.EINVAL))
	}
	resp := s.dispatch(&req)
	return encode(resp)
}

func (s *Server) subject(req *Request) (vnode.Vnode, *Response) {
	v, err := s.res.Resolve(req.Handle)
	if err != nil {
		r := respErr(vnode.ESTALE)
		return nil, &r
	}
	return v, nil
}

func (s *Server) dispatch(req *Request) Response {
	if req.Op == OpRoot {
		root, err := s.fs.Root()
		if err != nil {
			return respErr(err)
		}
		a, err := root.Getattr()
		if err != nil {
			return respErr(err)
		}
		return Response{Handle: root.Handle(), Attr: a}
	}
	v, errResp := s.subject(req)
	if errResp != nil {
		return *errResp
	}
	switch req.Op {
	case OpLookup:
		c, err := v.Lookup(req.Name)
		if err != nil {
			return respErr(err)
		}
		a, err := c.Getattr()
		if err != nil {
			return respErr(err)
		}
		return Response{Handle: c.Handle(), Attr: a}
	case OpCreate:
		c, err := v.Create(req.Name, req.Excl)
		if err != nil {
			return respErr(err)
		}
		a, err := c.Getattr()
		if err != nil {
			return respErr(err)
		}
		return Response{Handle: c.Handle(), Attr: a}
	case OpMkdir:
		c, err := v.Mkdir(req.Name)
		if err != nil {
			return respErr(err)
		}
		a, err := c.Getattr()
		if err != nil {
			return respErr(err)
		}
		return Response{Handle: c.Handle(), Attr: a}
	case OpSymlink:
		return respErr(v.Symlink(req.Name, req.Target))
	case OpReadlink:
		t, err := v.Readlink()
		if err != nil {
			return respErr(err)
		}
		return Response{Str: t}
	case OpRead:
		p := make([]byte, req.Len)
		n, err := v.ReadAt(p, req.Off)
		if err == io.EOF {
			return Response{N: n, EOF: true, Data: p[:n]}
		}
		if err != nil {
			return respErr(err)
		}
		return Response{N: n, Data: p[:n]}
	case OpWrite:
		n, err := v.WriteAt(req.Data, req.Off)
		if err != nil {
			return respErr(err)
		}
		return Response{N: n}
	case OpTruncate:
		return respErr(v.Truncate(req.Size))
	case OpFsync:
		return respErr(v.Fsync())
	case OpGetattr:
		a, err := v.Getattr()
		if err != nil {
			return respErr(err)
		}
		return Response{Attr: a}
	case OpSetattr:
		var sa vnode.SetAttr
		if req.HasMode {
			m := req.Mode
			sa.Mode = &m
		}
		if req.HasSize {
			z := req.Size
			sa.Size = &z
		}
		return respErr(v.Setattr(sa))
	case OpAccess:
		return respErr(v.Access(req.Mode))
	case OpRemove:
		return respErr(v.Remove(req.Name))
	case OpRmdir:
		return respErr(v.Rmdir(req.Name))
	case OpLink:
		target, err := s.res.Resolve(req.Handle2)
		if err != nil {
			return respErr(vnode.ESTALE)
		}
		return respErr(v.Link(req.Name, target))
	case OpRename:
		dst, err := s.res.Resolve(req.Handle2)
		if err != nil {
			return respErr(vnode.ESTALE)
		}
		return respErr(v.Rename(req.Name, dst, req.Name2))
	case OpReaddir:
		ents, err := v.Readdir()
		if err != nil {
			return respErr(err)
		}
		return Response{Ents: ents}
	default:
		return respErr(vnode.ENOTSUP)
	}
}
