package nfs

import (
	"container/list"
	"errors"
	"io"
	"sync"

	"repro/internal/simnet"
	"repro/internal/vnode"
)

// ClientOptions tunes the client-side caches.  The defaults mirror SunOS:
// caching on, moderately sized, expiry by age.  The paper complains that
// these caches are "not fully controllable (e.g., there is no user-level
// way to disable all caching)"; as implementors we grant ourselves the
// switch the 1990 user lacked, because experiment ablations need it.
type ClientOptions struct {
	// DisableCaches turns the attribute and lookup caches off entirely.
	DisableCaches bool
	// AttrTTLOps is how many client operations an attribute cache entry
	// stays fresh for (default 32).  NFS used wall-clock seconds; an
	// operation count is the deterministic equivalent.
	AttrTTLOps uint64
	// CacheEntries bounds each cache (default 512).
	CacheEntries int
}

func (o *ClientOptions) withDefaults() ClientOptions {
	v := ClientOptions{AttrTTLOps: 32, CacheEntries: 512}
	if o == nil {
		return v
	}
	if o.AttrTTLOps > 0 {
		v.AttrTTLOps = o.AttrTTLOps
	}
	if o.CacheEntries > 0 {
		v.CacheEntries = o.CacheEntries
	}
	v.DisableCaches = o.DisableCaches
	return v
}

// Client is a vnode.VFS whose operations travel as RPCs to an NFS server.
// From the stack's point of view it is just another layer (paper Fig. 2).
type Client struct {
	host    *simnet.Host
	server  simnet.Addr
	service string
	opts    ClientOptions

	mu    sync.Mutex
	clock uint64    // client operation counter, drives cache expiry
	attrs *lruCache // handle -> attrEntry
	names *lruCache // handle + "/" + name -> lookupEntry
}

type attrEntry struct {
	attr  vnode.Attr
	stamp uint64
}

type lookupEntry struct {
	handle string
	attr   vnode.Attr
	stamp  uint64
}

// Dial creates a client on host talking to the default service at addr.
func Dial(host *simnet.Host, addr simnet.Addr, opts *ClientOptions) *Client {
	return DialService(host, addr, Service, opts)
}

// DialService creates a client for a named service port at addr.
func DialService(host *simnet.Host, addr simnet.Addr, service string, opts *ClientOptions) *Client {
	o := opts.withDefaults()
	return &Client{
		host:    host,
		server:  addr,
		service: service,
		opts:    o,
		attrs:   newLRUCache(o.CacheEntries),
		names:   newLRUCache(o.CacheEntries),
	}
}

// FlushCaches drops all cached attributes and lookups.
func (c *Client) FlushCaches() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attrs.flush()
	c.names.flush()
}

func (c *Client) tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	return c.clock
}

func (c *Client) fresh(stamp uint64) bool {
	return c.clock-stamp < c.opts.AttrTTLOps
}

// call performs one RPC, mapping transport failures to EUNAVAIL so the
// logical layer can treat "server partitioned away" as "replica
// inaccessible" and fail over.
func (c *Client) call(req *Request) (*Response, error) {
	reqBytes, err := encode(req)
	if err != nil {
		return nil, vnode.EINVAL
	}
	respBytes, err := c.host.Call(c.server, c.service, reqBytes)
	if err != nil {
		if errors.Is(err, simnet.ErrUnreachable) || errors.Is(err, simnet.ErrNoHost) {
			return nil, vnode.EUNAVAIL
		}
		return nil, vnode.EIO
	}
	var resp Response
	if err := decode(respBytes, &resp); err != nil {
		return nil, vnode.EIO
	}
	if resp.Errno != 0 {
		return nil, errnoOf(resp.Errno)
	}
	return &resp, nil
}

// Root fetches the server's root vnode.
func (c *Client) Root() (vnode.Vnode, error) {
	c.tick()
	resp, err := c.call(&Request{Op: OpRoot})
	if err != nil {
		return nil, err
	}
	c.cacheAttr(resp.Handle, resp.Attr)
	return &cvnode{c: c, handle: resp.Handle}, nil
}

// Sync is a no-op: the server's substrate is write-through and the client
// caches hold no dirty data.
func (c *Client) Sync() error { return nil }

// Server returns the server address (used in graft-point entries, §4.3).
func (c *Client) Server() simnet.Addr { return c.server }

func (c *Client) cacheAttr(handle string, a vnode.Attr) {
	if c.opts.DisableCaches {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attrs.put(handle, &attrEntry{attr: a, stamp: c.clock})
}

func (c *Client) cachedAttr(handle string) (vnode.Attr, bool) {
	if c.opts.DisableCaches {
		return vnode.Attr{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.attrs.get(handle); ok {
		ae := e.(*attrEntry)
		if c.fresh(ae.stamp) {
			return ae.attr, true
		}
		c.attrs.drop(handle)
	}
	return vnode.Attr{}, false
}

func (c *Client) invalidateAttr(handle string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attrs.drop(handle)
}

func (c *Client) cacheLookup(dir, name, handle string, a vnode.Attr) {
	if c.opts.DisableCaches {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names.put(dir+"/"+name, &lookupEntry{handle: handle, attr: a, stamp: c.clock})
}

func (c *Client) cachedLookup(dir, name string) (string, bool) {
	if c.opts.DisableCaches {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.names.get(dir + "/" + name); ok {
		le := e.(*lookupEntry)
		if c.fresh(le.stamp) {
			return le.handle, true
		}
		c.names.drop(dir + "/" + name)
	}
	return "", false
}

func (c *Client) invalidateLookup(dir, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names.drop(dir + "/" + name)
}

// cvnode is a client-side vnode: a handle plus the client it belongs to.
type cvnode struct {
	c      *Client
	handle string
}

func (v *cvnode) Handle() string { return v.handle }

func (v *cvnode) Lookup(name string) (vnode.Vnode, error) {
	v.c.tick()
	if h, ok := v.c.cachedLookup(v.handle, name); ok {
		return &cvnode{c: v.c, handle: h}, nil
	}
	resp, err := v.c.call(&Request{Op: OpLookup, Handle: v.handle, Name: name})
	if err != nil {
		return nil, err
	}
	v.c.cacheLookup(v.handle, name, resp.Handle, resp.Attr)
	v.c.cacheAttr(resp.Handle, resp.Attr)
	return &cvnode{c: v.c, handle: resp.Handle}, nil
}

func (v *cvnode) Create(name string, excl bool) (vnode.Vnode, error) {
	v.c.tick()
	resp, err := v.c.call(&Request{Op: OpCreate, Handle: v.handle, Name: name, Excl: excl})
	if err != nil {
		return nil, err
	}
	v.c.cacheLookup(v.handle, name, resp.Handle, resp.Attr)
	v.c.cacheAttr(resp.Handle, resp.Attr)
	v.c.invalidateAttr(v.handle) // directory changed
	return &cvnode{c: v.c, handle: resp.Handle}, nil
}

func (v *cvnode) Mkdir(name string) (vnode.Vnode, error) {
	v.c.tick()
	resp, err := v.c.call(&Request{Op: OpMkdir, Handle: v.handle, Name: name})
	if err != nil {
		return nil, err
	}
	v.c.cacheLookup(v.handle, name, resp.Handle, resp.Attr)
	v.c.cacheAttr(resp.Handle, resp.Attr)
	v.c.invalidateAttr(v.handle)
	return &cvnode{c: v.c, handle: resp.Handle}, nil
}

func (v *cvnode) Symlink(name, target string) error {
	v.c.tick()
	_, err := v.c.call(&Request{Op: OpSymlink, Handle: v.handle, Name: name, Target: target})
	v.c.invalidateAttr(v.handle)
	return err
}

func (v *cvnode) Readlink() (string, error) {
	v.c.tick()
	resp, err := v.c.call(&Request{Op: OpReadlink, Handle: v.handle})
	if err != nil {
		return "", err
	}
	return resp.Str, nil
}

// Open is swallowed: the NFS protocol has no such operation (paper §2.2).
// The call succeeds locally and the server never hears about it.
func (v *cvnode) Open(vnode.OpenFlags) error { return nil }

// Close is likewise swallowed.
func (v *cvnode) Close(vnode.OpenFlags) error { return nil }

func (v *cvnode) ReadAt(p []byte, off int64) (int, error) {
	v.c.tick()
	resp, err := v.c.call(&Request{Op: OpRead, Handle: v.handle, Off: off, Len: len(p)})
	if err != nil {
		return 0, err
	}
	copy(p, resp.Data)
	if resp.EOF {
		return resp.N, io.EOF
	}
	return resp.N, nil
}

func (v *cvnode) WriteAt(p []byte, off int64) (int, error) {
	v.c.tick()
	resp, err := v.c.call(&Request{Op: OpWrite, Handle: v.handle, Off: off, Data: p})
	if err != nil {
		return 0, err
	}
	v.c.invalidateAttr(v.handle)
	return resp.N, nil
}

func (v *cvnode) Truncate(size uint64) error {
	v.c.tick()
	_, err := v.c.call(&Request{Op: OpTruncate, Handle: v.handle, Size: size})
	v.c.invalidateAttr(v.handle)
	return err
}

func (v *cvnode) Fsync() error {
	v.c.tick()
	_, err := v.c.call(&Request{Op: OpFsync, Handle: v.handle})
	return err
}

func (v *cvnode) Getattr() (vnode.Attr, error) {
	v.c.tick()
	if a, ok := v.c.cachedAttr(v.handle); ok {
		return a, nil
	}
	resp, err := v.c.call(&Request{Op: OpGetattr, Handle: v.handle})
	if err != nil {
		return vnode.Attr{}, err
	}
	v.c.cacheAttr(v.handle, resp.Attr)
	return resp.Attr, nil
}

func (v *cvnode) Setattr(sa vnode.SetAttr) error {
	v.c.tick()
	req := &Request{Op: OpSetattr, Handle: v.handle}
	if sa.Mode != nil {
		req.HasMode, req.Mode = true, *sa.Mode
	}
	if sa.Size != nil {
		req.HasSize, req.Size = true, *sa.Size
	}
	_, err := v.c.call(req)
	v.c.invalidateAttr(v.handle)
	return err
}

func (v *cvnode) Access(mode uint16) error {
	v.c.tick()
	_, err := v.c.call(&Request{Op: OpAccess, Handle: v.handle, Mode: mode})
	return err
}

func (v *cvnode) Remove(name string) error {
	v.c.tick()
	_, err := v.c.call(&Request{Op: OpRemove, Handle: v.handle, Name: name})
	v.c.invalidateLookup(v.handle, name)
	v.c.invalidateAttr(v.handle)
	return err
}

func (v *cvnode) Rmdir(name string) error {
	v.c.tick()
	_, err := v.c.call(&Request{Op: OpRmdir, Handle: v.handle, Name: name})
	v.c.invalidateLookup(v.handle, name)
	v.c.invalidateAttr(v.handle)
	return err
}

func (v *cvnode) Link(name string, target vnode.Vnode) error {
	v.c.tick()
	t, ok := target.(*cvnode)
	if !ok || t.c != v.c {
		return vnode.EXDEV
	}
	_, err := v.c.call(&Request{Op: OpLink, Handle: v.handle, Name: name, Handle2: t.handle})
	v.c.invalidateAttr(v.handle)
	v.c.invalidateAttr(t.handle)
	return err
}

func (v *cvnode) Rename(oldName string, dstDir vnode.Vnode, newName string) error {
	v.c.tick()
	d, ok := dstDir.(*cvnode)
	if !ok || d.c != v.c {
		return vnode.EXDEV
	}
	_, err := v.c.call(&Request{Op: OpRename, Handle: v.handle, Name: oldName, Handle2: d.handle, Name2: newName})
	v.c.invalidateLookup(v.handle, oldName)
	v.c.invalidateLookup(d.handle, newName)
	v.c.invalidateAttr(v.handle)
	v.c.invalidateAttr(d.handle)
	return err
}

func (v *cvnode) Readdir() ([]vnode.Dirent, error) {
	v.c.tick()
	resp, err := v.c.call(&Request{Op: OpReaddir, Handle: v.handle})
	if err != nil {
		return nil, err
	}
	return resp.Ents, nil
}

// lruCache is a small string-keyed LRU used for both client caches.
type lruCache struct {
	cap   int
	lru   *list.List
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *lruCache) flush() {
	c.lru.Init()
	c.byKey = make(map[string]*list.Element)
}

func (c *lruCache) get(key string) (any, bool) {
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		return e.Value.(*lruEntry).val, true
	}
	return nil, false
}

func (c *lruCache) put(key string, val any) {
	if e, ok := c.byKey[key]; ok {
		e.Value.(*lruEntry).val = val
		c.lru.MoveToFront(e)
		return
	}
	e := c.lru.PushFront(&lruEntry{key: key, val: val})
	c.byKey[key] = e
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.byKey, old.Value.(*lruEntry).key)
	}
}

func (c *lruCache) drop(key string) {
	if e, ok := c.byKey[key]; ok {
		c.lru.Remove(e)
		delete(c.byKey, key)
	}
}
