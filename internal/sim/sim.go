// Package sim is the whole-cluster harness the experiments and examples
// drive: N Ficus hosts on one simulated network, a volume replicated across
// all of them, scriptable partitions, and explicit daemon steps
// (propagation, reconciliation) so every run is deterministic.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

// Config sizes a cluster.
type Config struct {
	Hosts   int
	Seed    int64
	Storage *core.StorageOptions
}

// Cluster is N hosts sharing one replicated volume.
type Cluster struct {
	Net   *simnet.Network
	Hosts []*core.Host
	Vol   ids.VolumeHandle
	Locs  []core.ReplicaLoc
}

// HostName renders host i's network address.
func HostName(i int) simnet.Addr { return simnet.Addr(fmt.Sprintf("h%d", i)) }

// New builds a cluster with the shared volume replicated on every host
// (replica i+1 on host i).
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("sim: need at least one host")
	}
	c := &Cluster{Net: simnet.New(cfg.Seed)}
	for i := 0; i < cfg.Hosts; i++ {
		c.Hosts = append(c.Hosts, core.NewHost(c.Net, HostName(i), ids.AllocatorID(i+1)))
	}
	vol, rid, err := c.Hosts[0].CreateVolume(cfg.Storage)
	if err != nil {
		return nil, err
	}
	c.Vol = vol
	c.Locs = []core.ReplicaLoc{{ID: rid, Addr: HostName(0)}}
	for i := 1; i < cfg.Hosts; i++ {
		newID := ids.ReplicaID(i + 1)
		if err := c.Hosts[i].AddReplica(vol, newID, c.Locs[0], cfg.Storage); err != nil {
			return nil, err
		}
		c.Locs = append(c.Locs, core.ReplicaLoc{ID: newID, Addr: HostName(i)})
	}
	for _, h := range c.Hosts {
		h.SetLocations(vol, c.Locs)
	}
	return c, nil
}

// Mount returns the shared volume's root as seen from host i.
func (c *Cluster) Mount(i int, policy logical.Policy) (vnode.Vnode, error) {
	lay, err := c.Hosts[i].Mount(c.Vol, policy)
	if err != nil {
		return nil, err
	}
	return lay.Root()
}

// Replica returns host i's physical replica of the shared volume.
func (c *Cluster) Replica(i int) *physical.Layer {
	return c.Hosts[i].LocalReplica(c.Vol)
}

// Partition splits the cluster into groups of host indices; unlisted hosts
// are isolated singletons.
func (c *Cluster) Partition(groups ...[]int) {
	addrGroups := make([][]simnet.Addr, len(groups))
	for i, g := range groups {
		for _, idx := range g {
			addrGroups[i] = append(addrGroups[i], HostName(idx))
		}
	}
	c.Net.Partition(addrGroups...)
}

// Heal reconnects everything.
func (c *Cluster) Heal() { c.Net.Heal() }

// PropagateAll runs one propagation-daemon pass on every host.
func (c *Cluster) PropagateAll() (recon.Stats, error) {
	var total recon.Stats
	for _, h := range c.Hosts {
		s, err := h.PropagateOnce()
		total.Add(s)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ScrubAll runs one integrity pass (checksum sweep + quarantine repair) on
// every host.
func (c *Cluster) ScrubAll() (core.ScrubResult, error) {
	var total core.ScrubResult
	for _, h := range c.Hosts {
		s, err := h.ScrubOnce()
		total.Scrub.Add(s.Scrub)
		total.Repair.Add(s.Repair)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReconcileAll runs one reconciliation pass on every host.
func (c *Cluster) ReconcileAll() (recon.Stats, error) {
	var total recon.Stats
	for _, h := range c.Hosts {
		s, err := h.ReconcileOnce()
		total.Add(s)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Settle reconciles repeatedly until a full pass changes nothing, returning
// the number of rounds used (capped at maxRounds).
func (c *Cluster) Settle(maxRounds int) (int, error) {
	for round := 1; round <= maxRounds; round++ {
		s, err := c.ReconcileAll()
		if err != nil {
			return round, err
		}
		if !s.Changed() {
			return round, nil
		}
	}
	return maxRounds, fmt.Errorf("sim: not quiescent after %d rounds", maxRounds)
}

// Conflicts gathers every host's conflict log for the shared volume.
func (c *Cluster) Conflicts() [][]physical.Conflict {
	out := make([][]physical.Conflict, len(c.Hosts))
	for i := range c.Hosts {
		if l := c.Replica(i); l != nil {
			out[i] = l.Conflicts()
		}
	}
	return out
}
