package sim

import (
	"fmt"
	"testing"

	"repro/internal/logical"
	"repro/internal/vnode"
)

func TestClusterLifecycle(t *testing.T) {
	c, err := New(Config{Hosts: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root0, err := c.Mount(0, logical.MostRecent)
	if err != nil {
		t.Fatal(err)
	}
	f, err := root0.Create("shared", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("hello cluster")); err != nil {
		t.Fatal(err)
	}
	// Propagation pushes the bits to the other replicas.
	if _, err := c.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l := c.Replica(i)
		root, _ := l.Root()
		v, err := root.Lookup("shared")
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		data, _ := vnode.ReadFile(v)
		if string(data) != "hello cluster" {
			t.Fatalf("replica %d has %q", i, data)
		}
	}
}

func TestSettleReachesQuiescence(t *testing.T) {
	c, err := New(Config{Hosts: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		root, err := c.Mount(i, logical.FirstAvailable)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := root.Create(fmt.Sprintf("from-%d", i), true); err != nil {
			t.Fatal(err)
		}
	}
	rounds, err := c.Settle(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 || rounds > 10 {
		t.Fatalf("rounds %d", rounds)
	}
	// Everyone sees all four files.
	for i := 0; i < 4; i++ {
		root, _ := c.Mount(i, logical.FirstAvailable)
		ents, err := root.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 4 {
			t.Fatalf("host %d sees %d entries", i, len(ents))
		}
	}
}

func TestPartitionScenario(t *testing.T) {
	c, err := New(Config{Hosts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	root0, _ := c.Mount(0, logical.FirstAvailable)
	if _, err := root0.Create("doc", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Settle(5); err != nil {
		t.Fatal(err)
	}
	c.Partition([]int{0}, []int{1})
	f0, err := root0.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f0.WriteAt([]byte("zero"), 0); err != nil {
		t.Fatal(err)
	}
	root1, _ := c.Mount(1, logical.FirstAvailable)
	f1, err := root1.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.WriteAt([]byte("one!"), 0); err != nil {
		t.Fatal(err)
	}
	c.Heal()
	if _, err := c.Settle(5); err != nil {
		t.Fatal(err)
	}
	confs := c.Conflicts()
	if len(confs[0]) != 1 || len(confs[1]) != 1 {
		t.Fatalf("conflicts %d/%d, want 1/1", len(confs[0]), len(confs[1]))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Hosts: 0}); err == nil {
		t.Fatal("zero hosts accepted")
	}
}

func TestHostName(t *testing.T) {
	if HostName(0) != "h0" || HostName(12) != "h12" {
		t.Fatal("names")
	}
}
