package sim

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/vnode"
)

// TestReconciliationSafetyNetUnderDatagramLoss exercises the division of
// labour the paper sets up in §3.2–§3.3: update notifications are
// best-effort datagrams (here: 70% of them are dropped), so propagation
// alone may miss updates — but the periodic reconciliation protocol
// guarantees convergence regardless.
func TestReconciliationSafetyNetUnderDatagramLoss(t *testing.T) {
	c, err := New(Config{Hosts: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.Net.SetDatagramLossRate(0.7)

	root, err := c.Mount(0, logical.FirstAvailable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f, err := root.Create(fmt.Sprintf("f%02d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Propagation runs, but most notifications never arrived.
	if _, err := c.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	ns := c.Net.Stats()
	if ns.DatagramsDropped == 0 {
		t.Fatal("test needs dropped datagrams to be meaningful")
	}

	// The reconciliation protocol is the safety net: full convergence.
	if _, err := c.Settle(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l := c.Replica(i)
		r, _ := l.Root()
		ents, err := r.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 20 {
			t.Fatalf("replica %d has %d entries, want 20 (notifications lost AND reconciliation failed)", i, len(ents))
		}
		for _, e := range ents {
			v, err := r.Lookup(e.Name)
			if err != nil {
				t.Fatalf("replica %d %s: %v", i, e.Name, err)
			}
			if _, err := vnode.ReadFile(v); err != nil {
				t.Fatalf("replica %d %s data: %v", i, e.Name, err)
			}
		}
	}
}

// TestPropagationAloneConvergesWithoutLoss is the complementary case: with
// a lossless network, notifications + the propagation daemons converge the
// replicas with no reconciliation pass at all.
func TestPropagationAloneConvergesWithoutLoss(t *testing.T) {
	c, err := New(Config{Hosts: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	root, err := c.Mount(0, logical.FirstAvailable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f, err := root.Create(fmt.Sprintf("f%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Two daemon passes: the first pulls the files announced by the dir
	// notifications, the second drains anything announced during the first.
	for pass := 0; pass < 2; pass++ {
		if _, err := c.PropagateAll(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 3; i++ {
		r, _ := c.Replica(i).Root()
		ents, err := r.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 10 {
			t.Fatalf("replica %d: %d entries after propagation alone", i, len(ents))
		}
	}
}

// TestDuplicateNotificationsAreIdempotent forces every update-notification
// datagram to be delivered twice and checks the at-least-once delivery
// story: duplicates coalesce in the new-version cache (one pending entry
// per file, one pull per remote host), and a duplicate that straggles in
// after the version was already installed is stale news — dropped without
// pulling any data.
func TestDuplicateNotificationsAreIdempotent(t *testing.T) {
	c, err := New(Config{Hosts: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c.Net.SetDatagramDuplicateRate(1.0) // every notification arrives twice

	root, err := c.Mount(0, logical.FirstAvailable)
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	a, err := f.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	fid, err := ids.ParseFileID(a.FileID)
	if err != nil {
		t.Fatal(err)
	}

	if c.Net.Stats().DatagramsDuplicated == 0 {
		t.Fatal("test needs duplicated datagrams to be meaningful")
	}
	for i := 1; i < 3; i++ {
		pend := c.Replica(i).PendingVersions()
		seen := make(map[ids.FileID]bool)
		for _, nv := range pend {
			if seen[nv.File] {
				t.Fatalf("host %d: file %v queued twice — duplicates must coalesce", i, nv.File)
			}
			seen[nv.File] = true
		}
		if !seen[fid] {
			t.Fatalf("host %d: no pending entry for %v", i, fid)
		}
	}

	stats, err := c.PropagateAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 2 {
		t.Fatalf("pulled %d file versions, want exactly 2 (one per remote host)", stats.FilesPulled)
	}

	// A duplicate arriving after the pull already installed the version is
	// stale news: the entry drains without another pull.
	c.Replica(1).NoteNewVersion(physical.RootPath(), fid, c.Locs[0].ID)
	stats, err = c.PropagateAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 0 {
		t.Fatalf("stale re-announcement caused %d pulls, want 0", stats.FilesPulled)
	}
	for i := 1; i < 3; i++ {
		for _, nv := range c.Replica(i).PendingVersions() {
			if nv.File == fid {
				t.Fatalf("host %d: stale entry for %v not drained", i, fid)
			}
		}
	}
}
