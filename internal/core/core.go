// Package core assembles a Ficus host: the composition glue that stands in
// for the SunOS kernel configuration of the paper.  A Host owns
//
//   - local volume replicas (each a UFS on its own simulated disk with a
//     physical layer on top),
//   - the NFS servers exporting each replica to remote logical layers
//     (Fig. 2),
//   - the repl server answering reconciliation pulls,
//   - the datagram handler feeding update notifications into the local
//     new-version caches (§3.2),
//   - the volume location table and graft table used by autografting (§4),
//   - the periodic daemons, run here as explicit steps (PropagateOnce,
//     ReconcileOnce) so experiments are deterministic, with optional
//     background goroutines for the daemon-style examples.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/nfs"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/repl"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
)

// NotifyPort is the datagram port update notifications travel on.
const NotifyPort = "ficus-notify"

// Errors.
var (
	// ErrNoLocalReplica reports an operation that needs a locally stored
	// volume replica.
	ErrNoLocalReplica = errors.New("core: no local replica of volume")
	// ErrUnknownVolume reports a volume with no known locations.
	ErrUnknownVolume = errors.New("core: volume locations unknown")
	// ErrHostDown reports an operation on a crashed host (Crash without a
	// matching Restart).
	ErrHostDown = errors.New("core: host is down")
)

// ReplicaLoc places one volume replica at a host.
type ReplicaLoc struct {
	ID   ids.ReplicaID
	Addr simnet.Addr
}

// StorageOptions sizes a local volume replica's disk.
type StorageOptions struct {
	DiskBlocks int // default 16384
	Inodes     int // default 4096
	UFS        *ufs.Options
}

func (o *StorageOptions) withDefaults() StorageOptions {
	v := StorageOptions{DiskBlocks: 16384, Inodes: 4096}
	if o == nil {
		return v
	}
	if o.DiskBlocks > 0 {
		v.DiskBlocks = o.DiskBlocks
	}
	if o.Inodes > 0 {
		v.Inodes = o.Inodes
	}
	v.UFS = o.UFS
	return v
}

// localReplica bundles one locally stored volume replica with its storage.
type localReplica struct {
	layer *physical.Layer
	dev   *disk.Device
	fs    *ufs.FS
	opts  StorageOptions // resolved mount options, kept for Restart
}

// crashedReplica is what survives a host crash: the platter and the mount
// options needed to bring it back.
type crashedReplica struct {
	dev  *disk.Device
	opts StorageOptions
}

// graftEntry is one grafted (mounted) volume in the host's graft table.
type graftEntry struct {
	layer   *logical.Layer
	lastUse uint64
}

// Host is one Ficus machine.
type Host struct {
	addr    simnet.Addr
	net     *simnet.Network
	snHost  *simnet.Host
	replSrv *repl.Server
	alloc   ids.AllocatorID

	mu        sync.Mutex
	replicas  map[ids.VolumeReplicaHandle]*localReplica
	locations map[ids.VolumeHandle]map[ids.ReplicaID]simnet.Addr
	grafts    map[ids.VolumeHandle]*graftEntry
	nextVol   ids.VolumeID
	clock     uint64 // graft-pruning idle clock

	// Crash–restart lifecycle: while down, the host answers nothing and
	// its replicas live only as raw devices in crashed; after Restart each
	// remounted volume owes one anti-entropy rescan (reconciliation covers
	// the notifications that arrived while the host was down).
	down    bool
	crashed map[ids.VolumeReplicaHandle]*crashedReplica
	rescan  map[ids.VolumeHandle]bool

	// Peer health (healthy -> slow -> suspect -> dead with cool-down
	// reprobe), fed by every daemon contact with a remote host: failures,
	// deadline misses, and the virtual latency of each answered exchange.
	// The propagation daemon skips dead peers and sheds load from slow
	// ones; the reconciliation protocol — the safety net — always probes,
	// which is also what revives a recovered peer.
	health     *retry.Tracker
	slowCfg    SlowPeerConfig
	propStats  recon.Stats // accumulated propagation stats (hedges, sheds, budget)
	daemonTick uint64      // one tick per daemon pass (propagate or reconcile)

	// NotificationsSeen counts datagrams accepted into new-version caches;
	// notifyCodecErrs counts datagrams dropped because they failed to decode.
	notificationsSeen uint64
	notifyCodecErrs   uint64

	// Gossip plane (see gossip.go): configuration survives crashes like
	// slowCfg; the seen-rumor cache and counters are in-memory state.
	gossip     GossipConfig
	gossipSeq  uint64 // per-host rumor sequence, stamps originated rumors
	gossipSeen map[rumorKey]struct{}
	gossipFIFO []rumorKey
	gstats     GossipStats

	// Anti-entropy scheduler: per-(volume, peer) reconciliation recency
	// driving ReconcileOnce's visit order and budget (in-memory; a crash
	// resets it and the post-restart rescan covers the gap).
	sched *recon.Scheduler
}

// notifyMsg is the update-notification datagram payload (§2.5).  Src/Seq/
// Hops are the gossip-plane envelope: Src+Seq identify the rumor for
// duplicate suppression (standing in for the (origin, version-vector)
// identity of the announced update) and Hops is the remaining relay budget.
// An untagged message (Src == "") is a legacy flat-multicast notification:
// never suppressed, never relayed.
type notifyMsg struct {
	Vol    ids.VolumeHandle
	Dir    []ids.FileID
	File   ids.FileID
	Origin ids.ReplicaID
	Src    simnet.Addr // originating notifier host; "" = flat multicast
	Seq    uint64      // per-Src rumor sequence number
	Hops   uint8       // remaining relay budget
}

// NewHost attaches a Ficus host to the network.  alloc is the host's
// pre-installed unique allocator id (§4.2: "prior to system installation,
// each Ficus host is issued a unique value as its allocator-id").
func NewHost(net *simnet.Network, addr simnet.Addr, alloc ids.AllocatorID) *Host {
	h := &Host{
		addr:      addr,
		net:       net,
		snHost:    net.Host(addr),
		alloc:     alloc,
		replicas:  make(map[ids.VolumeReplicaHandle]*localReplica),
		locations: make(map[ids.VolumeHandle]map[ids.ReplicaID]simnet.Addr),
		grafts:    make(map[ids.VolumeHandle]*graftEntry),
		crashed:   make(map[ids.VolumeReplicaHandle]*crashedReplica),
		rescan:    make(map[ids.VolumeHandle]bool),
		nextVol:   1,
		health:    retry.NewTracker(3, 4),
		gossipSeen: make(map[rumorKey]struct{}),
		sched:      recon.NewScheduler(),
	}
	h.replSrv = repl.NewServer(h.snHost)
	h.snHost.HandleDatagram(NotifyPort, h.onNotify)
	return h
}

// Addr returns the host's network address.
func (h *Host) Addr() simnet.Addr { return h.addr }

// Allocator returns the host's allocator id.
func (h *Host) Allocator() ids.AllocatorID { return h.alloc }

// SimHost exposes the underlying network endpoint.
func (h *Host) SimHost() *simnet.Host { return h.snHost }

// nfsService names the NFS export of one volume replica.
func nfsService(vr ids.VolumeReplicaHandle) string { return "nfs:" + vr.String() }

// provision creates storage and a physical layer for a new volume replica
// and exports it.
func (h *Host) provision(vol ids.VolumeHandle, rid ids.ReplicaID, opts *StorageOptions) (*localReplica, error) {
	o := opts.withDefaults()
	dev := disk.New(o.DiskBlocks)
	fs, err := ufs.Mkfs(dev, o.Inodes, o.UFS)
	if err != nil {
		return nil, err
	}
	layer, err := physical.Format(ufsvn.New(fs), vol, rid)
	if err != nil {
		return nil, err
	}
	lr := &localReplica{layer: layer, dev: dev, fs: fs, opts: o}
	h.replSrv.Register(layer)
	nfs.ServeOn(h.snHost, nfsService(layer.VolumeReplica()), layer, layer)
	return lr, nil
}

// CreateVolume allocates a fresh volume (named by this host's allocator id)
// and stores its first replica here.  The caller learns the volume handle
// and the replica id; further replicas are added with AddReplica.
func (h *Host) CreateVolume(opts *StorageOptions) (ids.VolumeHandle, ids.ReplicaID, error) {
	h.mu.Lock()
	if h.down {
		h.mu.Unlock()
		return ids.VolumeHandle{}, 0, ErrHostDown
	}
	vol := ids.VolumeHandle{Allocator: h.alloc, Volume: h.nextVol}
	h.nextVol++
	h.mu.Unlock()

	const rid = ids.ReplicaID(1)
	lr, err := h.provision(vol, rid, opts)
	if err != nil {
		return ids.VolumeHandle{}, 0, err
	}
	h.mu.Lock()
	h.replicas[lr.layer.VolumeReplica()] = lr
	h.locations[vol] = map[ids.ReplicaID]simnet.Addr{rid: h.addr}
	h.mu.Unlock()
	return vol, rid, nil
}

// AddReplica creates a new replica of vol on this host with the given id
// (the id is handed out by whoever can reach an existing replica — the
// cluster harness in this reproduction) and seeds it by reconciling from a
// peer replica at seedAddr.  Per §3.1, this requires some replica of the
// volume to be accessible.
func (h *Host) AddReplica(vol ids.VolumeHandle, rid ids.ReplicaID, seed ReplicaLoc, opts *StorageOptions) error {
	if h.Down() {
		return ErrHostDown
	}
	lr, err := h.provision(vol, rid, opts)
	if err != nil {
		return err
	}
	peer := repl.NewClient(h.snHost, seed.Addr, ids.VolumeReplicaHandle{Vol: vol, Replica: seed.ID})
	if err := peer.Ping(); err != nil {
		h.replSrv.Unregister(lr.layer.VolumeReplica())
		return fmt.Errorf("core: cannot seed replica: %w", err)
	}
	if _, err := recon.ReconcileVolume(lr.layer, peer); err != nil {
		h.replSrv.Unregister(lr.layer.VolumeReplica())
		return err
	}
	h.mu.Lock()
	h.replicas[lr.layer.VolumeReplica()] = lr
	if h.locations[vol] == nil {
		h.locations[vol] = make(map[ids.ReplicaID]simnet.Addr)
	}
	h.locations[vol][rid] = h.addr
	h.locations[vol][seed.ID] = seed.Addr
	h.mu.Unlock()
	return nil
}

// RemoveReplica withdraws a locally stored volume replica: its NFS export
// and repl service stop answering and its storage is released.  Per §3.1 a
// client "may change the location and quantity of file replicas whenever a
// file replica is available" — the caller is responsible for ensuring the
// volume retains at least one replica elsewhere (and for updating other
// hosts' location tables).
func (h *Host) RemoveReplica(vr ids.VolumeReplicaHandle) error {
	h.mu.Lock()
	lr, ok := h.replicas[vr]
	if ok {
		delete(h.replicas, vr)
		if m := h.locations[vr.Vol]; m != nil {
			delete(m, vr.Replica)
		}
	}
	h.mu.Unlock()
	if !ok {
		return ErrNoLocalReplica
	}
	h.replSrv.Unregister(vr)
	h.snHost.RemoveRPC(nfsService(vr))
	_ = lr
	return nil
}

// ForgetLocation removes a replica from this host's location table (used
// after another host dropped its replica).
func (h *Host) ForgetLocation(vol ids.VolumeHandle, rid ids.ReplicaID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.locations[vol]; m != nil {
		delete(m, rid)
	}
}

// SetLocations installs (or extends) the host's knowledge of where vol's
// replicas live.  For the root volume this comes from configuration; for
// grafted volumes autografting fills it from graft-point entries.
func (h *Host) SetLocations(vol ids.VolumeHandle, locs []ReplicaLoc) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.locations[vol]
	if m == nil {
		m = make(map[ids.ReplicaID]simnet.Addr)
		h.locations[vol] = m
	}
	for _, l := range locs {
		m[l.ID] = l.Addr
	}
}

// Locations returns the known replica placement of vol, sorted by id.
func (h *Host) Locations(vol ids.VolumeHandle) []ReplicaLoc {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.locations[vol]
	out := make([]ReplicaLoc, 0, len(m))
	for rid, addr := range m {
		out = append(out, ReplicaLoc{ID: rid, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LocalReplica returns the physical layer of a locally stored replica of
// vol (any one), or nil.
func (h *Host) LocalReplica(vol ids.VolumeHandle) *physical.Layer {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.localReplicaLocked(vol)
}

func (h *Host) localReplicaLocked(vol ids.VolumeHandle) *physical.Layer {
	var best *physical.Layer
	for vr, lr := range h.replicas {
		if vr.Vol == vol && (best == nil || vr.Replica < best.Replica()) {
			best = lr.layer
		}
	}
	return best
}

// LocalReplicas lists all volume replicas stored on this host.
func (h *Host) LocalReplicas() []*physical.Layer {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*physical.Layer, 0, len(h.replicas))
	for _, lr := range h.replicas {
		out = append(out, lr.layer)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].VolumeReplica().String() < out[j].VolumeReplica().String()
	})
	return out
}

// Device returns the disk backing a local replica (for I/O accounting).
func (h *Host) Device(vr ids.VolumeReplicaHandle) *disk.Device {
	h.mu.Lock()
	defer h.mu.Unlock()
	if lr, ok := h.replicas[vr]; ok {
		return lr.dev
	}
	return nil
}

// UFS returns the file system backing a local replica (for cache control).
func (h *Host) UFS(vr ids.VolumeReplicaHandle) *ufs.FS {
	h.mu.Lock()
	defer h.mu.Unlock()
	if lr, ok := h.replicas[vr]; ok {
		return lr.fs
	}
	return nil
}

// Mount builds the logical layer for vol on this host: co-resident replicas
// are stacked directly, remote ones through NFS clients, exactly as in
// paper Figures 1 and 2 ("the NFS layer is omitted when both layers are
// co-resident").
func (h *Host) Mount(vol ids.VolumeHandle, policy logical.Policy) (*logical.Layer, error) {
	h.mu.Lock()
	if h.down {
		h.mu.Unlock()
		return nil, ErrHostDown
	}
	locs := h.locations[vol]
	if len(locs) == 0 {
		h.mu.Unlock()
		return nil, ErrUnknownVolume
	}
	type cand struct {
		rid   ids.ReplicaID
		addr  simnet.Addr
		local *localReplica
	}
	var cands []cand
	for rid, addr := range locs {
		c := cand{rid: rid, addr: addr}
		if addr == h.addr {
			c.local = h.replicas[ids.VolumeReplicaHandle{Vol: vol, Replica: rid}]
		}
		cands = append(cands, c)
	}
	h.mu.Unlock()
	// Local replicas first, then by replica id: the FirstAvailable order.
	sort.Slice(cands, func(i, j int) bool {
		li, lj := cands[i].local != nil, cands[j].local != nil
		if li != lj {
			return li
		}
		return cands[i].rid < cands[j].rid
	})
	replicas := make([]logical.Replica, 0, len(cands))
	for _, c := range cands {
		if c.local != nil {
			replicas = append(replicas, logical.Replica{ID: c.rid, FS: c.local.layer})
			continue
		}
		vr := ids.VolumeReplicaHandle{Vol: vol, Replica: c.rid}
		client := nfs.DialService(h.snHost, c.addr, nfsService(vr), nil)
		replicas = append(replicas, logical.Replica{ID: c.rid, FS: client})
	}
	lay := logical.New(vol, replicas, logical.Options{
		Policy: policy,
		Notify: h.notifier(vol),
		Graft:  h.graftHook(policy),
	})
	return lay, nil
}

// notifier announces an update to the other hosts storing a replica of vol
// (§2.5).  With gossip disabled this is the paper's flat multicast to every
// replica holder; with a fanout configured the update becomes a rumor sent
// to a rendezvous-chosen k-sample of the volume's replica set, which
// receivers relay onward (see gossip.go and onNotify).
func (h *Host) notifier(vol ids.VolumeHandle) logical.Notifier {
	return func(dir []ids.FileID, file ids.FileID, origin ids.ReplicaID) {
		h.mu.Lock()
		if h.gossip.Fanout <= 0 {
			msg := notifyMsg{Vol: vol, Dir: dir, File: file, Origin: origin}
			payload := encodeNotify(&msg)
			seen := map[simnet.Addr]bool{}
			var dsts []simnet.Addr
			for _, addr := range h.locations[vol] {
				if !seen[addr] {
					seen[addr] = true
					dsts = append(dsts, addr)
				}
			}
			h.mu.Unlock()
			sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
			h.snHost.Multicast(NotifyPort, payload, dsts)
			return
		}
		h.gossipSeq++
		msg := notifyMsg{
			Vol: vol, Dir: dir, File: file, Origin: origin,
			Src: h.addr, Seq: h.gossipSeq, Hops: uint8(h.gossip.TTL),
		}
		// Mark our own rumor seen so a relayed copy looping back is
		// suppressed, and feed any other co-resident replicas directly —
		// the self-delivery leg of the old multicast.
		h.markRumorLocked(rumorKey{h.addr, msg.Seq})
		for vr, lr := range h.replicas {
			if vr.Vol == vol && vr.Replica != origin {
				lr.layer.NoteNewVersion(dir, file, origin)
				h.notificationsSeen++
			}
		}
		dsts := h.gossipPickLocked(vol, rumorHash(msg.Src, msg.Seq),
			map[simnet.Addr]bool{h.addr: true}, h.gossip.Fanout)
		h.gstats.RumorsOriginated++
		h.gstats.NoticesSent += uint64(len(dsts))
		h.mu.Unlock()
		h.snHost.Multicast(NotifyPort, encodeNotify(&msg), dsts)
	}
}

// onNotify feeds an incoming update notification into the new-version cache
// of every local replica of the volume, except the originating replica
// itself (it already has the new version).  A datagram that fails to decode
// is dropped — notifications are best-effort and reconciliation is the
// backstop — but counted, never silently swallowed.
//
// A gossip-tagged notification (Src != "") additionally passes duplicate
// suppression first — at-least-once links and overlapping relay paths must
// not re-arm the caches — and, if its hop budget allows, is relayed to a
// fresh fanout sample of the volume's replica set.  The relay happens after
// h.mu is released: rumor paths can cycle back to this host synchronously
// (simnet delivery runs in the sender's goroutine), and the seen-cache, not
// the lock, is what terminates the cycle.  Hosts storing no replica of the
// volume drop the rumor — replica sets are partial, and only holders carry
// a volume's traffic.
func (h *Host) onNotify(from simnet.Addr, payload []byte) {
	msg, err := decodeNotify(payload)
	h.mu.Lock()
	if err != nil {
		h.notifyCodecErrs++
		h.mu.Unlock()
		return
	}
	gossip := msg.Src != ""
	if gossip {
		holder := false
		for vr := range h.replicas {
			if vr.Vol == msg.Vol {
				holder = true
				break
			}
		}
		if !holder {
			h.gstats.RumorsForeign++
			h.mu.Unlock()
			return
		}
		if !h.markRumorLocked(rumorKey{msg.Src, msg.Seq}) {
			h.gstats.RumorsSuppressed++
			h.mu.Unlock()
			return
		}
		h.gstats.RumorsAccepted++
	}
	for vr, lr := range h.replicas {
		if vr.Vol == msg.Vol && vr.Replica != msg.Origin {
			lr.layer.NoteNewVersion(msg.Dir, msg.File, msg.Origin)
			h.notificationsSeen++
		}
	}
	if !gossip || msg.Hops == 0 || h.gossip.Fanout <= 0 {
		if gossip && msg.Hops == 0 {
			h.gstats.RumorsExpired++
		}
		h.mu.Unlock()
		return
	}
	dsts := h.gossipPickLocked(msg.Vol, rumorHash(msg.Src, msg.Seq),
		map[simnet.Addr]bool{h.addr: true, from: true, msg.Src: true}, h.gossip.Fanout)
	h.gstats.RumorsRelayed += uint64(len(dsts))
	h.mu.Unlock()
	if len(dsts) == 0 {
		return
	}
	fwd := msg
	fwd.Hops--
	h.snHost.Multicast(NotifyPort, encodeNotify(&fwd), dsts)
}

// NotificationsSeen counts accepted update notifications.
func (h *Host) NotificationsSeen() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.notificationsSeen
}

// NotifyCodecErrors counts notification datagrams dropped because they
// failed to decode (truncated or corrupt payloads).
func (h *Host) NotifyCodecErrors() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.notifyCodecErrs
}

// advanceTick steps the host's virtual daemon clock (one tick per daemon
// pass); peer-health cool-downs are measured on it.
func (h *Host) advanceTick() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.daemonTick++
	return h.daemonTick
}

// SlowPeerConfig tunes the host's slow-peer tolerance: RPC deadlines, the
// latency threshold behind the Slow health state, hedged pulls, and the
// propagation pass's backpressure knobs.  The zero value disables all of
// it, reproducing the pre-deadline behavior exactly.
type SlowPeerConfig struct {
	// RPCDeadline bounds every repl exchange the daemons issue, in virtual
	// ticks; an exchange still unanswered at the deadline fails with a
	// transient deadline error.  0 = wait forever (a hung peer then costs
	// simnet.HangTicks).
	RPCDeadline uint64
	// SlowAfter marks a peer Slow once its latency EWMA exceeds this many
	// ticks, even while every exchange succeeds.  0 = off.
	SlowAfter uint64
	// HedgeAfter enables hedged batched pulls past this many ticks (see
	// recon.PropagateConfig.HedgeAfter).  0 = off.
	HedgeAfter uint64
	// TickBudget bounds one propagation pass's virtual makespan.  0 = off.
	TickBudget uint64
	// PeerInflight caps concurrent pulls per peer host within a pass.
	// 0 = uncapped.
	PeerInflight int
}

// ConfigureSlowPeers installs the host's slow-peer tolerance settings; they
// apply to every subsequent daemon pass.  Configuration survives a crash
// (it is kernel configuration, not in-memory health knowledge).
func (h *Host) ConfigureSlowPeers(cfg SlowPeerConfig) {
	h.mu.Lock()
	h.slowCfg = cfg
	h.mu.Unlock()
	h.health.SetSlowThreshold(cfg.SlowAfter)
}

// SlowPeerSettings returns the host's current slow-peer configuration.
func (h *Host) SlowPeerSettings() SlowPeerConfig {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.slowCfg
}

// PropagationStats returns the host's accumulated propagation-pass stats —
// the hedging/shedding/backpressure counters live here.
func (h *Host) PropagationStats() recon.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.propStats
}

// peerFinder builds the propagation daemon's pull-source lookup for one
// local replica.  Every remote contact feeds the health tracker.  With
// gated set, peers the tracker considers dead are skipped without any
// network traffic until their cool-down expires — the propagation daemon
// uses this so a flapping or long-dead host is not hammered every pass —
// and the peer is returned wrapped so the pulls themselves feed the
// tracker: the batched pull is the probe, no separate Ping round trip.
// Reconciliation and GC pass gated=false: correctness there depends on
// actual reachability (a skipped peer must mean an unreachable peer), so
// they pay an explicit Ping, which is also what revives a recovered peer.
// Propagate calls the finder from worker goroutines; everything here is
// mutex-protected.
func (h *Host) peerFinder(local *physical.Layer, gated bool) recon.PeerFinder {
	return func(origin ids.ReplicaID) recon.Peer {
		h.mu.Lock()
		addr, ok := h.locations[local.Volume()][origin]
		now := h.daemonTick
		deadline := h.slowCfg.RPCDeadline
		var lr *localReplica
		if ok && addr == h.addr {
			lr = h.replicas[ids.VolumeReplicaHandle{Vol: local.Volume(), Replica: origin}]
		}
		h.mu.Unlock()
		if !ok {
			return nil
		}
		if lr != nil {
			return lr.layer
		}
		c := repl.NewClient(h.snHost, addr, ids.VolumeReplicaHandle{Vol: local.Volume(), Replica: origin})
		if deadline > 0 {
			c = c.WithDeadline(deadline)
		}
		if gated {
			if !h.health.ShouldProbe(string(addr), now) {
				return nil
			}
			return &healthPeer{c: c, h: h, now: now}
		}
		if err := c.Ping(); err != nil {
			if retry.Transient(err) {
				h.health.Fail(string(addr), now)
			}
			return nil
		}
		h.health.OK(string(addr))
		return c
	}
}

// healthPeer funnels the outcome of every propagation pull into the host's
// health tracker.  A transport-class failure (peer unreachable after
// retries) marks the peer down; a deadline miss counts both as a failure
// and as a latency sample at the deadline — the slowness being measured;
// any answered call — even one reporting a peer-side error — proves the
// host alive and feeds its virtual latency into the peer's EWMA.
type healthPeer struct {
	c   *repl.Client
	h   *Host
	now uint64
}

var (
	_ recon.Peer            = (*healthPeer)(nil)
	_ recon.BatchPuller     = (*healthPeer)(nil)
	_ recon.DeltaPuller     = (*healthPeer)(nil)
	_ recon.LatencyReporter = (*healthPeer)(nil)
	_ recon.SlowReporter    = (*healthPeer)(nil)
	_ recon.AddrKeyer       = (*healthPeer)(nil)
)

func (p *healthPeer) note(err error) {
	key := string(p.c.Addr())
	// Deadline first: repl's deadline error also matches ErrUnreachable (so
	// transport-failure paths treat it as a failed exchange), but it is the
	// more specific verdict and carries a latency meaning.
	if err != nil && errors.Is(err, repl.ErrDeadline) {
		p.h.health.DeadlineMiss(key)
		p.h.health.ObserveLatency(key, p.c.LastElapsed())
		p.h.health.Fail(key, p.now)
		return
	}
	if err != nil && errors.Is(err, repl.ErrUnreachable) {
		p.h.health.Fail(key, p.now)
		return
	}
	p.h.health.ObserveLatency(key, p.c.LastElapsed())
	p.h.health.OK(key)
}

// LastElapsed reports the virtual ticks of the most recent exchange.
func (p *healthPeer) LastElapsed() uint64 { return p.c.LastElapsed() }

// SlowPeer reports whether the health tracker currently rates this peer
// Slow (latency EWMA above the configured threshold).
func (p *healthPeer) SlowPeer() bool {
	return p.h.health.State(string(p.c.Addr())) == retry.Slow
}

// PeerKey identifies the peer's host for the per-peer in-flight cap.
func (p *healthPeer) PeerKey() string { return string(p.c.Addr()) }

func (p *healthPeer) Replica() ids.ReplicaID { return p.c.Replica() }

func (p *healthPeer) DirEntries(dirPath []ids.FileID) (physical.DirState, error) {
	ds, err := p.c.DirEntries(dirPath)
	p.note(err)
	return ds, err
}

func (p *healthPeer) FileInfo(dirPath []ids.FileID, fid ids.FileID) (physical.FileState, error) {
	st, err := p.c.FileInfo(dirPath, fid)
	p.note(err)
	return st, err
}

func (p *healthPeer) FileData(dirPath []ids.FileID, fid ids.FileID) ([]byte, physical.FileState, error) {
	data, st, err := p.c.FileData(dirPath, fid)
	p.note(err)
	return data, st, err
}

func (p *healthPeer) PullBatch(reqs []physical.PullRequest) ([]physical.PullResult, error) {
	res, err := p.c.PullBatch(reqs)
	p.note(err)
	return res, err
}

func (p *healthPeer) PullBatchDelta(reqs []physical.PullRequest, have []physical.BlockAddr) ([]physical.PullResult, error) {
	res, err := p.c.PullBatchDelta(reqs, have)
	p.note(err)
	return res, err
}

// PeerHealth reports the tracked health of the host at addr.
func (h *Host) PeerHealth(addr simnet.Addr) retry.State {
	return h.health.State(string(addr))
}

// PeerHealthInfo reports the full tracked health profile of the host at
// addr: state, failure streak, latency EWMA, deadline misses.
func (h *Host) PeerHealthInfo(addr simnet.Addr) retry.HealthInfo {
	return h.health.Snapshot(string(addr))
}

// hedgeFinder builds the propagation daemon's backup-source lookup for one
// local replica: given an origin it returns the next-healthiest OTHER
// replica of the volume that could serve the same versions — co-resident
// replicas first (free in virtual time), then remote peers ranked by
// health state (healthy before slow before suspect; dead excluded), then
// by latency EWMA, then by replica id.  The ranking reads only tracked
// state — no probe traffic — so a hedge decision costs nothing when it is
// not taken.
func (h *Host) hedgeFinder(local *physical.Layer) func(ids.ReplicaID) recon.Peer {
	return func(origin ids.ReplicaID) recon.Peer {
		h.mu.Lock()
		now := h.daemonTick
		deadline := h.slowCfg.RPCDeadline
		type cand struct {
			rid  ids.ReplicaID
			addr simnet.Addr
			lr   *localReplica
		}
		var cands []cand
		for rid, addr := range h.locations[local.Volume()] {
			if rid == origin || rid == local.Replica() {
				continue
			}
			c := cand{rid: rid, addr: addr}
			if addr == h.addr {
				c.lr = h.replicas[ids.VolumeReplicaHandle{Vol: local.Volume(), Replica: rid}]
				if c.lr == nil {
					continue // stale location entry for a removed local replica
				}
			}
			cands = append(cands, c)
		}
		h.mu.Unlock()
		if len(cands) == 0 {
			return nil
		}
		rank := func(c cand) (int, uint64) {
			if c.lr != nil {
				return -1, 0 // co-resident: free, always first
			}
			info := h.health.Snapshot(string(c.addr))
			switch info.State {
			case retry.Healthy:
				return 0, info.EWMATicks
			case retry.Slow:
				return 1, info.EWMATicks
			case retry.Suspect:
				return 2, info.EWMATicks
			default:
				return 3, info.EWMATicks // dead: excluded below
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			ri, ei := rank(cands[i])
			rj, ej := rank(cands[j])
			if ri != rj {
				return ri < rj
			}
			if ei != ej {
				return ei < ej
			}
			return cands[i].rid < cands[j].rid
		})
		best := cands[0]
		if best.lr != nil {
			return best.lr.layer
		}
		if r, _ := rank(best); r >= 3 {
			return nil // every alternate is dead; no useful hedge
		}
		c := repl.NewClient(h.snHost, best.addr, ids.VolumeReplicaHandle{Vol: local.Volume(), Replica: best.rid})
		if deadline > 0 {
			c = c.WithDeadline(deadline)
		}
		return &healthPeer{c: c, h: h, now: now}
	}
}

// PropagateOnce runs one pass of the update propagation daemon over every
// local replica, pulling announced versions from their origins (§3.2).
// Per-entry transient failures are absorbed into the returned Stats
// (Deferred/Failures); only permanent, corruption-class errors surface.
func (h *Host) PropagateOnce() (recon.Stats, error) {
	return h.PropagateOnceCfg(recon.PropagateConfig{Policy: retry.Default()})
}

// PropagateOnceCfg is PropagateOnce under an explicit propagation
// configuration (worker count, batch disable, retry policy) — used by the
// benchmarks to compare pipeline shapes.  A down host's daemons do not run:
// the pass is a no-op.  Any post-restart rescan obligation is paid first,
// before the pull pass.
func (h *Host) PropagateOnceCfg(cfg recon.PropagateConfig) (recon.Stats, error) {
	if h.Down() {
		return recon.Stats{}, nil
	}
	h.advanceTick()
	h.mu.Lock()
	sc := h.slowCfg
	h.mu.Unlock()
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = sc.HedgeAfter
	}
	if cfg.TickBudget == 0 {
		cfg.TickBudget = sc.TickBudget
	}
	if cfg.PeerInflight == 0 {
		cfg.PeerInflight = sc.PeerInflight
	}
	total := h.recoveryRescan()
	var err error
	for _, layer := range h.LocalReplicas() {
		lcfg := cfg
		if lcfg.HedgeAfter > 0 && lcfg.FindHedge == nil {
			lcfg.FindHedge = h.hedgeFinder(layer)
		}
		var stats recon.Stats
		stats, err = recon.Propagate(layer, h.peerFinder(layer, true), lcfg)
		total.Add(stats)
		if err != nil {
			break
		}
	}
	h.mu.Lock()
	h.propStats.Add(total)
	h.mu.Unlock()
	return total, err
}

// Fsck runs both consistency checkers — the UFS fsck and the Ficus
// physical-layer check — over every local volume replica, returning all
// problems found (empty means clean).
func (h *Host) Fsck() ([]string, error) {
	h.mu.Lock()
	reps := make([]*localReplica, 0, len(h.replicas))
	for _, lr := range h.replicas {
		reps = append(reps, lr)
	}
	h.mu.Unlock()
	// Deterministic report order regardless of map iteration.
	sort.Slice(reps, func(i, j int) bool {
		return vrhLess(reps[i].layer.VolumeReplica(), reps[j].layer.VolumeReplica())
	})
	var out []string
	for _, lr := range reps {
		vr := lr.layer.VolumeReplica()
		ufsProbs, err := lr.fs.Check()
		if err != nil {
			return out, err
		}
		for _, p := range ufsProbs {
			out = append(out, fmt.Sprintf("%s [ufs]: %s", vr, p))
		}
		ficusProbs, err := lr.layer.Check()
		if err != nil {
			return out, err
		}
		for _, p := range ficusProbs {
			out = append(out, fmt.Sprintf("%s [ficus]: %s", vr, p))
		}
	}
	return out, nil
}

// CollectGarbage runs tombstone garbage collection on every local replica
// whose volume has ALL replicas currently reachable (the safety condition:
// a tombstone may be dropped only once every replica has seen the delete).
// Volumes with any unreachable replica are skipped.  Returns the number of
// tombstones collected.
func (h *Host) CollectGarbage() (int, error) {
	if h.Down() {
		return 0, nil
	}
	total := 0
	for _, layer := range h.LocalReplicas() {
		h.mu.Lock()
		locs := make(map[ids.ReplicaID]simnet.Addr, len(h.locations[layer.Volume()]))
		for rid, addr := range h.locations[layer.Volume()] {
			locs[rid] = addr
		}
		h.mu.Unlock()
		peers := make([]recon.Peer, 0, len(locs))
		complete := true
		rids := make([]ids.ReplicaID, 0, len(locs))
		for rid := range locs {
			rids = append(rids, rid)
		}
		sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
		for _, rid := range rids {
			if rid == layer.Replica() {
				continue
			}
			peer := h.peerFinder(layer, false)(rid)
			if peer == nil {
				complete = false
				break
			}
			peers = append(peers, peer)
		}
		if !complete {
			continue
		}
		n, err := recon.TombstoneGC(layer, peers)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReconcileOnce runs the periodic reconciliation protocol: every local
// replica pulls from known remote replicas of its volume (§3.3), visited in
// the anti-entropy scheduler's priority order — longest-unattempted first,
// Suspect/Slow peers boosted — and capped at the GossipConfig.ReconPeers
// budget when one is set (0 keeps the legacy every-peer sweep).
// Reconciliation is the safety net, so visits are never health-gated: a
// scheduled peer is probed even if the tracker thinks it dead, which is also
// how a recovered peer's health state resets; the budget only rotates who is
// probed this pass, and staleness growth guarantees every peer keeps being
// reached.  Per-peer failures (e.g. a partition cutting in mid-pass) are
// normal life and absorbed.  A pass also discharges any post-restart rescan
// obligation once it completes cleanly against at least one remote peer.  A
// down host's daemons do not run.
func (h *Host) ReconcileOnce() (recon.Stats, error) {
	if h.Down() {
		return recon.Stats{}, nil
	}
	h.advanceTick()
	var total recon.Stats
	for _, layer := range h.LocalReplicas() {
		stats, rescanMet := h.reconcileReplica(layer)
		total.Add(stats)
		if rescanMet {
			h.mu.Lock()
			delete(h.rescan, layer.Volume())
			h.mu.Unlock()
		}
	}
	return total, nil
}

// vhLess orders volume handles deterministically (allocator, then volume).
func vhLess(a, b ids.VolumeHandle) bool {
	if a.Allocator != b.Allocator {
		return a.Allocator < b.Allocator
	}
	return a.Volume < b.Volume
}

// vrhLess orders volume replica handles deterministically.
func vrhLess(a, b ids.VolumeReplicaHandle) bool {
	if a.Vol != b.Vol {
		return vhLess(a.Vol, b.Vol)
	}
	return a.Replica < b.Replica
}
