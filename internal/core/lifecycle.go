package core

// Crash–restart lifecycle.  The paper's availability argument (§1, §3)
// assumes replicas survive host failures and catch up afterwards; this file
// is that failure model.  Crash kills the "kernel": every service endpoint
// disappears and all in-memory state — mounts, grafts, peer health, the
// volume layers — is lost, while the disks survive.  Restart remounts each
// volume from its device (UFS recovery first, then physical-layer recovery
// including the durable new-version cache journal) and re-exports it, and
// flags each remounted volume for one anti-entropy rescan: notifications
// that arrived while the host was down are gone forever, and the paper's
// answer is that "reconciliation covers lost notifications".

import (
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/nfs"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
)

// Crash tears the host down as a power failure would: RPC and notification
// handlers stop answering, mounted layers and the graft table are lost, and
// each replica's device is put into the faulted state so stale file-system
// handles from before the crash cannot touch the platter.  The devices
// themselves (and their contents) survive for Restart.  Idempotent.
func (h *Host) Crash() {
	h.mu.Lock()
	if h.down {
		h.mu.Unlock()
		return
	}
	h.down = true
	reps := h.replicas
	h.replicas = make(map[ids.VolumeReplicaHandle]*localReplica)
	h.grafts = make(map[ids.VolumeHandle]*graftEntry)
	for vr, lr := range reps {
		h.crashed[vr] = &crashedReplica{dev: lr.dev, opts: lr.opts}
	}
	h.mu.Unlock()

	// Service teardown outside h.mu: the network host keeps its own locks.
	for _, vr := range sortedHandles(reps) {
		h.replSrv.Unregister(vr)
		h.snHost.RemoveRPC(nfsService(vr))
		reps[vr].dev.Fault()
	}
	h.snHost.SetDown(true)
	// In-flight peer-health knowledge dies with the kernel, as do the
	// gossip seen-rumor cache and the anti-entropy scheduler's recency
	// tables (the post-restart rescan covers what was forgotten).
	h.health.Reset()
	h.sched.Reset()
	h.mu.Lock()
	h.gossipSeen = make(map[rumorKey]struct{})
	h.gossipFIFO = nil
	h.mu.Unlock()
}

// Restart reboots a crashed host: every volume replica is remounted from
// its surviving device — UFS crash recovery runs under Mount, then the
// physical layer is rebuilt from on-disk state, replaying the durable
// new-version cache journal — and its replication services are re-exported.
// Each restored volume is flagged for an anti-entropy rescan, performed by
// the next daemon pass.  A replica that fails to remount stays crashed and
// the host stays down; the error reports why.
func (h *Host) Restart() error {
	h.mu.Lock()
	if !h.down {
		h.mu.Unlock()
		return nil
	}
	crashed := h.crashed
	h.crashed = make(map[ids.VolumeReplicaHandle]*crashedReplica)
	h.mu.Unlock()

	h.snHost.SetDown(false)
	for _, vr := range sortedHandles(crashed) {
		cr := crashed[vr]
		lr, err := remount(cr)
		if err != nil || lr.layer.VolumeReplica() != vr {
			if err == nil {
				err = fmt.Errorf("core: device for %s holds replica %s", vr, lr.layer.VolumeReplica())
			}
			// Put every unrestored replica back and stay down.
			h.mu.Lock()
			for _, bad := range sortedHandles(crashed) {
				if _, ok := h.replicas[bad]; !ok {
					h.crashed[bad] = crashed[bad]
				}
			}
			h.mu.Unlock()
			h.snHost.SetDown(true)
			return fmt.Errorf("core: restart %s: %w", vr, err)
		}
		h.replSrv.Register(lr.layer)
		nfs.ServeOn(h.snHost, nfsService(vr), lr.layer, lr.layer)
		h.mu.Lock()
		h.replicas[vr] = lr
		h.rescan[vr.Vol] = true
		h.mu.Unlock()
	}
	h.mu.Lock()
	h.down = false
	h.mu.Unlock()
	return nil
}

// remount brings one crashed replica back from its device.
func remount(cr *crashedReplica) (*localReplica, error) {
	cr.dev.ClearFault()
	fs, err := ufs.Mount(cr.dev, cr.opts.UFS)
	if err != nil {
		return nil, err
	}
	layer, err := physical.Open(ufsvn.New(fs))
	if err != nil {
		return nil, err
	}
	return &localReplica{layer: layer, dev: cr.dev, fs: fs, opts: cr.opts}, nil
}

// Down reports whether the host is currently crashed.
func (h *Host) Down() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// RescanPending reports how many volumes still owe a post-restart
// anti-entropy rescan.
func (h *Host) RescanPending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.rescan)
}

// Devices lists the disks behind every local replica, including replicas of
// a currently crashed host, in deterministic order (for fault injection and
// I/O accounting).
func (h *Host) Devices() []*disk.Device {
	h.mu.Lock()
	defer h.mu.Unlock()
	byVR := make(map[ids.VolumeReplicaHandle]*disk.Device, len(h.replicas)+len(h.crashed))
	for vr, lr := range h.replicas {
		byVR[vr] = lr.dev
	}
	for vr, cr := range h.crashed {
		byVR[vr] = cr.dev
	}
	out := make([]*disk.Device, 0, len(byVR))
	for _, vr := range sortedHandles(byVR) {
		out = append(out, byVR[vr])
	}
	return out
}

// schedPeers snapshots vol's remote peers as anti-entropy scheduler input:
// replica ids with the health tracker's current verdict (co-resident
// replicas count as healthy), plus the host's current daemon tick.  Health
// is read after h.mu is released — the tracker keeps its own lock.
func (h *Host) schedPeers(vol ids.VolumeHandle, local *physical.Layer) ([]recon.SchedPeer, uint64) {
	h.mu.Lock()
	now := h.daemonTick
	self := h.addr
	type peerAddr struct {
		rid  ids.ReplicaID
		addr simnet.Addr
	}
	pas := make([]peerAddr, 0, len(h.locations[vol]))
	for rid, addr := range h.locations[vol] {
		if local != nil && rid == local.Replica() {
			continue
		}
		pas = append(pas, peerAddr{rid, addr})
	}
	h.mu.Unlock()
	sort.Slice(pas, func(i, j int) bool { return pas[i].rid < pas[j].rid })
	peers := make([]recon.SchedPeer, 0, len(pas))
	for _, p := range pas {
		st := retry.Healthy
		if p.addr != self {
			st = h.health.State(string(p.addr))
		}
		peers = append(peers, recon.SchedPeer{Replica: p.rid, Health: st})
	}
	return peers, now
}

// reconcileReplica reconciles one local replica against remote replicas of
// its volume in the anti-entropy scheduler's priority order — stalest and
// least-healthy peers first, capped at the configured ReconPeers budget
// (0 = every peer, the legacy full sweep) — reporting whether the volume's
// rescan obligation (if any) is met: at least one remote peer completed a
// clean pass, or no remote peer is known at all.  Every visit is recorded as
// an attempt (so budgeted passes rotate through all peers — no starvation)
// and every clean pass as a sync.
func (h *Host) reconcileReplica(layer *physical.Layer) (recon.Stats, bool) {
	vol := layer.Volume()
	peers, now := h.schedPeers(vol, layer)
	remotes := len(peers)
	order := h.sched.Order(vol, peers, now)
	if b := h.GossipSettings().ReconPeers; b > 0 && b < len(order) {
		order = order[:b]
	}
	rids := make([]ids.ReplicaID, len(order))
	for i, p := range order {
		rids[i] = p.Replica
		h.sched.NoteAttempt(vol, p.Replica, now)
	}
	stats, clean := recon.RescanEach(layer, h.peerFinder(layer, false), rids,
		func(rid ids.ReplicaID, reached bool, err error) {
			if reached && err == nil {
				h.sched.NoteSync(vol, rid, now)
			}
		})
	return stats, clean > 0 || remotes == 0
}

// recoveryRescan runs the reconcile pass each freshly restarted volume owes.
// The obligation stands until a pass reaches at least one remote peer: under
// partitions or RPC faults the flag persists and the next daemon pass tries
// again.
func (h *Host) recoveryRescan() recon.Stats {
	h.mu.Lock()
	if len(h.rescan) == 0 {
		h.mu.Unlock()
		return recon.Stats{}
	}
	flagged := make(map[ids.VolumeHandle]bool, len(h.rescan))
	for vol := range h.rescan {
		flagged[vol] = true
	}
	h.mu.Unlock()
	var total recon.Stats
	for _, layer := range h.LocalReplicas() {
		if !flagged[layer.Volume()] {
			continue
		}
		stats, met := h.reconcileReplica(layer)
		total.Add(stats)
		if met {
			h.mu.Lock()
			delete(h.rescan, layer.Volume())
			h.mu.Unlock()
		}
	}
	return total
}

// sortedHandles orders the keys of a per-replica map deterministically.
func sortedHandles[V any](m map[ids.VolumeReplicaHandle]V) []ids.VolumeReplicaHandle {
	out := make([]ids.VolumeReplicaHandle, 0, len(m))
	for vr := range m {
		out = append(out, vr)
	}
	sort.Slice(out, func(i, j int) bool { return vrhLess(out[i], out[j]) })
	return out
}
