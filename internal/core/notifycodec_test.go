package core

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

func TestNotifyCodecRoundTrip(t *testing.T) {
	cases := []notifyMsg{
		{
			Vol:    ids.VolumeHandle{Allocator: 7, Volume: 3},
			File:   ids.FileID{Issuer: 2, Seq: 99},
			Origin: 2,
		},
		{
			Vol:  ids.VolumeHandle{Allocator: 1, Volume: 1},
			File: ids.FileID{Issuer: 1, Seq: 1},
			Dir: []ids.FileID{
				{Issuer: 1, Seq: 0},
				{Issuer: 4, Seq: 1 << 40},
				{Issuer: 0xffffffff, Seq: ^uint64(0)},
			},
			Origin: 0xffffffff,
		},
		{ // gossip-tagged rumor: source, sequence, and hop budget survive
			Vol:    ids.VolumeHandle{Allocator: 3, Volume: 9},
			File:   ids.FileID{Issuer: 5, Seq: 7},
			Dir:    []ids.FileID{{Issuer: 5, Seq: 2}},
			Origin: 5,
			Src:    simnet.Addr("h17"),
			Seq:    ^uint64(0),
			Hops:   255,
		},
	}
	for i, want := range cases {
		b := encodeNotify(&want)
		got, err := decodeNotify(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestNotifyCodecRejectsCorruption(t *testing.T) {
	msg := notifyMsg{
		Vol:    ids.VolumeHandle{Allocator: 7, Volume: 3},
		File:   ids.FileID{Issuer: 2, Seq: 99},
		Dir:    []ids.FileID{{Issuer: 2, Seq: 1}},
		Origin: 2,
		Src:    simnet.Addr("h0"),
		Seq:    4,
		Hops:   3,
	}
	good := encodeNotify(&msg)

	// Every truncation of a valid payload must fail, not misparse.
	for n := 0; n < len(good); n++ {
		if _, err := decodeNotify(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Trailing junk is rejected.
	if _, err := decodeNotify(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Wrong wire version is rejected.
	bad := append([]byte(nil), good...)
	bad[0] = notifyWireVersion + 1
	if _, err := decodeNotify(bad); err == nil {
		t.Fatal("wrong wire version accepted")
	}
	// A dir-path count far beyond the remaining bytes must fail cleanly
	// (no huge allocation): version + vol + origin + file + hops + seq +
	// src ("h0"), then count 2^40.
	hdr := good[:1+4+4+4+12+1+8+1+2]
	huge := append(append([]byte(nil), hdr...), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
	if _, err := decodeNotify(huge); err == nil {
		t.Fatal("overlong dir-path count accepted")
	}
	// Same for a corrupt src length: header up to the seq field, then a
	// length claiming 2^40 bytes of address.
	srcHdr := good[:1+4+4+4+12+1+8]
	hugeSrc := append(append([]byte(nil), srcHdr...), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
	if _, err := decodeNotify(hugeSrc); err == nil {
		t.Fatal("overlong src length accepted")
	}
}

// TestNotifyCorruptDatagramCounted injects a garbage datagram on the notify
// port and checks it is counted and dropped while real notifications keep
// flowing.
func TestNotifyCorruptDatagramCounted(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.hosts[0], c.hosts[1]

	h0.SimHost().Multicast(NotifyPort, []byte{0xde, 0xad, 0xbe, 0xef}, []simnet.Addr{h1.Addr()})
	if got := h1.NotifyCodecErrors(); got != 1 {
		t.Fatalf("NotifyCodecErrors = %d, want 1", got)
	}
	if got := h1.NotificationsSeen(); got != 0 {
		t.Fatalf("NotificationsSeen = %d, want 0", got)
	}

	// A real update still notifies h1.
	root := c.mount(t, 0)
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := h1.NotificationsSeen(); got == 0 {
		t.Fatal("valid notification not seen after corrupt datagram")
	}
	if got := h1.NotifyCodecErrors(); got != 1 {
		t.Fatalf("NotifyCodecErrors = %d after valid traffic, want 1", got)
	}
}
