package core

// Hand-rolled wire codec for update-notification datagrams, in the style of
// the repl protocol codec (internal/repl/codec.go).  The previous gob
// encoding re-shipped full type metadata on every datagram — a large fixed
// tax on the smallest, most frequent message in the system (§2.5: one
// best-effort datagram per update) — and both encode and decode failures
// were silently swallowed.  The binary layout is a few dozen bytes, encoding
// cannot fail, and decode failures (truncated or corrupt datagrams) are
// counted by the receiving host instead of vanishing.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ids"
	"repro/internal/simnet"
)

// notifyWireVersion leads every notification; bumping it invalidates old
// peers loudly instead of misparsing them.  v2 added the gossip envelope
// (hop budget, rumor sequence, source address).
const notifyWireVersion = 2

func appendNotifyFID(dst []byte, f ids.FileID) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Issuer))
	return binary.BigEndian.AppendUint64(dst, f.Seq)
}

// encodeNotify renders msg: version u8, vol (u32+u32), origin u32,
// file fid(12), hops u8, seq u64, src (uvarint length + bytes),
// dir-path count uvarint + fids (12 each).
func encodeNotify(msg *notifyMsg) []byte {
	dst := make([]byte, 0, 40+len(msg.Src)+12*len(msg.Dir))
	dst = append(dst, notifyWireVersion)
	dst = binary.BigEndian.AppendUint32(dst, uint32(msg.Vol.Allocator))
	dst = binary.BigEndian.AppendUint32(dst, uint32(msg.Vol.Volume))
	dst = binary.BigEndian.AppendUint32(dst, uint32(msg.Origin))
	dst = appendNotifyFID(dst, msg.File)
	dst = append(dst, msg.Hops)
	dst = binary.BigEndian.AppendUint64(dst, msg.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(msg.Src)))
	dst = append(dst, msg.Src...)
	dst = binary.AppendUvarint(dst, uint64(len(msg.Dir)))
	for _, f := range msg.Dir {
		dst = appendNotifyFID(dst, f)
	}
	return dst
}

// notifyDecoder is a sticky-error bounds-checked reader (the repl decoder's
// idiom): the first failure sticks and every later read returns zeros, so
// decodeNotify runs the full field sequence and checks err once.
type notifyDecoder struct {
	b   []byte
	err error
}

func (d *notifyDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("core: bad notification: "+format, args...)
	}
}

func (d *notifyDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("want %d bytes, have %d", n, len(d.b))
		return nil
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b
}

func (d *notifyDecoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *notifyDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *notifyDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *notifyDecoder) fid() ids.FileID {
	return ids.FileID{Issuer: ids.ReplicaID(d.u32()), Seq: d.u64()}
}

func (d *notifyDecoder) count(what string) uint64 {
	if d.err != nil {
		return 0
	}
	n, used := binary.Uvarint(d.b)
	if used <= 0 {
		d.fail("bad %s", what)
		return 0
	}
	d.b = d.b[used:]
	return n
}

func decodeNotify(b []byte) (notifyMsg, error) {
	d := &notifyDecoder{b: b}
	if v := d.u8(); d.err == nil && v != notifyWireVersion {
		d.fail("wire version %d, want %d", v, notifyWireVersion)
	}
	var msg notifyMsg
	msg.Vol = ids.VolumeHandle{
		Allocator: ids.AllocatorID(d.u32()),
		Volume:    ids.VolumeID(d.u32()),
	}
	msg.Origin = ids.ReplicaID(d.u32())
	msg.File = d.fid()
	msg.Hops = d.u8()
	msg.Seq = d.u64()
	if n := d.count("src length"); d.err == nil {
		// Cap against the bytes remaining before allocating, so a corrupt
		// length cannot drive a huge allocation.
		if n > uint64(len(d.b)) {
			d.fail("src length %d exceeds %d remaining bytes", n, len(d.b))
		} else if n > 0 {
			msg.Src = simnet.Addr(d.take(int(n)))
		}
	}
	if n := d.count("dir-path count"); d.err == nil {
		// Same allocation cap: 12 bytes per fid must actually remain.
		if n > uint64(len(d.b)/12) {
			d.fail("dir-path count %d exceeds %d remaining bytes", n, len(d.b))
		} else if n > 0 {
			msg.Dir = make([]ids.FileID, n)
			for i := range msg.Dir {
				msg.Dir[i] = d.fid()
			}
		}
	}
	if d.err != nil {
		return notifyMsg{}, d.err
	}
	if len(d.b) != 0 {
		return notifyMsg{}, fmt.Errorf("core: bad notification: %d trailing bytes", len(d.b))
	}
	return msg, nil
}
