package core

// Epidemic update notification (the gossip plane).  The paper sends one
// best-effort datagram per update to every replica (§2.5) — an O(n) burst
// per origin that stops scaling past a handful of hosts.  Here the origin
// instead sends each new-version notice to a fanout-k sample of that
// volume's replica set, and every first-time receiver relays it to its own
// k-sample with a decrementing hop budget, so per-origin cost is O(k) and
// network-wide cost is O(n·k) spread across the cluster, while k independent
// arrival paths per host tolerate per-link loss and crashed relayers.
// Notifications remain pure hints: a rumor that dies in a partition is
// repaired by the anti-entropy scheduler (recon.Scheduler), never missed
// permanently.
//
// Determinism: there is no RNG anywhere in the plane.  Relay targets come
// from rendezvous hashing — every candidate is scored by a splitmix64-style
// hash of (rumor id, relayer address, candidate address) and the k smallest
// scores win — so the dissemination tree of a given rumor is a pure function
// of the rumor id and the replica set, reproducible across runs and
// independent of map iteration or goroutine timing.
//
// Duplicate suppression keys on the rumor id (Src, Seq): Src is the host
// whose notifier announced the update and Seq its per-host counter, together
// standing in for the (origin, version-vector) identity of the new version —
// the notifier fires once per completed update, so distinct updates get
// distinct ids while duplicate and re-ordered deliveries of the same rumor
// share one.  A suppressed rumor feeds no new-version cache and is not
// relayed, which both caps the epidemic and keeps the NVC's Seen counter at
// first-seen semantics under at-least-once links.

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/simnet"
)

// defaultSuppressionCap bounds the per-host seen-rumor cache when
// GossipConfig.SuppressionCap is zero.
const defaultSuppressionCap = 8192

// GossipConfig tunes a host's epidemic notification plane and its
// anti-entropy scheduling budget.  The zero value disables both: updates go
// out as one flat multicast to every replica holder and reconciliation
// sweeps every known peer each pass — the pre-gossip behavior exactly.
type GossipConfig struct {
	// Fanout is how many replica-holder hosts a rumor is sent to at each
	// step (origination and relay).  0 disables gossip: flat multicast.
	Fanout int
	// TTL is the relay hop budget: a rumor is forwarded by receivers until
	// its budget is exhausted.  0 means direct fanout only, no relay.
	// Coverage needs roughly log_Fanout(n) hops plus slack for overlap.
	TTL int
	// SuppressionCap bounds the seen-rumor cache (FIFO eviction).
	// 0 = defaultSuppressionCap.
	SuppressionCap int
	// ReconPeers caps how many peers one reconciliation pass visits per
	// volume, in the anti-entropy scheduler's priority order.  0 = every
	// known peer (the legacy full sweep).
	ReconPeers int
}

// GossipStats counts a host's gossip-plane activity.
type GossipStats struct {
	RumorsOriginated uint64 // updates announced by this host's notifier
	NoticesSent      uint64 // datagrams sent originating those rumors
	RumorsRelayed    uint64 // datagrams sent relaying others' rumors
	RumorsAccepted   uint64 // first-seen rumors fed into local caches
	RumorsSuppressed uint64 // duplicate rumors dropped by the seen-cache
	RumorsForeign    uint64 // rumors for volumes this host stores no replica of
	RumorsExpired    uint64 // rumors accepted with an exhausted hop budget
}

// rumorKey identifies one rumor for duplicate suppression.
type rumorKey struct {
	src simnet.Addr
	seq uint64
}

// ConfigureGossip installs the gossip/scheduler settings; they govern every
// subsequent update announcement and reconciliation pass.  Like the
// slow-peer settings this is kernel configuration, so it survives a crash.
func (h *Host) ConfigureGossip(cfg GossipConfig) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gossip = cfg
}

// GossipSettings returns the host's current gossip configuration.
func (h *Host) GossipSettings() GossipConfig {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gossip
}

// GossipStats returns the host's accumulated gossip counters.
func (h *Host) GossipStats() GossipStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gstats
}

// markRumorLocked records a rumor id in the seen-cache, reporting whether it
// was new.  The cache is FIFO-bounded; eviction only ever risks re-accepting
// a very old rumor, which the new-version cache coalesces harmlessly.
func (h *Host) markRumorLocked(k rumorKey) bool {
	if _, ok := h.gossipSeen[k]; ok {
		return false
	}
	cap := h.gossip.SuppressionCap
	if cap <= 0 {
		cap = defaultSuppressionCap
	}
	for len(h.gossipSeen) >= cap && len(h.gossipFIFO) > 0 {
		delete(h.gossipSeen, h.gossipFIFO[0])
		h.gossipFIFO = h.gossipFIFO[1:]
	}
	h.gossipSeen[k] = struct{}{}
	h.gossipFIFO = append(h.gossipFIFO, k)
	return true
}

// mix64 is the splitmix64 finalizer (the same mixer simnet's per-link RNG
// seeds with): a cheap, well-distributed hash for rendezvous scoring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// addrHash folds a host address into a 64-bit value (FNV-1a).
func addrHash(a simnet.Addr) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(a) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// rumorHash folds a rumor id into the rendezvous key.
func rumorHash(src simnet.Addr, seq uint64) uint64 {
	return mix64(addrHash(src) ^ mix64(seq))
}

// gossipPickLocked chooses the fanout sample for one rumor step: the k
// replica-holder hosts of vol (excluding excl) with the smallest rendezvous
// scores under (rumor, this relayer).  Only addresses in the volume's
// location table are candidates — the partial-replica-set property: rumors
// for a volume travel exclusively among the hosts storing it.
func (h *Host) gossipPickLocked(vol ids.VolumeHandle, rumor uint64, excl map[simnet.Addr]bool, k int) []simnet.Addr {
	if k <= 0 {
		return nil
	}
	seen := make(map[simnet.Addr]bool)
	var cands []simnet.Addr
	for _, addr := range h.locations[vol] {
		if !seen[addr] && !excl[addr] {
			seen[addr] = true
			cands = append(cands, addr)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	self := addrHash(h.addr)
	scoreOf := func(a simnet.Addr) uint64 { return mix64(rumor ^ self ^ addrHash(a)) }
	sort.Slice(cands, func(i, j int) bool {
		si, sj := scoreOf(cands[i]), scoreOf(cands[j])
		if si != sj {
			return si < sj
		}
		return cands[i] < cands[j]
	})
	if k < len(cands) {
		cands = cands[:k]
	}
	// Deterministic send order by address (the scores are already
	// deterministic; sorting by address keeps wire traces readable).
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands
}

// PeerPriority is one entry of a host's anti-entropy plan: the order the
// scheduler would visit the volume's peers in right now.
type PeerPriority struct {
	Replica     ids.ReplicaID
	Addr        simnet.Addr
	Health      string
	LastSync    uint64 // daemon tick of the last clean pass (0 = never)
	LastAttempt uint64 // daemon tick of the last attempt (0 = never)
	Score       uint64 // effective staleness driving the order
}

// AntiEntropyPlan reports the scheduler's current priority order over vol's
// remote peers, highest priority first — what the next ReconcileOnce pass
// would visit (truncated to ReconPeers if a budget is configured).
func (h *Host) AntiEntropyPlan(vol ids.VolumeHandle) []PeerPriority {
	local := h.LocalReplica(vol)
	peers, now := h.schedPeers(vol, local)
	order := h.sched.Order(vol, peers, now)
	out := make([]PeerPriority, 0, len(order))
	h.mu.Lock()
	locs := h.locations[vol]
	for _, p := range order {
		out = append(out, PeerPriority{
			Replica:     p.Replica,
			Addr:        locs[p.Replica],
			Health:      p.Health.String(),
			LastSync:    p.LastSync,
			LastAttempt: p.LastAttempt,
			Score:       p.Score,
		})
	}
	h.mu.Unlock()
	return out
}
