package core

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

// sweepCluster is a 2-host rig on small disks: host 1 (replica 2) is the
// crash victim, host 0 (replica 1) keeps writing throughout.
type sweepCluster struct {
	hosts []*Host
	vol   ids.VolumeHandle
}

func newSweepCluster(t *testing.T) *sweepCluster {
	t.Helper()
	small := &StorageOptions{DiskBlocks: 2048, Inodes: 256}
	net := simnet.New(1)
	h0 := NewHost(net, "a", 1)
	h1 := NewHost(net, "b", 2)
	vol, rid, err := h0.CreateVolume(small)
	if err != nil {
		t.Fatal(err)
	}
	locs := []ReplicaLoc{{ID: rid, Addr: "a"}}
	if err := h1.AddReplica(vol, 2, locs[0], small); err != nil {
		t.Fatal(err)
	}
	locs = append(locs, ReplicaLoc{ID: 2, Addr: "b"})
	h0.SetLocations(vol, locs)
	h1.SetLocations(vol, locs)
	return &sweepCluster{hosts: []*Host{h0, h1}, vol: vol}
}

// runCrashSweepCase runs the mixed workload with host 1's disk armed to
// crash after crashAfter writes, then restarts host 1 and checks the
// durability contract.  Returns whether the armed fault actually fired (so
// the sweep knows when it has walked past the last workload write).
func runCrashSweepCase(t *testing.T, crashAfter int) bool {
	t.Helper()
	c := newSweepCluster(t)
	h0, h1 := c.hosts[0], c.hosts[1]
	vr1 := ids.VolumeReplicaHandle{Vol: c.vol, Replica: 2}

	lay0, err := h0.Mount(c.vol, logical.MostRecent)
	if err != nil {
		t.Fatal(err)
	}
	root0, err := lay0.Root()
	if err != nil {
		t.Fatal(err)
	}
	lay1, err := h1.Mount(c.vol, logical.MostRecent)
	if err != nil {
		t.Fatal(err)
	}
	root1, err := lay1.Root()
	if err != nil {
		t.Fatal(err)
	}

	dev := h1.Device(vr1)
	if dev == nil {
		t.Fatal("no device for host 1")
	}
	dev.FaultAfterWrites(crashAfter)

	// Mixed create/write/rename workload on both hosts.  Host 1's local
	// ops die mid-flight once the disk crashes — exactly like a power
	// failure — so their errors are expected, not checked.  Host 0's
	// notifications keep arriving and keep (best-effort) journaling into
	// host 1's dying disk.  No daemon passes run in the window, so no
	// entry is dropped and the durable-subset property must hold.
	for i := 0; i < 4; i++ {
		f, err := root0.Create(fmt.Sprintf("a%d", i), false)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte(fmt.Sprintf("h0 v%d", i))); err != nil {
			t.Fatal(err)
		}
		if g, err := root1.Create(fmt.Sprintf("b%d", i), false); err == nil {
			_ = vnode.WriteFile(g, []byte(fmt.Sprintf("h1 v%d", i)))
		}
		if i > 0 {
			_ = root1.Rename(fmt.Sprintf("b%d", i-1), root1, fmt.Sprintf("c%d", i-1))
		}
	}

	pre := pendingSet(h1, c.vol)
	fired := dev.Faulted()

	h1.Crash()
	if err := h1.Restart(); err != nil {
		t.Fatalf("crashAfter=%d: restart: %v", crashAfter, err)
	}

	// Contract 1: the rebooted replica is structurally clean.
	if probs, err := h1.Fsck(); err != nil {
		t.Fatalf("crashAfter=%d: fsck: %v", crashAfter, err)
	} else if len(probs) != 0 {
		t.Fatalf("crashAfter=%d: fsck found: %v", crashAfter, probs)
	}

	// Contract 2: the journal-recovered NVC is a subset of the pre-crash
	// in-memory cache (appends are best-effort; a lost tail loses entries,
	// never invents them — reconciliation re-finds anything lost).
	for k := range pendingSet(h1, c.vol) {
		if !pre[k] {
			t.Fatalf("crashAfter=%d: recovered NVC entry %s never existed pre-crash (pre=%v)", crashAfter, k, pre)
		}
	}

	// Contract 3: the cluster still converges.  (The rescan flag makes the
	// first propagation pass reconcile, covering anything the dying journal
	// dropped.)
	for round := 0; round < 8; round++ {
		if _, err := h0.PropagateOnce(); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.PropagateOnce(); err != nil {
			t.Fatal(err)
		}
		if _, err := h0.ReconcileOnce(); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.ReconcileOnce(); err != nil {
			t.Fatal(err)
		}
		if len(pendingSet(h0, c.vol)) == 0 && len(pendingSet(h1, c.vol)) == 0 {
			break
		}
	}
	lay, err := h1.Mount(c.vol, logical.MostRecent)
	if err != nil {
		t.Fatal(err)
	}
	newRoot1, err := lay.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f, err := newRoot1.Lookup(fmt.Sprintf("a%d", i))
		if err != nil {
			t.Fatalf("crashAfter=%d: host 0's a%d lost: %v", crashAfter, i, err)
		}
		data, err := vnode.ReadFile(f)
		if err != nil || string(data) != fmt.Sprintf("h0 v%d", i) {
			t.Fatalf("crashAfter=%d: a%d = %q, %v", crashAfter, i, data, err)
		}
	}
	return fired
}

// TestCrashAtEveryWrite power-fails host 1's disk after every possible
// write count in a mixed workload, then restarts and verifies: clean fsck,
// durable NVC ⊆ pre-crash NVC, and full convergence.  The sweep ends when
// the armed countdown outlives the whole workload.
func TestCrashAtEveryWrite(t *testing.T) {
	const maxSweep = 3000
	crashAfter := 0
	for ; crashAfter <= maxSweep; crashAfter++ {
		if !runCrashSweepCase(t, crashAfter) {
			break
		}
	}
	if crashAfter > maxSweep {
		t.Fatalf("sweep did not terminate within %d offsets", maxSweep)
	}
	if crashAfter < 10 {
		t.Fatalf("workload performed only %d victim-disk writes; sweep is vacuous", crashAfter)
	}
	t.Logf("swept %d crash offsets", crashAfter)
}
