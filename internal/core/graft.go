package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/repl"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

// Volumes and autografting (paper §4).  A graft point is a special
// directory naming a volume; its entries form the graft table — one row per
// volume replica, mapping the replica id to the storage site's address.
// Because the rows are ordinary directory entries, "implicit use of the
// Ficus directory reconciliation mechanism" keeps the replicated graft
// table consistent with no special code (§4.3, §7).
//
// When pathname translation hits a graft point, the logical layer calls the
// host's graft hook: if the volume is already grafted the existing mount is
// used; otherwise the graft table rows locate a reachable volume replica
// and the volume is grafted on the fly — no global tables, no broadcast
// (§4.4).  Idle grafts are "quietly pruned at a later time".

// ErrNoReplicaReachable reports an autograft attempt that found no
// accessible replica of the target volume.
var ErrNoReplicaReachable = errors.New("core: autograft: no volume replica reachable")

// graftEntryName renders a graft-table row name for a replica.
func graftEntryName(rid ids.ReplicaID) string { return fmt.Sprintf("r%08x", uint32(rid)) }

func parseGraftEntryName(name string) (ids.ReplicaID, bool) {
	var v uint32
	if _, err := fmt.Sscanf(name, "r%08x", &v); err != nil {
		return 0, false
	}
	return ids.ReplicaID(v), true
}

// CreateGraftPoint creates, in the local replica of parentVol at slash path
// dirPath, a graft point named name targeting volume target, and populates
// its graft table with the given replica locations.  Like any directory
// update it propagates to the other replicas of parentVol through normal
// reconciliation.
func (h *Host) CreateGraftPoint(parentVol ids.VolumeHandle, dirPath, name string, target ids.VolumeHandle, locs []ReplicaLoc) error {
	layer := h.LocalReplica(parentVol)
	if layer == nil {
		return ErrNoLocalReplica
	}
	root, err := layer.Root()
	if err != nil {
		return err
	}
	dir, err := vnode.Walk(root, dirPath)
	if err != nil {
		return err
	}
	type grafter interface {
		MkGraft(name string, target ids.VolumeHandle) (vnode.Vnode, error)
	}
	g, ok := dir.(grafter)
	if !ok {
		return vnode.ENOTSUP
	}
	gp, err := g.MkGraft(name, target)
	if err != nil {
		return err
	}
	// The graft point's fid path = its directory path: recover from handle.
	_, gpDir, gpFid, err := physical.ParseHandle(gp.Handle())
	if err != nil {
		return err
	}
	gpPath := append(append([]ids.FileID(nil), gpDir...), gpFid)
	for _, loc := range locs {
		child, err := layer.NextID()
		if err != nil {
			return err
		}
		e := physical.Entry{
			Name:  graftEntryName(loc.ID),
			Child: child,
			Kind:  physical.KFile,
			Value: string(loc.Addr),
		}
		if err := layer.AppendEntry(gpPath, e); err != nil {
			return err
		}
	}
	return nil
}

// EvictFile discards the local replica's copy of the file at slash path
// within vol, keeping the name (selective storage, §4.1).  The host must
// store a replica of vol, and the file must have another stored copy to
// remain readable.
func (h *Host) EvictFile(vol ids.VolumeHandle, path string) error {
	layer := h.LocalReplica(vol)
	if layer == nil {
		return ErrNoLocalReplica
	}
	root, err := layer.Root()
	if err != nil {
		return err
	}
	v, err := vnode.Walk(root, path)
	if err != nil {
		return err
	}
	kind, dirPath, fid, err := physical.ParseHandle(v.Handle())
	if err != nil {
		return err
	}
	if kind.IsDir() {
		return vnode.EISDIR
	}
	return layer.EvictFileStorage(dirPath, fid)
}

// graftHook returns the logical layer's graft interception callback.
func (h *Host) graftHook(policy logical.Policy) logical.GraftHook {
	return func(target ids.VolumeHandle, gp vnode.Vnode) (vnode.Vnode, error) {
		// Already grafted?
		h.mu.Lock()
		if ge, ok := h.grafts[target]; ok {
			ge.lastUse = h.clock
			lay := ge.layer
			h.mu.Unlock()
			return lay.Root()
		}
		h.mu.Unlock()

		// Read the graft table rows out of the graft point itself.
		ents, err := gp.Readdir()
		if err != nil {
			return nil, err
		}
		var locs []ReplicaLoc
		for _, e := range ents {
			rid, ok := parseGraftEntryName(e.Name)
			if !ok || e.Value == "" {
				continue
			}
			locs = append(locs, ReplicaLoc{ID: rid, Addr: simnet.Addr(e.Value)})
		}
		if len(locs) == 0 {
			return nil, ErrNoReplicaReachable
		}
		// Probe for a reachable replica before grafting.
		reachable := false
		for _, loc := range locs {
			if loc.Addr == h.addr {
				if h.LocalReplica(target) != nil {
					reachable = true
					break
				}
				continue
			}
			c := repl.NewClient(h.snHost, loc.Addr, ids.VolumeReplicaHandle{Vol: target, Replica: loc.ID})
			if c.Ping() == nil {
				reachable = true
				break
			}
		}
		if !reachable {
			return nil, ErrNoReplicaReachable
		}
		h.SetLocations(target, locs)
		lay, err := h.Mount(target, policy)
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		// Another walker may have grafted concurrently; keep the first.
		if ge, ok := h.grafts[target]; ok {
			ge.lastUse = h.clock
			lay = ge.layer
		} else {
			h.grafts[target] = &graftEntry{layer: lay, lastUse: h.clock}
		}
		h.mu.Unlock()
		return lay.Root()
	}
}

// GraftedVolumes lists currently grafted volumes.
func (h *Host) GraftedVolumes() []ids.VolumeHandle {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ids.VolumeHandle, 0, len(h.grafts))
	for v := range h.grafts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return vhLess(out[i], out[j]) })
	return out
}

// Tick advances the graft idle clock (a stand-in for wall-clock time in the
// deterministic simulation).
func (h *Host) Tick() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clock++
}

// PruneGrafts removes graft-table mounts idle for more than maxIdle ticks,
// unless a file in a local replica of the grafted volume is still open ("a
// graft is implicitly maintained as long as a file within the grafted
// volume replica is being used", §4.4).  Returns how many were pruned.
func (h *Host) PruneGrafts(maxIdle uint64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	pruned := 0
	for vol, ge := range h.grafts {
		if h.clock-ge.lastUse <= maxIdle {
			continue
		}
		busy := false
		for vr, lr := range h.replicas {
			if vr.Vol == vol && lr.layer.OpenFiles() > 0 {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		delete(h.grafts, vol)
		pruned++
	}
	return pruned
}
