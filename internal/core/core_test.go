package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

// cluster is a 3-host rig with one volume replicated on all three.
type cluster struct {
	net   *simnet.Network
	hosts []*Host
	vol   ids.VolumeHandle
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{net: simnet.New(1)}
	for i := 0; i < n; i++ {
		addr := simnet.Addr(string(rune('a' + i)))
		c.hosts = append(c.hosts, NewHost(c.net, addr, ids.AllocatorID(i+1)))
	}
	vol, rid, err := c.hosts[0].CreateVolume(nil)
	if err != nil {
		t.Fatal(err)
	}
	c.vol = vol
	locs := []ReplicaLoc{{ID: rid, Addr: c.hosts[0].Addr()}}
	for i := 1; i < n; i++ {
		newID := ids.ReplicaID(i + 1)
		if err := c.hosts[i].AddReplica(vol, newID, locs[0], nil); err != nil {
			t.Fatal(err)
		}
		locs = append(locs, ReplicaLoc{ID: newID, Addr: c.hosts[i].Addr()})
	}
	for _, h := range c.hosts {
		h.SetLocations(vol, locs)
	}
	return c
}

func (c *cluster) mount(t *testing.T, i int) vnode.Vnode {
	t.Helper()
	lay, err := c.hosts[i].Mount(c.vol, logical.MostRecent)
	if err != nil {
		t.Fatal(err)
	}
	root, err := lay.Root()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func (c *cluster) settle(t *testing.T) {
	t.Helper()
	for round := 0; round < 2; round++ {
		for _, h := range c.hosts {
			if _, err := h.ReconcileOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCreateVolumeAndMount(t *testing.T) {
	c := newCluster(t, 3)
	root := c.mount(t, 0)
	f, err := root.Create("hello", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("world")); err != nil {
		t.Fatal(err)
	}
	// Visible from another host immediately (read-through to the newest
	// copy under MostRecent).
	root1 := c.mount(t, 1)
	g, err := root1.Lookup("hello")
	if err != nil {
		t.Fatal(err)
	}
	data, err := vnode.ReadFile(g)
	if err != nil || string(data) != "world" {
		t.Fatalf("%q %v", data, err)
	}
}

func TestVolumeHandlesDistinctAcrossAllocators(t *testing.T) {
	net := simnet.New(1)
	h1 := NewHost(net, "x", 100)
	h2 := NewHost(net, "y", 200)
	v1, _, err := h1.CreateVolume(nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := h2.CreateVolume(nil)
	if err != nil {
		t.Fatal(err)
	}
	v3, _, err := h1.CreateVolume(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 || v1 == v3 || v2 == v3 {
		t.Fatalf("volume handles collide: %v %v %v", v1, v2, v3)
	}
}

func TestNotificationAndPropagation(t *testing.T) {
	c := newCluster(t, 3)
	root := c.mount(t, 0)
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	// Hosts b and c received notifications into their new-version caches.
	if c.hosts[1].NotificationsSeen() == 0 || c.hosts[2].NotificationsSeen() == 0 {
		t.Fatalf("notifications: b=%d c=%d", c.hosts[1].NotificationsSeen(), c.hosts[2].NotificationsSeen())
	}
	pending := c.hosts[1].LocalReplicas()[0].PendingVersions()
	if len(pending) == 0 {
		t.Fatal("no pending versions on host b")
	}
	// The propagation daemon pulls the new version.
	stats, err := c.hosts[1].PropagateOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Changed() {
		t.Fatalf("propagation pulled nothing: %v", stats)
	}
	lb := c.hosts[1].LocalReplicas()[0]
	pb, _ := lb.Root()
	vb, err := pb.Lookup("f")
	if err != nil {
		t.Fatalf("replica b missing f after propagation: %v", err)
	}
	data, _ := vnode.ReadFile(vb)
	if string(data) != "v1" {
		t.Fatalf("replica b has %q", data)
	}
}

func TestPartitionedUpdateThenReconcile(t *testing.T) {
	c := newCluster(t, 2)
	rootA := c.mount(t, 0)
	if _, err := rootA.Create("doc", true); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	// Partition; both sides update the same file.
	c.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	fA, err := rootA.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fA.WriteAt([]byte("side a"), 0); err != nil {
		t.Fatalf("partitioned update on a: %v", err)
	}
	rootB := c.mount(t, 1)
	fB, err := rootB.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fB.WriteAt([]byte("side b"), 0); err != nil {
		t.Fatalf("partitioned update on b: %v", err)
	}

	// Heal and reconcile: the conflict must surface on both hosts' logs.
	c.net.Heal()
	c.settle(t)
	confA := c.hosts[0].LocalReplicas()[0].Conflicts()
	confB := c.hosts[1].LocalReplicas()[0].Conflicts()
	if len(confA) != 1 || len(confB) != 1 {
		t.Fatalf("conflicts a=%d b=%d", len(confA), len(confB))
	}
}

func TestPartitionedDirectoryUpdatesAutoRepair(t *testing.T) {
	c := newCluster(t, 2)
	c.settle(t)
	c.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	rootA := c.mount(t, 0)
	rootB := c.mount(t, 1)
	if _, err := rootA.Create("new", true); err != nil {
		t.Fatal(err)
	}
	if _, err := rootB.Create("new", true); err != nil {
		t.Fatal(err)
	}
	c.net.Heal()
	c.settle(t)
	entsA, _ := rootA.Readdir()
	entsB, _ := rootB.Readdir()
	if len(entsA) != 2 || len(entsB) != 2 {
		t.Fatalf("auto-repair failed: a=%v b=%v", entsA, entsB)
	}
	// No file conflicts were logged for the directory collision.
	if n := len(c.hosts[0].LocalReplicas()[0].Conflicts()); n != 0 {
		t.Fatalf("%d spurious file conflicts", n)
	}
}

func TestAddReplicaRequiresReachableSeed(t *testing.T) {
	c := newCluster(t, 2)
	h3 := NewHost(c.net, "z", 99)
	c.net.Partition([]simnet.Addr{"z"}, []simnet.Addr{"a", "b"})
	err := h3.AddReplica(c.vol, 9, ReplicaLoc{ID: 1, Addr: "a"}, nil)
	if err == nil {
		t.Fatal("AddReplica succeeded with unreachable seed")
	}
	c.net.Heal()
	if err := h3.AddReplica(c.vol, 9, ReplicaLoc{ID: 1, Addr: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	if h3.LocalReplica(c.vol) == nil {
		t.Fatal("replica not stored")
	}
}

func TestMountUnknownVolume(t *testing.T) {
	c := newCluster(t, 1)
	ghost := ids.VolumeHandle{Allocator: 42, Volume: 42}
	if _, err := c.hosts[0].Mount(ghost, logical.MostRecent); !errors.Is(err, ErrUnknownVolume) {
		t.Fatalf("err = %v", err)
	}
}

func TestAccessorPlumbing(t *testing.T) {
	c := newCluster(t, 2)
	h := c.hosts[0]
	if h.Addr() != "a" || h.Allocator() != 1 || h.SimHost() == nil {
		t.Fatal("identity accessors")
	}
	reps := h.LocalReplicas()
	if len(reps) != 1 {
		t.Fatalf("replicas %v", reps)
	}
	vr := reps[0].VolumeReplica()
	if h.Device(vr) == nil || h.UFS(vr) == nil {
		t.Fatal("storage accessors")
	}
	if h.Device(ids.VolumeReplicaHandle{}) != nil || h.UFS(ids.VolumeReplicaHandle{}) != nil {
		t.Fatal("bogus handles should return nil")
	}
	locs := h.Locations(c.vol)
	if len(locs) != 2 || locs[0].ID != 1 || locs[1].ID != 2 {
		t.Fatalf("locations %v", locs)
	}
}

// --- Volumes and autografting -------------------------------------------

// graftRig: volume "root" on hosts a+b; volume "proj" on host b only; a
// graft point /proj in the root volume targets it.
type graftRig struct {
	*cluster
	proj ids.VolumeHandle
}

func newGraftRig(t *testing.T) *graftRig {
	t.Helper()
	c := newCluster(t, 2)
	proj, prid, err := c.hosts[1].CreateVolume(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Put a file inside the project volume.
	projLay, err := c.hosts[1].Mount(proj, logical.MostRecent)
	if err != nil {
		t.Fatal(err)
	}
	projRoot, _ := projLay.Root()
	f, err := projRoot.Create("readme", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("project docs")); err != nil {
		t.Fatal(err)
	}
	// Graft point in the root volume (created at host a's replica).
	err = c.hosts[0].CreateGraftPoint(c.vol, "/", "proj", proj,
		[]ReplicaLoc{{ID: prid, Addr: c.hosts[1].Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	return &graftRig{cluster: c, proj: proj}
}

func TestAutograftAcrossHosts(t *testing.T) {
	r := newGraftRig(t)
	// Host a walks into /proj: the graft point must be intercepted, the
	// volume located from the graft-table entries and grafted on the fly.
	rootA := r.mount(t, 0)
	if len(r.hosts[0].GraftedVolumes()) != 0 {
		t.Fatal("graft table not empty before first walk")
	}
	inside, err := vnode.Walk(rootA, "proj/readme")
	if err != nil {
		t.Fatalf("walk through graft point: %v", err)
	}
	data, err := vnode.ReadFile(inside)
	if err != nil || string(data) != "project docs" {
		t.Fatalf("%q %v", data, err)
	}
	if len(r.hosts[0].GraftedVolumes()) != 1 {
		t.Fatal("volume not recorded in graft table")
	}
	// Second walk reuses the graft.
	if _, err := vnode.Walk(rootA, "proj/readme"); err != nil {
		t.Fatal(err)
	}
}

func TestAutograftPropagatesThroughReconciliation(t *testing.T) {
	r := newGraftRig(t)
	// Host b never saw CreateGraftPoint (it ran on a), but reconciliation
	// of the root volume carried the graft point and its table rows.
	rootB := r.mount(t, 1)
	inside, err := vnode.Walk(rootB, "proj/readme")
	if err != nil {
		t.Fatalf("host b walk through reconciled graft point: %v", err)
	}
	data, _ := vnode.ReadFile(inside)
	if string(data) != "project docs" {
		t.Fatalf("%q", data)
	}
}

func TestAutograftFailsWhenVolumeUnreachable(t *testing.T) {
	r := newGraftRig(t)
	r.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	rootA := r.mount(t, 0)
	_, err := vnode.Walk(rootA, "proj/readme")
	if err == nil {
		t.Fatal("walk succeeded with volume host partitioned away")
	}
	if len(r.hosts[0].GraftedVolumes()) != 0 {
		t.Fatal("unreachable volume cached in graft table")
	}
	// Heal: the walk now succeeds (autograft retries).
	r.net.Heal()
	if _, err := vnode.Walk(rootA, "proj/readme"); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestGraftPruning(t *testing.T) {
	r := newGraftRig(t)
	rootA := r.mount(t, 0)
	if _, err := vnode.Walk(rootA, "proj/readme"); err != nil {
		t.Fatal(err)
	}
	if len(r.hosts[0].GraftedVolumes()) != 1 {
		t.Fatal("not grafted")
	}
	// Not idle long enough: kept.
	r.hosts[0].Tick()
	if n := r.hosts[0].PruneGrafts(5); n != 0 {
		t.Fatalf("pruned too eagerly: %d", n)
	}
	// Idle past the limit: pruned.
	for i := 0; i < 10; i++ {
		r.hosts[0].Tick()
	}
	if n := r.hosts[0].PruneGrafts(5); n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	if len(r.hosts[0].GraftedVolumes()) != 0 {
		t.Fatal("graft survived pruning")
	}
	// The next walk regrafts transparently.
	if _, err := vnode.Walk(rootA, "proj/readme"); err != nil {
		t.Fatalf("walk after pruning: %v", err)
	}
}

func TestGraftPruningSparesBusyVolumes(t *testing.T) {
	r := newGraftRig(t)
	// Use the graft from host b, where the project volume replica is local,
	// so open counts are observable.
	rootB := r.mount(t, 1)
	f, err := vnode.Walk(rootB, "proj/readme")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vnode.OpenRead); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.hosts[1].Tick()
	}
	if n := r.hosts[1].PruneGrafts(5); n != 0 {
		t.Fatal("pruned a volume with open files")
	}
	if err := f.Close(vnode.OpenRead); err != nil {
		t.Fatal(err)
	}
	if n := r.hosts[1].PruneGrafts(5); n != 1 {
		t.Fatalf("pruned %d after close, want 1", n)
	}
}

func TestGraftEntryNameRoundTrip(t *testing.T) {
	for _, rid := range []ids.ReplicaID{0, 1, 0xffffffff} {
		got, ok := parseGraftEntryName(graftEntryName(rid))
		if !ok || got != rid {
			t.Fatalf("round trip %d -> %q -> %d %v", rid, graftEntryName(rid), got, ok)
		}
	}
	if _, ok := parseGraftEntryName("bogus"); ok {
		t.Fatal("parsed garbage")
	}
}

func TestCreateGraftPointRequiresLocalReplica(t *testing.T) {
	c := newCluster(t, 1)
	other := ids.VolumeHandle{Allocator: 9, Volume: 9}
	err := c.hosts[0].CreateGraftPoint(other, "/", "x", c.vol, nil)
	if !errors.Is(err, ErrNoLocalReplica) {
		t.Fatalf("err = %v", err)
	}
}

// TestDeltaPropagationThroughHealthGate pins the delta path to the
// propagation daemon's REAL peer plumbing: the daemon reaches remote origins
// through the health-gated peer wrapper, so that wrapper must forward
// PullBatchDelta — otherwise every pull silently degrades to whole-file and
// the block layer never earns its keep.  An append-one-block update must
// ship exactly the appended block and reassemble the rest from the pool.
func TestDeltaPropagationThroughHealthGate(t *testing.T) {
	const bs = physical.ChecksumBlockSize
	c := newCluster(t, 2)
	root := c.mount(t, 0)
	f, err := root.Create("big", true)
	if err != nil {
		t.Fatal(err)
	}
	base := append(bytes.Repeat([]byte{'a'}, bs), bytes.Repeat([]byte{'b'}, bs)...)
	if err := vnode.WriteFile(f, base); err != nil {
		t.Fatal(err)
	}
	if _, err := c.hosts[1].PropagateOnce(); err != nil {
		t.Fatal(err)
	}

	// Append one block at the origin; the next daemon pass on host b must
	// pull via the delta op: 1 block shipped by a, 2 reassembled by b.
	if err := vnode.WriteFile(f, append(base, bytes.Repeat([]byte{'c'}, bs)...)); err != nil {
		t.Fatal(err)
	}
	beforeShipped := c.hosts[0].BlockStats().BlocksShipped
	stats, err := c.hosts[1].PropagateOnce()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 1 {
		t.Fatalf("FilesPulled = %d, want 1", stats.FilesPulled)
	}
	if got := c.hosts[0].BlockStats().BlocksShipped - beforeShipped; got != 1 {
		t.Fatalf("origin shipped %d blocks for an append-one-block update, want 1", got)
	}
	if got := c.hosts[1].BlockStats().BlocksReused; got != 2 {
		t.Fatalf("puller reassembled %d blocks from its pool, want 2", got)
	}
	root1 := c.mount(t, 1)
	g, err := root1.Lookup("big")
	if err != nil {
		t.Fatal(err)
	}
	data, err := vnode.ReadFile(g)
	if err != nil || len(data) != 3*bs || data[2*bs] != 'c' {
		t.Fatalf("delta-installed file wrong: len=%d err=%v", len(data), err)
	}
}
