package core

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

// TestGossipPickDeterministic checks the rendezvous sample is a pure
// function of (rumor, relayer, replica set): stable across calls, bounded
// by k, drawn only from the volume's holders, and excluding the exclusions.
func TestGossipPickDeterministic(t *testing.T) {
	c := newCluster(t, 5)
	h := c.hosts[0]
	rumor := rumorHash(h.Addr(), 42)
	excl := map[simnet.Addr]bool{h.Addr(): true}

	h.mu.Lock()
	first := h.gossipPickLocked(c.vol, rumor, excl, 2)
	h.mu.Unlock()
	if len(first) != 2 {
		t.Fatalf("picked %d addrs, want 2", len(first))
	}
	holders := map[simnet.Addr]bool{}
	for i := 1; i < 5; i++ {
		holders[c.hosts[i].Addr()] = true
	}
	for _, a := range first {
		if !holders[a] {
			t.Fatalf("picked %q: excluded or not a holder", a)
		}
	}
	for i := 0; i < 10; i++ {
		h.mu.Lock()
		got := h.gossipPickLocked(c.vol, rumor, excl, 2)
		h.mu.Unlock()
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("call %d: pick %v != %v", i, got, first)
		}
	}
	// A different rumor id reshuffles (with 4 candidates choose 2, the odds
	// every one of 16 rumors lands on the same pair are negligible; this
	// guards against the score ignoring the rumor).
	varied := false
	for seq := uint64(0); seq < 16 && !varied; seq++ {
		h.mu.Lock()
		got := h.gossipPickLocked(c.vol, rumorHash(h.Addr(), 1000+seq), excl, 2)
		h.mu.Unlock()
		varied = !reflect.DeepEqual(got, first)
	}
	if !varied {
		t.Fatal("pick never varies with the rumor id")
	}
	// k larger than the candidate set returns everyone, sorted by address.
	h.mu.Lock()
	all := h.gossipPickLocked(c.vol, rumor, excl, 99)
	h.mu.Unlock()
	if len(all) != 4 {
		t.Fatalf("picked %d addrs with k=99, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("pick not address-sorted: %v", all)
		}
	}
}

// TestRumorSuppression checks first-seen semantics and FIFO eviction at the
// configured cap.
func TestRumorSuppression(t *testing.T) {
	c := newCluster(t, 1)
	h := c.hosts[0]
	h.ConfigureGossip(GossipConfig{Fanout: 1, SuppressionCap: 3})

	k := func(seq uint64) rumorKey { return rumorKey{src: "x", seq: seq} }
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.markRumorLocked(k(1)) {
		t.Fatal("fresh rumor reported as duplicate")
	}
	if h.markRumorLocked(k(1)) {
		t.Fatal("duplicate rumor reported as fresh")
	}
	h.markRumorLocked(k(2))
	h.markRumorLocked(k(3))
	// Cap is 3: admitting a fourth evicts the oldest (seq 1), nothing else.
	if !h.markRumorLocked(k(4)) {
		t.Fatal("rumor 4 rejected")
	}
	if !h.markRumorLocked(k(1)) {
		t.Fatal("evicted rumor 1 still remembered")
	}
	if h.markRumorLocked(k(3)) {
		t.Fatal("rumor 3 evicted too early")
	}
	if len(h.gossipSeen) > 3 || len(h.gossipFIFO) > 3 {
		t.Fatalf("cache overflow: %d seen, %d fifo", len(h.gossipSeen), len(h.gossipFIFO))
	}
}

// TestGossipRelayReachesAll drives a real update through a fanout-1 relay
// chain: with 4 hosts, fanout 1 and TTL 3, the origin notifies one peer and
// relays must carry the rumor to the remaining two.
func TestGossipRelayReachesAll(t *testing.T) {
	c := newCluster(t, 4)
	for _, h := range c.hosts {
		h.ConfigureGossip(GossipConfig{Fanout: 1, TTL: 3})
	}
	root := c.mount(t, 0)
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if got := c.hosts[i].NotificationsSeen(); got == 0 {
			t.Fatalf("host %d saw no notification through the relay chain", i)
		}
	}
	gs := c.hosts[0].GossipStats()
	if gs.RumorsOriginated == 0 {
		t.Fatal("origin recorded no rumor")
	}
	if gs.NoticesSent == 0 || gs.NoticesSent > gs.RumorsOriginated {
		t.Fatalf("origin sent %d notices for %d rumors with fanout 1",
			gs.NoticesSent, gs.RumorsOriginated)
	}
	var relayed uint64
	for _, h := range c.hosts {
		relayed += h.GossipStats().RumorsRelayed
	}
	if relayed == 0 {
		t.Fatal("no host relayed anything")
	}
}

// TestGossipTTLZeroNoRelay: TTL 0 means direct fanout only — receivers
// record the expired budget and relay nothing.
func TestGossipTTLZeroNoRelay(t *testing.T) {
	c := newCluster(t, 4)
	for _, h := range c.hosts {
		h.ConfigureGossip(GossipConfig{Fanout: 1, TTL: 0})
	}
	root := c.mount(t, 0)
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("x")); err != nil {
		t.Fatal(err)
	}
	var relayed, expired, accepted uint64
	for _, h := range c.hosts {
		gs := h.GossipStats()
		relayed += gs.RumorsRelayed
		expired += gs.RumorsExpired
		accepted += gs.RumorsAccepted
	}
	if relayed != 0 {
		t.Fatalf("relayed %d rumors with TTL 0", relayed)
	}
	if expired == 0 || accepted == 0 {
		t.Fatalf("expired=%d accepted=%d, want both > 0", expired, accepted)
	}
}

// TestGossipDuplicateSuppressedOnWire injects the same tagged rumor twice:
// the second copy must bump the suppression counter and leave the
// notification count at first-seen.
func TestGossipDuplicateSuppressedOnWire(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.hosts[0], c.hosts[1]
	h1.ConfigureGossip(GossipConfig{Fanout: 1, TTL: 2})

	msg := notifyMsg{
		Vol:    c.vol,
		File:   ids.FileID{Issuer: 1, Seq: 5},
		Origin: 1,
		Src:    h0.Addr(),
		Seq:    77,
		Hops:   2,
	}
	payload := encodeNotify(&msg)
	for i := 0; i < 3; i++ {
		h0.SimHost().Multicast(NotifyPort, payload, []simnet.Addr{h1.Addr()})
	}
	if got := h1.NotificationsSeen(); got != 1 {
		t.Fatalf("NotificationsSeen = %d after 3 copies, want 1", got)
	}
	gs := h1.GossipStats()
	if gs.RumorsAccepted != 1 || gs.RumorsSuppressed != 2 {
		t.Fatalf("accepted=%d suppressed=%d, want 1/2", gs.RumorsAccepted, gs.RumorsSuppressed)
	}
}

// TestGossipForeignVolumeDropped: a rumor for a volume this host stores no
// replica of is dropped and counted, feeding no cache and relaying nothing.
func TestGossipForeignVolumeDropped(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.hosts[0], c.hosts[1]
	h1.ConfigureGossip(GossipConfig{Fanout: 1, TTL: 2})

	// A volume only h0 stores.
	vol2, _, err := h0.CreateVolume(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := notifyMsg{
		Vol:    vol2,
		File:   ids.FileID{Issuer: 1, Seq: 1},
		Origin: 1,
		Src:    h0.Addr(),
		Seq:    9,
		Hops:   2,
	}
	h0.SimHost().Multicast(NotifyPort, encodeNotify(&msg), []simnet.Addr{h1.Addr()})
	gs := h1.GossipStats()
	if gs.RumorsForeign != 1 || gs.RumorsAccepted != 0 || gs.RumorsRelayed != 0 {
		t.Fatalf("foreign=%d accepted=%d relayed=%d, want 1/0/0",
			gs.RumorsForeign, gs.RumorsAccepted, gs.RumorsRelayed)
	}
	if got := h1.NotificationsSeen(); got != 0 {
		t.Fatalf("NotificationsSeen = %d for foreign rumor, want 0", got)
	}
}

// TestGossipLegacyUntaggedBypassesSuppression: untagged (pre-gossip)
// notifications are never suppressed or relayed, whatever the local config.
func TestGossipLegacyUntaggedBypassesSuppression(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.hosts[0], c.hosts[1]
	h1.ConfigureGossip(GossipConfig{Fanout: 2, TTL: 2})

	msg := notifyMsg{
		Vol:    c.vol,
		File:   ids.FileID{Issuer: 1, Seq: 5},
		Origin: 1,
	}
	payload := encodeNotify(&msg)
	h0.SimHost().Multicast(NotifyPort, payload, []simnet.Addr{h1.Addr()})
	h0.SimHost().Multicast(NotifyPort, payload, []simnet.Addr{h1.Addr()})
	if got := h1.NotificationsSeen(); got != 2 {
		t.Fatalf("NotificationsSeen = %d, want 2 (legacy datagrams coalesce in the NVC, not the wire)", got)
	}
	gs := h1.GossipStats()
	if gs.RumorsAccepted != 0 || gs.RumorsSuppressed != 0 || gs.RumorsRelayed != 0 {
		t.Fatalf("legacy datagram touched gossip counters: %+v", gs)
	}
}

// TestGossipCrashClearsSeenCache: the seen-rumor cache dies with the kernel,
// so a post-restart replay of an old rumor is accepted again (and coalesced
// by the durable NVC, not the wire filter).
func TestGossipCrashClearsSeenCache(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.hosts[0], c.hosts[1]
	h1.ConfigureGossip(GossipConfig{Fanout: 1, TTL: 1})

	msg := notifyMsg{
		Vol:    c.vol,
		File:   ids.FileID{Issuer: 1, Seq: 5},
		Origin: 1,
		Src:    h0.Addr(),
		Seq:    3,
		Hops:   1,
	}
	payload := encodeNotify(&msg)
	h0.SimHost().Multicast(NotifyPort, payload, []simnet.Addr{h1.Addr()})
	if gs := h1.GossipStats(); gs.RumorsAccepted != 1 {
		t.Fatalf("accepted=%d, want 1", gs.RumorsAccepted)
	}
	h1.Crash()
	if err := h1.Restart(); err != nil {
		t.Fatal(err)
	}
	h0.SimHost().Multicast(NotifyPort, payload, []simnet.Addr{h1.Addr()})
	if gs := h1.GossipStats(); gs.RumorsAccepted != 2 || gs.RumorsSuppressed != 0 {
		t.Fatalf("after restart accepted=%d suppressed=%d, want 2/0",
			gs.RumorsAccepted, gs.RumorsSuppressed)
	}
}
