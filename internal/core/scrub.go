package core

import (
	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/retry"
	"repro/internal/vnode"
)

// The background scrubber (integrity daemon): sweeps every local volume
// replica verifying stored file data against its sealed block checksums,
// quarantines versions that fail, and heals them by re-pulling a verified
// copy from a peer replica.  It runs exactly like the propagation daemon —
// driven by explicit passes on the virtual clock, health-gated toward
// peers, a no-op while the host is down — so simulations stay
// deterministic.

// ScrubResult summarizes one scrub pass over a host.
type ScrubResult struct {
	Scrub  physical.ScrubReport
	Repair recon.RepairStats
}

// ScrubOnce runs one integrity pass over every local volume replica: a
// full checksum sweep (detect + reseal + quarantine), then a repair pass
// that re-pulls due quarantined versions from peer replicas.  A down
// host's daemons do not run: the pass is a no-op.
func (h *Host) ScrubOnce() (ScrubResult, error) {
	if h.Down() {
		return ScrubResult{}, nil
	}
	h.advanceTick()
	var total ScrubResult
	for _, layer := range h.LocalReplicas() {
		rep, err := layer.ScrubPass()
		total.Scrub.Add(rep)
		if err != nil {
			return total, err
		}
		peers := h.replicaIDs(layer.Volume())
		total.Repair.Add(recon.Repair(layer, h.peerFinder(layer, true), peers, retry.Default()))
	}
	return total, nil
}

// replicaIDs lists the known replicas of vol in deterministic order.
func (h *Host) replicaIDs(vol ids.VolumeHandle) []ids.ReplicaID {
	locs := h.Locations(vol)
	out := make([]ids.ReplicaID, 0, len(locs))
	for _, loc := range locs {
		out = append(out, loc.ID)
	}
	return out
}

// IntegrityStats aggregates the integrity counters of every local volume
// replica.
func (h *Host) IntegrityStats() physical.IntegrityStats {
	var total physical.IntegrityStats
	for _, layer := range h.LocalReplicas() {
		total.Add(layer.IntegrityStats())
	}
	return total
}

// BlockStats aggregates the content-addressed block layer's counters of
// every local volume replica (pool gauges plus delta-propagation work).
func (h *Host) BlockStats() physical.BlockStats {
	var total physical.BlockStats
	for _, layer := range h.LocalReplicas() {
		total.Add(layer.BlockStats())
	}
	return total
}

// CorruptFile injects silent at-rest bit rot into the local replica's copy
// of the file at slash path within vol, flipping one bit of the stored
// data byte at off without touching the version vector or the sealed
// sidecar — exactly the damage profile the scrubber exists to catch.  Test
// and experiment instrumentation.
func (h *Host) CorruptFile(vol ids.VolumeHandle, path string, off uint64) error {
	layer := h.LocalReplica(vol)
	if layer == nil {
		return ErrNoLocalReplica
	}
	root, err := layer.Root()
	if err != nil {
		return err
	}
	v, err := vnode.Walk(root, path)
	if err != nil {
		return err
	}
	kind, dirPath, fid, err := physical.ParseHandle(v.Handle())
	if err != nil {
		return err
	}
	if kind.IsDir() {
		return vnode.EISDIR
	}
	return layer.CorruptData(dirPath, fid, off)
}
