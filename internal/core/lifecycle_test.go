package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/recon"
	"repro/internal/vnode"
)

// pendingSet renders a host's NVC for one volume as a comparable set.
func pendingSet(h *Host, vol ids.VolumeHandle) map[string]bool {
	out := map[string]bool{}
	l := h.LocalReplica(vol)
	if l == nil {
		return out
	}
	for _, nv := range l.PendingVersions() {
		out[fmt.Sprintf("%s@%d", nv.File, nv.Origin)] = true
	}
	return out
}

func TestCrashStopsServices(t *testing.T) {
	c := newCluster(t, 2)
	h0, h1 := c.hosts[0], c.hosts[1]
	root := c.mount(t, 0)
	if _, err := root.Create("pre", true); err != nil {
		t.Fatal(err)
	}

	h1.Crash()
	if !h1.Down() {
		t.Fatal("Down() false after Crash")
	}
	h1.Crash() // idempotent

	// The crashed host refuses local work.
	if _, err := h1.Mount(c.vol, logical.MostRecent); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Mount on crashed host: %v, want ErrHostDown", err)
	}
	if _, _, err := h1.CreateVolume(nil); !errors.Is(err, ErrHostDown) {
		t.Fatalf("CreateVolume on crashed host: %v, want ErrHostDown", err)
	}
	if s, err := h1.PropagateOnce(); err != nil || s != (recon.Stats{}) {
		t.Fatalf("PropagateOnce on crashed host: %+v %v", s, err)
	}
	if n, err := h1.CollectGarbage(); n != 0 || err != nil {
		t.Fatalf("CollectGarbage on crashed host: %d %v", n, err)
	}

	// Remote reads that would fail over to the crashed replica keep
	// working from the survivor, and the survivor's daemons tolerate the
	// dead peer.
	if _, err := root.Lookup("pre"); err != nil {
		t.Fatalf("survivor lost access: %v", err)
	}
	if _, err := h0.PropagateOnce(); err != nil {
		t.Fatalf("survivor propagate: %v", err)
	}
	if _, err := h0.ReconcileOnce(); err != nil {
		t.Fatalf("survivor reconcile: %v", err)
	}
}

func TestRestartRemountsAndRescans(t *testing.T) {
	c := newCluster(t, 2)
	h1 := c.hosts[1]
	root := c.mount(t, 0)

	// A write before the crash, and one while host 1 is down: the second
	// one's notification is lost forever and only the rescan can find it.
	f, err := root.Create("before", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("b")); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	h1.Crash()
	g, err := root.Create("while-down", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(g, []byte("w")); err != nil {
		t.Fatal(err)
	}

	if err := h1.Restart(); err != nil {
		t.Fatal(err)
	}
	if h1.Down() {
		t.Fatal("Down() true after Restart")
	}
	if err := h1.Restart(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := h1.RescanPending(); got != 1 {
		t.Fatalf("RescanPending = %d, want 1", got)
	}

	// The first daemon pass performs the owed rescan and finds the update
	// whose notification died with the crash.
	if _, err := h1.PropagateOnce(); err != nil {
		t.Fatal(err)
	}
	if got := h1.RescanPending(); got != 0 {
		t.Fatalf("RescanPending = %d after daemon pass, want 0", got)
	}
	c.settle(t)
	root1 := c.mount(t, 1)
	for _, name := range []string{"before", "while-down"} {
		v, err := root1.Lookup(name)
		if err != nil {
			t.Fatalf("lookup %s after restart: %v", name, err)
		}
		if _, err := vnode.ReadFile(v); err != nil {
			t.Fatalf("read %s after restart: %v", name, err)
		}
	}

	// The restarted replicas are structurally clean.
	if probs, err := h1.Fsck(); err != nil || len(probs) != 0 {
		t.Fatalf("fsck after restart: %v %v", probs, err)
	}
}

// TestRestartDrainsDurableNVC is the ISSUE's acceptance scenario: a host
// that crashed with a populated new-version cache must, after restart,
// drain the journal-recovered entries by pulling — without re-receiving a
// single notification (NotificationsSeen stays flat during the drain).
func TestRestartDrainsDurableNVC(t *testing.T) {
	c := newCluster(t, 2)
	h1 := c.hosts[1]
	root := c.mount(t, 0)

	// Updates on host 0 announce into host 1's NVC (journaled as they
	// arrive) but are deliberately never propagated before the crash.
	for i := 0; i < 5; i++ {
		f, err := root.Create(fmt.Sprintf("f%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := pendingSet(h1, c.vol)
	if len(before) == 0 {
		t.Fatal("no pending versions accumulated on host 1")
	}

	h1.Crash()
	if err := h1.Restart(); err != nil {
		t.Fatal(err)
	}

	// The journal restored the cache across the reboot.
	after := pendingSet(h1, c.vol)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("durable NVC mismatch:\npre-crash %v\nrecovered %v", before, after)
	}

	// Drain by pulling only: no notifications may arrive (host 0 is not
	// writing), so NotificationsSeen must stay flat.
	seen := h1.NotificationsSeen()
	for i := 0; i < 10 && len(pendingSet(h1, c.vol)) > 0; i++ {
		if _, err := h1.PropagateOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if remaining := pendingSet(h1, c.vol); len(remaining) != 0 {
		t.Fatalf("NVC not drained: %v", remaining)
	}
	if got := h1.NotificationsSeen(); got != seen {
		t.Fatalf("NotificationsSeen moved during drain: %d -> %d", seen, got)
	}

	// The drained versions are really here: read every file locally.
	root1 := c.mount(t, 1)
	for i := 0; i < 5; i++ {
		v, err := root1.Lookup(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		data, err := vnode.ReadFile(v)
		if err != nil || string(data) != fmt.Sprintf("v%d", i) {
			t.Fatalf("f%d: %q %v", i, data, err)
		}
	}
}

func TestRestartFailureKeepsHostDown(t *testing.T) {
	c := newCluster(t, 2)
	h1 := c.hosts[1]
	h1.Crash()

	// Scorch the device so the remount fails.
	devs := h1.Devices()
	if len(devs) != 1 {
		t.Fatalf("want 1 device, have %d", len(devs))
	}
	for bn := 0; bn < 8; bn++ {
		var junk [4096]byte
		devs[0].ClearFault()
		if err := devs[0].Write(bn, junk[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := h1.Restart(); err == nil {
		t.Fatal("Restart succeeded on a scorched device")
	}
	if !h1.Down() {
		t.Fatal("host came up after a failed restart")
	}
	if _, err := h1.Mount(c.vol, logical.MostRecent); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Mount after failed restart: %v, want ErrHostDown", err)
	}
}
