// Package invariant is the runtime companion to cmd/ficusvet: cheap,
// env-gated assertion hooks for properties the static analyzers cannot
// prove — version-vector monotonicity, Compare antisymmetry, new-version
// cache hygiene.  The hooks are disabled unless FICUS_INVARIANTS=1 is set
// in the environment, and call sites guard with Enabled() so a production
// run pays one inlinable boolean load per hook.
//
// A violated invariant panics with a *Violation: the bug is a corrupted
// replication state, and continuing would propagate the corruption to peer
// replicas.  The test suite runs with the hooks armed (make check / make
// ci), turning every existing test into an invariant probe.
package invariant

import (
	"fmt"
	"os"
)

// enabled is latched once at startup: the hooks sit on hot paths (every
// version-vector compare), so they gate on a plain bool, not an env lookup.
var enabled = os.Getenv("FICUS_INVARIANTS") == "1"

// Enabled reports whether invariant checking is armed.  Call sites with
// non-trivial check setup should guard with it:
//
//	if invariant.Enabled() {
//	    invariant.Checkf(expensiveProperty(), "...")
//	}
func Enabled() bool { return enabled }

// ForceForTest overrides the gate and returns a restore function; tests
// use it to exercise both the armed and disarmed paths without re-execing
// with a different environment.
func ForceForTest(v bool) (restore func()) {
	old := enabled
	enabled = v
	return func() { enabled = old }
}

// Violation is the panic value of a failed invariant.
type Violation struct {
	Msg string
}

func (v *Violation) Error() string { return "invariant violated: " + v.Msg }

// Failf reports a violated invariant unconditionally (the caller has
// already established the violation and that checking is enabled).
func Failf(format string, args ...any) {
	panic(&Violation{Msg: fmt.Sprintf(format, args...)})
}

// Checkf asserts cond when checking is enabled.  The arguments are
// evaluated eagerly; hot paths should guard with Enabled() first.
func Checkf(cond bool, format string, args ...any) {
	if !enabled || cond {
		return
	}
	Failf(format, args...)
}
