package invariant

import "testing"

func TestCheckfDisabledNeverFires(t *testing.T) {
	defer ForceForTest(false)()
	// A false condition must be ignored while disarmed.
	Checkf(false, "should not fire")
}

func TestCheckfEnabledFires(t *testing.T) {
	defer ForceForTest(true)()
	defer func() {
		r := recover()
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("panic value = %v (%T), want *Violation", r, r)
		}
		want := "invariant violated: counter 3 regressed to 2"
		if v.Error() != want {
			t.Fatalf("Error() = %q, want %q", v.Error(), want)
		}
	}()
	Checkf(false, "counter %d regressed to %d", 3, 2)
	t.Fatal("Checkf returned on a false condition while armed")
}

func TestCheckfEnabledTrueConditionPasses(t *testing.T) {
	defer ForceForTest(true)()
	Checkf(true, "should not fire")
}

// BenchmarkCheckfDisabled documents the disarmed cost: one branch on a
// package bool, no allocation (the varargs are the caller's only cost, and
// constant args do not escape).
func BenchmarkCheckfDisabled(b *testing.B) {
	defer ForceForTest(false)()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checkf(i < 0, "never")
	}
}

// BenchmarkEnabledGate documents the recommended hot-path guard.
func BenchmarkEnabledGate(b *testing.B) {
	defer ForceForTest(false)()
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		if Enabled() {
			n++
		}
	}
	if n != 0 {
		b.Fatal("gate leaked")
	}
}
