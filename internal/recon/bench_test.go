package recon

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
)

func benchPair(b *testing.B, files int) (*physical.Layer, *physical.Layer) {
	b.Helper()
	a, bb := newReplica(b, 1), newReplica(b, 2)
	root, _ := a.Root()
	for i := 0; i < files; i++ {
		f, err := root.Create(fmt.Sprintf("f%04d", i), true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
			b.Fatal(err)
		}
	}
	return a, bb
}

func BenchmarkReconcileInitialPull64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, bb := benchPair(b, 64)
		b.StartTimer()
		stats, err := ReconcileVolume(bb, a)
		if err != nil {
			b.Fatal(err)
		}
		if stats.FilesPulled != 64 {
			b.Fatalf("pulled %d", stats.FilesPulled)
		}
	}
	b.ReportMetric(64, "files/op")
}

func BenchmarkReconcileQuiescent64(b *testing.B) {
	a, bb := benchPair(b, 64)
	if _, err := ReconcileVolume(bb, a); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := ReconcileVolume(bb, a)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Changed() {
			b.Fatal("not quiescent")
		}
	}
}

func BenchmarkPropagateOneFile(b *testing.B) {
	a, bb := benchPair(b, 1)
	if _, err := ReconcileVolume(bb, a); err != nil {
		b.Fatal(err)
	}
	rootA, _ := a.Root()
	f, _ := rootA.Lookup("f0000")
	av, _ := f.Getattr()
	fid, _ := ids.ParseFileID(av.FileID)
	find := func(ids.ReplicaID) Peer { return a }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := f.WriteAt([]byte{byte(i)}, 0); err != nil {
			b.Fatal(err)
		}
		bb.NoteNewVersion(physical.RootPath(), fid, 1)
		b.StartTimer()
		if _, err := PropagateOnce(bb, find); err != nil {
			b.Fatal(err)
		}
	}
}
