package recon

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
	"repro/internal/vnode"
)

// faultyPeer wraps a real peer but fails FileInfo/FileData for one file id
// with a fixed error.
type faultyPeer struct {
	Peer
	bad ids.FileID
	err error
}

func (p *faultyPeer) FileInfo(dir []ids.FileID, fid ids.FileID) (physical.FileState, error) {
	if fid == p.bad {
		return physical.FileState{}, p.err
	}
	return p.Peer.FileInfo(dir, fid)
}

func (p *faultyPeer) FileData(dir []ids.FileID, fid ids.FileID) ([]byte, physical.FileState, error) {
	if fid == p.bad {
		return nil, physical.FileState{}, p.err
	}
	return p.Peer.FileData(dir, fid)
}

// mkRemoteFiles creates n files on the remote replica and returns their
// ids in PendingVersions order (ascending file id).
func mkRemoteFiles(t *testing.T, remote *physical.Layer, names ...string) []ids.FileID {
	t.Helper()
	root, err := remote.Root()
	if err != nil {
		t.Fatal(err)
	}
	fids := make([]ids.FileID, len(names))
	for i, name := range names {
		f, err := root.Create(name, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte("data-"+name)); err != nil {
			t.Fatal(err)
		}
		a, err := f.Getattr()
		if err != nil {
			t.Fatal(err)
		}
		if fids[i], err = ids.ParseFileID(a.FileID); err != nil {
			t.Fatal(err)
		}
	}
	return fids
}

// TestPropagatePassSurvivesEntryFailure is the regression test for the
// first-error starvation bug: a failing entry early in the pass must not
// abort the pass — every later pending entry still propagates, and the
// failure is reported through Stats and the aggregated error.
func TestPropagatePassSurvivesEntryFailure(t *testing.T) {
	local := newReplica(t, 1)
	remote := newReplica(t, 2)
	fids := mkRemoteFiles(t, remote, "bad", "good1", "good2")

	for _, fid := range fids {
		local.NoteNewVersion(physical.RootPath(), fid, 2)
	}
	boom := errors.New("on-disk corruption reading replica")
	peer := &faultyPeer{Peer: remote, bad: fids[0], err: boom}
	find := func(ids.ReplicaID) Peer { return peer }

	stats, err := PropagateOnce(local, find)
	if stats.FilesPulled != 2 {
		t.Fatalf("pulled %d files, want 2 (later entries starved by the failing first entry)", stats.FilesPulled)
	}
	if stats.Failures != 1 {
		t.Fatalf("stats %v: want 1 failure recorded", stats)
	}
	// The error is permanent, so it must surface — aggregated, after the
	// whole pass ran.
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("aggregated error = %v, want wrapped %v", err, boom)
	}
	// The failed entry stays pending with backoff state; the good ones
	// are gone.
	pend := local.PendingVersions()
	if len(pend) != 1 || pend[0].File != fids[0] {
		t.Fatalf("pending after pass: %+v", pend)
	}
	if pend[0].Attempts != 1 || pend[0].NotBefore <= local.DaemonTick() {
		t.Fatalf("no backoff recorded: %+v at tick %d", pend[0], local.DaemonTick())
	}
}

// TestPropagateAggregatesMultipleFailures: several failing entries all get
// attempted and all show up in the joined error.
func TestPropagateAggregatesMultipleFailures(t *testing.T) {
	local := newReplica(t, 1)
	remote := newReplica(t, 2)
	fids := mkRemoteFiles(t, remote, "bad1", "bad2")
	for _, fid := range fids {
		local.NoteNewVersion(physical.RootPath(), fid, 2)
	}
	boom := errors.New("permanent peer error")
	// Both entries fail: one bad peer per file via nested wrappers.
	peer := &faultyPeer{Peer: &faultyPeer{Peer: remote, bad: fids[1], err: boom}, bad: fids[0], err: boom}
	stats, err := PropagateOnce(local, func(ids.ReplicaID) Peer { return peer })
	if stats.Failures != 2 {
		t.Fatalf("stats %v", stats)
	}
	if err == nil || len(strings.Split(err.Error(), "\n")) != 2 {
		t.Fatalf("joined error should carry both failures: %v", err)
	}
}

// TestPropagateBacksOffUnreachableOrigin: an unreachable origin is not
// polled again until the backoff expires, and a fresh announcement lifts
// the deferral immediately.
func TestPropagateBacksOffUnreachableOrigin(t *testing.T) {
	local := newReplica(t, 1)
	remote := newReplica(t, 2)
	fids := mkRemoteFiles(t, remote, "f")
	local.NoteNewVersion(physical.RootPath(), fids[0], 2)

	cfg := PropagateConfig{Policy: retry.Policy{MaxAttempts: 1, BaseBackoff: 2, MaxBackoff: 16}}
	finderCalls := 0
	down := func(ids.ReplicaID) Peer { finderCalls++; return nil }

	// Pass 1: origin down -> deferred with backoff.
	stats, err := Propagate(local, down, cfg)
	if err != nil || stats.Deferred != 1 || finderCalls != 1 {
		t.Fatalf("pass 1: stats=%v err=%v calls=%d", stats, err, finderCalls)
	}
	notBefore := local.PendingVersions()[0].NotBefore
	if notBefore <= local.DaemonTick() {
		t.Fatalf("NotBefore %d not in the future of tick %d", notBefore, local.DaemonTick())
	}

	// While backing off, the daemon must not even consult the finder.
	for local.DaemonTick()+1 < notBefore {
		stats, err = Propagate(local, down, cfg)
		if err != nil || stats.Deferred != 1 {
			t.Fatalf("backoff pass: stats=%v err=%v", stats, err)
		}
	}
	if finderCalls != 1 {
		t.Fatalf("finder consulted %d times during backoff, want 1", finderCalls)
	}

	// Once due again, the origin is retried (and the attempt count grew).
	stats, err = Propagate(local, down, cfg)
	if err != nil || finderCalls != 2 {
		t.Fatalf("retry pass: stats=%v err=%v calls=%d", stats, err, finderCalls)
	}
	if pend := local.PendingVersions(); pend[0].Attempts != 2 {
		t.Fatalf("attempts %d, want 2", pend[0].Attempts)
	}

	// A fresh announcement lifts the deferral: the very next pass pulls.
	local.NoteNewVersion(physical.RootPath(), fids[0], 2)
	if nb := local.PendingVersions()[0].NotBefore; nb != 0 {
		t.Fatalf("announcement did not clear NotBefore: %d", nb)
	}
	stats, err = Propagate(local, func(ids.ReplicaID) Peer { return remote }, cfg)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("after heal: stats=%v err=%v", stats, err)
	}
	if len(local.PendingVersions()) != 0 {
		t.Fatal("entry not dropped after successful pull")
	}
}

// TestPropagateTransientFailureNotAnError: a transient (unreachable-class)
// per-entry failure shows up in Stats but not in the returned error — the
// daemon loop must keep running through normal partial operation.
func TestPropagateTransientFailureNotAnError(t *testing.T) {
	local := newReplica(t, 1)
	remote := newReplica(t, 2)
	fids := mkRemoteFiles(t, remote, "f")
	local.NoteNewVersion(physical.RootPath(), fids[0], 2)
	transient := &transientErr{}
	peer := &faultyPeer{Peer: remote, bad: fids[0], err: transient}
	stats, err := PropagateOnce(local, func(ids.ReplicaID) Peer { return peer })
	if err != nil {
		t.Fatalf("transient failure surfaced as pass error: %v", err)
	}
	if stats.Failures != 1 {
		t.Fatalf("stats %v", stats)
	}
	if pend := local.PendingVersions(); len(pend) != 1 || pend[0].Attempts != 1 {
		t.Fatalf("pending %+v", pend)
	}
}

type transientErr struct{}

func (*transientErr) Error() string   { return "link flapped" }
func (*transientErr) Transient() bool { return true }
