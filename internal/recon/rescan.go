package recon

import (
	"repro/internal/ids"
	"repro/internal/physical"
)

// Rescan runs one reconciliation pass of local against every peer replica
// in peers (in the given order, self entries skipped), tolerating per-peer
// failures: reconciliation is the anti-entropy safety net, so an
// unreachable or mid-pass-failing peer is normal life, not an error.
//
// It returns the accumulated stats and how many peers completed a full
// pass cleanly.  The caller uses the clean count to decide whether an
// obligation to rescan — e.g. the sweep a restarted host owes for update
// notifications that arrived while it was down (§3.3: reconciliation
// covers lost notifications) — has been met.
func Rescan(local *physical.Layer, find PeerFinder, peers []ids.ReplicaID) (Stats, int) {
	return RescanEach(local, find, peers, nil)
}

// RescanEach is Rescan with a per-peer completion callback: each is invoked
// once per non-self peer with whether the peer was reachable at all (the
// finder returned it) and, if so, how its pass ended.  The anti-entropy
// scheduler uses this to record which peers actually completed a clean pass,
// without changing Rescan's contract for existing callers (each may be nil).
func RescanEach(local *physical.Layer, find PeerFinder, peers []ids.ReplicaID, each func(rid ids.ReplicaID, reached bool, err error)) (Stats, int) {
	var total Stats
	clean := 0
	for _, rid := range peers {
		if rid == local.Replica() {
			continue
		}
		peer := find(rid)
		if peer == nil {
			if each != nil {
				each(rid, false, nil)
			}
			continue
		}
		stats, err := ReconcileVolume(local, peer)
		total.Add(stats)
		if err == nil {
			clean++
		}
		if each != nil {
			each(rid, true, err)
		}
	}
	return total, clean
}
