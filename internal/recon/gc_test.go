package recon

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/vnode"
)

func tombstoneCount(t *testing.T, l *physical.Layer) int {
	t.Helper()
	ds, err := l.DirEntries(physical.RootPath())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ds.Entries {
		if e.Deleted {
			n++
		}
	}
	return n
}

func TestTombstoneGCCollectsWhenAllReplicasAgree(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "doomed", "x")
	reconcileBoth(t, a, b)
	rootA, _ := a.Root()
	if err := rootA.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	reconcileBoth(t, a, b)
	if tombstoneCount(t, a) != 1 || tombstoneCount(t, b) != 1 {
		t.Fatalf("tombstones %d/%d, want 1/1", tombstoneCount(t, a), tombstoneCount(t, b))
	}
	// Both replicas carry the tombstone: collectable on both sides.
	nA, err := TombstoneGC(a, []Peer{b})
	if err != nil || nA != 1 {
		t.Fatalf("gc on a: %d, %v", nA, err)
	}
	nB, err := TombstoneGC(b, []Peer{a})
	if err != nil || nB != 1 {
		t.Fatalf("gc on b: %d, %v", nB, err)
	}
	if tombstoneCount(t, a)+tombstoneCount(t, b) != 0 {
		t.Fatal("tombstones survived GC")
	}
	// The deletion stays deleted through further reconciliation.
	sa, sb := reconcileBoth(t, a, b)
	if sa.Changed() || sb.Changed() {
		t.Fatalf("post-GC reconciliation changed state: %v %v", sa, sb)
	}
	if _, err := read(t, a, "doomed"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("deleted file resurrected: %v", err)
	}
}

func TestTombstoneGCRefusesWhileDeleteUnseen(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "doomed", "x")
	reconcileBoth(t, a, b)
	rootA, _ := a.Root()
	if err := rootA.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	// b has NOT seen the delete; its replica still holds the live entry.
	n, err := TombstoneGC(a, []Peer{b})
	if err != nil || n != 0 {
		t.Fatalf("gc collected %d with an unaware replica, %v", n, err)
	}
	// Reconciliation still propagates the delete afterwards.
	reconcileBoth(t, a, b)
	if _, err := read(t, b, "doomed"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("delete lost: %v", err)
	}
}

func TestTombstoneGCAsymmetricResurrectionSafety(t *testing.T) {
	// The scenario GC must never allow: a drops the tombstone while b still
	// has the live entry; the next merge would resurrect the file.  The
	// all-replicas condition prevents it; this test pins the behaviour.
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "x")
	reconcileBoth(t, a, b)
	rootA, _ := a.Root()
	rootA.Remove("f")
	// GC (correctly refuses because b lacks the tombstone), then reconcile.
	if n, _ := TombstoneGC(a, []Peer{b}); n != 0 {
		t.Fatal("unsafe collection")
	}
	if _, err := ReconcileVolume(b, a); err != nil {
		t.Fatal(err)
	}
	if _, err := ReconcileVolume(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := read(t, a, "f"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatal("file resurrected on a")
	}
	if _, err := read(t, b, "f"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatal("file resurrected on b")
	}
}

func TestTombstoneGCInSubdirectories(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	rootA, _ := a.Root()
	vnode.MkdirAll(rootA, "deep/dir")
	write(t, a, "deep/dir/f", "x")
	reconcileBoth(t, a, b)
	d, err := vnode.Walk(rootA, "deep/dir")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("f"); err != nil {
		t.Fatal(err)
	}
	reconcileBoth(t, a, b)
	n, err := TombstoneGC(a, []Peer{b})
	if err != nil || n != 1 {
		t.Fatalf("subdir gc: %d, %v", n, err)
	}
}

func TestTombstoneGCSkipsUnstoredPeerDirs(t *testing.T) {
	// b stores the root but not the subdirectory: it cannot veto the
	// subdirectory's tombstones (it can never reintroduce them).
	a, b := newReplica(t, 1), newReplica(t, 2)
	rootA, _ := a.Root()
	d, err := rootA.Mkdir("only-on-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("f", true); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("f"); err != nil {
		t.Fatal(err)
	}
	// Merge only the root entry into b, leaving the subdir unstored there.
	da, _ := a.DirEntries(physical.RootPath())
	if _, err := b.ApplyDirMerge(physical.RootPath(), da); err != nil {
		t.Fatal(err)
	}
	n, err := TombstoneGC(a, []Peer{b})
	if err != nil || n != 1 {
		t.Fatalf("gc with unstored peer dir: %d, %v", n, err)
	}
}
