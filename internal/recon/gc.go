package recon

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/physical"
)

// Tombstone garbage collection.  Directory reconciliation propagates
// deletions as tombstones; a tombstone may only be discarded once *every*
// replica of the volume carries it — otherwise a replica that never saw the
// delete would re-introduce the dead entry at the next merge.  The real
// Ficus tracks this with a two-phase algorithm in the reconciliation
// protocol (Guy's dissertation); this reproduction implements the
// snapshot-coordinated special case: when the caller can reach every
// replica of the volume, the tombstones present on all of them are
// collected from the local replica.  Each host runs the same collection, so
// tombstones disappear everywhere within one fully connected period; a
// replica that temporarily re-adopts a tombstone from a slower peer just
// re-collects it next round.

// ErrPeersIncomplete reports a GC attempt without the full replica set.
var ErrPeersIncomplete = errors.New("recon: tombstone GC requires all replicas reachable")

// TombstoneGC removes, from the local replica, every tombstone that all
// peers also carry.  peers must be the complete set of OTHER replicas of
// the volume; the caller verifies reachability (a vanished peer surfaces as
// an error mid-walk, which aborts that directory but never removes
// anything unsafely).  Returns the number of tombstones collected.
func TombstoneGC(local *physical.Layer, peers []Peer) (int, error) {
	return gcDir(local, peers, physical.RootPath())
}

func gcDir(local *physical.Layer, peers []Peer, dirPath []ids.FileID) (int, error) {
	lstate, err := local.DirEntries(dirPath)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return 0, nil
		}
		return 0, err
	}
	var localTombs []ids.FileID
	for _, e := range lstate.Entries {
		if e.Deleted {
			localTombs = append(localTombs, e.EID)
		}
	}
	collected := 0
	if len(localTombs) > 0 {
		// A tombstone is collectable unless some peer still holds the
		// entry LIVE (that peer has not yet seen the delete and would
		// re-introduce it at its next merge).  A peer with the tombstone,
		// with no trace of the entry (it never saw the insertion, or it
		// already collected), or with no replica of this directory at all,
		// cannot resurrect the entry and does not veto.
		candidate := make(map[ids.FileID]bool, len(localTombs))
		for _, eid := range localTombs {
			candidate[eid] = true
		}
		for _, p := range peers {
			rstate, err := p.DirEntries(dirPath)
			if err != nil {
				if errors.Is(err, physical.ErrNotStored) {
					continue
				}
				return 0, fmt.Errorf("recon: gc: peer %d: %w", p.Replica(), err)
			}
			for _, e := range rstate.Entries {
				if e.Live() && candidate[e.EID] {
					delete(candidate, e.EID)
				}
			}
		}
		if len(candidate) > 0 {
			drop := make([]ids.FileID, 0, len(candidate))
			for eid := range candidate {
				drop = append(drop, eid)
			}
			sort.Slice(drop, func(i, j int) bool { return fidLess(drop[i], drop[j]) })
			n, err := local.DropTombstones(dirPath, drop)
			if err != nil {
				return collected, err
			}
			collected += n
		}
	}
	// Recurse into stored child directories.
	for _, e := range lstate.Entries {
		if !e.Live() || !e.Kind.IsDir() {
			continue
		}
		childPath := append(append([]ids.FileID(nil), dirPath...), e.Child)
		if !local.HasDir(childPath) {
			continue
		}
		n, err := gcDir(local, peers, childPath)
		collected += n
		if err != nil {
			return collected, err
		}
	}
	return collected, nil
}

// fidLess orders file ids deterministically (issuer, then sequence), so
// tombstone collection touches the directory in the same order on every
// replica and in every replayed run.
func fidLess(a, b ids.FileID) bool {
	if a.Issuer != b.Issuer {
		return a.Issuer < b.Issuer
	}
	return a.Seq < b.Seq
}
