package recon

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
	"repro/internal/vv"
)

// PeerFinder locates a pull source for a given replica; nil means the
// replica is currently unreachable (its new-version cache entries stay
// queued for a later attempt).  Propagate resolves every origin through the
// finder sequentially, before any pull runs, so implementations that probe
// (Ping) do so in deterministic order.
type PeerFinder func(ids.ReplicaID) Peer

// BatchPuller is the batched fast path of a propagation peer: one call
// answers a whole batch of conditional pulls, shipping file data only for
// entries whose remote version dominates the local vector.  *physical.Layer
// (co-resident origin) and repl.Client (remote origin, one RPC per batch)
// both provide it.  Peers without it — or passes with DisableBatch set —
// fall back to the per-file FileInfo/FileData protocol.
type BatchPuller interface {
	PullBatch([]physical.PullRequest) ([]physical.PullResult, error)
}

var _ BatchPuller = (*physical.Layer)(nil)

// DeltaPuller is the block-delta fast path (wire v3): the puller advertises
// the block addresses it already holds, and the origin answers PullData
// entries as (manifest, missing blocks) so unchanged blocks never ship.
// *physical.Layer provides it directly; repl.Client provides it with
// transparent per-peer downgrade, answering whole-file pulls when the far
// side predates the delta op — so a DeltaPuller's results must be handled
// both ways (Manifest set, or plain Data).
type DeltaPuller interface {
	BatchPuller
	PullBatchDelta([]physical.PullRequest, []physical.BlockAddr) ([]physical.PullResult, error)
}

var _ DeltaPuller = (*physical.Layer)(nil)

// LatencyReporter is an optional peer capability: the virtual ticks the
// peer's most recent operation spent on the wire.  repl.Client (and the
// health wrappers around it) provide it; a co-resident physical.Layer does
// not — local pulls are free in virtual time.
type LatencyReporter interface {
	LastElapsed() uint64
}

// SlowReporter is an optional peer capability: whether the caller's health
// tracking currently considers this peer Slow (latency EWMA above the slow
// threshold).  A Slow primary with a faster alternate is shed up front.
type SlowReporter interface {
	SlowPeer() bool
}

// AddrKeyer is an optional peer capability: a stable identity for the
// peer's host, used by the per-peer in-flight cap.  Peers without one (the
// co-resident layer) are never capped — local pulls cost no wire time.
type AddrKeyer interface {
	PeerKey() string
}

// PropagateConfig tunes one propagation pass.
type PropagateConfig struct {
	// Policy classifies per-entry errors and spaces the retries of failed
	// entries across later passes.  Zero value: retry.Default().
	Policy retry.Policy
	// Workers bounds how many origins are pulled concurrently (default 4).
	// Results are always applied in sorted origin order, so the worker
	// count affects wall time only, never the outcome.
	Workers int
	// DisableBatch forces the sequential per-file pull protocol even when
	// the peer supports batched pulls (the benchmark baseline).
	DisableBatch bool
	// DisableDelta forces whole-file batched pulls even when the peer
	// supports block-delta pulls (the benchmark baseline for E13).
	DisableDelta bool

	// HedgeAfter enables hedged batched pulls: when an origin's pull costs
	// more than HedgeAfter virtual ticks (or fails in transit) and FindHedge
	// knows another replica holding the same versions, a backup pull is
	// issued to it — in virtual time, at tick HedgeAfter — and the first
	// answer wins.  0 disables hedging.
	HedgeAfter uint64
	// FindHedge locates the next-healthiest alternate source for an
	// origin's versions (never the origin itself); nil or a nil return
	// disables hedging for that origin.
	FindHedge func(ids.ReplicaID) Peer
	// TickBudget bounds the virtual makespan of one pass: once the pull
	// waves have consumed the budget, every remaining due entry is left for
	// the next pass (counted in Stats.BudgetDeferred).  The first wave
	// always runs, so a pass makes progress under any budget.  0 = no bound.
	TickBudget uint64
	// PeerInflight caps how many origins may pull from the same peer host
	// concurrently (per wave) — backpressure that keeps one slow host from
	// absorbing the whole worker pool.  0 = no cap.
	PeerInflight int
	// OnPullTicks, when set, receives each origin pull's effective virtual
	// latency (after hedging), in deterministic sorted-origin order — the
	// benchmarks' percentile probe.
	OnPullTicks func(uint64)
}

// PropagateOnce runs one pass of the update propagation daemon under the
// default configuration (see Propagate).
func PropagateOnce(local *physical.Layer, find PeerFinder) (Stats, error) {
	return Propagate(local, find, PropagateConfig{Policy: retry.Default()})
}

// Propagate runs one pass of the update propagation daemon (paper §3.2):
// "An update propagation daemon consults this [new-version] cache to see
// what new replica versions should be propagated in, and performs the
// propagation when it deems it appropriate to expend the effort."
//
// The pass pulls each pending notification from its originating replica:
//
//   - remote dominates         -> install via the single-file atomic commit
//   - equal or local dominates -> drop the notification (stale news)
//   - concurrent               -> report a conflict to the owner and drop
//   - origin unreachable       -> keep the entry, backed off for later
//
// Due entries are grouped by origin: each origin is consulted once via the
// finder and pulled with a single batched conditional pull (peers without
// the batch op fall back to per-file pulls).  Origins run in waves through
// a bounded worker pool under the backpressure knobs (TickBudget,
// PeerInflight), optionally hedged (HedgeAfter/FindHedge); but every state
// change to the local replica's daemon machinery — drops, deferrals,
// conflict reports, stats, the error join — is applied by a sequential
// reduce in sorted origin order, preserving entry order within each origin.
// Virtual time, seeded latency draws, and deterministic wave packing mean
// two passes over the same state produce identical Stats, conflict logs,
// and backoff schedules regardless of worker interleaving.
//
// Partial operation is the normal status: a failure on one entry never
// starves the rest of the pass.  Failed entries stay in the new-version
// cache with their attempt count bumped and their next attempt deferred
// under the policy's backoff, so a flapping origin is polled ever more
// rarely instead of on every pass.  Transient failures are reported only
// through Stats (Deferred/Failures); the returned error aggregates
// permanent, corruption-class errors alone.
//
// Directories are propagated by replaying operations, not by copying
// ("simply copying directory contents is incorrect"), so a notification
// about a directory triggers a directory reconciliation against the origin
// (run in the sequential reduce, since it mutates shared subtrees).
func Propagate(local *physical.Layer, find PeerFinder, cfg PropagateConfig) (Stats, error) {
	if cfg.Policy.MaxAttempts == 0 && cfg.Policy.BaseBackoff == 0 {
		cfg.Policy = retry.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	now := local.AdvanceDaemonTick()
	var stats Stats
	var errs []error

	// Split the due entries by origin.  Entries still backing off are
	// deferred without consulting the finder at all.
	byOrigin := make(map[ids.ReplicaID][]physical.NewVersion)
	for _, nv := range local.PendingVersions() {
		if nv.NotBefore > now {
			stats.Deferred++ // backing off; not due this pass
			continue
		}
		byOrigin[nv.Origin] = append(byOrigin[nv.Origin], nv)
	}
	origins := make([]ids.ReplicaID, 0, len(byOrigin))
	for origin := range byOrigin {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })

	// Resolve every origin's pull source up front, sequentially in sorted
	// order (ungated finders probe; sequential resolution keeps the probes
	// deterministic), then pack the reachable origins into waves: each wave
	// holds at most `workers` origins and at most PeerInflight origins per
	// peer host.
	peers := make([]Peer, len(origins))
	runnable := make([]int, 0, len(origins))
	for i, origin := range origins {
		peers[i] = find(origin)
		if peers[i] != nil {
			runnable = append(runnable, i)
		}
	}
	waves := packWaves(runnable, workers, cfg.PeerInflight, func(i int) string { return peerKeyOf(peers[i]) })

	// Pull each wave on the worker pool.  Workers only read remote state
	// and install file versions (individually atomic and commutative across
	// distinct files); all daemon bookkeeping waits for the reduce below.
	// The pass's virtual makespan is the sum over waves of the costliest
	// origin in each wave; once it exceeds the tick budget the remaining
	// waves are skipped — their entries stay due for the next pass.
	results := make([]originResult, len(origins))
	overBudget := false
	for _, wave := range waves {
		if overBudget {
			for _, i := range wave {
				results[i].budgetSkipped = true
			}
			continue
		}
		var wg sync.WaitGroup
		for _, i := range wave {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = runOrigin(local, peers[i], byOrigin[origins[i]], cfg)
			}(i)
		}
		wg.Wait()
		var waveMax uint64
		for _, i := range wave {
			if results[i].cost > waveMax {
				waveMax = results[i].cost
			}
		}
		stats.PassTicks += waveMax
		if cfg.TickBudget > 0 && stats.PassTicks >= cfg.TickBudget {
			overBudget = true
		}
	}

	// Deterministic merge: sorted origin order, entry order within each.
	fail := func(nv physical.NewVersion, err error) {
		stats.Failures++
		local.DeferPending(nv.File, now+cfg.Policy.Backoff(nv.Attempts+1, propagationKey(nv)))
		if !cfg.Policy.IsTransient(err) {
			errs = append(errs, fmt.Errorf("propagate %v from replica %d: %w", nv.File, nv.Origin, err))
		}
	}
	for oi, origin := range origins {
		entries := byOrigin[origin]
		res := results[oi]
		if res.budgetSkipped {
			// Tick budget exhausted before this origin's wave: leave the
			// entries untouched (no attempt was made, so no backoff bump) —
			// they are due again on the very next pass.  Partial progress,
			// not starvation.
			stats.BudgetDeferred += len(entries)
			continue
		}
		if res.peer == nil {
			// Origin unreachable (or health-gated): no attempt made.
			for _, nv := range entries {
				stats.Deferred++
				local.DeferPending(nv.File, now+cfg.Policy.Backoff(nv.Attempts+1, propagationKey(nv)))
			}
			continue
		}
		if res.shed {
			stats.SlowSheds++
		}
		if res.hedged {
			stats.Hedges++
		}
		if res.hedgeWon {
			stats.HedgeWins++
		}
		if res.pulled && cfg.OnPullTicks != nil {
			cfg.OnPullTicks(res.cost)
		}
		for i, nv := range entries {
			out := res.outcomes[i]
			switch out.kind {
			case outInstalled:
				stats.FilesPulled++
				local.DropPending(nv.File)
			case outDrop:
				local.DropPending(nv.File)
			case outSkipped:
				stats.Skipped++
				local.DropPending(nv.File)
			case outConflict:
				stats.Conflicts++
				local.ReportConflict(physical.Conflict{
					File:     nv.File,
					Dir:      append([]ids.FileID(nil), nv.Dir...),
					LocalVV:  out.localVV.Clone(),
					RemoteVV: out.remoteVV.Clone(),
					Remote:   res.src.Replica(),
					Note:     "concurrent update detected during update propagation",
				})
				local.DropPending(nv.File)
			case outIsDir:
				childPath := append(append([]ids.FileID(nil), nv.Dir...), nv.File)
				sub, err := ReconcileSubtree(local, res.src, childPath)
				stats.Add(sub)
				if err != nil {
					fail(nv, err)
				} else {
					local.DropPending(nv.File)
				}
			default: // outFailed
				fail(nv, out.err)
			}
		}
	}
	return stats, errors.Join(errs...)
}

// packWaves packs origin indices (already in sorted-origin order) into
// waves of at most workers origins with at most perPeer origins per peer
// key.  An origin that does not fit the current wave is considered for the
// next; packing depends only on the input order and the caps, so it is
// deterministic under any goroutine interleaving.
func packWaves(idxs []int, workers, perPeer int, key func(int) string) [][]int {
	var waves [][]int
	pending := idxs
	for len(pending) > 0 {
		wave := make([]int, 0, workers)
		counts := make(map[string]int)
		var rest []int
		for _, i := range pending {
			k := key(i)
			if len(wave) < workers && (perPeer <= 0 || k == "" || counts[k] < perPeer) {
				wave = append(wave, i)
				counts[k]++
			} else {
				rest = append(rest, i)
			}
		}
		waves = append(waves, wave)
		pending = rest
	}
	return waves
}

func peerKeyOf(p Peer) string {
	if ak, ok := p.(AddrKeyer); ok {
		return ak.PeerKey()
	}
	return ""
}

func elapsedOf(p Peer) uint64 {
	if lr, ok := p.(LatencyReporter); ok {
		return lr.LastElapsed()
	}
	return 0
}

func isSlow(p Peer) bool {
	if sr, ok := p.(SlowReporter); ok {
		return sr.SlowPeer()
	}
	return false
}

// samePeer reports whether two pull sources are the same endpoint (a hedge
// to the same host would wait in the same queue and win nothing).
func samePeer(a, b Peer) bool {
	ka, kb := peerKeyOf(a), peerKeyOf(b)
	if ka != "" || kb != "" {
		return ka == kb
	}
	return a.Replica() == b.Replica()
}

// propagationKey seeds the backoff jitter so distinct files retrying after
// the same outage spread across later passes instead of stampeding.
func propagationKey(nv physical.NewVersion) uint64 {
	return nv.File.Seq ^ uint64(nv.File.Issuer)<<32 ^ uint64(nv.Origin)<<48
}

type outcomeKind byte

const (
	outFailed    outcomeKind = iota // attempt failed; err explains
	outInstalled                    // version installed
	outDrop                         // stale news or remote tombstone; just drop
	outSkipped                      // data or container vanished; drop and count Skipped
	outConflict                     // concurrent histories; report to the owner
	outIsDir                        // directory: reconcile the subtree in the reduce
)

// entryOutcome is one entry's result as computed on the worker, applied
// later by the sequential reduce.
type entryOutcome struct {
	kind     outcomeKind
	err      error     // outFailed
	localVV  vv.Vector // outConflict
	remoteVV vv.Vector // outConflict
}

// originResult carries one origin's pull results back to the reduce.  A nil
// peer means the finder had no route to the origin.
type originResult struct {
	peer     Peer // the origin source the finder resolved (nil: unreachable)
	src      Peer // the source whose answers were applied (hedging may differ)
	outcomes []entryOutcome

	cost          uint64 // effective virtual ticks of this origin's pull
	pulled        bool   // a pull was actually attempted on the wire
	shed          bool   // Slow primary swapped for a faster alternate
	hedged        bool   // a backup pull was issued
	hedgeWon      bool   // ...and answered first
	budgetSkipped bool   // wave skipped by the tick budget; entries untouched
}

// hedgeInconclusiveError defers an entry whose only answer came from a
// backup replica that had not yet seen the version it was asked about: the
// backup's "stale" or "not stored" verdict proves nothing about the origin.
type hedgeInconclusiveError struct{}

func (hedgeInconclusiveError) Error() string {
	return "recon: hedged pull inconclusive (backup replica lacks the version)"
}

func (hedgeInconclusiveError) Transient() bool { return true }

// runOrigin pulls one origin's due entries on a worker goroutine.
func runOrigin(local *physical.Layer, peer Peer, entries []physical.NewVersion, cfg PropagateConfig) originResult {
	res := originResult{peer: peer, src: peer, outcomes: make([]entryOutcome, len(entries))}
	bp, batched := peer.(BatchPuller)
	if !batched || cfg.DisableBatch {
		var cost uint64
		for i, nv := range entries {
			res.outcomes[i] = attemptSequential(local, peer, nv, &cost)
		}
		res.cost, res.pulled = cost, true
		return res
	}
	runOriginBatched(local, peer, bp, entries, cfg, &res)
	return res
}

// batchPlan is one origin batch, built once and reusable by both the
// primary and a hedged backup pull (the requests carry the same local
// vectors either way).
type batchPlan struct {
	reqs   []physical.PullRequest
	reqIdx []int
	locals []vv.Vector
	delta  bool // local versions were indexed for a delta advertisement
}

// buildBatch assembles the conditional pull for one origin's entries,
// filling early outcomes for entries that fail locally.  When a delta-
// capable source will serve the batch, the local versions are indexed into
// the block pool so the advertisement can dedup against their blocks.
func buildBatch(local *physical.Layer, entries []physical.NewVersion, delta bool, outcomes []entryOutcome) batchPlan {
	plan := batchPlan{
		reqs:   make([]physical.PullRequest, 0, len(entries)),
		reqIdx: make([]int, 0, len(entries)),
		locals: make([]vv.Vector, len(entries)),
		delta:  delta,
	}
	for i, nv := range entries {
		linfo, err := local.FileInfo(nv.Dir, nv.File)
		switch {
		case err == nil:
			plan.locals[i] = linfo.Aux.VV
			plan.reqs = append(plan.reqs, physical.PullRequest{Dir: nv.Dir, File: nv.File, LocalVV: linfo.Aux.VV, HasLocal: true})
			if delta && !linfo.Aux.Type.IsDir() {
				// Best-effort — an entry that cannot be indexed (quarantined,
				// racing eviction) simply gains nothing from the delta and
				// pulls whole blocks; the install path verifies everything
				// regardless.
				_ = local.EnsureBlocks(nv.Dir, nv.File)
			}
		case errors.Is(err, physical.ErrNotStored):
			plan.reqs = append(plan.reqs, physical.PullRequest{Dir: nv.Dir, File: nv.File})
		default:
			outcomes[i] = entryOutcome{kind: outFailed, err: err}
			continue
		}
		plan.reqIdx = append(plan.reqIdx, i)
	}
	return plan
}

// doPull issues one batched conditional pull to src, preferring the delta
// op when src supports it and the pass allows it.  Returns the per-entry
// results and the pull's virtual latency.
func doPull(local *physical.Layer, src Peer, bp BatchPuller, plan batchPlan, cfg PropagateConfig) ([]physical.PullResult, uint64, error) {
	var results []physical.PullResult
	var err error
	if dp, ok := src.(DeltaPuller); ok && !cfg.DisableDelta {
		results, err = dp.PullBatchDelta(plan.reqs, local.PoolAddrs())
	} else {
		results, err = bp.PullBatch(plan.reqs)
	}
	cost := elapsedOf(src)
	if err == nil && len(results) != len(plan.reqs) {
		err = fmt.Errorf("pull batch: %d answers for %d requests", len(results), len(plan.reqs))
	}
	return results, cost, err
}

// conclusiveFromBackup reports whether a backup replica's answer stands on
// its own.  Data, a directory verdict, and a concurrent-history verdict are
// facts about versions the backup holds; "stale" and "not stored" may just
// mean the backup has not caught up, and must not drop the entry.
func conclusiveFromBackup(r *physical.PullResult) bool {
	switch r.Status {
	case physical.PullData, physical.PullIsDir, physical.PullConcurrent:
		return true
	default:
		return false
	}
}

// runOriginBatched issues one conditional pull for the whole batch — and,
// under the hedging config, a deterministic virtual-time race: the primary
// pull runs first; if its virtual cost exceeds HedgeAfter (or it failed in
// transit) a backup pull is issued to the next-healthiest replica holding
// the same versions, modeled as having started at tick HedgeAfter.  The
// source with the earlier virtual completion wins and its answers are
// applied; the loser's are discarded ("cancelled") — except that a backup's
// stale/not-stored verdicts never override the origin's answer, and when
// only the backup answered they defer the entry instead of dropping it.
func runOriginBatched(local *physical.Layer, peer Peer, bp BatchPuller, entries []physical.NewVersion, cfg PropagateConfig, res *originResult) {
	// Pick a backup before building the batch so delta indexing can account
	// for either source.
	primary, primaryBP := peer, bp
	var backup Peer
	var backupBP BatchPuller
	if cfg.HedgeAfter > 0 && cfg.FindHedge != nil {
		if b := cfg.FindHedge(entries[0].Origin); b != nil && !samePeer(b, peer) {
			if bbp, ok := b.(BatchPuller); ok {
				backup, backupBP = b, bbp
			}
		}
	}
	delta := !cfg.DisableDelta
	if _, ok := primary.(DeltaPuller); !ok {
		if _, ok := backup.(DeltaPuller); !ok || backup == nil {
			delta = false
		}
	}
	plan := buildBatch(local, entries, delta, res.outcomes)
	if len(plan.reqs) == 0 {
		return
	}
	res.pulled = true

	// Load shedding — the circuit-breaker half: a primary the health
	// tracker rates Slow is swapped for a faster alternate up front, so a
	// degrading peer loses traffic before it fails outright.
	if backup != nil && isSlow(primary) && !isSlow(backup) {
		primary, backup = backup, primary
		primaryBP, backupBP = backupBP, primaryBP
		res.shed = true
	}

	resP, costP, errP := doPull(local, primary, primaryBP, plan, cfg)
	if backup == nil || (errP == nil && costP <= cfg.HedgeAfter) {
		res.cost = costP
		res.src = primary
		if errP != nil {
			failBatch(plan, res.outcomes, errP)
			return
		}
		applyBatch(local, plan, resP, entries, res.outcomes)
		return
	}

	// Hedge: the backup pull starts, in virtual time, at tick HedgeAfter.
	res.hedged = true
	resB, costB, errB := doPull(local, backup, backupBP, plan, cfg)
	tB := cfg.HedgeAfter + costB
	switch {
	case errP == nil && errB == nil:
		if tB < costP {
			res.hedgeWon = true
			res.cost, res.src = tB, backup
			merged := make([]physical.PullResult, len(resP))
			for k := range resP {
				if conclusiveFromBackup(&resB[k]) {
					merged[k] = resB[k]
				} else {
					merged[k] = resP[k] // origin's verdict stands for stale/not-stored
				}
			}
			applyBatch(local, plan, merged, entries, res.outcomes)
			return
		}
		res.cost, res.src = costP, primary
		applyBatch(local, plan, resP, entries, res.outcomes)
	case errP == nil: // backup failed in transit; the primary answered
		res.cost, res.src = costP, primary
		applyBatch(local, plan, resP, entries, res.outcomes)
	case errB == nil: // only the backup answered
		res.hedgeWon = true
		res.cost, res.src = tB, backup
		guarded := make([]physical.PullResult, len(resB))
		for k := range resB {
			if conclusiveFromBackup(&resB[k]) {
				guarded[k] = resB[k]
			} else {
				guarded[k] = physical.PullResult{Status: physical.PullError, Err: hedgeInconclusiveError{}}
			}
		}
		applyBatch(local, plan, guarded, entries, res.outcomes)
	default: // both failed: the batch waited out both sources
		if tB > costP {
			res.cost = tB
		} else {
			res.cost = costP
		}
		res.src = primary
		failBatch(plan, res.outcomes, errP)
	}
}

// failBatch fails every entry that made it into the batch (each keeps its
// own backoff schedule).
func failBatch(plan batchPlan, outcomes []entryOutcome, err error) {
	for _, i := range plan.reqIdx {
		outcomes[i] = entryOutcome{kind: outFailed, err: err}
	}
}

// applyBatch maps the per-entry pull results onto outcomes, installing
// shipped versions through the single-file atomic commit.
func applyBatch(local *physical.Layer, plan batchPlan, results []physical.PullResult, entries []physical.NewVersion, outcomes []entryOutcome) {
	for k := range results {
		r := &results[k]
		i := plan.reqIdx[k]
		nv := entries[i]
		switch r.Status {
		case physical.PullData:
			// Install under the origin's sealed checksums, when it could
			// vouch for them: a payload damaged in flight (or served past a
			// bypassed verification) is rejected as a transient failure
			// before it touches disk, and the entry retries under backoff.
			// A delta answer reassembles from pool + shipped blocks first;
			// a missing block is transient (the pool moved under us) and
			// the entry retries with a fresh advertisement.
			var err error
			if r.Manifest != nil {
				err = local.InstallFileVersionDelta(nv.Dir, nv.File, r.Aux.Type, r.Manifest, r.Missing, r.Aux.VV, r.Aux.Nlink, r.Sum)
			} else {
				err = local.InstallFileVersionSum(nv.Dir, nv.File, r.Aux.Type, r.Data, r.Aux.VV, r.Aux.Nlink, r.Sum)
			}
			switch {
			case err == nil:
				outcomes[i] = entryOutcome{kind: outInstalled}
			case errors.Is(err, physical.ErrNotStored):
				// The containing directory is not stored locally (yet);
				// subtree reconciliation will materialize it first.
				outcomes[i] = entryOutcome{kind: outSkipped}
			default:
				outcomes[i] = entryOutcome{kind: outFailed, err: err}
			}
		case physical.PullStale, physical.PullNotStored:
			// Stale news, or the origin no longer stores the file (the
			// tombstone will arrive through directory reconciliation).
			outcomes[i] = entryOutcome{kind: outDrop}
		case physical.PullConcurrent:
			outcomes[i] = entryOutcome{kind: outConflict, localVV: plan.locals[i].Clone(), remoteVV: r.RemoteVV.Clone()}
		case physical.PullIsDir:
			outcomes[i] = entryOutcome{kind: outIsDir}
		case physical.PullError:
			outcomes[i] = entryOutcome{kind: outFailed, err: r.Err}
		default:
			outcomes[i] = entryOutcome{kind: outFailed, err: fmt.Errorf("pull batch: invalid status %d", r.Status)}
		}
	}
}

// attemptSequential is the per-file protocol for peers without the batch
// op: a FileInfo to compare vectors, then a FileData when the remote
// dominates — the original two-round-trip pull.  cost accumulates the
// virtual latency of each remote call.
func attemptSequential(local *physical.Layer, peer Peer, nv physical.NewVersion, cost *uint64) entryOutcome {
	rinfo, err := peer.FileInfo(nv.Dir, nv.File)
	*cost += elapsedOf(peer)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return entryOutcome{kind: outDrop}
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	if rinfo.Aux.Type.IsDir() {
		return entryOutcome{kind: outIsDir}
	}
	linfo, err := local.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return pullOutcome(local, peer, nv, cost)
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	switch linfo.Aux.VV.Compare(rinfo.Aux.VV) {
	case vv.Dominated:
		return pullOutcome(local, peer, nv, cost)
	case vv.Concurrent:
		return entryOutcome{kind: outConflict, localVV: linfo.Aux.VV.Clone(), remoteVV: rinfo.Aux.VV.Clone()}
	default:
		return entryOutcome{kind: outDrop} // stale news
	}
}

// pullOutcome fetches and installs one file version via the per-file
// protocol, installing under the attributes that came WITH the data (the
// file may have advanced between FileInfo and FileData).
func pullOutcome(local *physical.Layer, peer Peer, nv physical.NewVersion, cost *uint64) entryOutcome {
	data, rst, err := peer.FileData(nv.Dir, nv.File)
	*cost += elapsedOf(peer)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return entryOutcome{kind: outSkipped}
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	if err := local.InstallFileVersion(nv.Dir, nv.File, rst.Aux.Type, data, rst.Aux.VV, rst.Aux.Nlink); err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return entryOutcome{kind: outSkipped}
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	return entryOutcome{kind: outInstalled}
}

// Resolve installs a conflict resolution: newData becomes the file's
// contents under a version vector that dominates both conflicting histories
// (merge + a local bump), so the resolution propagates everywhere like any
// other update.  This is the owner-facing half of "detected and reported to
// the owner".
func Resolve(local *physical.Layer, c physical.Conflict, newData []byte) error {
	merged := vv.Merge(c.LocalVV, c.RemoteVV).Bump(local.Replica())
	return local.InstallFileVersion(c.Dir, c.File, physical.KFile, newData, merged, 1)
}
