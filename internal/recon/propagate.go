package recon

import (
	"errors"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/vv"
)

// PeerFinder locates a pull source for a given replica; nil means the
// replica is currently unreachable (its new-version cache entries stay
// queued for a later attempt).
type PeerFinder func(ids.ReplicaID) Peer

// PropagateOnce runs one pass of the update propagation daemon (paper
// §3.2): "An update propagation daemon consults this [new-version] cache to
// see what new replica versions should be propagated in, and performs the
// propagation when it deems it appropriate to expend the effort."
//
// For each pending notification the daemon pulls the announced file from
// the originating replica:
//
//   - remote dominates        -> install via the single-file atomic commit
//   - equal or local dominates -> drop the notification (stale news)
//   - concurrent              -> report a conflict to the owner and drop
//   - origin unreachable       -> keep the entry for a later pass
//
// Directories are propagated by replaying operations, not by copying
// ("simply copying directory contents is incorrect"), so a notification
// about a directory triggers a directory reconciliation against the origin.
func PropagateOnce(local *physical.Layer, find PeerFinder) (Stats, error) {
	var stats Stats
	for _, nv := range local.PendingVersions() {
		peer := find(nv.Origin)
		if peer == nil {
			continue // unreachable: retry later
		}
		done, err := propagateOne(local, peer, nv, &stats)
		if err != nil {
			return stats, err
		}
		if done {
			local.DropPending(nv.File)
		}
	}
	return stats, nil
}

func propagateOne(local *physical.Layer, peer Peer, nv physical.NewVersion, stats *Stats) (bool, error) {
	rinfo, err := peer.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			// The origin no longer stores the file (e.g. removed); the
			// tombstone will arrive through directory reconciliation.
			return true, nil
		}
		return false, nil // transient: keep pending
	}
	if rinfo.Aux.Type.IsDir() {
		childPath := append(append([]ids.FileID(nil), nv.Dir...), nv.File)
		sub, err := ReconcileSubtree(local, peer, childPath)
		stats.Add(sub)
		return err == nil, err
	}
	linfo, err := local.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			if err := pullFile(local, peer, nv.Dir, nv.File, rinfo, stats); err != nil {
				return false, err
			}
			return true, nil
		}
		return false, err
	}
	switch linfo.Aux.VV.Compare(rinfo.Aux.VV) {
	case vv.Dominated:
		if err := pullFile(local, peer, nv.Dir, nv.File, rinfo, stats); err != nil {
			return false, err
		}
		return true, nil
	case vv.Concurrent:
		stats.Conflicts++
		local.ReportConflict(physical.Conflict{
			File:     nv.File,
			Dir:      append([]ids.FileID(nil), nv.Dir...),
			LocalVV:  linfo.Aux.VV.Clone(),
			RemoteVV: rinfo.Aux.VV.Clone(),
			Remote:   peer.Replica(),
			Note:     "concurrent update detected during update propagation",
		})
		return true, nil
	default:
		return true, nil // stale news
	}
}

// Resolve installs a conflict resolution: newData becomes the file's
// contents under a version vector that dominates both conflicting histories
// (merge + a local bump), so the resolution propagates everywhere like any
// other update.  This is the owner-facing half of "detected and reported to
// the owner".
func Resolve(local *physical.Layer, c physical.Conflict, newData []byte) error {
	merged := vv.Merge(c.LocalVV, c.RemoteVV).Bump(local.Replica())
	return local.InstallFileVersion(c.Dir, c.File, physical.KFile, newData, merged, 1)
}
