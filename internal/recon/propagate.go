package recon

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
	"repro/internal/vv"
)

// PeerFinder locates a pull source for a given replica; nil means the
// replica is currently unreachable (its new-version cache entries stay
// queued for a later attempt).  Propagate calls the finder from its worker
// goroutines — at most once per origin per pass — so implementations must
// be safe for concurrent use.
type PeerFinder func(ids.ReplicaID) Peer

// BatchPuller is the batched fast path of a propagation peer: one call
// answers a whole batch of conditional pulls, shipping file data only for
// entries whose remote version dominates the local vector.  *physical.Layer
// (co-resident origin) and repl.Client (remote origin, one RPC per batch)
// both provide it.  Peers without it — or passes with DisableBatch set —
// fall back to the per-file FileInfo/FileData protocol.
type BatchPuller interface {
	PullBatch([]physical.PullRequest) ([]physical.PullResult, error)
}

var _ BatchPuller = (*physical.Layer)(nil)

// DeltaPuller is the block-delta fast path (wire v3): the puller advertises
// the block addresses it already holds, and the origin answers PullData
// entries as (manifest, missing blocks) so unchanged blocks never ship.
// *physical.Layer provides it directly; repl.Client provides it with
// transparent per-peer downgrade, answering whole-file pulls when the far
// side predates the delta op — so a DeltaPuller's results must be handled
// both ways (Manifest set, or plain Data).
type DeltaPuller interface {
	BatchPuller
	PullBatchDelta([]physical.PullRequest, []physical.BlockAddr) ([]physical.PullResult, error)
}

var _ DeltaPuller = (*physical.Layer)(nil)

// PropagateConfig tunes one propagation pass.
type PropagateConfig struct {
	// Policy classifies per-entry errors and spaces the retries of failed
	// entries across later passes.  Zero value: retry.Default().
	Policy retry.Policy
	// Workers bounds how many origins are pulled concurrently (default 4).
	// Results are always applied in sorted origin order, so the worker
	// count affects wall time only, never the outcome.
	Workers int
	// DisableBatch forces the sequential per-file pull protocol even when
	// the peer supports batched pulls (the benchmark baseline).
	DisableBatch bool
	// DisableDelta forces whole-file batched pulls even when the peer
	// supports block-delta pulls (the benchmark baseline for E13).
	DisableDelta bool
}

// PropagateOnce runs one pass of the update propagation daemon under the
// default configuration (see Propagate).
func PropagateOnce(local *physical.Layer, find PeerFinder) (Stats, error) {
	return Propagate(local, find, PropagateConfig{Policy: retry.Default()})
}

// Propagate runs one pass of the update propagation daemon (paper §3.2):
// "An update propagation daemon consults this [new-version] cache to see
// what new replica versions should be propagated in, and performs the
// propagation when it deems it appropriate to expend the effort."
//
// The pass pulls each pending notification from its originating replica:
//
//   - remote dominates         -> install via the single-file atomic commit
//   - equal or local dominates -> drop the notification (stale news)
//   - concurrent               -> report a conflict to the owner and drop
//   - origin unreachable       -> keep the entry, backed off for later
//
// Due entries are grouped by origin: each origin is consulted once via the
// finder and pulled with a single batched conditional pull (peers without
// the batch op fall back to per-file pulls).  Origins run through a bounded
// worker pool, but every state change to the local replica's daemon
// machinery — drops, deferrals, conflict reports, stats, the error join —
// is applied by a sequential reduce in sorted origin order, preserving
// entry order within each origin.  Two passes over the same state therefore
// produce identical Stats, conflict logs, and backoff schedules regardless
// of worker interleaving.
//
// Partial operation is the normal status: a failure on one entry never
// starves the rest of the pass.  Failed entries stay in the new-version
// cache with their attempt count bumped and their next attempt deferred
// under the policy's backoff, so a flapping origin is polled ever more
// rarely instead of on every pass.  Transient failures are reported only
// through Stats (Deferred/Failures); the returned error aggregates
// permanent, corruption-class errors alone.
//
// Directories are propagated by replaying operations, not by copying
// ("simply copying directory contents is incorrect"), so a notification
// about a directory triggers a directory reconciliation against the origin
// (run in the sequential reduce, since it mutates shared subtrees).
func Propagate(local *physical.Layer, find PeerFinder, cfg PropagateConfig) (Stats, error) {
	if cfg.Policy.MaxAttempts == 0 && cfg.Policy.BaseBackoff == 0 {
		cfg.Policy = retry.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	now := local.AdvanceDaemonTick()
	var stats Stats
	var errs []error

	// Split the due entries by origin.  Entries still backing off are
	// deferred without consulting the finder at all.
	byOrigin := make(map[ids.ReplicaID][]physical.NewVersion)
	for _, nv := range local.PendingVersions() {
		if nv.NotBefore > now {
			stats.Deferred++ // backing off; not due this pass
			continue
		}
		byOrigin[nv.Origin] = append(byOrigin[nv.Origin], nv)
	}
	origins := make([]ids.ReplicaID, 0, len(byOrigin))
	for origin := range byOrigin {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })

	// Pull each origin on the worker pool.  Workers only read remote state
	// and install file versions (individually atomic and commutative across
	// distinct files); all daemon bookkeeping waits for the reduce below.
	results := make([]originResult, len(origins))
	if len(origins) > 0 {
		if workers > len(origins) {
			workers = len(origins)
		}
		idxCh := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idxCh {
					results[i] = runOrigin(local, find, byOrigin[origins[i]], cfg)
				}
			}()
		}
		for i := range origins {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	}

	// Deterministic merge: sorted origin order, entry order within each.
	fail := func(nv physical.NewVersion, err error) {
		stats.Failures++
		local.DeferPending(nv.File, now+cfg.Policy.Backoff(nv.Attempts+1, propagationKey(nv)))
		if !cfg.Policy.IsTransient(err) {
			errs = append(errs, fmt.Errorf("propagate %v from replica %d: %w", nv.File, nv.Origin, err))
		}
	}
	for oi, origin := range origins {
		entries := byOrigin[origin]
		res := results[oi]
		if res.peer == nil {
			// Origin unreachable (or health-gated): no attempt made.
			for _, nv := range entries {
				stats.Deferred++
				local.DeferPending(nv.File, now+cfg.Policy.Backoff(nv.Attempts+1, propagationKey(nv)))
			}
			continue
		}
		for i, nv := range entries {
			out := res.outcomes[i]
			switch out.kind {
			case outInstalled:
				stats.FilesPulled++
				local.DropPending(nv.File)
			case outDrop:
				local.DropPending(nv.File)
			case outSkipped:
				stats.Skipped++
				local.DropPending(nv.File)
			case outConflict:
				stats.Conflicts++
				local.ReportConflict(physical.Conflict{
					File:     nv.File,
					Dir:      append([]ids.FileID(nil), nv.Dir...),
					LocalVV:  out.localVV.Clone(),
					RemoteVV: out.remoteVV.Clone(),
					Remote:   res.peer.Replica(),
					Note:     "concurrent update detected during update propagation",
				})
				local.DropPending(nv.File)
			case outIsDir:
				childPath := append(append([]ids.FileID(nil), nv.Dir...), nv.File)
				sub, err := ReconcileSubtree(local, res.peer, childPath)
				stats.Add(sub)
				if err != nil {
					fail(nv, err)
				} else {
					local.DropPending(nv.File)
				}
			default: // outFailed
				fail(nv, out.err)
			}
		}
	}
	return stats, errors.Join(errs...)
}

// propagationKey seeds the backoff jitter so distinct files retrying after
// the same outage spread across later passes instead of stampeding.
func propagationKey(nv physical.NewVersion) uint64 {
	return nv.File.Seq ^ uint64(nv.File.Issuer)<<32 ^ uint64(nv.Origin)<<48
}

type outcomeKind byte

const (
	outFailed    outcomeKind = iota // attempt failed; err explains
	outInstalled                    // version installed
	outDrop                         // stale news or remote tombstone; just drop
	outSkipped                      // data or container vanished; drop and count Skipped
	outConflict                     // concurrent histories; report to the owner
	outIsDir                        // directory: reconcile the subtree in the reduce
)

// entryOutcome is one entry's result as computed on the worker, applied
// later by the sequential reduce.
type entryOutcome struct {
	kind     outcomeKind
	err      error     // outFailed
	localVV  vv.Vector // outConflict
	remoteVV vv.Vector // outConflict
}

// originResult carries one origin's pull results back to the reduce.  A nil
// peer means the finder had no route to the origin.
type originResult struct {
	peer     Peer
	outcomes []entryOutcome
}

// runOrigin pulls one origin's due entries on a worker goroutine.
func runOrigin(local *physical.Layer, find PeerFinder, entries []physical.NewVersion, cfg PropagateConfig) originResult {
	peer := find(entries[0].Origin)
	if peer == nil {
		return originResult{}
	}
	res := originResult{peer: peer, outcomes: make([]entryOutcome, len(entries))}
	if bp, ok := peer.(BatchPuller); ok && !cfg.DisableBatch {
		if cfg.DisableDelta {
			bp = whollyBatched{bp}
		}
		runOriginBatched(local, bp, entries, res.outcomes)
	} else {
		for i, nv := range entries {
			res.outcomes[i] = attemptSequential(local, peer, nv)
		}
	}
	return res
}

// whollyBatched narrows a puller to its BatchPuller half, hiding any
// PullBatchDelta it may have (the DisableDelta baseline).
type whollyBatched struct{ bp BatchPuller }

func (w whollyBatched) PullBatch(reqs []physical.PullRequest) ([]physical.PullResult, error) {
	return w.bp.PullBatch(reqs)
}

// runOriginBatched issues one conditional pull for the whole batch: each
// request carries the local vector, and the origin ships data only for
// entries it dominates.  When the peer supports delta pulls, the local
// versions are first indexed into the block pool and the batch advertises
// every pooled address, so the origin ships only blocks this replica lacks.
// A transport-level batch failure fails every entry that was in the batch
// (each keeps its own backoff schedule).
func runOriginBatched(local *physical.Layer, bp BatchPuller, entries []physical.NewVersion, outcomes []entryOutcome) {
	dp, delta := bp.(DeltaPuller)
	reqs := make([]physical.PullRequest, 0, len(entries))
	reqIdx := make([]int, 0, len(entries))
	locals := make([]vv.Vector, len(entries))
	for i, nv := range entries {
		linfo, err := local.FileInfo(nv.Dir, nv.File)
		switch {
		case err == nil:
			locals[i] = linfo.Aux.VV
			reqs = append(reqs, physical.PullRequest{Dir: nv.Dir, File: nv.File, LocalVV: linfo.Aux.VV, HasLocal: true})
			if delta && !linfo.Aux.Type.IsDir() {
				// Index the version we hold so the advertisement below can
				// dedup against its blocks.  Best-effort — an entry that
				// cannot be indexed (quarantined, racing eviction) simply
				// gains nothing from the delta and pulls whole blocks; the
				// install path verifies everything regardless.
				_ = local.EnsureBlocks(nv.Dir, nv.File)
			}
		case errors.Is(err, physical.ErrNotStored):
			reqs = append(reqs, physical.PullRequest{Dir: nv.Dir, File: nv.File})
		default:
			outcomes[i] = entryOutcome{kind: outFailed, err: err}
			continue
		}
		reqIdx = append(reqIdx, i)
	}
	if len(reqs) == 0 {
		return
	}
	var results []physical.PullResult
	var err error
	if delta {
		results, err = dp.PullBatchDelta(reqs, local.PoolAddrs())
	} else {
		results, err = bp.PullBatch(reqs)
	}
	if err == nil && len(results) != len(reqs) {
		err = fmt.Errorf("pull batch: %d answers for %d requests", len(results), len(reqs))
	}
	if err != nil {
		for _, i := range reqIdx {
			outcomes[i] = entryOutcome{kind: outFailed, err: err}
		}
		return
	}
	for k := range results {
		r := &results[k]
		i := reqIdx[k]
		nv := entries[i]
		switch r.Status {
		case physical.PullData:
			// Install under the origin's sealed checksums, when it could
			// vouch for them: a payload damaged in flight (or served past a
			// bypassed verification) is rejected as a transient failure
			// before it touches disk, and the entry retries under backoff.
			// A delta answer reassembles from pool + shipped blocks first;
			// a missing block is transient (the pool moved under us) and
			// the entry retries with a fresh advertisement.
			var err error
			if r.Manifest != nil {
				err = local.InstallFileVersionDelta(nv.Dir, nv.File, r.Aux.Type, r.Manifest, r.Missing, r.Aux.VV, r.Aux.Nlink, r.Sum)
			} else {
				err = local.InstallFileVersionSum(nv.Dir, nv.File, r.Aux.Type, r.Data, r.Aux.VV, r.Aux.Nlink, r.Sum)
			}
			switch {
			case err == nil:
				outcomes[i] = entryOutcome{kind: outInstalled}
			case errors.Is(err, physical.ErrNotStored):
				// The containing directory is not stored locally (yet);
				// subtree reconciliation will materialize it first.
				outcomes[i] = entryOutcome{kind: outSkipped}
			default:
				outcomes[i] = entryOutcome{kind: outFailed, err: err}
			}
		case physical.PullStale, physical.PullNotStored:
			// Stale news, or the origin no longer stores the file (the
			// tombstone will arrive through directory reconciliation).
			outcomes[i] = entryOutcome{kind: outDrop}
		case physical.PullConcurrent:
			outcomes[i] = entryOutcome{kind: outConflict, localVV: locals[i], remoteVV: r.RemoteVV}
		case physical.PullIsDir:
			outcomes[i] = entryOutcome{kind: outIsDir}
		case physical.PullError:
			outcomes[i] = entryOutcome{kind: outFailed, err: r.Err}
		default:
			outcomes[i] = entryOutcome{kind: outFailed, err: fmt.Errorf("pull batch: invalid status %d", r.Status)}
		}
	}
}

// attemptSequential is the per-file protocol for peers without the batch
// op: a FileInfo to compare vectors, then a FileData when the remote
// dominates — the original two-round-trip pull.
func attemptSequential(local *physical.Layer, peer Peer, nv physical.NewVersion) entryOutcome {
	rinfo, err := peer.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return entryOutcome{kind: outDrop}
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	if rinfo.Aux.Type.IsDir() {
		return entryOutcome{kind: outIsDir}
	}
	linfo, err := local.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return pullOutcome(local, peer, nv)
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	switch linfo.Aux.VV.Compare(rinfo.Aux.VV) {
	case vv.Dominated:
		return pullOutcome(local, peer, nv)
	case vv.Concurrent:
		return entryOutcome{kind: outConflict, localVV: linfo.Aux.VV, remoteVV: rinfo.Aux.VV}
	default:
		return entryOutcome{kind: outDrop} // stale news
	}
}

// pullOutcome fetches and installs one file version via the per-file
// protocol, installing under the attributes that came WITH the data (the
// file may have advanced between FileInfo and FileData).
func pullOutcome(local *physical.Layer, peer Peer, nv physical.NewVersion) entryOutcome {
	data, rst, err := peer.FileData(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return entryOutcome{kind: outSkipped}
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	if err := local.InstallFileVersion(nv.Dir, nv.File, rst.Aux.Type, data, rst.Aux.VV, rst.Aux.Nlink); err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			return entryOutcome{kind: outSkipped}
		}
		return entryOutcome{kind: outFailed, err: err}
	}
	return entryOutcome{kind: outInstalled}
}

// Resolve installs a conflict resolution: newData becomes the file's
// contents under a version vector that dominates both conflicting histories
// (merge + a local bump), so the resolution propagates everywhere like any
// other update.  This is the owner-facing half of "detected and reported to
// the owner".
func Resolve(local *physical.Layer, c physical.Conflict, newData []byte) error {
	merged := vv.Merge(c.LocalVV, c.RemoteVV).Bump(local.Replica())
	return local.InstallFileVersion(c.Dir, c.File, physical.KFile, newData, merged, 1)
}
