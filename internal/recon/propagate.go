package recon

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
	"repro/internal/vv"
)

// PeerFinder locates a pull source for a given replica; nil means the
// replica is currently unreachable (its new-version cache entries stay
// queued for a later attempt).
type PeerFinder func(ids.ReplicaID) Peer

// PropagateConfig tunes one propagation pass.
type PropagateConfig struct {
	// Policy classifies per-entry errors and spaces the retries of failed
	// entries across later passes.  Zero value: retry.Default().
	Policy retry.Policy
}

// PropagateOnce runs one pass of the update propagation daemon under the
// default retry policy (see Propagate).
func PropagateOnce(local *physical.Layer, find PeerFinder) (Stats, error) {
	return Propagate(local, find, PropagateConfig{Policy: retry.Default()})
}

// Propagate runs one pass of the update propagation daemon (paper §3.2):
// "An update propagation daemon consults this [new-version] cache to see
// what new replica versions should be propagated in, and performs the
// propagation when it deems it appropriate to expend the effort."
//
// For each pending notification the daemon pulls the announced file from
// the originating replica:
//
//   - remote dominates        -> install via the single-file atomic commit
//   - equal or local dominates -> drop the notification (stale news)
//   - concurrent              -> report a conflict to the owner and drop
//   - origin unreachable       -> keep the entry, backed off for later
//
// Partial operation is the normal status: a failure on one entry never
// starves the rest of the pass.  Failed entries stay in the new-version
// cache with their attempt count bumped and their next attempt deferred
// under the policy's backoff, so a flapping origin is polled ever more
// rarely instead of on every pass.  Transient failures are reported only
// through Stats (Deferred/Failures); the returned error aggregates
// permanent, corruption-class errors alone.
//
// Directories are propagated by replaying operations, not by copying
// ("simply copying directory contents is incorrect"), so a notification
// about a directory triggers a directory reconciliation against the origin.
func Propagate(local *physical.Layer, find PeerFinder, cfg PropagateConfig) (Stats, error) {
	if cfg.Policy.MaxAttempts == 0 && cfg.Policy.BaseBackoff == 0 {
		cfg.Policy = retry.Default()
	}
	now := local.AdvanceDaemonTick()
	var stats Stats
	var errs []error
	for _, nv := range local.PendingVersions() {
		if nv.NotBefore > now {
			stats.Deferred++ // backing off; not due this pass
			continue
		}
		backoff := func() uint64 {
			return now + cfg.Policy.Backoff(nv.Attempts+1, propagationKey(nv))
		}
		peer := find(nv.Origin)
		if peer == nil {
			// Origin unreachable (or health-gated): no attempt made.
			stats.Deferred++
			local.DeferPending(nv.File, backoff())
			continue
		}
		done, err := propagateOne(local, peer, nv, &stats)
		if err != nil {
			stats.Failures++
			local.DeferPending(nv.File, backoff())
			if !cfg.Policy.IsTransient(err) {
				errs = append(errs, fmt.Errorf("propagate %v from replica %d: %w", nv.File, nv.Origin, err))
			}
			continue
		}
		if done {
			local.DropPending(nv.File)
		}
	}
	return stats, errors.Join(errs...)
}

// propagationKey seeds the backoff jitter so distinct files retrying after
// the same outage spread across later passes instead of stampeding.
func propagationKey(nv physical.NewVersion) uint64 {
	return nv.File.Seq ^ uint64(nv.File.Issuer)<<32 ^ uint64(nv.Origin)<<48
}

// propagateOne attempts one new-version cache entry.  done means the entry
// is finished (installed, stale, conflicting, or obsolete) and may be
// dropped; err reports an attempt that failed — the caller classifies it
// and keeps the entry pending.
func propagateOne(local *physical.Layer, peer Peer, nv physical.NewVersion, stats *Stats) (bool, error) {
	rinfo, err := peer.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			// The origin no longer stores the file (e.g. removed); the
			// tombstone will arrive through directory reconciliation.
			return true, nil
		}
		return false, err
	}
	if rinfo.Aux.Type.IsDir() {
		childPath := append(append([]ids.FileID(nil), nv.Dir...), nv.File)
		sub, err := ReconcileSubtree(local, peer, childPath)
		stats.Add(sub)
		return err == nil, err
	}
	linfo, err := local.FileInfo(nv.Dir, nv.File)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			if err := pullFile(local, peer, nv.Dir, nv.File, rinfo, stats); err != nil {
				return false, err
			}
			return true, nil
		}
		return false, err
	}
	switch linfo.Aux.VV.Compare(rinfo.Aux.VV) {
	case vv.Dominated:
		if err := pullFile(local, peer, nv.Dir, nv.File, rinfo, stats); err != nil {
			return false, err
		}
		return true, nil
	case vv.Concurrent:
		stats.Conflicts++
		local.ReportConflict(physical.Conflict{
			File:     nv.File,
			Dir:      append([]ids.FileID(nil), nv.Dir...),
			LocalVV:  linfo.Aux.VV.Clone(),
			RemoteVV: rinfo.Aux.VV.Clone(),
			Remote:   peer.Replica(),
			Note:     "concurrent update detected during update propagation",
		})
		return true, nil
	default:
		return true, nil // stale news
	}
}

// Resolve installs a conflict resolution: newData becomes the file's
// contents under a version vector that dominates both conflicting histories
// (merge + a local bump), so the resolution propagates everywhere like any
// other update.  This is the owner-facing half of "detected and reported to
// the owner".
func Resolve(local *physical.Layer, c physical.Conflict, newData []byte) error {
	merged := vv.Merge(c.LocalVV, c.RemoteVV).Bump(local.Replica())
	return local.InstallFileVersion(c.Dir, c.File, physical.KFile, newData, merged, 1)
}
