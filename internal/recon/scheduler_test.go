package recon

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/retry"
)

var schedVol = ids.VolumeHandle{Allocator: 1, Volume: 1}

func peerSet(rids ...ids.ReplicaID) []SchedPeer {
	out := make([]SchedPeer, len(rids))
	for i, r := range rids {
		out[i] = SchedPeer{Replica: r, Health: retry.Healthy}
	}
	return out
}

func orderedIDs(peers []SchedPeer) []ids.ReplicaID {
	out := make([]ids.ReplicaID, len(peers))
	for i, p := range peers {
		out[i] = p.Replica
	}
	return out
}

func TestSchedulerStalestFirst(t *testing.T) {
	s := NewScheduler()
	// Peer 2 was just visited, peer 3 a while ago, peer 1 never.
	s.NoteAttempt(schedVol, 2, 10)
	s.NoteAttempt(schedVol, 3, 4)
	s.NoteSync(schedVol, 2, 10)
	s.NoteSync(schedVol, 3, 4)
	got := orderedIDs(s.Order(schedVol, peerSet(1, 2, 3), 10))
	want := []ids.ReplicaID{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestSchedulerHealthBoosts(t *testing.T) {
	s := NewScheduler()
	peers := peerSet(1, 2, 3)
	// All equally stale and synced, but peer 3 is Suspect and peer 2 Slow.
	for _, rid := range []ids.ReplicaID{1, 2, 3} {
		s.NoteAttempt(schedVol, rid, 5)
		s.NoteSync(schedVol, rid, 5)
	}
	peers[1].Health = retry.Slow
	peers[2].Health = retry.Suspect
	got := orderedIDs(s.Order(schedVol, peers, 9))
	want := []ids.ReplicaID{3, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	// Boosts are bounded: enough raw staleness outweighs Suspect.  Visit 2
	// and 3 again; peer 1 (healthy, last attempted at 5) is now >8 ticks
	// staler than the Suspect peer and must come first.
	s.NoteAttempt(schedVol, 2, 15)
	s.NoteAttempt(schedVol, 3, 15)
	got = orderedIDs(s.Order(schedVol, peers, 30))
	if got[0] != 1 {
		t.Fatalf("very stale healthy peer not first: %v", got)
	}
}

func TestSchedulerNeverSyncedBoostAndTieBreak(t *testing.T) {
	s := NewScheduler()
	// 2 and 3 equally stale; 3 has never completed a clean pass.
	s.NoteAttempt(schedVol, 2, 3)
	s.NoteAttempt(schedVol, 3, 3)
	s.NoteSync(schedVol, 2, 3)
	got := orderedIDs(s.Order(schedVol, peerSet(2, 3), 8))
	want := []ids.ReplicaID{3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	// Full ties break on replica id ascending.
	got = orderedIDs(s.Order(schedVol, peerSet(9, 4, 7), 8))
	want = []ids.ReplicaID{4, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie order = %v, want %v", got, want)
	}
}

// TestSchedulerRotationNoStarvation drives a budget-B pass loop over N peers
// and checks every peer is attempted within ceil(N/B) passes, repeatedly.
func TestSchedulerRotationNoStarvation(t *testing.T) {
	const n, budget = 10, 3
	s := NewScheduler()
	peers := make([]SchedPeer, n)
	for i := range peers {
		peers[i] = SchedPeer{Replica: ids.ReplicaID(i + 1), Health: retry.Healthy}
	}
	lastVisited := make(map[ids.ReplicaID]int)
	rounds := (n + budget - 1) / budget
	for pass := 1; pass <= 8*rounds; pass++ {
		order := s.Order(schedVol, peers, uint64(pass))
		for _, p := range order[:budget] {
			s.NoteAttempt(schedVol, p.Replica, uint64(pass))
			lastVisited[p.Replica] = pass
		}
		if pass >= rounds {
			for _, p := range peers {
				if pass-lastVisited[p.Replica] >= 2*rounds {
					t.Fatalf("pass %d: peer %d starved (last visit %d)",
						pass, p.Replica, lastVisited[p.Replica])
				}
			}
		}
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	mk := func() []ids.ReplicaID {
		s := NewScheduler()
		peers := peerSet(5, 1, 9, 3, 7)
		peers[2].Health = retry.Suspect
		s.NoteAttempt(schedVol, 3, 2)
		s.NoteSync(schedVol, 3, 2)
		s.NoteAttempt(schedVol, 7, 6)
		return orderedIDs(s.Order(schedVol, peers, 11))
	}
	first := mk()
	for i := 0; i < 5; i++ {
		if got := mk(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: order %v != %v", i, got, first)
		}
	}
}

func TestSchedulerPerVolumeIsolationAndReset(t *testing.T) {
	s := NewScheduler()
	other := ids.VolumeHandle{Allocator: 2, Volume: 2}
	s.NoteSync(schedVol, 1, 7)
	if got := s.LastSync(other, 1); got != 0 {
		t.Fatalf("other volume LastSync = %d, want 0", got)
	}
	if got := s.LastSync(schedVol, 1); got != 7 {
		t.Fatalf("LastSync = %d, want 7", got)
	}
	s.Reset()
	if got := s.LastSync(schedVol, 1); got != 0 {
		t.Fatalf("LastSync after Reset = %d, want 0", got)
	}
}
