package recon

// Anti-entropy scheduler.  The paper makes reconciliation the convergence
// guarantee (§3.3) while notification is only a hint (§2.5); once clusters
// grow past a handful of hosts, sweeping every peer every pass stops being a
// guarantee and starts being the bottleneck.  The scheduler turns the sweep
// into a priority queue: each (volume, peer) pair carries the virtual tick of
// its last reconciliation attempt and its last clean pass, and a pass visits
// the highest-priority peers first — longest since last attempt, with peers
// the health tracker rates Suspect or Slow boosted ahead of healthy ones and
// never-synced peers boosted ahead of everything at equal staleness.
//
// Two properties matter:
//
//   - No starvation: priority grows with ticks-since-last-attempt and every
//     visit resets it, so under any per-pass budget B every peer is reached
//     within ceil(N/B) passes — pull-based convergence stays guaranteed even
//     if gossip loses every rumor.  (Boosts are bounded constants, so they
//     bound the unfairness instead of breaking it.)
//   - Determinism: priority is computed from tracked state only and ties
//     break on replica id, so identical runs schedule identically.

import (
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/retry"
)

// Priority boosts, in virtual ticks of staleness: a Suspect peer (recent
// failures — likely missed rumors while unreachable) jumps the queue by
// BoostSuspect passes, a Slow one by BoostSlow, and a peer that has never
// completed a clean pass by BoostNeverSynced.  Dead peers get no boost: the
// ungated reconcile probe is what revives them, but they should not crowd out
// live stale peers under a tight budget.
const (
	BoostSuspect     = 8
	BoostSlow        = 4
	BoostNeverSynced = 2
)

// SchedPeer is one remote replica as the scheduler sees it.  Callers fill
// Replica and Health; Order annotates the bookkeeping fields.
type SchedPeer struct {
	Replica ids.ReplicaID
	Health  retry.State

	LastAttempt uint64 // tick of the last reconciliation attempt; 0 = never
	LastSync    uint64 // tick of the last clean pass; 0 = never
	Score       uint64 // effective staleness the ordering used
}

type schedKey struct {
	vol ids.VolumeHandle
	rid ids.ReplicaID
}

// Scheduler tracks per-(volume, peer) reconciliation recency.  The zero
// value is not usable; call NewScheduler.  All methods are safe for
// concurrent use.  State is in-memory only: a host crash loses it (the
// post-restart rescan obligation covers the gap), mirroring the peer-health
// tracker.
type Scheduler struct {
	mu       sync.Mutex
	attempts map[schedKey]uint64
	syncs    map[schedKey]uint64
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{
		attempts: make(map[schedKey]uint64),
		syncs:    make(map[schedKey]uint64),
	}
}

// NoteAttempt records that a reconciliation of vol against rid was attempted
// at tick now (regardless of outcome) — this is what rotates the peer to the
// back of the queue and prevents starvation.
func (s *Scheduler) NoteAttempt(vol ids.VolumeHandle, rid ids.ReplicaID, now uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts[schedKey{vol, rid}] = now
}

// NoteSync records a clean reconciliation pass of vol against rid at tick now.
func (s *Scheduler) NoteSync(vol ids.VolumeHandle, rid ids.ReplicaID, now uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs[schedKey{vol, rid}] = now
}

// LastSync reports the tick of the last clean pass against rid (0 = never).
func (s *Scheduler) LastSync(vol ids.VolumeHandle, rid ids.ReplicaID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs[schedKey{vol, rid}]
}

// Reset drops all recency state (host crash: in-memory knowledge dies with
// the kernel).
func (s *Scheduler) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts = make(map[schedKey]uint64)
	s.syncs = make(map[schedKey]uint64)
}

// score computes a peer's effective staleness at tick now.
func score(p SchedPeer, now uint64) uint64 {
	var st uint64
	if now > p.LastAttempt {
		st = now - p.LastAttempt
	}
	switch p.Health {
	case retry.Suspect:
		st += BoostSuspect
	case retry.Slow:
		st += BoostSlow
	}
	if p.LastSync == 0 {
		st += BoostNeverSynced
	}
	return st
}

// Order returns peers sorted into anti-entropy priority order for one pass at
// tick now: effective staleness (ticks since last attempt, plus health and
// never-synced boosts) descending, ties broken by replica id ascending.  The
// returned slice is a fresh copy with LastAttempt/LastSync/Score filled in;
// the input is not modified.
func (s *Scheduler) Order(vol ids.VolumeHandle, peers []SchedPeer, now uint64) []SchedPeer {
	out := make([]SchedPeer, len(peers))
	copy(out, peers)
	s.mu.Lock()
	for i := range out {
		k := schedKey{vol, out[i].Replica}
		out[i].LastAttempt = s.attempts[k]
		out[i].LastSync = s.syncs[k]
	}
	s.mu.Unlock()
	for i := range out {
		out[i].Score = score(out[i], now)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}
