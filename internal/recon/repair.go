package recon

import (
	"errors"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
)

// Repair is the self-healing half of the integrity daemon: for every
// quarantined file version that is due, it re-pulls the file from peer
// replicas through the batched pull path and reinstalls a verified copy.
//
// A repair pull sends HasLocal=false — the local bytes are untrusted, so
// even a peer whose vector merely EQUALS the quarantined one must ship data
// (a conditional pull would answer "stale").  A shipped version is accepted
// only when its vector dominates-or-equals the quarantined vector (an older
// version must not silently roll the file back; it will arrive through
// normal reconciliation if it is genuinely the surviving history) and its
// payload matches the shipped checksums — InstallFileVersionSum verifies
// before anything touches disk, and a verified install lifts the quarantine.
//
// Failure handling mirrors update propagation: a peer that is unreachable
// or answers with a transient error leaves the entry queued under the
// policy's backoff.  Only a round in which EVERY peer replica was reached
// and gave a definitive refusal (no copy stored, or only a dominated
// version) is counted as unrepairable — and even then the entry stays
// queued, because optimistic replication says a healthy replica may yet
// reappear.
type RepairStats struct {
	Attempted int // due quarantined versions a repair was attempted for
	Repaired  int // versions healed this pass
	Deferred  int // versions re-queued under backoff
	GaveUp    int // rounds where every known peer definitively refused
}

// Add accumulates (aggregation across layers and hosts).
func (s *RepairStats) Add(t RepairStats) {
	s.Attempted += t.Attempted
	s.Repaired += t.Repaired
	s.Deferred += t.Deferred
	s.GaveUp += t.GaveUp
}

// Repair runs one repair pass over local's due quarantined versions.  The
// peers list names the volume's other replicas (self entries are skipped).
// Like Propagate, it advances the layer's virtual daemon clock by one tick;
// backoff schedules are measured on it.
func Repair(local *physical.Layer, find PeerFinder, peers []ids.ReplicaID, policy retry.Policy) RepairStats {
	if policy.MaxAttempts == 0 && policy.BaseBackoff == 0 {
		policy = retry.Default()
	}
	now := local.AdvanceDaemonTick()
	var stats RepairStats
	for _, q := range local.RepairDue(now) {
		stats.Attempted++
		repaired, definitive := repairOne(local, find, peers, q)
		switch {
		case repaired:
			stats.Repaired++
		case definitive:
			// Every peer answered, none can help: note it once, keep waiting.
			local.NoteUnrepairable(q.File)
			local.DeferRepair(q.File, now+policy.Backoff(q.Attempts+1, repairKey(q)))
			stats.GaveUp++
			stats.Deferred++
		default:
			local.DeferRepair(q.File, now+policy.Backoff(q.Attempts+1, repairKey(q)))
			stats.Deferred++
		}
	}
	return stats
}

// repairOne tries each peer in order until one supplies a verified
// dominating copy.  definitive reports that every peer replica was reached
// and refused for a permanent reason (nothing transient stands between this
// replica and the conclusion "no peer can help right now").
func repairOne(local *physical.Layer, find PeerFinder, peers []ids.ReplicaID, q physical.QuarEntry) (repaired, definitive bool) {
	definitive = true
	for _, rid := range peers {
		if rid == local.Replica() {
			continue
		}
		peer := find(rid)
		if peer == nil {
			definitive = false // unreachable or health-gated: maybe later
			continue
		}
		res, err := repairPull(local, peer, q)
		if err != nil {
			definitive = false
			continue
		}
		switch res.Status {
		case physical.PullData:
			if !res.Aux.VV.DominatesOrEqual(q.VV) {
				continue // an older version cannot vouch for this one
			}
			if res.Manifest != nil {
				err = local.InstallFileVersionDelta(q.Dir, q.File, res.Aux.Type, res.Manifest, res.Missing, res.Aux.VV, res.Aux.Nlink, res.Sum)
			} else {
				err = local.InstallFileVersionSum(q.Dir, q.File, res.Aux.Type, res.Data, res.Aux.VV, res.Aux.Nlink, res.Sum)
			}
			if err != nil {
				definitive = false // damaged in flight, or local trouble: retry
				continue
			}
			return true, false
		case physical.PullNotStored, physical.PullIsDir:
			// Definitive: this peer cannot supply the file's bytes.
		default:
			// PullError (the peer's own copy may be quarantined), or an
			// unexpected status: not a verdict.
			definitive = false
		}
	}
	return false, definitive
}

// repairPull fetches one unconditional copy of q's file from peer, using the
// delta pull path when the peer supports it (the advertisement names only
// pool blocks — which are re-verified against their addresses on every read,
// so a quarantined file's untrusted bytes can never slip into the repair),
// the batched path otherwise, and the per-file protocol as the last resort
// (a plain FileData ships no checksums; the install then seals from the
// received bytes, which the serving side verified on read).
func repairPull(local *physical.Layer, peer Peer, q physical.QuarEntry) (physical.PullResult, error) {
	req := physical.PullRequest{Dir: q.Dir, File: q.File} // HasLocal=false: ship unconditionally
	if dp, ok := peer.(DeltaPuller); ok {
		results, err := dp.PullBatchDelta([]physical.PullRequest{req}, local.PoolAddrs())
		if err != nil {
			return physical.PullResult{}, err
		}
		if len(results) != 1 {
			return physical.PullResult{Status: physical.PullError}, nil
		}
		return results[0], nil
	}
	if bp, ok := peer.(BatchPuller); ok {
		results, err := bp.PullBatch([]physical.PullRequest{req})
		if err != nil {
			return physical.PullResult{}, err
		}
		if len(results) != 1 {
			return physical.PullResult{Status: physical.PullError}, nil
		}
		return results[0], nil
	}
	data, st, err := peer.FileData(q.Dir, q.File)
	if errors.Is(err, physical.ErrNotStored) {
		return physical.PullResult{Status: physical.PullNotStored}, nil
	}
	if err != nil {
		return physical.PullResult{}, err
	}
	if st.Aux.Type.IsDir() {
		return physical.PullResult{Status: physical.PullIsDir, Aux: st.Aux}, nil
	}
	return physical.PullResult{Status: physical.PullData, Data: data, Aux: st.Aux, Size: st.Size}, nil
}

// repairKey seeds the backoff jitter (cf. propagationKey).
func repairKey(q physical.QuarEntry) uint64 {
	return q.File.Seq ^ uint64(q.File.Issuer)<<32 ^ 0xC0FFEE
}
