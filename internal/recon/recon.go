// Package recon implements the Ficus reconciliation protocols (paper §3.2,
// §3.3): update propagation for regular files and the directory and subtree
// reconciliation algorithms.
//
// "A reconciliation algorithm examines the state of two replicas,
// determines which operations have been performed on each, selects a set of
// operations to perform on the local replica which reflect previously
// unseen activity at the remote replica, and then applies those operations
// to the local replica."
//
// Reconciliation is one-way pull: the local replica updates itself from a
// remote peer and never writes to it.  Running the pull on both sides (or
// around a gossip cycle) converges all replicas.  For regular files the
// version vectors decide: a dominating remote version is installed through
// the physical layer's single-file atomic commit; concurrent versions are a
// conflict, reported to the owner and left untouched.  For directories the
// physical layer's entry merge replays insertions and deletions; conflicts
// there are repaired automatically.
package recon

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/vv"
)

// Peer is the read-only view of a remote volume replica that reconciliation
// pulls from.  *physical.Layer satisfies it directly (co-resident
// reconciliation); internal/repl provides the RPC-backed implementation.
type Peer interface {
	// Replica identifies the peer's volume replica.
	Replica() ids.ReplicaID
	// DirEntries returns a directory's entries and version vector.
	DirEntries(dirPath []ids.FileID) (physical.DirState, error)
	// FileInfo returns a file's auxiliary attributes.
	FileInfo(dirPath []ids.FileID, fid ids.FileID) (physical.FileState, error)
	// FileData returns a file's full contents and attributes.
	FileData(dirPath []ids.FileID, fid ids.FileID) ([]byte, physical.FileState, error)
}

var _ Peer = (*physical.Layer)(nil)

// Stats summarizes one reconciliation or propagation pass.
type Stats struct {
	DirsVisited    int // directories compared
	DirsCreated    int // local containers materialized for remote dirs
	EntriesAdopted int // entries inserted by the merge
	EntriesDeleted int // local entries tombstoned by remote deletes
	FilesPulled    int // file versions installed via atomic commit
	Conflicts      int // concurrent file updates detected and reported
	NameRepairs    int // same-name entry pairs coexisting after auto-repair
	Skipped        int // subtrees skipped (not stored on one side)
	Deferred       int // propagation entries postponed (backoff or origin unavailable)
	Failures       int // per-entry propagation attempts that failed this pass

	// Slow-peer tolerance (propagation only).  All fields are scalars on
	// purpose: Stats must stay comparable for the determinism tests.
	Hedges         int    // backup pulls issued after the hedging threshold
	HedgeWins      int    // hedged pulls whose backup answered first
	SlowSheds      int    // pulls redirected away from a Slow primary up front
	BudgetDeferred int    // due entries left for the next pass by the tick budget
	PassTicks      uint64 // virtual makespan of the pass's pull waves
}

// Add accumulates.
func (s *Stats) Add(t Stats) {
	s.DirsVisited += t.DirsVisited
	s.DirsCreated += t.DirsCreated
	s.EntriesAdopted += t.EntriesAdopted
	s.EntriesDeleted += t.EntriesDeleted
	s.FilesPulled += t.FilesPulled
	s.Conflicts += t.Conflicts
	s.NameRepairs += t.NameRepairs
	s.Skipped += t.Skipped
	s.Deferred += t.Deferred
	s.Failures += t.Failures
	s.Hedges += t.Hedges
	s.HedgeWins += t.HedgeWins
	s.SlowSheds += t.SlowSheds
	s.BudgetDeferred += t.BudgetDeferred
	s.PassTicks += t.PassTicks
}

// Changed reports whether the pass modified the local replica.
func (s Stats) Changed() bool {
	return s.DirsCreated > 0 || s.EntriesAdopted > 0 || s.EntriesDeleted > 0 || s.FilesPulled > 0
}

// String renders the stats compactly.
func (s Stats) String() string {
	out := fmt.Sprintf("dirs=%d created=%d adopted=%d deleted=%d pulled=%d conflicts=%d repairs=%d skipped=%d deferred=%d failures=%d",
		s.DirsVisited, s.DirsCreated, s.EntriesAdopted, s.EntriesDeleted, s.FilesPulled, s.Conflicts, s.NameRepairs, s.Skipped, s.Deferred, s.Failures)
	if s.Hedges > 0 || s.SlowSheds > 0 || s.BudgetDeferred > 0 || s.PassTicks > 0 {
		out += fmt.Sprintf(" hedges=%d hedgewins=%d sheds=%d budgetdeferred=%d passticks=%d",
			s.Hedges, s.HedgeWins, s.SlowSheds, s.BudgetDeferred, s.PassTicks)
	}
	return out
}

// ReconcileVolume reconciles the local replica's entire tree against the
// remote peer, starting at the volume root ("executed periodically to
// traverse an entire subgraph, not just a single node", §3.3).
func ReconcileVolume(local *physical.Layer, remote Peer) (Stats, error) {
	return ReconcileSubtree(local, remote, physical.RootPath())
}

// ReconcileSubtree reconciles the directory at dirPath and everything below
// it.  The local replica must store dirPath.
func ReconcileSubtree(local *physical.Layer, remote Peer, dirPath []ids.FileID) (Stats, error) {
	var stats Stats
	if err := reconcileDir(local, remote, dirPath, &stats); err != nil {
		return stats, err
	}
	return stats, nil
}

func reconcileDir(local *physical.Layer, remote Peer, dirPath []ids.FileID, stats *Stats) error {
	rstate, err := remote.DirEntries(dirPath)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			stats.Skipped++
			return nil // the peer stores nothing here; nothing to learn
		}
		return err
	}
	stats.DirsVisited++
	res, err := local.ApplyDirMerge(dirPath, rstate)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			// The local replica does not store this directory; nothing to
			// merge into (storage of non-root directories is optional,
			// §4.1).
			stats.Skipped++
			return nil
		}
		return err
	}
	stats.EntriesAdopted += res.Inserted
	stats.EntriesDeleted += res.Deleted
	stats.NameRepairs = max(stats.NameRepairs, res.NameConfls)

	lstate, err := local.DirEntries(dirPath)
	if err != nil {
		return err
	}
	for _, e := range lstate.Entries {
		if !e.Live() {
			continue
		}
		switch {
		case e.Kind.IsDir():
			childPath := append(append([]ids.FileID(nil), dirPath...), e.Child)
			if !local.HasDir(childPath) {
				// Materialize local storage for a directory learned from
				// the peer, copying its kind/graft target.
				raux, err := remote.DirEntries(childPath)
				if err != nil {
					if errors.Is(err, physical.ErrNotStored) {
						stats.Skipped++
						continue
					}
					return err
				}
				if err := local.EnsureDirStored(dirPath, e.Child, raux.Aux); err != nil {
					return err
				}
				stats.DirsCreated++
			}
			if err := reconcileDir(local, remote, childPath, stats); err != nil {
				return err
			}
		default:
			if err := reconcileFile(local, remote, dirPath, e, stats); err != nil {
				return err
			}
		}
	}
	return nil
}

// reconcileFile compares one file replica pair by version vector and pulls
// the remote version when it dominates.  Concurrent versions are a
// conflict: reported to the owner, data untouched (the owner resolves).
func reconcileFile(local *physical.Layer, remote Peer, dirPath []ids.FileID, e physical.Entry, stats *Stats) error {
	rinfo, err := remote.FileInfo(dirPath, e.Child)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			stats.Skipped++
			return nil
		}
		return err
	}
	linfo, err := local.FileInfo(dirPath, e.Child)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			// First local copy: adopt the remote version wholesale.
			return pullFile(local, remote, dirPath, e.Child, rinfo, stats)
		}
		return err
	}
	switch linfo.Aux.VV.Compare(rinfo.Aux.VV) {
	case vv.Dominated:
		if err := pullFile(local, remote, dirPath, e.Child, rinfo, stats); err != nil {
			return err
		}
		// The replicas are comparable again: any logged conflict on this
		// file has been superseded (e.g. by an owner's resolution).
		local.ClearConflictsFor(e.Child)
	case vv.Concurrent:
		stats.Conflicts++
		local.ReportConflict(physical.Conflict{
			File:     e.Child,
			Dir:      append([]ids.FileID(nil), dirPath...),
			LocalVV:  linfo.Aux.VV.Clone(),
			RemoteVV: rinfo.Aux.VV.Clone(),
			Remote:   remote.Replica(),
			Note:     "concurrent update detected during reconciliation",
		})
	default:
		local.ClearConflictsFor(e.Child)
	}
	return nil
}

func pullFile(local *physical.Layer, remote Peer, dirPath []ids.FileID, fid ids.FileID, rinfo physical.FileState, stats *Stats) error {
	data, rst, err := remote.FileData(dirPath, fid)
	if err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			stats.Skipped++
			return nil
		}
		return err
	}
	// Install under the attributes that came WITH the data (the file may
	// have advanced between FileInfo and FileData).
	if err := local.InstallFileVersion(dirPath, fid, rst.Aux.Type, data, rst.Aux.VV, rst.Aux.Nlink); err != nil {
		if errors.Is(err, physical.ErrNotStored) {
			// The local replica does not store the containing directory
			// (yet); subtree reconciliation will materialize it first.
			stats.Skipped++
			return nil
		}
		return err
	}
	_ = rinfo
	stats.FilesPulled++
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
