package recon

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vv"
)

var testVol = ids.VolumeHandle{Allocator: 1, Volume: 1}

func newReplica(t testing.TB, r ids.ReplicaID) *physical.Layer {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(16384), 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := physical.Format(ufsvn.New(fs), testVol, r)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// reconcileBoth runs a pull in each direction, as the periodic protocol
// would around a gossip cycle.
func reconcileBoth(t *testing.T, a, b *physical.Layer) (Stats, Stats) {
	t.Helper()
	sa, err := ReconcileVolume(a, b)
	if err != nil {
		t.Fatalf("a<-b: %v", err)
	}
	sb, err := ReconcileVolume(b, a)
	if err != nil {
		t.Fatalf("b<-a: %v", err)
	}
	return sa, sb
}

// treeDump renders the full client-visible tree with file contents.
func treeDump(t *testing.T, l *physical.Layer) string {
	t.Helper()
	root, err := l.Root()
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	var walk func(v vnode.Vnode, prefix string)
	walk = func(v vnode.Vnode, prefix string) {
		ents, err := v.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, e := range ents {
			c, err := v.Lookup(e.Name)
			if vnode.AsErrno(err) == vnode.ENOSTOR {
				lines = append(lines, prefix+e.Name+" [unstored]")
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			switch e.Type {
			case vnode.VDir:
				lines = append(lines, prefix+e.Name+"/")
				walk(c, prefix+e.Name+"/")
			default:
				data, err := vnode.ReadFile(c)
				if err != nil {
					t.Fatal(err)
				}
				lines = append(lines, fmt.Sprintf("%s%s = %q", prefix, e.Name, data))
			}
		}
	}
	walk(root, "")
	return strings.Join(lines, "\n")
}

func write(t *testing.T, l *physical.Layer, path string, data string) {
	t.Helper()
	root, _ := l.Root()
	parent, name, err := vnode.WalkParent(root, path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parent.Create(name, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte(data)); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, l *physical.Layer, path string) (string, error) {
	t.Helper()
	root, _ := l.Root()
	v, err := vnode.Walk(root, path)
	if err != nil {
		return "", err
	}
	data, err := vnode.ReadFile(v)
	return string(data), err
}

func TestSubtreeReconciliationConverges(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	// Build a tree on a only.
	rootA, _ := a.Root()
	vnode.MkdirAll(rootA, "src/pkg")
	write(t, a, "src/pkg/main.go", "package main")
	write(t, a, "src/README", "docs")
	write(t, a, "top.txt", "top")

	stats, err := ReconcileVolume(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 3 || stats.DirsCreated != 2 {
		t.Fatalf("stats %v", stats)
	}
	if got, _ := read(t, b, "src/pkg/main.go"); got != "package main" {
		t.Fatalf("b sees %q", got)
	}
	if treeDump(t, a) != treeDump(t, b) {
		t.Fatalf("trees diverge:\nA:\n%s\nB:\n%s", treeDump(t, a), treeDump(t, b))
	}
	// Quiescence.
	stats, err = ReconcileVolume(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed() {
		t.Fatalf("second pass changed state: %v", stats)
	}
}

func TestFileUpdatePropagatesByDominance(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "v1")
	reconcileBoth(t, a, b)
	// Update on b only; a must adopt it.
	write(t, b, "f", "v2 from b")
	if _, err := ReconcileVolume(a, b); err != nil {
		t.Fatal(err)
	}
	if got, _ := read(t, a, "f"); got != "v2 from b" {
		t.Fatalf("a sees %q", got)
	}
	if len(a.Conflicts()) != 0 {
		t.Fatalf("false conflict: %+v", a.Conflicts())
	}
}

func TestConcurrentFileUpdateIsConflict(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "doc", "base")
	reconcileBoth(t, a, b)
	// Partitioned updates on both replicas.
	write(t, a, "doc", "a's edit")
	write(t, b, "doc", "b's edit")
	sa, sb := reconcileBoth(t, a, b)
	if sa.Conflicts != 1 || sb.Conflicts != 1 {
		t.Fatalf("conflicts: %v / %v", sa, sb)
	}
	// Data untouched on both sides: the system must not silently pick a
	// winner for regular files.
	if got, _ := read(t, a, "doc"); got != "a's edit" {
		t.Fatalf("a's data clobbered: %q", got)
	}
	if got, _ := read(t, b, "doc"); got != "b's edit" {
		t.Fatalf("b's data clobbered: %q", got)
	}
	// The conflict is reported to the owner exactly once per side even
	// after repeated reconciliation.
	reconcileBoth(t, a, b)
	if len(a.Conflicts()) != 1 || len(b.Conflicts()) != 1 {
		t.Fatalf("conflict log: a=%d b=%d", len(a.Conflicts()), len(b.Conflicts()))
	}
}

func TestConflictResolution(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "doc", "base")
	reconcileBoth(t, a, b)
	write(t, a, "doc", "a's edit")
	write(t, b, "doc", "b's edit")
	reconcileBoth(t, a, b)
	c := a.Conflicts()[0]
	if err := Resolve(a, c, []byte("merged by owner")); err != nil {
		t.Fatal(err)
	}
	a.ClearConflicts()
	b.ClearConflicts()
	// The resolution dominates both histories, so it propagates cleanly.
	sa, sb := reconcileBoth(t, a, b)
	if sa.Conflicts+sb.Conflicts != 0 {
		t.Fatalf("resolution re-conflicted: %v %v", sa, sb)
	}
	if got, _ := read(t, b, "doc"); got != "merged by owner" {
		t.Fatalf("b sees %q", got)
	}
}

func TestDirectoryConflictAutoRepaired(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "report", "from a")
	write(t, b, "report", "from b")
	sa, sb := reconcileBoth(t, a, b)
	if sa.Conflicts+sb.Conflicts != 0 {
		t.Fatal("directory name collision must not be a file conflict")
	}
	if sa.NameRepairs == 0 && sb.NameRepairs == 0 {
		t.Fatalf("no name repair recorded: %v %v", sa, sb)
	}
	reconcileBoth(t, a, b) // second round pulls the file data adopted in round one
	if treeDump(t, a) != treeDump(t, b) {
		t.Fatalf("diverged:\nA:\n%s\nB:\n%s", treeDump(t, a), treeDump(t, b))
	}
	// Both versions of the data survive under distinct names.
	dump := treeDump(t, a)
	if !strings.Contains(dump, `"from a"`) || !strings.Contains(dump, `"from b"`) {
		t.Fatalf("data lost in repair:\n%s", dump)
	}
}

func TestDeleteWinsAcrossSubtree(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	rootA, _ := a.Root()
	vnode.MkdirAll(rootA, "dir")
	write(t, a, "dir/f", "data")
	reconcileBoth(t, a, b)
	if got, _ := read(t, b, "dir/f"); got != "data" {
		t.Fatalf("setup failed: %q", got)
	}
	// Delete the file on b, reconcile: a must apply the delete.
	rootB, _ := b.Root()
	dirB, _ := rootB.Lookup("dir")
	if err := dirB.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReconcileVolume(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := read(t, a, "dir/f"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("delete did not propagate: %v", err)
	}
}

func TestReconcileSkipsUnstoredRemote(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "x")
	// b reconciles FROM a; then wipe... instead simulate: a pulls from b
	// where b stores nothing extra — must be a clean no-op.
	stats, err := ReconcileVolume(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed() {
		t.Fatalf("pull from empty peer changed local: %v", stats)
	}
}

func TestPropagateOnceInstallsAnnouncedVersion(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "v1")
	reconcileBoth(t, a, b)
	write(t, a, "f", "v2")
	// a's logical layer would multicast; simulate the notification arriving
	// at b.
	fid := fidOf(t, a, "f")
	b.NoteNewVersion(physical.RootPath(), fid, 1)
	find := func(r ids.ReplicaID) Peer {
		if r == 1 {
			return a
		}
		return nil
	}
	stats, err := PropagateOnce(b, find)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 1 {
		t.Fatalf("stats %v", stats)
	}
	if got, _ := read(t, b, "f"); got != "v2" {
		t.Fatalf("b sees %q", got)
	}
	if len(b.PendingVersions()) != 0 {
		t.Fatal("notification not drained")
	}
}

func TestPropagateKeepsPendingWhenUnreachable(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "v1")
	reconcileBoth(t, a, b)
	write(t, a, "f", "v2")
	b.NoteNewVersion(physical.RootPath(), fidOf(t, a, "f"), 1)
	stats, err := PropagateOnce(b, func(ids.ReplicaID) Peer { return nil })
	if err != nil || stats.FilesPulled != 0 {
		t.Fatalf("%v %v", stats, err)
	}
	if len(b.PendingVersions()) != 1 {
		t.Fatal("pending entry dropped while origin unreachable")
	}
}

func TestPropagateDropsStaleNews(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "v1")
	reconcileBoth(t, a, b)
	// b already has v1; a re-announces it.
	b.NoteNewVersion(physical.RootPath(), fidOf(t, a, "f"), 1)
	stats, err := PropagateOnce(b, func(ids.ReplicaID) Peer { return a })
	if err != nil || stats.FilesPulled != 0 {
		t.Fatalf("%v %v", stats, err)
	}
	if len(b.PendingVersions()) != 0 {
		t.Fatal("stale notification not dropped")
	}
}

func TestPropagateDetectsConflict(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "base")
	reconcileBoth(t, a, b)
	write(t, a, "f", "a edit")
	write(t, b, "f", "b edit")
	b.NoteNewVersion(physical.RootPath(), fidOf(t, a, "f"), 1)
	stats, err := PropagateOnce(b, func(ids.ReplicaID) Peer { return a })
	if err != nil || stats.Conflicts != 1 {
		t.Fatalf("%v %v", stats, err)
	}
	if got, _ := read(t, b, "f"); got != "b edit" {
		t.Fatalf("conflicting data clobbered: %q", got)
	}
	if len(b.Conflicts()) != 1 {
		t.Fatal("conflict not reported")
	}
}

func TestPropagateDirectoryNotification(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	rootA, _ := a.Root()
	d, err := rootA.Mkdir("d")
	if err != nil {
		t.Fatal(err)
	}
	reconcileBoth(t, a, b)
	// New file appears inside d on a; b is notified about the DIRECTORY.
	if _, err := d.Create("inner", true); err != nil {
		t.Fatal(err)
	}
	dirFid := fidOf(t, a, "d")
	b.NoteNewVersion(physical.RootPath(), dirFid, 1)
	stats, err := PropagateOnce(b, func(ids.ReplicaID) Peer { return a })
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesAdopted == 0 {
		t.Fatalf("directory notification did not replay entries: %v", stats)
	}
	rootB, _ := b.Root()
	if _, err := vnode.Walk(rootB, "d/inner"); err != nil {
		t.Fatalf("b missing d/inner: %v", err)
	}
}

func fidOf(t *testing.T, l *physical.Layer, path string) ids.FileID {
	t.Helper()
	root, _ := l.Root()
	v, err := vnode.Walk(root, path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := v.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	fid, err := ids.ParseFileID(a.FileID)
	if err != nil {
		t.Fatal(err)
	}
	return fid
}

// TestGossipConvergenceProperty: N replicas, random partitioned updates,
// then a few rounds of pairwise reconciliation along a ring; all replicas
// must converge to identical trees and identical version vectors, with any
// genuinely concurrent file updates surfacing as conflicts rather than
// silent divergence of directory state.
func TestGossipConvergenceProperty(t *testing.T) {
	const n = 4
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reps := make([]*physical.Layer, n)
		for i := range reps {
			reps[i] = newReplica(t, ids.ReplicaID(i+1))
		}
		// Shared base state.
		write(t, reps[0], "common", "base")
		for i := 1; i < n; i++ {
			if _, err := ReconcileVolume(reps[i], reps[0]); err != nil {
				t.Fatal(err)
			}
		}
		// Partitioned chaos: every replica does its own thing.
		for i, l := range reps {
			root, _ := l.Root()
			for k := 0; k < 10; k++ {
				switch rng.Intn(3) {
				case 0:
					write(t, l, fmt.Sprintf("file-%d-%d", i, rng.Intn(4)), fmt.Sprintf("r%d", i))
				case 1:
					root.Mkdir(fmt.Sprintf("dir-%d", rng.Intn(3)))
				case 2:
					write(t, l, fmt.Sprintf("shared-%d", rng.Intn(3)), fmt.Sprintf("by %d", i))
				}
			}
		}
		// Gossip rounds around the ring.
		for round := 0; round < n+1; round++ {
			for i := range reps {
				j := (i + 1) % n
				if _, err := ReconcileVolume(reps[i], reps[j]); err != nil {
					t.Fatal(err)
				}
				if _, err := ReconcileVolume(reps[j], reps[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		// All directory STRUCTURE identical (file conflict contents may
		// legitimately differ, so compare names only).
		var dumps []string
		for _, l := range reps {
			dumps = append(dumps, namesDump(t, l))
		}
		for i := 1; i < n; i++ {
			if dumps[i] != dumps[0] {
				t.Fatalf("seed %d: replica %d structure diverged:\n%s\nvs:\n%s", seed, i+1, dumps[0], dumps[i])
			}
		}
	}
}

func namesDump(t *testing.T, l *physical.Layer) string {
	t.Helper()
	root, err := l.Root()
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	var walk func(v vnode.Vnode, prefix string)
	walk = func(v vnode.Vnode, prefix string) {
		ents, err := v.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, e := range ents {
			lines = append(lines, prefix+e.Name)
			if e.Type == vnode.VDir {
				c, err := v.Lookup(e.Name)
				if vnode.AsErrno(err) == vnode.ENOSTOR {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				walk(c, prefix+e.Name+"/")
			}
		}
	}
	walk(root, "")
	return strings.Join(lines, "\n")
}

func TestStatsStringAndAdd(t *testing.T) {
	s := Stats{DirsVisited: 1, FilesPulled: 2}
	s.Add(Stats{DirsVisited: 2, Conflicts: 1})
	if s.DirsVisited != 3 || s.Conflicts != 1 || s.FilesPulled != 2 {
		t.Fatalf("%+v", s)
	}
	if !strings.Contains(s.String(), "pulled=2") {
		t.Fatalf("%q", s.String())
	}
	if !s.Changed() {
		t.Fatal("Changed() = false")
	}
}

// TestInstallPreservesVVExactly guards the invariant that a pulled file
// carries the remote vector verbatim, so a third replica comparing vectors
// sees equality, not concurrency.
func TestInstallPreservesVVExactly(t *testing.T) {
	a, b := newReplica(t, 1), newReplica(t, 2)
	write(t, a, "f", "x")
	if _, err := ReconcileVolume(b, a); err != nil {
		t.Fatal(err)
	}
	fid := fidOf(t, a, "f")
	sa, err := a.FileInfo(physical.RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.FileInfo(physical.RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Aux.VV.Compare(sb.Aux.VV) != vv.Equal {
		t.Fatalf("vectors differ after pull: %v vs %v", sa.Aux.VV, sb.Aux.VV)
	}
	if !bytes.Equal([]byte("x"), []byte("x")) {
		t.Fatal("unreachable")
	}
}
