package recon

import (
	"bytes"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
	"repro/internal/vnode"
)

// quarantinedReplica builds a local replica that pulled one file from
// remote and then suffered bit rot on it: the file is stored, quarantined,
// and due for repair.
func quarantinedReplica(t *testing.T) (local, remote *physical.Layer, fid ids.FileID) {
	t.Helper()
	local = newReplica(t, 1)
	remote = newReplica(t, 2)
	fid = mkRemoteFiles(t, remote, "a")[0]
	reconcileBoth(t, local, remote) // adopt the name and pull the data
	if err := local.CorruptData(physical.RootPath(), fid, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := local.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if !local.IsQuarantined(fid) {
		t.Fatal("precondition: file not quarantined")
	}
	return local, remote, fid
}

func TestRepairHealsFromPeer(t *testing.T) {
	local, remote, fid := quarantinedReplica(t)
	find := func(ids.ReplicaID) Peer { return remote }

	stats := Repair(local, find, []ids.ReplicaID{1, 2}, retry.Policy{})
	if stats.Attempted != 1 || stats.Repaired != 1 || stats.Deferred != 0 || stats.GaveUp != 0 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if local.IsQuarantined(fid) {
		t.Fatal("repair must lift the quarantine")
	}
	data, _, err := local.FileData(physical.RootPath(), fid)
	if err != nil || !bytes.Equal(data, []byte("data-a")) {
		t.Fatalf("healed bytes: %q, %v", data, err)
	}
	if s := local.IntegrityStats(); s.Repaired != 1 || s.Unrepairable != 0 {
		t.Fatalf("integrity stats: %+v", s)
	}
}

func TestRepairUnreachablePeerDefersNotGivesUp(t *testing.T) {
	local, _, fid := quarantinedReplica(t)
	find := func(ids.ReplicaID) Peer { return nil } // health-gated away
	policy := retry.Policy{MaxAttempts: 3, BaseBackoff: 10, MaxBackoff: 10}

	stats := Repair(local, find, []ids.ReplicaID{1, 2}, policy)
	if stats.Attempted != 1 || stats.Deferred != 1 || stats.GaveUp != 0 || stats.Repaired != 0 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if !local.IsQuarantined(fid) {
		t.Fatal("entry must stay quarantined")
	}
	// An unreachable peer is not a verdict.
	if s := local.IntegrityStats(); s.Unrepairable != 0 {
		t.Fatalf("unreachable counted as unrepairable: %+v", s)
	}
	// The entry backs off: an immediately following pass skips it.
	stats = Repair(local, find, []ids.ReplicaID{1, 2}, policy)
	if stats.Attempted != 0 {
		t.Fatalf("deferred entry re-attempted before its backoff: %+v", stats)
	}
}

func TestRepairDefinitiveRefusalCountsOnce(t *testing.T) {
	// The only peer never stored the file: a locally created file rots with
	// nowhere to heal from.
	local := newReplica(t, 1)
	remote := newReplica(t, 2)
	root, err := local.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("only-here", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("sole copy")); err != nil {
		t.Fatal(err)
	}
	a, err := f.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	fid, err := ids.ParseFileID(a.FileID)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.CorruptData(physical.RootPath(), fid, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := local.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	find := func(ids.ReplicaID) Peer { return remote }

	// Two rounds with backoff disabled by brute force: re-arm after each.
	policy := retry.Policy{MaxAttempts: 1, BaseBackoff: 1}
	stats := Repair(local, find, []ids.ReplicaID{1, 2}, policy)
	if stats.GaveUp != 1 || stats.Deferred != 1 || stats.Repaired != 0 {
		t.Fatalf("first round: %+v", stats)
	}
	if !local.IsQuarantined(fid) {
		t.Fatal("unrepairable entry must stay queued — a replica may reappear")
	}
	for i := 0; i < 10; i++ { // march the clock past the backoff
		Repair(local, find, []ids.ReplicaID{1, 2}, policy)
	}
	if s := local.IntegrityStats(); s.Unrepairable != 1 {
		t.Fatalf("unrepairable must count once per quarantine spell: %+v", s)
	}
}

func TestRepairDefersWhenPeerCopyCorruptToo(t *testing.T) {
	// Both replicas rotted: the peer's serving path detects its own damage
	// mid-pull and answers a transient error, so repair must defer — never
	// install the peer's unverifiable bytes, never conclude unrepairable.
	local, remote, fid := quarantinedReplica(t)
	find := func(ids.ReplicaID) Peer { return remote }
	if err := remote.CorruptData(physical.RootPath(), fid, 1); err != nil {
		t.Fatal(err)
	}
	stats := Repair(local, find, []ids.ReplicaID{1, 2}, retry.Policy{})
	if stats.Repaired != 0 || stats.GaveUp != 0 || stats.Deferred != 1 {
		t.Fatalf("corrupt peer must defer, not heal or give up: %+v", stats)
	}
	if !local.IsQuarantined(fid) {
		t.Fatal("quarantine lifted by an unverifiable peer copy")
	}
	// The peer detected its own rot while serving and quarantined itself.
	if !remote.IsQuarantined(fid) {
		t.Fatal("serving replica must quarantine its own corrupt copy")
	}
}
