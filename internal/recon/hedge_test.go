package recon

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/retry"
)

// netPeer wraps a layer-backed peer in a fake network personality: a fixed
// virtual latency per pull, a host key, a Slow verdict, and an optional
// transit failure.  It deliberately implements BatchPuller by explicit
// method (not by embedding *physical.Layer) so it is NOT a DeltaPuller and
// the pulls run the plain batched path under test.
type netPeer struct {
	Peer
	layer *physical.Layer
	cost  uint64
	key   string
	slow  bool
	fail  error
	calls int
}

func newNetPeer(l *physical.Layer, cost uint64, key string) *netPeer {
	return &netPeer{Peer: l, layer: l, cost: cost, key: key}
}

func (p *netPeer) PullBatch(reqs []physical.PullRequest) ([]physical.PullResult, error) {
	p.calls++
	if p.fail != nil {
		return nil, p.fail
	}
	return p.layer.PullBatch(reqs)
}

func (p *netPeer) LastElapsed() uint64 { return p.cost }
func (p *netPeer) SlowPeer() bool      { return p.slow }
func (p *netPeer) PeerKey() string     { return p.key }

// hedgedSetup: origin replica 2 holds the files; replica 3 has already
// reconciled from it, so it can serve the same versions as a backup.
func hedgedSetup(t *testing.T, names ...string) (local, origin, backupL *physical.Layer, fids []ids.FileID) {
	t.Helper()
	local = newReplica(t, 1)
	origin = newReplica(t, 2)
	backupL = newReplica(t, 3)
	fids = mkRemoteFiles(t, origin, names...)
	if _, err := ReconcileVolume(backupL, origin); err != nil {
		t.Fatal(err)
	}
	for _, fid := range fids {
		local.NoteNewVersion(physical.RootPath(), fid, 2)
	}
	return
}

// TestHedgedPullBackupWins: the primary answers, but slower than the
// hedging threshold plus the backup's whole pull — so the backup's answer
// is applied and the pass's virtual cost is the hedged completion time.
func TestHedgedPullBackupWins(t *testing.T) {
	local, origin, backupL, _ := hedgedSetup(t, "f")
	primary := newNetPeer(origin, 100, "h2")
	backup := newNetPeer(backupL, 5, "h3")
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		HedgeAfter: 10,
		FindHedge:  func(ids.ReplicaID) Peer { return backup },
	}
	stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 1 || stats.Hedges != 1 || stats.HedgeWins != 1 {
		t.Fatalf("stats %v: want 1 pull, 1 hedge, 1 win", stats)
	}
	if want := cfg.HedgeAfter + backup.cost; stats.PassTicks != want {
		t.Fatalf("PassTicks = %d, want hedged completion %d", stats.PassTicks, want)
	}
	if backup.calls != 1 || primary.calls != 1 {
		t.Fatalf("calls: primary %d backup %d, want 1 each", primary.calls, backup.calls)
	}
	if len(local.PendingVersions()) != 0 {
		t.Fatal("entry not dropped after hedged install")
	}
}

// TestHedgeNotIssuedWhenPrimaryFast: a pull within the threshold never
// spends the backup's effort.
func TestHedgeNotIssuedWhenPrimaryFast(t *testing.T) {
	local, origin, backupL, _ := hedgedSetup(t, "f")
	primary := newNetPeer(origin, 5, "h2")
	backup := newNetPeer(backupL, 1, "h3")
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		HedgeAfter: 10,
		FindHedge:  func(ids.ReplicaID) Peer { return backup },
	}
	stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("stats=%v err=%v", stats, err)
	}
	if stats.Hedges != 0 || backup.calls != 0 {
		t.Fatalf("hedge issued for a fast primary: stats=%v backupCalls=%d", stats, backup.calls)
	}
	if stats.PassTicks != primary.cost {
		t.Fatalf("PassTicks = %d, want %d", stats.PassTicks, primary.cost)
	}
}

// TestHedgePrimaryWinsRace: the hedge fires, but the primary's completion
// still beats HedgeAfter + backup cost — the primary's answers are applied
// and the backup's are the ones cancelled.
func TestHedgePrimaryWinsRace(t *testing.T) {
	local, origin, backupL, _ := hedgedSetup(t, "f")
	primary := newNetPeer(origin, 12, "h2")
	backup := newNetPeer(backupL, 50, "h3")
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		HedgeAfter: 10,
		FindHedge:  func(ids.ReplicaID) Peer { return backup },
	}
	stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("stats=%v err=%v", stats, err)
	}
	if stats.Hedges != 1 || stats.HedgeWins != 0 {
		t.Fatalf("stats %v: want hedge issued but primary winning", stats)
	}
	if stats.PassTicks != primary.cost {
		t.Fatalf("PassTicks = %d, want primary's %d", stats.PassTicks, primary.cost)
	}
}

// TestHedgeBackupInconclusiveDefers: the primary fails in transit and the
// backup — which never saw the version — answers "not stored".  That
// verdict proves nothing about the origin's version, so the entry must be
// deferred for retry, not dropped.
func TestHedgeBackupInconclusiveDefers(t *testing.T) {
	local := newReplica(t, 1)
	origin := newReplica(t, 2)
	behind := newReplica(t, 3) // never reconciled: lacks the version
	fids := mkRemoteFiles(t, origin, "f")
	local.NoteNewVersion(physical.RootPath(), fids[0], 2)

	primary := newNetPeer(origin, 100, "h2")
	primary.fail = &transientErr{}
	backup := newNetPeer(behind, 5, "h3")
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		HedgeAfter: 10,
		FindHedge:  func(ids.ReplicaID) Peer { return backup },
	}
	stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
	if err != nil {
		t.Fatalf("inconclusive hedge surfaced as pass error: %v", err)
	}
	if stats.Hedges != 1 || stats.Failures != 1 || stats.FilesPulled != 0 {
		t.Fatalf("stats %v: want hedge + deferred failure, no pull", stats)
	}
	pend := local.PendingVersions()
	if len(pend) != 1 || pend[0].Attempts != 1 {
		t.Fatalf("entry must stay pending under backoff: %+v", pend)
	}
}

// TestSlowShedSwapsToBackup: a primary the health tracker rates Slow is
// swapped for a healthy backup before the pull, so no hedge is needed and
// the slow host sees no traffic at all.
func TestSlowShedSwapsToBackup(t *testing.T) {
	local, origin, backupL, _ := hedgedSetup(t, "f")
	primary := newNetPeer(origin, 100, "h2")
	primary.slow = true
	backup := newNetPeer(backupL, 5, "h3")
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		HedgeAfter: 10,
		FindHedge:  func(ids.ReplicaID) Peer { return backup },
	}
	stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("stats=%v err=%v", stats, err)
	}
	if stats.SlowSheds != 1 || stats.Hedges != 0 {
		t.Fatalf("stats %v: want 1 shed, 0 hedges", stats)
	}
	if primary.calls != 0 || backup.calls != 1 {
		t.Fatalf("calls: primary %d backup %d — slow host should see none", primary.calls, backup.calls)
	}
	if stats.PassTicks != backup.cost {
		t.Fatalf("PassTicks = %d, want shed cost %d", stats.PassTicks, backup.cost)
	}
}

// TestTickBudgetDefersLaterWaves: with one worker each origin is its own
// wave; once the first wave exhausts the budget, the second origin's
// entries are left untouched — still due on the very next pass, with no
// backoff penalty for work never attempted.
func TestTickBudgetDefersLaterWaves(t *testing.T) {
	local := newReplica(t, 1)
	origin2 := newReplica(t, 2)
	origin3 := newReplica(t, 3)
	fidA := mkRemoteFiles(t, origin2, "a")[0]
	fidB := mkRemoteFiles(t, origin3, "b")[0]
	local.NoteNewVersion(physical.RootPath(), fidA, 2)
	local.NoteNewVersion(physical.RootPath(), fidB, 3)

	peers := map[ids.ReplicaID]*netPeer{
		2: newNetPeer(origin2, 50, "h2"),
		3: newNetPeer(origin3, 50, "h3"),
	}
	find := func(r ids.ReplicaID) Peer { return peers[r] }
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		Workers:    1,
		TickBudget: 40,
	}
	stats, err := Propagate(local, find, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesPulled != 1 || stats.BudgetDeferred != 1 {
		t.Fatalf("stats %v: want 1 pulled, 1 budget-deferred", stats)
	}
	if stats.PassTicks != 50 {
		t.Fatalf("PassTicks = %d, want the first wave's 50", stats.PassTicks)
	}
	pend := local.PendingVersions()
	if len(pend) != 1 || pend[0].File != fidB {
		t.Fatalf("pending after budgeted pass: %+v", pend)
	}
	if pend[0].Attempts != 0 || pend[0].NotBefore != 0 {
		t.Fatalf("budget-deferred entry must carry no backoff penalty: %+v", pend[0])
	}

	// Next pass, unconstrained: the deferred origin drains immediately.
	cfg.TickBudget = 0
	stats, err = Propagate(local, find, cfg)
	if err != nil || stats.FilesPulled != 1 || stats.BudgetDeferred != 0 {
		t.Fatalf("drain pass: stats=%v err=%v", stats, err)
	}
	if len(local.PendingVersions()) != 0 {
		t.Fatal("entries remain after drain pass")
	}
}

// TestTickBudgetFirstWaveAlwaysRuns: a budget smaller than any single pull
// still makes progress — the first wave is exempt, so a pass can never
// starve entirely.
func TestTickBudgetFirstWaveAlwaysRuns(t *testing.T) {
	local, origin, _, _ := hedgedSetup(t, "f")
	primary := newNetPeer(origin, 100, "h2")
	cfg := PropagateConfig{
		Policy:     retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
		TickBudget: 1,
	}
	stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
	if err != nil || stats.FilesPulled != 1 {
		t.Fatalf("stats=%v err=%v: first wave must run under any budget", stats, err)
	}
}

// TestPackWavesPeerInflightCap: wave packing is a pure function of input
// order and the caps — origins sharing a peer host are spread across waves
// once the per-peer in-flight cap is hit, and unkeyed (co-resident) origins
// are never capped.
func TestPackWavesPeerInflightCap(t *testing.T) {
	keys := []string{"a", "a", "b", "b", ""}
	key := func(i int) string { return keys[i] }

	got := packWaves([]int{0, 1, 2, 3, 4}, 4, 1, key)
	want := [][]int{{0, 2, 4}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packWaves perPeer=1: %v, want %v", got, want)
	}

	got = packWaves([]int{0, 1, 2, 3, 4}, 2, 0, key)
	want = [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packWaves workers=2: %v, want %v", got, want)
	}

	if got := packWaves(nil, 4, 1, key); len(got) != 0 {
		t.Fatalf("packWaves(nil) = %v, want empty", got)
	}
}

// TestPropagateHedgedDeterministic: two identical runs with hedging, caps,
// and a budget produce identical Stats — worker interleaving must never
// leak into the outcome.
func TestPropagateHedgedDeterministic(t *testing.T) {
	run := func() Stats {
		local := newReplica(t, 1)
		origin := newReplica(t, 2)
		backupL := newReplica(t, 3)
		fids := mkRemoteFiles(t, origin, "a", "b", "c", "d")
		if _, err := ReconcileVolume(backupL, origin); err != nil {
			t.Fatal(err)
		}
		for _, fid := range fids {
			local.NoteNewVersion(physical.RootPath(), fid, 2)
		}
		primary := newNetPeer(origin, 40, "h2")
		backup := newNetPeer(backupL, 5, "h3")
		cfg := PropagateConfig{
			Policy:       retry.Policy{MaxAttempts: 1, BaseBackoff: 1, MaxBackoff: 8},
			Workers:      2,
			HedgeAfter:   10,
			FindHedge:    func(ids.ReplicaID) Peer { return backup },
			TickBudget:   1000,
			PeerInflight: 1,
		}
		stats, err := Propagate(local, func(ids.ReplicaID) Peer { return primary }, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("hedged propagation not deterministic:\n  %v\n  %v", a, b)
	}
}
