package retry

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/simnet"
)

func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Fatal("nil classified transient")
	}
	if !Transient(fmt.Errorf("wrapped: %w", simnet.ErrUnreachable)) {
		t.Fatal("unreachable not transient")
	}
	if Transient(errors.New("disk on fire")) {
		t.Fatal("unknown error classified transient")
	}
	if Transient(simnet.ErrNoService) {
		t.Fatal("missing service is a config error, not transient")
	}
}

type flaggedErr struct{ transient bool }

func (e *flaggedErr) Error() string   { return "flagged" }
func (e *flaggedErr) Transient() bool { return e.transient }

func TestTransientInterfaceOptIn(t *testing.T) {
	if !Transient(fmt.Errorf("x: %w", &flaggedErr{transient: true})) {
		t.Fatal("opt-in transient ignored")
	}
	if Transient(&flaggedErr{transient: false}) {
		t.Fatal("opt-out ignored")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{BaseBackoff: 1, MaxBackoff: 8}
	prev := uint64(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Backoff(attempt, 42)
		if d < 1 {
			t.Fatalf("attempt %d: zero backoff", attempt)
		}
		// Cap: never more than MaxBackoff + jitter (MaxBackoff/2).
		if d > 8+4 {
			t.Fatalf("attempt %d: backoff %d exceeds cap+jitter", attempt, d)
		}
		if attempt <= 3 && d < prev/3 {
			t.Fatalf("attempt %d: backoff shrank too fast (%d after %d)", attempt, d, prev)
		}
		prev = d
	}
}

func TestBackoffDeterministicAndJittered(t *testing.T) {
	p := Default()
	if p.Backoff(3, 7) != p.Backoff(3, 7) {
		t.Fatal("backoff not deterministic")
	}
	// Across many keys the jitter must actually vary.
	seen := map[uint64]bool{}
	for key := uint64(0); key < 64; key++ {
		seen[p.Backoff(4, key)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter never varies across keys")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("try %d: %w", calls, simnet.ErrUnreachable)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}

	calls = 0
	perm := errors.New("permanent")
	err = p.Do(func() error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = p.Do(func() error { calls++; return simnet.ErrUnreachable })
	if !errors.Is(err, simnet.ErrUnreachable) || calls != 3 {
		t.Fatalf("exhaustion: err=%v calls=%d", err, calls)
	}
}

func TestTrackerStateMachine(t *testing.T) {
	tr := NewTracker(3, 4)
	const peer = "h1"
	if tr.State(peer) != Healthy || !tr.ShouldProbe(peer, 0) {
		t.Fatal("fresh peer not healthy/probable")
	}
	tr.Fail(peer, 0)
	if tr.State(peer) != Suspect {
		t.Fatalf("after 1 failure: %v", tr.State(peer))
	}
	if !tr.ShouldProbe(peer, 1) {
		t.Fatal("suspect peer must still be probed")
	}
	tr.Fail(peer, 1)
	tr.Fail(peer, 2)
	if tr.State(peer) != Dead {
		t.Fatalf("after 3 failures: %v", tr.State(peer))
	}
	// Dead: skipped until the cool-down expires.
	if tr.ShouldProbe(peer, 3) {
		t.Fatal("dead peer probed before cool-down")
	}
	if !tr.ShouldProbe(peer, 6) {
		t.Fatal("dead peer not reprobed after cool-down")
	}
	// The reprobe rescheduled the window: immediately after, skip again.
	if tr.ShouldProbe(peer, 7) {
		t.Fatal("second probe inside one cool-down window")
	}
	// Recovery: one success and the peer is fully healthy.
	tr.OK(peer)
	if tr.State(peer) != Healthy || !tr.ShouldProbe(peer, 8) {
		t.Fatal("OK did not reset health")
	}
}

func TestTrackerStatesAreIndependent(t *testing.T) {
	tr := NewTracker(1, 10)
	tr.Fail("a", 0)
	if tr.State("a") != Dead {
		t.Fatal("deadAfter=1 should kill on first failure")
	}
	if tr.State("b") != Healthy || !tr.ShouldProbe("b", 0) {
		t.Fatal("unrelated peer affected")
	}
}

func TestStateString(t *testing.T) {
	if Healthy.String() != "healthy" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Fatal("state strings")
	}
}
