package retry

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/vnode"
)

func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Fatal("nil classified transient")
	}
	if !Transient(fmt.Errorf("wrapped: %w", simnet.ErrUnreachable)) {
		t.Fatal("unreachable not transient")
	}
	if Transient(errors.New("disk on fire")) {
		t.Fatal("unknown error classified transient")
	}
	if Transient(simnet.ErrNoService) {
		t.Fatal("missing service is a config error, not transient")
	}
}

type flaggedErr struct{ transient bool }

func (e *flaggedErr) Error() string   { return "flagged" }
func (e *flaggedErr) Transient() bool { return e.transient }

func TestTransientInterfaceOptIn(t *testing.T) {
	if !Transient(fmt.Errorf("x: %w", &flaggedErr{transient: true})) {
		t.Fatal("opt-in transient ignored")
	}
	if Transient(&flaggedErr{transient: false}) {
		t.Fatal("opt-out ignored")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{BaseBackoff: 1, MaxBackoff: 8}
	prev := uint64(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Backoff(attempt, 42)
		if d < 1 {
			t.Fatalf("attempt %d: zero backoff", attempt)
		}
		// Cap: never more than MaxBackoff + jitter (MaxBackoff/2).
		if d > 8+4 {
			t.Fatalf("attempt %d: backoff %d exceeds cap+jitter", attempt, d)
		}
		if attempt <= 3 && d < prev/3 {
			t.Fatalf("attempt %d: backoff shrank too fast (%d after %d)", attempt, d, prev)
		}
		prev = d
	}
}

func TestBackoffDeterministicAndJittered(t *testing.T) {
	p := Default()
	if p.Backoff(3, 7) != p.Backoff(3, 7) {
		t.Fatal("backoff not deterministic")
	}
	// Across many keys the jitter must actually vary.
	seen := map[uint64]bool{}
	for key := uint64(0); key < 64; key++ {
		seen[p.Backoff(4, key)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter never varies across keys")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("try %d: %w", calls, simnet.ErrUnreachable)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}

	calls = 0
	perm := errors.New("permanent")
	err = p.Do(func() error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = p.Do(func() error { calls++; return simnet.ErrUnreachable })
	if !errors.Is(err, simnet.ErrUnreachable) || calls != 3 {
		t.Fatalf("exhaustion: err=%v calls=%d", err, calls)
	}
}

func TestTrackerStateMachine(t *testing.T) {
	tr := NewTracker(3, 4)
	const peer = "h1"
	if tr.State(peer) != Healthy || !tr.ShouldProbe(peer, 0) {
		t.Fatal("fresh peer not healthy/probable")
	}
	tr.Fail(peer, 0)
	if tr.State(peer) != Suspect {
		t.Fatalf("after 1 failure: %v", tr.State(peer))
	}
	if !tr.ShouldProbe(peer, 1) {
		t.Fatal("suspect peer must still be probed")
	}
	tr.Fail(peer, 1)
	tr.Fail(peer, 2)
	if tr.State(peer) != Dead {
		t.Fatalf("after 3 failures: %v", tr.State(peer))
	}
	// Dead: skipped until the cool-down expires.
	if tr.ShouldProbe(peer, 3) {
		t.Fatal("dead peer probed before cool-down")
	}
	if !tr.ShouldProbe(peer, 6) {
		t.Fatal("dead peer not reprobed after cool-down")
	}
	// The reprobe rescheduled the window: immediately after, skip again.
	if tr.ShouldProbe(peer, 7) {
		t.Fatal("second probe inside one cool-down window")
	}
	// Recovery: one success and the peer is fully healthy.
	tr.OK(peer)
	if tr.State(peer) != Healthy || !tr.ShouldProbe(peer, 8) {
		t.Fatal("OK did not reset health")
	}
}

func TestTrackerStatesAreIndependent(t *testing.T) {
	tr := NewTracker(1, 10)
	tr.Fail("a", 0)
	if tr.State("a") != Dead {
		t.Fatal("deadAfter=1 should kill on first failure")
	}
	if tr.State("b") != Healthy || !tr.ShouldProbe("b", 0) {
		t.Fatal("unrelated peer affected")
	}
}

func TestStateString(t *testing.T) {
	if Healthy.String() != "healthy" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Fatal("state strings")
	}
}

func TestBackoffCapSaturation(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseBackoff: 1, MaxBackoff: 8}
	// Far past the doubling range the schedule must sit at the cap (plus
	// jitter in [0, cap/2]) — and must not overflow for absurd attempts.
	for _, attempt := range []int{4, 10, 63, 64, 1 << 20} {
		d := p.Backoff(attempt, 42)
		if d < p.MaxBackoff || d > p.MaxBackoff+p.MaxBackoff/2 {
			t.Fatalf("attempt %d: backoff %d outside [%d, %d]", attempt, d, p.MaxBackoff, p.MaxBackoff+p.MaxBackoff/2)
		}
	}
	// A base already above the cap clamps down to it.
	pOver := Policy{BaseBackoff: 100, MaxBackoff: 8}
	if d := pOver.Backoff(1, 7); d < 8 || d > 12 {
		t.Fatalf("base>cap: backoff %d outside [8, 12]", d)
	}
	// No cap: pure doubling.
	pNoCap := Policy{BaseBackoff: 1}
	if d := pNoCap.Backoff(5, 0); d < 16 {
		t.Fatalf("uncapped attempt 5: %d < 16", d)
	}
}

func TestShouldProbeCooldownBoundary(t *testing.T) {
	tr := NewTracker(1, 5)
	tr.Fail("p", 10) // dead; nextProbe = 15
	if tr.ShouldProbe("p", 14) {
		t.Fatal("probed one tick before the cool-down expired")
	}
	// The boundary tick itself is probe-eligible (now >= nextProbe)...
	if !tr.ShouldProbe("p", 15) {
		t.Fatal("not probed exactly at the cool-down boundary")
	}
	// ...and reschedules to 20: 19 is denied, 20 allowed.
	if tr.ShouldProbe("p", 19) {
		t.Fatal("probed inside the rescheduled window")
	}
	if !tr.ShouldProbe("p", 20) {
		t.Fatal("not probed at the rescheduled boundary")
	}
}

func TestSlowStateFromEWMA(t *testing.T) {
	tr := NewTracker(3, 4)
	tr.SetSlowThreshold(20)
	const peer = "h2"
	tr.ObserveLatency(peer, 5)
	if tr.State(peer) != Healthy {
		t.Fatalf("fast peer: %v", tr.State(peer))
	}
	// Sustained slowness drives the EWMA over the threshold.
	for i := 0; i < 10; i++ {
		tr.ObserveLatency(peer, 100)
	}
	if tr.State(peer) != Slow {
		t.Fatalf("slow peer: %v", tr.State(peer))
	}
	if ticks, ok := tr.Latency(peer); !ok || ticks <= 20 {
		t.Fatalf("EWMA %d ok=%v", ticks, ok)
	}
	// Slow peers still probe freely — slowness sheds load, it doesn't gate.
	if !tr.ShouldProbe(peer, 0) {
		t.Fatal("slow peer must remain probe-eligible")
	}
	// Failures trump slowness...
	tr.Fail(peer, 0)
	if tr.State(peer) != Suspect {
		t.Fatalf("slow+failed peer: %v", tr.State(peer))
	}
	// ...and OK clears the failure but keeps the latency profile: still Slow.
	tr.OK(peer)
	if tr.State(peer) != Slow {
		t.Fatalf("after OK: %v, want Slow (EWMA must survive success)", tr.State(peer))
	}
	// Recovery: sustained fast samples decay the EWMA back under threshold.
	for i := 0; i < 30; i++ {
		tr.ObserveLatency(peer, 1)
	}
	if tr.State(peer) != Healthy {
		t.Fatalf("recovered peer: %v", tr.State(peer))
	}
}

func TestSnapshotAndDeadlineMisses(t *testing.T) {
	tr := NewTracker(3, 4)
	tr.SetSlowThreshold(10)
	tr.ObserveLatency("p", 50)
	tr.DeadlineMiss("p")
	tr.Fail("p", 0)
	info := tr.Snapshot("p")
	if info.State != Suspect || info.Fails != 1 || info.DeadlineMisses != 1 || !info.HasLatency || info.EWMATicks != 50 {
		t.Fatalf("snapshot %+v", info)
	}
	if got := tr.Snapshot("unknown"); got.State != Healthy || got.HasLatency {
		t.Fatalf("unknown peer snapshot %+v", got)
	}
	// OK keeps counters and latency, clears the failure streak.
	tr.OK("p")
	info = tr.Snapshot("p")
	if info.State != Slow || info.Fails != 0 || info.DeadlineMisses != 1 {
		t.Fatalf("post-OK snapshot %+v", info)
	}
}

func TestDeadlineAndNoSpaceAreTransient(t *testing.T) {
	if !Transient(fmt.Errorf("wrap: %w", simnet.ErrDeadline)) {
		t.Fatal("simnet.ErrDeadline must be transient")
	}
	if !Transient(fmt.Errorf("wrap: %w", vnode.ENOSPC)) {
		t.Fatal("vnode.ENOSPC must be transient")
	}
	if !Transient(fmt.Errorf("wrap: %w", ufs.ErrNoSpace)) {
		t.Fatal("ufs.ErrNoSpace must be transient")
	}
	// The ufsvn idiom: ENOSPC buried under an EIO wrapper must still
	// classify transient (sentinel check precedes the interface walk).
	buried := fmt.Errorf("%w: %w", vnode.EIO, vnode.ENOSPC)
	if !Transient(buried) {
		t.Fatal("ENOSPC under EIO must stay transient")
	}
}
