// Package retry is the reusable failure-handling policy shared by the
// replication stack: an error classifier (transient vs. permanent), capped
// exponential backoff with deterministic jitter, and a per-peer health
// tracker.  The paper's premise is that "partial operation is the normal,
// not exceptional, status" (§1) — daemons therefore must not treat a failed
// peer as fatal, but neither may they hammer an unreachable host on every
// pass.  Time here is *virtual*: backoff and cool-downs are measured in
// daemon ticks (one tick per daemon pass), so simulations stay fully
// deterministic — no wall clocks, no real sleeping.
package retry

import (
	"errors"
	"sync"

	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/vnode"
)

// Transient reports whether err is worth retrying: communication failures
// (partition, crash, injected fault, lost reply), deadline misses (a peer
// too slow to answer in time may answer later), and exhausted disks (space
// frees up: users delete files, GC collects tombstones) are transient;
// everything else — protocol errors, corruption-class storage errors — is
// permanent.  Errors may also opt in by implementing
// interface{ Transient() bool }.
//
// ENOSPC is matched by sentinel before the interface check on purpose: the
// ufsvn error map wraps unknown disk errors in vnode.EIO, and an errors.As
// walk would surface the outer error's verdict instead of the disk-full
// condition underneath.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, simnet.ErrUnreachable) || errors.Is(err, simnet.ErrDeadline) {
		return true
	}
	if errors.Is(err, vnode.ENOSPC) || errors.Is(err, ufs.ErrNoSpace) {
		return true
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// Policy spaces retries of an operation against one peer.  The zero value
// is unusable; start from Default.
type Policy struct {
	// MaxAttempts bounds the immediate, in-call retries of an idempotent
	// operation (>= 1; the first try counts).
	MaxAttempts int
	// BaseBackoff is the deferral, in virtual ticks, after the first
	// failed attempt of a queued work item; it doubles per attempt.
	BaseBackoff uint64
	// MaxBackoff caps the exponential growth.
	MaxBackoff uint64
	// Classify overrides the transient-vs-permanent decision; nil means
	// the package-level Transient.
	Classify func(error) bool
}

// Default returns the stack's standard policy: three in-call attempts,
// backoff 1, 2, 4, ... ticks capped at 8.
func Default() Policy {
	return Policy{MaxAttempts: 3, BaseBackoff: 1, MaxBackoff: 8}
}

// IsTransient classifies err under the policy.
func (p Policy) IsTransient(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Transient(err)
}

// Backoff returns how many virtual ticks to wait after the attempt-th
// consecutive failure (attempt >= 1) of the work item identified by key.
// The schedule is capped exponential plus a deterministic jitter derived
// from (key, attempt), so distinct items retrying after the same outage
// spread out instead of stampeding in the same later pass.
func (p Policy) Backoff(attempt int, key uint64) uint64 {
	if attempt < 1 {
		attempt = 1
	}
	base := p.BaseBackoff
	if base == 0 {
		base = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Jitter in [0, d/2], deterministic in (key, attempt).
	jitter := mix(key ^ uint64(attempt)*0x9e3779b97f4a7c15)
	if d >= 2 {
		d += jitter % (d/2 + 1)
	}
	return d
}

// Do runs op up to p.MaxAttempts times, stopping on success or on the
// first permanent error.  It is only for *idempotent* operations: a lost
// reply (the at-most-once ambiguity) means op may have executed on the
// peer even though the caller saw a failure.
func (p Policy) Do(op func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil || !p.IsTransient(err) {
			return err
		}
	}
	return err
}

// mix is splitmix64's finalizer: a cheap deterministic hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// State is a peer's health as seen by the tracker.
type State int

// Peer health states: Healthy peers are probed freely; Slow peers answer —
// but with a latency EWMA above the slow threshold, so load should be shed
// toward faster replicas before the peer degrades further; Suspect peers
// have failed recently but are still probed; Dead peers failed repeatedly
// and are skipped until a cool-down expires, then reprobed.
const (
	Healthy State = iota
	Slow
	Suspect
	Dead
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Slow:
		return "slow"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Tracker maintains per-peer health: healthy -> suspect (first failure) ->
// dead (DeadAfter consecutive failures), with a cool-down reprobe while
// dead.  All methods are safe for concurrent use.  Time is virtual ticks
// supplied by the caller.
type Tracker struct {
	deadAfter int
	cooldown  uint64

	mu        sync.Mutex
	slowAfter uint64 // EWMA ticks above which a failure-free peer is Slow; 0 = off
	peers     map[string]*peerHealth
}

type peerHealth struct {
	fails     int
	nextProbe uint64 // while dead: earliest tick to reprobe

	// Latency profile, fed by ObserveLatency.  float64 EWMA arithmetic on
	// integer tick samples is deterministic across platforms (IEEE 754).
	ewma    float64
	hasEwma bool

	deadlineMisses uint64 // exchanges abandoned at their RPC deadline
}

// ewmaAlpha weights new latency samples: 1/4 new, 3/4 history — reactive
// enough to flag a peer within a few slow pulls, calm enough that one
// spike doesn't flap the state.
const ewmaAlpha = 0.25

// NewTracker builds a tracker: a peer is dead after deadAfter consecutive
// failures and is then reprobed every cooldown ticks.
func NewTracker(deadAfter int, cooldown uint64) *Tracker {
	if deadAfter < 1 {
		deadAfter = 1
	}
	if cooldown < 1 {
		cooldown = 1
	}
	return &Tracker{deadAfter: deadAfter, cooldown: cooldown, peers: make(map[string]*peerHealth)}
}

func (t *Tracker) peer(key string) *peerHealth {
	ph, ok := t.peers[key]
	if !ok {
		ph = &peerHealth{}
		t.peers[key] = ph
	}
	return ph
}

// Reset forgets all peer state (a rebooted kernel starts with no health
// knowledge).
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers = make(map[string]*peerHealth)
}

// SetSlowThreshold enables latency-aware health: a peer whose latency EWMA
// exceeds ticks counts Slow even while every exchange succeeds.  0 disables.
func (t *Tracker) SetSlowThreshold(ticks uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.slowAfter = ticks
}

// ObserveLatency feeds one latency sample (virtual ticks) into the peer's
// EWMA.  Call it for completed exchanges — including deadline misses, whose
// elapsed time (the deadline) is exactly the slowness being measured.
func (t *Tracker) ObserveLatency(key string, ticks uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ph := t.peer(key)
	if !ph.hasEwma {
		ph.ewma, ph.hasEwma = float64(ticks), true
		return
	}
	ph.ewma = (1-ewmaAlpha)*ph.ewma + ewmaAlpha*float64(ticks)
}

// DeadlineMiss counts an exchange abandoned at its RPC deadline.  It is a
// counter only; callers record the failure itself via Fail.
func (t *Tracker) DeadlineMiss(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peer(key).deadlineMisses++
}

// Latency returns the peer's current latency EWMA in ticks, if any samples
// have been observed.
func (t *Tracker) Latency(key string) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ph, ok := t.peers[key]
	if !ok || !ph.hasEwma {
		return 0, false
	}
	return uint64(ph.ewma), true
}

// OK records a successful exchange with the peer: fully healthy again.
// The latency profile survives — a slow peer does not become fast by
// answering — only the failure streak resets.
func (t *Tracker) OK(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ph, ok := t.peers[key]
	if !ok {
		return
	}
	if !ph.hasEwma && ph.deadlineMisses == 0 {
		delete(t.peers, key)
		return
	}
	ph.fails, ph.nextProbe = 0, 0
}

// Fail records a failed exchange at tick now; while dead the next reprobe
// is scheduled cooldown ticks out.
func (t *Tracker) Fail(key string, now uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ph := t.peer(key)
	ph.fails++
	if ph.fails >= t.deadAfter {
		ph.nextProbe = now + t.cooldown
	}
}

// State reports the peer's current health.
func (t *Tracker) State(key string) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stateLocked(key)
}

func (t *Tracker) stateLocked(key string) State {
	ph, ok := t.peers[key]
	switch {
	case !ok:
		return Healthy
	case ph.fails == 0:
		if t.slowAfter > 0 && ph.hasEwma && ph.ewma > float64(t.slowAfter) {
			return Slow
		}
		return Healthy
	case ph.fails < t.deadAfter:
		return Suspect
	default:
		return Dead
	}
}

// HealthInfo is one peer's full tracked profile.
type HealthInfo struct {
	State          State
	Fails          int    // consecutive failures
	EWMATicks      uint64 // latency EWMA (valid iff HasLatency)
	HasLatency     bool
	DeadlineMisses uint64
}

// Snapshot returns the peer's full health profile in one consistent read.
func (t *Tracker) Snapshot(key string) HealthInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := HealthInfo{State: t.stateLocked(key)}
	if ph, ok := t.peers[key]; ok {
		info.Fails = ph.fails
		info.HasLatency = ph.hasEwma
		info.EWMATicks = uint64(ph.ewma)
		info.DeadlineMisses = ph.deadlineMisses
	}
	return info
}

// ShouldProbe reports whether the caller should spend effort contacting
// the peer at tick now.  Healthy and suspect peers: always.  Dead peers:
// only when the cool-down has expired (and then the next reprobe is
// rescheduled, so exactly one pass per cool-down window pays the probe).
func (t *Tracker) ShouldProbe(key string, now uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ph, ok := t.peers[key]
	if !ok || ph.fails < t.deadAfter {
		return true
	}
	if now >= ph.nextProbe {
		ph.nextProbe = now + t.cooldown
		return true
	}
	return false
}
