package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func accSet(members ...int) []ids.ReplicaID {
	out := make([]ids.ReplicaID, len(members))
	for i, m := range members {
		out[i] = ids.ReplicaID(m)
	}
	return out
}

func TestOneCopy(t *testing.T) {
	p := OneCopy{}
	if p.CanRead(nil, 3) || p.CanUpdate(nil, 3) {
		t.Fatal("empty set allowed")
	}
	if !p.CanRead(accSet(2), 3) || !p.CanUpdate(accSet(3), 3) {
		t.Fatal("single replica refused")
	}
}

func TestPrimaryCopy(t *testing.T) {
	strict := PrimaryCopy{Primary: 1}
	relaxed := PrimaryCopy{Primary: 1, ReadsAnywhere: true}
	if strict.CanRead(accSet(2, 3), 3) {
		t.Fatal("strict read without primary")
	}
	if !relaxed.CanRead(accSet(2, 3), 3) {
		t.Fatal("relaxed read refused")
	}
	for _, p := range []Policy{strict, relaxed} {
		if p.CanUpdate(accSet(2, 3), 3) {
			t.Fatalf("%s: update without primary", p.Name())
		}
		if !p.CanUpdate(accSet(1), 3) {
			t.Fatalf("%s: update with primary refused", p.Name())
		}
	}
}

func TestMajorityVoting(t *testing.T) {
	p := MajorityVoting{}
	cases := []struct {
		acc   []ids.ReplicaID
		total int
		want  bool
	}{
		{accSet(1), 3, false},
		{accSet(1, 2), 3, true},
		{accSet(1, 2), 4, false},
		{accSet(1, 2, 3), 4, true},
		{accSet(1), 1, true},
	}
	for _, c := range cases {
		if got := p.CanUpdate(c.acc, c.total); got != c.want {
			t.Errorf("majority(%v of %d) = %v, want %v", c.acc, c.total, got, c.want)
		}
		if p.CanRead(c.acc, c.total) != p.CanUpdate(c.acc, c.total) {
			t.Error("majority read/update should coincide")
		}
	}
}

func TestWeightedVotingValidation(t *testing.T) {
	w := map[ids.ReplicaID]int{1: 2, 2: 1, 3: 1} // total 4
	if _, err := NewWeightedVoting(w, 1, 2); err == nil {
		t.Fatal("r+w <= total accepted")
	}
	if _, err := NewWeightedVoting(w, 3, 2); err == nil {
		t.Fatal("w <= total/2 accepted")
	}
	if _, err := NewWeightedVoting(map[ids.ReplicaID]int{1: -1}, 1, 1); err == nil {
		t.Fatal("negative weight accepted")
	}
	v, err := NewWeightedVoting(w, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Replica 1 alone has 2 votes: enough to read, not to write.
	if !v.CanRead(accSet(1), 3) || v.CanUpdate(accSet(1), 3) {
		t.Fatal("weighted votes miscounted")
	}
	if !v.CanUpdate(accSet(1, 2), 3) {
		t.Fatal("3 votes should write")
	}
	if v.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestQuorumConsensusValidation(t *testing.T) {
	if _, err := NewQuorumConsensus(3, 1, 2); err == nil {
		t.Fatal("non-intersecting quorums accepted")
	}
	if _, err := NewQuorumConsensus(4, 3, 2); err == nil {
		t.Fatal("write quorum <= n/2 accepted")
	}
	q, err := NewQuorumConsensus(3, 1, 3) // read-one/write-all
	if err != nil {
		t.Fatal(err)
	}
	if !q.CanRead(accSet(2), 3) {
		t.Fatal("read-one refused")
	}
	if q.CanUpdate(accSet(1, 2), 3) {
		t.Fatal("write-all satisfied by 2 of 3")
	}
	if !q.CanUpdate(accSet(1, 2, 3), 3) {
		t.Fatal("write-all refused full set")
	}
}

// TestOneCopyDominatesPointwise is the paper's §1 claim in its strongest
// form: for EVERY possible accessibility set, if any baseline allows an
// operation then one-copy allows it too (and one-copy allows strictly more:
// any single accessible replica).
func TestOneCopyDominatesPointwise(t *testing.T) {
	one := OneCopy{}
	const n = 5
	f := func(mask uint8) bool {
		var acc []ids.ReplicaID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				acc = append(acc, ids.ReplicaID(i+1))
			}
		}
		for _, p := range StandardSet(n) {
			if p.CanRead(acc, n) && !one.CanRead(acc, n) {
				return false
			}
			if p.CanUpdate(acc, n) && !one.CanUpdate(acc, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Strictness: some accessible set allows one-copy updates but no
	// quorum/primary baseline (any single non-primary replica).
	acc := accSet(2)
	if !one.CanUpdate(acc, n) {
		t.Fatal("one-copy refused a single replica")
	}
	for _, p := range StandardSet(n)[1:] {
		if p.CanUpdate(acc, n) {
			t.Fatalf("%s allows update with one non-primary replica; dominance not strict", p.Name())
		}
	}
}

func TestQuorumIntersectionSafety(t *testing.T) {
	// Any read quorum must intersect any write quorum for every policy
	// built by StandardSet — the property that makes the baselines provide
	// serializable behaviour (which is what they buy for their lower
	// availability).
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= 7; n++ {
		for _, p := range StandardSet(n) {
			if _, ok := p.(OneCopy); ok {
				continue // one-copy deliberately gives this up
			}
			for trial := 0; trial < 200; trial++ {
				a := randSubset(rng, n)
				b := randSubset(rng, n)
				if p.CanRead(a, n) && p.CanUpdate(b, n) && !intersects(a, b) {
					// Primary copy with reads-anywhere serves stale reads by
					// design; exclude it from the strict check.
					if pc, ok := p.(PrimaryCopy); ok && pc.ReadsAnywhere {
						continue
					}
					t.Fatalf("n=%d %s: read quorum %v and write quorum %v disjoint", n, p.Name(), a, b)
				}
			}
		}
	}
}

func randSubset(rng *rand.Rand, n int) []ids.ReplicaID {
	var out []ids.ReplicaID
	for i := 1; i <= n; i++ {
		if rng.Intn(2) == 0 {
			out = append(out, ids.ReplicaID(i))
		}
	}
	return out
}

func intersects(a, b []ids.ReplicaID) bool {
	set := map[ids.ReplicaID]bool{}
	for _, r := range a {
		set[r] = true
	}
	for _, r := range b {
		if set[r] {
			return true
		}
	}
	return false
}

func TestStandardSetShape(t *testing.T) {
	ps := StandardSet(3)
	if len(ps) != 6 {
		t.Fatalf("%d policies", len(ps))
	}
	if _, ok := ps[0].(OneCopy); !ok {
		t.Fatal("one-copy must come first")
	}
	for _, p := range ps {
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
}
