// Package baseline implements the replica-control disciplines Ficus
// compares against (paper §1): primary copy (Alsberg & Day 1976), majority
// voting (Thomas 1979), weighted voting (Gifford 1979), and quorum
// consensus (Herlihy 1986) — plus Ficus's own one-copy availability.
//
// Each discipline is an executable predicate over the set of replicas a
// client can currently reach, so the availability experiment (E4) can
// replay identical failure/partition scenarios through every policy and
// compare.  The paper's claim is strict dominance: "one-copy availability
// provides strictly greater availability than primary copy, voting,
// weighted voting, and quorum consensus."
package baseline

import (
	"fmt"

	"repro/internal/ids"
)

// Policy decides whether a read or an update may proceed given which
// replicas the client can reach.  total is the full replica count.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// CanRead reports whether a read may be served.
	CanRead(accessible []ids.ReplicaID, total int) bool
	// CanUpdate reports whether an update may be performed.
	CanUpdate(accessible []ids.ReplicaID, total int) bool
}

// OneCopy is the Ficus discipline: any accessible replica suffices for both
// reads and updates; divergence is repaired later by reconciliation (§1).
type OneCopy struct{}

// Name implements Policy.
func (OneCopy) Name() string { return "one-copy (Ficus)" }

// CanRead implements Policy.
func (OneCopy) CanRead(acc []ids.ReplicaID, _ int) bool { return len(acc) > 0 }

// CanUpdate implements Policy.
func (OneCopy) CanUpdate(acc []ids.ReplicaID, _ int) bool { return len(acc) > 0 }

// PrimaryCopy requires the designated primary for updates.  ReadsAnywhere
// selects the common relaxation that lets any replica serve (possibly
// stale) reads; with it false, reads too must reach the primary.
type PrimaryCopy struct {
	Primary       ids.ReplicaID
	ReadsAnywhere bool
}

// Name implements Policy.
func (p PrimaryCopy) Name() string {
	if p.ReadsAnywhere {
		return "primary copy (reads anywhere)"
	}
	return "primary copy (strict)"
}

func (p PrimaryCopy) primaryIn(acc []ids.ReplicaID) bool {
	for _, r := range acc {
		if r == p.Primary {
			return true
		}
	}
	return false
}

// CanRead implements Policy.
func (p PrimaryCopy) CanRead(acc []ids.ReplicaID, total int) bool {
	if p.ReadsAnywhere {
		return len(acc) > 0
	}
	return p.primaryIn(acc)
}

// CanUpdate implements Policy.
func (p PrimaryCopy) CanUpdate(acc []ids.ReplicaID, _ int) bool { return p.primaryIn(acc) }

// MajorityVoting requires a strict majority of all replicas for both reads
// and updates (Thomas's solution to multi-copy concurrency control).
type MajorityVoting struct{}

// Name implements Policy.
func (MajorityVoting) Name() string { return "majority voting" }

// CanRead implements Policy.
func (MajorityVoting) CanRead(acc []ids.ReplicaID, total int) bool {
	return 2*len(acc) > total
}

// CanUpdate implements Policy.
func (MajorityVoting) CanUpdate(acc []ids.ReplicaID, total int) bool {
	return 2*len(acc) > total
}

// WeightedVoting assigns each replica a vote weight; reads need R votes and
// writes W votes with R+W exceeding the total and W more than half of it
// (Gifford's conditions, which the constructor enforces).
type WeightedVoting struct {
	Weights map[ids.ReplicaID]int
	R, W    int
	total   int
}

// NewWeightedVoting validates Gifford's quorum conditions.
func NewWeightedVoting(weights map[ids.ReplicaID]int, r, w int) (*WeightedVoting, error) {
	total := 0
	for _, wt := range weights {
		if wt < 0 {
			return nil, fmt.Errorf("baseline: negative weight")
		}
		total += wt
	}
	if r+w <= total {
		return nil, fmt.Errorf("baseline: r+w=%d must exceed total weight %d", r+w, total)
	}
	if 2*w <= total {
		return nil, fmt.Errorf("baseline: w=%d must exceed half the total weight %d", w, total)
	}
	return &WeightedVoting{Weights: weights, R: r, W: w, total: total}, nil
}

// Name implements Policy.
func (v *WeightedVoting) Name() string { return fmt.Sprintf("weighted voting (r=%d,w=%d)", v.R, v.W) }

func (v *WeightedVoting) votes(acc []ids.ReplicaID) int {
	n := 0
	for _, r := range acc {
		n += v.Weights[r]
	}
	return n
}

// CanRead implements Policy.
func (v *WeightedVoting) CanRead(acc []ids.ReplicaID, _ int) bool { return v.votes(acc) >= v.R }

// CanUpdate implements Policy.
func (v *WeightedVoting) CanUpdate(acc []ids.ReplicaID, _ int) bool { return v.votes(acc) >= v.W }

// QuorumConsensus requires fixed read/write quorum sizes with intersecting
// quorums (Herlihy's construction specialized to replica counts).
type QuorumConsensus struct {
	ReadQ, WriteQ int
}

// NewQuorumConsensus validates the intersection conditions for n replicas.
func NewQuorumConsensus(n, readQ, writeQ int) (*QuorumConsensus, error) {
	if readQ+writeQ <= n {
		return nil, fmt.Errorf("baseline: readQ+writeQ=%d must exceed n=%d", readQ+writeQ, n)
	}
	if 2*writeQ <= n {
		return nil, fmt.Errorf("baseline: writeQ=%d must exceed n/2 (n=%d)", writeQ, n)
	}
	return &QuorumConsensus{ReadQ: readQ, WriteQ: writeQ}, nil
}

// Name implements Policy.
func (q *QuorumConsensus) Name() string {
	return fmt.Sprintf("quorum consensus (qr=%d,qw=%d)", q.ReadQ, q.WriteQ)
}

// CanRead implements Policy.
func (q *QuorumConsensus) CanRead(acc []ids.ReplicaID, _ int) bool { return len(acc) >= q.ReadQ }

// CanUpdate implements Policy.
func (q *QuorumConsensus) CanUpdate(acc []ids.ReplicaID, _ int) bool { return len(acc) >= q.WriteQ }

// StandardSet builds the comparison set the E4 experiment sweeps: every
// baseline configured sensibly for n equally weighted replicas, plus
// one-copy availability.
func StandardSet(n int) []Policy {
	weights := make(map[ids.ReplicaID]int, n)
	for i := 1; i <= n; i++ {
		weights[ids.ReplicaID(i)] = 1
	}
	maj := n/2 + 1
	wv, err := NewWeightedVoting(weights, n-maj+1, maj) // r+w = n+1
	if err != nil {
		panic(err) // construction above always satisfies the conditions
	}
	qc, err := NewQuorumConsensus(n, 1, n) // read-one/write-all
	if err != nil {
		panic(err)
	}
	return []Policy{
		OneCopy{},
		PrimaryCopy{Primary: 1, ReadsAnywhere: true},
		PrimaryCopy{Primary: 1},
		MajorityVoting{},
		wv,
		qc,
	}
}
