package ids

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFileIDStringRoundTrip(t *testing.T) {
	cases := []FileID{
		{},
		RootFileID,
		{Issuer: 1, Seq: 2},
		{Issuer: 0xffffffff, Seq: 0xffffffffffffffff},
		{Issuer: 0xdeadbeef, Seq: 0x0123456789abcdef},
	}
	for _, want := range cases {
		s := want.String()
		if len(s) != 24 {
			t.Errorf("FileID %v string %q: length %d, want 24", want, s, len(s))
		}
		got, err := ParseFileID(s)
		if err != nil {
			t.Fatalf("ParseFileID(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("round trip %v -> %q -> %v", want, s, got)
		}
	}
}

func TestFileIDStringRoundTripProperty(t *testing.T) {
	f := func(issuer uint32, seq uint64) bool {
		id := FileID{Issuer: ReplicaID(issuer), Seq: seq}
		got, err := ParseFileID(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFileIDErrors(t *testing.T) {
	bad := []string{
		"",
		"00",
		"zzzzzzzzzzzzzzzzzzzzzzzz",
		"0000000100000000000000010",          // 25 chars
		"g0000001000000000000001",            // non-hex, 23 chars
		strings.Repeat("g", 24),              // non-hex issuer
		"00000001" + strings.Repeat("g", 16), // non-hex seq
	}
	for _, s := range bad {
		if _, err := ParseFileID(s); err == nil {
			t.Errorf("ParseFileID(%q): expected error", s)
		}
	}
}

func TestVolumeHandleRoundTrip(t *testing.T) {
	f := func(a, v uint32) bool {
		vh := VolumeHandle{Allocator: AllocatorID(a), Volume: VolumeID(v)}
		got, err := ParseVolumeHandle(vh.String())
		return err == nil && got == vh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseVolumeHandleErrors(t *testing.T) {
	bad := []string{"", "0", "xx.yy", "1.2.3", "00000001", "0000000z.00000001", "00000001.0000000z"}
	for _, s := range bad {
		if _, err := ParseVolumeHandle(s); err == nil {
			t.Errorf("ParseVolumeHandle(%q): expected error", s)
		}
	}
}

func TestFileHandleRoundTrip(t *testing.T) {
	f := func(a, v, issuer uint32, seq uint64) bool {
		h := FileHandle{
			Vol:  VolumeHandle{Allocator: AllocatorID(a), Volume: VolumeID(v)},
			File: FileID{Issuer: ReplicaID(issuer), Seq: seq},
		}
		got, err := ParseFileHandle(h.String())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFileHandleErrors(t *testing.T) {
	bad := []string{"", "nodots", "00000001.00000002.zz"}
	for _, s := range bad {
		if _, err := ParseFileHandle(s); err == nil {
			t.Errorf("ParseFileHandle(%q): expected error", s)
		}
	}
}

func TestReplicaHandleProjections(t *testing.T) {
	r := ReplicaHandle{
		Vol:     VolumeHandle{Allocator: 7, Volume: 9},
		File:    FileID{Issuer: 3, Seq: 42},
		Replica: 5,
	}
	if fh := r.FileHandle(); fh.Vol != r.Vol || fh.File != r.File {
		t.Errorf("FileHandle projection wrong: %v", fh)
	}
	if vr := r.VolumeReplica(); vr.Vol != r.Vol || vr.Replica != r.Replica {
		t.Errorf("VolumeReplica projection wrong: %v", vr)
	}
	if !strings.Contains(r.String(), r.File.String()) {
		t.Errorf("ReplicaHandle string %q missing file id", r)
	}
	vr := VolumeReplicaHandle{Vol: r.Vol, Replica: r.Replica}
	if !strings.HasPrefix(vr.String(), r.Vol.String()) {
		t.Errorf("VolumeReplicaHandle string %q missing volume handle", vr)
	}
}

func TestSequencerIssuesUniqueIDs(t *testing.T) {
	s := NewSequencer(4, 2)
	seen := make(map[FileID]bool)
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if id.Issuer != 4 {
			t.Fatalf("issuer %d, want 4", id.Issuer)
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
	if s.Last() != 1001 {
		t.Fatalf("Last() = %d, want 1001", s.Last())
	}
}

func TestSequencerStartZeroBumpsToOne(t *testing.T) {
	s := NewSequencer(1, 0)
	if id := s.Next(); id.Seq != 1 {
		t.Fatalf("first seq %d, want 1", id.Seq)
	}
}

func TestSequencerResume(t *testing.T) {
	s := NewSequencer(1, 2)
	s.Resume(100)
	if id := s.Next(); id.Seq != 101 {
		t.Fatalf("after Resume(100): seq %d, want 101", id.Seq)
	}
	// Resume to an older point must not move the sequencer backwards.
	s.Resume(5)
	if id := s.Next(); id.Seq != 102 {
		t.Fatalf("after Resume(5): seq %d, want 102", id.Seq)
	}
}

func TestIndependentSequencersNeverCollide(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewSequencer(1, 2)
	b := NewSequencer(2, 2)
	seen := make(map[FileID]bool)
	for i := 0; i < 2000; i++ {
		var id FileID
		if rng.Intn(2) == 0 {
			id = a.Next()
		} else {
			id = b.Next()
		}
		if seen[id] {
			t.Fatalf("collision across independent sequencers: %v", id)
		}
		seen[id] = true
	}
}

func TestRootFileIDIsWellKnown(t *testing.T) {
	if RootFileID.IsNil() {
		t.Fatal("root file id must not be nil")
	}
	if NilFileID != (FileID{}) || !NilFileID.IsNil() {
		t.Fatal("nil file id sentinel broken")
	}
	// A sequencer for issuer 0 starting at 2 must never re-issue the root.
	s := NewSequencer(0, 2)
	for i := 0; i < 100; i++ {
		if s.Next() == RootFileID {
			t.Fatal("sequencer re-issued the root file id")
		}
	}
}
