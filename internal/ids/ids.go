// Package ids defines the identifier scheme of the Ficus replicated file
// system (Guy et al., USENIX Summer 1990, §3.1 and §4.2).
//
// A volume is named by an allocator id (a globally unique value issued to
// each Ficus host before installation) and a volume id issued by that
// allocator.  A volume replica adds a replica id.  Within a volume, a
// logical file is named by a file id; to guarantee uniqueness without
// coordination, a file id is the pair <issuing replica id, sequence number>.
// A particular file replica is fully specified by
//
//	<allocator-id, volume-id, file-id, replica-id>
//
// which is unique across all Ficus hosts in existence.
//
// The physical layer stores Ficus files as UFS files whose names are
// hexadecimal encodings of these identifiers (paper §2.6); the encoding and
// decoding functions live here so the logical layer, the physical layer and
// fsck-style tools all agree on the mapping.
package ids

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// AllocatorID names the host that allocated a volume id.  The paper suggests
// an Internet host address would suffice.
type AllocatorID uint32

// VolumeID names a volume within the namespace of one allocator.
type VolumeID uint32

// ReplicaID names one replica of a volume.  The paper bounds the replication
// factor at 2^32 replicas of a given file (§3.1 fn4).
type ReplicaID uint32

// FileID uniquely names a logical file within a volume.  File ids are issued
// independently by each volume replica; prefixing the issuing replica's id
// makes concurrent issuance collision-free (paper §4.2).
type FileID struct {
	Issuer ReplicaID // replica that allocated this id
	Seq    uint64    // issuer-local sequence number
}

// RootFileID is the well-known file id of a volume's root directory.  Every
// volume replica must store a replica of the root node (paper §4.1), so the
// root id is fixed rather than issued.
var RootFileID = FileID{Issuer: 0, Seq: 1}

// Zero values double as "absent" sentinels throughout the system.
var (
	NilFileID = FileID{}
)

// IsNil reports whether the file id is the absent sentinel.
func (f FileID) IsNil() bool { return f == NilFileID }

// String renders the file id in the fixed-width hexadecimal form used as a
// UFS name component by the physical layer.
func (f FileID) String() string {
	return fmt.Sprintf("%08x%016x", uint32(f.Issuer), f.Seq)
}

// ParseFileID decodes the fixed-width hexadecimal form produced by String.
func ParseFileID(s string) (FileID, error) {
	if len(s) != 24 {
		return FileID{}, fmt.Errorf("ids: file id %q: want 24 hex digits, have %d", s, len(s))
	}
	issuer, err := strconv.ParseUint(s[:8], 16, 32)
	if err != nil {
		return FileID{}, fmt.Errorf("ids: file id %q: %v", s, err)
	}
	seq, err := strconv.ParseUint(s[8:], 16, 64)
	if err != nil {
		return FileID{}, fmt.Errorf("ids: file id %q: %v", s, err)
	}
	return FileID{Issuer: ReplicaID(issuer), Seq: seq}, nil
}

// VolumeHandle globally names a logical volume.
type VolumeHandle struct {
	Allocator AllocatorID
	Volume    VolumeID
}

// String renders the volume handle as dotted hex, e.g. "0000000a.00000001".
func (v VolumeHandle) String() string {
	return fmt.Sprintf("%08x.%08x", uint32(v.Allocator), uint32(v.Volume))
}

// ParseVolumeHandle decodes the form produced by VolumeHandle.String.
func ParseVolumeHandle(s string) (VolumeHandle, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 2 {
		return VolumeHandle{}, fmt.Errorf("ids: volume handle %q: want two dotted fields", s)
	}
	a, err := strconv.ParseUint(parts[0], 16, 32)
	if err != nil {
		return VolumeHandle{}, fmt.Errorf("ids: volume handle %q: %v", s, err)
	}
	v, err := strconv.ParseUint(parts[1], 16, 32)
	if err != nil {
		return VolumeHandle{}, fmt.Errorf("ids: volume handle %q: %v", s, err)
	}
	return VolumeHandle{Allocator: AllocatorID(a), Volume: VolumeID(v)}, nil
}

// VolumeReplicaHandle globally names one replica of a volume:
// <allocator-id, volume-id, replica-id> (paper §4.2).
type VolumeReplicaHandle struct {
	Vol     VolumeHandle
	Replica ReplicaID
}

// String renders the volume replica handle as dotted hex.
func (v VolumeReplicaHandle) String() string {
	return fmt.Sprintf("%s.%08x", v.Vol, uint32(v.Replica))
}

// FileHandle names a logical file: <allocator-id, volume-id, file-id>.  The
// logical layer maps client-supplied names to file handles and uses them to
// communicate file identity to physical layers (paper §2.5).
type FileHandle struct {
	Vol  VolumeHandle
	File FileID
}

// String renders the file handle as dotted hex.
func (h FileHandle) String() string {
	return fmt.Sprintf("%s.%s", h.Vol, h.File)
}

// ParseFileHandle decodes the form produced by FileHandle.String.
func ParseFileHandle(s string) (FileHandle, error) {
	i := strings.LastIndexByte(s, '.')
	if i < 0 {
		return FileHandle{}, errors.New("ids: file handle: missing separators")
	}
	vh, err := ParseVolumeHandle(s[:i])
	if err != nil {
		return FileHandle{}, err
	}
	fid, err := ParseFileID(s[i+1:])
	if err != nil {
		return FileHandle{}, err
	}
	return FileHandle{Vol: vh, File: fid}, nil
}

// ReplicaHandle fully specifies one physical replica of one file:
// <allocator-id, volume-id, file-id, replica-id> (paper §4.2).
type ReplicaHandle struct {
	Vol     VolumeHandle
	File    FileID
	Replica ReplicaID
}

// FileHandle projects away the replica component.
func (r ReplicaHandle) FileHandle() FileHandle {
	return FileHandle{Vol: r.Vol, File: r.File}
}

// VolumeReplica projects the containing volume replica.
func (r ReplicaHandle) VolumeReplica() VolumeReplicaHandle {
	return VolumeReplicaHandle{Vol: r.Vol, Replica: r.Replica}
}

// String renders the replica handle as dotted hex.
func (r ReplicaHandle) String() string {
	return fmt.Sprintf("%s.%s.%08x", r.Vol, r.File, uint32(r.Replica))
}

// Sequencer issues file ids on behalf of one volume replica.  It is the
// paper's "each volume replica assigns file identifiers to new files
// independently" (§4.2): ids carry the issuing replica so independent
// sequencers can never collide.
type Sequencer struct {
	replica ReplicaID
	next    uint64
}

// NewSequencer returns a sequencer for the given replica.  The first id
// issued has sequence number `start` (use 2: sequence 1 under issuer 0 is
// reserved for the volume root).
func NewSequencer(replica ReplicaID, start uint64) *Sequencer {
	if start == 0 {
		start = 1
	}
	return &Sequencer{replica: replica, next: start}
}

// Next issues a fresh file id.
func (s *Sequencer) Next() FileID {
	id := FileID{Issuer: s.replica, Seq: s.next}
	s.next++
	return id
}

// Resume tells the sequencer that ids up to and including seq have been
// issued previously (used after remounting a volume replica, where the next
// sequence number is recovered from stable storage).
func (s *Sequencer) Resume(seq uint64) {
	if seq+1 > s.next {
		s.next = seq + 1
	}
}

// Last reports the most recently issued sequence number (0 if none).
func (s *Sequencer) Last() uint64 { return s.next - 1 }
