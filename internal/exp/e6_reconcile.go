package exp

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/recon"
	"repro/internal/sim"
	"repro/internal/vnode"
)

// E6 — paper §3.3/§1: after a partition with concurrent activity on both
// sides, the periodic reconciliation protocol converges all replicas;
// conflicting directory updates are repaired automatically and conflicting
// file updates are detected and reported.

// ReconcileResult summarizes one partition-churn-heal-reconcile run.
type ReconcileResult struct {
	Hosts          int
	UpdatesPerSide int
	Rounds         int // reconciliation rounds to quiescence
	EntriesAdopted int
	FilesPulled    int
	FileConflicts  int // concurrent file updates reported
	NameRepairs    int // directory collisions auto-repaired
	Converged      bool
}

// RunReconcileChurn partitions an n-host cluster into two halves, performs
// churn (creates, updates, deletes) independently on both sides, heals, and
// reconciles to quiescence.
func RunReconcileChurn(hosts, updatesPerSide int, seed int64) (ReconcileResult, error) {
	res := ReconcileResult{Hosts: hosts, UpdatesPerSide: updatesPerSide}
	c, err := sim.New(sim.Config{Hosts: hosts, Seed: seed})
	if err != nil {
		return res, err
	}
	root0, err := c.Mount(0, logical.FirstAvailable)
	if err != nil {
		return res, err
	}
	// Shared base files (targets for conflicting updates).
	for i := 0; i < 4; i++ {
		f, err := root0.Create(fmt.Sprintf("shared-%d", i), true)
		if err != nil {
			return res, err
		}
		if err := vnode.WriteFile(f, []byte("base")); err != nil {
			return res, err
		}
	}
	if _, err := c.Settle(8); err != nil {
		return res, err
	}

	// Partition into two halves.
	var left, right []int
	for i := 0; i < hosts; i++ {
		if i < hosts/2 || hosts == 1 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	c.Partition(left, right)

	churn := func(host int, tag string) error {
		root, err := c.Mount(host, logical.FirstAvailable)
		if err != nil {
			return err
		}
		for i := 0; i < updatesPerSide; i++ {
			switch i % 3 {
			case 0: // create a side-local file
				f, err := root.Create(fmt.Sprintf("%s-%d", tag, i), true)
				if err != nil {
					return err
				}
				if err := vnode.WriteFile(f, []byte(tag)); err != nil {
					return err
				}
			case 1: // update a shared file (conflict fodder)
				f, err := root.Lookup(fmt.Sprintf("shared-%d", i%4))
				if err != nil {
					return err
				}
				if _, err := f.WriteAt([]byte(tag), 0); err != nil {
					return err
				}
			case 2: // same-name create on both sides (directory conflict)
				if _, err := root.Create(fmt.Sprintf("both-%d", i), false); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := churn(left[0], "left"); err != nil {
		return res, err
	}
	if len(right) > 0 {
		if err := churn(right[0], "right"); err != nil {
			return res, err
		}
	}

	// Heal and reconcile to quiescence.
	c.Heal()
	for round := 1; round <= 20; round++ {
		stats, err := c.ReconcileAll()
		if err != nil {
			return res, err
		}
		res.EntriesAdopted += stats.EntriesAdopted
		res.FilesPulled += stats.FilesPulled
		if stats.NameRepairs > res.NameRepairs {
			res.NameRepairs = stats.NameRepairs
		}
		res.Rounds = round
		if !statsChanged(stats) {
			res.Converged = true
			break
		}
	}
	for _, confs := range c.Conflicts() {
		res.FileConflicts += len(confs)
	}
	// Convergence check: identical directory listings everywhere.
	if res.Converged {
		var ref string
		for i := 0; i < hosts; i++ {
			root, err := c.Mount(i, logical.FirstAvailable)
			if err != nil {
				return res, err
			}
			s, err := listingOf(root)
			if err != nil {
				return res, err
			}
			if i == 0 {
				ref = s
			} else if s != ref {
				res.Converged = false
			}
		}
	}
	return res, nil
}

func statsChanged(s recon.Stats) bool { return s.Changed() }

func listingOf(root vnode.Vnode) (string, error) {
	ents, err := root.Readdir()
	if err != nil {
		return "", err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	// Readdir order is deterministic (entry-id order), so join directly.
	out := ""
	for _, n := range names {
		out += n + "\n"
	}
	return out, nil
}
