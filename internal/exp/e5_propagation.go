package exp

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/sim"
	"repro/internal/vnode"
	"repro/internal/workload"
)

// E5 — paper §3.2: "Rapid propagation enhances the availability of the new
// version of the file; delayed propagation may reduce the overall
// propagation cost when updates are bursty."
//
// The harness replays an identical bursty update schedule on host 0 of a
// two-host cluster under two daemon schedules:
//
//   - immediate: the remote host runs its propagation daemon after every
//     update step;
//   - delayed: the daemon runs once every `delay` steps, letting the
//     new-version cache coalesce a burst into one pull.
//
// Metrics: how many file versions the daemon actually pulled (propagation
// cost), bytes moved over the network, and staleness — the total number of
// (step × file) units during which the remote replica lacked the newest
// version.

// PropagationRow is one policy's outcome.
type PropagationRow struct {
	Policy    string
	Pulls     int    // file versions installed at the remote replica
	RPCBytes  uint64 // network payload bytes spent on propagation
	Staleness uint64 // step-units the remote copy was out of date
	Datagrams uint64 // update notifications sent
}

// PropagationConfig sizes the E5 workload.
type PropagationConfig struct {
	Files    int
	BurstLen int
	GapSteps int
	Bursts   int
	Delay    int // daemon period for the delayed policy
	Seed     int64
}

// DefaultPropagationConfig is the configuration the benchmark suite uses.
func DefaultPropagationConfig() PropagationConfig {
	return PropagationConfig{Files: 8, BurstLen: 8, GapSteps: 4, Bursts: 12, Delay: 12, Seed: 1}
}

// RunPropagation measures one daemon schedule; period=1 is immediate.
func RunPropagation(cfg PropagationConfig, period int, label string) (PropagationRow, error) {
	row := PropagationRow{Policy: label}
	c, err := sim.New(sim.Config{Hosts: 2, Seed: cfg.Seed})
	if err != nil {
		return row, err
	}
	root, err := c.Mount(0, logical.FirstAvailable)
	if err != nil {
		return row, err
	}
	// Pre-create the files and settle so both replicas start identical.
	for i := 0; i < cfg.Files; i++ {
		f, err := root.Create(workload.NameFor(i), true)
		if err != nil {
			return row, err
		}
		if err := vnode.WriteFile(f, []byte("v0")); err != nil {
			return row, err
		}
	}
	if _, err := c.Settle(8); err != nil {
		return row, err
	}
	ups, err := workload.Bursts(workload.BurstConfig{
		Files: cfg.Files, BurstLen: cfg.BurstLen, GapSteps: cfg.GapSteps,
		Bursts: cfg.Bursts, Seed: cfg.Seed,
	})
	if err != nil {
		return row, err
	}
	c.Net.ResetStats()

	// Replay, tracking per-file dirtiness at the remote replica.
	dirtySince := map[int]int{}
	version := map[int]int{}
	lastStep := 0
	// stalePulse charges, at daemon time now, the staleness accumulated by
	// every file the remote replica is still missing updates for.
	stalePulse := func(now int) {
		for _, since := range dirtySince {
			row.Staleness += uint64(now - since)
		}
	}
	for _, u := range ups {
		version[u.File]++
		f, err := vnode.Walk(root, workload.NameFor(u.File))
		if err != nil {
			return row, err
		}
		if _, err := f.WriteAt([]byte(fmt.Sprintf("v%d", version[u.File])), 0); err != nil {
			return row, err
		}
		if _, ok := dirtySince[u.File]; !ok {
			dirtySince[u.File] = u.Step
		}
		if period > 0 && (u.Step+1)%period == 0 {
			stalePulse(u.Step + 1)
			stats, err := c.Hosts[1].PropagateOnce()
			if err != nil {
				return row, err
			}
			row.Pulls += stats.FilesPulled
			dirtySince = map[int]int{}
		}
		lastStep = u.Step
	}
	// Final drain so both policies end converged.
	stalePulse(lastStep + 1)
	stats, err := c.Hosts[1].PropagateOnce()
	if err != nil {
		return row, err
	}
	row.Pulls += stats.FilesPulled
	ns := c.Net.Stats()
	row.RPCBytes = ns.RPCBytes
	row.Datagrams = ns.Datagrams
	return row, nil
}

// PropagationComparison runs the immediate-vs-delayed pair.
func PropagationComparison(cfg PropagationConfig) (immediate, delayed PropagationRow, err error) {
	immediate, err = RunPropagation(cfg, 1, "immediate (every update)")
	if err != nil {
		return
	}
	delayed, err = RunPropagation(cfg, cfg.Delay, fmt.Sprintf("delayed (every %d steps)", cfg.Delay))
	return
}
