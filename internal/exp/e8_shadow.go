package exp

import (
	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// E8 — paper §3.2 fn5: the single-file atomic commit "is not necessary for
// the correct operation of the general Ficus functionality.  While its
// performance impact is usually small, it can have a significant effect if
// the client is updating a few points in a large file.  To avoid alteration
// of the UFS, rewriting the entire file is necessary."
//
// The harness updates a handful of bytes in files of increasing size two
// ways — a direct in-place replica write and a propagation-style install
// through the shadow commit — and counts device writes.  The in-place cost
// is flat; the shadow cost grows with the file, which is the paper's
// "significant effect" and the crossover the footnote warns about.

// ShadowRow is one file size's write costs.
type ShadowRow struct {
	FileBlocks    int
	InPlaceWrites uint64 // direct point update on the replica
	ShadowWrites  uint64 // full-file install through the atomic commit
}

// ShadowCommitCost measures point-update costs for each file size.
func ShadowCommitCost(fileBlocks []int) ([]ShadowRow, error) {
	out := make([]ShadowRow, 0, len(fileBlocks))
	for _, nb := range fileBlocks {
		dev := disk.New(16384 + nb*4)
		fs, err := ufs.Mkfs(dev, 2048, nil)
		if err != nil {
			return nil, err
		}
		layer, err := physical.Format(ufsvn.New(fs), ExpVol, 1)
		if err != nil {
			return nil, err
		}
		root, err := layer.Root()
		if err != nil {
			return nil, err
		}
		f, err := root.Create("big", true)
		if err != nil {
			return nil, err
		}
		data := make([]byte, nb*ufs.BlockSize)
		for i := range data {
			data[i] = byte(i)
		}
		if err := vnode.WriteFile(f, data); err != nil {
			return nil, err
		}
		a, err := f.Getattr()
		if err != nil {
			return nil, err
		}
		fid, err := ids.ParseFileID(a.FileID)
		if err != nil {
			return nil, err
		}

		// Point update, in place.
		dev.ResetStats()
		if _, err := f.WriteAt([]byte("patch"), int64(nb/2*ufs.BlockSize)); err != nil {
			return nil, err
		}
		inPlace := dev.Stats().Writes

		// The same logical change installed via the shadow commit (as
		// update propagation must do it).
		copy(data[nb/2*ufs.BlockSize:], "patch")
		st, err := layer.FileInfo(physical.RootPath(), fid)
		if err != nil {
			return nil, err
		}
		newVV := vv.Merge(st.Aux.VV, nil).Bump(2)
		dev.ResetStats()
		if err := layer.InstallFileVersion(physical.RootPath(), fid, physical.KFile, data, newVV, 1); err != nil {
			return nil, err
		}
		shadow := dev.Stats().Writes

		out = append(out, ShadowRow{FileBlocks: nb, InPlaceWrites: inPlace, ShadowWrites: shadow})
	}
	return out, nil
}
