// Package exp implements the experiment harnesses that regenerate the
// paper's evaluation (DESIGN.md experiments E1–E9).  Each harness is pure
// setup + measurement and returns structured rows, so both the benchmark
// suite (bench_test.go) and the cmd/ficusbench table printer drive the same
// code.
package exp

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/logical"
	"repro/internal/nfs"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

// ExpVol is the volume handle experiments use.
var ExpVol = ids.VolumeHandle{Allocator: 1, Volume: 1}

// --- E1/E2: stack composition and layer-crossing cost --------------------

// StackKind selects a stack shape for E1.
type StackKind int

// Stack shapes (paper Figures 1 and 2).
const (
	StackUFS              StackKind = iota // bare substrate
	StackFicusLocal                        // logical -> physical -> UFS (co-resident), resolution cache off
	StackFicusNFS                          // logical -> NFS -> physical -> UFS, resolution cache off
	StackFicusTwoRepl                      // logical -> {physical, NFS->physical}, resolution cache off
	StackFicusLocalCached                  // co-resident with the logical resolution cache on
)

// String names the stack.
func (k StackKind) String() string {
	switch k {
	case StackUFS:
		return "UFS only"
	case StackFicusLocal:
		return "logical+physical (co-resident)"
	case StackFicusNFS:
		return "logical+NFS+physical"
	case StackFicusTwoRepl:
		return "logical+{physical, NFS+physical}"
	case StackFicusLocalCached:
		return "logical+physical (cached)"
	default:
		return fmt.Sprintf("StackKind(%d)", int(k))
	}
}

func newStore() (*ufs.FS, *disk.Device, error) {
	dev := disk.New(16384)
	fs, err := ufs.Mkfs(dev, 4096, nil)
	return fs, dev, err
}

// BuildStack assembles one of the E1 stacks and returns its root.
func BuildStack(kind StackKind) (vnode.Vnode, error) {
	fs, _, err := newStore()
	if err != nil {
		return nil, err
	}
	switch kind {
	case StackUFS:
		return ufsvn.New(fs).Root()
	case StackFicusLocal, StackFicusLocalCached:
		phys, err := physical.Format(ufsvn.New(fs), ExpVol, 1)
		if err != nil {
			return nil, err
		}
		opts := logical.Options{CacheTTLOps: -1}
		if kind == StackFicusLocalCached {
			opts.CacheTTLOps = 0 // default cache
		}
		lay := logical.New(ExpVol, []logical.Replica{{ID: 1, FS: phys}}, opts)
		return lay.Root()
	case StackFicusNFS:
		phys, err := physical.Format(ufsvn.New(fs), ExpVol, 1)
		if err != nil {
			return nil, err
		}
		net := simnet.New(1)
		server := net.Host("server")
		client := net.Host("client")
		nfs.Serve(server, phys, phys)
		cl := nfs.Dial(client, "server", nil)
		lay := logical.New(ExpVol, []logical.Replica{{ID: 1, FS: cl}}, logical.Options{CacheTTLOps: -1})
		return lay.Root()
	case StackFicusTwoRepl:
		phys, err := physical.Format(ufsvn.New(fs), ExpVol, 1)
		if err != nil {
			return nil, err
		}
		fs2, _, err := newStore()
		if err != nil {
			return nil, err
		}
		phys2, err := physical.Format(ufsvn.New(fs2), ExpVol, 2)
		if err != nil {
			return nil, err
		}
		net := simnet.New(1)
		server := net.Host("server")
		client := net.Host("client")
		nfs.Serve(server, phys2, phys2)
		cl := nfs.Dial(client, "server", nil)
		lay := logical.New(ExpVol, []logical.Replica{
			{ID: 1, FS: phys},
			{ID: 2, FS: cl},
		}, logical.Options{CacheTTLOps: -1})
		return lay.Root()
	default:
		return nil, fmt.Errorf("exp: unknown stack kind %d", kind)
	}
}

// BuildNullStack returns a UFS root wrapped in depth pass-through layers
// (E2: per-crossing cost).
func BuildNullStack(depth int) (vnode.Vnode, error) {
	fs, _, err := newStore()
	if err != nil {
		return nil, err
	}
	var v vnode.VFS = ufsvn.New(fs)
	for i := 0; i < depth; i++ {
		v = vnode.NewNull(v)
	}
	return v.Root()
}

// PrepareFile creates /dir/file with contents under root and returns
// nothing; used to give every stack identical state before measurement.
func PrepareFile(root vnode.Vnode) error {
	d, err := root.Mkdir("dir")
	if err != nil {
		return err
	}
	f, err := d.Create("file", true)
	if err != nil {
		return err
	}
	return vnode.WriteFile(f, []byte("measurement payload"))
}

// TouchOp performs the E1/E2 measured operation: resolve dir/file and read
// its attributes.
func TouchOp(root vnode.Vnode) error {
	f, err := vnode.Walk(root, "dir/file")
	if err != nil {
		return err
	}
	_, err = f.Getattr()
	return err
}
