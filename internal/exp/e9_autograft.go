package exp

import (
	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/simnet"
	"repro/internal/vnode"
)

// E9 — paper §4.4: autografting locates and grafts volume replicas on
// demand during pathname translation, with no global tables or broadcast;
// idle grafts are quietly pruned and transparently re-established.
//
// The harness measures the RPC cost of the first walk through a graft point
// (locating + grafting), of warm walks (graft table hit), and of the first
// walk after pruning (regraft).

// AutograftResult is the E9 table.
type AutograftResult struct {
	FirstWalkRPCs    uint64 // includes probe + graft + file access
	WarmWalkRPCs     uint64 // graft table hit
	RegraftRPCs      uint64 // after pruning
	GraftsAfterPrune int
}

// RunAutograft builds a two-host world (root volume on host a, project
// volume on host b), grafts, and measures.
func RunAutograft() (AutograftResult, error) {
	var res AutograftResult
	net := simnet.New(1)
	ha := core.NewHost(net, "a", 1)
	hb := core.NewHost(net, "b", 2)

	rootVol, rrid, err := ha.CreateVolume(nil)
	if err != nil {
		return res, err
	}
	ha.SetLocations(rootVol, []core.ReplicaLoc{{ID: rrid, Addr: "a"}})
	projVol, prid, err := hb.CreateVolume(nil)
	if err != nil {
		return res, err
	}
	hb.SetLocations(projVol, []core.ReplicaLoc{{ID: prid, Addr: "b"}})

	// Content inside the project volume.
	projLay, err := hb.Mount(projVol, logical.FirstAvailable)
	if err != nil {
		return res, err
	}
	projRoot, err := projLay.Root()
	if err != nil {
		return res, err
	}
	f, err := projRoot.Create("data", true)
	if err != nil {
		return res, err
	}
	if err := vnode.WriteFile(f, []byte("grafted bytes")); err != nil {
		return res, err
	}

	// Graft point in the root volume.
	if err := ha.CreateGraftPoint(rootVol, "/", "proj", projVol,
		[]core.ReplicaLoc{{ID: prid, Addr: "b"}}); err != nil {
		return res, err
	}

	lay, err := ha.Mount(rootVol, logical.FirstAvailable)
	if err != nil {
		return res, err
	}
	root, err := lay.Root()
	if err != nil {
		return res, err
	}
	walk := func() error {
		v, err := vnode.Walk(root, "proj/data")
		if err != nil {
			return err
		}
		_, err = vnode.ReadFile(v)
		return err
	}

	net.ResetStats()
	if err := walk(); err != nil {
		return res, err
	}
	res.FirstWalkRPCs = net.Stats().RPCs

	net.ResetStats()
	if err := walk(); err != nil {
		return res, err
	}
	res.WarmWalkRPCs = net.Stats().RPCs

	// Idle out the graft, prune, and regraft on the next walk.
	for i := 0; i < 10; i++ {
		ha.Tick()
	}
	ha.PruneGrafts(3)
	res.GraftsAfterPrune = len(ha.GraftedVolumes())
	net.ResetStats()
	if err := walk(); err != nil {
		return res, err
	}
	res.RegraftRPCs = net.Stats().RPCs
	return res, nil
}
