package exp

import (
	"testing"
)

func TestBuildStacksAllWork(t *testing.T) {
	for _, kind := range []StackKind{StackUFS, StackFicusLocal, StackFicusNFS, StackFicusTwoRepl, StackFicusLocalCached} {
		root, err := BuildStack(kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := PrepareFile(root); err != nil {
			t.Fatalf("%v prepare: %v", kind, err)
		}
		if err := TouchOp(root); err != nil {
			t.Fatalf("%v touch: %v", kind, err)
		}
		if kind.String() == "" {
			t.Fatal("unnamed stack")
		}
	}
	if _, err := BuildStack(StackKind(99)); err == nil {
		t.Fatal("bogus stack kind accepted")
	}
}

func TestBuildNullStackDepths(t *testing.T) {
	for _, depth := range []int{0, 1, 4, 8} {
		root, err := BuildNullStack(depth)
		if err != nil {
			t.Fatal(err)
		}
		if err := PrepareFile(root); err != nil {
			t.Fatal(err)
		}
		if err := TouchOp(root); err != nil {
			t.Fatal(err)
		}
	}
}

// TestE3ColdWarmOpenIOCounts asserts the paper's §6 claim: exactly four
// extra disk I/Os on a cold-directory open, none on a warm open.
func TestE3ColdWarmOpenIOCounts(t *testing.T) {
	r, err := OpenIOCounts(true)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ColdDelta(); got != 4 {
		t.Errorf("cold-open overhead = %d extra I/Os, paper says 4 (ufs=%d ficus=%d)",
			got, r.UFSColdReads, r.FicusColdReads)
	}
	if got := r.WarmDelta(); got != 0 {
		t.Errorf("warm-open overhead = %d extra I/Os, paper says 0 (ufs=%d ficus=%d)",
			got, r.UFSWarmReads, r.FicusWarmReads)
	}
	if r.FicusWarmReads != 0 {
		t.Errorf("warm Ficus open did %d I/Os; the caches should absorb all of it", r.FicusWarmReads)
	}
}

// TestE3CacheAblation shows the blow-up when the locality-exploiting caches
// are disabled — the failure mode of the dual-mapping AFS prototype the
// paper cites (§2.6).
func TestE3CacheAblation(t *testing.T) {
	on, err := OpenIOCounts(true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := OpenIOCounts(false)
	if err != nil {
		t.Fatal(err)
	}
	if off.ColdDelta() <= 5*on.ColdDelta() {
		t.Errorf("cache ablation should blow up the overhead: on=%d off=%d", on.ColdDelta(), off.ColdDelta())
	}
	if off.WarmDelta() == 0 {
		t.Error("without caches even warm opens must pay the dual-mapping cost")
	}
}

// TestE5DelayedPropagationCoalesces asserts §3.2's trade-off: delayed
// propagation pulls fewer versions and moves fewer bytes, at the price of
// staleness.
func TestE5DelayedPropagationCoalesces(t *testing.T) {
	imm, del, err := PropagationComparison(DefaultPropagationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if del.Pulls >= imm.Pulls {
		t.Errorf("delayed pulls %d, immediate %d: coalescing failed", del.Pulls, imm.Pulls)
	}
	if del.RPCBytes >= imm.RPCBytes {
		t.Errorf("delayed bytes %d, immediate %d", del.RPCBytes, imm.RPCBytes)
	}
	if del.Staleness <= imm.Staleness {
		t.Errorf("delayed staleness %d should exceed immediate %d", del.Staleness, imm.Staleness)
	}
	// Both end fully propagated: equal final pull coverage is implied by
	// the run completing; sanity-check notification flow happened at all.
	if imm.Datagrams == 0 || del.Datagrams == 0 {
		t.Error("no update notifications observed")
	}
}

// TestE6ReconciliationConverges asserts §3.3: partition + churn on both
// sides reconciles to identical replicas, with file conflicts reported and
// directory collisions repaired.
func TestE6ReconciliationConverges(t *testing.T) {
	for _, hosts := range []int{2, 4} {
		res, err := RunReconcileChurn(hosts, 9, 7)
		if err != nil {
			t.Fatalf("hosts=%d: %v", hosts, err)
		}
		if !res.Converged {
			t.Fatalf("hosts=%d: did not converge: %+v", hosts, res)
		}
		if res.FileConflicts == 0 {
			t.Errorf("hosts=%d: expected file conflicts from concurrent shared-file updates", hosts)
		}
		if res.EntriesAdopted == 0 || res.FilesPulled == 0 {
			t.Errorf("hosts=%d: nothing reconciled: %+v", hosts, res)
		}
	}
}

// TestE8ShadowCostGrowsWithFileSize asserts §3.2 fn5: the atomic-commit
// rewrite makes point updates cost O(file size), while in-place updates are
// flat.
func TestE8ShadowCostGrowsWithFileSize(t *testing.T) {
	rows, err := ShadowCommitCost([]int{1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	// In-place cost flat (within a couple of metadata writes).
	if diff := int64(rows[2].InPlaceWrites) - int64(rows[0].InPlaceWrites); diff > 3 || diff < -3 {
		t.Errorf("in-place cost not flat: %v", rows)
	}
	// Shadow cost strictly increasing and dominated by the file size.
	if !(rows[0].ShadowWrites < rows[1].ShadowWrites && rows[1].ShadowWrites < rows[2].ShadowWrites) {
		t.Errorf("shadow cost not growing: %v", rows)
	}
	if rows[2].ShadowWrites < 64 {
		t.Errorf("64-block shadow install wrote only %d blocks", rows[2].ShadowWrites)
	}
	if rows[2].InPlaceWrites >= rows[2].ShadowWrites {
		t.Errorf("shadow should cost more than in-place for large files: %v", rows[2])
	}
}

// TestE9AutograftCosts asserts §4.4: grafting costs a few extra RPCs on
// first touch, nothing extra when warm, and is re-established transparently
// after pruning.
func TestE9AutograftCosts(t *testing.T) {
	res, err := RunAutograft()
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstWalkRPCs <= res.WarmWalkRPCs {
		t.Errorf("first walk %d RPCs should exceed warm walk %d (probe+graft cost)", res.FirstWalkRPCs, res.WarmWalkRPCs)
	}
	if res.GraftsAfterPrune != 0 {
		t.Errorf("graft not pruned: %d", res.GraftsAfterPrune)
	}
	if res.RegraftRPCs <= res.WarmWalkRPCs {
		t.Errorf("regraft %d RPCs should exceed warm walk %d", res.RegraftRPCs, res.WarmWalkRPCs)
	}
	if res.WarmWalkRPCs == 0 {
		t.Error("warm walk should still RPC to the remote volume replica")
	}
}
