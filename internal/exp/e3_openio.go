package exp

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

// E3 — paper §6: "The Ficus physical layer design and implementation
// accrues additional I/O overhead when opening a file in a non-recently
// accessed directory.  Four I/Os beyond the normal Unix overhead occur: an
// inode and data page for the underlying Unix directory and an auxiliary
// replication data file must be loaded from disk, as well as the Ficus
// directory inode and data page.  (The last two correspond to normal Unix
// overhead.)  Opening a recently accessed file or directory involves no
// overhead not already incurred by the normal Unix file system."
//
// The experiment reproduces the scenario exactly: the path prefix is warm
// (the root directory was just listed) but the target directory has not
// been accessed recently (its blocks were evicted).  An "open" is what
// open(2) does — resolve the final component, announce the open, and fetch
// the attributes.

// OpenIOResult is one row of the E3 table.
type OpenIOResult struct {
	CachesOn       bool
	UFSColdReads   uint64 // plain UFS, cold target directory
	FicusColdReads uint64 // Ficus stack, cold target directory
	UFSWarmReads   uint64 // plain UFS, directory recently accessed
	FicusWarmReads uint64 // Ficus stack, directory recently accessed
}

// ColdDelta is the headline number: extra I/Os Ficus pays on a cold-dir
// open (paper: 4).
func (r OpenIOResult) ColdDelta() int64 {
	return int64(r.FicusColdReads) - int64(r.UFSColdReads)
}

// WarmDelta is the warm-path overhead (paper: 0).
func (r OpenIOResult) WarmDelta() int64 {
	return int64(r.FicusWarmReads) - int64(r.UFSWarmReads)
}

// spacerInodes allocates throwaway files until the next inode to be
// allocated starts a fresh inode-table block, so that the interesting inode
// groups neither share a block with earlier activity (which would let one
// fetch warm another and distort the count) nor straddle a block boundary
// (which would add a read).  UFS allocates inodes first-free from a linear
// bitmap scan and this experiment never frees one, so the next inode number
// is exactly the used-inode count.
func spacerInodes(fs *ufs.FS, root vnode.Vnode, tag string) error {
	st, err := fs.Statfs()
	if err != nil {
		return err
	}
	next := int(st.TotalInodes - st.FreeInodes)
	pad := (ufs.InodesPerBlock - next%ufs.InodesPerBlock) % ufs.InodesPerBlock
	for i := 0; i < pad; i++ {
		if _, err := root.Create(fmt.Sprintf("spacer-%s-%03d", tag, i), true); err != nil {
			return err
		}
	}
	return nil
}

// openPath performs one open(2)-shaped access: resolve dir/name, announce
// the open, fetch attributes, close.
func openPath(root vnode.Vnode, dir, name string) error {
	d, err := root.Lookup(dir)
	if err != nil {
		return err
	}
	g, err := d.Lookup(name)
	if err != nil {
		return err
	}
	if err := g.Open(vnode.OpenRead); err != nil {
		return err
	}
	if _, err := g.Getattr(); err != nil {
		return err
	}
	return g.Close(vnode.OpenRead)
}

// ufsOpenIOs measures the plain-UFS side.
func ufsOpenIOs(cachesOn bool) (cold, warm uint64, err error) {
	dev := disk.New(16384)
	opts := &ufs.Options{DisableCaches: !cachesOn}
	fs, err := ufs.Mkfs(dev, 4096, opts)
	if err != nil {
		return 0, 0, err
	}
	root, err := ufsvn.New(fs).Root()
	if err != nil {
		return 0, 0, err
	}
	// Sibling directory whose open warms the path prefix; spacer inodes
	// keep the interesting inodes out of the warmed inode-table blocks.
	sib, err := root.Mkdir("sibling")
	if err != nil {
		return 0, 0, err
	}
	if _, err := sib.Create("file2", true); err != nil {
		return 0, 0, err
	}
	if err := spacerInodes(fs, root, "a"); err != nil {
		return 0, 0, err
	}
	dir, err := root.Mkdir("dir")
	if err != nil {
		return 0, 0, err
	}
	if err := spacerInodes(fs, root, "b"); err != nil {
		return 0, 0, err
	}
	f, err := dir.Create("file", true)
	if err != nil {
		return 0, 0, err
	}
	if err := vnode.WriteFile(f, []byte("payload")); err != nil {
		return 0, 0, err
	}

	open := func() error { return openPath(root, "dir", "file") }

	// "Non-recently accessed directory": flush everything, then open a
	// file in the SIBLING directory, which warms the path prefix (and the
	// sibling) but leaves the target directory cold.
	fs.FlushCaches()
	if err := openPath(root, "sibling", "file2"); err != nil {
		return 0, 0, err
	}
	dev.ResetStats()
	if err := open(); err != nil {
		return 0, 0, err
	}
	cold = dev.Stats().Reads

	// Recently accessed: repeat immediately.
	dev.ResetStats()
	if err := open(); err != nil {
		return 0, 0, err
	}
	warm = dev.Stats().Reads
	return cold, warm, nil
}

// ficusOpenIOs measures the Ficus stack (logical over a co-resident
// physical layer; the disk I/O count is the same with NFS interposed, which
// adds messages, not disk traffic).
func ficusOpenIOs(cachesOn bool) (cold, warm uint64, err error) {
	dev := disk.New(16384)
	opts := &ufs.Options{DisableCaches: !cachesOn}
	fs, err := ufs.Mkfs(dev, 4096, opts)
	if err != nil {
		return 0, 0, err
	}
	phys, err := physical.Format(ufsvn.New(fs), ExpVol, 1)
	if err != nil {
		return 0, 0, err
	}
	lay := logical.New(ExpVol, []logical.Replica{{ID: 1, FS: phys}}, logical.Options{})
	root, err := lay.Root()
	if err != nil {
		return 0, 0, err
	}
	// Sibling directory whose open warms the path prefix; spacer inodes
	// keep the interesting inodes out of the warmed inode-table blocks.
	sib, err := root.Mkdir("sibling")
	if err != nil {
		return 0, 0, err
	}
	if _, err := sib.Create("file2", true); err != nil {
		return 0, 0, err
	}
	if err := spacerInodes(fs, root, "a"); err != nil {
		return 0, 0, err
	}
	dir, err := root.Mkdir("dir")
	if err != nil {
		return 0, 0, err
	}
	if err := spacerInodes(fs, root, "b"); err != nil {
		return 0, 0, err
	}
	f, err := dir.Create("file", true)
	if err != nil {
		return 0, 0, err
	}
	if err := vnode.WriteFile(f, []byte("payload")); err != nil {
		return 0, 0, err
	}

	open := func() error { return openPath(root, "dir", "file") }

	// "Non-recently accessed directory": flush everything, then open a
	// file in the SIBLING directory, which warms the path prefix (and the
	// sibling) but leaves the target directory cold.
	fs.FlushCaches()
	if err := openPath(root, "sibling", "file2"); err != nil {
		return 0, 0, err
	}
	dev.ResetStats()
	if err := open(); err != nil {
		return 0, 0, err
	}
	cold = dev.Stats().Reads

	dev.ResetStats()
	if err := open(); err != nil {
		return 0, 0, err
	}
	warm = dev.Stats().Reads
	return cold, warm, nil
}

// OpenIOCounts runs the E3 measurement.
func OpenIOCounts(cachesOn bool) (OpenIOResult, error) {
	r := OpenIOResult{CachesOn: cachesOn}
	var err error
	if r.UFSColdReads, r.UFSWarmReads, err = ufsOpenIOs(cachesOn); err != nil {
		return r, err
	}
	if r.FicusColdReads, r.FicusWarmReads, err = ficusOpenIOs(cachesOn); err != nil {
		return r, err
	}
	return r, nil
}
