// Package vntest provides a reusable conformance suite for vnode.VFS
// implementations.  The stackable-layers claim of the paper (Figure 1/2,
// §7) is precisely that every layer exports the same interface with the
// same semantics; running one suite against UFS, a null stack, the NFS
// transport, and the full Ficus stack is the executable form of that claim.
package vntest

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/vnode"
)

// Config tunes the suite for layer-specific quirks.
type Config struct {
	// SupportsHardLinks is false for layers that reject Link (the Ficus
	// logical layer maps hard links onto its DAG naming instead).
	SupportsHardLinks bool
	// MaxName is the longest name the layer accepts (the Ficus logical
	// layer shrinks this, paper §2.3 fn2).
	MaxName int
}

// Run exercises a fresh VFS produced by mk against the conformance suite.
// mk is called once per subtest so tests are independent.
func Run(t *testing.T, cfg Config, mk func(t *testing.T) vnode.VFS) {
	t.Helper()
	sub := func(name string, fn func(t *testing.T, root vnode.Vnode)) {
		t.Run(name, func(t *testing.T) {
			fs := mk(t)
			root, err := fs.Root()
			if err != nil {
				t.Fatalf("Root: %v", err)
			}
			fn(t, root)
		})
	}

	sub("RootIsDir", func(t *testing.T, root vnode.Vnode) {
		a, err := root.Getattr()
		if err != nil {
			t.Fatal(err)
		}
		if a.Type != vnode.VDir {
			t.Fatalf("root type %v", a.Type)
		}
	})

	sub("CreateWriteRead", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("file", true)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("stackable layers")
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %q", got)
		}
		a, err := f.Getattr()
		if err != nil {
			t.Fatal(err)
		}
		if a.Size != uint64(len(data)) || a.Type != vnode.VReg {
			t.Fatalf("attr %+v", a)
		}
	})

	sub("LookupAfterCreate", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		g, err := root.Lookup("f")
		if err != nil {
			t.Fatal(err)
		}
		fa, _ := f.Getattr()
		ga, _ := g.Getattr()
		if fa.FileID != ga.FileID {
			t.Fatalf("different identities: %q vs %q", fa.FileID, ga.FileID)
		}
		if f.Handle() != g.Handle() {
			t.Fatalf("different handles: %q vs %q", f.Handle(), g.Handle())
		}
	})

	sub("CreateExclusive", func(t *testing.T, root vnode.Vnode) {
		if _, err := root.Create("f", true); err != nil {
			t.Fatal(err)
		}
		if _, err := root.Create("f", true); vnode.AsErrno(err) != vnode.EEXIST {
			t.Fatalf("excl create over existing: %v", err)
		}
		if _, err := root.Create("f", false); err != nil {
			t.Fatalf("non-excl create over existing: %v", err)
		}
	})

	sub("LookupMissing", func(t *testing.T, root vnode.Vnode) {
		if _, err := root.Lookup("ghost"); vnode.AsErrno(err) != vnode.ENOENT {
			t.Fatalf("err = %v, want ENOENT", err)
		}
	})

	sub("MkdirAndNesting", func(t *testing.T, root vnode.Vnode) {
		d, err := root.Mkdir("d")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Mkdir("e"); err != nil {
			t.Fatal(err)
		}
		f, err := vnode.Walk(root, "d/e")
		if err != nil {
			t.Fatal(err)
		}
		a, _ := f.Getattr()
		if a.Type != vnode.VDir {
			t.Fatalf("d/e type %v", a.Type)
		}
	})

	sub("ReaddirListsCreated", func(t *testing.T, root vnode.Vnode) {
		for i := 0; i < 5; i++ {
			if _, err := root.Create(fmt.Sprintf("f%d", i), true); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := root.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		ents, err := root.Readdir()
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]vnode.Dirent{}
		for _, e := range ents {
			byName[e.Name] = e
		}
		if len(byName) != 6 {
			t.Fatalf("%d entries: %v", len(byName), ents)
		}
		if byName["d"].Type != vnode.VDir || byName["f0"].Type != vnode.VReg {
			t.Fatalf("types wrong: %v", ents)
		}
	})

	sub("RemoveFile", func(t *testing.T, root vnode.Vnode) {
		if _, err := root.Create("f", true); err != nil {
			t.Fatal(err)
		}
		if err := root.Remove("f"); err != nil {
			t.Fatal(err)
		}
		if _, err := root.Lookup("f"); vnode.AsErrno(err) != vnode.ENOENT {
			t.Fatalf("after remove: %v", err)
		}
		if err := root.Remove("f"); vnode.AsErrno(err) != vnode.ENOENT {
			t.Fatalf("double remove: %v", err)
		}
	})

	sub("RmdirSemantics", func(t *testing.T, root vnode.Vnode) {
		d, err := root.Mkdir("d")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Create("f", true); err != nil {
			t.Fatal(err)
		}
		if err := root.Rmdir("d"); vnode.AsErrno(err) != vnode.ENOTEMPTY {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		if err := d.Remove("f"); err != nil {
			t.Fatal(err)
		}
		if err := root.Rmdir("d"); err != nil {
			t.Fatalf("rmdir empty: %v", err)
		}
		if _, err := root.Lookup("d"); vnode.AsErrno(err) != vnode.ENOENT {
			t.Fatalf("after rmdir: %v", err)
		}
	})

	sub("RenameWithinDir", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("a", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := root.Rename("a", root, "b"); err != nil {
			t.Fatal(err)
		}
		if _, err := root.Lookup("a"); vnode.AsErrno(err) != vnode.ENOENT {
			t.Fatalf("a survived: %v", err)
		}
		g, err := root.Lookup("b")
		if err != nil {
			t.Fatal(err)
		}
		got, err := vnode.ReadFile(g)
		if err != nil || string(got) != "payload" {
			t.Fatalf("b contents %q, %v", got, err)
		}
	})

	sub("RenameAcrossDirs", func(t *testing.T, root vnode.Vnode) {
		d1, err := root.Mkdir("d1")
		if err != nil {
			t.Fatal(err)
		}
		d2, err := root.Mkdir("d2")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d1.Create("f", true); err != nil {
			t.Fatal(err)
		}
		if err := d1.Rename("f", d2, "g"); err != nil {
			t.Fatal(err)
		}
		if _, err := d2.Lookup("g"); err != nil {
			t.Fatalf("d2/g missing: %v", err)
		}
		if _, err := d1.Lookup("f"); vnode.AsErrno(err) != vnode.ENOENT {
			t.Fatalf("d1/f survived: %v", err)
		}
	})

	sub("TruncateExtendAndShrink", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(4); err != nil {
			t.Fatal(err)
		}
		got, err := vnode.ReadFile(f)
		if err != nil || string(got) != "0123" {
			t.Fatalf("after shrink: %q, %v", got, err)
		}
		if err := f.Truncate(8); err != nil {
			t.Fatal(err)
		}
		got, err = vnode.ReadFile(f)
		if err != nil || !bytes.Equal(got, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
			t.Fatalf("after grow: %q, %v", got, err)
		}
	})

	sub("WriteAtOffsetExtends", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("tail"), 100); err != nil {
			t.Fatal(err)
		}
		a, _ := f.Getattr()
		if a.Size != 104 {
			t.Fatalf("size %d, want 104", a.Size)
		}
		got := make([]byte, 4)
		if _, err := f.ReadAt(got, 100); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if string(got) != "tail" {
			t.Fatalf("read %q", got)
		}
	})

	sub("SymlinkRoundTrip", func(t *testing.T, root vnode.Vnode) {
		if err := root.Symlink("ln", "some/target"); err != nil {
			t.Fatal(err)
		}
		l, err := root.Lookup("ln")
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.Readlink()
		if err != nil || got != "some/target" {
			t.Fatalf("readlink %q, %v", got, err)
		}
		a, _ := l.Getattr()
		if a.Type != vnode.VLnk {
			t.Fatalf("type %v", a.Type)
		}
	})

	sub("OpenCloseAccepted", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Open(vnode.OpenRead | vnode.OpenWrite); err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := f.Close(vnode.OpenRead | vnode.OpenWrite); err != nil {
			t.Fatalf("close: %v", err)
		}
	})

	sub("SetattrSize", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := vnode.WriteFile(f, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		sz := uint64(3)
		if err := f.Setattr(vnode.SetAttr{Size: &sz}); err != nil {
			t.Fatal(err)
		}
		a, _ := f.Getattr()
		if a.Size != 3 {
			t.Fatalf("size %d", a.Size)
		}
	})

	sub("FsyncAndAccess", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Fsync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Access(0o4); err != nil {
			t.Fatal(err)
		}
	})

	sub("DataOpsOnDirFail", func(t *testing.T, root vnode.Vnode) {
		d, err := root.Mkdir("d")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.WriteAt([]byte("x"), 0); err == nil {
			t.Fatal("write to directory succeeded")
		}
		if err := d.Truncate(0); err == nil {
			t.Fatal("truncate of directory succeeded")
		}
	})

	sub("DirOpsOnFileFail", func(t *testing.T, root vnode.Vnode) {
		f, err := root.Create("f", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Lookup("x"); vnode.AsErrno(err) != vnode.ENOTDIR {
			t.Fatalf("lookup in file: %v", err)
		}
		if _, err := f.Create("x", true); vnode.AsErrno(err) != vnode.ENOTDIR {
			t.Fatalf("create in file: %v", err)
		}
	})

	if cfg.SupportsHardLinks {
		sub("HardLink", func(t *testing.T, root vnode.Vnode) {
			f, err := root.Create("a", true)
			if err != nil {
				t.Fatal(err)
			}
			if err := vnode.WriteFile(f, []byte("shared")); err != nil {
				t.Fatal(err)
			}
			if err := root.Link("b", f); err != nil {
				t.Fatal(err)
			}
			b, err := root.Lookup("b")
			if err != nil {
				t.Fatal(err)
			}
			if err := root.Remove("a"); err != nil {
				t.Fatal(err)
			}
			got, err := vnode.ReadFile(b)
			if err != nil || string(got) != "shared" {
				t.Fatalf("after unlink a: %q, %v", got, err)
			}
		})
	}

	if cfg.MaxName > 0 {
		sub("NameLengthLimit", func(t *testing.T, root vnode.Vnode) {
			ok := make([]byte, cfg.MaxName)
			for i := range ok {
				ok[i] = 'n'
			}
			if _, err := root.Create(string(ok), true); err != nil {
				t.Fatalf("create max-len name: %v", err)
			}
			long := string(ok) + "x"
			if _, err := root.Create(long, true); vnode.AsErrno(err) != vnode.ENAMETOOLONG {
				t.Fatalf("over-long name: %v", err)
			}
		})
	}
}
