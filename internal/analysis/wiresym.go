package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireSym verifies the hand-rolled wire codecs stay symmetric: every
// encode function must write exactly the field sequence — same fields,
// same order, same wire widths — that its decode counterpart reads, and
// every opcode constant must be dispatched somewhere.  Wire-v2-style
// drift (a field added to encode but not decode, a u32 read as u64, a
// new opcode the server ignores) today only surfaces when a fuzz test
// happens to cover it; this turns it into a commit gate.
//
// Both sides are normalized to a primitive token stream (u8/u16/u32/u64,
// uvarint counts, raw byte runs, vv vectors) with loops kept as nested
// repetition groups and if-statements flattened (a conditional field is
// always guarded by a flag or count read on both sides).  Pairing:
// method (t).encode ↔ function decodeT, function encodeX ↔ decodeX.
var WireSym = &Analyzer{
	Name: "wiresym",
	Doc: "encode*/decode* pairs must read and write identical field sequences " +
		"(order and wire widths), and op tables must be dispatched exhaustively",
	InScope: segScope("repl", "core"),
	Run:     runWireSym,
}

// wireTok is one normalized wire token: a primitive kind, or "rep" with a
// nested group for a loop body.
type wireTok struct {
	kind string
	sub  []wireTok
	pos  token.Pos
}

func (t wireTok) describe() string {
	if t.kind == "rep" {
		var parts []string
		for _, s := range t.sub {
			parts = append(parts, s.describe())
		}
		return "rep{" + strings.Join(parts, ",") + "}"
	}
	return t.kind
}

// encodeSuffixes expands the repo's append-helper naming convention to
// primitive streams; unknown same-package helpers are inlined instead.
var encodeSuffixes = map[string][]string{
	"U8":     {"u8"},
	"U16":    {"u16"},
	"U32":    {"u32"},
	"U64":    {"u64"},
	"Bool":   {"u8"},
	"Count":  {"count"},
	"Bytes":  {"count", "raw"},
	"String": {"count", "raw"},
	"FID":    {"u32", "u64"},
	"Vol":    {"u32", "u32"},
	"Aux":    {"u8", "u32", "u32", "u32", "vv"},
}

// encodePathSuffix is FID-path: count + repeated fid.
func pathTokens(pos token.Pos) []wireTok {
	return []wireTok{
		{kind: "count", pos: pos},
		{kind: "rep", pos: pos, sub: []wireTok{{kind: "u32", pos: pos}, {kind: "u64", pos: pos}}},
	}
}

// decodeMethods maps the sticky-error decoder method convention.
var decodeMethods = map[string][]string{
	"u8":      {"u8"},
	"u16":     {"u16"},
	"u32":     {"u32"},
	"u64":     {"u64"},
	"bool":    {"u8"},
	"count":   {"count"},
	"bytes":   {"count", "raw"},
	"str":     {"count", "raw"},
	"fid":     {"u32", "u64"},
	"vol":     {"u32", "u32"},
	"aux":     {"u8", "u32", "u32", "u32", "vv"},
	"vvec":    {"vv"},
	"version": {"u8"},
	"take":    {"raw"},
}

func runWireSym(pass *Pass) {
	type codecFn struct {
		fn  *ast.FuncDecl
		key string
	}
	var encoders, decoders []codecFn

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			switch {
			case name == "encode" && fn.Recv != nil:
				if t := recvTypeName(fn); t != "" {
					encoders = append(encoders, codecFn{fn, strings.ToLower(t)})
				}
			case strings.HasPrefix(name, "encode") && len(name) > len("encode") && fn.Recv == nil:
				encoders = append(encoders, codecFn{fn, strings.ToLower(name[len("encode"):])})
			case strings.HasPrefix(name, "decode") && len(name) > len("decode") && fn.Recv == nil:
				decoders = append(decoders, codecFn{fn, strings.ToLower(name[len("decode"):])})
			}
		}
	}

	decByKey := make(map[string]codecFn, len(decoders))
	for _, d := range decoders {
		decByKey[d.key] = d
	}
	encByKey := make(map[string]codecFn, len(encoders))
	for _, e := range encoders {
		encByKey[e.key] = e
	}

	for _, e := range encoders {
		d, ok := decByKey[e.key]
		if !ok {
			pass.Reportf(e.fn.Pos(), "encoder %s has no decode%s counterpart; one-way codecs drift silently",
				e.fn.Name.Name, e.key)
			continue
		}
		compareCodec(pass, e.fn, d.fn)
	}
	for _, d := range decoders {
		if _, ok := encByKey[d.key]; !ok {
			pass.Reportf(d.fn.Pos(), "decoder %s has no encode counterpart; one-way codecs drift silently",
				d.fn.Name.Name)
		}
	}

	checkOpTables(pass)
}

func recvTypeName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func compareCodec(pass *Pass, enc, dec *ast.FuncDecl) {
	encToks := codecTokens(pass, enc.Body.List, (&tokenizer{pass: pass}).encodeCall, nil)
	decToks := codecTokens(pass, dec.Body.List, (&tokenizer{pass: pass}).decodeCall, nil)
	compareTokens(pass, enc.Name.Name, dec.Name.Name, encToks, decToks, "")
}

// compareTokens reports the first divergence between the two streams at
// each nesting level.
func compareTokens(pass *Pass, encName, decName string, enc, dec []wireTok, path string) {
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		e, d := enc[i], dec[i]
		if e.kind != d.kind {
			pass.Reportf(e.pos, "wire asymmetry between %s and %s: field %s%d is %s on the encode side but %s on the decode side",
				encName, decName, path, i+1, e.describe(), d.describe())
			return
		}
		if e.kind == "rep" {
			compareTokens(pass, encName, decName, e.sub, d.sub, path+itoa(i+1)+".")
		}
	}
	switch {
	case len(enc) > len(dec):
		t := enc[len(dec)]
		pass.Reportf(t.pos, "wire asymmetry: %s writes %d field(s) (%s…) beyond what %s reads",
			encName, len(enc)-len(dec), t.describe(), decName)
	case len(dec) > len(enc):
		t := dec[len(enc)]
		pass.Reportf(t.pos, "wire asymmetry: %s reads %d field(s) (%s…) beyond what %s writes",
			decName, len(dec)-len(enc), t.describe(), encName)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// tokenizer resolves one call expression to its wire tokens; inlining of
// unknown same-package helpers carries a cycle guard.
type tokenizer struct {
	pass     *Pass
	inlining map[*types.Func]bool
}

// codecTokens walks a statement list, flattening if-statements (the guard
// condition's own reads come first) and folding loops into rep groups.
func codecTokens(pass *Pass, stmts []ast.Stmt, resolve func(*ast.CallExpr) ([]wireTok, bool), out []wireTok) []wireTok {
	for _, s := range stmts {
		out = codecStmtTokens(pass, s, resolve, out)
	}
	return out
}

func codecStmtTokens(pass *Pass, s ast.Stmt, resolve func(*ast.CallExpr) ([]wireTok, bool), out []wireTok) []wireTok {
	switch s := s.(type) {
	case nil:
		return out
	case *ast.RangeStmt:
		out = codecExprTokens(pass, s.X, resolve, out)
		body := codecTokens(pass, s.Body.List, resolve, nil)
		if len(body) > 0 {
			out = append(out, wireTok{kind: "rep", sub: body, pos: s.Pos()})
		}
		return out
	case *ast.ForStmt:
		out = codecStmtTokens(pass, s.Init, resolve, out)
		out = codecExprTokens(pass, s.Cond, resolve, out)
		body := codecTokens(pass, s.Body.List, resolve, nil)
		body = codecStmtTokens(pass, s.Post, resolve, body)
		if len(body) > 0 {
			out = append(out, wireTok{kind: "rep", sub: body, pos: s.Pos()})
		}
		return out
	case *ast.IfStmt:
		out = codecStmtTokens(pass, s.Init, resolve, out)
		out = codecExprTokens(pass, s.Cond, resolve, out)
		out = codecTokens(pass, s.Body.List, resolve, out)
		return codecStmtTokens(pass, s.Else, resolve, out)
	case *ast.BlockStmt:
		return codecTokens(pass, s.List, resolve, out)
	case *ast.SwitchStmt:
		out = codecStmtTokens(pass, s.Init, resolve, out)
		out = codecExprTokens(pass, s.Tag, resolve, out)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = codecTokens(pass, cc.Body, resolve, out)
			}
		}
		return out
	default:
		// Assignments, returns, declarations: harvest calls in source order.
		var exprs []ast.Expr
		switch s := s.(type) {
		case *ast.AssignStmt:
			exprs = append(exprs, s.Rhs...)
		case *ast.ReturnStmt:
			exprs = append(exprs, s.Results...)
		case *ast.ExprStmt:
			exprs = append(exprs, s.X)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						exprs = append(exprs, vs.Values...)
					}
				}
			}
		}
		for _, x := range exprs {
			out = codecExprTokens(pass, x, resolve, out)
		}
		return out
	}
}

func codecExprTokens(pass *Pass, x ast.Expr, resolve func(*ast.CallExpr) ([]wireTok, bool), out []wireTok) []wireTok {
	if x == nil {
		return out
	}
	ast.Inspect(x, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if toks, ok := resolve(call); ok {
			out = append(out, toks...)
			return false
		}
		return true // conversion or helper without wire meaning: descend
	})
	return out
}

// encodeCall resolves an encode-side call.
func (t *tokenizer) encodeCall(call *ast.CallExpr) ([]wireTok, bool) {
	info := t.pass.Pkg.Info
	pos := call.Pos()
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return nil, false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			switch fn.Name() {
			case "AppendUint16":
				return []wireTok{{kind: "u16", pos: pos}}, true
			case "AppendUint32":
				return []wireTok{{kind: "u32", pos: pos}}, true
			case "AppendUint64":
				return []wireTok{{kind: "u64", pos: pos}}, true
			case "AppendUvarint", "AppendVarint":
				return []wireTok{{kind: "count", pos: pos}}, true
			}
			return nil, false
		}
		if fn.Name() == "AppendBinary" && isVVType(recvBase(fn)) {
			return []wireTok{{kind: "vv", pos: pos}}, true
		}
		return nil, false
	case *ast.Ident:
		if fun.Name == "append" {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin && len(call.Args) >= 2 {
				if call.Ellipsis != token.NoPos {
					return []wireTok{{kind: "raw", pos: pos}}, true
				}
				var toks []wireTok
				for range call.Args[1:] {
					toks = append(toks, wireTok{kind: "u8", pos: pos})
				}
				return toks, true
			}
			return nil, false
		}
		fn, _ := info.Uses[fun].(*types.Func)
		if fn == nil || fn.Pkg() != t.pass.Pkg.Types {
			return nil, false
		}
		if strings.HasSuffix(fn.Name(), "Path") {
			return pathTokens(pos), true
		}
		for suffix, kinds := range encodeSuffixes {
			if strings.HasSuffix(fn.Name(), suffix) {
				var toks []wireTok
				for _, k := range kinds {
					toks = append(toks, wireTok{kind: k, pos: pos})
				}
				return toks, true
			}
		}
		// Unknown same-package helper: inline its body once.
		if body := t.findBody(fn); body != nil {
			if t.inlining == nil {
				t.inlining = make(map[*types.Func]bool)
			}
			if t.inlining[fn] {
				return []wireTok{{kind: "recursive:" + fn.Name(), pos: pos}}, true
			}
			t.inlining[fn] = true
			toks := codecTokens(t.pass, body.List, t.encodeCall, nil)
			delete(t.inlining, fn)
			for i := range toks {
				toks[i].pos = pos
			}
			return toks, true
		}
		return nil, false
	}
	return nil, false
}

// decodeCall resolves a decode-side call.
func (t *tokenizer) decodeCall(call *ast.CallExpr) ([]wireTok, bool) {
	info := t.pass.Pkg.Info
	pos := call.Pos()
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return nil, false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			switch fn.Name() {
			case "Uint16":
				return []wireTok{{kind: "u16", pos: pos}}, true
			case "Uint32":
				return []wireTok{{kind: "u32", pos: pos}}, true
			case "Uint64":
				return []wireTok{{kind: "u64", pos: pos}}, true
			case "Uvarint", "Varint":
				return []wireTok{{kind: "count", pos: pos}}, true
			}
			return nil, false
		}
		if fn.Name() == "DecodeFrom" && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), vvPackageSuffix) {
			return []wireTok{{kind: "vv", pos: pos}}, true
		}
		// Sticky-decoder method on a same-package type.
		if recv := recvBase(fn); recv != nil && fn.Pkg() == t.pass.Pkg.Types {
			if kinds, ok := decodeMethods[fn.Name()]; ok {
				var toks []wireTok
				for _, k := range kinds {
					toks = append(toks, wireTok{kind: k, pos: pos})
				}
				return toks, true
			}
			if strings.ToLower(fn.Name()) == "path" {
				return pathTokens(pos), true
			}
		}
		return nil, false
	}
	return nil, false
}

// findBody locates the declaration body of a same-package function.
func (t *tokenizer) findBody(fn *types.Func) *ast.BlockStmt {
	for _, file := range t.pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if t.pass.Pkg.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// recvBase returns the receiver's base type of a method, or nil.
func recvBase(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// checkOpTables enforces opcode exhaustiveness: for every named integer
// type with two or more package-level constants that is dispatched by at
// least one switch, every constant must appear in some case clause or in
// an ==/!= comparison — an opcode nobody dispatches is dead protocol
// surface or, worse, a request the server silently mishandles.
func checkOpTables(pass *Pass) {
	info := pass.Pkg.Info
	scope := pass.Pkg.Types.Scope()

	consts := make(map[*types.Named][]*types.Const)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg.Types {
			continue
		}
		if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		consts[named] = append(consts[named], c)
	}

	switched := make(map[*types.Named]bool)
	mentioned := make(map[*types.Const]bool)
	noteExpr := func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok {
			if c, ok := info.Uses[id].(*types.Const); ok {
				mentioned[c] = true
			}
		}
		if sel, ok := x.(*ast.SelectorExpr); ok {
			if c, ok := info.Uses[sel.Sel].(*types.Const); ok {
				mentioned[c] = true
			}
		}
	}
	namedOf := func(x ast.Expr) *types.Named {
		t := info.TypeOf(x)
		named, _ := t.(*types.Named)
		return named
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if named := namedOf(n.Tag); named != nil && consts[named] != nil {
					switched[named] = true
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						for _, x := range cc.List {
							noteExpr(x)
						}
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					noteExpr(n.X)
					noteExpr(n.Y)
				}
			}
			return true
		})
	}

	var namedList []*types.Named
	for named, cs := range consts {
		if len(cs) >= 2 && switched[named] {
			namedList = append(namedList, named)
		}
	}
	sort.Slice(namedList, func(i, j int) bool {
		return namedList[i].Obj().Name() < namedList[j].Obj().Name()
	})
	for _, named := range namedList {
		cs := consts[named]
		sort.Slice(cs, func(i, j int) bool {
			vi, _ := constant.Int64Val(cs[i].Val())
			vj, _ := constant.Int64Val(cs[j].Val())
			return vi < vj
		})
		for _, c := range cs {
			if !mentioned[c] {
				pass.Reportf(c.Pos(), "op table %s: constant %s is never dispatched (no case clause or comparison mentions it)",
					named.Obj().Name(), c.Name())
			}
		}
	}
}
