package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism forbids wall-clock and global-randomness calls in the
// simulation-critical packages and flags map iteration whose order can
// reach serialized output.  The chaos tests (PR 1) replay injected faults
// from a seed over a virtual clock; any hidden nondeterminism voids the
// replay and the EXPERIMENTS.md numbers.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Sleep/global math/rand and unsorted map iteration " +
		"reaching encoders or collected output in the simulation-critical packages",
	InScope: segScope("sim", "simnet", "core", "recon", "repl", "physical", "avail", "workload"),
	Run:     runDeterminism,
}

// forbiddenTime is the wall-clock surface of package time.  The stack's
// clocks are virtual (daemon ticks); these functions smuggle in real time.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// allowedRand is the seedable, explicit part of math/rand; every other
// package-level function uses the shared global source and breaks replay.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// orderedSinkPrefixes match calls that serialize, hash, or emit their
// arguments: reaching one from inside a map range leaks iteration order
// into output.
var orderedSinkPrefixes = []string{
	"Write", "Fprint", "Print", "Encode", "Marshal", "Serialize",
	"Sum", "Hash",
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		checkDeterminismCalls(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				checkMapRanges(pass, b.List)
			case *ast.CaseClause:
				checkMapRanges(pass, b.Body)
			case *ast.CommClause:
				checkMapRanges(pass, b.Body)
			}
			return true
		})
	}
}

// checkDeterminismCalls flags wall-clock and global-rand calls anywhere in
// the file.
func checkDeterminismCalls(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. on a seeded *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if forbiddenTime[fn.Name()] {
				pass.Reportf(call.Pos(), "time.%s breaks simulation determinism; use the virtual daemon-tick clock", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[fn.Name()] {
				pass.Reportf(call.Pos(), "global rand.%s uses the shared unseeded source; use rand.New(rand.NewSource(seed))", fn.Name())
			}
		}
		return true
	})
}

// checkMapRanges examines one statement list: a range over a map either
// serializes inside its body (ordered sink) or collects into slices that
// must then be sorted later in the same list.
func checkMapRanges(pass *Pass, stmts []ast.Stmt) {
	info := pass.Pkg.Info
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		checkOneMapRange(pass, rng, stmts[i+1:])
	}
}

// checkOneMapRange classifies one map-range body.
func checkOneMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	info := pass.Pkg.Info
	sinkName := ""
	appendTargets := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if sinkName == "" && isOrderedSink(name) {
			sinkName = name
		}
		if name == "append" && len(call.Args) > 0 {
			if obj := rootObject(info, call.Args[0]); obj != nil {
				appendTargets[obj] = true
			}
		}
		return true
	})
	switch {
	case sinkName != "":
		pass.Reportf(rng.Pos(), "map iteration order reaches %s; sort the keys first (or mark //ficusvet:sorted)", sinkName)
	case len(appendTargets) > 0 && !sortedLater(info, rest, appendTargets):
		pass.ReportFixf(rng.Pos(), sortInsertFix(pass, rng, appendTargets),
			"slice collected from map iteration is never sorted; iteration order leaks into output (sort it or mark //ficusvet:sorted)")
	}
}

// sortInsertFix proposes a sort.Slice call right after the range when the
// collected slice has an ordered element type; the fix also adds the sort
// import if the file lacks it.
func sortInsertFix(pass *Pass, rng *ast.RangeStmt, targets map[types.Object]bool) *SuggestedFix {
	if len(targets) != 1 {
		return nil
	}
	var obj types.Object
	for o := range targets {
		obj = o
	}
	sl, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return nil
	}
	name := obj.Name()
	end := pass.Pkg.Fset.Position(rng.End())
	start := pass.Pkg.Fset.Position(rng.Pos())
	indent := strings.Repeat("\t", start.Column-1)
	text := "\n" + indent + "sort.Slice(" + name + ", func(i, j int) bool { return " +
		name + "[i] < " + name + "[j] })"
	edits := []TextEdit{{File: end.Filename, Start: end.Offset, End: end.Offset, NewText: text}}
	if imp, needed, ok := sortImportEdit(pass, rng.Pos()); ok {
		if needed {
			edits = append(edits, imp)
		}
	} else {
		return nil // nowhere safe to add the import
	}
	return &SuggestedFix{Message: "sort the collected slice after the range", Edits: edits}
}

// sortImportEdit returns the edit adding `"sort"` to the imports of the
// file containing pos (needed=false when already imported).
func sortImportEdit(pass *Pass, pos token.Pos) (TextEdit, bool, bool) {
	var file *ast.File
	for _, f := range pass.Pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			file = f
			break
		}
	}
	if file == nil {
		return TextEdit{}, false, false
	}
	for _, imp := range file.Imports {
		if imp.Path.Value == `"sort"` {
			return TextEdit{}, false, true
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok.String() != "import" {
			continue
		}
		if gd.Lparen.IsValid() && len(gd.Specs) > 0 {
			last := pass.Pkg.Fset.Position(gd.Specs[len(gd.Specs)-1].End())
			return TextEdit{File: last.Filename, Start: last.Offset, End: last.Offset, NewText: "\n\t\"sort\""}, true, true
		}
		declEnd := pass.Pkg.Fset.Position(gd.End())
		return TextEdit{File: declEnd.Filename, Start: declEnd.Offset, End: declEnd.Offset, NewText: "\nimport \"sort\""}, true, true
	}
	nameEnd := pass.Pkg.Fset.Position(file.Name.End())
	return TextEdit{File: nameEnd.Filename, Start: nameEnd.Offset, End: nameEnd.Offset, NewText: "\n\nimport \"sort\""}, true, true
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func isOrderedSink(name string) bool {
	for _, p := range orderedSinkPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// rootObject unwraps selectors/indexes/parens/derefs to the base
// identifier's object, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedLater reports whether a statement after the range sorts one of the
// collected slices: any sort.* or slices.* call taking the target, or a
// Sort method on it.
func sortedLater(info *types.Info, rest []ast.Stmt, targets map[types.Object]bool) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sortingCall := false
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "sort", "slices":
						sortingCall = true
					}
				}
				if sel.Sel.Name == "Sort" { // target.Sort()
					if obj := rootObject(info, sel.X); obj != nil && targets[obj] {
						found = true
					}
				}
			}
			if !sortingCall {
				return true
			}
			for _, arg := range call.Args {
				if obj := rootObject(info, arg); obj != nil && targets[obj] {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
