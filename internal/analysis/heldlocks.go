package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HeldLocks is the flow-sensitive generalization of lockedcall across the
// whole replication stack.  Using the lockflow engine it tracks exactly
// which mutexes are held at each statement and enforces the *Locked
// convention positionally:
//
//   - a call to x.somethingLocked() must happen while a mutex rooted at x
//     is held (or from inside a *Locked function with the same receiver,
//     or on a value constructed locally, which cannot be shared yet);
//   - Lock()/RLock() on a mutex already held on the same path is a
//     self-deadlock, as is re-locking the receiver's own mutex from
//     inside a *Locked function.
//
// Unlike lockedcall (kept as the cheap position-insensitive first line of
// defense in physical), heldlocks notices when the lock was released
// before the call, or taken only on some branches.
var HeldLocks = &Analyzer{
	Name: "heldlocks",
	Doc: "flow-sensitive lock tracking: *Locked callees reached only with the " +
		"receiver's mutex held, and no Lock() on a mutex already held (self-deadlock)",
	InScope: segScope("core", "physical", "recon", "repl", "disk", "simnet"),
	Run:     runHeldLocks,
}

// assumedPath marks the synthetic hold a *Locked function's receiver gets
// on entry; it matches any lock rooted at the receiver.
const assumedPath = "\x00assumed"

func runHeldLocks(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkHeldLocks(pass, fn)
		}
	}
}

func checkHeldLocks(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	entry := heldSet{}
	var recvObj types.Object
	inLocked := strings.HasSuffix(fn.Name.Name, "Locked")
	if fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		recvObj = info.Defs[fn.Recv.List[0].Names[0]]
	}
	if inLocked && recvObj != nil {
		// A *Locked function runs with its receiver's mutex held by
		// contract; which field is the mutex is the caller's business.
		entry[lockKey{root: recvObj, path: assumedPath}] = modeAssumed
	}

	flow := &lockFlow{
		info: info,
		onLock: func(call *ast.CallExpr, key lockKey, read bool, held heldSet) {
			if mode, dup := held[key]; dup && !(read && mode == modeRead) {
				pass.Reportf(call.Pos(), "self-deadlock: %s is already held on this path", key.path)
				return
			}
			_, assumed := held[lockKey{root: recvObj, path: assumedPath}]
			if assumed && key.root == recvObj {
				pass.Reportf(call.Pos(), "self-deadlock: %s locks the receiver's mutex inside %s, which runs with it held",
					key.path, fn.Name.Name)
			}
		},
		onCall: func(call *ast.CallExpr, held heldSet) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
				return
			}
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
				return
			}
			root := rootObject(info, sel.X)
			if root == nil {
				return
			}
			// A receiver constructed inside this function cannot be
			// reached by another goroutine yet.
			if fn.Body != nil && root.Pos() >= fn.Body.Pos() && root.Pos() <= fn.Body.End() {
				return
			}
			for key := range held {
				if key.root == root {
					return
				}
			}
			pass.Reportf(call.Pos(), "%s.%s called without %s's lock held on this path",
				exprPath(sel.X), sel.Sel.Name, exprPath(sel.X))
		},
	}
	flow.walkFunc(fn.Body, entry)
}
