package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DurabErr audits durable-write paths: device writes, sidecar/journal/
// shadow commits, renames, truncates.  An error from one of these calls
// is the only evidence a commit did not reach the disk; discarding it,
// overwriting it before anyone looks, or wrapping it with %v (which
// severs errors.Is and strips the retry.Transient classification) all
// turn a recoverable fault into silent data loss.
//
// The ufs layer is deliberately out of scope: its error-cleanup paths
// discard secondary failures on purpose while the primary error is
// already being returned.
var DurabErr = &Analyzer{
	Name: "duraberr",
	Doc: "on durable-write paths, flag discarded or shadowed error returns and " +
		"%v wrapping that strips transient-error classification",
	InScope: segScope("physical", "disk", "core"),
	Run:     runDurabErr,
}

// durableStems match functions whose failure means a durable state
// transition may not have happened.
var durableStems = []string{
	"write", "commit", "rename", "sync", "flush",
	"remove", "truncate", "seal", "create",
}

// isDurableCall reports whether call invokes a durable-write-style
// function whose last result is an error, returning the callee name.
func isDurableCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if name == "" {
		return "", false
	}
	lower := strings.ToLower(name)
	match := false
	for _, stem := range durableStems {
		if strings.Contains(lower, stem) {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	// In-memory writers (strings.Builder, bytes.Buffer, hashes) return a
	// vestigial always-nil error; nothing durable is at stake.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "strings", "bytes":
				return "", false
			}
			if strings.HasPrefix(fn.Pkg().Path(), "hash") {
				return "", false
			}
		}
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if last == nil || last.String() != "error" {
		return "", false
	}
	return name, true
}

func runDurabErr(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDurabErrs(pass, fn)
		}
	}
}

func checkDurabErrs(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// durableErrVars: error variables whose value came from a durable
	// call, for the %v-wrapping taint check.
	durableErrVars := make(map[types.Object]bool)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := isDurableCall(info, call); ok {
					pass.Reportf(call.Pos(), "error from durable write %s is discarded; a failed commit goes unnoticed", name)
				}
			}
		case *ast.AssignStmt:
			checkDurableAssign(pass, info, n, durableErrVars)
		case *ast.BlockStmt:
			checkShadowedErrs(pass, info, n.List, fn)
		}
		return true
	})

	// %v/%s/%q wrapping of a durable-originated error.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errorf" {
			return true
		}
		fnObj, _ := info.Uses[sel.Sel].(*types.Func)
		if fnObj == nil || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "fmt" {
			return true
		}
		if len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		verbs := formatVerbOffsets(lit.Value)
		for i, v := range verbs {
			argIdx := 1 + i
			if argIdx >= len(call.Args) {
				break
			}
			if v.verb != 'v' && v.verb != 's' && v.verb != 'q' {
				continue
			}
			obj := rootObject(info, call.Args[argIdx])
			if obj == nil || !durableErrVars[obj] {
				continue
			}
			litPos := pass.Pkg.Fset.Position(lit.Pos())
			fix := &SuggestedFix{
				Message: "wrap with %w to preserve the error chain",
				Edits: []TextEdit{{
					File:    litPos.Filename,
					Start:   litPos.Offset + v.offset,
					End:     litPos.Offset + v.offset + 1,
					NewText: "w",
				}},
			}
			pass.ReportFixf(call.Args[argIdx].Pos(), fix,
				"durable-write error wrapped with %%%c; use %%w so retry.Transient classification survives errors.Is", v.verb)
		}
		return true
	})
}

// checkDurableAssign flags "_ = durableCall()" style discards and records
// error variables fed from durable calls.
func checkDurableAssign(pass *Pass, info *types.Info, n *ast.AssignStmt, durableErrVars map[types.Object]bool) {
	// Single call on the RHS (covers both "err := f()" and "a, err := f()").
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := isDurableCall(info, call)
	if !ok {
		return
	}
	// The error is the last result; find which LHS receives it.
	errLhs := n.Lhs[len(n.Lhs)-1]
	if id, ok := errLhs.(*ast.Ident); ok {
		if id.Name == "_" {
			pass.Reportf(n.Pos(), "error from durable write %s assigned to _; a failed commit goes unnoticed", name)
			return
		}
		if obj := info.Defs[id]; obj != nil {
			durableErrVars[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			durableErrVars[obj] = true
		}
	}
}

// checkShadowedErrs scans one statement list linearly: an error assigned
// from a durable call must be used (checked, returned, passed on) before
// the same variable is overwritten at this nesting level.  At the end of
// the function body an unread pending error is equally lost.
func checkShadowedErrs(pass *Pass, info *types.Info, stmts []ast.Stmt, fn *ast.FuncDecl) {
	type pending struct {
		obj  types.Object
		name string // durable callee
		stmt *ast.AssignStmt
	}
	var open []pending

	// use reports whether s reads obj.  The bare-identifier LHS of an
	// assignment is a write, not a read — without excluding it, the very
	// statement that overwrites a pending error would count as "checking"
	// it.  Non-identifier LHS (m[err] = x) still reads the variable.
	useExpr := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return true
		})
		return found
	}
	use := func(s ast.Stmt, obj types.Object) bool {
		if asn, ok := s.(*ast.AssignStmt); ok {
			for _, rhs := range asn.Rhs {
				if useExpr(rhs, obj) {
					return true
				}
			}
			for _, lhs := range asn.Lhs {
				if _, bare := lhs.(*ast.Ident); !bare && useExpr(lhs, obj) {
					return true
				}
			}
			return false
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return true
		})
		return found
	}

	for _, s := range stmts {
		// First: does this statement read any pending error?
		var kept []pending
		for _, p := range open {
			if use(s, p.obj) {
				continue // checked; resolved
			}
			kept = append(kept, p)
		}
		open = kept

		asn, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		// Overwrite of a still-pending error at this level?
		overwritten := func(p pending) bool {
			for _, lhs := range asn.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.Uses[id]
					if obj == nil {
						obj = info.Defs[id]
					}
					if obj == p.obj {
						return true
					}
				}
			}
			return false
		}
		kept = kept[:0]
		for _, p := range open {
			if overwritten(p) {
				pass.Reportf(asn.Pos(), "error from durable write %s is overwritten before being checked; the failed commit is lost", p.name)
				continue
			}
			kept = append(kept, p)
		}
		open = append([]pending(nil), kept...)
		// New pending durable error?
		if len(asn.Rhs) == 1 {
			if call, ok := asn.Rhs[0].(*ast.CallExpr); ok {
				if name, ok := isDurableCall(info, call); ok {
					errLhs := asn.Lhs[len(asn.Lhs)-1]
					if id, ok := errLhs.(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							open = append(open, pending{obj: obj, name: name, stmt: asn})
						}
					}
				}
			}
		}
	}

	// End of the function body: a pending error nobody will ever read.
	if fn.Body != nil && len(fn.Body.List) > 0 && sameStmts(stmts, fn.Body.List) {
		for _, p := range open {
			pass.Reportf(p.stmt.Pos(), "error from durable write %s is assigned but never checked before the function returns", p.name)
		}
	}
}

// sameStmts reports whether the two slices are the same statement list.
func sameStmts(a, b []ast.Stmt) bool {
	return len(a) == len(b) && len(a) > 0 && a[0] == b[0]
}

// formatVerb is one verb occurrence in a format string literal, with the
// byte offset of the verb character within the literal's source text.
type formatVerb struct {
	verb   byte
	offset int
}

// formatVerbOffsets scans a format string literal's source text (quotes
// included) and returns the argument-consuming verbs in order, with the
// offset of each verb character.  %% is skipped; flags, width, and
// precision are stepped over.  Indexed arguments (%[n]d) are not handled.
func formatVerbOffsets(lit string) []formatVerb {
	var out []formatVerb
	for i := 0; i < len(lit); i++ {
		if lit[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(lit) && strings.IndexByte("+-# 0123456789.", lit[j]) >= 0 {
			j++
		}
		if j >= len(lit) {
			break
		}
		if lit[j] == '%' {
			i = j
			continue
		}
		out = append(out, formatVerb{verb: lit[j], offset: j})
		i = j
	}
	return out
}
