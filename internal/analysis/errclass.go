package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrClass guards internal/retry's transient-vs-permanent classification
// in the retry-aware layers: wrapping an error with fmt.Errorf("%v") severs
// the chain errors.Is/errors.As walk, and comparing interface errors with
// == misses wrapped sentinels.  Either defect silently turns a transient
// communication fault into a permanent one (or vice versa), defeating the
// backoff machinery PR 1 added.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "flag fmt.Errorf that formats an error without %w and ==/!= comparisons of " +
		"interface errors (use errors.Is) in retry-aware packages",
	InScope: errClassScope,
	Run:     runErrClass,
}

// errClassScope: the replication stack and anything that imports
// internal/retry directly.
func errClassScope(pkg *Package) bool {
	if segScope("retry", "sim", "simnet", "core", "recon", "repl", "physical")(pkg) {
		return true
	}
	for _, imp := range pkg.Types.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/retry") {
			return true
		}
	}
	return false
}

func runErrClass(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			case *ast.BinaryExpr:
				checkErrCompare(pass, info, x)
			}
			return true
		})
	}
}

// errorType is the built-in error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// isErrorInterface reports whether t is the error interface itself (not a
// concrete type that happens to implement it — comparing concrete errno
// values with == is fine).
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	intf, ok := t.Underlying().(*types.Interface)
	return ok && types.Identical(intf, errorType)
}

// checkErrorfWrap flags fmt.Errorf calls whose format applies %v/%s/%q to
// an error-typed argument: the chain is flattened to text and retry can no
// longer classify the cause.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(info, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		arg := call.Args[argIdx]
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		t := info.TypeOf(arg)
		if t == nil || !implementsError(t) {
			continue
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		// When the format is a plain literal the repair is mechanical:
		// rewrite this verb to %w.
		var fix *SuggestedFix
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			offs := formatVerbOffsets(lit.Value)
			if len(offs) == len(verbs) && i < len(offs) && offs[i].verb == verb {
				litPos := pass.Pkg.Fset.Position(lit.Pos())
				fix = &SuggestedFix{
					Message: "wrap with %w to preserve the error chain",
					Edits: []TextEdit{{
						File:    litPos.Filename,
						Start:   litPos.Offset + offs[i].offset,
						End:     litPos.Offset + offs[i].offset + 1,
						NewText: "w",
					}},
				}
			}
		}
		pass.ReportFixf(arg.Pos(), fix, "error formatted with %%%c loses the error chain; use %%w so retry can classify the cause with errors.Is/As", verb)
	}
}

// stringConstant extracts a compile-time string value.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs maps each consumed argument (in order) to its verb letter.
// A '*' width or precision consumes an argument and is recorded as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			if c := format[i]; (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				verbs = append(verbs, c)
			}
		}
	}
	return verbs
}

// checkErrCompare flags ==/!= where either side is the error interface and
// neither side is nil: wrapped sentinels make the comparison silently
// false; errors.Is unwraps.
func checkErrCompare(pass *Pass, info *types.Info, be *ast.BinaryExpr) {
	if be.Op.String() != "==" && be.Op.String() != "!=" {
		return
	}
	if isNilExpr(info, be.X) || isNilExpr(info, be.Y) {
		return
	}
	tx, ty := info.TypeOf(be.X), info.TypeOf(be.Y)
	if !isErrorInterface(tx) && !isErrorInterface(ty) {
		return
	}
	if !implementsError(tx) || !implementsError(ty) {
		return
	}
	pass.Reportf(be.Pos(), "comparing errors with %s misses wrapped sentinels and defeats retry classification; use errors.Is", be.Op)
}

// isNilExpr reports whether e is the untyped nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return true
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return true
	}
	return false
}
