package analysis

// lockflow is the shared flow-sensitive mutex tracker behind heldlocks and
// lockorder.  It walks a function body statement by statement, maintaining
// the set of mutexes held on the current path, and fires hooks at lock
// acquisitions and at ordinary call sites.
//
// The model is deliberately simple and errs toward the idioms this repo
// actually uses:
//
//   - mu.Lock()/mu.RLock() add the mutex to the held set; Unlock/RUnlock
//     remove it.  defer mu.Unlock() keeps the mutex held to function end.
//   - if/else: each branch is analyzed on its own copy of the held set;
//     the sets are merged by intersection over the branches that can fall
//     through (a branch ending in return/panic/break is excluded, which
//     handles the "if down { mu.Unlock(); return }" early-exit idiom).
//   - loops, switch and select bodies are analyzed on a copy and their
//     effects discarded: a lock acquired inside may not be held after.
//   - function literals are analyzed with a copy of the current held set
//     (callbacks like sort.Slice comparators run synchronously under the
//     caller's locks), except goroutine bodies, which start with nothing
//     held and whose calls are excluded from acquisition hooks.

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockKey identifies one mutex as seen from one function: the root object
// of the selector chain plus the flattened path, so v.l.mu.Lock() and a
// later v.l.mu.Unlock() cancel while h.mu and g.mu stay distinct.
type lockKey struct {
	root types.Object
	path string
}

// lockMode distinguishes write locks, read locks, and the assumed hold a
// *Locked function gets for its receiver on entry.
type lockMode int

const (
	modeWrite lockMode = iota
	modeRead
	modeAssumed
)

type heldSet map[lockKey]lockMode

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// replaceWith overwrites h's contents with src, in place.
func (h heldSet) replaceWith(src heldSet) {
	for k := range h {
		delete(h, k)
	}
	for k, v := range src {
		h[k] = v
	}
}

// intersect keeps only keys held in both sets (the weaker mode wins).
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, ma := range a {
		if mb, ok := b[k]; ok {
			if ma == modeRead || mb == modeRead {
				out[k] = modeRead
			} else if ma == modeAssumed || mb == modeAssumed {
				out[k] = modeAssumed
			} else {
				out[k] = modeWrite
			}
		}
	}
	return out
}

// lockFlow walks one function body.  Hooks may be nil.
type lockFlow struct {
	info *types.Info

	// onLock fires at mu.Lock()/mu.RLock() with the set held before the
	// acquisition.  deferred is true for "defer mu.Lock()" (never sane,
	// still reported to hooks) — the acquisition is not modeled.
	onLock func(call *ast.CallExpr, key lockKey, read bool, held heldSet)

	// onCall fires at every other call with the current held set.  Calls
	// made from goroutine bodies are excluded.
	onCall func(call *ast.CallExpr, held heldSet)
}

// walkFunc analyzes body starting from the entry held set (which walkFunc
// mutates; pass a fresh set).
func (e *lockFlow) walkFunc(body *ast.BlockStmt, entry heldSet) {
	e.stmtList(body.List, entry)
}

// stmtList processes statements in order; it reports whether the list
// cannot fall through (ends in return/panic/branch on every path).
func (e *lockFlow) stmtList(list []ast.Stmt, held heldSet) bool {
	for _, s := range list {
		if e.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt processes one statement, updating held; it reports whether control
// cannot continue past the statement.
func (e *lockFlow) stmt(s ast.Stmt, held heldSet) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		e.expr(s.X, held)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(e.info, call) {
			return true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			e.expr(r, held)
		}
		for _, l := range s.Lhs {
			e.expr(l, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						e.expr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		e.expr(s.X, held)
	case *ast.SendStmt:
		e.expr(s.Chan, held)
		e.expr(s.Value, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			e.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path; for merge purposes
		// the branch does not fall through.
		return true
	case *ast.BlockStmt:
		return e.stmtList(s.List, held)
	case *ast.LabeledStmt:
		return e.stmt(s.Stmt, held)
	case *ast.IfStmt:
		e.stmt(s.Init, held)
		e.expr(s.Cond, held)
		thenHeld := held.clone()
		thenTerm := e.stmtList(s.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = e.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			held.replaceWith(elseHeld)
		case elseTerm:
			held.replaceWith(thenHeld)
		default:
			held.replaceWith(intersect(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		e.stmt(s.Init, held)
		e.expr(s.Cond, held)
		body := held.clone()
		e.stmtList(s.Body.List, body)
		e.stmt(s.Post, body)
	case *ast.RangeStmt:
		e.expr(s.X, held)
		body := held.clone()
		e.stmtList(s.Body.List, body)
	case *ast.SwitchStmt:
		e.stmt(s.Init, held)
		e.expr(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				body := held.clone()
				for _, x := range cc.List {
					e.expr(x, body)
				}
				e.stmtList(cc.Body, body)
			}
		}
	case *ast.TypeSwitchStmt:
		e.stmt(s.Init, held)
		e.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				body := held.clone()
				e.stmtList(cc.Body, body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				body := held.clone()
				e.stmt(cc.Comm, body)
				e.stmtList(cc.Body, body)
			}
		}
	case *ast.DeferStmt:
		e.deferredCall(s.Call, held)
	case *ast.GoStmt:
		e.goCall(s.Call, held)
	}
	return false
}

// expr fires hooks for calls within x, in evaluation order.
func (e *lockFlow) expr(x ast.Expr, held heldSet) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Callbacks (sort comparators, walk visitors) run under the
			// caller's locks; escaping closures are the rare case.
			e.stmtList(n.Body.List, held.clone())
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				e.expr(a, held)
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				e.expr(sel.X, held)
			} else if _, ok := n.Fun.(*ast.Ident); !ok {
				e.expr(n.Fun, held)
			}
			e.call(n, held)
			return false
		}
		return true
	})
}

// call classifies one call: lock acquisition, release, or ordinary call.
func (e *lockFlow) call(call *ast.CallExpr, held heldSet) {
	if key, kind, ok := mutexOp(e.info, call); ok {
		switch kind {
		case "Lock", "RLock":
			read := kind == "RLock"
			if e.onLock != nil {
				e.onLock(call, key, read, held)
			}
			if read {
				held[key] = modeRead
			} else {
				held[key] = modeWrite
			}
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return
	}
	if e.onCall != nil {
		e.onCall(call, held)
	}
}

// deferredCall models "defer f(...)": arguments evaluate now; a deferred
// Unlock keeps the mutex held to function end (so: ignored); a deferred
// ordinary call still runs under whatever is held at exit, which we
// approximate with the current set.
func (e *lockFlow) deferredCall(call *ast.CallExpr, held heldSet) {
	for _, a := range call.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			e.stmtList(fl.Body.List, held.clone())
		} else {
			e.expr(a, held)
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		e.stmtList(fl.Body.List, held.clone())
		return
	}
	if _, _, ok := mutexOp(e.info, call); ok {
		return // defer mu.Unlock(): held to function end by design
	}
	if e.onCall != nil {
		e.onCall(call, held)
	}
}

// goCall models "go f(...)": the goroutine starts with nothing held, so
// its body (and the spawned call itself) is analyzed under an empty set
// rather than the spawner's locks.
func (e *lockFlow) goCall(call *ast.CallExpr, held heldSet) {
	for _, a := range call.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			e.stmtList(fl.Body.List, heldSet{})
		} else {
			e.expr(a, held)
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		e.stmtList(fl.Body.List, heldSet{})
		return
	}
	if e.onCall != nil {
		e.onCall(call, heldSet{})
	}
}

// mutexOp decodes mu.Lock/Unlock/RLock/RUnlock/TryLock calls on a sync
// mutex reached through a selector chain with a resolvable root.  TryLock
// is reported with ok=false (its acquisition is conditional; not modeled).
func mutexOp(info *types.Info, call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockKey{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return lockKey{}, "", false
	}
	root := rootObject(info, sel.X)
	if root == nil {
		return lockKey{}, "", false
	}
	return lockKey{root: root, path: exprPath(sel.X)}, sel.Sel.Name, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprPath renders a selector chain as "root.a.b"; non-selector parts
// (indexes, derefs) collapse to their base so the path stays comparable.
func exprPath(e ast.Expr) string {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			parts = append(parts, x.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, ".")
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return strings.Join(parts, ".")
		}
	}
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
		case "runtime":
			return fn.Name() == "Goexit"
		}
	}
	return false
}
