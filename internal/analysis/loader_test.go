package analysis

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoaderFileSelection pins the loader to the go tool's file selection:
// build-constrained files, GOOS-suffixed files for other systems, _-prefixed
// files, and _test.go files must all be excluded.  Every excluded sibling in
// the fixture re-declares the same constant, so including any of them by
// mistake fails type-checking outright.
func TestLoaderFileSelection(t *testing.T) {
	if runtime.GOOS == "plan9" {
		t.Skip("fixture uses a _plan9.go sibling as the excluded-GOOS case")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src", "buildtags"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load(filepath.Join(root, "pkg"))
	if err != nil {
		t.Fatalf("loading buildtags fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Files) != 1 {
		var names []string
		for _, f := range pkg.Files {
			names = append(names, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
		}
		t.Fatalf("loaded files %v, want only fixture.go", names)
	}
	got := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
	if got != "fixture.go" {
		t.Fatalf("loaded %s, want fixture.go", got)
	}
	if pkg.Types.Scope().Lookup("answer") == nil {
		t.Fatal("type info lost the fixture's declaration")
	}
}

// TestLoaderSkipsTestFiles double-checks the _test.go rule on a real
// package of the module, where test files exist alongside shipped code.
func TestLoaderSkipsTestFiles(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	for _, f := range pkgs[0].Files {
		name := filepath.Base(pkgs[0].Fset.Position(f.Pos()).Filename)
		if len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go" {
			t.Errorf("loader picked up test file %s", name)
		}
	}
}
