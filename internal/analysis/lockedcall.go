package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockedCall enforces the repo's lock-suffix convention in the physical
// layer: a method named *Locked requires its receiver's mutex to be held.
// The durable new-version cache journal made this load-bearing — a journal
// append racing a compaction would interleave records and corrupt the
// on-disk NVC — so a call to x.fooLocked(...) is flagged unless the calling
// function (a) is itself named *Locked, (b) visibly locks x's mutex
// (x.mu.Lock() / x...mu.RLock() anywhere in the body, covering the
// lock-then-defer-unlock idiom), or (c) constructed x locally, in which
// case no other goroutine can hold a reference yet (Format/Open build a
// Layer privately before publishing it).
var LockedCall = &Analyzer{
	Name: "lockedcall",
	Doc: "flag calls to *Locked methods from functions that neither hold the " +
		"receiver's mutex nor own the receiver privately",
	InScope: segScope("physical"),
	Run:     runLockedCall,
}

func runLockedCall(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockedCalls(pass, fn)
		}
	}
}

func checkLockedCalls(pass *Pass, fn *ast.FuncDecl) {
	// A *Locked function's own contract is that the caller holds the lock;
	// calling further *Locked helpers inside it is the intended layering.
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	info := pass.Pkg.Info

	// Objects whose mutex this function visibly locks: the root of x in
	// any x(...).mu.Lock() or .RLock() call.  Position is deliberately
	// ignored (the Lock may syntactically follow in a retry loop); the
	// analyzer is a convention check, not a happens-before prover.
	locked := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
			if obj := rootObject(info, sel.X); obj != nil {
				locked[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
			return true
		}
		// Only method calls count: pkg.FooLocked qualified identifiers
		// have no receiver to lock.
		if s, ok := info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
			return true
		}
		obj := rootObject(info, sel.X)
		if obj == nil || locked[obj] {
			return true
		}
		if declaredWithin(obj, fn) {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s without holding %s's lock: name the caller *Locked, lock %s.mu, or construct the receiver locally",
			sel.Sel.Name, obj.Name(), obj.Name())
		return true
	})
}

// declaredWithin reports whether obj is declared inside fn's body — a
// locally constructed, not-yet-published value (receivers and parameters
// sit in the signature, outside the body, and do not qualify).
func declaredWithin(obj types.Object, fn *ast.FuncDecl) bool {
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End()
}
