// Package core is a ficusvet test fixture for the suggested-fix engine:
// every finding in this file carries a fix, and applying them all (what
// ficusvet -fix does) must leave the package finding-free.
package core

import (
	"fmt"

	"repro/internal/vv"
)

type state struct {
	vec vv.Vector
}

type journal struct {
	recs []string
}

func (j *journal) commitRecord(r string) error {
	j.recs = append(j.recs, r)
	return nil
}

// keep stores the caller's vector without Clone; the fix appends .Clone().
func keep(s *state, v vv.Vector) {
	s.vec = v
}

// wrap loses the error chain with %v; the fix rewrites the verb to %w.
func wrap(err error) error {
	return fmt.Errorf("apply notify: %v", err)
}

// seal wraps a durable-write error with %v; errclass and duraberr both
// propose the same one-byte fix, which the engine must deduplicate.
func seal(j *journal, r string) error {
	if err := j.commitRecord(r); err != nil {
		return fmt.Errorf("seal journal: %v", err)
	}
	return nil
}

// replicaNames collects map keys without sorting; the fix inserts a
// sort.Slice after the loop and adds the missing sort import.
func replicaNames(m map[string]uint64) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	return names
}
