// Package disk is a ficusvet test fixture for the duraberr analyzer: an
// error from a durable write is the only evidence the commit failed, so
// discarding, shadowing, or %v-wrapping it is silent data loss.
package disk

import (
	"fmt"
	"strings"
)

type dev struct {
	blocks map[uint64][]byte
	dirty  bool
}

func (d *dev) writeBlock(n uint64, b []byte) error {
	d.blocks[n] = b
	return nil
}

func (d *dev) syncMeta() error {
	d.dirty = false
	return nil
}

// --- known-bad -----------------------------------------------------------

func (d *dev) badDiscard(b []byte) {
	d.writeBlock(0, b) // want: error discarded
}

func (d *dev) badBlank() {
	_ = d.syncMeta() // want: error assigned to _
}

func (d *dev) badShadow(b []byte) error {
	err := d.writeBlock(0, b)
	err = d.writeBlock(1, b) // want: first error overwritten unchecked
	return err
}

func (d *dev) badNeverChecked(b []byte) (err error) {
	err = d.writeBlock(0, b) // want: assigned but never checked
	return nil
}

func (d *dev) badWrap(b []byte) error {
	if err := d.writeBlock(0, b); err != nil {
		return fmt.Errorf("flush block: %v", err) // want: %v strips retry classification
	}
	return nil
}

// --- known-good ----------------------------------------------------------

func (d *dev) goodChecked(b []byte) error {
	if err := d.writeBlock(0, b); err != nil {
		return fmt.Errorf("write block 0: %w", err)
	}
	return d.syncMeta()
}

func (d *dev) goodShadowAfterCheck(b []byte) error {
	err := d.writeBlock(0, b)
	if err != nil {
		return err
	}
	err = d.writeBlock(1, b)
	return err
}

func (d *dev) goodBuilder(names []string) string {
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(n) // in-memory writer: vestigial always-nil error
	}
	return sb.String()
}

func (d *dev) goodSuppressed(b []byte) {
	d.writeBlock(0, b) //ficusvet:ignore duraberr
}
