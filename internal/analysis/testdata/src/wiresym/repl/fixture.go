// Package repl is a ficusvet test fixture for the wiresym analyzer: every
// encode function must write exactly the token stream its decode
// counterpart reads, and every opcode constant must be dispatched.
package repl

import "encoding/binary"

// dec is a sticky-error decoder in the repo's codec convention; wiresym
// maps its method names straight to wire tokens.
type dec struct {
	buf []byte
	bad bool
}

func (d *dec) u8() uint8 {
	if len(d.buf) < 1 {
		d.bad = true
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *dec) u16() uint16 {
	if len(d.buf) < 2 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *dec) u32() uint32 {
	if len(d.buf) < 4 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *dec) u64() uint64 {
	if len(d.buf) < 8 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *dec) count() int {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.buf = d.buf[n:]
	return int(v)
}

func (d *dec) take(n int) []byte {
	if n < 0 || n > len(d.buf) {
		d.bad = true
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}

// --- known-good: symmetric pairs -----------------------------------------

type ping struct {
	seq  uint32
	site uint64
	note []byte
}

func (p *ping) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, p.seq)
	b = binary.BigEndian.AppendUint64(b, p.site)
	b = binary.AppendUvarint(b, uint64(len(p.note)))
	b = append(b, p.note...)
	return b
}

func decodePing(d *dec) ping {
	var p ping
	p.seq = d.u32()
	p.site = d.u64()
	n := d.count()
	p.note = d.take(n)
	return p
}

type roster struct {
	ids []uint32
}

func (r *roster) encode(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(r.ids)))
	for _, id := range r.ids {
		b = binary.BigEndian.AppendUint32(b, id)
	}
	return b
}

func decodeRoster(d *dec) roster {
	var r roster
	n := d.count()
	for i := 0; i < n; i++ {
		r.ids = append(r.ids, d.u32())
	}
	return r
}

// --- known-bad: drifted pairs --------------------------------------------

type summary struct {
	gen   uint16
	count uint32
}

func (s *summary) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, s.gen) // want: decode reads u32 here
	b = binary.BigEndian.AppendUint32(b, s.count)
	return b
}

func decodeSummary(d *dec) summary {
	var s summary
	s.gen = uint16(d.u32()) // drifted from u16 when the field widened
	s.count = d.u32()
	return s
}

func encodeTrailer(b []byte, gen, crc uint32) []byte {
	b = binary.BigEndian.AppendUint32(b, gen)
	b = binary.BigEndian.AppendUint32(b, crc) // want: decode stops before this
	return b
}

func decodeTrailer(d *dec) uint32 {
	return d.u32()
}

// --- known-bad: unpaired codecs ------------------------------------------

func encodeOrphan(b []byte, v uint8) []byte { // want: no decode counterpart
	return append(b, v)
}

func decodeStray(d *dec) uint8 { // want: no encode counterpart
	return d.u8()
}

// --- block manifests: the delta-era codec shape ---------------------------
//
// A manifest is a length plus a run of fixed-width content addresses — the
// shape the content-addressed transfer path ships.  The symmetric pair must
// pass; the drifted pair models the realistic regression where the length
// field is narrowed on one side only.

type manifest struct {
	length uint64
	addrs  [][16]byte
}

func (m *manifest) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.length)
	b = binary.AppendUvarint(b, uint64(len(m.addrs)))
	for i := range m.addrs {
		b = append(b, m.addrs[i][:]...)
	}
	return b
}

func decodeManifest(d *dec) manifest {
	var m manifest
	m.length = d.u64()
	n := d.count()
	for i := 0; i < n; i++ {
		var a [16]byte
		copy(a[:], d.take(16))
		m.addrs = append(m.addrs, a)
	}
	return m
}

type blockList struct {
	length uint64
	addrs  [][16]byte
}

func (l *blockList) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, l.length) // want: decode reads u32 here
	b = binary.AppendUvarint(b, uint64(len(l.addrs)))
	for i := range l.addrs {
		b = append(b, l.addrs[i][:]...)
	}
	return b
}

func decodeBlockList(d *dec) blockList {
	var l blockList
	l.length = uint64(d.u32()) // drifted when the length field narrowed
	n := d.count()
	for i := 0; i < n; i++ {
		var a [16]byte
		copy(a[:], d.take(16))
		l.addrs = append(l.addrs, a)
	}
	return l
}

// --- op tables -----------------------------------------------------------

type opCode uint8

const (
	opPing opCode = 1
	opPull opCode = 2
	opStat opCode = 3 // want: never dispatched
)

func dispatch(op opCode, d *dec) int {
	switch op {
	case opPing:
		return int(decodePing(d).seq)
	case opPull:
		return len(decodeRoster(d).ids)
	}
	return -1
}

type ackCode uint8

const (
	ackOK  ackCode = 0
	ackErr ackCode = 1
)

// ackName dispatches every ackCode constant: a fully covered table.
func ackName(a ackCode) string {
	switch a {
	case ackOK:
		return "ok"
	case ackErr:
		return "err"
	}
	return "?"
}
