// Excluded by the leading underscore in the file name.
package pkg

const answer = 45
