// Excluded by its GOOS file-name suffix everywhere but plan9.
package pkg

const answer = 44
