//go:build ignore

// Excluded by its build constraint; the go tool never compiles it.
package pkg

const answer = 43
