// Excluded: the analyzers guard shipped code, not tests.
package pkg

const answer = 46
