// Package pkg is a loader test fixture: of the files in this directory,
// only this one may be loaded.  Every excluded sibling declares the same
// constant, so a file-selection bug becomes a type-check failure.
package pkg

const answer = 42
