// Package physical is a ficusvet test fixture for the lockedcall analyzer
// (the "physical" path segment puts it in scope): methods named *Locked
// require the receiver's mutex, and the journal append path makes that
// convention load-bearing.
package physical

import "sync"

type layer struct {
	mu   sync.Mutex
	recs int
}

func (l *layer) journalAppendLocked() { l.recs++ }

func (l *layer) rewriteLocked() {
	// *Locked calling *Locked: the outermost caller owns the lock.
	l.journalAppendLocked()
}

// --- known-good ----------------------------------------------------------

func (l *layer) noteGood() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journalAppendLocked()
}

func (l *layer) noteGoodLoop() {
	for i := 0; i < 2; i++ {
		l.mu.Lock()
		l.journalAppendLocked()
		l.mu.Unlock()
	}
}

func format() *layer {
	// Locally constructed, unpublished: no other goroutine can hold a
	// reference, so the lock is not needed yet.
	l := &layer{}
	l.journalAppendLocked()
	return l
}

func (l *layer) noteSuppressed() {
	l.journalAppendLocked() //ficusvet:ignore lockedcall
}

// --- known-bad -----------------------------------------------------------

func (l *layer) noteBad() {
	l.journalAppendLocked() // want: receiver's lock not held
}

func noteBadParam(l *layer) {
	l.journalAppendLocked() // want: parameter, not locally constructed
}

func (l *layer) noteBadOtherLock(other *layer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	other.journalAppendLocked() // want: wrong object's lock
}
