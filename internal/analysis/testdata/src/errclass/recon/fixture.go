// Package recon is a ficusvet test fixture for the errclass analyzer (the
// "recon" path segment puts it in the retry-aware scope): wrapping without
// %w or comparing interface errors with == severs the chain that
// transient/permanent retry classification walks.
package recon

import (
	"errors"
	"fmt"
	"io"
)

var errStale = errors.New("recon: stale replica")

type errno int

func (e errno) Error() string { return "errno" }

const enoent errno = 2

// --- known-bad -----------------------------------------------------------

func badWrapV(err error) error {
	return fmt.Errorf("pull failed: %v", err) // want: %v loses the chain
}

func badWrapS(err error) error {
	return fmt.Errorf("pull failed: %s", err) // want: %s loses the chain
}

func badSentinelCompare(err error) bool {
	return err == errStale // want: use errors.Is
}

func badEOFCompare(err error) bool {
	return err != io.EOF // want: use errors.Is
}

// --- known-good ----------------------------------------------------------

func goodWrapW(err error) error {
	return fmt.Errorf("pull failed: %w", err)
}

func goodDoubleWrap(err error) error {
	return fmt.Errorf("%w: %w", errStale, err)
}

func goodErrorsIs(err error) bool {
	return errors.Is(err, errStale)
}

func goodNilCheck(err error) bool {
	return err == nil || err != nil
}

func goodConcreteCompare(e errno) bool {
	return e == enoent // concrete comparable error values: == is exact
}

func goodNonErrorVerb(n int, err error) error {
	return fmt.Errorf("attempt %d: %w", n, err)
}

func goodSuppressed(err error) bool {
	return err == errStale //ficusvet:ignore errclass
}
