// Package clockok is a ficusvet test fixture OUTSIDE the determinism
// analyzer's scope (no sim/simnet/core/recon/repl/physical/avail/workload
// path segment): wall-clock use here is legal and must produce no
// diagnostics.
package clockok

import "time"

// Stamp may use real time: this package is not simulation-critical.
func Stamp() int64 { return time.Now().UnixNano() }
