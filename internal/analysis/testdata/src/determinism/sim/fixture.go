// Package sim is a ficusvet test fixture: its import path contains the
// "sim" segment, putting it in the determinism analyzer's scope.  The
// bad functions below must each produce exactly one diagnostic; the good
// ones must produce none.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// --- known-bad -----------------------------------------------------------

func badWallClock() int64 {
	return time.Now().UnixNano() // want: time.Now
}

func badSleep() {
	time.Sleep(time.Millisecond) // want: time.Sleep
}

func badGlobalRand() int {
	return rand.Intn(6) // want: global rand.Intn
}

func badMapRangeToWriter(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want: iteration order reaches Fprintf
	}
}

func badMapRangeCollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want: collected slice never sorted
		keys = append(keys, k)
	}
	return keys
}

func badConcurrentMerge(w io.Writer, results map[string][]string) {
	for origin, lines := range results { // worker-pool merge: goroutine body still sinks
		go func(o string, ls []string) {
			fmt.Fprintf(w, "%s: %d\n", o, len(ls)) // want: iteration order reaches Fprintf
		}(origin, lines)
	}
}

// --- known-good ----------------------------------------------------------

func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodAggregation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-insensitive: no diagnostic
	}
	return total
}

func goodSuppressed(w io.Writer, m map[string]struct{}) {
	//ficusvet:sorted -- the single-entry map below cannot disorder
	for k := range m {
		fmt.Fprintln(w, k)
	}
}

// goodWorkerPoolMerge is the shipped propagation-pipeline shape: workers
// write into an index-addressed slice (no sink inside the range body), and
// a sequential reduce walks a sorted key list.
func goodWorkerPoolMerge(w io.Writer, results map[string][]string) {
	origins := make([]string, 0, len(results))
	for o := range results {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		fmt.Fprintf(w, "%s: %d\n", o, len(results[o]))
	}
}

func goodMethodNamedNow() {
	var c fakeClock
	_ = c.Now() // a method named Now is not time.Now
}

type fakeClock struct{ tick int64 }

func (c fakeClock) Now() int64 { return c.tick }
