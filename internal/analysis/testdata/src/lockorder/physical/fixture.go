// Package physical is half of the ficusvet lockorder fixture: it owns the
// Layer lock class that the core half acquires.  Mu is exported only so
// the core fixture can close the loop from the wrong direction.
package physical

import "sync"

type Layer struct {
	Mu sync.Mutex
	n  int
}

func (l *Layer) Note() {
	l.Mu.Lock()
	defer l.Mu.Unlock()
	l.n++
}

// NoteNested reaches Layer.Mu only transitively, exercising the
// interprocedural fixpoint on the core side.
func (l *Layer) NoteNested() { l.Note() }

// merge locks two instances of the same class; instance ordering is an
// address-level protocol, not a class-level one, so no edge is recorded.
func merge(a, b *Layer) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	b.n += a.n
	b.Mu.Unlock()
}
