// Package core is the other half of the ficusvet lockorder fixture.  The
// notify path acquires core.Host.mu before physical.Layer.Mu (the real
// stack's order); Inverted closes the loop in the other direction, which
// must be reported as a cycle.
package core

import (
	"sync"

	physical "repro/internal/analysis/testdata/src/lockorder/physical"
)

type Host struct {
	mu    sync.Mutex
	layer *physical.Layer
	seen  int
}

// OnNotify records the forward edge core.Host.mu -> physical.Layer.Mu
// through a transitive call (NoteNested -> Note -> Mu.Lock).
func (h *Host) OnNotify() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen++
	h.layer.NoteNested()
}

// Inverted acquires Host.mu while holding Layer.Mu: the reverse edge that
// turns the order graph into a cycle.
func (h *Host) Inverted() {
	h.layer.Mu.Lock()
	defer h.layer.Mu.Unlock()
	h.mu.Lock() // want: lock-order cycle
	h.seen++
	h.mu.Unlock()
}
