// Package physical is a ficusvet test fixture for the heldlocks analyzer
// (the "physical" path segment puts it in scope).  Unlike the lockedcall
// fixture, these cases are position-sensitive: the lock is released before
// the call, taken on only one branch, or re-taken on a path where it is
// already held.
package physical

import (
	"sort"
	"sync"
)

type vnode struct {
	mu    sync.Mutex
	names []string
}

func (v *vnode) lookupLocked(name string) bool {
	for _, n := range v.names {
		if n == name {
			return true
		}
	}
	return false
}

type table struct {
	mu sync.RWMutex
	n  int
}

func (t *table) sizeLocked() int { return t.n }

// --- known-good ----------------------------------------------------------

func (v *vnode) goodDefer(name string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lookupLocked(name)
}

func (v *vnode) goodBothBranches(name string, fast bool) bool {
	if fast {
		v.mu.Lock()
	} else {
		v.mu.Lock()
	}
	ok := v.lookupLocked(name)
	v.mu.Unlock()
	return ok
}

func (v *vnode) goodLockAfterEarlyReturn(name string) bool {
	if name == "" {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lookupLocked(name)
}

func (v *vnode) goodComparator() {
	v.mu.Lock()
	defer v.mu.Unlock()
	sort.Slice(v.names, func(i, j int) bool {
		// The comparator runs on this goroutine with the lock still held.
		return v.lookupLocked(v.names[i]) || v.names[i] < v.names[j]
	})
}

func (t *table) goodReadCall() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sizeLocked()
}

func newVnode() *vnode {
	// Locally constructed, unpublished: no other goroutine can hold a
	// reference yet, so calling the *Locked method bare is fine.
	v := &vnode{}
	_ = v.lookupLocked("seed")
	return v
}

func (v *vnode) rehashLocked() {
	go func() {
		// The goroutine runs after the caller releases the lock; taking it
		// here is not a self-deadlock.
		v.mu.Lock()
		defer v.mu.Unlock()
		v.names = append(v.names[:0], v.names...)
	}()
}

// --- known-bad -----------------------------------------------------------

func (v *vnode) badAfterUnlock(name string) bool {
	v.mu.Lock()
	populated := v.names != nil
	v.mu.Unlock()
	if populated {
		return v.lookupLocked(name) // want: lock already released here
	}
	return false
}

func (v *vnode) badOneBranch(name string, fast bool) bool {
	if fast {
		v.mu.Lock()
		defer v.mu.Unlock()
	}
	return v.lookupLocked(name) // want: held only on the fast path
}

func (v *vnode) badSelfDeadlock() {
	v.mu.Lock()
	v.mu.Lock() // want: already held on this path
	v.mu.Unlock()
	v.mu.Unlock()
}

func (t *table) badUpgrade() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.mu.Lock() // want: read-to-write upgrade deadlocks
	t.n++
	t.mu.Unlock()
}

func (v *vnode) badRelockLocked() {
	v.mu.Lock() // want: *Locked runs with the receiver's mutex held
	defer v.mu.Unlock()
	v.names = nil
}

func (v *vnode) badGoroutine(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	go func() {
		_ = v.lookupLocked(name) // want: goroutine runs without the lock
	}()
}
