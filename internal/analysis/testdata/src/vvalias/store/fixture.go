// Package store is a ficusvet test fixture for the vvalias analyzer: a
// vv.Vector parameter stored without Clone aliases the caller's map.
package store

import (
	"repro/internal/ids"
	"repro/internal/vv"
)

type replicaState struct {
	vec  vv.Vector
	name string
}

var globalVV vv.Vector

// --- known-bad -----------------------------------------------------------

func badFieldStore(s *replicaState, v vv.Vector) {
	s.vec = v // want: field store without Clone
}

func badGlobalStore(v vv.Vector) {
	globalVV = v // want: package variable store without Clone
}

func badCompositeLit(v vv.Vector) *replicaState {
	return &replicaState{vec: v, name: "r"} // want: composite literal field
}

func badMapStore(cache map[ids.FileID]vv.Vector, fid ids.FileID, v vv.Vector) {
	cache[fid] = v // want: container element store
}

func badTaintedLocal(s *replicaState, v vv.Vector) {
	alias := v
	s.vec = alias // want: taint flows through the local
}

func badStructParamField(s *replicaState, other replicaState) {
	s.vec = other.vec // want: field of a parameter is still the caller's map
}

// --- known-good ----------------------------------------------------------

func goodCloneStore(s *replicaState, v vv.Vector) {
	s.vec = v.Clone()
}

func goodMergeStore(s *replicaState, v vv.Vector) {
	s.vec = vv.Merge(s.vec, v) // Merge allocates a fresh vector
}

func goodLocalUse(v vv.Vector) uint64 {
	local := v // reading through an alias is fine; only stores escape
	return local.Total()
}

func goodCompositeClone(v vv.Vector) *replicaState {
	return &replicaState{vec: v.Clone()}
}

func goodFreshVector(s *replicaState, r ids.ReplicaID) {
	s.vec = vv.New().Bump(r) // fresh map, no caller aliasing
}
