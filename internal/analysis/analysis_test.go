package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runFixture loads fixture packages under testdata/src/<name>/... with one
// analyzer and renders the diagnostics with positions relative to the
// fixture root, matching the golden file testdata/<name>.golden.  Run the
// tests with FICUSVET_UPDATE=1 to regenerate goldens.
func runFixture(t *testing.T, analyzer *Analyzer, name string, pkgDirs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, d := range pkgDirs {
		dirs = append(dirs, filepath.Join(root, d))
	}
	pkgs, err := ld.Load(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(pkgDirs) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(pkgDirs))
	}

	var b strings.Builder
	for _, d := range Run(pkgs, []*Analyzer{analyzer}) {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		b.WriteString(filepath.ToSlash(rel))
		b.WriteString(d.String()[len(d.Pos.Filename):]) // :line:col: analyzer: msg
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", name+".golden")
	if os.Getenv("FICUSVET_UPDATE") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with FICUSVET_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want (%s) ---\n%s", got, golden, want)
	}
}

func TestDeterminismFixture(t *testing.T) {
	// clockok holds the same calls outside the scoped segments: the
	// analyzer must stay silent there.
	runFixture(t, Determinism, "determinism", "sim", "clockok")
}

func TestVVAliasFixture(t *testing.T) {
	runFixture(t, VVAlias, "vvalias", "store")
}

func TestErrClassFixture(t *testing.T) {
	runFixture(t, ErrClass, "errclass", "recon")
}

func TestLockedCallFixture(t *testing.T) {
	runFixture(t, LockedCall, "lockedcall", "physical")
}

func TestHeldLocksFixture(t *testing.T) {
	runFixture(t, HeldLocks, "heldlocks", "physical")
}

func TestLockOrderFixture(t *testing.T) {
	// Two packages: the cycle spans core and physical, and the report
	// depends on the interprocedural fixpoint seeing NoteNested's
	// transitive acquisition.
	runFixture(t, LockOrder, "lockorder", "core", "physical")
}

func TestWireSymFixture(t *testing.T) {
	runFixture(t, WireSym, "wiresym", "repl")
}

func TestDurabErrFixture(t *testing.T) {
	runFixture(t, DurabErr, "duraberr", "disk")
}

// TestRepoIsClean is the acceptance gate in test form: the analyzers must
// report nothing on the repository itself.  A failure here means a new
// violation slipped in — fix it (or, for a justified idiom, add a
// //ficusvet:ignore comment with a reason).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost most of the module", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	// The worker pool must not perturb output: two runs over the same
	// packages render identically, diagnostic for diagnostic.
	again := Run(pkgs, All())
	if len(again) != len(diags) {
		t.Fatalf("second run returned %d diagnostics, first %d", len(again), len(diags))
	}
	for i := range diags {
		if diags[i].String() != again[i].String() {
			t.Errorf("run order not deterministic at %d: %s vs %s", i, diags[i], again[i])
		}
	}
}

// TestSuppressionScope pins the directive semantics: a directive covers
// its own line and the next, and names select analyzers.
func TestSuppressionScope(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load(filepath.Join("testdata", "src", "errclass", "recon"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []*Analyzer{ErrClass})
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "fixture.go") && strings.Contains(d.Message, "errors.Is") {
			// goodSuppressed's comparison must not be among the findings;
			// its line carries //ficusvet:ignore errclass.
			src, err := os.ReadFile(d.Pos.Filename)
			if err != nil {
				t.Fatal(err)
			}
			line := strings.Split(string(src), "\n")[d.Pos.Line-1]
			if strings.Contains(line, "ficusvet:ignore") {
				t.Errorf("suppressed line still reported: %s", d)
			}
		}
	}
}
