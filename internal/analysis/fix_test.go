package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAutofixRoundTrip is the -fix acceptance gate: running the full
// analyzer set over the autofix fixture, applying every suggested fix,
// must (a) reproduce the golden fixed file byte for byte and (b) yield a
// package the analyzers find nothing further in.
func TestAutofixRoundTrip(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "autofix"))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load(filepath.Join(root, "core"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All())
	if len(diags) == 0 {
		t.Fatal("autofix fixture produced no findings")
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Errorf("autofix fixture finding carries no fix: %s", d)
		}
	}

	fixed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixes touched %d files, want 1", len(fixed))
	}
	got := fixed[0].New

	golden := filepath.Join("testdata", "autofix.golden")
	if os.Getenv("FICUSVET_UPDATE") == "1" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with FICUSVET_UPDATE=1 to create): %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("fixed output mismatch\n--- got ---\n%s--- want (%s) ---\n%s", got, golden, want)
		}
	}

	// Round-trip: rebuild the fixture as a scratch module with the fixed
	// file in place and re-run every analyzer; the tree must be clean.
	tmp := t.TempDir()
	modRoot, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module repro\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, dep := range []string{"internal/vv", "internal/ids", "internal/invariant"} {
		if err := copyGoFiles(filepath.Join(modRoot.ModRoot(), dep), filepath.Join(tmp, dep)); err != nil {
			t.Fatal(err)
		}
	}
	dst := filepath.Join(tmp, "internal", "core")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "fixture.go"), got, 0o644); err != nil {
		t.Fatal(err)
	}
	ld2, err := NewLoader(tmp)
	if err != nil {
		t.Fatal(err)
	}
	pkgs2, err := ld2.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs2, All()) {
		t.Errorf("fixed tree still has a finding: %s", d)
	}
}

// copyGoFiles copies the non-test Go files of one directory.
func copyGoFiles(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, fs.FileMode(0o644)); err != nil {
			return err
		}
	}
	return nil
}

func TestApplyEditsRejectsOverlap(t *testing.T) {
	src := []byte("hello world")
	_, err := ApplyEdits(src, []TextEdit{
		{Start: 0, End: 5, NewText: "HELLO"},
		{Start: 3, End: 8, NewText: "X"},
	})
	if err == nil {
		t.Fatal("overlapping edits accepted")
	}
}

func TestApplyEditsOrderIndependent(t *testing.T) {
	src := []byte("a b c")
	want := "A b C"
	for _, edits := range [][]TextEdit{
		{{Start: 0, End: 1, NewText: "A"}, {Start: 4, End: 5, NewText: "C"}},
		{{Start: 4, End: 5, NewText: "C"}, {Start: 0, End: 1, NewText: "A"}},
	} {
		got, err := ApplyEdits(src, edits)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestGatherEditsDeduplicates(t *testing.T) {
	edit := TextEdit{File: "f.go", Start: 10, End: 11, NewText: "w"}
	diags := []Diagnostic{
		{Analyzer: "errclass", Fixes: []SuggestedFix{{Edits: []TextEdit{edit}}}},
		{Analyzer: "duraberr", Fixes: []SuggestedFix{{Edits: []TextEdit{edit}}}},
	}
	byFile := GatherEdits(diags)
	if n := len(byFile["f.go"]); n != 1 {
		t.Fatalf("got %d edits after dedup, want 1", n)
	}
}

func TestUnifiedDiffShape(t *testing.T) {
	old := []byte("one\ntwo\nthree\nfour\n")
	new := []byte("one\ntwo!\nthree\nfour\n")
	d := UnifiedDiff("f.go", old, new)
	for _, want := range []string{"--- f.go\n", "+++ f.go (fixed)\n", "@@ -1,4 +1,4 @@", "-two\n", "+two!\n"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
}
