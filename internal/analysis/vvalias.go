package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// VVAlias flags a vv.Vector that arrives through a function's parameters
// and is stored — into a struct field, a package-level variable, a map or
// slice element, or a composite literal — without .Clone().  vv.Vector is
// a map type: the store aliases the caller's map, and a later Bump through
// either name mutates both, silently corrupting the dominance relation
// that conflict detection (paper §2.6, §3.1) is built on.
var VVAlias = &Analyzer{
	Name: "vvalias",
	Doc: "flag vv.Vector parameters stored into fields, globals, containers, or " +
		"composite literals without Clone (map aliasing corrupts dominance comparisons)",
	Run: runVVAlias,
}

// vvPackageSuffix identifies the version-vector package by import-path
// suffix, so the check also applies to fixture modules.
const vvPackageSuffix = "internal/vv"

// isVVType reports whether t is the named type vv.Vector.
func isVVType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == "Vector" &&
		(obj.Pkg().Path() == vvPackageSuffix || strings.HasSuffix(obj.Pkg().Path(), "/"+vvPackageSuffix))
}

func runVVAlias(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncAliases(pass, fn)
		}
	}
}

// checkFuncAliases runs a simple forward taint pass over one function:
// parameters (and locals assigned from tainted vv.Vector expressions) are
// tainted; storing a tainted vv.Vector into anything longer-lived than a
// local variable is flagged.
func checkFuncAliases(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	tainted := make(map[types.Object]bool)
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
	addParams(fn.Recv)
	addParams(fn.Type.Params)

	// taintedVV reports whether e is a vv.Vector reached from a tainted
	// object without an intervening call (Clone, Merge, ... launder).
	taintedVV := func(e ast.Expr) bool {
		if t := info.TypeOf(e); t == nil || !isVVType(t) {
			return false
		}
		obj := rootObject(info, e)
		return obj != nil && tainted[obj]
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if len(x.Lhs) != len(x.Rhs) {
					break // multi-value call form; results are fresh
				}
				lhs := x.Lhs[i]
				if !taintedVV(rhs) {
					// Propagate taint through plain local rebinding.
					if id, ok := lhs.(*ast.Ident); ok {
						if t := info.TypeOf(rhs); t != nil && isVVType(t) {
							if obj := rootObject(info, rhs); obj != nil && tainted[obj] {
								if def := info.Defs[id]; def != nil {
									tainted[def] = true
								}
							}
						}
					}
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					obj := info.Uses[l]
					if obj == nil {
						// := definition: the local inherits the taint.
						if def := info.Defs[l]; def != nil {
							tainted[def] = true
						}
						continue
					}
					if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Types.Scope() {
						pass.ReportFixf(rhs.Pos(), cloneFix(pass, rhs), "vv.Vector parameter stored into package variable %s without Clone; aliased map mutation corrupts dominance comparisons", l.Name)
					} else {
						tainted[obj] = true // local rebinding keeps the taint
					}
				case *ast.SelectorExpr:
					if isFieldSelector(info, l) {
						pass.ReportFixf(rhs.Pos(), cloneFix(pass, rhs), "vv.Vector parameter stored into field %s without Clone; aliased map mutation corrupts dominance comparisons", l.Sel.Name)
					}
				case *ast.IndexExpr:
					pass.ReportFixf(rhs.Pos(), cloneFix(pass, rhs), "vv.Vector parameter stored into a container element without Clone; aliased map mutation corrupts dominance comparisons")
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
				// Map/slice literals holding an aliased vector escape too.
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
						return true
					}
				}
			}
			for _, elt := range x.Elts {
				val := elt
				field := ""
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						field = id.Name
					}
				}
				if taintedVV(val) {
					if field != "" {
						pass.ReportFixf(val.Pos(), cloneFix(pass, val), "vv.Vector parameter stored into composite literal field %s without Clone; aliased map mutation corrupts dominance comparisons", field)
					} else {
						pass.ReportFixf(val.Pos(), cloneFix(pass, val), "vv.Vector parameter stored into composite literal without Clone; aliased map mutation corrupts dominance comparisons")
					}
				}
			}
		}
		return true
	})
}

// isFieldSelector reports whether sel names a struct field.
func isFieldSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	if s, ok := info.Selections[sel]; ok {
		_, isVar := s.Obj().(*types.Var)
		return isVar && s.Kind() == types.FieldVal
	}
	// Qualified identifier pkg.Var: a package-level variable in another
	// package is just as long-lived.
	if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && !obj.IsField() {
		return true
	}
	return false
}

// cloneFix proposes appending .Clone() to the stored expression.
func cloneFix(pass *Pass, e ast.Expr) *SuggestedFix {
	return &SuggestedFix{
		Message: "clone the vector before storing it",
		Edits:   []TextEdit{pass.Edit(e.End(), e.End(), ".Clone()")},
	}
}
