package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph and rejects
// cycles.  Nodes are lock classes — one per mutex field per type (e.g.
// core.Host.mu) or per package-level mutex variable (e.g. repl.tracemu);
// an edge A→B means some code path acquires B while holding A.  With the
// propagation workers, the scrub daemon, and the repair daemon all
// interleaving over the same hosts, any cycle in this graph is a latent
// deadlock that only needs the right two goroutines to line up.
//
// The analysis is interprocedural over statically resolvable calls: each
// function gets a summary of its direct acquisitions and call sites (each
// with the lock classes held at that point, from the lockflow engine),
// then a fixpoint propagates transitive acquisitions through the static
// call graph.  Interface-method calls cannot be resolved and are skipped;
// same-class edges (two instances of one type, e.g. a pair of peer
// layers) are out of scope for a class-level graph and ignored.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "cross-package lock-acquisition graph (edge = acquired B while holding A) " +
		"must be acyclic; a cycle is a latent deadlock between daemons",
	InScope:   segScope("core", "physical", "recon", "repl", "disk", "simnet"),
	RunModule: runLockOrder,
}

// lockAcq is one direct acquisition site: the class acquired and the
// classes held at that moment.
type lockAcq struct {
	class string
	held  []string
	pos   token.Pos
	pkg   *Package
}

// lockCallSite is one statically resolved call with held classes.
type lockCallSite struct {
	callee *types.Func
	held   []string
	pos    token.Pos
	pkg    *Package
}

type lockSummary struct {
	acquires []lockAcq
	calls    []lockCallSite
}

func runLockOrder(pass *ModulePass) {
	summaries := make(map[*types.Func]*lockSummary)
	var order []*types.Func // deterministic iteration order

	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				sum := summarizeLocks(pkg, fn)
				summaries[obj] = sum
				order = append(order, obj)
			}
		}
	}

	// Fixpoint: transitive acquisition classes per function.
	trans := make(map[*types.Func]map[string]bool)
	for _, fn := range order {
		set := make(map[string]bool)
		for _, a := range summaries[fn].acquires {
			set[a.class] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			set := trans[fn]
			for _, cs := range summaries[fn].calls {
				for c := range trans[cs.callee] {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges: held → acquired, with a representative position each.
	type edge struct{ from, to string }
	edges := make(map[edge]lockAcq)
	addEdge := func(from, to string, at lockAcq) {
		if from == to {
			return // distinct instances of one class; not a class-level order
		}
		e := edge{from, to}
		if prev, ok := edges[e]; !ok || at.pkg.Fset.Position(at.pos).String() < prev.pkg.Fset.Position(prev.pos).String() {
			edges[e] = at
		}
	}
	for _, fn := range order {
		for _, a := range summaries[fn].acquires {
			for _, h := range a.held {
				addEdge(h, a.class, a)
			}
		}
		for _, cs := range summaries[fn].calls {
			for c := range trans[cs.callee] {
				for _, h := range cs.held {
					addEdge(h, c, lockAcq{class: c, pos: cs.pos, pkg: cs.pkg})
				}
			}
		}
	}

	// Cycle detection over the class graph.
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	var nodes []string
	for e := range edges {
		nodes = append(nodes, e.from, e.to)
	}
	sort.Strings(nodes)
	nodes = dedupeStrings(nodes)

	reported := make(map[string]bool)
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var stack []string
	var visit func(n string)
	visit = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch state[m] {
			case 0:
				visit(m)
			case 1:
				// Found a cycle: stack from m's position to n, then back.
				i := 0
				for j, s := range stack {
					if s == m {
						i = j
						break
					}
				}
				cycle := append(append([]string{}, stack[i:]...), m)
				key := strings.Join(cycle, "→")
				if !reported[key] {
					reported[key] = true
					at := edges[edge{n, m}]
					pass.Reportf(at.pkg, at.pos, "lock-order cycle: %s; some path acquires %s while holding %s, closing the loop",
						strings.Join(cycle, " → "), m, n)
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range nodes {
		if state[n] == 0 {
			visit(n)
		}
	}
}

// summarizeLocks runs the lockflow engine over one function, recording
// direct acquisitions and resolvable call sites with held classes.
func summarizeLocks(pkg *Package, fn *ast.FuncDecl) *lockSummary {
	sum := &lockSummary{}
	flow := &lockFlow{
		info: pkg.Info,
		onLock: func(call *ast.CallExpr, key lockKey, read bool, held heldSet) {
			class := lockClass(pkg, call)
			if class == "" {
				return
			}
			sum.acquires = append(sum.acquires, lockAcq{
				class: class,
				held:  heldClasses(pkg, held),
				pos:   call.Pos(),
				pkg:   pkg,
			})
		},
		onCall: func(call *ast.CallExpr, held heldSet) {
			callee := staticCallee(pkg.Info, call)
			if callee == nil {
				return
			}
			sum.calls = append(sum.calls, lockCallSite{
				callee: callee,
				held:   heldClasses(pkg, held),
				pos:    call.Pos(),
				pkg:    pkg,
			})
		},
	}
	flow.walkFunc(fn.Body, heldSet{})
	return sum
}

// lockClass names the class of the mutex being locked by call: the
// owning type of the mutex field ("pkg.Type.field") or the package-level
// variable ("pkg.var").  Locally owned mutexes have no class.
func lockClass(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return mutexClass(pkg, sel.X)
}

// mutexClass classifies a mutex expression.
func mutexClass(pkg *Package, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return "" // local or unresolvable
	case *ast.SelectorExpr:
		// x.Sel is the mutex field; its class is the named type of x.X.
		t := pkg.Info.TypeOf(x.X)
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name
		}
		return ""
	case *ast.ParenExpr:
		return mutexClass(pkg, x.X)
	case *ast.StarExpr:
		return mutexClass(pkg, x.X)
	}
	return ""
}

// heldClasses maps a held set to its sorted class names.  The synthetic
// "assumed" hold of *Locked receivers has no class here — lockorder sees
// those holds at the caller's real Lock() site instead.
func heldClasses(pkg *Package, held heldSet) []string {
	var out []string
	for key := range held {
		if key.path == assumedPath {
			continue
		}
		// Rebuild the class from the key path's field name plus root type.
		if c := classOfKey(pkg, key); c != "" {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return dedupeStrings(out)
}

// classOfKey derives the lock class from a held-set key: the final path
// segment is the mutex field; walk the root's type through the preceding
// segments to find the owning type.
func classOfKey(pkg *Package, key lockKey) string {
	segs := strings.Split(key.path, ".")
	if len(segs) == 1 {
		// Bare identifier: package-level mutex var, or a local (no class).
		if v, ok := key.root.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	}
	t := key.root.Type()
	for _, seg := range segs[1 : len(segs)-1] {
		t = fieldType(t, seg)
		if t == nil {
			return ""
		}
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + segs[len(segs)-1]
	}
	return ""
}

// fieldType resolves the type of the named field on t.
func fieldType(t types.Type, name string) types.Type {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i).Type()
		}
	}
	return nil
}

// staticCallee resolves the called function when it is a plain function
// or a concrete method; interface methods and function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if types.IsInterface(t) {
			return nil
		}
	}
	return fn
}

func dedupeStrings(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
