package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the module
// under analysis.
type Package struct {
	// Path is the import path (module path + directory suffix).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info

	// suppress maps file base name -> line -> analyzer names suppressed on
	// that line by a //ficusvet: comment ("" suppresses every analyzer).
	suppress map[string]map[int][]string
}

// Loader parses and type-checks packages of a single module without
// go/packages: module-internal imports are resolved against the module
// directory tree, everything else (the standard library) through the
// go/importer source importer.  The loader memoizes packages, so a package
// reached both by pattern and by import is checked once.
type Loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
}

// NewLoader builds a loader for the module containing dir, located by
// walking up to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// ModRoot returns the module root directory.
func (ld *Loader) ModRoot() string { return ld.modRoot }

// Load resolves patterns to packages.  Supported patterns: "./..." (every
// package under the module root, skipping testdata and hidden directories),
// a directory path (absolute or relative to the process working directory),
// or a module-internal import path.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			expanded, err := ld.expandAll()
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case pat == ld.modPath || strings.HasPrefix(pat, ld.modPath+"/"):
			add(filepath.Join(ld.modRoot, strings.TrimPrefix(strings.TrimPrefix(pat, ld.modPath), "/")))
		default:
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			add(abs)
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil { // nil: directory holds no non-test Go files
			out = append(out, pkg)
		}
	}
	return out, nil
}

// expandAll lists every directory under the module root holding Go files.
func (ld *Loader) expandAll() ([]string, error) {
	set := make(map[string]bool)
	err := filepath.WalkDir(ld.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != ld.modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			set[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// pathOf maps an absolute package directory to its import path.
func (ld *Loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(ld.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, ld.modRoot)
	}
	if rel == "." {
		return ld.modPath, nil
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized).  Test files
// are excluded: the analyzers guard the shipped replication stack, and
// skipping _test.go keeps external test packages out of the type-checker.
func (ld *Loader) loadDir(dir string) (*Package, error) {
	path, err := ld.pathOf(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Match the go tool's file selection: evaluate //go:build
		// constraints and GOOS/GOARCH name suffixes, and skip _ and .
		// prefixed files.  Without this, a constrained file either
		// breaks type-checking (duplicate decls across OS variants) or
		// is analyzed as if it always builds.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			if err != nil {
				return nil, fmt.Errorf("analysis: reading build constraints of %s: %w", name, err)
			}
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.pkgs[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		return ld.importPath(ipath, dir)
	})}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:     path,
		Dir:      dir,
		Fset:     ld.fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		suppress: collectSuppressions(ld.fset, files),
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// importPath resolves one import: module-internal paths through the loader,
// everything else through the standard-library source importer.
func (ld *Loader) importPath(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		pkg, err := ld.loadDir(filepath.Join(ld.modRoot, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
