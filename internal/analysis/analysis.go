// Package analysis is ficusvet: a repo-specific static-analysis suite for
// the replication stack, built on go/ast and go/types only (no go/packages,
// no external modules).  It enforces invariants the compiler cannot see but
// the paper's correctness story depends on:
//
//   - determinism: the simulation and replication layers must not consult
//     wall clocks or global randomness, and map iteration must not reach
//     serialized or otherwise order-sensitive output unsorted.  PR 1's
//     chaos tests replay faults from a seed; one time.Now or unsorted
//     range-over-map makes a failing run unreproducible.
//
//   - vvalias: vv.Vector is a map; storing a caller's vector without
//     Clone aliases it, and a later Bump through either name silently
//     corrupts Parker et al.'s dominance comparison.
//
//   - errclass: internal/retry classifies errors as transient or permanent
//     with errors.Is/errors.As; wrapping without %w or comparing errors
//     with == severs the chain and turns transient faults permanent.
//
// Diagnostics can be suppressed with a trailing or immediately preceding
// comment: //ficusvet:ignore silences every analyzer on that line,
// //ficusvet:ignore name1,name2 silences specific analyzers, and
// //ficusvet:sorted is shorthand for suppressing determinism's map-order
// check where iteration order provably does not reach output.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic as path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check.  InScope (nil means every package) gates which
// packages Run sees.
type Analyzer struct {
	Name    string
	Doc     string
	InScope func(*Package) bool
	Run     func(*Pass)
}

// Pass couples one analyzer with one package and collects reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a ficusvet comment suppresses
// this analyzer on that line or the line above it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressedAt(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every ficusvet analyzer.
func All() []*Analyzer {
	return []*Analyzer{Determinism, VVAlias, ErrClass, LockedCall}
}

// ByName resolves a comma-separated analyzer list.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to the packages and returns the findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.InScope != nil && !a.InScope(pkg) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags
}

// segScope builds an InScope gate matching packages whose import path
// contains any of the named path segments.
func segScope(segments ...string) func(*Package) bool {
	set := make(map[string]bool, len(segments))
	for _, s := range segments {
		set[s] = true
	}
	return func(pkg *Package) bool {
		for _, seg := range strings.Split(pkg.Path, "/") {
			if set[seg] {
				return true
			}
		}
		return false
	}
}

// Suppression comments.
const (
	directivePrefix = "//ficusvet:"
	directiveIgnore = "ignore"
	directiveSorted = "sorted"
)

// collectSuppressions indexes ficusvet comments: file base name -> line ->
// suppressed analyzer names ("" = all).  A directive covers its own line
// and the following line, so both trailing comments and comment-on-the-
// line-above styles work.
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				verb, arg, _ := strings.Cut(rest, " ")
				var names []string
				switch verb {
				case directiveIgnore:
					if arg = strings.TrimSpace(arg); arg == "" {
						names = []string{""}
					} else {
						for _, n := range strings.Split(arg, ",") {
							names = append(names, strings.TrimSpace(n))
						}
					}
				case directiveSorted:
					names = []string{"determinism"}
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return out
}

func (p *Package) suppressedAt(analyzer string, pos token.Position) bool {
	byLine := p.suppress[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, name := range byLine[pos.Line] {
		if name == "" || name == analyzer {
			return true
		}
	}
	return false
}
