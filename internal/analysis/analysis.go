// Package analysis is ficusvet: a repo-specific static-analysis suite for
// the replication stack, built on go/ast and go/types only (no go/packages,
// no external modules).  It enforces invariants the compiler cannot see but
// the paper's correctness story depends on:
//
//   - determinism: the simulation and replication layers must not consult
//     wall clocks or global randomness, and map iteration must not reach
//     serialized or otherwise order-sensitive output unsorted.  PR 1's
//     chaos tests replay faults from a seed; one time.Now or unsorted
//     range-over-map makes a failing run unreproducible.
//
//   - vvalias: vv.Vector is a map; storing a caller's vector without
//     Clone aliases it, and a later Bump through either name silently
//     corrupts Parker et al.'s dominance comparison.
//
//   - errclass: internal/retry classifies errors as transient or permanent
//     with errors.Is/errors.As; wrapping without %w or comparing errors
//     with == severs the chain and turns transient faults permanent.
//
//   - lockedcall: the physical layer's *Locked suffix convention (a
//     position-insensitive check kept as the cheap first line of defense).
//
//   - heldlocks: the flow-sensitive generalization of lockedcall across
//     the whole replication stack — which mutexes are held at each call
//     site, *Locked callees reached only with the receiver's lock held,
//     and no re-Lock of a mutex already held (self-deadlock).
//
//   - lockorder: the cross-package lock-acquisition graph (an edge means
//     "acquired B while holding A") must stay acyclic, or the propagation
//     workers, scrub daemon, and repair daemon can deadlock against each
//     other.
//
//   - wiresym: every encode function in the repl and notify codecs must
//     write exactly the field sequence (same order, same wire widths) its
//     decode counterpart reads, and every opcode constant must be
//     dispatched somewhere.
//
//   - duraberr: on durable-write paths (device writes, sidecar/journal/
//     shadow commits, renames) an error return must not be silently
//     discarded, overwritten unchecked, or wrapped without %w.
//
// Analyzers may attach suggested fixes (concrete text edits) to their
// diagnostics; "ficusvet -fix" applies them mechanically (see fix.go).
//
// Diagnostics can be suppressed with a trailing or immediately preceding
// comment: //ficusvet:ignore silences every analyzer on that line,
// //ficusvet:ignore name1,name2 silences specific analyzers, and
// //ficusvet:sorted is shorthand for suppressing determinism's map-order
// check where iteration order provably does not reach output.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// TextEdit is one replacement of a source range, resolved to byte offsets
// so the fix engine needs no file set.  Start == End inserts.
type TextEdit struct {
	File       string // absolute path of the file
	Start, End int    // byte offsets within the file
	NewText    string
}

// SuggestedFix is a mechanical repair for one diagnostic: applying every
// edit resolves the finding.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []SuggestedFix `json:",omitempty"`
}

// String renders the diagnostic as path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check.  InScope (nil means every package) gates which
// packages the analyzer sees.  Exactly one of Run (per-package) and
// RunModule (whole-module, for cross-package analyses like the
// lock-acquisition graph) is set.
type Analyzer struct {
	Name      string
	Doc       string
	InScope   func(*Package) bool
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass couples one analyzer with one package and collects reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a ficusvet comment suppresses
// this analyzer on that line or the line above it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFixf is Reportf with an attached suggested fix.
func (p *Pass) ReportFixf(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	var fixes []SuggestedFix
	if fix != nil && len(fix.Edits) > 0 {
		fixes = []SuggestedFix{*fix}
	}
	p.report(pos, fixes, format, args...)
}

func (p *Pass) report(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressedAt(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// Edit builds a TextEdit replacing the source range [pos, end) with text,
// resolving token positions to file byte offsets.
func (p *Pass) Edit(pos, end token.Pos, text string) TextEdit {
	from := p.Pkg.Fset.Position(pos)
	to := p.Pkg.Fset.Position(end)
	return TextEdit{File: from.Filename, Start: from.Offset, End: to.Offset, NewText: text}
}

// ModulePass couples a module-level analyzer with every in-scope package.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos within pkg, honoring suppressions.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if pkg.suppressedAt(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every ficusvet analyzer.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, VVAlias, ErrClass, LockedCall,
		HeldLocks, LockOrder, WireSym, DurabErr,
	}
}

// ByName resolves a comma-separated analyzer list.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to the packages and returns the findings
// sorted by position.  Per-package analyzers run concurrently across
// packages under a bounded worker pool; the final sort keeps diagnostic
// order deterministic regardless of scheduling.  Module-level analyzers
// run once over their whole in-scope package set.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var perPkg, modules []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modules = append(modules, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Fan out per-package work; results land in a per-package slot so no
	// lock ordering between workers can reorder diagnostics.
	results := make([][]Diagnostic, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var diags []Diagnostic
			for _, a := range perPkg {
				if a.InScope != nil && !a.InScope(pkg) {
					continue
				}
				a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
			}
			results[i] = diags
		}(i, pkg)
	}
	wg.Wait()

	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	for _, a := range modules {
		var scoped []*Package
		for _, pkg := range pkgs {
			if a.InScope == nil || a.InScope(pkg) {
				scoped = append(scoped, pkg)
			}
		}
		if len(scoped) > 0 {
			a.RunModule(&ModulePass{Analyzer: a, Pkgs: scoped, diags: &diags})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		if di.Analyzer != dj.Analyzer {
			return di.Analyzer < dj.Analyzer
		}
		return di.Message < dj.Message
	})
	return diags
}

// segScope builds an InScope gate matching packages whose import path
// contains any of the named path segments.
func segScope(segments ...string) func(*Package) bool {
	set := make(map[string]bool, len(segments))
	for _, s := range segments {
		set[s] = true
	}
	return func(pkg *Package) bool {
		for _, seg := range strings.Split(pkg.Path, "/") {
			if set[seg] {
				return true
			}
		}
		return false
	}
}

// Suppression comments.
const (
	directivePrefix = "//ficusvet:"
	directiveIgnore = "ignore"
	directiveSorted = "sorted"
)

// collectSuppressions indexes ficusvet comments: file base name -> line ->
// suppressed analyzer names ("" = all).  A directive covers its own line
// and the following line, so both trailing comments and comment-on-the-
// line-above styles work.
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				verb, arg, _ := strings.Cut(rest, " ")
				var names []string
				switch verb {
				case directiveIgnore:
					if arg = strings.TrimSpace(arg); arg == "" {
						names = []string{""}
					} else {
						for _, n := range strings.Split(arg, ",") {
							names = append(names, strings.TrimSpace(n))
						}
					}
				case directiveSorted:
					names = []string{"determinism"}
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return out
}

func (p *Package) suppressedAt(analyzer string, pos token.Position) bool {
	byLine := p.suppress[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, name := range byLine[pos.Line] {
		if name == "" || name == analyzer {
			return true
		}
	}
	return false
}
