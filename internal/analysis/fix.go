package analysis

// The suggested-fix engine: analyzers attach TextEdits to diagnostics;
// ApplyFixes merges the edits per file, rejects conflicts, and produces
// the repaired file contents.  The CLI layers -fix (write in place) and
// -diff (dry-run unified diff) on top.

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// GatherEdits collects every edit attached to the diagnostics, grouped by
// file and deduplicated (two analyzers may propose the identical repair).
func GatherEdits(diags []Diagnostic) map[string][]TextEdit {
	byFile := make(map[string][]TextEdit)
	seen := make(map[TextEdit]bool)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				if seen[e] {
					continue
				}
				seen[e] = true
				byFile[e.File] = append(byFile[e.File], e)
			}
		}
	}
	return byFile
}

// ApplyEdits applies the edits to src, rejecting overlapping edits that
// disagree (identical duplicates have already been removed).
func ApplyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	var out []byte
	prev := 0
	for i, e := range sorted {
		if e.Start < prev || e.Start > e.End || e.End > len(src) {
			return nil, fmt.Errorf("analysis: conflicting or out-of-range edit %d at [%d,%d)", i, e.Start, e.End)
		}
		out = append(out, src[prev:e.Start]...)
		out = append(out, e.NewText...)
		prev = e.End
	}
	out = append(out, src[prev:]...)
	return out, nil
}

// FixedFile is one file's repaired content.
type FixedFile struct {
	Path     string
	Old, New []byte
}

// ApplyFixes computes the repaired contents for every file the
// diagnostics carry edits for.  Files whose content would not change are
// omitted.  Nothing is written to disk.
func ApplyFixes(diags []Diagnostic) ([]FixedFile, error) {
	byFile := GatherEdits(diags)
	var paths []string
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []FixedFile
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		fixed, err := ApplyEdits(src, byFile[p])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if string(fixed) == string(src) {
			continue
		}
		out = append(out, FixedFile{Path: p, Old: src, New: fixed})
	}
	return out, nil
}

// UnifiedDiff renders a unified diff between old and new with 3 lines of
// context, enough for a human to review -diff output.
func UnifiedDiff(path string, old, new []byte) string {
	a := splitLines(string(old))
	b := splitLines(string(new))
	ops := diffLines(a, b)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s (fixed)\n", path, path)

	const ctx = 3
	// Group ops into hunks separated by long equal runs.
	type hunk struct{ start int }
	i := 0
	for i < len(ops) {
		if ops[i].kind == ' ' {
			i++
			continue
		}
		// Found a change; extend back and forward with context.
		start := i
		for start > 0 && ops[start-1].kind == ' ' && i-start < ctx {
			start--
		}
		end := i
		for end < len(ops) {
			if ops[end].kind != ' ' {
				end++
				continue
			}
			// Run of equals: stop if it exceeds 2*ctx before the next change.
			run := end
			for run < len(ops) && ops[run].kind == ' ' {
				run++
			}
			if run == len(ops) || run-end > 2*ctx {
				end += min(ctx, run-end)
				break
			}
			end = run
		}
		// Line numbers for the hunk header.
		aLine, bLine := 1, 1
		for j := 0; j < start; j++ {
			switch ops[j].kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		aCount, bCount := 0, 0
		for j := start; j < end; j++ {
			switch ops[j].kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aLine, aCount, bLine, bCount)
		for j := start; j < end; j++ {
			sb.WriteByte(byte(ops[j].kind))
			sb.WriteString(ops[j].text)
			sb.WriteByte('\n')
		}
		i = end
	}
	return sb.String()
}

type diffOp struct {
	kind rune // ' ', '-', '+'
	text string
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffLines computes a line diff via a simple LCS table; codec-sized
// files keep this comfortably small.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i]})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j]})
	}
	return ops
}
