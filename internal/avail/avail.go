// Package avail measures operation availability under failures — the
// quantitative form of the paper's §1/§3 claim that one-copy availability
// "provides strictly greater availability than primary copy, voting,
// weighted voting, and quorum consensus."
//
// The simulator replays identical randomized outage scenarios through every
// policy, so the comparison is paired: in each trial the same set of
// replicas is accessible, and each policy merely votes on whether a read
// and an update could proceed.  Two outage models cover the environments
// the paper describes:
//
//   - HostFailures: every replica's host is independently down with
//     probability p (component failures).
//   - Partitions: hosts are scattered uniformly across k network segments
//     and only replicas in the client's segment are accessible
//     (communications outages — the case §1 calls the normal status of a
//     large-scale network).
package avail

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/ids"
)

// Model selects the outage generator.
type Model int

// Outage models.
const (
	HostFailures Model = iota
	Partitions
)

// String names the model.
func (m Model) String() string {
	switch m {
	case HostFailures:
		return "host-failures"
	case Partitions:
		return "partitions"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Scenario parameterizes one availability measurement.
type Scenario struct {
	Replicas int
	Model    Model
	// FailProb is the independent per-host down probability (HostFailures).
	FailProb float64
	// Segments is the number of network segments (Partitions).
	Segments int
	// ClientColocated places the client on replica 1's host; otherwise the
	// client is an independent host (its own failure/segment is sampled).
	ClientColocated bool
	Trials          int
	Seed            int64
}

// Result is the measured availability of one policy under one scenario.
type Result struct {
	Policy      string
	ReadAvail   float64
	UpdateAvail float64
}

// Evaluate runs the scenario against each policy with paired trials.
func Evaluate(s Scenario, policies []baseline.Policy) []Result {
	if s.Trials <= 0 {
		s.Trials = 10000
	}
	rng := rand.New(rand.NewSource(s.Seed))
	reads := make([]int, len(policies))
	updates := make([]int, len(policies))
	acc := make([]ids.ReplicaID, 0, s.Replicas)
	for t := 0; t < s.Trials; t++ {
		acc = s.sample(rng, acc[:0])
		for i, p := range policies {
			if p.CanRead(acc, s.Replicas) {
				reads[i]++
			}
			if p.CanUpdate(acc, s.Replicas) {
				updates[i]++
			}
		}
	}
	out := make([]Result, len(policies))
	for i, p := range policies {
		out[i] = Result{
			Policy:      p.Name(),
			ReadAvail:   float64(reads[i]) / float64(s.Trials),
			UpdateAvail: float64(updates[i]) / float64(s.Trials),
		}
	}
	return out
}

// sample draws one outage and returns the replicas the client can reach.
func (s Scenario) sample(rng *rand.Rand, acc []ids.ReplicaID) []ids.ReplicaID {
	switch s.Model {
	case Partitions:
		k := s.Segments
		if k < 1 {
			k = 2
		}
		segs := make([]int, s.Replicas)
		for i := range segs {
			segs[i] = rng.Intn(k)
		}
		clientSeg := rng.Intn(k)
		if s.ClientColocated {
			clientSeg = segs[0]
		}
		for i, seg := range segs {
			if seg == clientSeg {
				acc = append(acc, ids.ReplicaID(i+1))
			}
		}
	default: // HostFailures
		clientUp := true
		if !s.ClientColocated {
			clientUp = rng.Float64() >= s.FailProb
		}
		for i := 0; i < s.Replicas; i++ {
			up := rng.Float64() >= s.FailProb
			if i == 0 && s.ClientColocated {
				// The client rides replica 1's host: if that host is up the
				// replica is reachable by definition.
				if up {
					acc = append(acc, 1)
				}
				clientUp = up
				continue
			}
			if up {
				acc = append(acc, ids.ReplicaID(i+1))
			}
		}
		if !clientUp {
			acc = acc[:0] // a down client reaches nothing
		}
	}
	return acc
}

// ClosedFormOneCopyRead returns the analytic one-copy read availability
// under independent host failures with an always-up client:
// 1 - p^n.  Used to validate the Monte-Carlo machinery.
func ClosedFormOneCopyRead(n int, p float64) float64 {
	q := 1.0
	for i := 0; i < n; i++ {
		q *= p
	}
	return 1 - q
}

// ClosedFormMajority returns the analytic majority-quorum availability
// under independent host failures with an always-up client.
func ClosedFormMajority(n int, p float64) float64 {
	need := n/2 + 1
	sum := 0.0
	for k := need; k <= n; k++ {
		sum += binom(n, k) * pow(1-p, k) * pow(p, n-k)
	}
	return sum
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}
