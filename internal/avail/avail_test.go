package avail

import (
	"math"
	"testing"

	"repro/internal/baseline"
)

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		for _, p := range []float64{0.05, 0.2, 0.5} {
			s := Scenario{Replicas: n, Model: HostFailures, FailProb: p, Trials: 60000, Seed: 7}
			res := Evaluate(s, []baseline.Policy{baseline.OneCopy{}, baseline.MajorityVoting{}})
			// Client not colocated: multiply closed forms by client-up prob.
			cUp := 1 - p
			wantOne := ClosedFormOneCopyRead(n, p) * cUp
			wantMaj := ClosedFormMajority(n, p) * cUp
			if d := math.Abs(res[0].ReadAvail - wantOne); d > 0.01 {
				t.Errorf("n=%d p=%.2f one-copy: got %.4f want %.4f", n, p, res[0].ReadAvail, wantOne)
			}
			if d := math.Abs(res[1].UpdateAvail - wantMaj); d > 0.01 {
				t.Errorf("n=%d p=%.2f majority: got %.4f want %.4f", n, p, res[1].UpdateAvail, wantMaj)
			}
		}
	}
}

func TestOneCopyDominatesInBothModels(t *testing.T) {
	for _, model := range []Model{HostFailures, Partitions} {
		for _, n := range []int{2, 3, 5, 7} {
			s := Scenario{
				Replicas: n, Model: model, FailProb: 0.2, Segments: 3,
				Trials: 20000, Seed: int64(n),
			}
			res := Evaluate(s, baseline.StandardSet(n))
			one := res[0]
			for _, r := range res[1:] {
				if r.ReadAvail > one.ReadAvail+1e-9 {
					t.Errorf("%v n=%d: %s read %.4f > one-copy %.4f", model, n, r.Policy, r.ReadAvail, one.ReadAvail)
				}
				if r.UpdateAvail > one.UpdateAvail+1e-9 {
					t.Errorf("%v n=%d: %s update %.4f > one-copy %.4f", model, n, r.Policy, r.UpdateAvail, one.UpdateAvail)
				}
			}
			// Strictly greater update availability than every quorum-based
			// baseline whenever failures actually occur.
			for _, r := range res[3:] { // majority, weighted, quorum
				if one.UpdateAvail <= r.UpdateAvail {
					t.Errorf("%v n=%d: one-copy %.4f not strictly above %s %.4f",
						model, n, one.UpdateAvail, r.Policy, r.UpdateAvail)
				}
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	s := Scenario{Replicas: 3, Model: Partitions, Segments: 2, Trials: 5000, Seed: 99}
	a := Evaluate(s, baseline.StandardSet(3))
	b := Evaluate(s, baseline.StandardSet(3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestColocatedClientImprovesAvailability(t *testing.T) {
	base := Scenario{Replicas: 3, Model: HostFailures, FailProb: 0.3, Trials: 40000, Seed: 3}
	co := base
	co.ClientColocated = true
	resBase := Evaluate(base, []baseline.Policy{baseline.OneCopy{}})
	resCo := Evaluate(co, []baseline.Policy{baseline.OneCopy{}})
	// Colocated: client up implies replica 1 reachable, so availability is
	// exactly the client-host up probability (0.7) — higher than the
	// independent-client case times 1-p^n... compare directionally.
	if resCo[0].ReadAvail <= resBase[0].ReadAvail-0.02 {
		t.Fatalf("colocated %.4f vs independent %.4f", resCo[0].ReadAvail, resBase[0].ReadAvail)
	}
	if math.Abs(resCo[0].ReadAvail-0.7) > 0.02 {
		t.Fatalf("colocated availability %.4f, want ~0.70", resCo[0].ReadAvail)
	}
}

func TestPartitionModelBounds(t *testing.T) {
	// With one segment there is no outage at all.
	s := Scenario{Replicas: 4, Model: Partitions, Segments: 1, Trials: 2000, Seed: 1}
	res := Evaluate(s, []baseline.Policy{baseline.OneCopy{}, baseline.MajorityVoting{}})
	if res[0].ReadAvail != 1 || res[1].UpdateAvail != 1 {
		t.Fatalf("single segment should be fully available: %+v", res)
	}
	// Defaulting Segments=0 must not panic and must behave like 2.
	s2 := Scenario{Replicas: 4, Model: Partitions, Trials: 2000, Seed: 1}
	if r := Evaluate(s2, []baseline.Policy{baseline.OneCopy{}}); r[0].ReadAvail <= 0 || r[0].ReadAvail >= 1 {
		t.Fatalf("default segments: %+v", r)
	}
}

func TestTrialsDefault(t *testing.T) {
	s := Scenario{Replicas: 2, Model: HostFailures, FailProb: 0.5, Seed: 1}
	res := Evaluate(s, []baseline.Policy{baseline.OneCopy{}})
	if res[0].ReadAvail <= 0 || res[0].ReadAvail >= 1 {
		t.Fatalf("%+v", res)
	}
}

func TestModelString(t *testing.T) {
	if HostFailures.String() != "host-failures" || Partitions.String() != "partitions" {
		t.Fatal("model names")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model string")
	}
}

func TestClosedForms(t *testing.T) {
	if got := ClosedFormOneCopyRead(1, 0.25); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("1-copy n=1: %v", got)
	}
	if got := ClosedFormMajority(3, 0.0); got != 1 {
		t.Fatalf("majority no failures: %v", got)
	}
	if got := ClosedFormMajority(3, 1.0); got != 0 {
		t.Fatalf("majority all failed: %v", got)
	}
	// n=3, p=0.5: majority needs >=2 up: C(3,2)*0.125 + C(3,3)*0.125 = 0.5.
	if got := ClosedFormMajority(3, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("majority n=3 p=0.5: %v", got)
	}
}
