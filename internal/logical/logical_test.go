package logical

import (
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/nfs"
	"repro/internal/physical"
	"repro/internal/recon"
	"repro/internal/simnet"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
)

var testVol = ids.VolumeHandle{Allocator: 3, Volume: 1}

func newPhysical(t *testing.T, r ids.ReplicaID) *physical.Layer {
	t.Helper()
	fs, err := ufs.Mkfs(disk.New(16384), 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := physical.Format(ufsvn.New(fs), testVol, r)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// rig is the full paper Figure 1 stack: a logical layer over one
// co-resident physical replica plus one remote replica reached through NFS.
type rig struct {
	net      *simnet.Network
	lA, lB   *physical.Layer
	logical  *Layer
	notified []notifyRec
}

type notifyRec struct {
	dir    []ids.FileID
	file   ids.FileID
	origin ids.ReplicaID
}

func newRig(t *testing.T, policy Policy) *rig {
	t.Helper()
	r := &rig{net: simnet.New(1)}
	hostA := r.net.Host("a")
	hostB := r.net.Host("b")
	r.lA = newPhysical(t, 1)
	r.lB = newPhysical(t, 2)
	nfs.Serve(hostB, r.lB, r.lB)
	client := nfs.Dial(hostA, "b", &nfs.ClientOptions{DisableCaches: true})
	r.logical = New(testVol, []Replica{
		{ID: 1, FS: r.lA},
		{ID: 2, FS: client},
	}, Options{
		Policy: policy,
		Notify: func(dir []ids.FileID, file ids.FileID, origin ids.ReplicaID) {
			r.notified = append(r.notified, notifyRec{dir: dir, file: file, origin: origin})
		},
	})
	return r
}

func (r *rig) root(t *testing.T) vnode.Vnode {
	t.Helper()
	root, err := r.logical.Root()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// sync brings the two physical replicas together (what the reconciliation
// daemon would do).
func (r *rig) sync(t *testing.T) {
	t.Helper()
	if _, err := recon.ReconcileVolume(r.lA, r.lB); err != nil {
		t.Fatal(err)
	}
	if _, err := recon.ReconcileVolume(r.lB, r.lA); err != nil {
		t.Fatal(err)
	}
}

// TestConformanceSingleReplica runs the suite over a logical layer with one
// co-resident replica.
func TestConformanceSingleReplica(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: MaxName},
		func(t *testing.T) vnode.VFS {
			return New(testVol, []Replica{{ID: 1, FS: newPhysical(t, 1)}}, Options{})
		})
}

// TestConformanceFullStack runs the suite over the complete two-replica
// stack of Figure 1 — logical over {physical, NFS->physical} — proving the
// replication service composes transparently from the same vnode interface.
func TestConformanceFullStack(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: MaxName},
		func(t *testing.T) vnode.VFS { return newRig(t, MostRecent).logical })
}

func TestWriteGoesToOneReplicaAndNotifies(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("solo"), 0); err != nil {
		t.Fatal(err)
	}
	// The co-resident replica (first in order) has the data...
	pa, _ := r.lA.Root()
	va, err := pa.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := vnode.ReadFile(va)
	if string(data) != "solo" {
		t.Fatalf("replica A: %q", data)
	}
	// ... the remote one does not (yet).
	pb, _ := r.lB.Root()
	if _, err := pb.Lookup("f"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("replica B unexpectedly has the file: %v", err)
	}
	// Notifications were emitted for the create (dir) and the write (file).
	if len(r.notified) != 2 {
		t.Fatalf("%d notifications: %+v", len(r.notified), r.notified)
	}
	if r.notified[0].file != ids.RootFileID || r.notified[0].origin != 1 {
		t.Fatalf("create notification %+v", r.notified[0])
	}
	if r.notified[1].origin != 1 || r.notified[1].file == ids.RootFileID {
		t.Fatalf("write notification %+v", r.notified[1])
	}
}

// TestOneCopyAvailabilityUnderPartition is the paper's headline behaviour
// (§1): update succeeds "if any copy of a file is accessible".
func TestOneCopyAvailabilityUnderPartition(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	if _, err := root.Create("f", true); err != nil {
		t.Fatal(err)
	}
	r.sync(t)

	// Partition away the remote replica; updates must still succeed on the
	// local copy.
	r.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	f, err := root.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("during partition"), 0); err != nil {
		t.Fatalf("update with one replica accessible failed: %v", err)
	}
	// Reads too.
	data, err := vnode.ReadFile(f)
	if err != nil || string(data) != "during partition" {
		t.Fatalf("%q %v", data, err)
	}
}

// TestFailoverToRemoteReplica: the local replica does not store the file;
// the logical layer silently uses the remote copy.
func TestFailoverToRemoteReplica(t *testing.T) {
	r := newRig(t, FirstAvailable)
	// Create a file only on B (behind the logical layer's back).
	pb, _ := r.lB.Root()
	fb, err := pb.Create("remote-only", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(fb, []byte("via nfs")); err != nil {
		t.Fatal(err)
	}
	// Reconcile only the DIRECTORY entry into A, leaving the data remote:
	// easiest is a full reconcile then delete A's local data copy — instead
	// simulate by merging entries only.
	db, err := r.lB.DirEntries(physical.RootPath())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.lA.ApplyDirMerge(physical.RootPath(), db); err != nil {
		t.Fatal(err)
	}
	// A knows the name but stores no copy; the logical layer must fall
	// over to B.
	root := r.root(t)
	f, err := root.Lookup("remote-only")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	data, err := vnode.ReadFile(f)
	if err != nil || string(data) != "via nfs" {
		t.Fatalf("%q %v", data, err)
	}
}

// TestMostRecentSelection: after an update lands on one replica, the
// default policy reads the newest copy even when an older one is closer.
func TestMostRecentSelection(t *testing.T) {
	r := newRig(t, MostRecent)
	root := r.root(t)
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	r.sync(t)
	// Update B directly (as if another host's logical layer wrote there).
	pb, _ := r.lB.Root()
	vb, _ := pb.Lookup("f")
	if err := vnode.WriteFile(vb, []byte("v2 at B")); err != nil {
		t.Fatal(err)
	}
	// MostRecent must pick B's copy despite A being first.
	data, err := vnode.ReadFile(f)
	if err != nil || string(data) != "v2 at B" {
		t.Fatalf("read %q, %v (most-recent selection failed)", data, err)
	}
	// FirstAvailable (the ablation) would serve the stale local copy.
	lfa := New(testVol, r.logical.Replicas(), Options{Policy: FirstAvailable})
	rootFA, _ := lfa.Root()
	fFA, err := rootFA.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = vnode.ReadFile(fFA)
	if string(data) != "v1" {
		t.Fatalf("FirstAvailable read %q, want stale v1", data)
	}
}

// TestOpenCloseReachPhysicalThroughNFS is the end-to-end §2.3 story: NFS
// swallows Open, so the logical layer re-encodes it through Lookup, and the
// remote physical layer's open bookkeeping still advances.
func TestOpenCloseReachPhysicalThroughNFS(t *testing.T) {
	r := newRig(t, FirstAvailable)
	// Put the file only on B so the logical layer must use the NFS path.
	pb, _ := r.lB.Root()
	if _, err := pb.Create("f", true); err != nil {
		t.Fatal(err)
	}
	db, _ := r.lB.DirEntries(physical.RootPath())
	if _, err := r.lA.ApplyDirMerge(physical.RootPath(), db); err != nil {
		t.Fatal(err)
	}
	root := r.root(t)
	f, err := root.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Open(vnode.OpenRead); err != nil {
		t.Fatal(err)
	}
	if got := r.lB.TotalOpens(); got != 1 {
		t.Fatalf("remote physical layer saw %d opens, want 1", got)
	}
	if err := f.Close(vnode.OpenRead); err != nil {
		t.Fatal(err)
	}
	if got := r.lB.OpenFiles(); got != 0 {
		t.Fatalf("open files after close: %d", got)
	}
}

func TestNameBudgetEnforced(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	ok := strings.Repeat("n", MaxName)
	if _, err := root.Create(ok, true); err != nil {
		t.Fatalf("max-len create: %v", err)
	}
	long := ok + "x"
	if _, err := root.Create(long, true); vnode.AsErrno(err) != vnode.ENAMETOOLONG {
		t.Fatalf("over-long create: %v", err)
	}
	if _, err := root.Lookup(long); vnode.AsErrno(err) != vnode.ENAMETOOLONG {
		t.Fatalf("over-long lookup: %v", err)
	}
	// The budget exists because the encoding must fit the substrate field.
	if MaxName+physical.EncOverhead != physical.SubstrateMaxName {
		t.Fatalf("budget arithmetic: %d + %d != %d", MaxName, physical.EncOverhead, physical.SubstrateMaxName)
	}
}

func TestAllReplicasUnreachable(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	if _, err := root.Create("f", true); err != nil {
		t.Fatal(err)
	}
	r.sync(t)
	// Logical layer whose only replica is the remote one, then partition.
	remoteOnly := New(testVol, []Replica{r.logical.Replicas()[1]}, Options{})
	r.net.Partition([]simnet.Addr{"a"}, []simnet.Addr{"b"})
	ro, _ := remoteOnly.Root()
	if _, err := ro.Lookup("f"); vnode.AsErrno(err) != vnode.EUNAVAIL {
		t.Fatalf("err = %v, want EUNAVAIL", err)
	}
	if _, err := ro.Readdir(); vnode.AsErrno(err) != vnode.EUNAVAIL {
		t.Fatalf("readdir: %v, want EUNAVAIL", err)
	}
}

func TestEnoentBeatsUnavailInErrors(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	// Both replicas reachable, file exists nowhere: ENOENT, not EUNAVAIL.
	if _, err := root.Lookup("ghost"); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("err = %v, want ENOENT", err)
	}
}

func TestGraftHookIntercepted(t *testing.T) {
	inner := newPhysical(t, 9) // pretend this is the grafted volume
	innerVol := ids.VolumeHandle{Allocator: 3, Volume: 2}
	var hookTarget ids.VolumeHandle
	hook := func(target ids.VolumeHandle, gp vnode.Vnode) (vnode.Vnode, error) {
		hookTarget = target
		return inner.Root()
	}
	lp := newPhysical(t, 1)
	lay := New(testVol, []Replica{{ID: 1, FS: lp}}, Options{Graft: hook})
	// Plant a graft point in the physical layer.
	proot, _ := lp.Root()
	type grafter interface {
		MkGraft(name string, target ids.VolumeHandle) (vnode.Vnode, error)
	}
	if _, err := proot.(grafter).MkGraft("mnt", innerVol); err != nil {
		t.Fatal(err)
	}
	// Drop a file into the "grafted volume".
	ir, _ := inner.Root()
	if _, err := ir.Create("inside", true); err != nil {
		t.Fatal(err)
	}
	root, _ := lay.Root()
	mnt, err := root.Lookup("mnt")
	if err != nil {
		t.Fatal(err)
	}
	if hookTarget != innerVol {
		t.Fatalf("hook target %v", hookTarget)
	}
	// The returned vnode is the grafted volume's root.
	if _, err := mnt.Lookup("inside"); err != nil {
		t.Fatalf("lookup through graft: %v", err)
	}
	// Without a hook, the graft point is just a directory.
	lay2 := New(testVol, []Replica{{ID: 1, FS: lp}}, Options{})
	root2, _ := lay2.Root()
	mnt2, err := root2.Lookup("mnt")
	if err != nil {
		t.Fatal(err)
	}
	if ents, err := mnt2.Readdir(); err != nil || len(ents) != 0 {
		t.Fatalf("bare graft point: %v %v", ents, err)
	}
}

func TestRenameNotifiesBothDirectories(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	d1, _ := root.Mkdir("d1")
	d2, _ := root.Mkdir("d2")
	if _, err := d1.Create("f", true); err != nil {
		t.Fatal(err)
	}
	r.notified = nil
	if err := d1.Rename("f", d2, "g"); err != nil {
		t.Fatal(err)
	}
	if len(r.notified) != 2 {
		t.Fatalf("%d notifications, want 2 (both dirs): %+v", len(r.notified), r.notified)
	}
	if r.notified[0].file == r.notified[1].file {
		t.Fatal("both notifications name the same directory")
	}
}

func TestConcurrencyControlSerializesWriters(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	f, _ := root.Create("f", true)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			buf := []byte{byte(g)}
			for i := 0; i < 50; i++ {
				if _, err := f.WriteAt(buf, int64(i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	a, err := f.Getattr()
	if err != nil || a.Size != 50 {
		t.Fatalf("size %d, %v", a.Size, err)
	}
}

func TestHandleShape(t *testing.T) {
	r := newRig(t, FirstAvailable)
	root := r.root(t)
	d, _ := root.Mkdir("d")
	if !strings.HasPrefix(d.Handle(), "ficus:") || !strings.Contains(d.Handle(), "/d") {
		t.Fatalf("handle %q", d.Handle())
	}
	if r.logical.Volume() != testVol {
		t.Fatal("Volume() wrong")
	}
	if len(r.logical.Replicas()) != 2 {
		t.Fatal("Replicas() wrong")
	}
}
