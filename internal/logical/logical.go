// Package logical implements the Ficus logical layer (paper §2.5): it
// "presents its clients (normally the Unix system call family) with the
// abstraction that each file has only a single copy, although it may
// actually have many physical replicas."
//
// The layer
//
//   - performs replica selection under the one-copy availability policy:
//     by default "select the most recent copy available", falling over to
//     any accessible replica — an update succeeds "if any copy of a file is
//     accessible" (§1);
//   - performs concurrency control on logical files;
//   - sends the asynchronous update notifications that feed the physical
//     layers' new-version caches (§3.2);
//   - ships open/close through the Lookup service so they survive the NFS
//     transport (§2.3), and consequently enforces the shortened name budget
//     of MaxName bytes per component;
//   - intercepts graft points during pathname translation and hands them to
//     the autograft hook (§4.4).
//
// Each replica is reached through the vnode interface; whether that path is
// a co-resident physical layer or an NFS client to a remote one is
// invisible here — the defining property of the stackable architecture.
package logical

import (
	"sync"

	"repro/internal/ids"
	"repro/internal/physical"
	"repro/internal/vnode"
)

// MaxName is the longest name component the logical layer accepts: the
// open/close-over-lookup encoding must fit the substrate's 255-byte name
// field, shrinking the client budget "from 255 to about 200" (§2.3 fn2).
const MaxName = physical.MaxEncodedName

// Replica is one physical replica of the volume, reached through a vnode
// stack (a co-resident *physical.Layer or an nfs.Client to a remote one).
type Replica struct {
	ID ids.ReplicaID
	FS vnode.VFS
}

// Policy selects among accessible replicas.
type Policy int

// Selection policies.
const (
	// MostRecent queries every accessible replica and picks the one whose
	// copy has seen the most updates — the paper's default one-copy
	// availability policy ("select the most recent copy available").
	MostRecent Policy = iota
	// FirstAvailable uses the first replica (in configuration order) that
	// answers.  Cheaper — no per-operation polling — at the cost of
	// possibly serving older data; used by the E5 ablation.
	FirstAvailable
)

// Notifier carries an update notification: file (in directory dirPath) has
// a new version at replica origin.  The host glue multicasts it to every
// other host storing a replica (§2.5: "an asynchronous multicast datagram
// is sent to all available replicas").
type Notifier func(dirPath []ids.FileID, file ids.FileID, origin ids.ReplicaID)

// GraftHook is invoked when pathname translation encounters a graft point;
// it returns the root vnode of the (auto)grafted volume (§4.4).  The hook
// receives the graft point's directory vnode on the selected replica so it
// can read the graft table entries.
type GraftHook func(target ids.VolumeHandle, graftPoint vnode.Vnode) (vnode.Vnode, error)

// Layer is one volume's logical layer as seen by one client host.
type Layer struct {
	vol      ids.VolumeHandle
	replicas []Replica
	policy   Policy
	notify   Notifier
	graft    GraftHook
	cacheTTL uint64

	mu     sync.Mutex
	locks  map[string]*sync.Mutex // per-file concurrency control
	clock  uint64                 // op counter driving cache expiry
	rcache map[rcKey]rcEntry      // resolved-vnode cache (the layer's DNLC)
}

// rcKey addresses one (logical path, replica) resolution.
type rcKey struct {
	path string
	rep  ids.ReplicaID
}

type rcEntry struct {
	vn    vnode.Vnode
	stamp uint64
}

// Options configures a logical layer.
type Options struct {
	Policy Policy
	Notify Notifier  // nil: no notifications sent
	Graft  GraftHook // nil: graft points appear as ordinary directories
	// CacheTTLOps bounds how many layer operations a cached path
	// resolution stays fresh for (default 128; negative disables the
	// cache).  The cache is the logical layer's DNLC: it keeps the vnodes
	// the 1990 kernel would have held per open file, so repeated access
	// does not re-walk the replica stacks.  Stale entries self-heal: an
	// operation on a stale vnode fails retriably and triggers a fresh
	// resolution.
	CacheTTLOps int
}

// New builds the logical layer for volume vol over the given replicas
// (order is the FirstAvailable preference order; by convention a
// co-resident replica comes first).
func New(vol ids.VolumeHandle, replicas []Replica, opts Options) *Layer {
	ttl := uint64(128)
	if opts.CacheTTLOps > 0 {
		ttl = uint64(opts.CacheTTLOps)
	} else if opts.CacheTTLOps < 0 {
		ttl = 0
	}
	return &Layer{
		vol:      vol,
		replicas: replicas,
		policy:   opts.Policy,
		notify:   opts.Notify,
		graft:    opts.Graft,
		cacheTTL: ttl,
		locks:    make(map[string]*sync.Mutex),
		rcache:   make(map[rcKey]rcEntry),
	}
}

// tick advances the cache clock.
func (l *Layer) tick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock++
	return l.clock
}

func (l *Layer) cacheGet(path string, rep ids.ReplicaID) (vnode.Vnode, bool) {
	if l.cacheTTL == 0 {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.rcache[rcKey{path, rep}]
	if !ok || l.clock-e.stamp >= l.cacheTTL {
		delete(l.rcache, rcKey{path, rep})
		return nil, false
	}
	return e.vn, true
}

func (l *Layer) cachePut(path string, rep ids.ReplicaID, vn vnode.Vnode) {
	if l.cacheTTL == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.rcache) > 4096 { // crude bound; entries also age out by TTL
		l.rcache = make(map[rcKey]rcEntry)
	}
	l.rcache[rcKey{path, rep}] = rcEntry{vn: vn, stamp: l.clock}
}

func (l *Layer) cacheDrop(path string, rep ids.ReplicaID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.rcache, rcKey{path, rep})
}

// cacheDropSubtree evicts a path and everything beneath it on all replicas
// (used after renames and removals, whose descendants' resolutions all
// change).
func (l *Layer) cacheDropSubtree(path string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for k := range l.rcache {
		if k.path == path || (len(k.path) > len(path) && k.path[:len(path)] == path && (path == "" || k.path[len(path)] == '/')) {
			delete(l.rcache, k)
		}
	}
}

// Volume returns the volume this layer serves.
func (l *Layer) Volume() ids.VolumeHandle { return l.vol }

// Replicas returns the replica set (for inspection).
func (l *Layer) Replicas() []Replica { return append([]Replica(nil), l.replicas...) }

// Root returns the one-copy root vnode.
func (l *Layer) Root() (vnode.Vnode, error) {
	return &lvnode{l: l}, nil
}

// Sync is forwarded to every accessible replica.
func (l *Layer) Sync() error {
	for _, r := range l.replicas {
		_ = r.FS.Sync()
	}
	return nil
}

// fileLock returns the concurrency-control lock for a logical file.
func (l *Layer) fileLock(key string) *sync.Mutex {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.locks[key]
	if !ok {
		m = &sync.Mutex{}
		l.locks[key] = m
	}
	return m
}

// sendNotify emits an update notification if configured.
func (l *Layer) sendNotify(handle string, origin ids.ReplicaID) {
	if l.notify == nil {
		return
	}
	_, dirPath, fid, err := physical.ParseHandle(handle)
	if err != nil {
		return
	}
	l.notify(dirPath, fid, origin)
}

// encodeOpen renders the open/close-over-lookup string (§2.3).
func encodeOpen(open bool, f vnode.OpenFlags, issuer ids.VolumeHandle, name string) string {
	return physical.EncodeOpenLookup(open, f, issuer, name)
}

// retriable reports whether an error on one replica justifies trying the
// next one: the replica is unreachable, or does not store the file.
func retriable(err error) bool {
	switch vnode.AsErrno(err) {
	case vnode.EUNAVAIL, vnode.ENOSTOR, vnode.ESTALE:
		return true
	}
	return false
}
