package logical

import (
	"io"
	"strings"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// lvnode is the logical layer's vnode: one logical file identified by its
// rendered name path from the volume root.  Every operation selects a
// physical replica under the active policy and forwards through the vnode
// stack; retriable failures (replica unreachable, file not stored there,
// stale handle) fall over to the next replica — one-copy availability.
type lvnode struct {
	l    *Layer
	path []string
}

// candidate is one resolved replica copy of this logical file.
type candidate struct {
	rep Replica
	vn  vnode.Vnode
}

// resolveOn walks this vnode's path on one replica, consulting the layer's
// resolution cache first (the vnodes the 1990 kernel would simply have kept
// referenced).
func (v *lvnode) resolveOn(r Replica) (vnode.Vnode, error) {
	if vn, ok := v.l.cacheGet(v.key(), r.ID); ok {
		return vn, nil
	}
	root, err := r.FS.Root()
	if err != nil {
		return nil, err
	}
	cur := root
	for _, name := range v.path {
		next, err := cur.Lookup(name)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	v.l.cachePut(v.key(), r.ID, cur)
	return cur, nil
}

// candidates resolves this file on every accessible replica, ordered by the
// selection policy: MostRecent polls each copy's update count (exposed as
// Mtime, the version vector total) and puts the newest first — "the default
// policy of one-copy availability is to select the most recent copy
// available" (§2.5) — while FirstAvailable keeps configuration order.  The
// returned error summarizes why replicas were skipped; a definite answer
// (e.g. ENOENT from a reachable replica) outranks EUNAVAIL.
func (v *lvnode) candidates() ([]candidate, error) {
	var out []candidate
	bestErr := error(vnode.EUNAVAIL)
	for _, r := range v.l.replicas {
		vn, err := v.resolveOn(r)
		if err != nil {
			if vnode.AsErrno(err) != vnode.EUNAVAIL && vnode.AsErrno(bestErr) == vnode.EUNAVAIL {
				bestErr = err
			}
			continue
		}
		out = append(out, candidate{rep: r, vn: vn})
	}
	if len(out) == 0 {
		return nil, bestErr
	}
	if v.l.policy == MostRecent && len(out) > 1 {
		best := 0
		var bestM uint64
		for i, c := range out {
			a, err := c.vn.Getattr()
			if err != nil {
				continue
			}
			if i == 0 || a.Mtime > bestM {
				best, bestM = i, a.Mtime
			}
		}
		out[0], out[best] = out[best], out[0]
	}
	return out, nil
}

// retryFresh drops the (possibly stale) cached resolution of v on replica
// rep, resolves afresh, and hands the new vnode back for one retry.
func (v *lvnode) retryFresh(rep Replica) (vnode.Vnode, bool) {
	v.l.cacheDrop(v.key(), rep.ID)
	vn, err := v.resolveOn(rep)
	if err != nil {
		return nil, false
	}
	return vn, true
}

// readOp runs fn against candidates until one succeeds; retriable failures
// (unreachable, not stored here, stale) are retried once on a fresh
// resolution — the cached vnode may simply be stale — and then fall over
// to the next replica.
func (v *lvnode) readOp(fn func(c candidate) error) error {
	v.l.tick()
	cands, err := v.candidates()
	if err != nil {
		return err
	}
	var last error
	for _, c := range cands {
		err := fn(c)
		if err == nil || !retriable(err) {
			return err
		}
		last = err
		if vn, ok := v.retryFresh(c.rep); ok {
			err = fn(candidate{rep: c.rep, vn: vn})
			if err == nil || !retriable(err) {
				return err
			}
			last = err
		}
	}
	return last
}

// writeOp runs fn against candidates until one succeeds, then notifies the
// other replicas that the chosen copy advanced (§3.2: updates are applied
// to a single replica and announced).
func (v *lvnode) writeOp(fn func(c candidate) (notifyHandle string, err error)) error {
	v.l.tick()
	cands, err := v.candidates()
	if err != nil {
		return err
	}
	var last error
	for _, c := range cands {
		h, err := fn(c)
		if err == nil {
			v.l.sendNotify(h, c.rep.ID)
			return nil
		}
		if !retriable(err) {
			return err
		}
		last = err
		if vn, ok := v.retryFresh(c.rep); ok {
			h, err = fn(candidate{rep: c.rep, vn: vn})
			if err == nil {
				v.l.sendNotify(h, c.rep.ID)
				return nil
			}
			if !retriable(err) {
				return err
			}
			last = err
		}
	}
	return last
}

func (v *lvnode) key() string { return strings.Join(v.path, "/") }

// childKey is the cache key of a child of this directory.
func (v *lvnode) childKey(name string) string {
	if len(v.path) == 0 {
		return name
	}
	return v.key() + "/" + name
}

func (v *lvnode) child(name string) *lvnode {
	p := make([]string, 0, len(v.path)+1)
	p = append(p, v.path...)
	return &lvnode{l: v.l, path: append(p, name)}
}

// Handle identifies the logical file by volume and path.
func (v *lvnode) Handle() string {
	return "ficus:" + v.l.vol.String() + ":/" + strings.Join(v.path, "/")
}

func checkLogicalName(name string) error {
	if len(name) > MaxName {
		return vnode.ENAMETOOLONG
	}
	return nil
}

func (v *lvnode) Lookup(name string) (vnode.Vnode, error) {
	if err := checkLogicalName(name); err != nil {
		return nil, err
	}
	child := v.child(name)
	cands, err := child.candidates()
	if err != nil {
		return nil, err
	}
	// Graft interception (§4.4): if the child is a graft point and a hook
	// is installed, return the grafted volume's root instead.
	if v.l.graft != nil {
		a, aerr := cands[0].vn.Getattr()
		if aerr == nil && a.GraftVol != "" {
			target, perr := ids.ParseVolumeHandle(a.GraftVol)
			if perr == nil {
				return v.l.graft(target, cands[0].vn)
			}
		}
	}
	return child, nil
}

func (v *lvnode) Create(name string, excl bool) (vnode.Vnode, error) {
	if err := checkLogicalName(name); err != nil {
		return nil, err
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	err := v.writeOp(func(c candidate) (string, error) {
		if _, err := c.vn.Create(name, excl); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.child(name), nil
}

func (v *lvnode) Mkdir(name string) (vnode.Vnode, error) {
	if err := checkLogicalName(name); err != nil {
		return nil, err
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	err := v.writeOp(func(c candidate) (string, error) {
		if _, err := c.vn.Mkdir(name); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.child(name), nil
}

func (v *lvnode) Symlink(name, target string) error {
	if err := checkLogicalName(name); err != nil {
		return err
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	return v.writeOp(func(c candidate) (string, error) {
		if err := c.vn.Symlink(name, target); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
}

func (v *lvnode) Readlink() (string, error) {
	var out string
	err := v.readOp(func(c candidate) error {
		s, err := c.vn.Readlink()
		if err != nil {
			return err
		}
		out = s
		return nil
	})
	return out, err
}

// Open ships the open through Lookup on the parent directory so it reaches
// the physical layer even across NFS (§2.3).  The volume root needs no
// bookkeeping.
func (v *lvnode) Open(flags vnode.OpenFlags) error {
	return v.shipOpenClose(true, flags)
}

// Close likewise.
func (v *lvnode) Close(flags vnode.OpenFlags) error {
	return v.shipOpenClose(false, flags)
}

func (v *lvnode) shipOpenClose(open bool, flags vnode.OpenFlags) error {
	if len(v.path) == 0 {
		return nil
	}
	parent := &lvnode{l: v.l, path: v.path[:len(v.path)-1]}
	name := v.path[len(v.path)-1]
	enc := encodeOpen(open, flags, v.l.vol, name)
	return parent.readOp(func(c candidate) error {
		_, err := c.vn.Lookup(enc)
		return err
	})
}

func (v *lvnode) ReadAt(p []byte, off int64) (int, error) {
	var n int
	var eof bool
	err := v.readOp(func(c candidate) error {
		m, err := c.vn.ReadAt(p, off)
		if err == io.EOF {
			n, eof = m, true
			return nil
		}
		if err != nil {
			return err
		}
		n, eof = m, false
		return nil
	})
	if err != nil {
		return 0, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

func (v *lvnode) WriteAt(p []byte, off int64) (int, error) {
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	var n int
	err := v.writeOp(func(c candidate) (string, error) {
		m, err := c.vn.WriteAt(p, off)
		if err != nil {
			return "", err
		}
		n = m
		return c.vn.Handle(), nil
	})
	return n, err
}

func (v *lvnode) Truncate(size uint64) error {
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	return v.writeOp(func(c candidate) (string, error) {
		if err := c.vn.Truncate(size); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
}

func (v *lvnode) Fsync() error {
	return v.readOp(func(c candidate) error { return c.vn.Fsync() })
}

func (v *lvnode) Getattr() (vnode.Attr, error) {
	var out vnode.Attr
	err := v.readOp(func(c candidate) error {
		a, err := c.vn.Getattr()
		if err != nil {
			return err
		}
		out = a
		return nil
	})
	return out, err
}

func (v *lvnode) Setattr(sa vnode.SetAttr) error {
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	return v.writeOp(func(c candidate) (string, error) {
		if err := c.vn.Setattr(sa); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
}

func (v *lvnode) Access(mode uint16) error {
	return v.readOp(func(c candidate) error { return c.vn.Access(mode) })
}

func (v *lvnode) Remove(name string) error {
	if err := checkLogicalName(name); err != nil {
		return err
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	err := v.writeOp(func(c candidate) (string, error) {
		if err := c.vn.Remove(name); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
	if err == nil {
		v.l.cacheDropSubtree(v.childKey(name))
	}
	return err
}

func (v *lvnode) Rmdir(name string) error {
	if err := checkLogicalName(name); err != nil {
		return err
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	err := v.writeOp(func(c candidate) (string, error) {
		if err := c.vn.Rmdir(name); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
	if err == nil {
		v.l.cacheDropSubtree(v.childKey(name))
	}
	return err
}

func (v *lvnode) Link(name string, target vnode.Vnode) error {
	if err := checkLogicalName(name); err != nil {
		return err
	}
	t, ok := target.(*lvnode)
	if !ok || t.l != v.l {
		return vnode.EXDEV
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	return v.writeOp(func(c candidate) (string, error) {
		tv, err := t.resolveOn(c.rep)
		if err != nil {
			return "", err
		}
		if err := c.vn.Link(name, tv); err != nil {
			return "", err
		}
		return c.vn.Handle(), nil
	})
}

func (v *lvnode) Rename(oldName string, dstDir vnode.Vnode, newName string) error {
	if err := checkLogicalName(oldName); err != nil {
		return err
	}
	if err := checkLogicalName(newName); err != nil {
		return err
	}
	d, ok := dstDir.(*lvnode)
	if !ok || d.l != v.l {
		return vnode.EXDEV
	}
	lk := v.l.fileLock(v.key())
	lk.Lock()
	defer lk.Unlock()
	err := v.writeOp(func(c candidate) (string, error) {
		// Both directories must be reached on the same replica: rename is
		// a single-replica update like any other.
		dv, err := d.resolveOn(c.rep)
		if err != nil {
			return "", err
		}
		if err := c.vn.Rename(oldName, dv, newName); err != nil {
			return "", err
		}
		// Announce the destination directory too: a cross-directory rename
		// updates both.
		v.l.sendNotify(dv.Handle(), c.rep.ID)
		return c.vn.Handle(), nil
	})
	if err == nil {
		v.l.cacheDropSubtree(v.childKey(oldName))
		v.l.cacheDropSubtree(d.childKey(newName))
	}
	return err
}

func (v *lvnode) Readdir() ([]vnode.Dirent, error) {
	var out []vnode.Dirent
	err := v.readOp(func(c candidate) error {
		ents, err := c.vn.Readdir()
		if err != nil {
			return err
		}
		out = ents
		return nil
	})
	return out, err
}
