package disk

import (
	"bytes"
	"testing"
)

func TestScriptedCorruptWrite(t *testing.T) {
	d := New(4)
	want := blockOf(7)
	d.ScriptFault(FaultCorruptWrite)
	if err := d.Write(0, want); err != nil {
		t.Fatalf("corrupted write must still report success: %v", err)
	}
	got := make([]byte, BlockSize)
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("scripted corrupt write stored the bytes unchanged")
	}
	st := d.Stats()
	if st.CorruptWrites != 1 || st.CorruptReads != 0 {
		t.Fatalf("corruption counters: %+v", st)
	}
	if st.Writes != 1 {
		t.Fatalf("a corrupted write SUCCEEDS and must count as a write: %+v", st)
	}
}

func TestScriptedCorruptRead(t *testing.T) {
	d := New(4)
	want := blockOf(3)
	if err := d.Write(1, want); err != nil {
		t.Fatal(err)
	}
	d.ScriptFault(FaultCorruptRead)
	got := make([]byte, BlockSize)
	if err := d.Read(1, got); err != nil {
		t.Fatalf("corrupted read must still report success: %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("scripted corrupt read returned the bytes unchanged")
	}
	// Read corruption garbles the BUFFER, not the platter: a retry is clean.
	if err := d.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stored block damaged by a read-side corruption")
	}
	st := d.Stats()
	if st.CorruptReads != 1 || st.CorruptWrites != 0 {
		t.Fatalf("corruption counters: %+v", st)
	}
	if st.Reads != 2 {
		t.Fatalf("a corrupted read SUCCEEDS and must count as a read: %+v", st)
	}
}

func TestProbabilisticCorruptionDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		d := New(4)
		d.InjectFaults(FaultProfile{Seed: 99, CorruptReadRate: 0.25, CorruptWriteRate: 0.25})
		p := blockOf(5)
		q := make([]byte, BlockSize)
		for i := 0; i < 200; i++ {
			_ = d.Write(i%4, p)
			_ = d.Read(i%4, q)
		}
		st := d.Stats()
		return st.CorruptReads, st.CorruptWrites
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 == 0 || w1 == 0 {
		t.Fatalf("rate 0.25 over 400 ops produced no corruption (reads=%d writes=%d)", r1, w1)
	}
	if r1 != r2 || w1 != w2 {
		t.Fatalf("same seed, different corruption counts: (%d,%d) vs (%d,%d)", r1, w1, r2, w2)
	}
	d := New(4)
	d.InjectFaults(FaultProfile{Seed: 99, CorruptReadRate: 1, CorruptWriteRate: 1})
	d.ClearInjectedFaults()
	want := blockOf(1)
	got := make([]byte, BlockSize)
	if err := d.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("corruption must stop after ClearInjectedFaults")
	}
}

func TestStatsSubCoversCorruption(t *testing.T) {
	a := Stats{Reads: 10, Writes: 10, CorruptReads: 4, CorruptWrites: 3}
	b := Stats{Reads: 6, Writes: 5, CorruptReads: 1, CorruptWrites: 2}
	got := a.Sub(b)
	if got.CorruptReads != 3 || got.CorruptWrites != 1 {
		t.Fatalf("Sub must cover the corruption counters: %+v", got)
	}
}
