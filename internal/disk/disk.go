// Package disk provides the simulated block device underneath the UFS
// substrate.  The 1990 Ficus evaluation (paper §6) is expressed in disk
// I/O counts — "four I/Os beyond the normal Unix overhead occur" on a cold
// open — so the device keeps exact per-operation counters that the E3
// experiment reads back.  It also supports fault injection: a device can be
// made to fail after a chosen number of writes, which the physical layer's
// shadow-file atomic commit tests use to prove that a crash before the
// shadow substitution retains the original replica (paper §3.2 fn5).
package disk

import (
	"errors"
	"fmt"
	"sync"
)

// BlockSize is the size of every device block in bytes.  4 KiB matches the
// page-sized I/O granularity the paper's I/O accounting assumes.
const BlockSize = 4096

// Errors returned by devices.
var (
	// ErrOutOfRange reports a block number beyond the device.
	ErrOutOfRange = errors.New("disk: block number out of range")
	// ErrFaulted reports that the device has hit its injected fault and
	// refuses all further I/O, emulating a crash.
	ErrFaulted = errors.New("disk: injected fault: device crashed")
	// ErrBadSize reports a buffer whose length is not exactly one block.
	ErrBadSize = errors.New("disk: buffer must be exactly one block")
	// ErrIO reports an injected transient I/O error: the operation failed
	// but the device remains in service, so retrying may succeed.  Errors
	// wrapping it implement Transient() bool, which internal/retry uses to
	// classify them as retryable.
	ErrIO = errors.New("disk: injected transient I/O error")
)

// ioFault wraps ErrIO so the retry machinery sees a transient error without
// the disk package importing it.
type ioFault struct{ err error }

func (f ioFault) Error() string   { return f.err.Error() }
func (f ioFault) Unwrap() error   { return f.err }
func (f ioFault) Transient() bool { return true }

func ioError(op string, bn int) error {
	return ioFault{fmt.Errorf("%w: %s block %d", ErrIO, op, bn)}
}

// Stats counts device operations.  Reads and writes are block-granularity:
// one call, one block, one I/O.  Failed operations are counted in the fault
// counters, not in Reads/Writes.  Corrupted operations SUCCEED from the
// caller's point of view — that is what makes the corruption silent — so
// they count in Reads/Writes as well as in CorruptReads/CorruptWrites.
type Stats struct {
	Reads  uint64
	Writes uint64

	// Fault-injection counters.
	ReadFaults    uint64 // reads failed with an injected transient error
	WriteFaults   uint64 // writes failed with an injected transient error
	TornWrites    uint64 // crashing writes that persisted a partial block
	CorruptReads  uint64 // reads that silently returned garbled bytes
	CorruptWrites uint64 // writes that silently persisted garbled bytes
}

// Total returns Reads + Writes.
func (s Stats) Total() uint64 { return s.Reads + s.Writes }

// Sub returns s - t componentwise; used to measure the I/O cost of a single
// operation by snapshotting stats before and after.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:         s.Reads - t.Reads,
		Writes:        s.Writes - t.Writes,
		ReadFaults:    s.ReadFaults - t.ReadFaults,
		WriteFaults:   s.WriteFaults - t.WriteFaults,
		TornWrites:    s.TornWrites - t.TornWrites,
		CorruptReads:  s.CorruptReads - t.CorruptReads,
		CorruptWrites: s.CorruptWrites - t.CorruptWrites,
	}
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%dR+%dW", s.Reads, s.Writes)
}

// FaultKind selects a scripted one-shot fault.
type FaultKind int

// Scripted fault kinds, consumed FIFO by the next matching operation.
const (
	// FaultReadError fails the next read with a transient I/O error.
	FaultReadError FaultKind = iota
	// FaultWriteError fails the next write with a transient I/O error.
	FaultWriteError
	// FaultCorruptRead silently garbles the bytes the next read returns;
	// the stored block is untouched and the call reports success.
	FaultCorruptRead
	// FaultCorruptWrite silently garbles the bytes the next write persists;
	// the call reports success, so the caller believes its data is safe.
	FaultCorruptWrite
)

// FaultProfile programs steady-state probabilistic faults on a device.
// Rates are probabilities in [0, 1] drawn from a per-device RNG seeded by
// Seed, so faulty runs stay deterministic.
type FaultProfile struct {
	Seed             int64
	ReadErrRate      float64 // chance a read fails with a transient I/O error
	WriteErrRate     float64 // chance a write fails with a transient I/O error
	CorruptReadRate  float64 // chance a read silently returns garbled bytes
	CorruptWriteRate float64 // chance a write silently persists garbled bytes
}

func (p FaultProfile) active() bool {
	return p.ReadErrRate > 0 || p.WriteErrRate > 0 ||
		p.CorruptReadRate > 0 || p.CorruptWriteRate > 0
}

// Device is a fixed-size array of blocks with I/O accounting and fault
// injection.  All methods are safe for concurrent use.
type Device struct {
	mu     sync.Mutex
	blocks [][]byte
	stats  Stats

	// Fault injection: when writesUntilFault reaches zero the device
	// "crashes": every subsequent operation fails with ErrFaulted until
	// ClearFault.  -1 means no fault armed.  A crashing write is normally
	// LOST entirely; with tornBytes > 0 it instead persists the first
	// tornBytes bytes of the buffer — a torn write.
	writesUntilFault int64
	faulted          bool
	tornBytes        int

	// Transient-fault injection: scripted one-shot faults drain first,
	// then the probabilistic profile draws from rng.
	scripted []FaultKind
	profile  FaultProfile
	rng      uint64
}

// New creates a device with n blocks, all zero.
func New(n int) *Device {
	d := &Device{blocks: make([][]byte, n), writesUntilFault: -1}
	return d
}

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() int { return len(d.blocks) }

// drawScripted consumes and reports the scripted fault at the head of the
// queue if it matches want.  Caller holds d.mu.
func (d *Device) drawScripted(want FaultKind) bool {
	if len(d.scripted) > 0 && d.scripted[0] == want {
		d.scripted = d.scripted[1:]
		return true
	}
	return false
}

// drawRate draws the per-device RNG against a profile rate.  Caller holds
// d.mu.
func (d *Device) drawRate(rate float64) bool {
	if !d.profile.active() || rate <= 0 {
		return false
	}
	// splitmix64 step; uniform in [0, 1) from the top 53 bits.
	d.rng += 0x9e3779b97f4a7c15
	x := d.rng
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}

// drawFault decides whether the current operation (a read when read=true)
// should fail with an injected transient error: scripted faults first, then
// the probabilistic profile.  Caller holds d.mu.
func (d *Device) drawFault(read bool) bool {
	want, rate := FaultWriteError, d.profile.WriteErrRate
	if read {
		want, rate = FaultReadError, d.profile.ReadErrRate
	}
	return d.drawScripted(want) || d.drawRate(rate)
}

// drawCorrupt decides whether the current operation should silently garble
// its bytes: scripted corruption first, then the profile.  Caller holds d.mu.
func (d *Device) drawCorrupt(read bool) bool {
	want, rate := FaultCorruptWrite, d.profile.CorruptWriteRate
	if read {
		want, rate = FaultCorruptRead, d.profile.CorruptReadRate
	}
	return d.drawScripted(want) || d.drawRate(rate)
}

// garble deterministically damages p in place: a handful of bit-flips at
// RNG-chosen offsets, each guaranteed to change the byte, emulating silent
// media bit rot.  Caller holds d.mu.
func (d *Device) garble(p []byte) {
	if len(p) == 0 {
		return
	}
	for i := 0; i < 3; i++ {
		d.rng += 0x9e3779b97f4a7c15
		x := d.rng
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		p[x%uint64(len(p))] ^= byte(x>>8) | 1
	}
}

// Read copies block bn into p (which must be exactly BlockSize bytes).
// A block never written reads as zeros.
func (d *Device) Read(bn int, p []byte) error {
	if len(p) != BlockSize {
		return ErrBadSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faulted {
		return ErrFaulted
	}
	if bn < 0 || bn >= len(d.blocks) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, bn, len(d.blocks))
	}
	if d.drawFault(true) {
		d.stats.ReadFaults++
		return ioError("read", bn)
	}
	d.stats.Reads++
	if b := d.blocks[bn]; b != nil {
		copy(p, b)
	} else {
		for i := range p {
			p[i] = 0
		}
	}
	// Silent read corruption: the stored block is intact, but the copy the
	// caller receives is garbled and the call still reports success.
	if d.drawCorrupt(true) {
		d.garble(p)
		d.stats.CorruptReads++
	}
	return nil
}

// Write stores p (exactly BlockSize bytes) as block bn.  If a fault is
// armed, the write that exhausts the budget is LOST (the crash happened
// before it reached the platter) and the device enters the faulted state —
// unless torn-write mode is armed, in which case the crashing write persists
// a partial block (the prefix that made it to the platter).
func (d *Device) Write(bn int, p []byte) error {
	if len(p) != BlockSize {
		return ErrBadSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faulted {
		return ErrFaulted
	}
	if bn < 0 || bn >= len(d.blocks) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, bn, len(d.blocks))
	}
	// A transient failure is not a completed write, so it does not consume
	// the crash countdown budget.
	if d.drawFault(false) {
		d.stats.WriteFaults++
		return ioError("write", bn)
	}
	if d.writesUntilFault == 0 {
		d.faulted = true
		if d.tornBytes > 0 {
			b := d.blocks[bn]
			if b == nil {
				b = make([]byte, BlockSize)
				d.blocks[bn] = b
			}
			copy(b[:d.tornBytes], p)
			d.stats.TornWrites++
		}
		return ErrFaulted
	}
	if d.writesUntilFault > 0 {
		d.writesUntilFault--
	}
	d.stats.Writes++
	b := d.blocks[bn]
	if b == nil {
		b = make([]byte, BlockSize)
		d.blocks[bn] = b
	}
	copy(b, p)
	// Silent write corruption: the caller's buffer is untouched and the call
	// reports success, but what reached the platter is garbled.
	if d.drawCorrupt(false) {
		d.garble(b)
		d.stats.CorruptWrites++
	}
	return nil
}

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the capacity and contents are untouched).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// FaultAfterWrites arms a crash fault: the next n writes succeed, the one
// after is lost and the device refuses all further I/O.  n < 0 disarms.
func (d *Device) FaultAfterWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writesUntilFault = int64(n)
	d.faulted = false
	d.tornBytes = 0
}

// FaultAfterWritesTorn is FaultAfterWrites with torn-write semantics: the
// crashing write persists the first keep bytes of the buffer (the prefix
// that reached the platter before power was lost) instead of being lost
// entirely.  keep is clamped to (0, BlockSize).
func (d *Device) FaultAfterWritesTorn(n, keep int) {
	if keep < 1 {
		keep = 1
	}
	if keep > BlockSize {
		keep = BlockSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writesUntilFault = int64(n)
	d.faulted = false
	d.tornBytes = keep
}

// Fault crashes the device immediately: all further I/O fails with
// ErrFaulted until ClearFault.  Host.Crash uses it so stale file-system
// handles from before the crash cannot touch the platter.
func (d *Device) Fault() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faulted = true
	d.writesUntilFault = -1
}

// InjectFaults installs a probabilistic fault profile (replacing any
// previous one); the zero profile disables probabilistic faults.
func (d *Device) InjectFaults(p FaultProfile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.profile = p
	d.rng = uint64(p.Seed)
}

// ScriptFault queues a one-shot fault consumed by the next matching
// operation; scripted faults fire before the probabilistic profile draws.
func (d *Device) ScriptFault(kinds ...FaultKind) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.scripted = append(d.scripted, kinds...)
}

// ClearInjectedFaults drops the probabilistic profile and any unconsumed
// scripted faults; the crash countdown (FaultAfterWrites) is untouched.
func (d *Device) ClearInjectedFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.profile = FaultProfile{}
	d.scripted = nil
}

// ClearFault returns a crashed device to service ("reboot"): contents
// written before the crash survive, the lost write does not reappear.
func (d *Device) ClearFault() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faulted = false
	d.writesUntilFault = -1
	d.tornBytes = 0
}

// Faulted reports whether the device is currently refusing I/O.
func (d *Device) Faulted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faulted
}

// Snapshot returns a deep copy of the device contents, preserving stats at
// zero and no fault.  Tests use it to diff on-disk state across a crash.
func (d *Device) Snapshot() *Device {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := New(len(d.blocks))
	for i, b := range d.blocks {
		if b != nil {
			nb := make([]byte, BlockSize)
			copy(nb, b)
			c.blocks[i] = nb
		}
	}
	return c
}
