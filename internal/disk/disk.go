// Package disk provides the simulated block device underneath the UFS
// substrate.  The 1990 Ficus evaluation (paper §6) is expressed in disk
// I/O counts — "four I/Os beyond the normal Unix overhead occur" on a cold
// open — so the device keeps exact per-operation counters that the E3
// experiment reads back.  It also supports fault injection: a device can be
// made to fail after a chosen number of writes, which the physical layer's
// shadow-file atomic commit tests use to prove that a crash before the
// shadow substitution retains the original replica (paper §3.2 fn5).
package disk

import (
	"errors"
	"fmt"
	"sync"
)

// BlockSize is the size of every device block in bytes.  4 KiB matches the
// page-sized I/O granularity the paper's I/O accounting assumes.
const BlockSize = 4096

// Errors returned by devices.
var (
	// ErrOutOfRange reports a block number beyond the device.
	ErrOutOfRange = errors.New("disk: block number out of range")
	// ErrFaulted reports that the device has hit its injected fault and
	// refuses all further I/O, emulating a crash.
	ErrFaulted = errors.New("disk: injected fault: device crashed")
	// ErrBadSize reports a buffer whose length is not exactly one block.
	ErrBadSize = errors.New("disk: buffer must be exactly one block")
)

// Stats counts device operations.  Reads and writes are block-granularity:
// one call, one block, one I/O.
type Stats struct {
	Reads  uint64
	Writes uint64
}

// Total returns Reads + Writes.
func (s Stats) Total() uint64 { return s.Reads + s.Writes }

// Sub returns s - t componentwise; used to measure the I/O cost of a single
// operation by snapshotting stats before and after.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes}
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%dR+%dW", s.Reads, s.Writes)
}

// Device is a fixed-size array of blocks with I/O accounting and fault
// injection.  All methods are safe for concurrent use.
type Device struct {
	mu     sync.Mutex
	blocks [][]byte
	stats  Stats

	// Fault injection: when writesUntilFault reaches zero the device
	// "crashes": every subsequent operation fails with ErrFaulted until
	// ClearFault.  -1 means no fault armed.
	writesUntilFault int64
	faulted          bool
}

// New creates a device with n blocks, all zero.
func New(n int) *Device {
	d := &Device{blocks: make([][]byte, n), writesUntilFault: -1}
	return d
}

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() int { return len(d.blocks) }

// Read copies block bn into p (which must be exactly BlockSize bytes).
// A block never written reads as zeros.
func (d *Device) Read(bn int, p []byte) error {
	if len(p) != BlockSize {
		return ErrBadSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faulted {
		return ErrFaulted
	}
	if bn < 0 || bn >= len(d.blocks) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, bn, len(d.blocks))
	}
	d.stats.Reads++
	if b := d.blocks[bn]; b != nil {
		copy(p, b)
	} else {
		for i := range p {
			p[i] = 0
		}
	}
	return nil
}

// Write stores p (exactly BlockSize bytes) as block bn.  If a fault is
// armed, the write that exhausts the budget is LOST (the crash happened
// before it reached the platter) and the device enters the faulted state.
func (d *Device) Write(bn int, p []byte) error {
	if len(p) != BlockSize {
		return ErrBadSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.faulted {
		return ErrFaulted
	}
	if bn < 0 || bn >= len(d.blocks) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, bn, len(d.blocks))
	}
	if d.writesUntilFault == 0 {
		d.faulted = true
		return ErrFaulted
	}
	if d.writesUntilFault > 0 {
		d.writesUntilFault--
	}
	d.stats.Writes++
	b := d.blocks[bn]
	if b == nil {
		b = make([]byte, BlockSize)
		d.blocks[bn] = b
	}
	copy(b, p)
	return nil
}

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the capacity and contents are untouched).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// FaultAfterWrites arms a crash fault: the next n writes succeed, the one
// after is lost and the device refuses all further I/O.  n < 0 disarms.
func (d *Device) FaultAfterWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writesUntilFault = int64(n)
	d.faulted = false
}

// ClearFault returns a crashed device to service ("reboot"): contents
// written before the crash survive, the lost write does not reappear.
func (d *Device) ClearFault() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faulted = false
	d.writesUntilFault = -1
}

// Faulted reports whether the device is currently refusing I/O.
func (d *Device) Faulted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faulted
}

// Snapshot returns a deep copy of the device contents, preserving stats at
// zero and no fault.  Tests use it to diff on-disk state across a crash.
func (d *Device) Snapshot() *Device {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := New(len(d.blocks))
	for i, b := range d.blocks {
		if b != nil {
			nb := make([]byte, BlockSize)
			copy(nb, b)
			c.blocks[i] = nb
		}
	}
	return c
}
