package disk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func blockOf(b byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(8)
	want := blockOf(0x5a)
	if err := d.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := d.Read(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back different data")
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	d := New(2)
	p := blockOf(0xff) // pre-dirty the buffer
	if err := d.Read(1, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, make([]byte, BlockSize)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(4)
	p := make([]byte, BlockSize)
	for _, bn := range []int{-1, 4, 100} {
		if err := d.Read(bn, p); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Read(%d): err = %v, want ErrOutOfRange", bn, err)
		}
		if err := d.Write(bn, p); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Write(%d): err = %v, want ErrOutOfRange", bn, err)
		}
	}
}

func TestBadBufferSize(t *testing.T) {
	d := New(1)
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize + 1} {
		if err := d.Read(0, make([]byte, n)); !errors.Is(err, ErrBadSize) {
			t.Errorf("Read with %d-byte buffer: %v", n, err)
		}
		if err := d.Write(0, make([]byte, n)); !errors.Is(err, ErrBadSize) {
			t.Errorf("Write with %d-byte buffer: %v", n, err)
		}
	}
}

func TestStatsCount(t *testing.T) {
	d := New(4)
	p := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := d.Write(i, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := d.Read(0, p); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Writes != 3 || s.Reads != 5 {
		t.Fatalf("stats %+v, want 5R+3W", s)
	}
	if s.Total() != 8 {
		t.Fatalf("Total = %d, want 8", s.Total())
	}
	if got := s.Sub(Stats{Reads: 2, Writes: 1}); got.Reads != 3 || got.Writes != 2 {
		t.Fatalf("Sub = %+v", got)
	}
	if s.String() != "5R+3W" {
		t.Fatalf("String = %q", s.String())
	}
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestFailedOpsNotCounted(t *testing.T) {
	d := New(1)
	p := make([]byte, BlockSize)
	_ = d.Read(5, p)
	_ = d.Write(5, p)
	_ = d.Read(0, p[:1])
	if d.Stats().Total() != 0 {
		t.Fatalf("failed ops counted: %+v", d.Stats())
	}
}

func TestFaultAfterWrites(t *testing.T) {
	d := New(8)
	d.FaultAfterWrites(2)
	p := blockOf(1)
	if err := d.Write(0, p); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(1, p); err != nil {
		t.Fatal(err)
	}
	// Third write is lost.
	if err := d.Write(2, blockOf(9)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("third write: %v, want ErrFaulted", err)
	}
	// Device now refuses everything.
	if err := d.Read(0, make([]byte, BlockSize)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("read after crash: %v, want ErrFaulted", err)
	}
	if !d.Faulted() {
		t.Fatal("Faulted() = false after crash")
	}
	// Reboot: pre-crash data survives, lost write did not land.
	d.ClearFault()
	got := make([]byte, BlockSize)
	if err := d.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("pre-crash write lost after reboot")
	}
	if err := d.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("lost write reappeared after reboot")
	}
}

func TestFaultDisarm(t *testing.T) {
	d := New(2)
	d.FaultAfterWrites(0)
	if err := d.Write(0, blockOf(1)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("write with zero budget: %v", err)
	}
	d.FaultAfterWrites(-1) // disarm also clears the crash
	if err := d.Write(0, blockOf(1)); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	d := New(4)
	if err := d.Write(0, blockOf(7)); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if err := d.Write(0, blockOf(8)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := s.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("snapshot shares storage with original")
	}
	if s.Blocks() != 4 {
		t.Fatalf("snapshot capacity %d", s.Blocks())
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := blockOf(byte(g))
			q := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				if err := d.Write(g, p); err != nil {
					t.Error(err)
					return
				}
				if err := d.Read(g, q); err != nil {
					t.Error(err)
					return
				}
				if q[0] != byte(g) {
					t.Errorf("goroutine %d read %d", g, q[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := d.Stats().Total(); got != 8*200*2 {
		t.Fatalf("stats %d, want %d", got, 8*200*2)
	}
}
