package disk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func blockOf(b byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(8)
	want := blockOf(0x5a)
	if err := d.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := d.Read(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back different data")
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	d := New(2)
	p := blockOf(0xff) // pre-dirty the buffer
	if err := d.Read(1, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, make([]byte, BlockSize)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(4)
	p := make([]byte, BlockSize)
	for _, bn := range []int{-1, 4, 100} {
		if err := d.Read(bn, p); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Read(%d): err = %v, want ErrOutOfRange", bn, err)
		}
		if err := d.Write(bn, p); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Write(%d): err = %v, want ErrOutOfRange", bn, err)
		}
	}
}

func TestBadBufferSize(t *testing.T) {
	d := New(1)
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize + 1} {
		if err := d.Read(0, make([]byte, n)); !errors.Is(err, ErrBadSize) {
			t.Errorf("Read with %d-byte buffer: %v", n, err)
		}
		if err := d.Write(0, make([]byte, n)); !errors.Is(err, ErrBadSize) {
			t.Errorf("Write with %d-byte buffer: %v", n, err)
		}
	}
}

func TestStatsCount(t *testing.T) {
	d := New(4)
	p := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := d.Write(i, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := d.Read(0, p); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Writes != 3 || s.Reads != 5 {
		t.Fatalf("stats %+v, want 5R+3W", s)
	}
	if s.Total() != 8 {
		t.Fatalf("Total = %d, want 8", s.Total())
	}
	if got := s.Sub(Stats{Reads: 2, Writes: 1}); got.Reads != 3 || got.Writes != 2 {
		t.Fatalf("Sub = %+v", got)
	}
	if s.String() != "5R+3W" {
		t.Fatalf("String = %q", s.String())
	}
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestFailedOpsNotCounted(t *testing.T) {
	d := New(1)
	p := make([]byte, BlockSize)
	_ = d.Read(5, p)
	_ = d.Write(5, p)
	_ = d.Read(0, p[:1])
	if d.Stats().Total() != 0 {
		t.Fatalf("failed ops counted: %+v", d.Stats())
	}
}

func TestFaultAfterWrites(t *testing.T) {
	d := New(8)
	d.FaultAfterWrites(2)
	p := blockOf(1)
	if err := d.Write(0, p); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(1, p); err != nil {
		t.Fatal(err)
	}
	// Third write is lost.
	if err := d.Write(2, blockOf(9)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("third write: %v, want ErrFaulted", err)
	}
	// Device now refuses everything.
	if err := d.Read(0, make([]byte, BlockSize)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("read after crash: %v, want ErrFaulted", err)
	}
	if !d.Faulted() {
		t.Fatal("Faulted() = false after crash")
	}
	// Reboot: pre-crash data survives, lost write did not land.
	d.ClearFault()
	got := make([]byte, BlockSize)
	if err := d.Read(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("pre-crash write lost after reboot")
	}
	if err := d.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("lost write reappeared after reboot")
	}
}

func TestFaultDisarm(t *testing.T) {
	d := New(2)
	d.FaultAfterWrites(0)
	if err := d.Write(0, blockOf(1)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("write with zero budget: %v", err)
	}
	d.FaultAfterWrites(-1) // disarm also clears the crash
	if err := d.Write(0, blockOf(1)); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	d := New(4)
	if err := d.Write(0, blockOf(7)); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if err := d.Write(0, blockOf(8)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := s.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("snapshot shares storage with original")
	}
	if s.Blocks() != 4 {
		t.Fatalf("snapshot capacity %d", s.Blocks())
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := blockOf(byte(g))
			q := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				if err := d.Write(g, p); err != nil {
					t.Error(err)
					return
				}
				if err := d.Read(g, q); err != nil {
					t.Error(err)
					return
				}
				if q[0] != byte(g) {
					t.Errorf("goroutine %d read %d", g, q[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := d.Stats().Total(); got != 8*200*2 {
		t.Fatalf("stats %d, want %d", got, 8*200*2)
	}
}

func TestScriptedFaults(t *testing.T) {
	d := New(4)
	d.ScriptFault(FaultWriteError, FaultReadError)
	if err := d.Write(0, blockOf(1)); !errors.Is(err, ErrIO) {
		t.Fatalf("scripted write fault: got %v, want ErrIO", err)
	}
	// The scripted write error is consumed; the retry succeeds.
	if err := d.Write(0, blockOf(1)); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, BlockSize)
	if err := d.Read(0, p); !errors.Is(err, ErrIO) {
		t.Fatalf("scripted read fault: got %v, want ErrIO", err)
	}
	if err := d.Read(0, p); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.ReadFaults != 1 || st.WriteFaults != 1 {
		t.Fatalf("fault counters: %+v", st)
	}
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("failed ops must not count as I/O: %+v", st)
	}
}

func TestTransientFaultIsTransient(t *testing.T) {
	d := New(1)
	d.ScriptFault(FaultWriteError)
	err := d.Write(0, blockOf(1))
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("injected I/O error must classify as transient: %v", err)
	}
}

func TestProbabilisticFaultsDeterministic(t *testing.T) {
	run := func() (faults uint64) {
		d := New(4)
		d.InjectFaults(FaultProfile{Seed: 42, ReadErrRate: 0.3, WriteErrRate: 0.3})
		p := blockOf(7)
		q := make([]byte, BlockSize)
		for i := 0; i < 200; i++ {
			_ = d.Write(i%4, p)
			_ = d.Read(i%4, q)
		}
		st := d.Stats()
		return st.ReadFaults + st.WriteFaults
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("rate 0.3 over 400 ops produced no faults")
	}
	if a != b {
		t.Fatalf("same seed, different fault counts: %d vs %d", a, b)
	}
	d := New(4)
	d.InjectFaults(FaultProfile{Seed: 42, ReadErrRate: 0.3, WriteErrRate: 0.3})
	d.ClearInjectedFaults()
	for i := 0; i < 50; i++ {
		if err := d.Write(0, blockOf(1)); err != nil {
			t.Fatalf("faults must stop after ClearInjectedFaults: %v", err)
		}
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	d := New(2)
	if err := d.Write(0, blockOf(0xaa)); err != nil {
		t.Fatal(err)
	}
	d.FaultAfterWritesTorn(0, 100)
	if err := d.Write(0, blockOf(0xbb)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("torn write must still crash the device: %v", err)
	}
	d.ClearFault()
	p := make([]byte, BlockSize)
	if err := d.Read(0, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if p[i] != 0xbb {
			t.Fatalf("byte %d: got %#x, want new data in torn prefix", i, p[i])
		}
	}
	for i := 100; i < BlockSize; i++ {
		if p[i] != 0xaa {
			t.Fatalf("byte %d: got %#x, want old data past the tear", i, p[i])
		}
	}
	if st := d.Stats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}
}

func TestImmediateFault(t *testing.T) {
	d := New(2)
	if err := d.Write(0, blockOf(1)); err != nil {
		t.Fatal(err)
	}
	d.Fault()
	if err := d.Write(1, blockOf(2)); !errors.Is(err, ErrFaulted) {
		t.Fatalf("write after Fault: %v", err)
	}
	p := make([]byte, BlockSize)
	if err := d.Read(0, p); !errors.Is(err, ErrFaulted) {
		t.Fatalf("read after Fault: %v", err)
	}
	d.ClearFault()
	if err := d.Read(0, p); err != nil {
		t.Fatalf("read after ClearFault: %v", err)
	}
	if !bytes.Equal(p, blockOf(1)) {
		t.Fatal("pre-crash contents must survive the crash")
	}
}
