package vv

import (
	"testing"

	"repro/internal/invariant"
)

// TestCompareArmedAntisymmetry runs the armed cross-check over every order
// class: the hook re-compares with operands swapped, so a pass proves the
// dominance relation is antisymmetric on these shapes (and that the hook
// itself does not false-fire on the healthy implementation).
func TestCompareArmedAntisymmetry(t *testing.T) {
	defer invariant.ForceForTest(true)()
	cases := []struct {
		a, b Vector
		want Order
	}{
		{New(), New(), Equal},
		{New().Bump(1), New(), Dominates},
		{New(), New().Bump(1), Dominated},
		{New().Bump(1), New().Bump(2), Concurrent},
		{New().Bump(1).Bump(2), New().Bump(1), Dominates},
		{Merge(New().Bump(1), New().Bump(2)), New().Bump(2), Dominates},
		{Vector{1: 3, 2: 1}, Vector{1: 1, 2: 3}, Concurrent},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Fatalf("Compare(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

// TestOrderMirror pins the mirror table the antisymmetry hook relies on.
func TestOrderMirror(t *testing.T) {
	pairs := map[Order]Order{
		Equal:      Equal,
		Dominates:  Dominated,
		Dominated:  Dominates,
		Concurrent: Concurrent,
	}
	for o, want := range pairs {
		if got := o.mirror(); got != want {
			t.Fatalf("%s.mirror() = %s, want %s", o, got, want)
		}
	}
}
