package vv

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ids"
)

// Wire format: a uint32 entry count followed by (uint32 replica, uint64
// counter) pairs sorted by replica id.  The sort makes the encoding
// canonical so byte-equal encodings mean Equal vectors; the physical layer
// relies on this when deciding whether an auxiliary attribute file needs a
// rewrite.

// AppendBinary appends the canonical encoding of v to dst.
func (v Vector) AppendBinary(dst []byte) []byte {
	rs := make([]ids.ReplicaID, 0, len(v))
	for r, n := range v {
		if n > 0 {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rs)))
	for _, r := range rs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(r))
		dst = binary.BigEndian.AppendUint64(dst, v[r])
	}
	return dst
}

// MarshalBinary encodes v canonically.
func (v Vector) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(nil), nil
}

// DecodeFrom decodes one vector from the front of b, returning the vector
// and the number of bytes consumed.
func DecodeFrom(b []byte) (Vector, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("vv: short buffer: %d bytes", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	need := 4 + n*12
	if len(b) < need {
		return nil, 0, fmt.Errorf("vv: short buffer: want %d bytes, have %d", need, len(b))
	}
	v := make(Vector, n)
	off := 4
	var prev int64 = -1
	for i := 0; i < n; i++ {
		r := binary.BigEndian.Uint32(b[off:])
		c := binary.BigEndian.Uint64(b[off+4:])
		if int64(r) <= prev {
			return nil, 0, fmt.Errorf("vv: non-canonical encoding: replica ids not strictly increasing")
		}
		prev = int64(r)
		if c > 0 {
			v[ids.ReplicaID(r)] = c
		}
		off += 12
	}
	return v, off, nil
}

// UnmarshalBinary decodes a vector that occupies the entire buffer.
func (v *Vector) UnmarshalBinary(b []byte) error {
	dec, n, err := DecodeFrom(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return fmt.Errorf("vv: %d trailing bytes after vector", len(b)-n)
	}
	*v = dec
	return nil
}
