// Package vv implements version vectors as introduced by Parker et al.,
// "Detection of Mutual Inconsistency in Distributed Systems" (IEEE TSE
// 1983), which Ficus uses to detect concurrent unsynchronized updates to
// file replicas (paper §2.6, §3.1).
//
// A version vector associated with a file replica maps each replica id to
// the number of updates that replica has originated for the file.  Two
// replica states are comparable when one vector dominates the other
// componentwise; otherwise the replicas were updated concurrently while not
// communicating and are in conflict.
package vv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/invariant"
)

// Order is the result of comparing two version vectors.
type Order int

// Comparison outcomes.  Concurrent means neither vector dominates: a
// conflicting, unsynchronized update pair has been detected.
const (
	Equal Order = iota
	Dominates
	Dominated
	Concurrent
)

// String names the order for logs and conflict reports.
func (o Order) String() string {
	switch o {
	case Equal:
		return "equal"
	case Dominates:
		return "dominates"
	case Dominated:
		return "dominated"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Vector is a version vector.  The zero value is the empty vector, which is
// Equal to any vector of all-zero counters and Dominated by any vector with
// a positive counter.
type Vector map[ids.ReplicaID]uint64

// New returns an empty version vector.
func New() Vector { return make(Vector) }

// Clone returns a deep copy.  Clone of a nil vector is an empty vector.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for r, n := range v {
		c[r] = n
	}
	return c
}

// Counter returns the update counter for one replica (0 when absent).
func (v Vector) Counter(r ids.ReplicaID) uint64 { return v[r] }

// Bump records one update originated by replica r and returns the vector for
// chaining.  Bump on a nil Vector panics; create with New or Clone first.
func (v Vector) Bump(r ids.ReplicaID) Vector {
	v[r]++
	return v
}

// Compare determines the relationship of v to w.  With FICUS_INVARIANTS=1
// the result is cross-checked against the mirrored comparison: dominance
// must be antisymmetric or conflict detection is meaningless.
func (v Vector) Compare(w Vector) Order {
	o := v.compare(w)
	if invariant.Enabled() {
		m := w.compare(v)
		invariant.Checkf(m == o.mirror(),
			"vv: Compare not antisymmetric: %s vs %s gave %s, mirror gave %s", v, w, o, m)
	}
	return o
}

// mirror maps an Order to the result the swapped comparison must produce.
func (o Order) mirror() Order {
	switch o {
	case Dominates:
		return Dominated
	case Dominated:
		return Dominates
	default:
		return o
	}
}

func (v Vector) compare(w Vector) Order {
	vGreater, wGreater := false, false
	for r, n := range v {
		m := w[r]
		if n > m {
			vGreater = true
		} else if n < m {
			wGreater = true
		}
	}
	for r, m := range w {
		if _, ok := v[r]; !ok && m > 0 {
			wGreater = true
		}
	}
	switch {
	case vGreater && wGreater:
		return Concurrent
	case vGreater:
		return Dominates
	case wGreater:
		return Dominated
	default:
		return Equal
	}
}

// DominatesOrEqual reports whether every counter in v is at least the
// corresponding counter in w.
func (v Vector) DominatesOrEqual(w Vector) bool {
	o := v.Compare(w)
	return o == Dominates || o == Equal
}

// Merge returns the componentwise maximum of v and w: the least vector that
// dominates both.  Reconciliation installs the merged vector after manual or
// automatic conflict resolution so the resolution dominates both inputs.
func Merge(v, w Vector) Vector {
	m := v.Clone()
	for r, n := range w {
		if n > m[r] {
			m[r] = n
		}
	}
	return m
}

// Equal reports componentwise equality, treating absent counters as zero.
func (v Vector) Equal(w Vector) bool { return v.Compare(w) == Equal }

// Total returns the sum of all counters: the total number of updates the
// replica has seen.  Used by the logical layer's default "select the most
// recent copy available" policy as a tiebreaker among comparable replicas.
func (v Vector) Total() uint64 {
	var t uint64
	for _, n := range v {
		t += n
	}
	return t
}

// String renders the vector deterministically as {r1:n1 r2:n2 ...} with
// replica ids sorted, omitting zero counters.
func (v Vector) String() string {
	rs := make([]ids.ReplicaID, 0, len(v))
	for r, n := range v {
		if n > 0 {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range rs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", r, v[r])
	}
	b.WriteByte('}')
	return b.String()
}
