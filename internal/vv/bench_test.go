package vv

import (
	"testing"

	"repro/internal/ids"
)

func benchVec(n int) Vector {
	v := New()
	for i := 0; i < n; i++ {
		v[ids.ReplicaID(i)] = uint64(i + 1)
	}
	return v
}

func BenchmarkCompare8(b *testing.B) {
	x, y := benchVec(8), benchVec(8)
	y.Bump(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Compare(y) != Dominated {
			b.Fatal("wrong order")
		}
	}
}

func BenchmarkMerge8(b *testing.B) {
	x, y := benchVec(8), benchVec(8)
	y.Bump(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Merge(x, y)
	}
}

func BenchmarkCodecRoundTrip8(b *testing.B) {
	v := benchVec(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, _ := v.MarshalBinary()
		var out Vector
		if err := out.UnmarshalBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}
