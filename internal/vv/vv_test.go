package vv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func vec(pairs ...uint64) Vector {
	v := New()
	for i := 0; i+1 < len(pairs); i += 2 {
		if pairs[i+1] > 0 {
			v[ids.ReplicaID(pairs[i])] = pairs[i+1]
		}
	}
	return v
}

func TestCompareTable(t *testing.T) {
	cases := []struct {
		name string
		a, b Vector
		want Order
	}{
		{"empty-empty", New(), New(), Equal},
		{"nil-empty", nil, New(), Equal},
		{"equal", vec(1, 2, 2, 3), vec(1, 2, 2, 3), Equal},
		{"zero-counter-ignored", vec(1, 2), Vector{1: 2, 9: 0}, Equal},
		{"dominates", vec(1, 3, 2, 3), vec(1, 2, 2, 3), Dominates},
		{"dominates-extra-replica", vec(1, 1, 2, 1), vec(1, 1), Dominates},
		{"dominated", vec(1, 2), vec(1, 2, 2, 1), Dominated},
		{"concurrent", vec(1, 2, 2, 1), vec(1, 1, 2, 2), Concurrent},
		{"concurrent-disjoint", vec(1, 1), vec(2, 1), Concurrent},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%s: %v.Compare(%v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	flip := map[Order]Order{Equal: Equal, Dominates: Dominated, Dominated: Dominates, Concurrent: Concurrent}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randVec(rng), randVec(rng)
		if got, want := b.Compare(a), flip[a.Compare(b)]; got != want {
			t.Fatalf("antisymmetry violated: a=%v b=%v: a.Compare(b)=%v b.Compare(a)=%v", a, b, a.Compare(b), got)
		}
	}
}

func randVec(rng *rand.Rand) Vector {
	v := New()
	for r := 0; r < 4; r++ {
		if n := rng.Intn(4); n > 0 {
			v[ids.ReplicaID(r)] = uint64(n)
		}
	}
	return v
}

func TestBumpMakesDominating(t *testing.T) {
	v := vec(1, 1, 2, 5)
	before := v.Clone()
	v.Bump(3)
	if v.Compare(before) != Dominates {
		t.Fatalf("bumped vector %v does not dominate %v", v, before)
	}
	if before.Compare(v) != Dominated {
		t.Fatalf("original %v not dominated by %v", before, v)
	}
}

func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b, c := randVec(rng), randVec(rng), randVec(rng)
		m := Merge(a, b)
		if !m.DominatesOrEqual(a) || !m.DominatesOrEqual(b) {
			t.Fatalf("Merge(%v,%v)=%v does not dominate both", a, b, m)
		}
		// Commutative.
		if !Merge(a, b).Equal(Merge(b, a)) {
			t.Fatalf("merge not commutative for %v, %v", a, b)
		}
		// Associative.
		if !Merge(Merge(a, b), c).Equal(Merge(a, Merge(b, c))) {
			t.Fatalf("merge not associative for %v, %v, %v", a, b, c)
		}
		// Idempotent.
		if !Merge(a, a).Equal(a) {
			t.Fatalf("merge not idempotent for %v", a)
		}
		// Least upper bound: merge adds nothing beyond max of each counter.
		for r, n := range m {
			if max := maxU64(a[r], b[r]); n != max {
				t.Fatalf("Merge(%v,%v)[%d]=%d, want %d", a, b, r, n, max)
			}
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestMergeDoesNotAliasInputs(t *testing.T) {
	a, b := vec(1, 1), vec(2, 1)
	m := Merge(a, b)
	m.Bump(1)
	if a.Counter(1) != 1 || b.Counter(1) != 0 {
		t.Fatal("Merge aliased its inputs")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := vec(1, 1)
	c := a.Clone()
	c.Bump(1)
	if a.Counter(1) != 1 {
		t.Fatal("Clone aliased its input")
	}
	var nilVec Vector
	if c := nilVec.Clone(); c == nil || len(c) != 0 {
		t.Fatal("Clone of nil vector should be empty non-nil vector")
	}
}

func TestTotal(t *testing.T) {
	if got := vec(1, 2, 2, 3).Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	if got := New().Total(); got != 0 {
		t.Fatalf("empty Total = %d, want 0", got)
	}
}

func TestString(t *testing.T) {
	v := Vector{3: 1, 1: 2, 9: 0}
	if got, want := v.String(), "{1:2 3:1}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := New().String(); got != "{}" {
		t.Fatalf("empty String = %q, want {}", got)
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{Equal: "equal", Dominates: "dominates", Dominated: "dominated", Concurrent: "concurrent"} {
		if o.String() != want {
			t.Errorf("Order(%d).String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if Order(99).String() == "" {
		t.Error("unknown order should still render")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(counts []uint8) bool {
		v := New()
		for i, n := range counts {
			if i >= 8 {
				break
			}
			if n > 0 {
				v[ids.ReplicaID(i)] = uint64(n)
			}
		}
		b, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var got Vector
		if err := got.UnmarshalBinary(b); err != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecCanonical(t *testing.T) {
	a := Vector{1: 2, 5: 9}
	b := Vector{5: 9, 1: 2, 7: 0}
	ab, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if string(ab) != string(bb) {
		t.Fatalf("equal vectors encode differently: %x vs %x", ab, bb)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeFrom(nil); err == nil {
		t.Error("DecodeFrom(nil): expected error")
	}
	if _, _, err := DecodeFrom([]byte{0, 0, 0, 5}); err == nil {
		t.Error("short entry list: expected error")
	}
	// Non-canonical: replica ids out of order.
	bad := []byte{0, 0, 0, 2,
		0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1,
	}
	if _, _, err := DecodeFrom(bad); err == nil {
		t.Error("non-canonical order: expected error")
	}
	var v Vector
	good, _ := vec(1, 1).MarshalBinary()
	if err := v.UnmarshalBinary(append(good, 0xff)); err == nil {
		t.Error("trailing bytes: expected error")
	}
}

func TestDecodeFromConsumesExactly(t *testing.T) {
	v := vec(1, 1, 2, 2)
	b, _ := v.MarshalBinary()
	b = append(b, 0xaa, 0xbb)
	got, n, err := DecodeFrom(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b)-2 {
		t.Fatalf("consumed %d, want %d", n, len(b)-2)
	}
	if !got.Equal(v) {
		t.Fatalf("decoded %v, want %v", got, v)
	}
}

func TestVersionVectorDetectsConcurrentUpdateScenario(t *testing.T) {
	// The paper's motivating scenario: two replicas of one file are updated
	// while partitioned; upon reconnecting, the version vectors must flag a
	// conflict rather than silently pick a winner.
	a := New().Bump(1) // initial update propagated everywhere
	b := a.Clone()
	a.Bump(1) // partition: host 1 updates its replica
	b.Bump(2) // ... while host 2 updates its replica
	if a.Compare(b) != Concurrent {
		t.Fatalf("partitioned updates not detected as concurrent: a=%v b=%v", a, b)
	}
	// After reconciliation installs a resolution, the merged+bumped vector
	// must dominate both histories.
	res := Merge(a, b).Bump(1)
	if !res.DominatesOrEqual(a) || !res.DominatesOrEqual(b) {
		t.Fatalf("resolution %v does not dominate %v and %v", res, a, b)
	}
}
