package physical

import (
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

// reopen remounts the volume replica from the raw device, as a restart
// after a crash would.
func reopen(t *testing.T, dev *disk.Device) *Layer {
	t.Helper()
	fs, err := ufs.Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(ufsvn.New(fs))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fid(issuer ids.ReplicaID, seq uint64) ids.FileID {
	return ids.FileID{Issuer: issuer, Seq: seq}
}

func TestJournalPersistsNVCAcrossReopen(t *testing.T) {
	l, dev := newLayer(t, 1)
	dirPath := RootPath()
	l.NoteNewVersion(dirPath, fid(2, 100), 2)
	l.NoteNewVersion(dirPath, fid(3, 200), 3)
	l.NoteNewVersion(dirPath, fid(2, 100), 2) // coalesces, Seen=2
	l.NoteNewVersion(dirPath, fid(2, 300), 2)
	l.DeferPending(fid(3, 200), 7) // backoff state must survive too
	l.DropPending(fid(2, 300))
	want := l.PendingVersions()
	if len(want) != 2 {
		t.Fatalf("precondition: %d pending, want 2", len(want))
	}

	got := reopen(t, dev).PendingVersions()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pending after reopen:\n got %+v\nwant %+v", got, want)
	}
	if got[1].Attempts != 1 || got[1].NotBefore != 7 {
		t.Fatalf("backoff state lost: %+v", got[1])
	}
	if got[0].Seen != 2 {
		t.Fatalf("coalesce count lost: %+v", got[0])
	}
}

func TestJournalTornTailDiscarded(t *testing.T) {
	l, dev := newLayer(t, 1)
	l.NoteNewVersion(RootPath(), fid(2, 100), 2)
	l.NoteNewVersion(RootPath(), fid(3, 200), 3)
	want := l.PendingVersions()

	// Simulate a crash that tore the final journal append: valid records
	// followed by a partial one.
	jf, err := l.root.Lookup(nvcjFileName)
	if err != nil {
		t.Fatal(err)
	}
	a, err := jf.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{nvcjOpUpsert, 0, 0, 0, 9} // record cut off mid-fid
	if _, err := jf.WriteAt(torn, int64(a.Size)); err != nil {
		t.Fatal(err)
	}

	got := reopen(t, dev).PendingVersions()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("torn tail must be discarded:\n got %+v\nwant %+v", got, want)
	}
}

func TestJournalGarbageIgnored(t *testing.T) {
	l, dev := newLayer(t, 1)
	l.NoteNewVersion(RootPath(), fid(2, 100), 2)
	jf, err := l.root.Lookup(nvcjFileName)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(jf, []byte("not a journal at all")); err != nil {
		t.Fatal(err)
	}
	if got := reopen(t, dev).PendingVersions(); len(got) != 0 {
		t.Fatalf("garbage journal must replay empty, got %+v", got)
	}
}

func TestJournalCompactionBoundsSize(t *testing.T) {
	l, _ := newLayer(t, 1)
	// Churn one entry far beyond the compaction threshold: the journal
	// must stay proportional to the (single-entry) cache, not the workload.
	for i := 0; i < 500; i++ {
		l.NoteNewVersion(RootPath(), fid(2, 100), 2)
		l.DropPending(fid(2, 100))
	}
	l.NoteNewVersion(RootPath(), fid(2, 100), 2)
	jf, err := l.root.Lookup(nvcjFileName)
	if err != nil {
		t.Fatal(err)
	}
	a, err := jf.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	if a.Size > 4096 {
		t.Fatalf("journal grew to %d bytes despite compaction", a.Size)
	}
	if errs := l.JournalErrors(); errs != 0 {
		t.Fatalf("JournalErrors = %d, want 0", errs)
	}
}

func TestJournalAppendFailureIsBestEffort(t *testing.T) {
	l, dev := newLayer(t, 1)
	dev.ScriptFault(disk.FaultWriteError)
	l.NoteNewVersion(RootPath(), fid(2, 100), 2)
	if got := len(l.PendingVersions()); got != 1 {
		t.Fatalf("in-memory note must survive a journal write failure, got %d entries", got)
	}
	if errs := l.JournalErrors(); errs == 0 {
		t.Fatal("failed journal append must be counted")
	}
}

func TestJournalCompactionCrashRecovery(t *testing.T) {
	l, dev := newLayer(t, 1)
	l.NoteNewVersion(RootPath(), fid(2, 100), 2)
	want := l.PendingVersions()
	// Leave a stale compaction shadow beside the intact journal, as a
	// crash between the shadow write and the rename would.
	sf, err := l.root.Create(nvcjFileName+suffixShadow, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(sf, []byte("half-written snapshot")); err != nil {
		t.Fatal(err)
	}

	nl := reopen(t, dev)
	if got := nl.PendingVersions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("pending after shadow cleanup:\n got %+v\nwant %+v", got, want)
	}
	if _, err := nl.root.Lookup(nvcjFileName + suffixShadow); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("compaction shadow must be discarded on open, lookup err = %v", err)
	}
}
