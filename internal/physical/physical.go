// Package physical implements the Ficus physical layer (paper §2.6, §3):
// the concept of a file replica.  One Layer manages one volume replica and
// stores every Ficus file replica in it as UFS files reached through the
// vnode interface, exactly as the paper prescribes:
//
//   - Each file replica is a UFS file plus an auxiliary file holding the
//     replication attributes (version vector, type, link count) that would
//     live in the inode "if we were to modify the UFS".
//
//   - Ficus directories are stored as UFS *files*, not UFS directories.  A
//     Ficus directory entry maps a name to a Ficus file handle, which is
//     then mapped to UFS storage by encoding the handle as a hexadecimal
//     string used as a UFS name (the dual mapping of §2.6).
//
//   - The on-disk organization closely parallels the logical name space —
//     each Ficus directory owns a UFS directory container holding its
//     entries file, its children's data and auxiliary files, and its child
//     directories' containers — so the UFS caches keep exploiting the
//     locality of reference the paper's performance argument rests on.
//
// The layer also implements the update-side machinery of §3.2: version
// vectors bumped on every local mutation, a new-version cache fed by update
// notifications, a single-file atomic commit (shadow file + atomic rename)
// used by update propagation, and a conflict log where concurrent file
// updates are "detected and reported to the owner".
package physical

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// UFS names inside a directory container.
const (
	dirFileName  = "dir"  // the Ficus directory contents file
	dirAttrName  = "attr" // the directory's own auxiliary attribute file
	metaFileName = "meta" // volume-replica metadata, at the store root only
)

// Container-member name prefixes; the rest of the name is the hexadecimal
// file id (the paper's "encoding the Ficus file handle into a hexadecimal
// string used by the UFS as a pathname").
const (
	prefixDir      = "D" // child directory container (UFS directory)
	prefixData     = "F" // child file data (UFS file)
	prefixAux      = "A" // child file auxiliary attributes (UFS file)
	prefixSum      = "C" // child file block-checksum sidecar (UFS file)
	prefixManifest = "M" // child file block-manifest sidecar (UFS file)
	suffixShadow   = ".shadow"
)

// Errors specific to the physical layer.
var (
	// ErrNotStored reports a directory entry whose file this volume replica
	// does not store ("a volume replica ... need not store a replica of any
	// particular file", §4.1).  The logical layer reacts by trying another
	// replica.
	ErrNotStored = errors.New("physical: file not stored in this volume replica")
	// ErrNotFicus reports a store that has no volume-replica metadata.
	ErrNotFicus = errors.New("physical: store holds no ficus volume replica")
)

// Layer is one volume replica's physical layer.
type Layer struct {
	mu      sync.Mutex
	store   vnode.VFS
	root    vnode.Vnode // store root (holds meta + root container)
	vol     ids.VolumeHandle
	replica ids.ReplicaID
	seq     *ids.Sequencer

	nvc        map[nvcKey]NewVersion
	conflicts  []Conflict
	opens      map[ids.FileID]int
	openTotal  uint64
	daemonTick uint64 // virtual clock, one tick per propagation pass

	// Integrity state (sidecar.go, quarantine.go, scrub.go).  The quarantine
	// set is in-memory only: after a restart the scrubber re-detects what is
	// still corrupt, so durability would buy nothing.
	quar  map[ids.FileID]QuarEntry
	integ IntegrityStats

	// Durable new-version cache journal (journal.go).
	nvcj        vnode.Vnode
	nvcjSize    uint64
	nvcjRecs    int
	journalErrs uint64

	// Content-addressed block layer (blockstore.go, delta.go).  Refcounts
	// are in-memory, rebuilt from the on-disk manifests at every Open.
	pool      vnode.Vnode
	blockRefs map[BlockAddr]int
	bstats    BlockStats
}

type nvcKey struct {
	file ids.FileID
}

// NewVersion is one new-version cache entry: a remote replica announced a
// newer version of file; the propagation daemon may fetch it from Origin.
type NewVersion struct {
	File   ids.FileID
	Dir    []ids.FileID // fid path of the containing directory from the root
	Origin ids.ReplicaID
	Seen   int // how many times re-announced (bursty updates coalesce here)

	// Retry bookkeeping kept by the propagation daemon: a flapping or
	// partitioned origin degrades gracefully instead of being polled on
	// every pass.
	Attempts  int    // failed propagation attempts so far
	NotBefore uint64 // earliest daemon tick for the next attempt (backoff)
}

// Conflict is a detected concurrent-update conflict on a regular file,
// recorded for the owner (paper: "conflicting updates to ordinary files are
// detected and reported to the owner").
type Conflict struct {
	File     ids.FileID
	Dir      []ids.FileID
	LocalVV  vv.Vector
	RemoteVV vv.Vector
	Remote   ids.ReplicaID
	Note     string
}

// Format initializes a fresh volume replica on an empty store and returns
// its layer.  The root directory (well-known file id) is created; every
// volume replica must store the root (§4.1).
func Format(store vnode.VFS, vol ids.VolumeHandle, replica ids.ReplicaID) (*Layer, error) {
	root, err := store.Root()
	if err != nil {
		return nil, err
	}
	l := &Layer{
		store:     store,
		root:      root,
		vol:       vol,
		replica:   replica,
		seq:       ids.NewSequencer(replica, 2),
		nvc:       make(map[nvcKey]NewVersion),
		opens:     make(map[ids.FileID]int),
		quar:      make(map[ids.FileID]QuarEntry),
		blockRefs: make(map[BlockAddr]int),
	}
	if err := l.writeMetaLocked(); err != nil {
		return nil, err
	}
	if err := l.initJournalLocked(); err != nil {
		return nil, err
	}
	// Root container with empty directory and fresh attributes.
	cont, err := root.Mkdir(prefixDir + ids.RootFileID.String())
	if err != nil {
		return nil, err
	}
	if err := l.writeDirFileLocked(cont, nil); err != nil {
		return nil, err
	}
	// The fresh root has performed no updates: an empty version vector.
	// (A creation bump here would make a newly added replica's root look
	// more recent than its seed after the histories merge.)
	rootAux := Aux{Type: KDir, Nlink: 1, VV: vv.New()}
	if err := writeAuxFile(cont, dirAttrName, &rootAux); err != nil {
		return nil, err
	}
	return l, nil
}

// Open mounts an existing volume replica, running crash recovery (shadow
// cleanup) and replaying the durable new-version cache journal before
// returning.
func Open(store vnode.VFS) (*Layer, error) {
	root, err := store.Root()
	if err != nil {
		return nil, err
	}
	l := &Layer{
		store:     store,
		root:      root,
		nvc:       make(map[nvcKey]NewVersion),
		opens:     make(map[ids.FileID]int),
		quar:      make(map[ids.FileID]QuarEntry),
		blockRefs: make(map[BlockAddr]int),
	}
	if err := l.readMetaLocked(); err != nil {
		return nil, err
	}
	if err := l.openJournalLocked(); err != nil {
		return nil, err
	}
	if err := l.Recover(); err != nil {
		return nil, err
	}
	if err := l.recoverBlocks(); err != nil {
		return nil, err
	}
	return l, nil
}

// Volume returns the logical volume this replica belongs to.
func (l *Layer) Volume() ids.VolumeHandle { return l.vol }

// Replica returns this volume replica's id.
func (l *Layer) Replica() ids.ReplicaID { return l.replica }

// VolumeReplica returns the fully qualified volume replica handle.
func (l *Layer) VolumeReplica() ids.VolumeReplicaHandle {
	return ids.VolumeReplicaHandle{Vol: l.vol, Replica: l.replica}
}

// Store exposes the backing vnode file system (for experiments).
func (l *Layer) Store() vnode.VFS { return l.store }

// metadata file: "<vol>\n<replica-hex>\n<last-seq-hex>\n"
func (l *Layer) writeMetaLocked() error {
	data := fmt.Sprintf("%s\n%08x\n%016x\n", l.vol, uint32(l.replica), l.seq.Last())
	f, err := l.root.Create(metaFileName, false)
	if err != nil {
		return err
	}
	return vnode.WriteFile(f, []byte(data))
}

func (l *Layer) readMetaLocked() error {
	f, err := l.root.Lookup(metaFileName)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrNotFicus, err)
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return err
	}
	var volStr string
	var rep uint32
	var last uint64
	if _, err := fmt.Sscanf(string(data), "%s\n%x\n%x\n", &volStr, &rep, &last); err != nil {
		return fmt.Errorf("%w: bad meta: %w", ErrNotFicus, err)
	}
	vh, err := ids.ParseVolumeHandle(volStr)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrNotFicus, err)
	}
	l.vol = vh
	l.replica = ids.ReplicaID(rep)
	l.seq = ids.NewSequencer(l.replica, 2)
	l.seq.Resume(last)
	return nil
}

// nextID allocates a fresh file/entry id and persists the sequencer so ids
// are never reissued after a crash.
func (l *Layer) nextIDLocked() (ids.FileID, error) {
	id := l.seq.Next()
	if err := l.writeMetaLocked(); err != nil {
		return ids.FileID{}, err
	}
	return id, nil
}

// rootContainer returns the UFS directory containing the volume root's
// storage.
func (l *Layer) rootContainer() (vnode.Vnode, error) {
	return l.root.Lookup(prefixDir + ids.RootFileID.String())
}

// containerOf walks a full fid path (beginning with the root fid) down to
// the container of the named directory.
func (l *Layer) containerOf(dirPath []ids.FileID) (vnode.Vnode, error) {
	c := l.root
	for _, fid := range dirPath {
		next, err := lookupFollow(l.root, c, prefixDir+fid.String())
		if err != nil {
			if vnode.AsErrno(err) == vnode.ENOENT {
				return nil, ErrNotStored
			}
			return nil, err
		}
		c = next
	}
	return c, nil
}

// lookupFollow resolves name in dir, following one level of UFS symlink
// aliasing (used for extra names of directories and cross-directory hard
// links; targets are slash paths from the store root).
func lookupFollow(storeRoot, dir vnode.Vnode, name string) (vnode.Vnode, error) {
	v, err := dir.Lookup(name)
	if err != nil {
		return nil, err
	}
	a, err := v.Getattr()
	if err != nil {
		return nil, err
	}
	if a.Type != vnode.VLnk {
		return v, nil
	}
	target, err := v.Readlink()
	if err != nil {
		return nil, err
	}
	return vnode.Walk(storeRoot, target)
}
