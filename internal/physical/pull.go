package physical

import (
	"errors"

	"repro/internal/ids"
	"repro/internal/vv"
)

// Conditional batched pulls (the throughput path of update propagation).
//
// The paper's propagation daemon pulls one announced version at a time,
// costing a FileInfo and a FileData round trip per file.  PullBatch folds
// both halves of the version-vector protocol into the serving side: the
// puller ships its local vector along with each request, and the server
// answers per entry with exactly one of {data, stale, concurrent,
// not-stored} — file bytes cross the wire only when the remote version
// actually dominates.

// PullStatus classifies one entry of a batched conditional pull.
type PullStatus byte

// Per-entry outcomes of a conditional pull.
const (
	// PullData: the remote version dominates (or the puller stores no
	// copy); Data/Aux/Size carry the full version to install.
	PullData PullStatus = iota + 1
	// PullStale: the puller's vector dominates or equals — stale news,
	// nothing shipped.
	PullStale
	// PullConcurrent: the histories are concurrent; RemoteVV carries the
	// remote vector so the puller can report the conflict to the owner.
	PullConcurrent
	// PullNotStored: this replica stores no copy of the file.
	PullNotStored
	// PullIsDir: the entry names a directory; directories propagate by
	// operation replay (directory reconciliation), never by copy.
	PullIsDir
	// PullError: the attempt failed on the serving side; Err explains.
	PullError
)

// String renders the status.
func (s PullStatus) String() string {
	switch s {
	case PullData:
		return "data"
	case PullStale:
		return "stale"
	case PullConcurrent:
		return "concurrent"
	case PullNotStored:
		return "not-stored"
	case PullIsDir:
		return "is-dir"
	case PullError:
		return "error"
	default:
		return "invalid"
	}
}

// PullRequest asks for one file's new version, conditional on the puller's
// current vector: the server ships data only if its version dominates
// LocalVV.  HasLocal false means the puller stores no copy (ship
// unconditionally).
type PullRequest struct {
	Dir      []ids.FileID
	File     ids.FileID
	LocalVV  vv.Vector
	HasLocal bool
}

// PullResult is the per-entry answer to a PullRequest.
type PullResult struct {
	Status   PullStatus
	Data     []byte    // PullData only
	Aux      Aux       // PullData (install attributes) and PullIsDir (kind)
	Size     uint64    // PullData only
	RemoteVV vv.Vector // PullConcurrent only
	Err      error     // PullError only

	// Sum carries the serving replica's sealed checksums for exactly the
	// shipped version (PullData only; nil when the server cannot vouch).
	// Receivers verify the payload against it before installing, so damage
	// in flight — or a serving path whose verification was bypassed — is
	// rejected rather than committed.
	Sum *Checksums

	// Delta answers (PullBatchDelta, delta.go): the version as a block
	// manifest plus only the blocks absent from the puller's advertised
	// holdings.  Data is nil when Manifest is set; the puller reassembles
	// via InstallFileVersionDelta.
	Manifest *BlockManifest
	Missing  []Block
}

// PullBatch answers a batch of conditional pull requests against this
// replica.  Failures are strictly per-entry (PullError); the call itself
// never fails, so one unreadable file cannot starve the rest of a batch.
// *physical.Layer and repl.Client both provide this, which is what lets
// the propagation pipeline batch co-resident and remote origins alike.
func (l *Layer) PullBatch(reqs []PullRequest) ([]PullResult, error) {
	out := make([]PullResult, len(reqs))
	for i := range reqs {
		out[i] = l.pullOne(&reqs[i])
	}
	return out, nil
}

func (l *Layer) pullOne(req *PullRequest) PullResult {
	st, err := l.FileInfo(req.Dir, req.File)
	if err != nil {
		if errors.Is(err, ErrNotStored) {
			return PullResult{Status: PullNotStored}
		}
		return PullResult{Status: PullError, Err: err}
	}
	if st.Aux.Type.IsDir() {
		return PullResult{Status: PullIsDir, Aux: st.Aux}
	}
	if req.HasLocal {
		switch req.LocalVV.Compare(st.Aux.VV) {
		case vv.Dominated:
			// Remote (this side) dominates: ship.
		case vv.Concurrent:
			return PullResult{Status: PullConcurrent, RemoteVV: st.Aux.VV.Clone()}
		default:
			return PullResult{Status: PullStale}
		}
	}
	// Ship the version that exists NOW: FileData re-reads the attributes
	// with the data, so a file that advanced since the comparison above is
	// shipped whole under its own (still dominating) vector.
	data, dst, err := l.FileData(req.Dir, req.File)
	if err != nil {
		if errors.Is(err, ErrNotStored) {
			return PullResult{Status: PullNotStored}
		}
		return PullResult{Status: PullError, Err: err}
	}
	// Ship the sealed checksums alongside the data when the sidecar vouches
	// for exactly this version, so the puller can verify before installing.
	sum := l.FileChecksums(req.Dir, req.File, dst.Aux.VV)
	return PullResult{Status: PullData, Data: data, Aux: dst.Aux, Size: dst.Size, Sum: sum}
}
