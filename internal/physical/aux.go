package physical

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ids"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// Kind is a Ficus file kind, stored in the auxiliary attribute file.
type Kind byte

// Ficus file kinds.  KGraft is the special directory type marking a graft
// point (paper §4.3): "a graft point is a special file type used to
// indicate that a (specific) volume is to be transparently grafted at this
// point in the name space."
const (
	KFile Kind = iota + 1
	KDir
	KSymlink
	KGraft
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KFile:
		return "file"
	case KDir:
		return "dir"
	case KSymlink:
		return "symlink"
	case KGraft:
		return "graft"
	default:
		return fmt.Sprintf("Kind(%d)", byte(k))
	}
}

// IsDir reports whether the kind is stored as a directory container
// (directories and graft points).
func (k Kind) IsDir() bool { return k == KDir || k == KGraft }

// Aux is the auxiliary replication attribute block of one file replica —
// the data the paper would put in the inode "if we were to modify the UFS"
// (§2.6).
type Aux struct {
	Type  Kind
	Nlink uint32
	VV    vv.Vector
	// GraftVol is set for graft points: the volume grafted here.  The
	// grafted volume is "fixed when the graft point is created" (§4.3).
	GraftVol ids.VolumeHandle
}

// encode: kind(1) nlink(4) graftAlloc(4) graftVol(4) vv(...)
func (a *Aux) encode() []byte {
	out := make([]byte, 0, 16+12*len(a.VV))
	out = append(out, byte(a.Type))
	out = binary.BigEndian.AppendUint32(out, a.Nlink)
	out = binary.BigEndian.AppendUint32(out, uint32(a.GraftVol.Allocator))
	out = binary.BigEndian.AppendUint32(out, uint32(a.GraftVol.Volume))
	return a.VV.AppendBinary(out)
}

func decodeAux(p []byte) (Aux, error) {
	if len(p) < 13 {
		return Aux{}, fmt.Errorf("physical: short aux file: %d bytes", len(p))
	}
	a := Aux{
		Type:  Kind(p[0]),
		Nlink: binary.BigEndian.Uint32(p[1:]),
		GraftVol: ids.VolumeHandle{
			Allocator: ids.AllocatorID(binary.BigEndian.Uint32(p[5:])),
			Volume:    ids.VolumeID(binary.BigEndian.Uint32(p[9:])),
		},
	}
	vec, _, err := vv.DecodeFrom(p[13:])
	if err != nil {
		return Aux{}, err
	}
	// Bytes past the vector are padding: aux files are written as one
	// fixed-size block so an update is a single atomic block overwrite.
	a.VV = vec
	return a, nil
}

// auxFileSize is the fixed on-disk size of an auxiliary attribute file.
// Keeping the size constant makes every aux update a single-block in-place
// overwrite — atomic on the device — so crash recovery never sees a torn
// attribute block.  It bounds the version vector at ~40 replica entries,
// far beyond the experiments' replication factors.
const auxFileSize = 512

func auxBytes(a *Aux) ([]byte, error) {
	enc := a.encode()
	if len(enc) > auxFileSize {
		return nil, fmt.Errorf("physical: aux block overflow: %d bytes (version vector too wide)", len(enc))
	}
	out := make([]byte, auxFileSize)
	copy(out, enc)
	return out, nil
}

// writeAuxFile stores a into the named UFS file in container dir as one
// atomic fixed-size overwrite.
func writeAuxFile(dir vnode.Vnode, name string, a *Aux) error {
	f, err := dir.Create(name, false)
	if err != nil {
		return err
	}
	data, err := auxBytes(a)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, 0)
	return err
}

// writeAuxVnode overwrites an already-resolved aux file vnode.
func writeAuxVnode(f vnode.Vnode, a *Aux) error {
	data, err := auxBytes(a)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, 0)
	return err
}

// readAuxFile loads the named aux file from container dir.  An empty aux
// file (a crash between creation and the first overwrite) reads as "not
// stored": the file replica never finished materializing.
func readAuxFile(dir vnode.Vnode, name string) (Aux, error) {
	f, err := dir.Lookup(name)
	if err != nil {
		return Aux{}, err
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return Aux{}, err
	}
	if len(data) == 0 {
		return Aux{}, ErrNotStored
	}
	return decodeAux(data)
}
