package physical

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vntest"
	"repro/internal/vv"
)

var testVol = ids.VolumeHandle{Allocator: 10, Volume: 1}

func newLayer(t *testing.T, replica ids.ReplicaID) (*Layer, *disk.Device) {
	t.Helper()
	dev := disk.New(8192)
	fs, err := ufs.Mkfs(dev, 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Format(ufsvn.New(fs), testVol, replica)
	if err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func TestConformance(t *testing.T) {
	vntest.Run(t, vntest.Config{SupportsHardLinks: true, MaxName: SubstrateMaxName - 1},
		func(t *testing.T) vnode.VFS {
			l, _ := newLayer(t, 1)
			return l
		})
}

func TestFormatAndReopen(t *testing.T) {
	dev := disk.New(8192)
	fs, err := ufs.Mkfs(dev, 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := ufsvn.New(fs)
	l, err := Format(store, testVol, 3)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := l.Root()
	f, err := root.Create("keep", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	id1, err := l.NextID()
	if err != nil {
		t.Fatal(err)
	}

	// Remount from the same device.
	fs2, err := ufs.Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Open(ufsvn.New(fs2))
	if err != nil {
		t.Fatal(err)
	}
	if l2.Volume() != testVol || l2.Replica() != 3 {
		t.Fatalf("identity lost: %v replica %d", l2.Volume(), l2.Replica())
	}
	root2, _ := l2.Root()
	g, err := root2.Lookup("keep")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(g)
	if err != nil || string(got) != "persisted" {
		t.Fatalf("%q, %v", got, err)
	}
	// Sequencer must resume past previously issued ids.
	id2, err := l2.NextID()
	if err != nil {
		t.Fatal(err)
	}
	if !eidLess(id1, id2) {
		t.Fatalf("sequencer reissued: %v then %v", id1, id2)
	}
	if l2.VolumeReplica().Replica != 3 {
		t.Fatal("volume replica handle wrong")
	}
}

func TestOpenOnNonFicusStoreFails(t *testing.T) {
	fs, _ := ufs.Mkfs(disk.New(1024), 256, nil)
	if _, err := Open(ufsvn.New(fs)); !errors.Is(err, ErrNotFicus) {
		t.Fatalf("err = %v, want ErrNotFicus", err)
	}
}

func TestVersionVectorBumpsOnMutation(t *testing.T) {
	l, _ := newLayer(t, 7)
	root, _ := l.Root()
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := l.FileInfo(RootPath(), mustFid(t, f))
	if err != nil {
		t.Fatal(err)
	}
	v0 := st.Aux.VV.Counter(7)
	if v0 == 0 {
		t.Fatal("create did not bump the creating replica's counter")
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	st, _ = l.FileInfo(RootPath(), mustFid(t, f))
	if got := st.Aux.VV.Counter(7); got != v0+2 {
		t.Fatalf("vv counter %d, want %d", got, v0+2)
	}
	// Directory VV bumps on entry changes.
	ds, err := l.DirEntries(RootPath())
	if err != nil {
		t.Fatal(err)
	}
	dirV := ds.VV.Counter(7)
	if dirV == 0 {
		t.Fatal("directory vv never bumped")
	}
	if err := root.Remove("f"); err != nil {
		t.Fatal(err)
	}
	ds, _ = l.DirEntries(RootPath())
	if ds.VV.Counter(7) != dirV+1 {
		t.Fatalf("remove did not bump dir vv: %d -> %d", dirV, ds.VV.Counter(7))
	}
}

func mustFid(t *testing.T, v vnode.Vnode) ids.FileID {
	t.Helper()
	a, err := v.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	fid, err := ids.ParseFileID(a.FileID)
	if err != nil {
		t.Fatal(err)
	}
	return fid
}

func TestRemoveKeepsTombstone(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	if _, err := root.Create("f", true); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove("f"); err != nil {
		t.Fatal(err)
	}
	ds, err := l.DirEntries(RootPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entries) != 1 || ds.Entries[0].Live() {
		t.Fatalf("tombstone missing: %+v", ds.Entries)
	}
	// Client view hides the tombstone.
	ents, _ := root.Readdir()
	if len(ents) != 0 {
		t.Fatalf("tombstone visible: %v", ents)
	}
	// Storage reclaimed.
	if _, err := l.FileInfo(RootPath(), ds.Entries[0].Child); !errors.Is(err, ErrNotStored) {
		t.Fatalf("storage not reclaimed: %v", err)
	}
}

func TestHardLinkSharesStorage(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("a", true)
	vnode.WriteFile(f, []byte("shared"))
	if err := root.Link("b", f); err != nil {
		t.Fatal(err)
	}
	st, err := l.FileInfo(RootPath(), mustFid(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if st.Aux.Nlink != 2 {
		t.Fatalf("nlink %d", st.Aux.Nlink)
	}
	if err := root.Remove("a"); err != nil {
		t.Fatal(err)
	}
	b, err := root.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(b)
	if err != nil || string(got) != "shared" {
		t.Fatalf("%q, %v", got, err)
	}
	if err := root.Remove("b"); err != nil {
		t.Fatal(err)
	}
	ds, _ := l.DirEntries(RootPath())
	for _, e := range ds.Entries {
		if e.Live() {
			t.Fatalf("live entry after removing both names: %+v", e)
		}
	}
}

func TestCrossDirectoryLinkRejected(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	d, _ := root.Mkdir("d")
	f, _ := root.Create("f", true)
	if err := d.Link("x", f); vnode.AsErrno(err) != vnode.EXDEV {
		t.Fatalf("cross-dir link: %v", err)
	}
}

func TestRenameAcrossDirsMovesStorage(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	d1, _ := root.Mkdir("d1")
	d2, _ := root.Mkdir("d2")
	f, _ := d1.Create("f", true)
	vnode.WriteFile(f, []byte("moving"))
	if err := d1.Rename("f", d2, "g"); err != nil {
		t.Fatal(err)
	}
	g, err := d2.Lookup("g")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(g)
	if err != nil || string(got) != "moving" {
		t.Fatalf("%q, %v", got, err)
	}
	// Subdirectory rename moves the container too.
	sub, _ := d1.Mkdir("sub")
	if _, err := sub.Create("inner", true); err != nil {
		t.Fatal(err)
	}
	if err := d1.Rename("sub", d2, "sub2"); err != nil {
		t.Fatal(err)
	}
	inner, err := vnode.Walk(root, "d2/sub2/inner")
	if err != nil {
		t.Fatalf("walk after dir rename: %v", err)
	}
	_ = inner
}

func TestOpenEncodingRoundTrip(t *testing.T) {
	name := "some-file.txt"
	s := EncodeOpenLookup(true, vnode.OpenRead|vnode.OpenWrite, testVol, name)
	if !IsEncodedLookup(s) {
		t.Fatal("not recognized")
	}
	open, flags, issuer, got, err := DecodeOpenLookup(s)
	if err != nil || !open || flags != (vnode.OpenRead|vnode.OpenWrite) || issuer != testVol || got != name {
		t.Fatalf("decode: %v %v %v %q %v", open, flags, issuer, got, err)
	}
	s2 := EncodeOpenLookup(false, vnode.OpenRead, testVol, name)
	open, _, _, _, err = DecodeOpenLookup(s2)
	if err != nil || open {
		t.Fatalf("close decode: %v %v", open, err)
	}
	// Fixed overhead is the same for open and close, and the surviving
	// name budget is "about 200" (paper §2.3 fn2).
	if len(s2)-len(name) != EncOverhead || len(s)-len(name) != EncOverhead {
		t.Fatalf("overhead %d/%d, want %d", len(s)-len(name), len(s2)-len(name), EncOverhead)
	}
	if MaxEncodedName < 190 || MaxEncodedName > 220 {
		t.Fatalf("MaxEncodedName = %d, want about 200", MaxEncodedName)
	}
	if _, _, _, _, err := DecodeOpenLookup("plain-name"); err == nil {
		t.Fatal("decode of plain name succeeded")
	}
	if _, _, _, _, err := DecodeOpenLookup(encPrefix + "bogus"); err == nil {
		t.Fatal("decode of garbage succeeded")
	}
}

func TestOpenOverLookupCountsOpens(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	fid := mustFid(t, f)
	if l.OpenCount(fid) != 0 {
		t.Fatal("fresh file has opens")
	}
	// Open via encoded lookup (as the logical layer does through NFS).
	v, err := root.Lookup(EncodeOpenLookup(true, vnode.OpenRead, testVol, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Handle() != f.Handle() {
		t.Fatal("encoded lookup returned a different vnode")
	}
	if l.OpenCount(fid) != 1 || l.OpenFiles() != 1 {
		t.Fatalf("open count %d", l.OpenCount(fid))
	}
	if _, err := root.Lookup(EncodeOpenLookup(false, vnode.OpenRead, testVol, "f")); err != nil {
		t.Fatal(err)
	}
	if l.OpenCount(fid) != 0 {
		t.Fatalf("close did not decrement: %d", l.OpenCount(fid))
	}
	if l.TotalOpens() != 1 {
		t.Fatalf("total opens %d", l.TotalOpens())
	}
	// Direct open/close (co-resident case) hits the same bookkeeping.
	f.Open(vnode.OpenWrite)
	if l.OpenCount(fid) != 1 {
		t.Fatal("direct open not counted")
	}
	f.Close(vnode.OpenWrite)
	if l.OpenCount(fid) != 0 {
		t.Fatal("direct close not counted")
	}
}

func TestReservedNamesRejected(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	if _, err := root.Create(encPrefix+"smuggled", true); vnode.AsErrno(err) != vnode.EINVAL {
		t.Fatalf("reserved prefix accepted: %v", err)
	}
}

func TestInstallFileVersionShadowCommit(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("old version"))
	fid := mustFid(t, f)
	// A remote version that has seen our updates and advanced: dominates.
	st0, _ := l.FileInfo(RootPath(), fid)
	newVV := st0.Aux.VV.Clone().Bump(2).Bump(2)
	if err := l.InstallFileVersion(RootPath(), fid, KFile, []byte("new version"), newVV, 1); err != nil {
		t.Fatal(err)
	}
	got, err := vnode.ReadFile(f)
	if err != nil || string(got) != "new version" {
		t.Fatalf("%q, %v", got, err)
	}
	st, _ := l.FileInfo(RootPath(), fid)
	if !st.Aux.VV.Equal(newVV) {
		t.Fatalf("vv %v, want %v", st.Aux.VV, newVV)
	}
}

func TestInstallCreatesMissingStorage(t *testing.T) {
	l, _ := newLayer(t, 1)
	fid := ids.FileID{Issuer: 9, Seq: 77}
	if err := l.InstallFileVersion(RootPath(), fid, KFile, []byte("fresh"), vv.New().Bump(9), 1); err != nil {
		t.Fatal(err)
	}
	data, st, err := l.FileData(RootPath(), fid)
	if err != nil || string(data) != "fresh" || st.Aux.Type != KFile {
		t.Fatalf("%q, %+v, %v", data, st, err)
	}
}

// TestShadowCommitCrashSafety drives the device to crash after every
// possible write count during an install and verifies the §3.2 fn5
// invariant: after recovery the replica holds either the complete old or
// the complete new version — never a mix, never nothing.  After every
// crash point the recovered volume must also pass the Ficus-level Check
// (no shadow litter, no orphaned storage) and the UFS fsck.
func TestShadowCommitCrashSafety(t *testing.T) {
	oldData := bytes.Repeat([]byte("OLD!"), 2048) // 2 blocks
	newData := bytes.Repeat([]byte("new?"), 3072) // 3 blocks

	setup := func() (*disk.Device, *Layer, ids.FileID) {
		dev := disk.New(8192)
		fs, err := ufs.Mkfs(dev, 2048, nil)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Format(ufsvn.New(fs), testVol, 1)
		if err != nil {
			t.Fatal(err)
		}
		root, _ := l.Root()
		f, _ := root.Create("f", true)
		if err := vnode.WriteFile(f, oldData); err != nil {
			t.Fatal(err)
		}
		return dev, l, mustFid(t, f)
	}

	// Dry run: count the device writes a full install takes, so the sweep
	// below covers every crash offset through the final write (crashAfter ==
	// totalWrites is the no-crash control).
	// The propagated version has seen the local updates and advanced at
	// replica 2, so it dominates the stored vector.
	propagatedVV := func(l *Layer, fid ids.FileID) vv.Vector {
		st, err := l.FileInfo(RootPath(), fid)
		if err != nil {
			t.Fatal(err)
		}
		return st.Aux.VV.Clone().Bump(2)
	}

	dev, l, fid := setup()
	before := dev.Stats().Writes
	if err := l.InstallFileVersion(RootPath(), fid, KFile, newData, propagatedVV(l, fid), 1); err != nil {
		t.Fatal(err)
	}
	totalWrites := int(dev.Stats().Writes - before)
	if totalWrites < 4 {
		t.Fatalf("install took only %d writes; fault sweep would be vacuous", totalWrites)
	}

	for crashAfter := 0; crashAfter <= totalWrites; crashAfter++ {
		dev, l, fid := setup()
		newVV := propagatedVV(l, fid)
		dev.FaultAfterWrites(crashAfter)
		installErr := l.InstallFileVersion(RootPath(), fid, KFile, newData, newVV, 1)
		crashed := dev.Faulted()
		dev.ClearFault()

		// Reboot: fresh mount + recovery.
		fs2, err := ufs.Mount(dev, nil)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Open(ufsvn.New(fs2))
		if err != nil {
			t.Fatalf("crashAfter=%d: recovery mount: %v", crashAfter, err)
		}
		data, _, err := l2.FileData(RootPath(), fid)
		if err != nil {
			t.Fatalf("crashAfter=%d: file lost: %v", crashAfter, err)
		}
		oldOK := bytes.Equal(data, oldData)
		newOK := bytes.Equal(data, newData)
		if !oldOK && !newOK {
			t.Fatalf("crashAfter=%d (crashed=%v, installErr=%v): torn file: %d bytes", crashAfter, crashed, installErr, len(data))
		}
		if installErr == nil && !crashed && !newOK {
			t.Fatalf("crashAfter=%d: install reported success but old data survives", crashAfter)
		}
		// The recovered replica must satisfy every Ficus invariant,
		// including "no leftover shadow files".
		if problems, err := l2.Check(); err != nil {
			t.Fatalf("crashAfter=%d: ficus check: %v", crashAfter, err)
		} else if len(problems) != 0 {
			t.Fatalf("crashAfter=%d: ficus check found: %v", crashAfter, problems)
		}
		// And the substrate itself must pass fsck.
		if problems, err := fs2.Check(); err != nil {
			t.Fatalf("crashAfter=%d: fsck: %v", crashAfter, err)
		} else if len(problems) != 0 {
			t.Fatalf("crashAfter=%d: fsck found: %v", crashAfter, problems)
		}
	}
}

func TestNewVersionCacheCoalesces(t *testing.T) {
	l, _ := newLayer(t, 1)
	fid := ids.FileID{Issuer: 2, Seq: 5}
	l.NoteNewVersion(RootPath(), fid, 2)
	l.NoteNewVersion(RootPath(), fid, 2)
	l.NoteNewVersion(RootPath(), fid, 3) // later announcement wins as origin
	pend := l.PendingVersions()
	if len(pend) != 1 {
		t.Fatalf("%d entries, want 1 (coalesced)", len(pend))
	}
	if pend[0].Seen != 3 || pend[0].Origin != 3 || pend[0].File != fid {
		t.Fatalf("entry %+v", pend[0])
	}
	l.DropPending(fid)
	if len(l.PendingVersions()) != 0 {
		t.Fatal("DropPending failed")
	}
}

func TestConflictLog(t *testing.T) {
	l, _ := newLayer(t, 1)
	c := Conflict{File: ids.FileID{Issuer: 1, Seq: 9}, Note: "test"}
	l.ReportConflict(c)
	got := l.Conflicts()
	if len(got) != 1 || got[0].Note != "test" {
		t.Fatalf("%+v", got)
	}
	l.ClearConflicts()
	if len(l.Conflicts()) != 0 {
		t.Fatal("ClearConflicts failed")
	}
}

func TestResolveHandleStability(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	d, _ := root.Mkdir("d")
	f, _ := d.Create("f", true)
	for _, v := range []vnode.Vnode{root, d, f} {
		got, err := l.Resolve(v.Handle())
		if err != nil {
			t.Fatalf("resolve %q: %v", v.Handle(), err)
		}
		if got.Handle() != v.Handle() {
			t.Fatalf("handle changed: %q -> %q", v.Handle(), got.Handle())
		}
	}
	if _, err := l.Resolve("garbage"); vnode.AsErrno(err) != vnode.ESTALE {
		t.Fatalf("garbage handle: %v", err)
	}
	if err := d.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Resolve(f.Handle()); err == nil {
		t.Fatal("stale handle resolved")
	}
}

func TestDirEntriesOfUnstoredDir(t *testing.T) {
	l, _ := newLayer(t, 1)
	bogus := []ids.FileID{ids.RootFileID, {Issuer: 5, Seq: 123}}
	if _, err := l.DirEntries(bogus); !errors.Is(err, ErrNotStored) {
		t.Fatalf("err = %v, want ErrNotStored", err)
	}
	if l.HasDir(bogus) {
		t.Fatal("HasDir true for unstored dir")
	}
	if !l.HasDir(RootPath()) {
		t.Fatal("HasDir false for root")
	}
}

func TestEnsureDirStored(t *testing.T) {
	l, _ := newLayer(t, 1)
	fid := ids.FileID{Issuer: 4, Seq: 50}
	aux := Aux{Type: KDir}
	if err := l.EnsureDirStored(RootPath(), fid, aux); err != nil {
		t.Fatal(err)
	}
	path := append(RootPath(), fid)
	if !l.HasDir(path) {
		t.Fatal("dir not created")
	}
	ds, err := l.DirEntries(path)
	if err != nil || len(ds.Entries) != 0 {
		t.Fatalf("%+v, %v", ds, err)
	}
	// Idempotent.
	if err := l.EnsureDirStored(RootPath(), fid, aux); err != nil {
		t.Fatal(err)
	}
}
