package physical

import (
	"errors"
	"io"
	"strings"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// pvnode is the physical layer's vnode: one Ficus file replica.  It locates
// its storage by a fid path from the volume root (dirPath is the containing
// directory's full fid path, always starting with the root fid), preserving
// the parallel between the logical name space and on-disk layout (§2.6).
type pvnode struct {
	l       *Layer
	fid     ids.FileID
	kind    Kind
	dirPath []ids.FileID // fid path of the containing directory; nil for the root itself
}

// Root returns the volume root directory vnode.
func (l *Layer) Root() (vnode.Vnode, error) {
	return &pvnode{l: l, fid: ids.RootFileID, kind: KDir}, nil
}

// Sync is a no-op: the substrate is write-through.
func (l *Layer) Sync() error { return nil }

// selfPath is the fid path of this node when it is a directory.
func (v *pvnode) selfPath() []ids.FileID {
	if v.dirPath == nil && v.fid == ids.RootFileID {
		return []ids.FileID{ids.RootFileID}
	}
	p := make([]ids.FileID, 0, len(v.dirPath)+1)
	p = append(p, v.dirPath...)
	return append(p, v.fid)
}

// container returns the UFS directory holding this node's storage: its own
// container for directories, the parent's container for files.
func (v *pvnode) container() (vnode.Vnode, error) {
	if v.kind.IsDir() {
		return v.l.containerOf(v.selfPath())
	}
	return v.l.containerOf(v.dirPath)
}

// Handle encodes kind and fid path; Resolve reverses it.
func (v *pvnode) Handle() string {
	var sb strings.Builder
	if v.kind.IsDir() {
		sb.WriteString("d")
	} else if v.kind == KSymlink {
		sb.WriteString("l")
	} else {
		sb.WriteString("f")
	}
	for _, f := range v.dirPath {
		sb.WriteString("|")
		sb.WriteString(f.String())
	}
	sb.WriteString("|")
	sb.WriteString(v.fid.String())
	return sb.String()
}

// Resolve recovers a vnode from a handle (the nfs.Resolver contract).
func (l *Layer) Resolve(handle string) (vnode.Vnode, error) {
	parts := strings.Split(handle, "|")
	if len(parts) < 2 {
		return nil, vnode.ESTALE
	}
	var kind Kind
	switch parts[0] {
	case "d":
		kind = KDir
	case "f":
		kind = KFile
	case "l":
		kind = KSymlink
	default:
		return nil, vnode.ESTALE
	}
	fids := make([]ids.FileID, 0, len(parts)-1)
	for _, p := range parts[1:] {
		f, err := ids.ParseFileID(p)
		if err != nil {
			return nil, vnode.ESTALE
		}
		fids = append(fids, f)
	}
	fid := fids[len(fids)-1]
	dirPath := fids[:len(fids)-1]
	if len(dirPath) == 0 && fid == ids.RootFileID {
		return &pvnode{l: l, fid: fid, kind: KDir}, nil
	}
	v := &pvnode{l: l, fid: fid, kind: kind, dirPath: dirPath}
	// Verify the node still exists (stateless re-resolution).
	if _, err := v.Getattr(); err != nil {
		if vnode.AsErrno(err) == vnode.ENOSTOR {
			return nil, vnode.ENOSTOR
		}
		return nil, vnode.ESTALE
	}
	// Refresh the kind from storage (a handle may have been minted before a
	// graft point's aux was readable, and clients can't tell KDir from
	// KGraft anyway).
	return v, nil
}

func (v *pvnode) Lookup(name string) (vnode.Vnode, error) {
	if IsEncodedLookup(name) {
		return v.encodedLookup(name)
	}
	return v.lookupPlain(name)
}

func (v *pvnode) lookupPlain(name string) (vnode.Vnode, error) {
	if !v.kind.IsDir() {
		return nil, vnode.ENOTDIR
	}
	if len(name) > SubstrateMaxName {
		return nil, vnode.ENAMETOOLONG
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	return v.lookupLocked(name)
}

func (v *pvnode) lookupLocked(name string) (vnode.Vnode, error) {
	cont, entries, err := v.dirStateLocked()
	if err != nil {
		return nil, err
	}
	e, ok := findByRenderedName(entries, name)
	if !ok {
		return nil, vnode.ENOENT
	}
	return v.childVnodeLocked(cont, e)
}

// childVnodeLocked builds the vnode for entry e, verifying local storage.
func (v *pvnode) childVnodeLocked(cont vnode.Vnode, e Entry) (vnode.Vnode, error) {
	child := &pvnode{l: v.l, fid: e.Child, kind: e.Kind, dirPath: v.selfPath()}
	if e.Kind.IsDir() {
		if _, err := lookupFollow(v.l.root, cont, prefixDir+e.Child.String()); err != nil {
			if vnode.AsErrno(err) == vnode.ENOENT {
				return nil, vnode.ENOSTOR
			}
			return nil, err
		}
		return child, nil
	}
	if _, err := lookupFollow(v.l.root, cont, prefixAux+e.Child.String()); err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil, vnode.ENOSTOR
		}
		return nil, err
	}
	return child, nil
}

// encodedLookup executes an open or close shipped through Lookup (§2.3).
func (v *pvnode) encodedLookup(name string) (vnode.Vnode, error) {
	open, _, _, realName, err := DecodeOpenLookup(name)
	if err != nil {
		return nil, err
	}
	child, err := v.lookupPlain(realName)
	if err != nil {
		return nil, err
	}
	cv := child.(*pvnode)
	v.l.mu.Lock()
	if open {
		v.l.opens[cv.fid]++
		v.l.openTotal++
	} else if v.l.opens[cv.fid] > 0 {
		v.l.opens[cv.fid]--
	}
	v.l.mu.Unlock()
	return child, nil
}

// dirStateLocked loads this directory's container and entries.
func (v *pvnode) dirStateLocked() (vnode.Vnode, []Entry, error) {
	cont, err := v.container()
	if err != nil {
		return nil, nil, mapStoreErr(err)
	}
	entries, err := v.l.readDirFileLocked(cont)
	if err != nil {
		return nil, nil, err
	}
	return cont, entries, nil
}

func mapStoreErr(err error) error {
	if errors.Is(err, ErrNotStored) {
		return vnode.ENOSTOR
	}
	return err
}

// bumpDirLocked bumps the directory's own version vector after an entry
// change.
func (v *pvnode) bumpDirLocked(cont vnode.Vnode) error {
	aux, err := readAuxFile(cont, dirAttrName)
	if err != nil {
		return err
	}
	if aux.VV == nil {
		aux.VV = make(map[ids.ReplicaID]uint64)
	}
	aux.VV.Bump(v.l.replica)
	return writeAuxFile(cont, dirAttrName, &aux)
}

func (v *pvnode) Create(name string, excl bool) (vnode.Vnode, error) {
	return v.createKind(name, excl, KFile, "")
}

func (v *pvnode) Symlink(name, target string) error {
	_, err := v.createKind(name, true, KSymlink, target)
	return err
}

func (v *pvnode) createKind(name string, excl bool, kind Kind, data string) (vnode.Vnode, error) {
	if !v.kind.IsDir() {
		return nil, vnode.ENOTDIR
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	cont, entries, err := v.dirStateLocked()
	if err != nil {
		return nil, err
	}
	if e, ok := findByRenderedName(entries, name); ok {
		if excl || e.Kind != kind {
			return nil, vnode.EEXIST
		}
		return v.childVnodeLocked(cont, e)
	}
	fid, err := v.l.nextIDLocked()
	if err != nil {
		return nil, err
	}
	eid, err := v.l.nextIDLocked()
	if err != nil {
		return nil, err
	}
	// Storage first, then the entry: a crash in between leaves an orphaned
	// data file, never a dangling entry.
	df, err := cont.Create(prefixData+fid.String(), true)
	if err != nil {
		return nil, err
	}
	if data != "" {
		if err := vnode.WriteFile(df, []byte(data)); err != nil {
			return nil, err
		}
	}
	aux := Aux{Type: kind, Nlink: 1, VV: make(map[ids.ReplicaID]uint64)}
	aux.VV.Bump(v.l.replica)
	if err := writeAuxFile(cont, prefixAux+fid.String(), &aux); err != nil {
		return nil, err
	}
	// Seal the checksum sidecar after the aux: every crash window leaves a
	// missing sidecar — merely unverifiable, resealed by the scrubber —
	// never a seal vouching for bytes it does not cover.  (The sidecar's
	// inode also lands after the open path's F/A inodes, preserving the
	// paper's cold-open I/O count, §6.)
	if err := writeSidecar(cont, fid, aux.VV, ComputeChecksums([]byte(data))); err != nil {
		return nil, err
	}
	entries = append(entries, Entry{EID: eid, Name: name, Child: fid, Kind: kind})
	if err := v.l.writeDirFileLocked(cont, entries); err != nil {
		return nil, err
	}
	if err := v.bumpDirLocked(cont); err != nil {
		return nil, err
	}
	return &pvnode{l: v.l, fid: fid, kind: kind, dirPath: v.selfPath()}, nil
}

func (v *pvnode) Mkdir(name string) (vnode.Vnode, error) {
	return v.mkdirKind(name, KDir, ids.VolumeHandle{})
}

// MkGraft creates a graft point: a special directory that names a volume to
// be transparently grafted here (§4.3).  It is reached by type assertion
// from the volume management code.
func (v *pvnode) MkGraft(name string, target ids.VolumeHandle) (vnode.Vnode, error) {
	return v.mkdirKind(name, KGraft, target)
}

func (v *pvnode) mkdirKind(name string, kind Kind, graftVol ids.VolumeHandle) (vnode.Vnode, error) {
	if !v.kind.IsDir() {
		return nil, vnode.ENOTDIR
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	cont, entries, err := v.dirStateLocked()
	if err != nil {
		return nil, err
	}
	if _, ok := findByRenderedName(entries, name); ok {
		return nil, vnode.EEXIST
	}
	fid, err := v.l.nextIDLocked()
	if err != nil {
		return nil, err
	}
	eid, err := v.l.nextIDLocked()
	if err != nil {
		return nil, err
	}
	sub, err := cont.Mkdir(prefixDir + fid.String())
	if err != nil {
		return nil, err
	}
	if err := v.l.writeDirFileLocked(sub, nil); err != nil {
		return nil, err
	}
	aux := Aux{Type: kind, Nlink: 1, VV: make(map[ids.ReplicaID]uint64), GraftVol: graftVol}
	aux.VV.Bump(v.l.replica)
	if err := writeAuxFile(sub, dirAttrName, &aux); err != nil {
		return nil, err
	}
	entries = append(entries, Entry{EID: eid, Name: name, Child: fid, Kind: kind})
	if err := v.l.writeDirFileLocked(cont, entries); err != nil {
		return nil, err
	}
	if err := v.bumpDirLocked(cont); err != nil {
		return nil, err
	}
	return &pvnode{l: v.l, fid: fid, kind: kind, dirPath: v.selfPath()}, nil
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." {
		return vnode.EINVAL
	}
	if len(name) > SubstrateMaxName-1 { // the container prefix consumes 1
		return vnode.ENAMETOOLONG
	}
	if strings.ContainsAny(name, "/\x00") {
		return vnode.EINVAL
	}
	if strings.HasPrefix(name, encPrefix) {
		return vnode.EINVAL // reserved for the open/close encoding
	}
	return nil
}

func (v *pvnode) Readlink() (string, error) {
	if v.kind != KSymlink {
		return "", vnode.EINVAL
	}
	data, err := v.readAll()
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Open and Close arrive directly when the logical layer is co-resident (no
// NFS in between); they update the same open-count bookkeeping as the
// encoded path.
func (v *pvnode) Open(vnode.OpenFlags) error {
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	v.l.opens[v.fid]++
	v.l.openTotal++
	return nil
}

func (v *pvnode) Close(vnode.OpenFlags) error {
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	if v.l.opens[v.fid] > 0 {
		v.l.opens[v.fid]--
	}
	return nil
}

// dataFile locates this file's UFS data file.
func (v *pvnode) dataFile() (vnode.Vnode, error) {
	cont, err := v.container()
	if err != nil {
		return nil, mapStoreErr(err)
	}
	df, err := lookupFollow(v.l.root, cont, prefixData+v.fid.String())
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil, vnode.ENOSTOR
		}
		return nil, err
	}
	return df, nil
}

func (v *pvnode) readAll() ([]byte, error) {
	if v.l.IsQuarantined(v.fid) {
		return nil, vnode.ENOSTOR
	}
	df, err := v.dataFile()
	if err != nil {
		return nil, err
	}
	return vnode.ReadFile(df)
}

func (v *pvnode) ReadAt(p []byte, off int64) (int, error) {
	if v.kind.IsDir() {
		return 0, vnode.EISDIR
	}
	// A quarantined replica's bytes are untrusted: answer "not stored" so
	// the logical layer fails over to a replica that can serve the version.
	if v.l.IsQuarantined(v.fid) {
		return 0, vnode.ENOSTOR
	}
	df, err := v.dataFile()
	if err != nil {
		return 0, err
	}
	n, err := df.ReadAt(p, off)
	if errors.Is(err, io.EOF) {
		return n, io.EOF
	}
	return n, err
}

// bumpFileLocked bumps this file's version vector: every local mutation is
// an update this replica originated (§3.1).  The sidecar is resealed from
// the just-written data under the bumped vector BEFORE the aux commits, so
// a crash in between leaves the sidecar unverifiable (stale seal) rather
// than the aux vouching for checksums that never covered the new bytes.
func (v *pvnode) bumpFileLocked() error {
	cont, err := v.container()
	if err != nil {
		return mapStoreErr(err)
	}
	auxName := prefixAux + v.fid.String()
	af, err := lookupFollow(v.l.root, cont, auxName)
	if err != nil {
		return err
	}
	data, err := vnode.ReadFile(af)
	if err != nil {
		return err
	}
	aux, err := decodeAux(data)
	if err != nil {
		return err
	}
	if aux.VV == nil {
		aux.VV = make(map[ids.ReplicaID]uint64)
	}
	aux.VV.Bump(v.l.replica)
	if err := sealFile(v.l.root, cont, v.fid, aux.VV); err != nil {
		return err
	}
	return writeAuxVnode(af, &aux)
}

func (v *pvnode) WriteAt(p []byte, off int64) (int, error) {
	if v.kind.IsDir() {
		return 0, vnode.EISDIR
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	// Writing over quarantined bytes would seal damage into a fresh version
	// (a partial write reads back what it did not cover); fail over instead.
	if v.l.isQuarantinedLocked(v.fid) {
		return 0, vnode.ENOSTOR
	}
	df, err := v.dataFile()
	if err != nil {
		return 0, err
	}
	n, err := df.WriteAt(p, off)
	if err != nil {
		return n, err
	}
	return n, v.bumpFileLocked()
}

func (v *pvnode) Truncate(size uint64) error {
	if v.kind.IsDir() {
		return vnode.EISDIR
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	if v.l.isQuarantinedLocked(v.fid) {
		return vnode.ENOSTOR
	}
	df, err := v.dataFile()
	if err != nil {
		return err
	}
	if err := df.Truncate(size); err != nil {
		return err
	}
	return v.bumpFileLocked()
}

func (v *pvnode) Fsync() error { return v.l.store.Sync() }

func (v *pvnode) Getattr() (vnode.Attr, error) {
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	return v.getattrLocked()
}

func (v *pvnode) getattrLocked() (vnode.Attr, error) {
	if v.kind.IsDir() {
		cont, entries, err := v.dirStateLocked()
		if err != nil {
			return vnode.Attr{}, err
		}
		aux, err := readAuxFile(cont, dirAttrName)
		if err != nil {
			return vnode.Attr{}, err
		}
		live := 0
		for _, e := range entries {
			if e.Live() {
				live++
			}
		}
		a := vnode.Attr{
			Type:   vnode.VDir,
			Nlink:  uint32(2 + live),
			Size:   uint64(len(entries)),
			Mtime:  aux.VV.Total(),
			FileID: v.fid.String(),
		}
		if aux.Type == KGraft {
			a.GraftVol = aux.GraftVol.String()
		}
		return a, nil
	}
	cont, err := v.container()
	if err != nil {
		return vnode.Attr{}, mapStoreErr(err)
	}
	aux, err := readAuxFileFollow(v.l.root, cont, prefixAux+v.fid.String())
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return vnode.Attr{}, vnode.ENOSTOR
		}
		return vnode.Attr{}, err
	}
	df, err := lookupFollow(v.l.root, cont, prefixData+v.fid.String())
	if err != nil {
		return vnode.Attr{}, err
	}
	da, err := df.Getattr()
	if err != nil {
		return vnode.Attr{}, err
	}
	t := vnode.VReg
	if aux.Type == KSymlink {
		t = vnode.VLnk
	}
	return vnode.Attr{
		Type:   t,
		Mode:   da.Mode,
		Nlink:  aux.Nlink,
		Size:   da.Size,
		Mtime:  aux.VV.Total(),
		Ctime:  da.Ctime,
		FileID: v.fid.String(),
	}, nil
}

func readAuxFileFollow(storeRoot, dir vnode.Vnode, name string) (Aux, error) {
	f, err := lookupFollow(storeRoot, dir, name)
	if err != nil {
		return Aux{}, err
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return Aux{}, err
	}
	if len(data) == 0 {
		return Aux{}, ErrNotStored
	}
	return decodeAux(data)
}

func (v *pvnode) Setattr(sa vnode.SetAttr) error {
	if sa.Size != nil {
		if err := v.Truncate(*sa.Size); err != nil {
			return err
		}
	}
	if sa.Mode != nil && !v.kind.IsDir() {
		// The bump below reseals the sidecar from stored data; on a
		// quarantined replica that would launder known-bad bytes.
		if v.l.IsQuarantined(v.fid) {
			return vnode.ENOSTOR
		}
		df, err := v.dataFile()
		if err != nil {
			return err
		}
		if err := df.Setattr(vnode.SetAttr{Mode: sa.Mode}); err != nil {
			return err
		}
		v.l.mu.Lock()
		defer v.l.mu.Unlock()
		return v.bumpFileLocked()
	}
	return nil
}

func (v *pvnode) Access(uint16) error { return nil }

func (v *pvnode) Remove(name string) error {
	if !v.kind.IsDir() {
		return vnode.ENOTDIR
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	cont, entries, err := v.dirStateLocked()
	if err != nil {
		return err
	}
	idx := -1
	for i, e := range entries {
		if e.Live() && RenderedName(entries, e) == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return vnode.ENOENT
	}
	e := entries[idx]
	if e.Kind.IsDir() {
		return vnode.EISDIR
	}
	entries[idx].Deleted = true
	if err := v.l.writeDirFileLocked(cont, entries); err != nil {
		return err
	}
	if err := v.bumpDirLocked(cont); err != nil {
		return err
	}
	return v.derefStorageLocked(cont, entries, e.Child)
}

// derefStorageLocked drops one reference to child's storage, deleting the
// data and aux files when no live entry in this directory still names it.
func (v *pvnode) derefStorageLocked(cont vnode.Vnode, entries []Entry, child ids.FileID) error {
	if countLiveRefs(entries, child) > 0 {
		// Still named: just decrement the aux link count.
		auxName := prefixAux + child.String()
		aux, err := readAuxFileFollow(v.l.root, cont, auxName)
		if err != nil {
			return nil // not stored here; nothing to do
		}
		if aux.Nlink > 1 {
			aux.Nlink--
			af, err := lookupFollow(v.l.root, cont, auxName)
			if err != nil {
				return err
			}
			return writeAuxVnode(af, &aux)
		}
		return nil
	}
	// Last name gone: reclaim storage if present.
	if err := cont.Remove(prefixData + child.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	if err := cont.Remove(prefixAux + child.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	if err := removeSidecar(cont, child); err != nil {
		return err
	}
	if err := v.l.removeManifestLocked(cont, child); err != nil {
		return err
	}
	v.l.clearQuarantineLocked(child, false)
	return nil
}

func (v *pvnode) Rmdir(name string) error {
	if !v.kind.IsDir() {
		return vnode.ENOTDIR
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	cont, entries, err := v.dirStateLocked()
	if err != nil {
		return err
	}
	idx := -1
	for i, e := range entries {
		if e.Live() && RenderedName(entries, e) == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return vnode.ENOENT
	}
	e := entries[idx]
	if !e.Kind.IsDir() {
		return vnode.ENOTDIR
	}
	// The child must be empty (no live entries) if we store it; an unstored
	// child is deletable blindly — optimism, reconciliation cleans up.
	if sub, err := lookupFollow(v.l.root, cont, prefixDir+e.Child.String()); err == nil {
		subEntries, err := v.l.readDirFileLocked(sub)
		if err != nil {
			return err
		}
		for _, se := range subEntries {
			if se.Live() {
				return vnode.ENOTEMPTY
			}
		}
	}
	entries[idx].Deleted = true
	if err := v.l.writeDirFileLocked(cont, entries); err != nil {
		return err
	}
	return v.bumpDirLocked(cont)
}

// Link adds another name for target within this same directory — Ficus
// files live in a DAG and may bear several names (§2.5).  Cross-directory
// hard links are not supported by this physical layer (EXDEV); the logical
// layer surfaces that restriction.
func (v *pvnode) Link(name string, target vnode.Vnode) error {
	if !v.kind.IsDir() {
		return vnode.ENOTDIR
	}
	t, ok := target.(*pvnode)
	if !ok || t.l != v.l {
		return vnode.EXDEV
	}
	if t.kind.IsDir() {
		return vnode.EPERM
	}
	if err := checkName(name); err != nil {
		return err
	}
	if len(v.selfPath()) != len(t.dirPath) || !samePath(v.selfPath(), t.dirPath) {
		return vnode.EXDEV
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	cont, entries, err := v.dirStateLocked()
	if err != nil {
		return err
	}
	if _, ok := findByRenderedName(entries, name); ok {
		return vnode.EEXIST
	}
	eid, err := v.l.nextIDLocked()
	if err != nil {
		return err
	}
	auxName := prefixAux + t.fid.String()
	aux, err := readAuxFileFollow(v.l.root, cont, auxName)
	if err != nil {
		return err
	}
	aux.Nlink++
	af, err := lookupFollow(v.l.root, cont, auxName)
	if err != nil {
		return err
	}
	if err := writeAuxVnode(af, &aux); err != nil {
		return err
	}
	entries = append(entries, Entry{EID: eid, Name: name, Child: t.fid, Kind: t.kind})
	if err := v.l.writeDirFileLocked(cont, entries); err != nil {
		return err
	}
	return v.bumpDirLocked(cont)
}

func samePath(a, b []ids.FileID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (v *pvnode) Rename(oldName string, dstDir vnode.Vnode, newName string) error {
	if !v.kind.IsDir() {
		return vnode.ENOTDIR
	}
	d, ok := dstDir.(*pvnode)
	if !ok || d.l != v.l || !d.kind.IsDir() {
		return vnode.EXDEV
	}
	if err := checkName(newName); err != nil {
		return err
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	srcCont, srcEntries, err := v.dirStateLocked()
	if err != nil {
		return err
	}
	srcIdx := -1
	for i, e := range srcEntries {
		if e.Live() && RenderedName(srcEntries, e) == oldName {
			srcIdx = i
			break
		}
	}
	if srcIdx < 0 {
		return vnode.ENOENT
	}
	e := srcEntries[srcIdx]
	sameDir := samePath(v.selfPath(), d.selfPath())
	if sameDir && oldName == newName {
		return nil
	}
	// Destination handling.
	dstCont := srcCont
	dstEntries := srcEntries
	if !sameDir {
		dstCont, dstEntries, err = d.dirStateLocked()
		if err != nil {
			return err
		}
	}
	if old, ok := findByRenderedName(dstEntries, newName); ok {
		if old.Kind.IsDir() || e.Kind.IsDir() {
			return vnode.EEXIST
		}
		// Replace: tombstone the old destination entry.
		for i := range dstEntries {
			if dstEntries[i].EID == old.EID {
				dstEntries[i].Deleted = true
			}
		}
		if err := v.l.writeDirFileLocked(dstCont, dstEntries); err != nil {
			return err
		}
		dst := &pvnode{l: v.l, fid: d.fid, kind: d.kind, dirPath: d.dirPath}
		if err := dst.derefStorageLocked(dstCont, dstEntries, old.Child); err != nil {
			return err
		}
		// Re-read after the replace so the insert below sees fresh state.
		dstEntries, err = v.l.readDirFileLocked(dstCont)
		if err != nil {
			return err
		}
		if sameDir {
			srcEntries = dstEntries
		}
	}
	// Move storage across containers.
	if !sameDir {
		if e.Kind.IsDir() {
			if err := srcCont.Rename(prefixDir+e.Child.String(), dstCont, prefixDir+e.Child.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
				return err
			}
		} else {
			for _, p := range []string{prefixData, prefixAux, prefixSum} {
				if err := srcCont.Rename(p+e.Child.String(), dstCont, p+e.Child.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
					return err
				}
			}
		}
	}
	// Tombstone the source entry; insert a fresh entry at the destination.
	eid, err := v.l.nextIDLocked()
	if err != nil {
		return err
	}
	for i := range srcEntries {
		if srcEntries[i].EID == e.EID {
			srcEntries[i].Deleted = true
		}
	}
	if sameDir {
		srcEntries = append(srcEntries, Entry{EID: eid, Name: newName, Child: e.Child, Kind: e.Kind, Value: e.Value})
		if err := v.l.writeDirFileLocked(srcCont, srcEntries); err != nil {
			return err
		}
		return v.bumpDirLocked(srcCont)
	}
	if err := v.l.writeDirFileLocked(srcCont, srcEntries); err != nil {
		return err
	}
	dstEntries = append(dstEntries, Entry{EID: eid, Name: newName, Child: e.Child, Kind: e.Kind, Value: e.Value})
	if err := v.l.writeDirFileLocked(dstCont, dstEntries); err != nil {
		return err
	}
	if err := v.bumpDirLocked(srcCont); err != nil {
		return err
	}
	return v.bumpDirLocked(dstCont)
}

func (v *pvnode) Readdir() ([]vnode.Dirent, error) {
	if !v.kind.IsDir() {
		return nil, vnode.ENOTDIR
	}
	v.l.mu.Lock()
	defer v.l.mu.Unlock()
	_, entries, err := v.dirStateLocked()
	if err != nil {
		return nil, err
	}
	live := liveSorted(entries)
	out := make([]vnode.Dirent, 0, len(live))
	for _, e := range live {
		t := vnode.VReg
		switch e.Kind {
		case KDir, KGraft:
			t = vnode.VDir
		case KSymlink:
			t = vnode.VLnk
		}
		out = append(out, vnode.Dirent{
			Name:   RenderedName(entries, e),
			FileID: e.Child.String(),
			Type:   t,
			Value:  e.Value,
		})
	}
	return out, nil
}
