package physical

import (
	"bytes"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// TestShadowCommitTornWrites repeats the shadow-commit crash sweep with
// torn writes: the crashing write persists only a 64-byte prefix of its
// block.  The §3.2 fn5 invariant must still hold — after recovery the
// replica serves either the complete old or the complete new version,
// never a mix — because the shadow protocol never overwrites live data in
// place: a tear can only land in not-yet-referenced shadow blocks, in
// metadata UFS recovery rebuilds, or in a directory slot whose name is a
// same-prefix rename.
func TestShadowCommitTornWrites(t *testing.T) {
	oldData := bytes.Repeat([]byte("OLD!"), 2048) // 2 blocks
	newData := bytes.Repeat([]byte("new?"), 3072) // 3 blocks

	setup := func() (*disk.Device, *Layer, ids.FileID) {
		dev := disk.New(8192)
		fs, err := ufs.Mkfs(dev, 2048, nil)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Format(ufsvn.New(fs), testVol, 1)
		if err != nil {
			t.Fatal(err)
		}
		root, _ := l.Root()
		f, _ := root.Create("f", true)
		if err := vnode.WriteFile(f, oldData); err != nil {
			t.Fatal(err)
		}
		return dev, l, mustFid(t, f)
	}

	propagatedVV := func(l *Layer, fid ids.FileID) vv.Vector {
		st, err := l.FileInfo(RootPath(), fid)
		if err != nil {
			t.Fatal(err)
		}
		return st.Aux.VV.Clone().Bump(2)
	}

	dev, l, fid := setup()
	before := dev.Stats().Writes
	if err := l.InstallFileVersion(RootPath(), fid, KFile, newData, propagatedVV(l, fid), 1); err != nil {
		t.Fatal(err)
	}
	totalWrites := int(dev.Stats().Writes - before)

	for crashAfter := 0; crashAfter <= totalWrites; crashAfter++ {
		dev, l, fid := setup()
		newVV := propagatedVV(l, fid)
		dev.FaultAfterWritesTorn(crashAfter, 64)
		installErr := l.InstallFileVersion(RootPath(), fid, KFile, newData, newVV, 1)
		crashed := dev.Faulted()
		dev.ClearFault()

		fs2, err := ufs.Mount(dev, nil)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Open(ufsvn.New(fs2))
		if err != nil {
			t.Fatalf("crashAfter=%d: recovery mount: %v", crashAfter, err)
		}
		data, _, err := l2.FileData(RootPath(), fid)
		if err != nil {
			t.Fatalf("crashAfter=%d: file lost: %v", crashAfter, err)
		}
		oldOK := bytes.Equal(data, oldData)
		newOK := bytes.Equal(data, newData)
		if !oldOK && !newOK {
			t.Fatalf("crashAfter=%d (crashed=%v, installErr=%v): torn file: %d bytes", crashAfter, crashed, installErr, len(data))
		}
		if installErr == nil && !crashed && !newOK {
			t.Fatalf("crashAfter=%d: install reported success but old data survives", crashAfter)
		}
		if problems, err := l2.Check(); err != nil {
			t.Fatalf("crashAfter=%d: ficus check: %v", crashAfter, err)
		} else if len(problems) != 0 {
			t.Fatalf("crashAfter=%d: ficus check found: %v", crashAfter, problems)
		}
		if problems, err := fs2.Check(); err != nil {
			t.Fatalf("crashAfter=%d: fsck: %v", crashAfter, err)
		} else if len(problems) != 0 {
			t.Fatalf("crashAfter=%d: fsck found: %v", crashAfter, problems)
		}
		if crashed && dev.Stats().TornWrites != 1 {
			t.Fatalf("crashAfter=%d: TornWrites = %d, want 1", crashAfter, dev.Stats().TornWrites)
		}
	}
}
