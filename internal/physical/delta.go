package physical

// Delta pulls: the wire half of the content-addressed block layer.
//
// A delta pull is a conditional batched pull (pull.go) in which the puller
// additionally advertises the block addresses it already holds (its pool,
// fed by EnsureBlocks from ANY local file — cross-file dedup).  The serving
// side answers PullData entries with the version's manifest plus only the
// blocks absent from the advertisement, and the puller reassembles the full
// version from local pool blocks + received blocks before running the exact
// same verified shadow/rename commit a whole-file install uses.  An
// append-one-block update or a metadata touch therefore ships O(delta)
// bytes instead of O(file), and a pass where the puller already dominates
// still ships zero data bytes.

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/invariant"
	"repro/internal/vv"
)

// ErrMissingBlock reports a delta install that could not be assembled: the
// manifest references a block that was neither advertised-and-held locally
// nor shipped.  It is TRANSIENT — the puller's pool may have changed between
// advertisement and install (eviction, corruption) — so the entry retries
// under backoff and the next advertisement no longer claims the block.
var ErrMissingBlock error = transientError("physical: delta install needs a block neither held locally nor shipped")

// PullBatchDelta answers a batch of conditional pulls like PullBatch, but
// entries whose version must ship are answered as (manifest, missing
// blocks) against the puller's advertised holdings instead of as full data.
// The manifest is computed in memory from the (verified) read — serving
// never writes to this replica's own store.  Like PullBatch, failures are
// strictly per-entry.
func (l *Layer) PullBatchDelta(reqs []PullRequest, have []BlockAddr) ([]PullResult, error) {
	haveSet := make(map[BlockAddr]bool, len(have))
	for _, a := range have {
		haveSet[a] = true
	}
	out := make([]PullResult, len(reqs))
	var shipped, shippedBytes uint64
	for i := range reqs {
		out[i] = l.pullOne(&reqs[i])
		r := &out[i]
		if r.Status != PullData {
			continue
		}
		m := ComputeManifest(r.Data)
		sent := make(map[BlockAddr]bool)
		var missing []Block
		for bi, addr := range m.Blocks {
			if haveSet[addr] || sent[addr] {
				continue
			}
			off := bi * ChecksumBlockSize
			end := off + ChecksumBlockSize
			if end > len(r.Data) {
				end = len(r.Data)
			}
			missing = append(missing, Block{Addr: addr, Data: r.Data[off:end]})
			sent[addr] = true
			shipped++
			shippedBytes += uint64(end - off)
		}
		r.Manifest = m
		r.Missing = missing
		r.Data = nil
	}
	l.mu.Lock()
	l.bstats.BlocksShipped += shipped
	l.bstats.BytesShipped += shippedBytes
	l.mu.Unlock()
	return out, nil
}

// InstallFileVersionDelta is InstallFileVersionSum for a delta answer: the
// version arrives as a manifest plus the blocks this replica reported
// missing, and is reassembled from received + pool blocks.  Every received
// block must hash to its address and the assembled payload must match the
// advertised checksums (when present) before anything touches disk.  On
// success the received blocks enter the pool and the manifest is sealed
// under newVV, so the next pull advertises them.
func (l *Layer) InstallFileVersionDelta(dirPath []ids.FileID, fid ids.FileID, kind Kind, m *BlockManifest, missing []Block, newVV vv.Vector, nlink uint32, cs *Checksums) error {
	if m == nil {
		return fmt.Errorf("physical: delta install of %s without a manifest", fid)
	}
	if len(m.Blocks) != checksumBlocks(m.Length) {
		return fmt.Errorf("%w: delta install of %s: manifest has %d blocks for length %d", ErrCorrupt, fid, len(m.Blocks), m.Length)
	}
	recv := make(map[BlockAddr][]byte, len(missing))
	for i := range missing {
		b := &missing[i]
		if HashBlock(b.Data) != b.Addr {
			invariant.Checkf(false,
				"physical: delta install of %s: received block does not hash to its address %s",
				fid, b.Addr)
			return fmt.Errorf("%w: delta install of %s rejected (block fails its address)", ErrCorrupt, fid)
		}
		recv[b.Addr] = b.Data
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	// Assemble the full version: received blocks win (they are the bytes the
	// server actually shipped); everything else must come from the pool.
	data := make([]byte, 0, m.Length)
	var reused, reusedBytes uint64
	for _, addr := range m.Blocks {
		if b, ok := recv[addr]; ok {
			data = append(data, b...)
			continue
		}
		b, ok := l.poolGetLocked(addr)
		if !ok {
			return fmt.Errorf("%w (file %s, block %s)", ErrMissingBlock, fid, addr)
		}
		data = append(data, b...)
		reused++
		reusedBytes += uint64(len(b))
	}
	if uint64(len(data)) != m.Length {
		return fmt.Errorf("%w: delta install of %s assembled %d bytes, manifest says %d", ErrCorrupt, fid, len(data), m.Length)
	}
	if cs != nil && !cs.Verify(data) {
		invariant.Checkf(false,
			"physical: delta install of %s rejected: assembled payload (%d bytes) does not match advertised checksums (length %d)",
			fid, len(data), cs.Length)
		return fmt.Errorf("%w: delta install of %s rejected (assembled payload does not match advertised sidecar)", ErrCorrupt, fid)
	}
	// Received blocks enter the pool BEFORE the commit: once the manifest is
	// sealed below it must never reference a block the pool lacks, and this
	// ordering makes that invariant hold through any crash point.  Manifest
	// order keeps the on-disk write sequence deterministic.
	pooled := make(map[BlockAddr]bool, len(recv))
	for _, addr := range m.Blocks {
		b, ok := recv[addr]
		if !ok || pooled[addr] {
			continue
		}
		if err := l.poolPutLocked(addr, b); err != nil {
			return err
		}
		pooled[addr] = true
	}
	if err := l.commitFileVersionLocked(cont, fid, kind, data, newVV, nlink, cs); err != nil {
		return err
	}
	if err := l.sealManifestLocked(cont, fid, newVV, m); err != nil {
		return err
	}
	l.bstats.BlocksReused += reused
	l.bstats.BytesSaved += reusedBytes
	return nil
}

// IsMissingBlock reports whether err is the retriable missing-block refusal
// of a delta install.
func IsMissingBlock(err error) bool { return errors.Is(err, ErrMissingBlock) }
