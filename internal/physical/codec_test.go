package physical

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// TestEntryCodecRoundTripProperty: any entry list survives the directory
// contents file encoding.
func TestEntryCodecRoundTripProperty(t *testing.T) {
	f := func(seeds []uint32, names [][]byte, deleted []bool) bool {
		n := len(seeds)
		if len(names) < n {
			n = len(names)
		}
		if len(deleted) < n {
			n = len(deleted)
		}
		in := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			name := names[i]
			if len(name) > 200 {
				name = name[:200]
			}
			in = append(in, Entry{
				EID:     ids.FileID{Issuer: ids.ReplicaID(seeds[i]), Seq: uint64(seeds[i]) * 3},
				Name:    string(name),
				Child:   ids.FileID{Issuer: ids.ReplicaID(seeds[i] >> 3), Seq: uint64(i)},
				Kind:    Kind(1 + seeds[i]%4),
				Deleted: deleted[i],
				Value:   string(name),
			})
		}
		enc := encodeEntries(in)
		out, err := decodeEntries(enc)
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntryCodecRejectsCorruption(t *testing.T) {
	in := []Entry{{EID: ids.FileID{Issuer: 1, Seq: 2}, Name: "x", Child: ids.FileID{Issuer: 1, Seq: 3}, Kind: KFile}}
	enc := encodeEntries(in)
	for _, cut := range []int{1, 4, 10, len(enc) - 1} {
		if _, err := decodeEntries(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeEntries(append(enc, 0xff)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := decodeEntries(nil); err == nil {
		t.Error("nil accepted")
	}
}

// TestAuxCodecRoundTripProperty: any aux block survives the fixed-size
// encoding.
func TestAuxCodecRoundTripProperty(t *testing.T) {
	f := func(kind byte, nlink uint32, counts []uint16, ga, gv uint32) bool {
		a := Aux{
			Type:  Kind(1 + kind%4),
			Nlink: nlink,
			VV:    make(map[ids.ReplicaID]uint64),
			GraftVol: ids.VolumeHandle{
				Allocator: ids.AllocatorID(ga),
				Volume:    ids.VolumeID(gv),
			},
		}
		for i, c := range counts {
			if i >= 8 {
				break
			}
			if c > 0 {
				a.VV[ids.ReplicaID(i)] = uint64(c)
			}
		}
		buf, err := auxBytes(&a)
		if err != nil {
			return false
		}
		if len(buf) != auxFileSize {
			return false
		}
		out, err := decodeAux(buf)
		if err != nil {
			return false
		}
		return out.Type == a.Type && out.Nlink == a.Nlink &&
			out.GraftVol == a.GraftVol && out.VV.Equal(a.VV)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
