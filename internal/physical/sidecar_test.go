package physical

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/vv"
)

func sampleSidecar() ([]byte, vv.Vector, *Checksums) {
	sealed := vv.Vector{1: 4, 3: 9}
	data := bytes.Repeat([]byte("ficus integrity "), 600) // ~9.4 KiB: 3 blocks
	cs := ComputeChecksums(data)
	return encodeSidecar(sealed, cs), sealed, cs
}

func TestSidecarRoundTrip(t *testing.T) {
	enc, sealed, cs := sampleSidecar()
	gotVV, gotCS, err := decodeSidecar(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !gotVV.Equal(sealed) {
		t.Fatalf("sealed vector: got %s want %s", gotVV, sealed)
	}
	if gotCS.Length != cs.Length || len(gotCS.Sums) != len(cs.Sums) {
		t.Fatalf("summary shape: got %+v want %+v", gotCS, cs)
	}
	for i := range cs.Sums {
		if gotCS.Sums[i] != cs.Sums[i] {
			t.Fatalf("sum %d: got %08x want %08x", i, gotCS.Sums[i], cs.Sums[i])
		}
	}
	// The empty file round-trips too: zero length, zero sums.
	encEmpty := encodeSidecar(vv.New(), ComputeChecksums(nil))
	if _, ecs, err := decodeSidecar(encEmpty); err != nil || ecs.Length != 0 || len(ecs.Sums) != 0 {
		t.Fatalf("empty sidecar: %+v %v", ecs, err)
	}
}

// TestSidecarDecodeRejectsCorruption: every truncation of a valid sidecar
// and the classic header corruptions fail with an error, never a panic or a
// misparse (the decode is strict).
func TestSidecarDecodeRejectsCorruption(t *testing.T) {
	enc, _, _ := sampleSidecar()
	for n := 0; n < len(enc); n++ {
		if _, _, err := decodeSidecar(enc[:n]); err == nil {
			t.Fatalf("sidecar truncated to %d bytes decoded successfully", n)
		}
	}
	// Trailing junk: the checksum area no longer matches the length.
	if _, _, err := decodeSidecar(append(append([]byte(nil), enc...), 0xAA)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bad magic, each byte.
	for i := 0; i < len(sidecarMagic); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, _, err := decodeSidecar(bad); err == nil {
			t.Fatalf("corrupt magic byte %d accepted", i)
		}
	}
	// Unknown version.
	bad := append([]byte(nil), enc...)
	bad[len(sidecarMagic)] = sidecarVersion + 1
	if _, _, err := decodeSidecar(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// A flipped length field either desynchronizes the derived block count
	// (decode fails) or — when the new length still needs the same number of
	// blocks — survives decode but can no longer verify the data.
	enc2, _, _ := sampleSidecar()
	data := bytes.Repeat([]byte("ficus integrity "), 600)
	lenOff := len(enc2) - 8 - 4*3 // length u64 sits before the 3 block sums
	for bit := 0; bit < 64; bit++ {
		bad := append([]byte(nil), enc2...)
		bad[lenOff+bit/8] ^= 1 << (bit % 8)
		_, cs, err := decodeSidecar(bad)
		if err == nil && cs.Verify(data) {
			t.Fatalf("flipped length bit %d decoded AND verified", bit)
		}
	}
	// An absurd length must fail before any huge allocation.
	huge := append([]byte(nil), enc[:lenOff]...)
	huge = binary.BigEndian.AppendUint64(huge, 1<<60)
	huge = append(huge, enc[lenOff+8:]...)
	if _, _, err := decodeSidecar(huge); err == nil {
		t.Fatal("absurd length accepted")
	}
}

func TestChecksumsVerify(t *testing.T) {
	data := bytes.Repeat([]byte{0x5A}, ChecksumBlockSize+100)
	cs := ComputeChecksums(data)
	if !cs.Verify(data) {
		t.Fatal("fresh checksums must verify")
	}
	// One flipped bit anywhere fails, in either block.
	for _, off := range []int{0, ChecksumBlockSize - 1, ChecksumBlockSize, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x01
		if cs.Verify(mut) {
			t.Fatalf("flipped bit at %d verified", off)
		}
	}
	// Length changes fail even when the common prefix is intact.
	if cs.Verify(data[:len(data)-1]) || cs.Verify(append(append([]byte(nil), data...), 0)) {
		t.Fatal("length change verified")
	}
	// nil summary never verifies; a tampered shape never verifies.
	var nilCS *Checksums
	if nilCS.Verify(nil) {
		t.Fatal("nil summary verified")
	}
	short := &Checksums{Length: cs.Length, Sums: cs.Sums[:1]}
	if short.Verify(data) {
		t.Fatal("summary with missing block sums verified")
	}
	if !ComputeChecksums(nil).Verify(nil) {
		t.Fatal("empty data must verify against its own summary")
	}
}

func TestChecksumsClone(t *testing.T) {
	cs := ComputeChecksums([]byte("abc"))
	cp := cs.Clone()
	cp.Sums[0]++
	if cs.Sums[0] == cp.Sums[0] {
		t.Fatal("Clone must deep-copy the sums")
	}
	var nilCS *Checksums
	if nilCS.Clone() != nil {
		t.Fatal("nil Clone must stay nil")
	}
}
