package physical

import (
	"strings"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// ParseHandle decodes a physical-layer vnode handle into its kind and fid
// path.  Handles travel verbatim through the NFS layer, so the logical
// layer can recover the fid path of any file it reached remotely — which is
// what an update notification must carry (§2.5/§3.2).
func ParseHandle(handle string) (kind Kind, dirPath []ids.FileID, fid ids.FileID, err error) {
	parts := strings.Split(handle, "|")
	if len(parts) < 2 {
		return 0, nil, ids.FileID{}, vnode.ESTALE
	}
	switch parts[0] {
	case "d":
		kind = KDir
	case "f":
		kind = KFile
	case "l":
		kind = KSymlink
	default:
		return 0, nil, ids.FileID{}, vnode.ESTALE
	}
	fids := make([]ids.FileID, 0, len(parts)-1)
	for _, p := range parts[1:] {
		f, perr := ids.ParseFileID(p)
		if perr != nil {
			return 0, nil, ids.FileID{}, vnode.ESTALE
		}
		fids = append(fids, f)
	}
	return kind, fids[:len(fids)-1], fids[len(fids)-1], nil
}
