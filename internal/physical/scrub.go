package physical

// The volume-replica scrub pass: the storage-side half of the background
// scrubber daemon (core.Host drives passes and repairs).  One pass walks
// every container, and for every locally stored file replica either
// verifies the data against its sealed sidecar, or — when the sidecar is
// missing, torn, or sealed under a vector that no longer matches the aux —
// reseals it from the local data.  Verification failures enter quarantine;
// a quarantined replica that verifies again (a newer version was installed
// over it) leaves quarantine.

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// ScrubReport summarizes one scrub pass over a volume replica.
type ScrubReport struct {
	VerifiedFiles  int // file versions checked against a fresh sidecar
	VerifiedBlocks int // block checksums compared
	Resealed       int // unverifiable sidecars recomputed from local data
	Corrupt        int // verification failures that entered quarantine this pass
	Cleared        int // quarantined files that verify again (superseded in place)
}

// Add accumulates.
func (r *ScrubReport) Add(t ScrubReport) {
	r.VerifiedFiles += t.VerifiedFiles
	r.VerifiedBlocks += t.VerifiedBlocks
	r.Resealed += t.Resealed
	r.Corrupt += t.Corrupt
	r.Cleared += t.Cleared
}

// String renders the report compactly.
func (r ScrubReport) String() string {
	return fmt.Sprintf("verified=%d blocks=%d resealed=%d corrupt=%d cleared=%d",
		r.VerifiedFiles, r.VerifiedBlocks, r.Resealed, r.Corrupt, r.Cleared)
}

// ScrubPass sweeps the whole volume replica once.  It is deterministic
// (container entries are visited in stored order) and safe to run at any
// time; the layer lock is held for the duration, like Check.
func (l *Layer) ScrubPass() (ScrubReport, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rep ScrubReport
	cont, err := l.rootContainer()
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return rep, nil
		}
		return rep, err
	}
	err = l.scrubContainerLocked(cont, []ids.FileID{ids.RootFileID}, &rep)
	return rep, err
}

func (l *Layer) scrubContainerLocked(cont vnode.Vnode, dirPath []ids.FileID, rep *ScrubReport) error {
	entries, err := l.readDirFileLocked(cont)
	if err != nil {
		// An unreadable contents file is Check's problem, not the scrubber's.
		return nil
	}
	for _, e := range liveSorted(entries) {
		if e.Kind.IsDir() {
			sub, err := lookupFollow(l.root, cont, prefixDir+e.Child.String())
			if err != nil {
				continue // not stored here (§4.1)
			}
			childPath := append(append([]ids.FileID(nil), dirPath...), e.Child)
			if err := l.scrubContainerLocked(sub, childPath, rep); err != nil {
				return err
			}
			continue
		}
		l.scrubFileLocked(cont, dirPath, e.Child, rep)
	}
	return nil
}

// scrubFileLocked verifies or reseals one stored file replica.
func (l *Layer) scrubFileLocked(cont vnode.Vnode, dirPath []ids.FileID, fid ids.FileID, rep *ScrubReport) {
	aux, err := readAuxFileFollow(l.root, cont, prefixAux+fid.String())
	if err != nil {
		return // not stored here, or mid-materialization; nothing to vouch for
	}
	df, err := lookupFollow(l.root, cont, prefixData+fid.String())
	if err != nil {
		return
	}
	data, err := vnode.ReadFile(df)
	if err != nil {
		return // an I/O error is the fault plane's business; retried next pass
	}
	sealed, cs, err := readSidecar(l.root, cont, fid)
	if err != nil || !sealed.Equal(aux.VV) {
		// Unverifiable — but never reseal a quarantined replica: that would
		// launder bytes already known bad under a fresh seal.
		if l.isQuarantinedLocked(fid) {
			return
		}
		if err := writeSidecar(cont, fid, aux.VV, ComputeChecksums(data)); err == nil {
			rep.Resealed++
			l.integ.Resealed++
		}
		return
	}
	rep.VerifiedFiles++
	rep.VerifiedBlocks += len(cs.Sums)
	l.integ.ScrubbedFiles++
	l.integ.ScrubbedBlocks += uint64(len(cs.Sums))
	if cs.Verify(data) {
		if l.isQuarantinedLocked(fid) {
			l.clearQuarantineLocked(fid, false)
			rep.Cleared++
		}
		return
	}
	if !l.isQuarantinedLocked(fid) {
		l.quarantineLocked(dirPath, fid, aux.VV)
		rep.Corrupt++
	}
}

// RepairDue lists the quarantined entries eligible for a repair attempt at
// daemon tick now, in deterministic file-id order.
func (l *Layer) RepairDue(now uint64) []QuarEntry {
	var due []QuarEntry
	for _, q := range l.QuarantinedVersions() {
		if q.NotBefore <= now {
			due = append(due, q)
		}
	}
	return due
}

// CorruptData flips one byte of fid's stored data file in place, bypassing
// the version bump and sidecar reseal every legitimate write performs —
// at-rest bit rot, as a deterministic test injection.  The aux and sidecar
// are untouched, so the damage is exactly what the scrubber must detect.
func (l *Layer) CorruptData(dirPath []ids.FileID, fid ids.FileID, off uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	df, err := lookupFollow(l.root, cont, prefixData+fid.String())
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return ErrNotStored
		}
		return err
	}
	data, err := vnode.ReadFile(df)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("physical: cannot bit-rot empty file %s", fid)
	}
	if off >= uint64(len(data)) {
		off = uint64(len(data)) - 1
	}
	_, err = df.WriteAt([]byte{data[off] ^ 0x40}, int64(off))
	return err
}
