package physical

import (
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
)

func benchLayer(b *testing.B) *Layer {
	b.Helper()
	fs, err := ufs.Mkfs(disk.New(65536), 16384, nil)
	if err != nil {
		b.Fatal(err)
	}
	l, err := Format(ufsvn.New(fs), testVol, 1)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func BenchmarkCreate(b *testing.B) {
	l := benchLayer(b)
	root, _ := l.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Create(fmt.Sprintf("f%08d", i), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteWithVVBump(b *testing.B) {
	l := benchLayer(b)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%16)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupWarm(b *testing.B) {
	l := benchLayer(b)
	root, _ := l.Root()
	for i := 0; i < 50; i++ {
		if _, err := root.Create(fmt.Sprintf("f%03d", i), true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Lookup("f025"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyDirMerge(b *testing.B) {
	// Merge a 64-entry remote state into a replica that already has it:
	// the steady-state (quiescent) reconciliation cost per directory.
	l := benchLayer(b)
	root, _ := l.Root()
	for i := 0; i < 64; i++ {
		if _, err := root.Create(fmt.Sprintf("f%03d", i), true); err != nil {
			b.Fatal(err)
		}
	}
	ds, err := l.DirEntries(RootPath())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ApplyDirMerge(RootPath(), ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstallFileVersion(b *testing.B) {
	l := benchLayer(b)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	fid := mustFidB(b, f)
	data := make([]byte, 8*4096)
	st, err := l.FileInfo(RootPath(), fid)
	if err != nil {
		b.Fatal(err)
	}
	vvv := st.Aux.VV.Clone()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vvv.Bump(2)
		if err := l.InstallFileVersion(RootPath(), fid, KFile, data, vvv, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func mustFidB(b *testing.B, v vnode.Vnode) ids.FileID {
	b.Helper()
	a, err := v.Getattr()
	if err != nil {
		b.Fatal(err)
	}
	fid, err := ids.ParseFileID(a.FileID)
	if err != nil {
		b.Fatal(err)
	}
	return fid
}
