package physical

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/retry"
	"repro/internal/ufs"
	"repro/internal/ufsvn"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// blockOf builds one deterministic full-size data block tagged by b.
func blockOf(b byte) []byte { return bytes.Repeat([]byte{b}, ChecksumBlockSize) }

// newBlockLayer formats a fresh store on its own device with one file
// holding data, returning everything the sweeps need to crash and remount.
func newBlockLayer(t *testing.T, data []byte) (*disk.Device, *Layer, ids.FileID) {
	t.Helper()
	dev := disk.New(8192)
	fs, err := ufs.Mkfs(dev, 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Format(ufsvn.New(fs), testVol, 1)
	if err != nil {
		t.Fatal(err)
	}
	root, err := l.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, data); err != nil {
		t.Fatal(err)
	}
	return dev, l, mustFid(t, f)
}

// remount recovers the store (ufs mount + Open, which runs shadow recovery
// and recoverBlocks) and asserts both the ficus walk and the UFS fsck come
// back clean.
func remount(t *testing.T, dev *disk.Device, tag string) *Layer {
	t.Helper()
	fs, err := ufs.Mount(dev, nil)
	if err != nil {
		t.Fatalf("%s: recovery mount: %v", tag, err)
	}
	l, err := Open(ufsvn.New(fs))
	if err != nil {
		t.Fatalf("%s: recovery open: %v", tag, err)
	}
	if problems, err := l.Check(); err != nil {
		t.Fatalf("%s: ficus check: %v", tag, err)
	} else if len(problems) != 0 {
		t.Fatalf("%s: ficus check found: %v", tag, problems)
	}
	if problems, err := fs.Check(); err != nil {
		t.Fatalf("%s: fsck: %v", tag, err)
	} else if len(problems) != 0 {
		t.Fatalf("%s: fsck found: %v", tag, problems)
	}
	return l
}

// poolNames lists the pool directory's members (empty when the pool was
// never created).
func poolNames(t *testing.T, l *Layer) []string {
	t.Helper()
	pool, err := l.root.Lookup(poolDirName)
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil
		}
		t.Fatal(err)
	}
	ents, err := pool.Readdir()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name)
	}
	return names
}

// TestBlockPoolTornCommitSweep crashes EnsureBlocks — the pool commit plus
// manifest seal — after every device write, tearing the crashing write to a
// 64-byte prefix.  The block layer is DERIVED data, so the invariant is
// strictly stronger than old-or-new: the canonical file must be untouched at
// every crash point, recovery must leave no torn shadow, no orphan block,
// and no manifest referencing an absent block (Check verifies all three),
// and a post-recovery EnsureBlocks must complete the index from scratch.
func TestBlockPoolTornCommitSweep(t *testing.T) {
	data := append(append(blockOf('a'), blockOf('b')...), []byte("tail")...) // 3 blocks, short last

	// Count the writes of a full run.
	dev, l, fid := newBlockLayer(t, data)
	before := dev.Stats().Writes
	if err := l.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	totalWrites := int(dev.Stats().Writes - before)
	if totalWrites == 0 {
		t.Fatal("EnsureBlocks issued no writes")
	}

	for crashAfter := 0; crashAfter <= totalWrites; crashAfter++ {
		tag := fmt.Sprintf("crashAfter=%d", crashAfter)
		dev, l, fid := newBlockLayer(t, data)
		dev.FaultAfterWritesTorn(crashAfter, 64)
		ensureErr := l.EnsureBlocks(RootPath(), fid)
		crashed := dev.Faulted()
		dev.ClearFault()
		if !crashed && ensureErr != nil {
			t.Fatalf("%s: no crash but EnsureBlocks failed: %v", tag, ensureErr)
		}

		l2 := remount(t, dev, tag)
		got, _, err := l2.FileData(RootPath(), fid)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s: canonical data damaged by derived-index crash: %v", tag, err)
		}
		// The index rebuilds completely on the recovered store.
		if err := l2.EnsureBlocks(RootPath(), fid); err != nil {
			t.Fatalf("%s: post-recovery EnsureBlocks: %v", tag, err)
		}
		if addrs := l2.PoolAddrs(); len(addrs) != 3 {
			t.Fatalf("%s: %d pool addrs after reindex, want 3", tag, len(addrs))
		}
		if problems, err := l2.Check(); err != nil || len(problems) != 0 {
			t.Fatalf("%s: check after reindex: %v %v", tag, problems, err)
		}
	}
}

// TestDeltaInstallCrashSweep crashes InstallFileVersionDelta after every
// device write (torn).  The install covers the full commit chain — received
// blocks into the pool, shadow/rename of the data file, sidecar, manifest
// seal — and after every crash point the recovered replica must serve the
// complete old or complete new version, with no manifest referencing a
// block the pool lacks (remount's Check would report it).
func TestDeltaInstallCrashSweep(t *testing.T) {
	oldData := append(blockOf('a'), blockOf('b')...)
	newData := append(append(blockOf('a'), blockOf('b')...), blockOf('c')...) // append one block

	prep := func() (*disk.Device, *Layer, ids.FileID, vv.Vector) {
		dev, l, fid := newBlockLayer(t, oldData)
		if err := l.EnsureBlocks(RootPath(), fid); err != nil {
			t.Fatal(err)
		}
		st, err := l.FileInfo(RootPath(), fid)
		if err != nil {
			t.Fatal(err)
		}
		return dev, l, fid, st.Aux.VV.Clone().Bump(2)
	}
	man := ComputeManifest(newData)
	missing := []Block{{Addr: HashBlock(blockOf('c')), Data: blockOf('c')}}
	cs := ComputeChecksums(newData)

	dev, l, fid, newVV := prep()
	before := dev.Stats().Writes
	if err := l.InstallFileVersionDelta(RootPath(), fid, KFile, man, missing, newVV, 1, cs); err != nil {
		t.Fatal(err)
	}
	totalWrites := int(dev.Stats().Writes - before)

	for crashAfter := 0; crashAfter <= totalWrites; crashAfter++ {
		tag := fmt.Sprintf("crashAfter=%d", crashAfter)
		dev, l, fid, newVV := prep()
		dev.FaultAfterWritesTorn(crashAfter, 64)
		installErr := l.InstallFileVersionDelta(RootPath(), fid, KFile, man, missing, newVV, 1, cs)
		crashed := dev.Faulted()
		dev.ClearFault()

		l2 := remount(t, dev, tag)
		got, st, err := l2.FileData(RootPath(), fid)
		if err != nil {
			t.Fatalf("%s: file lost: %v", tag, err)
		}
		oldOK := bytes.Equal(got, oldData)
		newOK := bytes.Equal(got, newData)
		if !oldOK && !newOK {
			t.Fatalf("%s (crashed=%v, installErr=%v): torn file: %d bytes", tag, crashed, installErr, len(got))
		}
		if installErr == nil && !crashed && !newOK {
			t.Fatalf("%s: install reported success but old data survives", tag)
		}
		// (A crash between the data and aux commits can leave new bytes under
		// the old vector — same window as every shadow install; the stale
		// sidecar seal stops anything from vouching for the mix, so only the
		// data old-or-new invariant is asserted here.)
		_ = st
		// Whatever survived, the index must still answer delta pulls
		// truthfully: every advertised address must read back verified.
		for _, addr := range l2.PoolAddrs() {
			l2.mu.Lock()
			_, ok := l2.poolGetLocked(addr)
			l2.mu.Unlock()
			if !ok {
				t.Fatalf("%s: advertised block %s unreadable", tag, addr)
			}
		}
	}
}

// TestBlockPoolLeakReclaim injects the damage recoverBlocks exists for — an
// unreferenced (leaked) pool block and a torn pool shadow — checks that
// fsck reports both, and that the next mount reclaims both.
func TestBlockPoolLeakReclaim(t *testing.T) {
	data := append(blockOf('a'), blockOf('b')...)
	dev, l, fid := newBlockLayer(t, data)
	if err := l.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}

	// Inject a leak (a valid block no manifest references) and a torn shadow.
	junk := blockOf('z')
	pool, err := l.root.Lookup(poolDirName)
	if err != nil {
		t.Fatal(err)
	}
	leak, err := pool.Create(HashBlock(junk).String(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(leak, junk); err != nil {
		t.Fatal(err)
	}
	shadow, err := pool.Create(HashBlock(junk).String()+suffixShadow, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(shadow, junk[:10]); err != nil {
		t.Fatal(err)
	}

	problems, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	var sawLeak, sawShadow bool
	for _, p := range problems {
		if bytes.Contains([]byte(p), []byte("leaked")) {
			sawLeak = true
		}
		if bytes.Contains([]byte(p), []byte("shadow")) {
			sawShadow = true
		}
	}
	if !sawLeak || !sawShadow {
		t.Fatalf("check missed injected damage (leak=%v shadow=%v): %v", sawLeak, sawShadow, problems)
	}

	l2 := remount(t, dev, "leak-reclaim") // asserts Check is clean again
	if got := l2.BlockStats().OrphansReclaimed; got != 2 {
		t.Fatalf("OrphansReclaimed = %d, want 2", got)
	}
	if names := poolNames(t, l2); len(names) != 2 {
		t.Fatalf("pool holds %v, want the 2 referenced blocks", names)
	}
}

// TestBlockRefcountLifecycle drives the in-memory refcounts through sharing
// and release: two files sharing a block keep it pooled while either
// manifest lives, resealing a manifest over new content releases only the
// blocks no longer referenced anywhere, and the released blocks' pool files
// are reclaimed eagerly.
func TestBlockRefcountLifecycle(t *testing.T) {
	shared := blockOf('s')
	_, l, fid1 := newBlockLayer(t, append(shared, blockOf('1')...))
	root, err := l.Root()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := root.Create("g", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f2, append(shared, blockOf('2')...)); err != nil {
		t.Fatal(err)
	}
	fid2 := mustFid(t, f2)
	for _, fid := range []ids.FileID{fid1, fid2} {
		if err := l.EnsureBlocks(RootPath(), fid); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.PoolAddrs()); n != 3 { // shared, '1', '2'
		t.Fatalf("%d pool addrs, want 3", n)
	}

	// Advance file 1 to content that drops both its old blocks.  The reseal
	// must release '1' (now unreferenced -> reclaimed) but keep the shared
	// block alive for file 2.
	next := blockOf('n')
	st, err := l.FileInfo(RootPath(), fid1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.InstallFileVersionSum(RootPath(), fid1, KFile, next, st.Aux.VV.Clone().Bump(2), 1, ComputeChecksums(next)); err != nil {
		t.Fatal(err)
	}
	if err := l.EnsureBlocks(RootPath(), fid1); err != nil {
		t.Fatal(err)
	}
	addrs := map[BlockAddr]bool{}
	for _, a := range l.PoolAddrs() {
		addrs[a] = true
	}
	if len(addrs) != 3 || !addrs[HashBlock(shared)] || !addrs[HashBlock(next)] || !addrs[HashBlock(blockOf('2'))] {
		t.Fatalf("pool after reseal: %v", l.PoolAddrs())
	}
	if addrs[HashBlock(blockOf('1'))] {
		t.Fatal("released block '1' still pooled")
	}
	if problems, err := l.Check(); err != nil || len(problems) != 0 {
		t.Fatalf("check: %v %v", problems, err)
	}

	// The refcounts must survive a remount byte-identically: same pool, same
	// advertisement.
	stats := l.BlockStats()
	if stats.PoolBlocks != 3 {
		t.Fatalf("PoolBlocks = %d, want 3", stats.PoolBlocks)
	}
}

// TestCheckReportsDanglingManifest removes a referenced pool block out from
// under its manifest (external damage — no crash of our own commit order
// can produce this).  fsck must report the dangling reference, and the next
// mount must drop the manifest rather than advertise blocks it cannot
// serve.
func TestCheckReportsDanglingManifest(t *testing.T) {
	data := append(blockOf('a'), blockOf('b')...)
	dev, l, fid := newBlockLayer(t, data)
	if err := l.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	pool, err := l.root.Lookup(poolDirName)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Remove(HashBlock(blockOf('a')).String()); err != nil {
		t.Fatal(err)
	}

	problems, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range problems {
		if bytes.Contains([]byte(p), []byte("missing pool block")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("check missed the dangling manifest: %v", problems)
	}

	// remount asserts Check is clean: the manifest is gone, and block 'b'
	// (now unreferenced) was reclaimed with it.
	l2 := remount(t, dev, "dangling")
	if n := len(l2.PoolAddrs()); n != 0 {
		t.Fatalf("%d blocks advertised after recovery, want 0", n)
	}
	got, _, err := l2.FileData(RootPath(), fid)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("canonical data lost: %v", err)
	}
	// EnsureBlocks rebuilds the index from the canonical copy.
	if err := l2.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	if n := len(l2.PoolAddrs()); n != 2 {
		t.Fatalf("%d blocks after reindex, want 2", n)
	}
}

// TestPoolBadBlockEviction corrupts a pool block at rest.  A delta install
// that tries to reuse it must detect the damage (the block no longer hashes
// to its address), evict the block and its manifests, count a BadBlock, and
// refuse with the transient ErrMissingBlock so the puller retries with an
// honest advertisement — the corrupt bytes must never reach the file.
func TestPoolBadBlockEviction(t *testing.T) {
	oldData := append(blockOf('a'), blockOf('b')...)
	newData := append(append(blockOf('a'), blockOf('b')...), blockOf('c')...)
	_, l, fid := newBlockLayer(t, oldData)
	if err := l.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}

	// Flip a byte of pooled block 'a' on disk.
	pool, err := l.root.Lookup(poolDirName)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := pool.Lookup(HashBlock(blockOf('a')).String())
	if err != nil {
		t.Fatal(err)
	}
	rot := blockOf('a')
	rot[100] ^= 0x40
	if err := vnode.WriteFile(bf, rot); err != nil {
		t.Fatal(err)
	}

	st, err := l.FileInfo(RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	man := ComputeManifest(newData)
	missing := []Block{{Addr: HashBlock(blockOf('c')), Data: blockOf('c')}}
	err = l.InstallFileVersionDelta(RootPath(), fid, KFile, man, missing, st.Aux.VV.Clone().Bump(2), 1, ComputeChecksums(newData))
	if !IsMissingBlock(err) {
		t.Fatalf("install over rotten pool block: %v, want ErrMissingBlock", err)
	}
	if !retry.Transient(err) {
		t.Fatal("missing-block refusal must be transient (the entry retries)")
	}
	if got := l.BlockStats().BadBlocks; got != 1 {
		t.Fatalf("BadBlocks = %d, want 1", got)
	}
	got, _, err := l.FileData(RootPath(), fid)
	if err != nil || !bytes.Equal(got, oldData) {
		t.Fatalf("old version damaged by refused install: %v", err)
	}
	// The eviction unreferenced block 'b' too (the manifest died); after the
	// next EnsureBlocks the advertisement is honest again and the same
	// install succeeds.
	if err := l.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	if err := l.InstallFileVersionDelta(RootPath(), fid, KFile, man, missing, st.Aux.VV.Clone().Bump(2), 1, ComputeChecksums(newData)); err != nil {
		t.Fatalf("retry after reindex: %v", err)
	}
	got, _, err = l.FileData(RootPath(), fid)
	if err != nil || !bytes.Equal(got, newData) {
		t.Fatalf("retried install did not land: %v", err)
	}
	if problems, err := l.Check(); err != nil || len(problems) != 0 {
		t.Fatalf("check: %v %v", problems, err)
	}
}

// TestRemoveDropsManifest pins the local-unlink reclaim path: removing the
// last name of a file with a sealed manifest must also discard the manifest
// and release its pool blocks, or Check reports a manifest with no data file
// (the chaos convergence suites caught exactly this leak).
func TestRemoveDropsManifest(t *testing.T) {
	data := append(blockOf('a'), blockOf('b')...)
	_, l, fid := newBlockLayer(t, data)
	if err := l.EnsureBlocks(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	if got := l.BlockStats().PoolBlocks; got != 2 {
		t.Fatalf("PoolBlocks = %d, want 2", got)
	}
	root, err := l.Root()
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if addrs := l.PoolAddrs(); len(addrs) != 0 {
		t.Fatalf("PoolAddrs after remove = %d, want 0", len(addrs))
	}
	if got := l.BlockStats().PoolBlocks; got != 0 {
		t.Fatalf("PoolBlocks after remove = %d, want 0", got)
	}
	if problems, err := l.Check(); err != nil {
		t.Fatal(err)
	} else if len(problems) != 0 {
		t.Fatalf("check after remove found: %v", problems)
	}
}
