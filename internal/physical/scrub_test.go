package physical

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/invariant"
	"repro/internal/retry"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// scrubLayerWithFile builds a layer holding one sealed file and returns the
// layer and the file's id.
func scrubLayerWithFile(t *testing.T, contents string) (*Layer, vnode.Vnode) {
	t.Helper()
	l, _ := newLayer(t, 1)
	root, err := l.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := vnode.WriteFile(f, []byte(contents)); err != nil {
		t.Fatal(err)
	}
	return l, f
}

func TestScrubCleanPassVerifies(t *testing.T) {
	l, f := scrubLayerWithFile(t, "healthy bytes")
	rep, err := l.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifiedFiles != 1 || rep.VerifiedBlocks != 1 || rep.Corrupt != 0 || rep.Resealed != 0 {
		t.Fatalf("clean pass: %+v", rep)
	}
	if l.IsQuarantined(mustFid(t, f)) {
		t.Fatal("clean file quarantined")
	}
	s := l.IntegrityStats()
	if s.ScrubbedFiles != 1 || s.ScrubbedBlocks != 1 || s.CorruptionsDetected != 0 {
		t.Fatalf("integrity stats: %+v", s)
	}
}

func TestScrubDetectsBitRotAndQuarantines(t *testing.T) {
	l, f := scrubLayerWithFile(t, "soon to be damaged")
	fid := mustFid(t, f)
	if err := l.CorruptData(RootPath(), fid, 3); err != nil {
		t.Fatal(err)
	}
	// The damage is silent: reads still succeed, bytes are wrong.
	pre, err := vnode.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pre, []byte("soon to be damaged")) {
		t.Fatal("CorruptData changed nothing")
	}

	rep, err := l.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 {
		t.Fatalf("scrub missed the rot: %+v", rep)
	}
	if !l.IsQuarantined(fid) {
		t.Fatal("corrupt file not quarantined")
	}

	// Quarantined local reads answer ENOSTOR (the logical layer fails over).
	if _, err := vnode.ReadFile(f); vnode.AsErrno(err) != vnode.ENOSTOR {
		t.Fatalf("quarantined read: got %v, want ENOSTOR", err)
	}
	// Quarantined local writes answer ENOSTOR too: a write would seal the
	// damage into a fresh version.
	if _, err := f.WriteAt([]byte("x"), 0); vnode.AsErrno(err) != vnode.ENOSTOR {
		t.Fatalf("quarantined write: got %v, want ENOSTOR", err)
	}
	// The replication read path answers ErrCorrupt — a TRANSIENT error, so
	// pullers defer instead of dropping their new-version entries.
	if _, _, err := l.FileData(RootPath(), fid); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("FileData on quarantined file: %v", err)
	} else if !retry.Transient(err) {
		t.Fatalf("ErrCorrupt must classify transient: %v", err)
	}
	// FileInfo still answers: the version exists, the local bytes don't.
	if _, err := l.FileInfo(RootPath(), fid); err != nil {
		t.Fatalf("FileInfo on quarantined file: %v", err)
	}
	// The batched pull path refuses to ship the bytes.
	res, _ := l.PullBatch([]PullRequest{{Dir: RootPath(), File: fid}})
	if res[0].Status != PullError || !retry.Transient(res[0].Err) {
		t.Fatalf("pull of quarantined file: %+v", res[0])
	}

	// Detection counts once, not per pass.
	if _, err := l.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if s := l.IntegrityStats(); s.CorruptionsDetected != 1 || s.Quarantined != 1 {
		t.Fatalf("re-detection must not double count: %+v", s)
	}
}

func TestScrubReadDetectsCorruption(t *testing.T) {
	// The replication read path verifies on its own, without waiting for a
	// scrub pass.
	l, f := scrubLayerWithFile(t, "read-path detection")
	fid := mustFid(t, f)
	if err := l.CorruptData(RootPath(), fid, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.FileData(RootPath(), fid); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("FileData served corrupt bytes: %v", err)
	}
	if !l.IsQuarantined(fid) {
		t.Fatal("read-path detection must quarantine")
	}
}

func TestScrubResealsUnverifiableSidecar(t *testing.T) {
	l, f := scrubLayerWithFile(t, "lost my sidecar")
	fid := mustFid(t, f)
	cont, err := l.rootContainer()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the sidecar never landed.
	if err := cont.Remove(prefixSum + fid.String()); err != nil {
		t.Fatal(err)
	}
	rep, err := l.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resealed != 1 || rep.Corrupt != 0 {
		t.Fatalf("missing sidecar must reseal, not quarantine: %+v", rep)
	}
	// The reseal is trusted: the next pass verifies.
	rep, err = l.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifiedFiles != 1 || rep.Resealed != 0 {
		t.Fatalf("second pass: %+v", rep)
	}
}

func TestScrubNeverResealsQuarantined(t *testing.T) {
	l, f := scrubLayerWithFile(t, "damage must not be laundered")
	fid := mustFid(t, f)
	if err := l.CorruptData(RootPath(), fid, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if !l.IsQuarantined(fid) {
		t.Fatal("not quarantined")
	}
	// Tear the sidecar off: without the quarantine guard the next pass would
	// reseal the damaged bytes as if they were the version.
	cont, _ := l.rootContainer()
	if err := cont.Remove(prefixSum + fid.String()); err != nil {
		t.Fatal(err)
	}
	rep, err := l.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resealed != 0 {
		t.Fatal("scrub resealed a quarantined replica (laundered the damage)")
	}
	if !l.IsQuarantined(fid) {
		t.Fatal("quarantine lifted without a verified install")
	}
}

func TestVerifiedInstallClearsQuarantine(t *testing.T) {
	l, f := scrubLayerWithFile(t, "original")
	fid := mustFid(t, f)
	st, err := l.FileInfo(RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	goodVV := st.Aux.VV.Clone()
	if err := l.CorruptData(RootPath(), fid, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if !l.IsQuarantined(fid) {
		t.Fatal("not quarantined")
	}

	// A peer re-supplies the same version with matching checksums: the
	// install verifies, lands, and lifts the quarantine as a repair.
	data := []byte("original")
	if err := l.InstallFileVersionSum(RootPath(), fid, KFile, data, goodVV, 1, ComputeChecksums(data)); err != nil {
		t.Fatal(err)
	}
	if l.IsQuarantined(fid) {
		t.Fatal("verified install must clear quarantine")
	}
	if got, err := vnode.ReadFile(f); err != nil || string(got) != "original" {
		t.Fatalf("after repair: %q %v", got, err)
	}
	if s := l.IntegrityStats(); s.Repaired != 1 {
		t.Fatalf("repair not counted: %+v", s)
	}
	// And it survives another scrub cleanly.
	rep, err := l.ScrubPass()
	if err != nil || rep.Corrupt != 0 {
		t.Fatalf("post-repair scrub: %+v %v", rep, err)
	}
}

func TestInstallRejectsMismatchedChecksums(t *testing.T) {
	// With invariants armed this condition panics instead (see the fire
	// test below); here we pin the production path: a transient error.
	defer invariant.ForceForTest(false)()
	l, f := scrubLayerWithFile(t, "v1")
	fid := mustFid(t, f)
	st, err := l.FileInfo(RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	newVV := st.Aux.VV.Clone().Bump(2)
	// Checksums advertise different bytes than the payload: damage in
	// flight.  The install must refuse before touching disk.
	wrong := ComputeChecksums([]byte("what the server promised"))
	err = l.InstallFileVersionSum(RootPath(), fid, KFile, []byte("what arrived"), newVV, 1, wrong)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched install: got %v, want ErrCorrupt", err)
	}
	if !retry.Transient(err) {
		t.Fatalf("rejected install must classify transient: %v", err)
	}
	if got, _ := vnode.ReadFile(f); string(got) != "v1" {
		t.Fatalf("rejected install must not change the file: %q", got)
	}
}

// TestInstallMismatchFiresInvariant: under FICUS_INVARIANTS=1 a payload
// that contradicts its advertised sidecar is an invariant violation, not
// just an error.
func TestInstallMismatchFiresInvariant(t *testing.T) {
	l, _ := scrubLayerWithFile(t, "v1")
	fid, err := l.NextID()
	if err != nil {
		t.Fatal(err)
	}
	wrong := ComputeChecksums([]byte("promised"))
	mustViolate(t, func() {
		_ = l.InstallFileVersionSum(RootPath(), fid, KFile, []byte("arrived"), vv.New().Bump(2), 1, wrong)
	})
}

// TestInstallMatchingChecksumsPassesInvariant: the legitimate verified
// install must not fire even with invariants armed.
func TestInstallMatchingChecksumsPassesInvariant(t *testing.T) {
	defer invariant.ForceForTest(true)()
	l, f := scrubLayerWithFile(t, "v1")
	fid := mustFid(t, f)
	st, err := l.FileInfo(RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("v2")
	if err := l.InstallFileVersionSum(RootPath(), fid, KFile, data, st.Aux.VV.Clone().Bump(2), 1, ComputeChecksums(data)); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionClearsQuarantineWithoutRepairCredit(t *testing.T) {
	l, f := scrubLayerWithFile(t, "evict me")
	fid := mustFid(t, f)
	if err := l.CorruptData(RootPath(), fid, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if !l.IsQuarantined(fid) {
		t.Fatal("not quarantined")
	}
	if err := l.EvictFileStorage(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	if l.IsQuarantined(fid) {
		t.Fatal("eviction must drop the quarantine entry")
	}
	if s := l.IntegrityStats(); s.Repaired != 0 {
		t.Fatalf("eviction is not a repair: %+v", s)
	}
}

func TestRepairDueAndBackoffBookkeeping(t *testing.T) {
	l, f := scrubLayerWithFile(t, "backoff")
	fid := mustFid(t, f)
	if err := l.CorruptData(RootPath(), fid, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if due := l.RepairDue(0); len(due) != 1 || due[0].File != fid {
		t.Fatalf("due list: %+v", due)
	}
	l.DeferRepair(fid, 10)
	if due := l.RepairDue(9); len(due) != 0 {
		t.Fatalf("deferred entry still due: %+v", due)
	}
	if due := l.RepairDue(10); len(due) != 1 || due[0].Attempts != 1 {
		t.Fatalf("entry not due again at its tick: %+v", due)
	}
	l.NoteUnrepairable(fid)
	l.NoteUnrepairable(fid) // idempotent within one quarantine spell
	if s := l.IntegrityStats(); s.Unrepairable != 1 {
		t.Fatalf("unrepairable must count once per spell: %+v", s)
	}
}
