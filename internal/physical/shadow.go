package physical

import (
	"strings"

	"repro/internal/ids"
	"repro/internal/invariant"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// Ficus contains a single-file atomic commit service to support file update
// propagation (paper §3.2): "A shadow file replica is used to hold the new
// version until it is completely propagated, and then the shadow atomically
// replaces the original by changing a low-level directory reference.  If a
// crash occurs before the shadow substitution, the original replica is
// retained during recovery and the shadow discarded."

// InstallFileVersion atomically replaces the local replica of file fid in
// directory dirPath with data, setting its version vector to newVV (the
// caller — the propagation daemon or reconciliation — has already decided
// that the remote version dominates, or has merged vectors after resolving
// a conflict).  If the file is not stored locally, storage is created: this
// is also how a replica acquires its first copy of a file during subtree
// reconciliation.
func (l *Layer) InstallFileVersion(dirPath []ids.FileID, fid ids.FileID, kind Kind, data []byte, newVV vv.Vector, nlink uint32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	base := prefixData + fid.String()
	shadow := base + suffixShadow

	// Per-replica counter monotonicity: the caller has decided the new
	// vector dominates (or is a conflict resolution merged+bumped above)
	// the stored one, so no component — in particular not our own update
	// counter, which only we originate — may move backwards.
	if invariant.Enabled() {
		if old, err := readAuxFile(cont, prefixAux+fid.String()); err == nil {
			invariant.Checkf(newVV.DominatesOrEqual(old.VV),
				"physical: installing version vector %s that does not dominate stored %s for file %s (replica %d counter would regress)",
				newVV, old.VV, fid, l.replica)
		}
	}

	// 1. Write the complete new version into the shadow.
	sf, err := cont.Create(shadow, false)
	if err != nil {
		return err
	}
	if err := vnode.WriteFile(sf, data); err != nil {
		return err
	}
	// 2. Atomically substitute the shadow for the original.
	if err := cont.Rename(shadow, cont, base); err != nil {
		return err
	}
	// 3. Record the new version vector.  A crash between 2 and 3 leaves
	// new data under the old vector; the next propagation re-pulls and
	// re-installs — safe because installation is idempotent.
	if nlink == 0 {
		nlink = 1
	}
	aux := Aux{Type: kind, Nlink: nlink, VV: newVV.Clone()}
	return writeAuxFile(cont, prefixAux+fid.String(), &aux)
}

// Recover scans every directory container for leftover shadow files and
// applies the paper's recovery rule: if the original replica survives, the
// shadow is discarded; if the crash landed mid-substitution (original gone,
// complete shadow present), the shadow is promoted.
func (l *Layer) Recover() error {
	cont, err := l.rootContainer()
	if err != nil {
		// A freshly formatted store that failed before creating the root
		// container has nothing to recover.
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil
		}
		return err
	}
	return l.recoverContainer(cont)
}

func (l *Layer) recoverContainer(cont vnode.Vnode) error {
	ents, err := cont.Readdir()
	if err != nil {
		return err
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name, suffixShadow):
			base := strings.TrimSuffix(e.Name, suffixShadow)
			if _, err := cont.Lookup(base); err == nil {
				// Original intact: crash before substitution; discard.
				if err := cont.Remove(e.Name); err != nil {
					return err
				}
			} else if vnode.AsErrno(err) == vnode.ENOENT {
				// Mid-substitution: the shadow is the complete new version.
				if err := cont.Rename(e.Name, cont, base); err != nil {
					return err
				}
			} else {
				return err
			}
		case strings.HasPrefix(e.Name, prefixDir) && e.Type == vnode.VDir:
			sub, err := cont.Lookup(e.Name)
			if err != nil {
				return err
			}
			if err := l.recoverContainer(sub); err != nil {
				return err
			}
		}
	}
	return nil
}
