package physical

import (
	"fmt"
	"strings"

	"repro/internal/ids"
	"repro/internal/invariant"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// Ficus contains a single-file atomic commit service to support file update
// propagation (paper §3.2): "A shadow file replica is used to hold the new
// version until it is completely propagated, and then the shadow atomically
// replaces the original by changing a low-level directory reference.  If a
// crash occurs before the shadow substitution, the original replica is
// retained during recovery and the shadow discarded."

// InstallFileVersion atomically replaces the local replica of file fid in
// directory dirPath with data, setting its version vector to newVV (the
// caller — the propagation daemon or reconciliation — has already decided
// that the remote version dominates, or has merged vectors after resolving
// a conflict).  If the file is not stored locally, storage is created: this
// is also how a replica acquires its first copy of a file during subtree
// reconciliation.
func (l *Layer) InstallFileVersion(dirPath []ids.FileID, fid ids.FileID, kind Kind, data []byte, newVV vv.Vector, nlink uint32) error {
	return l.InstallFileVersionSum(dirPath, fid, kind, data, newVV, nlink, nil)
}

// InstallFileVersionSum is InstallFileVersion with an advertised checksum
// summary: cs, when non-nil, is the serving replica's sealed sidecar for
// exactly this version.  The payload is verified against it before anything
// touches disk — a mismatch (damage in flight, or a serving replica whose
// own verification was bypassed) rejects the install with ErrCorrupt and,
// under FICUS_INVARIANTS=1, is an invariant violation.  nil cs installs
// optimistically and the sidecar is sealed from the received bytes.
func (l *Layer) InstallFileVersionSum(dirPath []ids.FileID, fid ids.FileID, kind Kind, data []byte, newVV vv.Vector, nlink uint32, cs *Checksums) error {
	if cs != nil && !cs.Verify(data) {
		invariant.Checkf(false,
			"physical: install of %s rejected: payload (%d bytes) does not match advertised checksums (length %d)",
			fid, len(data), cs.Length)
		return fmt.Errorf("%w: install of %s rejected (payload does not match advertised sidecar)", ErrCorrupt, fid)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	return l.commitFileVersionLocked(cont, fid, kind, data, newVV, nlink, cs)
}

// commitFileVersionLocked is the shared single-file atomic commit sequence:
// whole-file installs and delta installs (delta.go) both land here once
// their payload is verified and fully assembled.  Caller holds l.mu.
func (l *Layer) commitFileVersionLocked(cont vnode.Vnode, fid ids.FileID, kind Kind, data []byte, newVV vv.Vector, nlink uint32, cs *Checksums) error {
	base := prefixData + fid.String()
	shadow := base + suffixShadow

	// Per-replica counter monotonicity: the caller has decided the new
	// vector dominates (or is a conflict resolution merged+bumped above)
	// the stored one, so no component — in particular not our own update
	// counter, which only we originate — may move backwards.
	if invariant.Enabled() {
		if old, err := readAuxFile(cont, prefixAux+fid.String()); err == nil {
			invariant.Checkf(newVV.DominatesOrEqual(old.VV),
				"physical: installing version vector %s that does not dominate stored %s for file %s (replica %d counter would regress)",
				newVV, old.VV, fid, l.replica)
		}
	}

	// 1. Write the complete new version into the shadow.
	sf, err := cont.Create(shadow, false)
	if err != nil {
		return err
	}
	if err := vnode.WriteFile(sf, data); err != nil {
		return err
	}
	// 2. Commit the sidecar, sealed under newVV.  It is stale (sealed vector
	// != aux vector) until step 4 lands, so every crash window in between
	// reads as "unverifiable" — the scrubber reseals — never as a false
	// checksum mismatch.
	if cs == nil {
		cs = ComputeChecksums(data)
	}
	if err := writeSidecar(cont, fid, newVV, cs); err != nil {
		return err
	}
	// 3. Atomically substitute the shadow for the original.
	if err := cont.Rename(shadow, cont, base); err != nil {
		return err
	}
	// 4. Record the new version vector.  A crash between 3 and 4 leaves
	// new data under the old vector; the next propagation re-pulls and
	// re-installs — safe because installation is idempotent.
	if nlink == 0 {
		nlink = 1
	}
	aux := Aux{Type: kind, Nlink: nlink, VV: newVV.Clone()}
	if err := writeAuxFile(cont, prefixAux+fid.String(), &aux); err != nil {
		return err
	}
	// A verified install over a quarantined replica is its repair.
	l.clearQuarantineLocked(fid, true)
	return nil
}

// Recover scans every directory container for leftover shadow files and
// applies the paper's recovery rule: if the original replica survives, the
// shadow is discarded; if the crash landed mid-substitution (original gone,
// complete shadow present), the shadow is promoted.
func (l *Layer) Recover() error {
	cont, err := l.rootContainer()
	if err != nil {
		// A freshly formatted store that failed before creating the root
		// container has nothing to recover.
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil
		}
		return err
	}
	return l.recoverContainer(cont)
}

func (l *Layer) recoverContainer(cont vnode.Vnode) error {
	ents, err := cont.Readdir()
	if err != nil {
		return err
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name, suffixShadow):
			base := strings.TrimSuffix(e.Name, suffixShadow)
			if _, err := cont.Lookup(base); err == nil {
				// Original intact: crash before substitution; discard.
				if err := cont.Remove(e.Name); err != nil {
					return err
				}
			} else if vnode.AsErrno(err) == vnode.ENOENT {
				// Mid-substitution: the shadow is the complete new version.
				if err := cont.Rename(e.Name, cont, base); err != nil {
					return err
				}
			} else {
				return err
			}
		case strings.HasPrefix(e.Name, prefixDir) && e.Type == vnode.VDir:
			sub, err := cont.Lookup(e.Name)
			if err != nil {
				return err
			}
			if err := l.recoverContainer(sub); err != nil {
				return err
			}
		}
	}
	return nil
}
