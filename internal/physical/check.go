package physical

import (
	"fmt"
	"strings"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// Check is the Ficus-level fsck: it walks the volume replica's container
// tree and verifies the invariants the physical layer maintains on top of
// UFS (§2.6).  It returns a list of problems (empty means clean):
//
//   - every directory container has a decodable contents file and aux file
//   - every live file entry with local storage has BOTH a data file and a
//     decodable auxiliary attribute file, with a consistent link count
//   - every live directory entry's container (if stored) is well-formed
//   - no leftover shadow files (recovery should have consumed them)
//   - no orphaned storage: every F/A/D member of a container is named by
//     some entry (live or tombstone) of that directory
//   - entry ids are unique within each directory
//   - block refcounts: every block a manifest references is present in the
//     pool, and every pool block is referenced by at least one manifest
func (l *Layer) Check() ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var problems []string
	cont, err := l.rootContainer()
	if err != nil {
		return []string{fmt.Sprintf("volume root container missing: %v", err)}, nil
	}
	poolRefs := make(map[BlockAddr]bool)
	if err := l.checkContainerLocked(cont, ids.RootFileID, "/", &problems, poolRefs); err != nil {
		return problems, err
	}
	if err := l.checkPoolLocked(&problems, poolRefs); err != nil {
		return problems, err
	}
	return problems, nil
}

// checkPoolLocked audits the block pool against the references collected
// from the manifests: an unreferenced pool block is a leak (mount-time
// reclaim should have collected it), a torn shadow is incomplete recovery,
// an unparsable name is foreign junk.
func (l *Layer) checkPoolLocked(problems *[]string, poolRefs map[BlockAddr]bool) error {
	pool, err := l.root.Lookup(poolDirName)
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil // block layer never used on this store
		}
		return err
	}
	ents, err := pool.Readdir()
	if err != nil {
		return err
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name, suffixShadow) {
			*problems = append(*problems, fmt.Sprintf("pool: leftover block shadow %q (crash recovery incomplete)", e.Name))
			continue
		}
		addr, ok := parseBlockName(e.Name)
		if !ok {
			*problems = append(*problems, fmt.Sprintf("pool: unparsable block name %q", e.Name))
			continue
		}
		if !poolRefs[addr] {
			*problems = append(*problems, fmt.Sprintf("pool: block %s referenced by no manifest (leaked)", addr))
		}
	}
	return nil
}

func (l *Layer) checkContainerLocked(cont vnode.Vnode, dirFid ids.FileID, path string, problems *[]string, poolRefs map[BlockAddr]bool) error {
	report := func(format string, args ...any) {
		*problems = append(*problems, fmt.Sprintf("%s: ", path)+fmt.Sprintf(format, args...))
	}

	// The directory's own metadata.
	entries, err := l.readDirFileLocked(cont)
	if err != nil {
		report("unreadable directory contents file: %v", err)
		return nil
	}
	if _, err := readAuxFile(cont, dirAttrName); err != nil {
		report("unreadable directory attribute file: %v", err)
	}

	// Entry-id uniqueness and per-child reference counts.
	seen := make(map[ids.FileID]bool, len(entries))
	liveRefs := make(map[ids.FileID]int)
	named := make(map[ids.FileID]bool)
	for _, e := range entries {
		if seen[e.EID] {
			report("duplicate entry id %v (name %q)", e.EID, e.Name)
		}
		seen[e.EID] = true
		named[e.Child] = true
		if e.Live() {
			liveRefs[e.Child]++
		}
	}

	// Container members.
	members, err := cont.Readdir()
	if err != nil {
		return err
	}
	stored := make(map[string]bool, len(members))
	for _, m := range members {
		stored[m.Name] = true
	}
	for _, m := range members {
		switch {
		case m.Name == dirFileName || m.Name == dirAttrName || m.Name == metaFileName:
		case strings.HasSuffix(m.Name, suffixShadow):
			report("leftover shadow file %q (crash recovery incomplete)", m.Name)
		case strings.HasPrefix(m.Name, prefixData):
			fid, err := ids.ParseFileID(m.Name[len(prefixData):])
			if err != nil {
				report("unparsable data file name %q", m.Name)
				continue
			}
			if !named[fid] {
				report("orphaned data file %q (no entry names %v)", m.Name, fid)
			}
			if !stored[prefixAux+fid.String()] {
				report("data file %q has no auxiliary attribute file", m.Name)
			}
		case strings.HasPrefix(m.Name, prefixAux):
			fid, err := ids.ParseFileID(m.Name[len(prefixAux):])
			if err != nil {
				report("unparsable aux file name %q", m.Name)
				continue
			}
			if !named[fid] {
				report("orphaned aux file %q", m.Name)
			}
			aux, err := readAuxFileFollow(l.root, cont, m.Name)
			if err != nil {
				report("undecodable aux file %q: %v", m.Name, err)
				continue
			}
			if refs := liveRefs[fid]; refs > 0 && int(aux.Nlink) != refs {
				report("aux %v nlink=%d but %d live entries name it", fid, aux.Nlink, refs)
			}
			if !stored[prefixData+fid.String()] {
				report("aux file %q has no data file", m.Name)
			}
		case strings.HasPrefix(m.Name, prefixSum):
			fid, err := ids.ParseFileID(m.Name[len(prefixSum):])
			if err != nil {
				report("unparsable checksum sidecar name %q", m.Name)
				continue
			}
			// A sidecar without its data file, or naming no entry, is an
			// orphan.  A *missing* or stale sidecar is NOT a problem: crash
			// windows legitimately leave one, and the scrubber reseals.
			if !named[fid] {
				report("orphaned checksum sidecar %q", m.Name)
			}
			if !stored[prefixData+fid.String()] {
				report("checksum sidecar %q has no data file", m.Name)
			}
		case strings.HasPrefix(m.Name, prefixManifest):
			fid, err := ids.ParseFileID(m.Name[len(prefixManifest):])
			if err != nil {
				report("unparsable block manifest name %q", m.Name)
				continue
			}
			// Like the checksum sidecar: an orphaned or dangling manifest is
			// a problem, a missing or STALE one is not (crash windows leave
			// stale seals; EnsureBlocks reseals).
			if !named[fid] {
				report("orphaned block manifest %q", m.Name)
			}
			if !stored[prefixData+fid.String()] {
				report("block manifest %q has no data file", m.Name)
			}
			_, man, err := readManifest(l.root, cont, fid)
			if err != nil {
				report("undecodable block manifest %q: %v", m.Name, err)
				continue
			}
			for _, addr := range man.Blocks {
				poolRefs[addr] = true
				if !l.poolHasLocked(addr) {
					report("block manifest %v references missing pool block %s", fid, addr)
				}
			}
		case strings.HasPrefix(m.Name, prefixDir):
			fid, err := ids.ParseFileID(m.Name[len(prefixDir):])
			if err != nil {
				report("unparsable container name %q", m.Name)
				continue
			}
			if !named[fid] && fid != ids.RootFileID {
				report("orphaned directory container %q", m.Name)
			}
		default:
			report("unidentified container member %q", m.Name)
		}
	}

	// Live entries with local storage must resolve; recurse into stored
	// child directories.
	for _, e := range entries {
		if !e.Live() {
			continue
		}
		if e.Kind.IsDir() {
			if !stored[prefixDir+e.Child.String()] {
				continue // legitimately not stored here (§4.1)
			}
			sub, err := lookupFollow(l.root, cont, prefixDir+e.Child.String())
			if err != nil {
				report("entry %q: container lookup failed: %v", e.Name, err)
				continue
			}
			if err := l.checkContainerLocked(sub, e.Child, path+e.Name+"/", problems, poolRefs); err != nil {
				return err
			}
			continue
		}
		hasData := stored[prefixData+e.Child.String()]
		hasAux := stored[prefixAux+e.Child.String()]
		if hasData != hasAux {
			report("entry %q: partial storage (data=%v aux=%v)", e.Name, hasData, hasAux)
		}
	}
	return nil
}
