package physical

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/vnode"
	"repro/internal/vv"
)

func TestParseHandleRoundTrip(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	d, _ := root.Mkdir("d")
	f, _ := d.Create("f", true)
	ln := mustSymlink(t, d, "ln", "target")

	for _, v := range []vnode.Vnode{root, d, f, ln} {
		kind, dirPath, fid, err := ParseHandle(v.Handle())
		if err != nil {
			t.Fatalf("ParseHandle(%q): %v", v.Handle(), err)
		}
		a, _ := v.Getattr()
		wantFid, _ := ids.ParseFileID(a.FileID)
		if fid != wantFid {
			t.Fatalf("fid %v, want %v", fid, wantFid)
		}
		switch a.Type {
		case vnode.VDir:
			if !kind.IsDir() {
				t.Fatalf("kind %v for dir", kind)
			}
		case vnode.VLnk:
			if kind != KSymlink {
				t.Fatalf("kind %v for symlink", kind)
			}
		default:
			if kind != KFile {
				t.Fatalf("kind %v for file", kind)
			}
		}
		_ = dirPath
	}
	for _, bad := range []string{"", "x", "q|000000010000000000000001", "f|zz"} {
		if _, _, _, err := ParseHandle(bad); err == nil {
			t.Errorf("ParseHandle(%q) accepted", bad)
		}
	}
}

func mustSymlink(t *testing.T, dir vnode.Vnode, name, target string) vnode.Vnode {
	t.Helper()
	if err := dir.Symlink(name, target); err != nil {
		t.Fatal(err)
	}
	v, err := dir.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEvictAndStoresFile(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("data"))
	fid := mustFid(t, f)
	if !l.StoresFile(RootPath(), fid) {
		t.Fatal("StoresFile false for stored file")
	}
	if err := l.EvictFileStorage(RootPath(), fid); err != nil {
		t.Fatal(err)
	}
	if l.StoresFile(RootPath(), fid) {
		t.Fatal("StoresFile true after eviction")
	}
	// The entry survives; data access reports not-stored.
	ents, _ := root.Readdir()
	if len(ents) != 1 {
		t.Fatalf("entry lost: %v", ents)
	}
	if _, err := root.Lookup("f"); vnode.AsErrno(err) != vnode.ENOSTOR {
		t.Fatalf("lookup: %v", err)
	}
	// Double evict reports not stored; unknown fid reports ENOENT.
	if err := l.EvictFileStorage(RootPath(), fid); !errors.Is(err, ErrNotStored) {
		t.Fatalf("double evict: %v", err)
	}
	ghost := ids.FileID{Issuer: 7, Seq: 777}
	if err := l.EvictFileStorage(RootPath(), ghost); vnode.AsErrno(err) != vnode.ENOENT {
		t.Fatalf("ghost evict: %v", err)
	}
	// Re-install (as reconciliation would) restores storage.
	if err := l.InstallFileVersion(RootPath(), fid, KFile, []byte("data"), vv.New().Bump(2), 1); err != nil {
		t.Fatal(err)
	}
	if !l.StoresFile(RootPath(), fid) {
		t.Fatal("not restored")
	}
	checkFicusClean(t, l)
}

func TestClearConflictsFor(t *testing.T) {
	l, _ := newLayer(t, 1)
	a := ids.FileID{Issuer: 1, Seq: 10}
	b := ids.FileID{Issuer: 1, Seq: 11}
	l.ReportConflict(Conflict{File: a, LocalVV: vv.New().Bump(1), RemoteVV: vv.New().Bump(2)})
	l.ReportConflict(Conflict{File: b, LocalVV: vv.New().Bump(1), RemoteVV: vv.New().Bump(2)})
	l.ClearConflictsFor(a)
	got := l.Conflicts()
	if len(got) != 1 || got[0].File != b {
		t.Fatalf("%+v", got)
	}
}

func TestSetattrPaths(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("0123456789"))
	mode := uint16(0o640)
	size := uint64(4)
	if err := f.Setattr(vnode.SetAttr{Mode: &mode, Size: &size}); err != nil {
		t.Fatal(err)
	}
	a, _ := f.Getattr()
	if a.Size != 4 || a.Mode != 0o640 {
		t.Fatalf("%+v", a)
	}
	// Setattr on a directory ignores mode gracefully.
	d, _ := root.Mkdir("d")
	if err := d.Setattr(vnode.SetAttr{Mode: &mode}); err != nil {
		t.Fatal(err)
	}
	// A setattr mutation bumps the version vector.
	st, _ := l.FileInfo(RootPath(), mustFid(t, f))
	before := st.Aux.VV.Total()
	if err := f.Setattr(vnode.SetAttr{Mode: &mode}); err != nil {
		t.Fatal(err)
	}
	st, _ = l.FileInfo(RootPath(), mustFid(t, f))
	if st.Aux.VV.Total() != before+1 {
		t.Fatalf("vv %d -> %d", before, st.Aux.VV.Total())
	}
}

func TestMkGraftSurface(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	target := ids.VolumeHandle{Allocator: 9, Volume: 9}
	gp, err := root.(interface {
		MkGraft(string, ids.VolumeHandle) (vnode.Vnode, error)
	}).MkGraft("mnt", target)
	if err != nil {
		t.Fatal(err)
	}
	a, err := gp.Getattr()
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != vnode.VDir || a.GraftVol != target.String() {
		t.Fatalf("%+v", a)
	}
	// Kind survives the aux file and the Kind stringer works.
	gpFid, _ := ids.ParseFileID(a.FileID)
	st, err := l.FileInfo(RootPath(), gpFid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aux.Type != KGraft || st.Aux.GraftVol != target {
		t.Fatalf("%+v", st.Aux)
	}
	for k, want := range map[Kind]string{KFile: "file", KDir: "dir", KSymlink: "symlink", KGraft: "graft"} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
	if Kind(0).String() == "" {
		t.Error("unknown kind renders empty")
	}
	if l.Store() == nil {
		t.Error("Store accessor")
	}
	if err := l.Sync(); err != nil {
		t.Error(err)
	}
}
