package physical

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// Open/close over lookup (paper §2.3).  The NFS protocol has no open or
// close operation, so "a layer intending to receive an open will never get
// it if NFS is in between."  Ficus therefore encodes an open or close
// request as an ASCII string of sufficient length to be passed on by NFS
// without interpretation, and ships it through the Lookup service.  The
// physical layer recognizes the encoding, performs the open/close
// bookkeeping, and returns the target vnode.
//
// Wire shape (all fields fixed width except the trailing name):
//
//	.#ficus#:<op 5>:<flags 8 hex>:<logical layer volume handle 17>:<name>
//
// The fixed overhead is EncOverhead bytes, which shrinks the maximum
// client-visible name component from the UFS's 255 to MaxEncodedName —
// the paper's "reduction ... from 255 to about 200" (§2.3 fn2), about
// which the authors note "we've never seen a component of even length 40."

// Encoding constants.
const (
	encPrefix = ".#ficus#:"
	opOpen    = "open."
	opClose   = "close"

	// EncOverhead is the fixed byte cost of the encoding.
	// prefix(9) + op(5) + ":"(1) + flags(8) + ":"(1) + volume handle(17) + ":"(1)
	EncOverhead = len(encPrefix) + 5 + 1 + 8 + 1 + 17 + 1

	// SubstrateMaxName is the longest name the UFS substrate accepts.
	SubstrateMaxName = 255

	// MaxEncodedName is the name budget left for clients once the
	// open/close encoding must fit in a substrate name.
	MaxEncodedName = SubstrateMaxName - EncOverhead
)

// EncodeOpenLookup renders an open or close of name (flags f) issued by the
// logical layer serving volume issuer.
func EncodeOpenLookup(open bool, f vnode.OpenFlags, issuer ids.VolumeHandle, name string) string {
	op := opClose
	if open {
		op = opOpen
	}
	return fmt.Sprintf("%s%s:%08x:%s:%s", encPrefix, op, uint32(f), issuer, name)
}

// IsEncodedLookup reports whether a lookup name carries an open/close.
func IsEncodedLookup(name string) bool { return strings.HasPrefix(name, encPrefix) }

// DecodeOpenLookup parses an encoded lookup.
func DecodeOpenLookup(s string) (open bool, f vnode.OpenFlags, issuer ids.VolumeHandle, name string, err error) {
	if !IsEncodedLookup(s) {
		return false, 0, ids.VolumeHandle{}, "", vnode.EINVAL
	}
	rest := s[len(encPrefix):]
	parts := strings.SplitN(rest, ":", 4)
	if len(parts) != 4 {
		return false, 0, ids.VolumeHandle{}, "", vnode.EINVAL
	}
	switch parts[0] {
	case opOpen:
		open = true
	case opClose:
		open = false
	default:
		return false, 0, ids.VolumeHandle{}, "", vnode.EINVAL
	}
	fl, perr := strconv.ParseUint(parts[1], 16, 32)
	if perr != nil {
		return false, 0, ids.VolumeHandle{}, "", vnode.EINVAL
	}
	vh, perr := ids.ParseVolumeHandle(parts[2])
	if perr != nil {
		return false, 0, ids.VolumeHandle{}, "", vnode.EINVAL
	}
	return open, vnode.OpenFlags(fl), vh, parts[3], nil
}
