package physical

// Quarantine: the holding state for a stored file replica whose data fails
// its sealed block checksums.  A quarantined replica keeps its directory
// entry and aux attributes — the *version* still exists in the name space —
// but its local bytes are untrusted:
//
//   - local reads answer ENOSTOR so the logical layer fails over to a
//     replica that can serve the version (one-copy availability, §2.2);
//   - the replication read path (FileData) answers ErrCorrupt, a TRANSIENT
//     error, so a puller defers and re-arms its new-version cache entry
//     instead of dropping it — corruption is never propagated;
//   - the scrub/repair daemon re-pulls the version from a peer whose vector
//     dominates-or-equals the quarantined one, verifies the shipped
//     checksums, and reinstalls, clearing the quarantine.

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/vv"
)

// QuarEntry is one quarantined file replica awaiting repair.
type QuarEntry struct {
	File ids.FileID
	Dir  []ids.FileID // fid path of the containing directory
	VV   vv.Vector    // aux vector of the corrupt version (repair must dominate-or-equal it)

	// Repair bookkeeping, mirroring NewVersion: failed attempts back off on
	// the virtual daemon clock instead of hammering an unreachable peer.
	Attempts  int
	NotBefore uint64

	// Unrepairable records that at least one repair round got a definitive
	// refusal from every known peer (counted once, for stats); repair keeps
	// retrying regardless — a peer may yet reappear with a good copy.
	Unrepairable bool
}

// IntegrityStats counts the integrity subsystem's work on one volume
// replica.  Quarantined is a gauge (currently quarantined files); the rest
// are cumulative.
type IntegrityStats struct {
	ScrubbedFiles       uint64 // file versions whose checksums were verified
	ScrubbedBlocks      uint64 // block checksums verified
	Resealed            uint64 // unverifiable sidecars recomputed from local data
	CorruptionsDetected uint64 // checksum failures that entered quarantine
	Repaired            uint64 // quarantined versions healed from a peer
	Unrepairable        uint64 // repair rounds where every known peer definitively refused
	Quarantined         uint64 // files currently in quarantine

	// Delta-propagation counters (mirrored from the block layer, delta.go):
	// blocks this replica shipped to peers that lacked them, blocks its own
	// delta installs reassembled from the local pool, and the payload bytes
	// those reuses kept off the wire.
	BlocksShipped   uint64
	BlocksReused    uint64
	DeltaBytesSaved uint64
}

// Add accumulates (aggregation across layers and hosts).
func (s *IntegrityStats) Add(t IntegrityStats) {
	s.ScrubbedFiles += t.ScrubbedFiles
	s.ScrubbedBlocks += t.ScrubbedBlocks
	s.Resealed += t.Resealed
	s.CorruptionsDetected += t.CorruptionsDetected
	s.Repaired += t.Repaired
	s.Unrepairable += t.Unrepairable
	s.Quarantined += t.Quarantined
	s.BlocksShipped += t.BlocksShipped
	s.BlocksReused += t.BlocksReused
	s.DeltaBytesSaved += t.DeltaBytesSaved
}

// String renders the stats compactly.
func (s IntegrityStats) String() string {
	return fmt.Sprintf("scrubbed=%d blocks=%d resealed=%d corrupt=%d repaired=%d unrepairable=%d quarantined=%d shipped=%d reused=%d saved=%dB",
		s.ScrubbedFiles, s.ScrubbedBlocks, s.Resealed, s.CorruptionsDetected, s.Repaired, s.Unrepairable, s.Quarantined,
		s.BlocksShipped, s.BlocksReused, s.DeltaBytesSaved)
}

// IntegrityStats returns a snapshot of this volume replica's counters.
func (l *Layer) IntegrityStats() IntegrityStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.integ
	s.Quarantined = uint64(len(l.quar))
	s.BlocksShipped = l.bstats.BlocksShipped
	s.BlocksReused = l.bstats.BlocksReused
	s.DeltaBytesSaved = l.bstats.BytesSaved
	return s
}

// quarantineLocked places fid in quarantine under vector vvec (a no-op when
// already quarantined, so repeated detections of the same damage count
// once).  Caller holds l.mu.
func (l *Layer) quarantineLocked(dirPath []ids.FileID, fid ids.FileID, vvec vv.Vector) {
	if _, ok := l.quar[fid]; ok {
		return
	}
	l.quar[fid] = QuarEntry{
		File: fid,
		Dir:  append([]ids.FileID(nil), dirPath...),
		VV:   vvec.Clone(),
	}
	l.integ.CorruptionsDetected++
}

// clearQuarantineLocked lifts fid's quarantine; repaired records whether a
// verified replacement landed (counted) or the quarantine simply became
// moot (e.g. the storage was evicted).  Caller holds l.mu.
func (l *Layer) clearQuarantineLocked(fid ids.FileID, repaired bool) {
	if _, ok := l.quar[fid]; !ok {
		return
	}
	delete(l.quar, fid)
	if repaired {
		l.integ.Repaired++
	}
}

// isQuarantinedLocked reports whether fid is quarantined.  Caller holds l.mu.
func (l *Layer) isQuarantinedLocked(fid ids.FileID) bool {
	_, ok := l.quar[fid]
	return ok
}

// IsQuarantined reports whether fid's local copy is quarantined.
func (l *Layer) IsQuarantined(fid ids.FileID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.isQuarantinedLocked(fid)
}

// QuarantinedVersions lists the quarantine set in deterministic file-id
// order.
func (l *Layer) QuarantinedVersions() []QuarEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QuarEntry, 0, len(l.quar))
	for _, q := range l.quar {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return eidLess(out[i].File, out[j].File) })
	return out
}

// DeferRepair records a failed repair attempt for file: the attempt count
// grows and the entry is not due again before daemon tick notBefore.
func (l *Layer) DeferRepair(file ids.FileID, notBefore uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if q, ok := l.quar[file]; ok {
		q.Attempts++
		q.NotBefore = notBefore
		l.quar[file] = q
	}
}

// NoteUnrepairable records a repair round in which every known peer
// definitively refused (no copy, or only dominated/unverifiable versions).
// Counted once per quarantine spell; the entry stays queued — optimism says
// a healthy replica may yet reappear.
func (l *Layer) NoteUnrepairable(file ids.FileID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	q, ok := l.quar[file]
	if !ok || q.Unrepairable {
		return
	}
	q.Unrepairable = true
	l.quar[file] = q
	l.integ.Unrepairable++
}
