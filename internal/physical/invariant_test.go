package physical

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/invariant"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// mustViolate runs fn expecting an armed invariant to fire.
func mustViolate(t *testing.T, fn func()) *invariant.Violation {
	t.Helper()
	defer invariant.ForceForTest(true)()
	var got *invariant.Violation
	func() {
		defer func() {
			r := recover()
			v, ok := r.(*invariant.Violation)
			if !ok {
				t.Fatalf("panic value = %v (%T), want *invariant.Violation", r, r)
			}
			got = v
		}()
		fn()
		t.Fatal("no invariant fired")
	}()
	return got
}

// TestInstallRegressionFiresInvariant corrupts a file's version vector the
// way an aliasing or misclassification bug would — installing a vector
// that drops the local replica's own update counter — and asserts the
// monotonicity hook refuses it.
func TestInstallRegressionFiresInvariant(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("v1")) // bumps replica 1's counter
	fid := mustFid(t, f)

	// {2:1} silently discards replica 1's counter: a regression.
	corrupt := vv.New().Bump(2)
	v := mustViolate(t, func() {
		_ = l.InstallFileVersion(RootPath(), fid, KFile, []byte("v2"), corrupt, 1)
	})
	if v.Msg == "" {
		t.Fatal("empty violation message")
	}
}

// TestInstallDominatingPassesInvariant: the legitimate propagation path —
// install a vector that dominates the stored one — must not fire.
func TestInstallDominatingPassesInvariant(t *testing.T) {
	defer invariant.ForceForTest(true)()
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("v1"))
	fid := mustFid(t, f)

	st, err := l.FileInfo(RootPath(), fid)
	if err != nil {
		t.Fatal(err)
	}
	newVV := st.Aux.VV.Clone().Bump(2)
	if err := l.InstallFileVersion(RootPath(), fid, KFile, []byte("v2"), newVV, 1); err != nil {
		t.Fatal(err)
	}
}

// TestNoteNewVersionLiveReplicaInvariant: a new-version cache entry naming
// the local replica (or the zero id) is a protocol bug; armed hooks catch
// it at the insertion point.
func TestNoteNewVersionLiveReplicaInvariant(t *testing.T) {
	l, _ := newLayer(t, 3)
	fid := ids.FileID{Issuer: 2, Seq: 9}

	mustViolate(t, func() { l.NoteNewVersion(RootPath(), fid, 3) }) // self
	mustViolate(t, func() { l.NoteNewVersion(RootPath(), fid, 0) }) // unset

	// A genuine remote origin passes and lands in the cache.
	defer invariant.ForceForTest(true)()
	l.NoteNewVersion(RootPath(), fid, 2)
	pend := l.PendingVersions()
	if len(pend) != 1 || pend[0].Origin != 2 {
		t.Fatalf("pending = %+v, want one entry from origin 2", pend)
	}
}

// TestInvariantDisarmedIsFreeOfPanics: with the gate off, even a
// regressing install only corrupts state — it must not panic (production
// behavior is unchanged by the hook's presence).
func TestInvariantDisarmedIsFreeOfPanics(t *testing.T) {
	defer invariant.ForceForTest(false)()
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	vnode.WriteFile(f, []byte("v1"))
	fid := mustFid(t, f)
	if err := l.InstallFileVersion(RootPath(), fid, KFile, []byte("v2"), vv.New().Bump(2), 1); err != nil {
		t.Fatal(err)
	}
	l.NoteNewVersion(RootPath(), fid, l.Replica())
}

// Compile-time check that Violation is an error (so recover sites can use
// errors.As after wrapping).
var _ error = (*invariant.Violation)(nil)
