package physical

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/vnode"
)

// Entry is one Ficus directory entry.  Beyond the Unix <name, file> pair it
// carries the metadata the directory reconciliation algorithm needs (paper
// §3.3): a globally unique entry id identifying this particular insertion
// (a re-insertion after delete gets a fresh id), and a deletion mark kept
// as a tombstone so deletes propagate instead of resurrecting.
type Entry struct {
	// EID uniquely identifies this insertion; issued by the inserting
	// replica's sequencer, so concurrent insertions never collide.
	EID ids.FileID
	// Name is the client-visible name (before conflict disambiguation).
	Name string
	// Child is the file the entry names.
	Child ids.FileID
	// Kind is the child's Ficus type.
	Kind Kind
	// Deleted marks a tombstone.
	Deleted bool
	// Value is an auxiliary payload used when a directory doubles as a
	// replicated table: graft points store a volume replica's storage-site
	// address here (paper §4.3 "conveniently maintained as directory
	// entries").
	Value string
}

// Live reports whether the entry is visible (not a tombstone).
func (e Entry) Live() bool { return !e.Deleted }

// encodeEntries serializes a directory contents file.
func encodeEntries(entries []Entry) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(entries)))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint32(out, uint32(e.EID.Issuer))
		out = binary.BigEndian.AppendUint64(out, e.EID.Seq)
		out = binary.BigEndian.AppendUint32(out, uint32(e.Child.Issuer))
		out = binary.BigEndian.AppendUint64(out, e.Child.Seq)
		out = append(out, byte(e.Kind))
		if e.Deleted {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Name)))
		out = append(out, e.Name...)
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Value)))
		out = append(out, e.Value...)
	}
	return out
}

func decodeEntries(p []byte) ([]Entry, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("physical: short directory file: %d bytes", len(p))
	}
	n := int(binary.BigEndian.Uint32(p))
	off := 4
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		if len(p)-off < 30 {
			return nil, fmt.Errorf("physical: truncated directory entry %d", i)
		}
		var e Entry
		e.EID.Issuer = ids.ReplicaID(binary.BigEndian.Uint32(p[off:]))
		e.EID.Seq = binary.BigEndian.Uint64(p[off+4:])
		e.Child.Issuer = ids.ReplicaID(binary.BigEndian.Uint32(p[off+12:]))
		e.Child.Seq = binary.BigEndian.Uint64(p[off+16:])
		e.Kind = Kind(p[off+24])
		e.Deleted = p[off+25] != 0
		nameLen := int(binary.BigEndian.Uint16(p[off+26:]))
		off += 28
		if len(p)-off < nameLen+2 {
			return nil, fmt.Errorf("physical: truncated name in entry %d", i)
		}
		e.Name = string(p[off : off+nameLen])
		off += nameLen
		valLen := int(binary.BigEndian.Uint16(p[off:]))
		off += 2
		if len(p)-off < valLen {
			return nil, fmt.Errorf("physical: truncated value in entry %d", i)
		}
		e.Value = string(p[off : off+valLen])
		off += valLen
		out = append(out, e)
	}
	if off != len(p) {
		return nil, fmt.Errorf("physical: %d trailing bytes in directory file", len(p)-off)
	}
	return out, nil
}

// readDirFileLocked loads the entries of the directory whose container is
// cont.
func (l *Layer) readDirFileLocked(cont vnode.Vnode) ([]Entry, error) {
	f, err := cont.Lookup(dirFileName)
	if err != nil {
		return nil, err
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return nil, err
	}
	return decodeEntries(data)
}

// writeDirFileLocked replaces the directory contents file.
func (l *Layer) writeDirFileLocked(cont vnode.Vnode, entries []Entry) error {
	f, err := cont.Create(dirFileName, false)
	if err != nil {
		return err
	}
	return vnode.WriteFile(f, encodeEntries(entries))
}

// eidLess orders entries by entry id, which is the deterministic order used
// for conflict-name disambiguation: after replicas converge on the same
// entry set, they render identical names.
func eidLess(a, b ids.FileID) bool {
	if a.Issuer != b.Issuer {
		return a.Issuer < b.Issuer
	}
	return a.Seq < b.Seq
}

// RenderedName returns the client-visible name of entry e among its
// directory's entries.  When concurrent partitioned insertions produced two
// live entries with the same name — a directory update conflict — the
// directory reconciliation keeps both and "automatically repairs" the
// conflict by disambiguating every entry after the first (in entry-id
// order) with a #issuer.seq suffix.
func RenderedName(entries []Entry, e Entry) string {
	first := true
	var min ids.FileID
	for _, o := range entries {
		if !o.Live() || o.Name != e.Name {
			continue
		}
		if first || eidLess(o.EID, min) {
			min = o.EID
			first = false
		}
	}
	if e.EID == min {
		return e.Name
	}
	return fmt.Sprintf("%s#%d.%d", e.Name, e.EID.Issuer, e.EID.Seq)
}

// findByRenderedName locates the live entry whose rendered name matches.
func findByRenderedName(entries []Entry, name string) (Entry, bool) {
	for _, e := range entries {
		if e.Live() && RenderedName(entries, e) == name {
			return e, true
		}
	}
	return Entry{}, false
}

// liveSorted returns live entries sorted by entry id (stable listing order).
func liveSorted(entries []Entry) []Entry {
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Live() {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return eidLess(out[i].EID, out[j].EID) })
	return out
}

// countLiveRefs counts live entries naming child within entries.
func countLiveRefs(entries []Entry, child ids.FileID) int {
	n := 0
	for _, e := range entries {
		if e.Live() && e.Child == child {
			n++
		}
	}
	return n
}
