package physical

import (
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/vnode"
	"repro/internal/vv"
)

func checkFicusClean(t *testing.T, l *Layer) {
	t.Helper()
	probs, err := l.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(probs) != 0 {
		t.Fatalf("ficus fsck found problems:\n%s", strings.Join(probs, "\n"))
	}
}

func TestCheckCleanAfterNormalOps(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	d, _ := root.Mkdir("d")
	f, _ := d.Create("f", true)
	vnode.WriteFile(f, []byte("x"))
	root.Symlink("ln", "target")
	g, _ := root.Create("g", true)
	root.Link("g2", g)
	d.Rename("f", d, "f2")
	root.Remove("ln")
	checkFicusClean(t, l)
}

func TestCheckCleanAfterMergeAndInstall(t *testing.T) {
	a, b := newMergePair(t)
	ra, _ := a.Root()
	rb, _ := b.Root()
	ra.Create("x", true)
	rb.Create("x", true) // name conflict
	rb.Create("y", true)
	mergeBoth(t, a, b)
	checkFicusClean(t, a)
	checkFicusClean(t, b)
}

func TestCheckDetectsOrphanedStorage(t *testing.T) {
	l, _ := newLayer(t, 1)
	// Plant an orphan data+aux pair directly in the root container.
	cont, err := l.containerOf(RootPath())
	if err != nil {
		t.Fatal(err)
	}
	ghost := ids.FileID{Issuer: 9, Seq: 99}
	df, _ := cont.Create(prefixData+ghost.String(), true)
	vnode.WriteFile(df, []byte("orphan"))
	aux := Aux{Type: KFile, Nlink: 1, VV: vv.New()}
	writeAuxFile(cont, prefixAux+ghost.String(), &aux)
	probs, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) < 2 {
		t.Fatalf("orphans not flagged: %v", probs)
	}
}

func TestCheckDetectsMissingAux(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	fid := mustFid(t, f)
	cont, _ := l.containerOf(RootPath())
	if err := cont.Remove(prefixAux + fid.String()); err != nil {
		t.Fatal(err)
	}
	probs, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range probs {
		if strings.Contains(p, "partial storage") || strings.Contains(p, "no auxiliary") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing aux not flagged: %v", probs)
	}
}

func TestCheckDetectsShadowLitter(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	fid := mustFid(t, f)
	cont, _ := l.containerOf(RootPath())
	sf, _ := cont.Create(prefixData+fid.String()+suffixShadow, true)
	vnode.WriteFile(sf, []byte("litter"))
	probs, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range probs {
		if strings.Contains(p, "shadow") {
			found = true
		}
	}
	if !found {
		t.Fatalf("shadow litter not flagged: %v", probs)
	}
	// ... and Recover consumes it, returning the replica to clean.
	if err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	checkFicusClean(t, l)
}

func TestCheckDetectsBadNlink(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	f, _ := root.Create("f", true)
	fid := mustFid(t, f)
	cont, _ := l.containerOf(RootPath())
	aux, err := readAuxFileFollow(l.root, cont, prefixAux+fid.String())
	if err != nil {
		t.Fatal(err)
	}
	aux.Nlink = 7
	af, _ := cont.Lookup(prefixAux + fid.String())
	if err := writeAuxVnode(af, &aux); err != nil {
		t.Fatal(err)
	}
	probs, _ := l.Check()
	found := false
	for _, p := range probs {
		if strings.Contains(p, "nlink") {
			found = true
		}
	}
	if !found {
		t.Fatalf("bad nlink not flagged: %v", probs)
	}
}

func TestDropTombstones(t *testing.T) {
	l, _ := newLayer(t, 1)
	root, _ := l.Root()
	root.Create("f", true)
	sub, _ := root.Mkdir("sub")
	if _, err := sub.Create("inner", true); err != nil {
		t.Fatal(err)
	}
	if err := sub.Remove("inner"); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("sub"); err != nil {
		t.Fatal(err)
	}
	ds, _ := l.DirEntries(RootPath())
	var eids []ids.FileID
	for _, e := range ds.Entries {
		if e.Deleted {
			eids = append(eids, e.EID)
		}
	}
	if len(eids) != 2 {
		t.Fatalf("tombstones %d, want 2", len(eids))
	}
	n, err := l.DropTombstones(RootPath(), eids)
	if err != nil || n != 2 {
		t.Fatalf("dropped %d, %v", n, err)
	}
	ds, _ = l.DirEntries(RootPath())
	if len(ds.Entries) != 0 {
		t.Fatalf("entries remain: %+v", ds.Entries)
	}
	// The tombstoned directory's container (with its own tombstones) was
	// reclaimed too.
	checkFicusClean(t, l)
	// Dropping again is a no-op.
	n, err = l.DropTombstones(RootPath(), eids)
	if err != nil || n != 0 {
		t.Fatalf("second drop: %d, %v", n, err)
	}
	// Live entries are never dropped even if their EID is passed.
	g, _ := root.Create("live", true)
	_ = g
	ds, _ = l.DirEntries(RootPath())
	n, err = l.DropTombstones(RootPath(), []ids.FileID{ds.Entries[0].EID})
	if err != nil || n != 0 {
		t.Fatalf("dropped a live entry: %d, %v", n, err)
	}
}
