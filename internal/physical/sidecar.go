package physical

// Per-file-version block-checksum sidecars.
//
// The paper's availability argument (§1, §7) assumes a replica that has a
// version can serve it; silent media corruption breaks that silently — a
// flipped block would be served, and worse, *propagated*, as the sealed
// version.  Each stored file replica therefore carries a sidecar file
// ("C<fid>", beside the data "F<fid>" and aux "A<fid>" members) recording a
// CRC32-Castagnoli per data block, sealed under the version vector the
// checksums were computed for.
//
// The seal rule is what makes verification safe across crashes: checksums
// are trusted ONLY when the sidecar's sealed vector equals the file's aux
// vector.  Every crash window in the commit sequences (install, local
// write) leaves the sidecar sealed under a vector that differs from the aux
// — an *unverifiable* state that the scrubber reseals from local data —
// never a false mismatch.  A missing, torn, or undecodable sidecar is
// likewise just unverifiable: old stores work unchanged and heal lazily.
//
// Format (versioned, strict decode):
//
//	magic "FSUM" (4) | version u8 | sealed vv | length u64 | per-block CRC32C (u32 each)
//
// The block count is derived from length, so a truncated or padded sidecar
// fails to decode.  Sidecars are written via the same shadow + atomic-rename
// commit as everything else; recovery handles "C<fid>.shadow" leftovers with
// the generic shadow rule.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/ids"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// ChecksumBlockSize is the checksumming granularity: one CRC per 4 KiB of
// file data, matching the device block size.
const ChecksumBlockSize = 4096

const sidecarVersion = 1

var (
	sidecarMagic = []byte("FSUM")
	castagnoli   = crc32.MakeTable(crc32.Castagnoli)
)

// transientError is a sentinel error class the retry machinery treats as
// retryable (it implements Transient).
type transientError string

func (e transientError) Error() string   { return string(e) }
func (e transientError) Transient() bool { return true }

// ErrCorrupt reports that a stored file replica fails its block checksums.
// It is TRANSIENT: the replica is quarantined, not gone — another replica
// can serve the version now, and self-healing can restore this copy later —
// so callers defer and retry rather than giving up.
var ErrCorrupt error = transientError("physical: stored file data fails its block checksums")

// Checksums is the verifiable content summary of one file version.
type Checksums struct {
	Length uint64   // exact data length in bytes
	Sums   []uint32 // one CRC32C per ChecksumBlockSize chunk
}

// checksumBlocks returns how many block checksums cover length bytes.
func checksumBlocks(length uint64) int {
	return int((length + ChecksumBlockSize - 1) / ChecksumBlockSize)
}

// ComputeChecksums summarizes data.
func ComputeChecksums(data []byte) *Checksums {
	cs := &Checksums{Length: uint64(len(data))}
	for off := 0; off < len(data); off += ChecksumBlockSize {
		end := off + ChecksumBlockSize
		if end > len(data) {
			end = len(data)
		}
		cs.Sums = append(cs.Sums, crc32.Checksum(data[off:end], castagnoli))
	}
	return cs
}

// Verify reports whether data matches the summary exactly: same length,
// every block checksum equal.
func (c *Checksums) Verify(data []byte) bool {
	if c == nil || uint64(len(data)) != c.Length || len(c.Sums) != checksumBlocks(c.Length) {
		return false
	}
	for i, want := range c.Sums {
		off := i * ChecksumBlockSize
		end := off + ChecksumBlockSize
		if end > len(data) {
			end = len(data)
		}
		if crc32.Checksum(data[off:end], castagnoli) != want {
			return false
		}
	}
	return true
}

// Clone deep-copies the summary (nil stays nil).
func (c *Checksums) Clone() *Checksums {
	if c == nil {
		return nil
	}
	return &Checksums{Length: c.Length, Sums: append([]uint32(nil), c.Sums...)}
}

// encodeSidecar renders a sidecar image sealing cs under vector sealed.
func encodeSidecar(sealed vv.Vector, cs *Checksums) []byte {
	out := append([]byte(nil), sidecarMagic...)
	out = append(out, sidecarVersion)
	out = sealed.AppendBinary(out)
	out = binary.BigEndian.AppendUint64(out, cs.Length)
	for _, s := range cs.Sums {
		out = binary.BigEndian.AppendUint32(out, s)
	}
	return out
}

// decodeSidecar parses a sidecar image strictly: bad magic, unknown
// version, truncation, a block count inconsistent with the length, or
// trailing bytes all fail.
func decodeSidecar(p []byte) (vv.Vector, *Checksums, error) {
	if len(p) < len(sidecarMagic)+1 {
		return nil, nil, fmt.Errorf("physical: short sidecar: %d bytes", len(p))
	}
	for i, c := range sidecarMagic {
		if p[i] != c {
			return nil, nil, fmt.Errorf("physical: bad sidecar magic %q", p[:len(sidecarMagic)])
		}
	}
	if p[len(sidecarMagic)] != sidecarVersion {
		return nil, nil, fmt.Errorf("physical: unknown sidecar version %d", p[len(sidecarMagic)])
	}
	p = p[len(sidecarMagic)+1:]
	sealed, n, err := vv.DecodeFrom(p)
	if err != nil {
		return nil, nil, fmt.Errorf("physical: sidecar vector: %w", err)
	}
	p = p[n:]
	if len(p) < 8 {
		return nil, nil, fmt.Errorf("physical: sidecar truncated before length")
	}
	cs := &Checksums{Length: binary.BigEndian.Uint64(p)}
	p = p[8:]
	blocks := checksumBlocks(cs.Length)
	if len(p) != 4*blocks {
		return nil, nil, fmt.Errorf("physical: sidecar has %d checksum bytes, length %d needs %d", len(p), cs.Length, 4*blocks)
	}
	cs.Sums = make([]uint32, blocks)
	for i := range cs.Sums {
		cs.Sums[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	return sealed, cs, nil
}

// writeSidecar commits a sidecar for fid in container cont via shadow +
// atomic rename, sealing cs under vector sealed.
func writeSidecar(cont vnode.Vnode, fid ids.FileID, sealed vv.Vector, cs *Checksums) error {
	base := prefixSum + fid.String()
	shadow := base + suffixShadow
	sf, err := cont.Create(shadow, false)
	if err != nil {
		return err
	}
	if err := vnode.WriteFile(sf, encodeSidecar(sealed, cs)); err != nil {
		return err
	}
	return cont.Rename(shadow, cont, base)
}

// readSidecar loads fid's sidecar from container cont.  Any error — absent,
// torn, undecodable — means "unverifiable", never "corrupt": the caller
// skips verification (and the scrubber reseals).
func readSidecar(storeRoot, cont vnode.Vnode, fid ids.FileID) (vv.Vector, *Checksums, error) {
	f, err := lookupFollow(storeRoot, cont, prefixSum+fid.String())
	if err != nil {
		return nil, nil, err
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return nil, nil, err
	}
	return decodeSidecar(data)
}

// removeSidecar discards fid's sidecar if present (reclaim paths).
func removeSidecar(cont vnode.Vnode, fid ids.FileID) error {
	if err := cont.Remove(prefixSum + fid.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	return nil
}

// sealFile recomputes fid's checksums from the stored data and seals them
// under vector sealed (the file's current aux vector).  Local mutations and
// the scrubber's reseal of an unverifiable sidecar both land here.
func sealFile(storeRoot, cont vnode.Vnode, fid ids.FileID, sealed vv.Vector) error {
	df, err := lookupFollow(storeRoot, cont, prefixData+fid.String())
	if err != nil {
		return err
	}
	data, err := vnode.ReadFile(df)
	if err != nil {
		return err
	}
	return writeSidecar(cont, fid, sealed, ComputeChecksums(data))
}

// FileChecksums returns fid's sealed checksums when — and only when — the
// sidecar's sealed vector equals want (the aux vector the caller is about
// to ship).  A stale or unreadable sidecar returns nil: the server cannot
// vouch for the bytes, so the puller installs optimistically without
// verification rather than stalling propagation.
func (l *Layer) FileChecksums(dirPath []ids.FileID, fid ids.FileID, want vv.Vector) *Checksums {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return nil
	}
	sealed, cs, err := readSidecar(l.root, cont, fid)
	if err != nil || !sealed.Equal(want) {
		return nil
	}
	return cs
}
