package physical

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/invariant"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// This file is the replication-control surface of the physical layer: the
// operations the update propagation daemon and the reconciliation protocol
// (internal/recon) use, locally or via the repl RPC service.  Directories
// are addressed by their full fid path from the volume root (always
// beginning with ids.RootFileID), mirroring how the reconciliation protocol
// "traverses an entire subgraph" (§3.3).

// RootPath returns the fid path of the volume root.
func RootPath() []ids.FileID { return []ids.FileID{ids.RootFileID} }

// DirState is a directory replica's reconciliation-relevant state.
type DirState struct {
	Entries []Entry
	VV      vv.Vector
	Aux     Aux
}

// DirEntries returns the entries and version vector of the directory at
// dirPath.  ErrNotStored reports that this volume replica has no storage
// for it.
func (l *Layer) DirEntries(dirPath []ids.FileID) (DirState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return DirState{}, err
	}
	entries, err := l.readDirFileLocked(cont)
	if err != nil {
		return DirState{}, err
	}
	aux, err := readAuxFile(cont, dirAttrName)
	if err != nil {
		return DirState{}, err
	}
	return DirState{Entries: entries, VV: aux.VV, Aux: aux}, nil
}

// FileState is a file replica's reconciliation-relevant state.
type FileState struct {
	Aux  Aux
	Size uint64
}

// FileInfo returns the auxiliary attributes of file fid in directory
// dirPath; ErrNotStored when the file has no local storage.
func (l *Layer) FileInfo(dirPath []ids.FileID, fid ids.FileID) (FileState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return FileState{}, err
	}
	aux, err := readAuxFileFollow(l.root, cont, prefixAux+fid.String())
	if err != nil {
		if vnode.AsErrno(err) != vnode.ENOENT {
			return FileState{}, err
		}
		// Not a file here — it may be a child directory, whose attributes
		// live inside its own container.
		sub, serr := lookupFollow(l.root, cont, prefixDir+fid.String())
		if serr != nil {
			return FileState{}, ErrNotStored
		}
		daux, serr := readAuxFile(sub, dirAttrName)
		if serr != nil {
			return FileState{}, serr
		}
		return FileState{Aux: daux}, nil
	}
	df, err := lookupFollow(l.root, cont, prefixData+fid.String())
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return FileState{}, ErrNotStored
		}
		return FileState{}, err
	}
	da, err := df.Getattr()
	if err != nil {
		return FileState{}, err
	}
	return FileState{Aux: aux, Size: da.Size}, nil
}

// FileData returns the full contents and attributes of file fid in
// directory dirPath.  It is the replication read path — what PullBatch and
// reconciliation ship to peers — so it verifies the data against a fresh
// sealed sidecar before serving: a quarantined or freshly failing replica
// answers ErrCorrupt (transient — retry elsewhere, repair pending) rather
// than ever letting wrong bytes propagate.  A stale or missing sidecar
// cannot vouch either way and the data is served optimistically.
func (l *Layer) FileData(dirPath []ids.FileID, fid ids.FileID) ([]byte, FileState, error) {
	st, err := l.FileInfo(dirPath, fid)
	if err != nil {
		return nil, FileState{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.isQuarantinedLocked(fid) {
		return nil, FileState{}, fmt.Errorf("%w: file %s is quarantined", ErrCorrupt, fid)
	}
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return nil, FileState{}, err
	}
	df, err := lookupFollow(l.root, cont, prefixData+fid.String())
	if err != nil {
		return nil, FileState{}, err
	}
	data, err := vnode.ReadFile(df)
	if err != nil {
		return nil, FileState{}, err
	}
	if sealed, cs, serr := readSidecar(l.root, cont, fid); serr == nil && sealed.Equal(st.Aux.VV) {
		if !cs.Verify(data) {
			l.quarantineLocked(dirPath, fid, st.Aux.VV)
			return nil, FileState{}, fmt.Errorf("%w: file %s failed verification on read", ErrCorrupt, fid)
		}
	}
	return data, st, nil
}

// HasDir reports whether this replica stores the directory at dirPath.
func (l *Layer) HasDir(dirPath []ids.FileID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.containerOf(dirPath)
	return err == nil
}

// EnsureDirStored creates empty local storage for directory fid inside
// dirPath if absent, so a subtree acquired through reconciliation can be
// filled in.  aux supplies the directory's kind and graft target; its
// version vector is installed as given (zero history: everything will be
// merged in).
func (l *Layer) EnsureDirStored(dirPath []ids.FileID, fid ids.FileID, aux Aux) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	name := prefixDir + fid.String()
	if _, err := cont.Lookup(name); err == nil {
		return nil
	} else if vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	sub, err := cont.Mkdir(name)
	if err != nil {
		return err
	}
	if err := l.writeDirFileLocked(sub, nil); err != nil {
		return err
	}
	a := Aux{Type: aux.Type, Nlink: 1, VV: vv.New(), GraftVol: aux.GraftVol}
	return writeAuxFile(sub, dirAttrName, &a)
}

// MergeResult reports what ApplyDirMerge changed.
type MergeResult struct {
	Inserted   int // entries adopted from the remote replica
	Deleted    int // local entries tombstoned because the remote deleted them
	NameConfls int // live same-name entry pairs now coexisting (auto-repaired)
}

// Changed reports whether the merge modified the local replica.
func (r MergeResult) Changed() bool { return r.Inserted > 0 || r.Deleted > 0 }

// ApplyDirMerge merges a remote directory replica's entries into the local
// replica of the directory at dirPath.  This is the executable core of the
// Ficus directory reconciliation algorithm (§3.3): it "determines which
// entries have been added to or deleted from the remote replica, and
// applies appropriate entry insertion or deletion operations to the local
// replica."
//
// Entries are identified by their globally unique entry id, so the merge is
// a set union in which a tombstone for an entry id defeats its live form.
// The result is commutative, associative and idempotent: pairwise
// reconciliation converges all replicas to the same directory no matter the
// order of encounters.  Concurrent same-name insertions survive as distinct
// entries whose rendered names are disambiguated deterministically — the
// automatic repair of directory update conflicts.
func (l *Layer) ApplyDirMerge(dirPath []ids.FileID, remote DirState) (MergeResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var res MergeResult
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return res, err
	}
	local, err := l.readDirFileLocked(cont)
	if err != nil {
		return res, err
	}
	byEID := make(map[ids.FileID]int, len(local))
	for i, e := range local {
		byEID[e.EID] = i
	}
	merged := append([]Entry(nil), local...)
	tombstoned := make(map[ids.FileID]bool) // children losing a name
	touched := make(map[ids.FileID]bool)    // children whose name count changed
	for _, re := range remote.Entries {
		if i, ok := byEID[re.EID]; ok {
			if re.Deleted && merged[i].Live() {
				merged[i].Deleted = true
				res.Deleted++
				tombstoned[merged[i].Child] = true
				touched[merged[i].Child] = true
			}
			continue
		}
		merged = append(merged, re)
		byEID[re.EID] = len(merged) - 1
		touched[re.Child] = true
		if re.Live() {
			res.Inserted++
		} else {
			// An entry adopted already dead: local storage for its child
			// may exist (the propagation daemon can install file data
			// before the directory entry arrives) and must be reclaimed.
			tombstoned[re.Child] = true
		}
	}
	// Deterministic on-disk order so converged replicas are byte-identical.
	sort.Slice(merged, func(i, j int) bool { return eidLess(merged[i].EID, merged[j].EID) })
	if err := l.writeDirFileLocked(cont, merged); err != nil {
		return res, err
	}
	// Reclaim storage of children that no live entry names any more, as a
	// local Remove of the last name would.
	for child := range tombstoned {
		if err := l.derefAfterMergeLocked(cont, merged, child); err != nil {
			return res, err
		}
	}
	// The merge can change how many live names a child bears (e.g. two
	// partitioned renames of one file both survive, leaving it with two
	// names, §2.5 fn3); bring each touched child's stored link count in
	// line with its live name count.
	for child := range touched {
		refs := countLiveRefs(merged, child)
		if refs == 0 {
			continue
		}
		auxName := prefixAux + child.String()
		af, err := lookupFollow(l.root, cont, auxName)
		if err != nil {
			continue // not stored here
		}
		data, err := vnode.ReadFile(af)
		if err != nil || len(data) == 0 {
			continue
		}
		aux, err := decodeAux(data)
		if err != nil {
			continue
		}
		if int(aux.Nlink) != refs {
			aux.Nlink = uint32(refs)
			if err := writeAuxVnode(af, &aux); err != nil {
				return res, err
			}
		}
	}
	// The merged state covers both histories: vv := merge(local, remote).
	aux, err := readAuxFile(cont, dirAttrName)
	if err != nil {
		return res, err
	}
	aux.VV = vv.Merge(aux.VV, remote.VV)
	if err := writeAuxFile(cont, dirAttrName, &aux); err != nil {
		return res, err
	}
	res.NameConfls = countNameConflicts(merged)
	return res, nil
}

func (l *Layer) derefAfterMergeLocked(cont vnode.Vnode, entries []Entry, child ids.FileID) error {
	if countLiveRefs(entries, child) > 0 {
		return nil
	}
	if err := l.removeManifestLocked(cont, child); err != nil {
		return err
	}
	for _, p := range []string{prefixData, prefixAux, prefixSum} {
		if err := cont.Remove(p + child.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
			return err
		}
	}
	l.clearQuarantineLocked(child, false)
	return nil
}

func countNameConflicts(entries []Entry) int {
	names := make(map[string]int)
	for _, e := range entries {
		if e.Live() {
			names[e.Name]++
		}
	}
	n := 0
	for _, c := range names {
		if c > 1 {
			n += c - 1
		}
	}
	return n
}

// EvictFileStorage discards this volume replica's local copy of file fid in
// directory dirPath, keeping the directory entry.  The file remains part of
// the name space ("a volume replica may contain at most one replica of a
// file, but need not store a replica of any particular file", §4.1): local
// access answers ErrNotStored/ENOSTOR and the logical layer fails over to
// a replica that does store it.  Reconciliation or propagation can
// re-materialize the copy later.  Evicting the only stored copy of a file
// is the caller's responsibility to avoid.
func (l *Layer) EvictFileStorage(dirPath []ids.FileID, fid ids.FileID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	entries, err := l.readDirFileLocked(cont)
	if err != nil {
		return err
	}
	found := false
	for _, e := range entries {
		if e.Live() && e.Child == fid && !e.Kind.IsDir() {
			found = true
			break
		}
	}
	if !found {
		return vnode.ENOENT
	}
	for _, p := range []string{prefixData, prefixAux} {
		if err := cont.Remove(p + fid.String()); err != nil {
			if vnode.AsErrno(err) == vnode.ENOENT {
				return ErrNotStored
			}
			return err
		}
	}
	if err := removeSidecar(cont, fid); err != nil {
		return err
	}
	if err := l.removeManifestLocked(cont, fid); err != nil {
		return err
	}
	// No local bytes, nothing left to distrust.
	l.clearQuarantineLocked(fid, false)
	return nil
}

// StoresFile reports whether this replica holds a local copy of fid.
func (l *Layer) StoresFile(dirPath []ids.FileID, fid ids.FileID) bool {
	_, err := l.FileInfo(dirPath, fid)
	return err == nil
}

// DropTombstones removes the tombstoned entries with the given entry ids
// from the directory at dirPath, reclaiming any leftover local storage
// (e.g. the container of a deleted-but-stored directory).  The caller — the
// reconciliation layer's garbage collector — has established that every
// replica of the volume carries these tombstones, so no replica can ever
// re-introduce the dead entries (the completion of the paper's optimistic
// two-phase delete).
func (l *Layer) DropTombstones(dirPath []ids.FileID, eids []ids.FileID) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return 0, err
	}
	entries, err := l.readDirFileLocked(cont)
	if err != nil {
		return 0, err
	}
	drop := make(map[ids.FileID]bool, len(eids))
	for _, e := range eids {
		drop[e] = true
	}
	kept := entries[:0]
	removed := 0
	var dirs, files []ids.FileID
	for _, e := range entries {
		if e.Deleted && drop[e.EID] {
			removed++
			if e.Kind.IsDir() {
				dirs = append(dirs, e.Child)
			} else {
				files = append(files, e.Child)
			}
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return 0, nil
	}
	if err := l.writeDirFileLocked(cont, kept); err != nil {
		return removed, err
	}
	// Reclaim any leftover file storage no surviving entry names.
	for _, child := range files {
		if countAnyRefs(kept, child) > 0 {
			continue
		}
		if err := l.removeManifestLocked(cont, child); err != nil {
			return removed, err
		}
		for _, p := range []string{prefixData, prefixAux, prefixSum} {
			if err := cont.Remove(p + child.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
				return removed, err
			}
		}
		l.clearQuarantineLocked(child, false)
	}
	// Reclaim containers of collected directory entries, if stored here and
	// no surviving entry still names the child.
	for _, child := range dirs {
		if countAnyRefs(kept, child) > 0 {
			continue
		}
		name := prefixDir + child.String()
		if sub, err := cont.Lookup(name); err == nil {
			l.dropManifestRefsInTreeLocked(sub)
			if err := removeTree(cont, name); err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// countAnyRefs counts entries (live or tombstoned) naming child.
func countAnyRefs(entries []Entry, child ids.FileID) int {
	n := 0
	for _, e := range entries {
		if e.Child == child {
			n++
		}
	}
	return n
}

// removeTree deletes the named directory subtree from the UFS container.
func removeTree(parent vnode.Vnode, name string) error {
	sub, err := parent.Lookup(name)
	if err != nil {
		return err
	}
	ents, err := sub.Readdir()
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Type == vnode.VDir {
			if err := removeTree(sub, e.Name); err != nil {
				return err
			}
			continue
		}
		if err := sub.Remove(e.Name); err != nil {
			return err
		}
	}
	return parent.Rmdir(name)
}

// AppendEntry inserts a pre-built entry into the directory at dirPath,
// bumping the directory version vector.  The volume management code uses it
// to maintain graft-point tables (volume replica -> storage site) as
// ordinary directory entries (§4.3).
func (l *Layer) AppendEntry(dirPath []ids.FileID, e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	entries, err := l.readDirFileLocked(cont)
	if err != nil {
		return err
	}
	if e.EID.IsNil() {
		eid, err := l.nextIDLocked()
		if err != nil {
			return err
		}
		e.EID = eid
	}
	entries = append(entries, e)
	if err := l.writeDirFileLocked(cont, entries); err != nil {
		return err
	}
	aux, err := readAuxFile(cont, dirAttrName)
	if err != nil {
		return err
	}
	aux.VV.Bump(l.replica)
	return writeAuxFile(cont, dirAttrName, &aux)
}

// NextID allocates a fresh unique id from this replica's sequencer (for
// graft-table entries and tests).
func (l *Layer) NextID() (ids.FileID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextIDLocked()
}

// --- New-version cache and conflict log ---------------------------------

// NoteNewVersion records an update notification: origin holds a newer
// version of file (in directory dirPath).  Repeated notifications for the
// same file coalesce — the coalescing is what makes delayed propagation
// cheaper under bursty updates (§3.2).
func (l *Layer) NoteNewVersion(dirPath []ids.FileID, file ids.FileID, origin ids.ReplicaID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// A cache entry must name a live remote replica the daemon could pull
	// from: never the zero (unset) id, never ourselves — we already hold
	// our own updates, and a self-entry would make the daemon pull from a
	// replica that by definition has nothing newer.
	invariant.Checkf(origin != 0 && origin != l.replica,
		"physical: new-version cache entry for %s names origin %d (local replica %d); entries must name a live remote replica",
		file, origin, l.replica)
	k := nvcKey{file: file}
	nv, ok := l.nvc[k]
	if !ok {
		nv = NewVersion{File: file, Dir: append([]ids.FileID(nil), dirPath...)}
	}
	nv.Origin = origin
	nv.Seen++
	// Fresh news: there really is something new at the origin, so any
	// backoff deferral is lifted (accumulated Attempts keep the next
	// backoff step high if the origin is flapping).
	nv.NotBefore = 0
	l.nvc[k] = nv
	l.journalAppendLocked(encodeUpsert(nil, nv))
}

// DeferPending records a failed propagation attempt for file: the attempt
// count grows and the entry is not due again before daemon tick notBefore.
// A no-op if the entry has been dropped meanwhile.
func (l *Layer) DeferPending(file ids.FileID, notBefore uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := nvcKey{file: file}
	if nv, ok := l.nvc[k]; ok {
		nv.Attempts++
		nv.NotBefore = notBefore
		l.nvc[k] = nv
		l.journalAppendLocked(encodeUpsert(nil, nv))
	}
}

// AdvanceDaemonTick advances the replica's virtual daemon clock by one
// pass and returns the new tick.  The propagation daemon calls it once per
// pass; NewVersion.NotBefore is measured on this clock.
func (l *Layer) AdvanceDaemonTick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.daemonTick++
	return l.daemonTick
}

// DaemonTick reads the virtual daemon clock.
func (l *Layer) DaemonTick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.daemonTick
}

// PendingVersions lists new-version cache entries, oldest-announced first
// by file id order (deterministic).
func (l *Layer) PendingVersions() []NewVersion {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pendingVersionsLocked()
}

func (l *Layer) pendingVersionsLocked() []NewVersion {
	out := make([]NewVersion, 0, len(l.nvc))
	for _, nv := range l.nvc {
		out = append(out, nv)
	}
	sort.Slice(out, func(i, j int) bool { return eidLess(out[i].File, out[j].File) })
	return out
}

// DropPending removes a new-version cache entry after propagation.
func (l *Layer) DropPending(file ids.FileID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.nvc[nvcKey{file: file}]; !ok {
		return
	}
	delete(l.nvc, nvcKey{file: file})
	l.journalAppendLocked(encodeDrop(nil, file))
}

// ReportConflict appends to the conflict log ("conflicting updates to
// ordinary files are detected and reported to the owner", §1).  Re-detected
// conflicts (same file, same version-vector pair) coalesce so periodic
// reconciliation does not flood the owner.
func (l *Layer) ReportConflict(c Conflict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, old := range l.conflicts {
		if old.File == c.File &&
			((old.LocalVV.Equal(c.LocalVV) && old.RemoteVV.Equal(c.RemoteVV)) ||
				(old.LocalVV.Equal(c.RemoteVV) && old.RemoteVV.Equal(c.LocalVV))) {
			return
		}
	}
	l.conflicts = append(l.conflicts, c)
}

// ClearConflictsFor drops logged conflicts on one file: reconciliation
// calls it when the file's replicas have become comparable again (a
// resolution dominating both histories has arrived), so the owner's log
// reflects only live conflicts.
func (l *Layer) ClearConflictsFor(fid ids.FileID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.conflicts[:0]
	for _, c := range l.conflicts {
		if c.File != fid {
			kept = append(kept, c)
		}
	}
	l.conflicts = kept
}

// Conflicts returns the conflict log.
func (l *Layer) Conflicts() []Conflict {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Conflict(nil), l.conflicts...)
}

// ClearConflicts empties the conflict log (the owner has dealt with them).
func (l *Layer) ClearConflicts() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.conflicts = nil
}

// OpenCount reports how many opens of fid are outstanding (fed by direct
// Open calls and by the open-over-lookup encoding).  Autografting uses it
// to decide when a graft is no longer needed (§4.4).
func (l *Layer) OpenCount(fid ids.FileID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opens[fid]
}

// TotalOpens reports the cumulative number of opens the layer has seen.
func (l *Layer) TotalOpens() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.openTotal
}

// OpenFiles reports how many distinct files currently have outstanding
// opens.
func (l *Layer) OpenFiles() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.opens {
		if c > 0 {
			n++
		}
	}
	return n
}
