package physical

// Content-addressed block store: the storage half of delta propagation.
//
// Every file version is summarized by a BLOCK MANIFEST — its length plus the
// truncated SHA-256 address of each ChecksumBlockSize chunk — and the chunks
// themselves live once in a per-store BLOCK POOL shared by every file of the
// volume replica.  The data file "F<fid>" remains the canonical copy (the
// shadow/rename commit and the checksum sidecar semantics are untouched);
// the pool and manifests are a derived index that lets the wire protocol
// ship only the blocks a peer does not already hold, from ANY local file —
// cross-file dedup.
//
// Layout:
//
//   - pool: a UFS directory ("blocks") at the store root, beside the meta
//     file and the nvcj journal, invisible to the Check container walk.
//     Each block is a file named by its 32-hex-digit address and committed
//     via shadow + atomic rename, so a torn write can never leave a
//     partially written block under a valid name.
//
//   - manifest: a per-file sidecar "M<fid>" in the directory container,
//     sealed under a version vector exactly like the checksum sidecar:
//     trusted only while the sealed vector equals the aux vector, so every
//     crash window reads as "stale manifest", never as wrong blocks.
//
// Format (versioned, strict decode):
//
//	magic "FMAN" (4) | version u8 | sealed vv | length u64 | per-block address (16 each)
//
// The block count is derived from the length, so truncation or padding
// fails to decode.
//
// Refcounts are in-memory only (blockRefs: pool block -> number of on-disk
// manifests referencing it), rebuilt on every Open by scanning the
// manifests.  The commit order makes the invariant "every manifest block is
// present in the pool" crash-proof: blocks land in the pool BEFORE the
// manifest that references them is sealed, so a crash can only leave
// unreferenced blocks — reclaimed at the next mount — never a dangling
// reference.  A block whose refcount drops to zero is reclaimed eagerly.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/vnode"
	"repro/internal/vv"
)

// BlockAddrSize is the size of a content address: SHA-256 truncated to 128
// bits, ample against accidental collision at volume scale.
const BlockAddrSize = 16

const (
	poolDirName     = "blocks" // pool directory name at the store root
	manifestVersion = 1
)

var manifestMagic = []byte("FMAN")

// BlockAddr is the content address of one data block.
type BlockAddr [BlockAddrSize]byte

// String renders the address as the pool file name (32 hex digits).
func (a BlockAddr) String() string { return hex.EncodeToString(a[:]) }

// parseBlockName parses a pool file name back into an address.
func parseBlockName(name string) (BlockAddr, bool) {
	var a BlockAddr
	if len(name) != 2*BlockAddrSize {
		return a, false
	}
	if _, err := hex.Decode(a[:], []byte(name)); err != nil {
		return a, false
	}
	return a, true
}

// HashBlock computes the content address of one block.
func HashBlock(p []byte) BlockAddr {
	sum := sha256.Sum256(p)
	var a BlockAddr
	copy(a[:], sum[:BlockAddrSize])
	return a
}

// Block pairs an address with its content: the wire unit of a delta pull.
type Block struct {
	Addr BlockAddr
	Data []byte
}

// BlockManifest represents one file version as content addresses: the exact
// length plus one address per ChecksumBlockSize chunk (the final chunk may
// be short; its address covers the short content).
type BlockManifest struct {
	Length uint64
	Blocks []BlockAddr
}

// ComputeManifest summarizes data as a block manifest.
func ComputeManifest(data []byte) *BlockManifest {
	m := &BlockManifest{Length: uint64(len(data))}
	for off := 0; off < len(data); off += ChecksumBlockSize {
		end := off + ChecksumBlockSize
		if end > len(data) {
			end = len(data)
		}
		m.Blocks = append(m.Blocks, HashBlock(data[off:end]))
	}
	return m
}

// encodeManifest renders a manifest image sealing m under vector sealed.
func encodeManifest(sealed vv.Vector, m *BlockManifest) []byte {
	out := append([]byte(nil), manifestMagic...)
	out = append(out, manifestVersion)
	out = sealed.AppendBinary(out)
	out = binary.BigEndian.AppendUint64(out, m.Length)
	for i := range m.Blocks {
		out = append(out, m.Blocks[i][:]...)
	}
	return out
}

// decodeManifest parses a manifest image strictly: bad magic, unknown
// version, truncation, a block count inconsistent with the length, or
// trailing bytes all fail.
func decodeManifest(p []byte) (vv.Vector, *BlockManifest, error) {
	if len(p) < len(manifestMagic)+1 {
		return nil, nil, fmt.Errorf("physical: short block manifest: %d bytes", len(p))
	}
	for i, c := range manifestMagic {
		if p[i] != c {
			return nil, nil, fmt.Errorf("physical: bad manifest magic %q", p[:len(manifestMagic)])
		}
	}
	if p[len(manifestMagic)] != manifestVersion {
		return nil, nil, fmt.Errorf("physical: unknown manifest version %d", p[len(manifestMagic)])
	}
	p = p[len(manifestMagic)+1:]
	sealed, n, err := vv.DecodeFrom(p)
	if err != nil {
		return nil, nil, fmt.Errorf("physical: manifest vector: %w", err)
	}
	p = p[n:]
	if len(p) < 8 {
		return nil, nil, fmt.Errorf("physical: manifest truncated before length")
	}
	m := &BlockManifest{Length: binary.BigEndian.Uint64(p)}
	p = p[8:]
	blocks := checksumBlocks(m.Length)
	if len(p) != BlockAddrSize*blocks {
		return nil, nil, fmt.Errorf("physical: manifest has %d address bytes, length %d needs %d", len(p), m.Length, BlockAddrSize*blocks)
	}
	m.Blocks = make([]BlockAddr, blocks)
	for i := range m.Blocks {
		copy(m.Blocks[i][:], p[BlockAddrSize*i:])
	}
	return sealed, m, nil
}

// readManifest loads fid's block manifest from container cont.  Any error —
// absent, torn, undecodable — means "no usable manifest", never "corrupt".
func readManifest(storeRoot, cont vnode.Vnode, fid ids.FileID) (vv.Vector, *BlockManifest, error) {
	f, err := lookupFollow(storeRoot, cont, prefixManifest+fid.String())
	if err != nil {
		return nil, nil, err
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return nil, nil, err
	}
	return decodeManifest(data)
}

// BlockStats counts the block subsystem's work on one volume replica.
// PoolBlocks/PoolBytes are gauges; the rest are cumulative.
type BlockStats struct {
	PoolBlocks       uint64 // blocks currently in the pool
	PoolBytes        uint64 // bytes currently in the pool
	ManifestsSealed  uint64 // manifests committed (install- or index-time)
	OrphansReclaimed uint64 // unreferenced pool files removed at mount
	BadBlocks        uint64 // pool blocks that failed their address on read
	BlocksShipped    uint64 // blocks this replica shipped because the puller lacked them
	BlocksReused     uint64 // blocks delta installs assembled from the local pool
	BytesShipped     uint64 // payload bytes of shipped blocks
	BytesSaved       uint64 // payload bytes delta installs did NOT pull over the wire
}

// Add accumulates (aggregation across layers and hosts).
func (s *BlockStats) Add(t BlockStats) {
	s.PoolBlocks += t.PoolBlocks
	s.PoolBytes += t.PoolBytes
	s.ManifestsSealed += t.ManifestsSealed
	s.OrphansReclaimed += t.OrphansReclaimed
	s.BadBlocks += t.BadBlocks
	s.BlocksShipped += t.BlocksShipped
	s.BlocksReused += t.BlocksReused
	s.BytesShipped += t.BytesShipped
	s.BytesSaved += t.BytesSaved
}

// String renders the stats compactly.
func (s BlockStats) String() string {
	return fmt.Sprintf("pool=%d/%dB sealed=%d orphans=%d bad=%d shipped=%d/%dB reused=%d saved=%dB",
		s.PoolBlocks, s.PoolBytes, s.ManifestsSealed, s.OrphansReclaimed, s.BadBlocks,
		s.BlocksShipped, s.BytesShipped, s.BlocksReused, s.BytesSaved)
}

// BlockStats returns a snapshot of this volume replica's block counters.
func (l *Layer) BlockStats() BlockStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bstats
}

// ---- pool ---------------------------------------------------------------

// ensurePoolLocked returns the pool directory, creating it on first use.
func (l *Layer) ensurePoolLocked() (vnode.Vnode, error) {
	if l.pool != nil {
		return l.pool, nil
	}
	p, err := l.root.Lookup(poolDirName)
	if err != nil {
		if vnode.AsErrno(err) != vnode.ENOENT {
			return nil, err
		}
		if p, err = l.root.Mkdir(poolDirName); err != nil {
			return nil, err
		}
	}
	l.pool = p
	return p, nil
}

// poolPutLocked commits one block under its address via shadow + atomic
// rename; a block already present is left untouched (content addressing
// makes the bytes identical by construction).
func (l *Layer) poolPutLocked(addr BlockAddr, data []byte) error {
	pool, err := l.ensurePoolLocked()
	if err != nil {
		return err
	}
	name := addr.String()
	if _, err := pool.Lookup(name); err == nil {
		return nil
	} else if vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	shadow := name + suffixShadow
	f, err := pool.Create(shadow, false)
	if err != nil {
		return err
	}
	if err := vnode.WriteFile(f, data); err != nil {
		return err
	}
	if err := pool.Rename(shadow, pool, name); err != nil {
		return err
	}
	l.bstats.PoolBlocks++
	l.bstats.PoolBytes += uint64(len(data))
	return nil
}

// poolGetLocked reads one block and verifies it against its address.  A
// missing or unreadable block answers (nil, false); a block whose content
// no longer hashes to its name is EVICTED — along with every manifest that
// references it, since manifests are derived data — and also answers false,
// so at-rest pool corruption degrades to re-shipping the block.
func (l *Layer) poolGetLocked(addr BlockAddr) ([]byte, bool) {
	if l.pool == nil {
		if _, err := l.ensurePoolLocked(); err != nil {
			return nil, false
		}
	}
	f, err := l.pool.Lookup(addr.String())
	if err != nil {
		return nil, false
	}
	data, err := vnode.ReadFile(f)
	if err != nil {
		return nil, false
	}
	if HashBlock(data) != addr {
		l.evictBadBlockLocked(addr)
		return nil, false
	}
	return data, true
}

// poolHasLocked reports whether the pool stores addr (no content check).
func (l *Layer) poolHasLocked(addr BlockAddr) bool {
	if l.pool == nil {
		p, err := l.root.Lookup(poolDirName)
		if err != nil {
			return false
		}
		l.pool = p
	}
	_, err := l.pool.Lookup(addr.String())
	return err == nil
}

// poolRemoveLocked deletes one block file, adjusting the gauges (a no-op
// when absent).
func (l *Layer) poolRemoveLocked(addr BlockAddr) {
	if l.pool == nil {
		return
	}
	f, err := l.pool.Lookup(addr.String())
	if err != nil {
		return
	}
	var size uint64
	if a, err := f.Getattr(); err == nil {
		size = a.Size
	}
	if err := l.pool.Remove(addr.String()); err == nil {
		l.bstats.PoolBlocks--
		l.bstats.PoolBytes -= size
	}
}

// ---- refcounts ----------------------------------------------------------

// refAddLocked records one manifest reference per listed address.
func (l *Layer) refAddLocked(addrs []BlockAddr) {
	for _, a := range addrs {
		l.blockRefs[a]++
	}
}

// refDropLocked releases one manifest reference per listed address; a block
// reaching zero references is reclaimed eagerly.
func (l *Layer) refDropLocked(addrs []BlockAddr) {
	for _, a := range addrs {
		if n := l.blockRefs[a] - 1; n > 0 {
			l.blockRefs[a] = n
		} else {
			delete(l.blockRefs, a)
			l.poolRemoveLocked(a)
		}
	}
}

// ---- manifests ----------------------------------------------------------

// sealManifestLocked commits fid's manifest sealed under vector sealed,
// adjusting refcounts: new references are taken BEFORE the old manifest's
// are released, so blocks shared between the versions never transiently
// reach zero.  Every block m references must already be in the pool.
func (l *Layer) sealManifestLocked(cont vnode.Vnode, fid ids.FileID, sealed vv.Vector, m *BlockManifest) error {
	var oldAddrs []BlockAddr
	hadOld := false
	if _, old, err := readManifest(l.root, cont, fid); err == nil {
		oldAddrs, hadOld = old.Blocks, true
	}
	base := prefixManifest + fid.String()
	shadow := base + suffixShadow
	sf, err := cont.Create(shadow, false)
	if err != nil {
		return err
	}
	if err := vnode.WriteFile(sf, encodeManifest(sealed, m)); err != nil {
		return err
	}
	if err := cont.Rename(shadow, cont, base); err != nil {
		return err
	}
	l.refAddLocked(m.Blocks)
	if hadOld {
		l.refDropLocked(oldAddrs)
	}
	l.bstats.ManifestsSealed++
	return nil
}

// removeManifestLocked discards fid's manifest if present, releasing its
// block references (storage reclaim paths).
func (l *Layer) removeManifestLocked(cont vnode.Vnode, fid ids.FileID) error {
	if _, m, err := readManifest(l.root, cont, fid); err == nil {
		l.refDropLocked(m.Blocks)
	}
	if err := cont.Remove(prefixManifest + fid.String()); err != nil && vnode.AsErrno(err) != vnode.ENOENT {
		return err
	}
	return nil
}

// evictBadBlockLocked handles a pool block whose content fails its address:
// the block file and every manifest referencing it are removed.  This is
// safe because pool and manifests are derived from the canonical data
// files — the next EnsureBlocks or delta install rebuilds them.
func (l *Layer) evictBadBlockLocked(addr BlockAddr) {
	l.bstats.BadBlocks++
	if cont, err := l.rootContainer(); err == nil {
		l.dropManifestsReferencingLocked(cont, addr)
	}
	delete(l.blockRefs, addr)
	l.poolRemoveLocked(addr)
}

// dropManifestsReferencingLocked walks the container tree removing every
// manifest that references addr (releasing the references its other blocks
// held).
func (l *Layer) dropManifestsReferencingLocked(cont vnode.Vnode, addr BlockAddr) {
	ents, err := cont.Readdir()
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.Type == vnode.VDir && strings.HasPrefix(e.Name, prefixDir) {
			if sub, err := cont.Lookup(e.Name); err == nil {
				l.dropManifestsReferencingLocked(sub, addr)
			}
			continue
		}
		if !strings.HasPrefix(e.Name, prefixManifest) || strings.HasSuffix(e.Name, suffixShadow) {
			continue
		}
		fid, err := ids.ParseFileID(e.Name[len(prefixManifest):])
		if err != nil {
			continue
		}
		_, m, err := readManifest(l.root, cont, fid)
		if err != nil {
			continue
		}
		for _, a := range m.Blocks {
			if a == addr {
				// Best-effort: the store is already surfacing bad bytes, and
				// a manifest this fails to remove still loses its in-memory
				// refs; fsck and the next mount's recovery catch the file.
				_ = l.removeManifestLocked(cont, fid) //ficusvet:ignore duraberr
				break
			}
		}
	}
}

// dropManifestRefsInTreeLocked releases the block references held by every
// manifest in a container subtree that is about to be deleted wholesale
// (tombstone collection of a whole directory).
func (l *Layer) dropManifestRefsInTreeLocked(cont vnode.Vnode) {
	ents, err := cont.Readdir()
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.Type == vnode.VDir {
			if sub, err := cont.Lookup(e.Name); err == nil {
				l.dropManifestRefsInTreeLocked(sub)
			}
			continue
		}
		if !strings.HasPrefix(e.Name, prefixManifest) || strings.HasSuffix(e.Name, suffixShadow) {
			continue
		}
		fid, err := ids.ParseFileID(e.Name[len(prefixManifest):])
		if err != nil {
			continue
		}
		if _, m, err := readManifest(l.root, cont, fid); err == nil {
			l.refDropLocked(m.Blocks)
		}
	}
}

// ---- indexing (the puller's Have set) -----------------------------------

// EnsureBlocks indexes fid's current local version into the block layer:
// the data is read (and verified when the checksum sidecar vouches for it),
// its blocks are inserted into the pool, and the manifest is sealed under
// the aux vector.  A manifest already sealed for the current version makes
// this a cheap no-op, so the propagation daemon can call it every pass.
// Quarantined or failing data is never indexed — corrupt bytes must not
// enter the pool under a valid address.
func (l *Layer) EnsureBlocks(dirPath []ids.FileID, fid ids.FileID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.isQuarantinedLocked(fid) {
		return fmt.Errorf("%w: file %s is quarantined", ErrCorrupt, fid)
	}
	cont, err := l.containerOf(dirPath)
	if err != nil {
		return err
	}
	aux, err := readAuxFileFollow(l.root, cont, prefixAux+fid.String())
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return ErrNotStored
		}
		return err
	}
	if sealed, _, err := readManifest(l.root, cont, fid); err == nil && sealed.Equal(aux.VV) {
		return nil // already indexed for this exact version
	}
	df, err := lookupFollow(l.root, cont, prefixData+fid.String())
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return ErrNotStored
		}
		return err
	}
	data, err := vnode.ReadFile(df)
	if err != nil {
		return err
	}
	if sealed, cs, serr := readSidecar(l.root, cont, fid); serr == nil && sealed.Equal(aux.VV) {
		if !cs.Verify(data) {
			l.quarantineLocked(dirPath, fid, aux.VV)
			return fmt.Errorf("%w: file %s failed verification while indexing blocks", ErrCorrupt, fid)
		}
	}
	m := ComputeManifest(data)
	for i, addr := range m.Blocks {
		off := i * ChecksumBlockSize
		end := off + ChecksumBlockSize
		if end > len(data) {
			end = len(data)
		}
		if err := l.poolPutLocked(addr, data[off:end]); err != nil {
			return err
		}
	}
	return l.sealManifestLocked(cont, fid, aux.VV, m)
}

// PoolAddrs lists every pool block address this replica holds, sorted, for
// the Have advertisement of a delta pull.
func (l *Layer) PoolAddrs() []BlockAddr {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]BlockAddr, 0, len(l.blockRefs))
	for a := range l.blockRefs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// ---- mount-time rebuild and orphan reclaim ------------------------------

// recoverBlocks rebuilds the in-memory refcounts from the on-disk manifests
// and reclaims whatever a crash could have left behind: torn pool shadows,
// blocks no manifest references, and (under external damage) manifests
// referencing blocks that are gone.  Runs once from Open, after the generic
// shadow recovery.
func (l *Layer) recoverBlocks() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.blockRefs = make(map[BlockAddr]int)
	if cont, err := l.rootContainer(); err == nil {
		if err := l.collectManifestRefsLocked(cont); err != nil {
			return err
		}
	}
	pool, err := l.root.Lookup(poolDirName)
	if err != nil {
		if vnode.AsErrno(err) == vnode.ENOENT {
			return nil // never used the block layer; nothing to rebuild
		}
		return err
	}
	l.pool = pool
	ents, err := pool.Readdir()
	if err != nil {
		return err
	}
	present := make(map[BlockAddr]bool, len(ents))
	for _, e := range ents {
		addr, ok := parseBlockName(e.Name)
		if !ok || strings.HasSuffix(e.Name, suffixShadow) {
			// A torn (or merely uncommitted) shadow, or foreign junk: no
			// manifest can reference it, so discard.
			if err := pool.Remove(e.Name); err != nil {
				return err
			}
			l.bstats.OrphansReclaimed++
			continue
		}
		present[addr] = true
		if f, err := pool.Lookup(e.Name); err == nil {
			if a, err := f.Getattr(); err == nil {
				l.bstats.PoolBlocks++
				l.bstats.PoolBytes += a.Size
			}
		}
	}
	// A manifest referencing a missing block cannot happen through any crash
	// of our own commit order (blocks land before the manifest), but external
	// damage can produce it; the manifest is derived data, so drop it rather
	// than serve a promise the pool cannot keep.
	missing := make([]BlockAddr, 0)
	for a := range l.blockRefs {
		if !present[a] {
			missing = append(missing, a)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return bytes.Compare(missing[i][:], missing[j][:]) < 0 })
	for _, a := range missing {
		if cont, err := l.rootContainer(); err == nil {
			l.dropManifestsReferencingLocked(cont, a)
		}
		delete(l.blockRefs, a)
	}
	// Blocks no surviving manifest references are crash leftovers: reclaim.
	orphans := make([]BlockAddr, 0)
	for a := range present {
		if l.blockRefs[a] == 0 {
			orphans = append(orphans, a)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return bytes.Compare(orphans[i][:], orphans[j][:]) < 0 })
	for _, a := range orphans {
		l.poolRemoveLocked(a)
		l.bstats.OrphansReclaimed++
	}
	return nil
}

// collectManifestRefsLocked walks the container tree accumulating block
// references from every decodable manifest; an undecodable manifest file is
// removed (it is derived data and cannot be trusted).
func (l *Layer) collectManifestRefsLocked(cont vnode.Vnode) error {
	ents, err := cont.Readdir()
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Type == vnode.VDir && strings.HasPrefix(e.Name, prefixDir) {
			sub, err := cont.Lookup(e.Name)
			if err != nil {
				return err
			}
			if err := l.collectManifestRefsLocked(sub); err != nil {
				return err
			}
			continue
		}
		if !strings.HasPrefix(e.Name, prefixManifest) || strings.HasSuffix(e.Name, suffixShadow) {
			continue
		}
		fid, err := ids.ParseFileID(e.Name[len(prefixManifest):])
		if err != nil {
			continue // Check reports unparsable names; leave for inspection
		}
		_, m, err := readManifest(l.root, cont, fid)
		if err != nil {
			if err := cont.Remove(e.Name); err != nil {
				return err
			}
			continue
		}
		l.refAddLocked(m.Blocks)
	}
	return nil
}
